module l2q

go 1.24
