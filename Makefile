# Targets mirror .github/workflows/ci.yml — `make lint build test bench`
# locally is the same bar a PR has to clear.

GO ?= go

.PHONY: all build test bench lint fmt

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Full benchmark pass. For the sharded-engine before/after numbers only:
#   go test -run='^$$' -bench='HotSingleQuery|ConcurrentManyQueries' -benchtime=2s ./internal/search/
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

fmt:
	gofmt -w .
