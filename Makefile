# Targets mirror .github/workflows/ci.yml — `make lint build test bench`
# locally is the same bar a PR has to clear.

GO ?= go

.PHONY: all build test soak bench bench-candidates bench-wire bench-scatter bench-allocs bench-live wire-parity load-smoke cluster-smoke lint vuln fmt

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test -race -shuffle=on ./...

# 30 s churn loops under the race detector: scheduler submit/cancel/
# resume, and the live engine's concurrent ingest+search+compact.
soak:
	L2Q_SOAK=30s $(GO) test -race -run 'TestSchedulerSoak' ./internal/pipeline/
	L2Q_SOAK=30s $(GO) test -race -run 'TestLiveEngineSoak' ./internal/search/

# Full benchmark pass. For the sharded-engine before/after numbers only:
#   go test -run='^$$' -bench='HotSingleQuery|ConcurrentManyQueries' -benchtime=2s ./internal/search/
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=1x ./...

# Candidate-generation / domain-phase trajectory (the CI artifact's recipe).
bench-candidates:
	$(GO) test -run='^$$' -bench='BenchmarkCandidateStep|BenchmarkLearnDomain' -benchmem -benchtime=20x ./internal/core/

# Wire-codec trajectory: remote harvest over a bandwidth-modeled link,
# JSON vs negotiated binary+gzip (the BENCH_wire.json recipe).
bench-wire:
	$(GO) test -run='^$$' -bench='BenchmarkRemoteHarvestWire' -benchmem -benchtime=5x ./internal/webapi/

# Scatter-gather trajectory: a concurrent seeded-search batch against one
# node vs a 3-node doc-partitioned cluster, every response squeezed
# through a modeled 64 KB/s uplink per node (the BENCH_scatter.json
# recipe — the distributed-retrieval bar is ≥2x batch throughput).
bench-scatter:
	$(GO) test -run='^$$' -bench='BenchmarkScatterGather' -benchtime=3x ./internal/webapi/

# Allocation-regression gate: the hot-path alloc benchmarks against their
# pinned ceilings (0 allocs/op on the append paths). Writes
# BENCH_allocs.json, fails on any regression — same recipe as CI.
bench-allocs:
	./scripts/alloc_gate.sh BENCH_allocs.json

# Live-index trajectory: search throughput on a generational engine
# under a sustained ingest stream vs the same engine left frozen
# (BenchmarkLiveIngestSearch — the ≥70%-of-frozen bar), then l2qload
# mixed traffic against a live self-served server with ingest lag
# percentiles. Writes BENCH_live.json (the CI artifact).
bench-live:
	$(GO) test -run='^$$' -bench='BenchmarkLiveIngestSearch' -benchtime=2s ./internal/search/
	$(GO) run ./cmd/l2qload -duration 15s -workers 16 -ingest 200 -memtable 256 \
		-mix 'search=70,page=20,metrics=10' -out BENCH_live.json

# Sustained-traffic smoke: l2qload against an in-process server driven
# past its admission bound — verifies shed correctness (429 retryable
# envelope, no lost jobs, bounded tail) and writes BENCH_load.json.
load-smoke:
	$(GO) run ./cmd/l2qload -duration 30s -workers 32 -maxinflight 1 -assertshed -out BENCH_load.json

# Distributed-retrieval smoke: a real 3-node l2qserve fleet plus a
# coordinator as separate processes, driven over HTTP — search, page
# proxy, fan-out metrics, and node-kill failover with replicas=2.
cluster-smoke:
	./scripts/cluster_smoke.sh

# Binary-wire differential parity + negotiation matrix under the race
# detector (the CI wire-parity step).
wire-parity:
	$(GO) test -race -count=1 -run 'TestDifferentialWireParity|TestNegotiationMatrix|TestMixedVersionFallback|TestStreamWireCodec' ./internal/webapi/

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) build -o bin/l2qvet ./cmd/l2qvet
	$(GO) vet -vettool=$(CURDIR)/bin/l2qvet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)); skipping — CI runs it"; \
	fi

# Known-vulnerability scan; graceful local skip, CI always runs it.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed (go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)); skipping — CI runs it"; \
	fi

# Pinned so local runs and the CI lint jobs agree.
STATICCHECK_VERSION = 2025.1.1
GOVULNCHECK_VERSION = v1.1.4

fmt:
	gofmt -w .
