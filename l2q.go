// Package l2q is the public API of the Learning-to-Query (L2Q) library, a
// reproduction of Fang, Zheng & Chang, "Learning to Query: Focused Web Page
// Harvesting for Entity Aspects" (ICDE 2016).
//
// L2Q harvests pages about one aspect of one entity (a researcher's
// RESEARCH, a car's SAFETY) by iteratively choosing the most useful next
// query to fire at a search engine. The library bundles everything the
// paper's system needs: a corpus model, a Dirichlet-smoothed retrieval
// engine, aspect classifiers, a type system with query templates, the
// reinforcement-graph utility inference, domain- and context-aware query
// selection, and the baselines the paper compares against.
//
// # Quick start
//
//	sys, err := l2q.NewSyntheticSystem(l2q.Researchers, l2q.DefaultSystemOptions())
//	if err != nil { ... }
//	entity := sys.Corpus().Entities[0]
//	dm, err := sys.LearnDomain("RESEARCH", sys.EntityIDs()[10:60])
//	h := sys.NewHarvester(entity, "RESEARCH", dm)
//	fired := h.Run(l2q.NewL2QBAL(), 3)   // three selected queries
//	pages := h.Pages()                    // harvested result pages
//
// See examples/ for complete programs and DESIGN.md for the mapping from
// the paper's sections to packages.
package l2q

import (
	"fmt"
	"sync"

	"l2q/internal/baselines"
	"l2q/internal/classify"
	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/crawler"
	"l2q/internal/search"
	"l2q/internal/synth"
	"l2q/internal/textproc"
	"l2q/internal/types"
)

// Re-exported core types. The aliases keep one canonical definition in the
// internal packages while giving users a single import.
type (
	// Corpus is a fixed page collection for one domain.
	Corpus = corpus.Corpus
	// Entity is one harvest target, identified by its seed query.
	Entity = corpus.Entity
	// Page is one web page (an ordered list of labeled paragraphs).
	Page = corpus.Page
	// Paragraph is the classifier-granularity text unit.
	Paragraph = corpus.Paragraph
	// Aspect names a target facet, e.g. "RESEARCH" or "SAFETY".
	Aspect = corpus.Aspect
	// Domain names a kind of entity ("researchers", "cars", or custom).
	Domain = corpus.Domain
	// EntityID identifies an entity within a corpus.
	EntityID = corpus.EntityID
	// PageID identifies a page within a corpus.
	PageID = corpus.PageID
	// Query is a candidate query in canonical form.
	Query = core.Query
	// Config carries the L2Q model parameters (§III–§V).
	Config = core.Config
	// Session is one harvesting run for an (entity, aspect) pair.
	Session = core.Session
	// Selector chooses the next query for a session.
	Selector = core.Selector
	// DomainModel is the output of the domain phase (§IV-B).
	DomainModel = core.DomainModel
	// Engine is the Dirichlet-smoothed retrieval engine.
	Engine = search.Engine
	// EngineOptions tunes the retrieval engine (shards, scoring workers,
	// cache capacity). All fields are ranking-neutral.
	EngineOptions = search.Options
	// LiveEngine is the generational mutable engine: it absorbs pages
	// while serving, ranking byte-identically to an Engine rebuilt from
	// the same page set.
	LiveEngine = search.LiveEngine
	// LiveOptions tunes a LiveEngine's generational lifecycle.
	LiveOptions = search.LiveOptions
	// LiveMetrics is a LiveEngine's ingest-side gauge snapshot.
	LiveMetrics = search.LiveMetrics
	// Fetcher simulates remote page-download latency.
	Fetcher = search.Fetcher
	// HRModel is the harvest-rate baseline's domain statistics.
	HRModel = baselines.HRModel
	// Recognizer maps words to types for template enumeration.
	Recognizer = types.Recognizer
	// Dictionary is a knowledge-base type dictionary.
	Dictionary = types.Dictionary
)

// The two domains reproduced from the paper.
const (
	Researchers = synth.DomainResearchers
	Cars        = synth.DomainCars
)

// DefaultConfig returns the paper's parameter settings (α=0.15, λ=10,
// L=3, r0 validated).
func DefaultConfig() Config { return core.DefaultConfig() }

// Strategy constructors (§VI-B ablations and the full approaches).
var (
	NewRND    = core.NewRND
	NewP      = core.NewP
	NewR      = core.NewR
	NewPQ     = core.NewPQ
	NewRQ     = core.NewRQ
	NewPT     = core.NewPT
	NewRT     = core.NewRT
	NewL2QP   = core.NewL2QP
	NewL2QR   = core.NewL2QR
	NewL2QBAL = core.NewL2QBAL
)

// NewL2QWeighted is the future-work extension of §VI-C: a precision-weight
// β generalization of L2QBAL (β = 0.5 recovers the balanced strategy).
var NewL2QWeighted = core.NewL2QWeighted

// Baseline constructors (§VI-C).
var (
	NewLM    = baselines.NewLM
	NewAQ    = baselines.NewAQ
	NewHR    = baselines.NewHR
	NewMQ    = baselines.NewMQ
	NewMQFor = baselines.NewMQFor
)

// ManualQueries returns the curated per-(domain, aspect) query lists the MQ
// baseline fires.
func ManualQueries(d Domain, a Aspect) []Query { return baselines.ManualQueries(d, a) }

// NewEngine builds a frozen retrieval engine over a fixed page set — the
// immutable counterpart of NewLiveEngine (and the rebuild arm of the
// grown-vs-rebuilt parity contract).
func NewEngine(pages []*Page, opts EngineOptions) *Engine {
	return search.NewEngineOpts(search.BuildIndexOpts(pages, opts), opts)
}

// NewLiveEngine creates a live generational engine, optionally
// bootstrapped with an initial page set. See search.NewLiveEngine.
func NewLiveEngine(pages []*Page, opts EngineOptions, lo LiveOptions) *LiveEngine {
	return search.NewLiveEngine(pages, opts, lo)
}

// Crawler types: the best-first focused crawler, the link-following
// contrast baseline of §II (see internal/crawler).
type (
	// CrawlConfig tunes a focused crawl (budget, frontier cap, page sink).
	CrawlConfig = crawler.Config
	// CrawlResult is the outcome of a focused crawl.
	CrawlResult = crawler.Result
)

// Crawl runs a best-first focused crawl over the fixed corpus web: fetch
// the highest-priority frontier page, classify it with y, enqueue its
// out-links. See crawler.Crawl.
func Crawl(pageByID map[PageID]*Page, seeds []*Page, y func(*Page) bool, cfg CrawlConfig) CrawlResult {
	return crawler.Crawl(pageByID, seeds, y, cfg)
}

// CrawlPageIndex builds the crawler's fetch table for a corpus.
func CrawlPageIndex(c *Corpus) map[PageID]*Page { return crawler.PageIndex(c) }

// SystemOptions sizes a synthetic system.
type SystemOptions struct {
	// NumEntities and PagesPerEntity size the corpus (0 = paper scale:
	// 996 researchers / 143 cars × 50 pages).
	NumEntities    int
	PagesPerEntity int
	// Seed drives deterministic generation.
	Seed uint64
	// Config overrides the L2Q parameters; zero value = DefaultConfig.
	Config *Config
	// Shards, ScoreWorkers and CacheSize tune the retrieval engine (see
	// search.Options); non-zero values override the corresponding
	// Config.Search* fields. Rankings are identical for every setting —
	// these are pure performance knobs.
	Shards       int
	ScoreWorkers int
	CacheSize    int
	// MemtableDocs, CompactFanIn and IngestWorkers tune the live
	// generational engine (see search.LiveOptions); non-zero values
	// override the corresponding Config fields. Rankings are identical
	// for every setting — the live engine's parity contract.
	MemtableDocs  int
	CompactFanIn  int
	IngestWorkers int
	// InferWorkers bounds the worker pool inside one inference step
	// (delta containment and collective candidate scoring); non-zero
	// overrides Config.InferWorkers. Utilities are identical for every
	// worker count.
	InferWorkers int
	// LearnWorkers bounds the domain phase's sharded counting pass
	// (LearnDomain); non-zero overrides Config.LearnWorkers. Models are
	// identical for every worker count.
	LearnWorkers int
	// NoIncrementalGraph and NoWarmStart switch the inference stack back
	// to rebuild-per-step / cold solves (Session.InferReference
	// behavior). DefaultConfig enables both optimizations; differential
	// tests hold the two paths to identical query rankings, so these
	// exist for benchmarking and paranoia, not correctness.
	NoIncrementalGraph bool
	NoWarmStart        bool
	// NoIncrementalPool switches candidate generation back to
	// re-enumerating every gathered page per step
	// (Session.CandidatesReference behavior). Pools are identical either
	// way; the knob exists for benchmarking and paranoia.
	NoIncrementalPool bool
}

// DefaultSystemOptions returns paper-scale options.
func DefaultSystemOptions() SystemOptions { return SystemOptions{} }

// System bundles a corpus with every substrate wired together: retrieval
// engine, aspect classifiers, type recognizer and the L2Q configuration.
// Construct with NewSyntheticSystem or NewSystem; a System is safe for
// concurrent harvesting sessions.
type System struct {
	cfg     Config
	corpus  *Corpus
	engine  *Engine
	cls     classify.YProvider
	rec     Recognizer
	aspects []Aspect
}

// NewSyntheticSystem generates a synthetic web corpus for one of the
// paper's two domains and trains the aspect classifiers on all of it.
// For the paper's evaluation protocol (classifiers trained on the domain
// half only) use internal/eval via cmd/l2qexp instead.
func NewSyntheticSystem(d Domain, opts SystemOptions) (*System, error) {
	gen := synth.DefaultConfig(d)
	if opts.NumEntities > 0 {
		gen.NumEntities = opts.NumEntities
	}
	if opts.PagesPerEntity > 0 {
		gen.PagesPerEntity = opts.PagesPerEntity
	}
	if opts.Seed != 0 {
		gen.Seed = opts.Seed
	}
	g, err := synth.Generate(gen)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	if opts.Shards != 0 {
		cfg.SearchShards = opts.Shards
	}
	if opts.ScoreWorkers != 0 {
		cfg.SearchScoreWorkers = opts.ScoreWorkers
	}
	if opts.CacheSize != 0 {
		cfg.SearchCacheSize = opts.CacheSize
	}
	if opts.MemtableDocs != 0 {
		cfg.MemtableDocs = opts.MemtableDocs
	}
	if opts.CompactFanIn != 0 {
		cfg.CompactFanIn = opts.CompactFanIn
	}
	if opts.IngestWorkers != 0 {
		cfg.IngestWorkers = opts.IngestWorkers
	}
	if opts.InferWorkers != 0 {
		cfg.InferWorkers = opts.InferWorkers
	}
	if opts.LearnWorkers != 0 {
		cfg.LearnWorkers = opts.LearnWorkers
	}
	if opts.NoIncrementalGraph {
		cfg.IncrementalGraph = false
	}
	if opts.NoWarmStart {
		cfg.WarmStart = false
	}
	if opts.NoIncrementalPool {
		cfg.IncrementalPool = false
	}
	cfg.Tokenizer = g.Tokenizer
	return NewSystem(g.Corpus, g.KB, g.Aspects, g.Tokenizer, cfg)
}

// NewSystem wires a System from explicit parts: a corpus (pages carry
// paragraph labels used to train the aspect classifiers), a knowledge-base
// dictionary for templates, the target aspects, and the tokenizer that
// produced the corpus tokens. Use this for custom domains.
func NewSystem(c *Corpus, kb *Dictionary, aspects []Aspect,
	tok *textproc.Tokenizer, cfg Config) (*System, error) {

	if c == nil || c.NumPages() == 0 {
		return nil, fmt.Errorf("l2q: empty corpus")
	}
	if len(aspects) == 0 {
		return nil, fmt.Errorf("l2q: no target aspects")
	}
	cfg.Tokenizer = tok
	cls := classify.TrainSet(aspects, c.Pages)
	for _, a := range aspects {
		if !cls.Has(a) {
			return nil, fmt.Errorf("l2q: aspect %s has no training signal in the corpus", a)
		}
	}
	var rec Recognizer = types.NewRegexRecognizer()
	if kb != nil {
		rec = types.Chain{kb, types.NewRegexRecognizer()}
	}
	sopts := cfg.SearchOptions()
	return &System{
		cfg:     cfg,
		corpus:  c,
		engine:  search.NewEngineOpts(search.BuildIndexOpts(c.Pages, sopts), sopts),
		cls:     cls,
		rec:     rec,
		aspects: aspects,
	}, nil
}

// Corpus returns the underlying corpus.
func (s *System) Corpus() *Corpus { return s.corpus }

// Engine returns the retrieval engine.
func (s *System) Engine() *Engine { return s.engine }

// Config returns the active L2Q configuration.
func (s *System) Config() Config { return s.cfg }

// Aspects returns the target aspects.
func (s *System) Aspects() []Aspect { return append([]Aspect(nil), s.aspects...) }

// EntityIDs returns all entity IDs in corpus order.
func (s *System) EntityIDs() []EntityID {
	out := make([]EntityID, 0, s.corpus.NumEntities())
	for _, e := range s.corpus.Entities {
		out = append(out, e.ID)
	}
	return out
}

// Relevant reports the classifier-materialized Y(p) for an aspect.
func (s *System) Relevant(a Aspect, p *Page) bool { return s.cls.Relevant(a, p) }

// LearnDomain runs the domain phase (§IV-B) over the given peer entities
// and returns the learned domain model for the aspect.
func (s *System) LearnDomain(a Aspect, domainEntities []EntityID) (*DomainModel, error) {
	return core.LearnDomain(s.cfg, a, s.corpus, domainEntities, s.cls.YFunc(a), s.rec)
}

// TrainHR fits the harvest-rate baseline's domain statistics (§VI-C).
func (s *System) TrainHR(a Aspect, domainEntities []EntityID) (*HRModel, error) {
	return baselines.TrainHR(s.cfg, s.corpus, domainEntities, s.cls.YFunc(a), s.rec)
}

// Harvester is a thin wrapper over a core session: the iterative loop of
// Fig. 1 for one (entity, aspect) pair.
type Harvester struct {
	*Session
}

// NewHarvester starts a harvesting session. dm may be nil to run without
// domain awareness.
func (s *System) NewHarvester(e *Entity, a Aspect, dm *DomainModel) *Harvester {
	return s.NewHarvesterSeeded(e, a, dm, 1)
}

// NewHarvesterSeeded is NewHarvester with an explicit RNG seed (only the
// RND strategy consumes randomness).
func (s *System) NewHarvesterSeeded(e *Entity, a Aspect, dm *DomainModel, rngSeed uint64) *Harvester {
	sess := core.NewSession(s.cfg, s.engine, e, a, s.cls.YFunc(a), dm, s.rec, rngSeed)
	return &Harvester{Session: sess}
}

// HarvestResult is one entity's outcome from HarvestMany.
type HarvestResult struct {
	Entity *Entity
	Fired  []Query
	Pages  []*Page
	// Err is non-nil when the entity could not be harvested (e.g. an
	// unknown entity ID); Entity is nil in that case.
	Err error
}

// HarvestMany harvests the same aspect for many entities concurrently
// (the paper's §VI-C efficiency note: "parallelizing over entities").
// workers ≤ 0 defaults to 8. The selector must be stateless (every
// constructor in this package returns stateless selectors).
func (s *System) HarvestMany(entities []EntityID, a Aspect, dm *DomainModel,
	sel Selector, nQueries, workers int) []HarvestResult {

	if workers <= 0 {
		workers = 8
	}
	out := make([]HarvestResult, len(entities))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, id := range entities {
		wg.Add(1)
		go func(i int, id EntityID) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			e := s.corpus.Entity(id)
			if e == nil {
				// An explicit per-entity error: a zero-valued result
				// (Entity == nil, no Err) panics callers that
				// dereference .Entity without a clue why.
				out[i] = HarvestResult{Err: fmt.Errorf("l2q: unknown entity id %d", id)}
				return
			}
			h := s.NewHarvesterSeeded(e, a, dm, uint64(id)+1)
			if workers > 1 && s.cfg.InferWorkers == 0 {
				// Same oversubscription rule as the pipeline
				// scheduler: entity-level parallelism already
				// saturates the CPU, so each session infers
				// serially — unless the caller set an explicit
				// worker count, which is honored verbatim.
				// Value-neutral either way.
				h.Cfg.InferWorkers = 1
			}
			fired := h.Run(sel, nQueries)
			out[i] = HarvestResult{Entity: e, Fired: fired, Pages: h.Pages()}
		}(i, id)
	}
	wg.Wait()
	return out
}
