package l2q

// This file is the public surface of the reproduction's extension systems:
// the CRF classifier family (the paper's actual classifiers), the HTTP
// search-API boundary, persistent corpus stores, the interleaved
// selection/fetch pipeline (§VI-C's efficiency suggestion), and the
// link-following focused-crawler baseline (§II's contrast).

import (
	"context"
	"fmt"

	"l2q/internal/classify"
	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/crawler"
	"l2q/internal/crf"
	"l2q/internal/html"
	"l2q/internal/pipeline"
	"l2q/internal/store"
	"l2q/internal/textproc"
	"l2q/internal/webapi"
)

// Re-exported extension types.
type (
	// SearchServer serves a corpus + engine as an HTTP search API.
	SearchServer = webapi.Server
	// RemoteEngine is an HTTP client implementing the session Retriever.
	RemoteEngine = webapi.Client
	// Retriever is the engine surface sessions harvest through.
	Retriever = core.Retriever
	// CrawlerConfig tunes the focused-crawler baseline.
	CrawlerConfig = crawler.Config
	// CrawlerResult is a focused crawl's outcome.
	CrawlerResult = crawler.Result
	// Checkpoint is a session's durable state; Harvester promotes
	// Snapshot/Resume from the embedded session, so long-running harvests
	// survive restarts by exact replay.
	Checkpoint = core.Checkpoint
)

// ReadCheckpoint deserializes a checkpoint written by Checkpoint.Encode.
var ReadCheckpoint = core.ReadCheckpoint

// Tokenizer returns the tokenizer the system's corpus was built with.
func (s *System) Tokenizer() *textproc.Tokenizer { return s.cfg.Tokenizer }

// UseCRFClassifiers retrains every aspect classifier as a binary linear-
// chain CRF over paragraph sequences — the classifier family the paper
// actually uses (§VI-A) — and swaps it in as the materialized Y. Training
// is seconds-scale per aspect on paper-sized corpora; the default Naive
// Bayes family is near-instant, which is why it is the default.
func (s *System) UseCRFClassifiers() error {
	set := classify.TrainCRFSet(s.aspects, s.corpus.Pages, crf.DefaultTrainConfig())
	for _, a := range s.aspects {
		if !set.Has(a) {
			return fmt.Errorf("l2q: aspect %s has no CRF training signal", a)
		}
	}
	s.cls = set
	return nil
}

// ClassifierAccuracy reports the active classifier's paragraph-level
// accuracy for an aspect over the given pages (generator labels as truth;
// the Fig. 9 metric).
func (s *System) ClassifierAccuracy(a Aspect, pages []*Page) float64 {
	return s.cls.AccuracyOf(a, pages)
}

// NewSearchServer exposes the system's corpus and engine as an HTTP
// search API (JSON search + rendered HTML pages). Start it with
// (*SearchServer).Start and point remote harvesters at it with DialRemote.
func (s *System) NewSearchServer() *SearchServer {
	return webapi.NewServer(s.corpus, s.engine)
}

// DialRemote connects to a search API served by NewSearchServer (possibly
// in another process) using this system's tokenizer, returning an engine
// that harvesting sessions can use in place of the in-process one.
func (s *System) DialRemote(base string) (*RemoteEngine, error) {
	return webapi.Dial(base, s.cfg.Tokenizer)
}

// NewRemoteHarvester starts a harvesting session that searches and
// downloads through the remote engine instead of the in-process index.
// Selection behavior is identical (the remote client reproduces the
// engine's scoring exactly); only the transport differs.
func (s *System) NewRemoteHarvester(re *RemoteEngine, e *Entity, a Aspect, dm *DomainModel) *Harvester {
	sess := core.NewSession(s.cfg, re, e, a, s.cls.YFunc(a), dm, s.rec, 1)
	return &Harvester{Session: sess}
}

// SaveStore persists the corpus and its inverted index to a checksummed
// binary file readable by LoadStore, cmd/l2qserve and cmd/l2qstore.
func (s *System) SaveStore(path string) error {
	return store.SaveFile(path, s.corpus, s.engine.Index())
}

// StoreBundle is a loaded store file: a corpus and (optionally) its index.
type StoreBundle = store.Bundle

// LoadStore reads a store file written by SaveStore or cmd/l2qstore.
func LoadStore(path string) (*StoreBundle, error) { return store.LoadFile(path) }

// PipelineResult is one entity's outcome from HarvestPipelined.
type PipelineResult struct {
	Entity *Entity
	Fired  []Query
	Pages  []*Page
	Err    error
}

// HarvestPipelined harvests one aspect for many entities with the
// interleaved scheduler of §VI-C's efficiency note: selections run on a
// bounded CPU pool while page fetches overlap on a wider I/O pool. With
// fetcher == nil the fetch stage is instant (in-memory corpus); pass a
// Fetcher with Sleep set to model remote-download latency.
func (s *System) HarvestPipelined(ctx context.Context, entities []EntityID, a Aspect,
	dm *DomainModel, sel Selector, nQueries int, fetcher *Fetcher) []PipelineResult {

	jobs := make([]pipeline.Job, 0, len(entities))
	sessions := make([]*Session, 0, len(entities))
	ents := make([]*Entity, 0, len(entities))
	for _, id := range entities {
		e := s.corpus.Entity(id)
		if e == nil {
			continue
		}
		sess := core.NewSession(s.cfg, s.engine, e, a, s.cls.YFunc(a), dm, s.rec, uint64(id)+1)
		sess.Fetcher = fetcher
		jobs = append(jobs, pipeline.Job{Session: sess, Selector: sel, NQueries: nQueries})
		sessions = append(sessions, sess)
		ents = append(ents, e)
	}
	results := pipeline.Run(ctx, pipeline.Config{}, jobs)
	out := make([]PipelineResult, len(results))
	for i, r := range results {
		out[i] = PipelineResult{
			Entity: ents[i],
			Fired:  r.Fired,
			Pages:  sessions[i].Pages(),
			Err:    r.Err,
		}
	}
	return out
}

// Crawl runs the link-following focused-crawler baseline for an entity
// aspect: seeds from the entity's seed query, best-first frontier ordered
// by parent-page relevance, budget in page downloads. It exists to
// reproduce the paper's §II contrast — compare its harvest against a
// Harvester's at the same budget (see cmd/l2qexp -fig crawl).
func (s *System) Crawl(e *Entity, a Aspect, budget int) CrawlerResult {
	res := s.engine.SearchWithSeed(e.SeedTokens(), nil)
	seeds := make([]*corpus.Page, 0, len(res))
	for _, r := range res {
		seeds = append(seeds, r.Page)
	}
	return crawler.Crawl(crawler.PageIndex(s.corpus), seeds, s.cls.YFunc(a),
		crawler.Config{Budget: budget})
}

// RenderPageHTML renders one corpus page as a standalone HTML document
// (the form pages travel in over the HTTP boundary).
func RenderPageHTML(p *Page) string { return html.RenderPage(p) }
