package l2q

// This file is the public surface of the reproduction's extension systems:
// the CRF classifier family (the paper's actual classifiers), the HTTP
// search-API boundary, persistent corpus stores, the interleaved
// selection/fetch pipeline (§VI-C's efficiency suggestion), and the
// link-following focused-crawler baseline (§II's contrast).

import (
	"context"
	"fmt"

	"l2q/internal/classify"
	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/crawler"
	"l2q/internal/crf"
	"l2q/internal/html"
	"l2q/internal/pipeline"
	"l2q/internal/store"
	"l2q/internal/textproc"
	"l2q/internal/webapi"
)

// Re-exported extension types.
type (
	// SearchServer serves a corpus + engine as an HTTP search API.
	SearchServer = webapi.Server
	// RemoteEngine is an HTTP client implementing the session Retriever.
	RemoteEngine = webapi.Client
	// Retriever is the engine surface sessions harvest through.
	Retriever = core.Retriever
	// CrawlerConfig tunes the focused-crawler baseline.
	CrawlerConfig = crawler.Config
	// CrawlerResult is a focused crawl's outcome.
	CrawlerResult = crawler.Result
	// Checkpoint is a session's durable state; Harvester promotes
	// Snapshot/Resume from the embedded session, so long-running harvests
	// survive restarts by exact replay.
	Checkpoint = core.Checkpoint
	// ContextRetriever is the error-aware, cancellable retriever surface
	// remote engines implement.
	ContextRetriever = core.ContextRetriever
	// RemoteOptions tunes a remote engine's transport (retry policy,
	// prefetch concurrency, request timeout, wire codec).
	RemoteOptions = webapi.ClientOptions
	// Codec is the remote engine's wire-encoding preference
	// (CodecAuto, CodecJSON or CodecBinary).
	Codec = webapi.Codec
	// RetryPolicy controls the remote engine's retry/backoff behavior.
	RetryPolicy = webapi.RetryPolicy
	// TransportError is the typed failure of a remote API operation after
	// the retry budget is exhausted.
	TransportError = webapi.TransportError
	// RemoteMetrics snapshots a remote engine's request/retry/error
	// accounting.
	RemoteMetrics = webapi.ClientMetrics
	// FaultInjector wraps a handler with configurable transport faults
	// (500s, latency, truncated bodies) for resilience testing.
	FaultInjector = webapi.FaultInjector
	// HarvestBackend enables a SearchServer's POST /api/harvest endpoint.
	HarvestBackend = webapi.HarvestBackend
	// HarvestRequest is the batch-harvest request body.
	HarvestRequest = webapi.HarvestRequest
	// HarvestEvent is one NDJSON line of the batch-harvest stream.
	HarvestEvent = webapi.HarvestEvent
	// BudgetSpec is the wire form of the budget policy (harvest and jobs
	// requests).
	BudgetSpec = webapi.BudgetSpec
	// JobStatus is the async jobs API's status payload.
	JobStatus = webapi.JobStatus
	// ServerMetrics is the GET /api/metrics payload.
	ServerMetrics = webapi.ServerMetrics

	// HarvestScheduler is the long-lived pipeline scheduler: shared
	// select/fetch worker pools serving many concurrent Submit calls with
	// FIFO admission and per-batch fair share.
	HarvestScheduler = pipeline.Scheduler
	// HarvestBatch is one Submit call's unit of work on a scheduler.
	HarvestBatch = pipeline.Batch
	// HarvestJob is one entity-aspect harvest on the scheduler.
	HarvestJob = pipeline.Job
	// HarvestJobResult is one finished scheduler job.
	HarvestJobResult = pipeline.Result
	// SchedulerConfig sizes a scheduler's pools and admission bound.
	SchedulerConfig = pipeline.Config
	// SchedulerStats snapshots scheduler load.
	SchedulerStats = pipeline.Stats
	// BatchOptions tunes one Submit call (budget policy, checkpointing).
	BatchOptions = pipeline.BatchOptions
	// BudgetPolicy allocates a batch's query budget across entities.
	BudgetPolicy = pipeline.BudgetPolicy
	// BudgetMode selects fixed-equal or adaptive allocation.
	BudgetMode = pipeline.BudgetMode
)

// Budget allocation modes (see BudgetPolicy).
const (
	BudgetFixed    = pipeline.BudgetFixed
	BudgetAdaptive = pipeline.BudgetAdaptive
)

// Async job states (JobStatus.State).
const (
	JobQueued   = webapi.JobQueued
	JobRunning  = webapi.JobRunning
	JobDone     = webapi.JobDone
	JobCanceled = webapi.JobCanceled
)

// Wire codec preferences (RemoteOptions.Codec).
const (
	CodecAuto   = webapi.CodecAuto
	CodecJSON   = webapi.CodecJSON
	CodecBinary = webapi.CodecBinary
)

// ParseCodec maps a flag value ("auto", "json", "binary") to a Codec.
func ParseCodec(s string) (Codec, error) { return webapi.ParseCodec(s) }

// NewScheduler starts a long-lived harvest scheduler over this system's
// engine. Build jobs with NewHarvestJobs (or by hand from Harvester
// sessions), Submit batches from any number of goroutines, and Close when
// done. The adaptive budget mode (BatchOptions.Budget) reallocates a
// pooled query budget toward the entities with the highest marginal
// ΔR_E(Φ) gain each round.
func (s *System) NewScheduler(cfg SchedulerConfig) *HarvestScheduler {
	return pipeline.New(cfg)
}

// NewHarvestJobs builds one scheduler job per entity for an aspect,
// mirroring HarvestPipelined's session conventions (deterministic
// per-entity seeding, optional simulated-latency fetcher). Unknown IDs
// are skipped; the returned slice holds only buildable jobs.
func (s *System) NewHarvestJobs(entities []EntityID, a Aspect, dm *DomainModel,
	sel Selector, nQueries int, fetcher *Fetcher) []HarvestJob {

	jobs := make([]HarvestJob, 0, len(entities))
	for _, id := range entities {
		e := s.corpus.Entity(id)
		if e == nil {
			continue
		}
		sess := core.NewSession(s.cfg, s.engine, e, a, s.cls.YFunc(a), dm, s.rec, uint64(id)+1)
		sess.Fetcher = fetcher
		jobs = append(jobs, HarvestJob{Session: sess, Selector: sel, NQueries: nQueries})
	}
	return jobs
}

// ReadCheckpoint deserializes a checkpoint written by Checkpoint.Encode.
var ReadCheckpoint = core.ReadCheckpoint

// Tokenizer returns the tokenizer the system's corpus was built with.
func (s *System) Tokenizer() *textproc.Tokenizer { return s.cfg.Tokenizer }

// UseCRFClassifiers retrains every aspect classifier as a binary linear-
// chain CRF over paragraph sequences — the classifier family the paper
// actually uses (§VI-A) — and swaps it in as the materialized Y. Training
// is seconds-scale per aspect on paper-sized corpora; the default Naive
// Bayes family is near-instant, which is why it is the default.
func (s *System) UseCRFClassifiers() error {
	set := classify.TrainCRFSet(s.aspects, s.corpus.Pages, crf.DefaultTrainConfig())
	for _, a := range s.aspects {
		if !set.Has(a) {
			return fmt.Errorf("l2q: aspect %s has no CRF training signal", a)
		}
	}
	s.cls = set
	return nil
}

// ClassifierAccuracy reports the active classifier's paragraph-level
// accuracy for an aspect over the given pages (generator labels as truth;
// the Fig. 9 metric).
func (s *System) ClassifierAccuracy(a Aspect, pages []*Page) float64 {
	return s.cls.AccuracyOf(a, pages)
}

// NewSearchServer exposes the system's corpus and engine as an HTTP
// search API (JSON search + rendered HTML pages), with the server-side
// batch-harvest endpoint enabled over the system's classifiers and
// lazily-learned domain models. Start it with (*SearchServer).Start and
// point remote harvesters at it with DialRemote.
func (s *System) NewSearchServer() *SearchServer {
	srv := webapi.NewServer(s.corpus, s.engine)
	srv.Harvest = s.HarvestBackend()
	return srv
}

// HarvestBackend wires the system into a webapi.HarvestBackend: aspect
// classifiers materialize Y, and domain models are learned on first use
// over the canonical first-half domain sample (the protocol
// cmd/l2qharvest and the tests use); the backend memoizes them per
// aspect.
func (s *System) HarvestBackend() *HarvestBackend {
	return &HarvestBackend{
		Cfg:     s.cfg,
		Aspects: s.Aspects(),
		Y:       s.cls.YFunc,
		Rec:     s.rec,
		DomainModel: func(a Aspect) (*DomainModel, error) {
			ids := s.EntityIDs()
			return s.LearnDomain(a, ids[:len(ids)/2])
		},
	}
}

// DialRemote connects to a search API served by NewSearchServer (possibly
// in another process) using this system's tokenizer, returning an engine
// that harvesting sessions can use in place of the in-process one. The
// transport retries transient faults by default; DialRemoteOpts tunes it.
func (s *System) DialRemote(base string) (*RemoteEngine, error) {
	return webapi.Dial(base, s.cfg.Tokenizer)
}

// DialRemoteOpts is DialRemote with explicit transport options (retry
// policy, prefetch concurrency, per-request timeout, wire codec).
func (s *System) DialRemoteOpts(base string, opts RemoteOptions) (*RemoteEngine, error) {
	return webapi.DialOpts(base, s.cfg.Tokenizer, opts)
}

// DialRemoteContext is DialRemoteOpts with a cancellable dial probe.
func (s *System) DialRemoteContext(ctx context.Context, base string, opts RemoteOptions) (*RemoteEngine, error) {
	return webapi.DialContext(ctx, base, s.cfg.Tokenizer, opts)
}

// NewRemoteHarvester starts a harvesting session that searches and
// downloads through the remote engine instead of the in-process index.
// Selection behavior is identical (the remote client reproduces the
// engine's scoring exactly); only the transport differs.
func (s *System) NewRemoteHarvester(re *RemoteEngine, e *Entity, a Aspect, dm *DomainModel) *Harvester {
	sess := core.NewSession(s.cfg, re, e, a, s.cls.YFunc(a), dm, s.rec, 1)
	return &Harvester{Session: sess}
}

// SaveStore persists the corpus and its inverted index to a checksummed
// binary file readable by LoadStore, cmd/l2qserve and cmd/l2qstore.
func (s *System) SaveStore(path string) error {
	return store.SaveFile(path, s.corpus, s.engine.Index())
}

// StoreBundle is a loaded store file: a corpus and (optionally) its index.
type StoreBundle = store.Bundle

// LoadStore reads a store file written by SaveStore or cmd/l2qstore.
func LoadStore(path string) (*StoreBundle, error) { return store.LoadFile(path) }

// DomainArtifact is a persisted bundle of trained domain models and
// aspect classifiers — the domain phase's output as a durable file
// (magic L2QDOM1), so servers boot warm instead of re-learning per
// aspect on first request. Produce with LearnDomainArtifact or
// `l2qstore domains`; consume with LoadDomainsFile, `l2qserve -domains`,
// or HarvestBackend.Preload.
type DomainArtifact = store.DomainArtifact

// SaveDomainsFile writes a domain artifact atomically; LoadDomainsFile
// reads one back. Float parameters round-trip exactly, so a restored
// model selects byte-identically to the freshly learned one.
var (
	SaveDomainsFile = store.SaveDomainsFile
	LoadDomainsFile = store.LoadDomainsFile
)

// LearnDomainArtifact learns a domain model for every system aspect over
// the given peer entities (each learning run shards its counting pass
// over Config.LearnWorkers) and packages them — together with the
// system's Naive Bayes classifiers, when that family is active — into a
// persistable DomainArtifact.
func (s *System) LearnDomainArtifact(domainEntities []EntityID) (*DomainArtifact, error) {
	art := &DomainArtifact{
		CorpusDomain: s.corpus.Domain,
		NumEntities:  s.corpus.NumEntities(),
		NumPages:     s.corpus.NumPages(),
	}
	for _, a := range s.aspects {
		dm, err := s.LearnDomain(a, domainEntities)
		if err != nil {
			return nil, err
		}
		art.Models = append(art.Models, dm)
	}
	if set, ok := s.cls.(*classify.Set); ok {
		for _, a := range s.aspects {
			if c, trained := set.ByAspect[a]; trained {
				art.Classifiers = append(art.Classifiers, c.Params())
			}
		}
	}
	return art, nil
}

// PipelineResult is one entity's outcome from HarvestPipelined.
type PipelineResult struct {
	Entity *Entity
	Fired  []Query
	Pages  []*Page
	// Err is non-nil when the entity could not be harvested: an unknown
	// entity ID (Entity is nil), context cancellation, or a transport
	// failure the session's retriever could not retry away.
	Err error
}

// HarvestPipelined harvests one aspect for many entities with the
// interleaved scheduler of §VI-C's efficiency note: selections run on a
// bounded CPU pool while page fetches overlap on a wider I/O pool. With
// fetcher == nil the fetch stage is instant (in-memory corpus); pass a
// Fetcher with Sleep set to model remote-download latency. The result
// slice is aligned with entities: one PipelineResult per requested ID,
// unknown IDs reported with a per-entity Err instead of being silently
// dropped (which used to shift every later result off its entity).
func (s *System) HarvestPipelined(ctx context.Context, entities []EntityID, a Aspect,
	dm *DomainModel, sel Selector, nQueries int, fetcher *Fetcher) []PipelineResult {

	out := make([]PipelineResult, len(entities))
	jobs := make([]pipeline.Job, 0, len(entities))
	sessions := make([]*Session, 0, len(entities))
	jobIdx := make([]int, 0, len(entities)) // job position → entities position
	for i, id := range entities {
		e := s.corpus.Entity(id)
		if e == nil {
			out[i] = PipelineResult{Err: fmt.Errorf("l2q: unknown entity id %d", id)}
			continue
		}
		sess := core.NewSession(s.cfg, s.engine, e, a, s.cls.YFunc(a), dm, s.rec, uint64(id)+1)
		sess.Fetcher = fetcher
		jobs = append(jobs, pipeline.Job{Session: sess, Selector: sel, NQueries: nQueries})
		sessions = append(sessions, sess)
		jobIdx = append(jobIdx, i)
		out[i].Entity = e
	}
	results := pipeline.Run(ctx, pipeline.Config{}, jobs)
	for j, r := range results {
		i := jobIdx[j]
		out[i].Fired = r.Fired
		out[i].Pages = sessions[j].Pages()
		out[i].Err = r.Err
	}
	return out
}

// Crawl runs the link-following focused-crawler baseline for an entity
// aspect: seeds from the entity's seed query, best-first frontier ordered
// by parent-page relevance, budget in page downloads. It exists to
// reproduce the paper's §II contrast — compare its harvest against a
// Harvester's at the same budget (see cmd/l2qexp -fig crawl).
func (s *System) Crawl(e *Entity, a Aspect, budget int) CrawlerResult {
	res := s.engine.SearchWithSeed(e.SeedTokens(), nil)
	seeds := make([]*corpus.Page, 0, len(res))
	for _, r := range res {
		seeds = append(seeds, r.Page)
	}
	return crawler.Crawl(crawler.PageIndex(s.corpus), seeds, s.cls.YFunc(a),
		crawler.Config{Budget: budget})
}

// RenderPageHTML renders one corpus page as a standalone HTML document
// (the form pages travel in over the HTTP boundary).
func RenderPageHTML(p *Page) string { return html.RenderPage(p) }
