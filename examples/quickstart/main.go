// Quickstart: generate a small synthetic researcher web, learn the domain
// model for the RESEARCH aspect from peer entities, and harvest pages about
// one researcher's RESEARCH with the balanced L2Q strategy.
package main

import (
	"fmt"
	"log"

	"l2q"
)

func main() {
	// A small corpus so the example runs in a second or two; drop the
	// options for the paper-scale 996 researchers × 50 pages.
	sys, err := l2q.NewSyntheticSystem(l2q.Researchers, l2q.SystemOptions{
		NumEntities:    60,
		PagesPerEntity: 30,
		Seed:           42,
	})
	if err != nil {
		log.Fatal(err)
	}
	ids := sys.EntityIDs()
	fmt.Printf("corpus: %d entities, %d pages\n",
		sys.Corpus().NumEntities(), sys.Corpus().NumPages())

	// Domain phase (once per domain + aspect): learn template utilities
	// from the first 30 entities.
	dm, err := sys.LearnDomain("RESEARCH", ids[:30])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("domain phase: %d templates, %d candidate queries from %d pages\n",
		len(dm.TemplateP), len(dm.Candidates), dm.NumPages)

	// Entity phase: harvest the last entity's RESEARCH pages.
	target := sys.Corpus().Entity(ids[len(ids)-1])
	fmt.Printf("\nharvesting %q (seed query %q)\n", target.Name, target.SeedQuery)

	h := sys.NewHarvester(target, "RESEARCH", dm)
	h.Bootstrap()
	fmt.Printf("seed retrieved %d pages\n", len(h.Pages()))

	for i := 0; i < 3; i++ {
		q, ok := h.Step(l2q.NewL2QBAL())
		if !ok {
			break
		}
		fmt.Printf("iteration %d: fired %q → %d pages gathered\n", i+1, q, len(h.Pages()))
	}

	fmt.Println("\nharvested pages:")
	for _, p := range h.Pages() {
		mark := " "
		if p.Entity == target.ID && sys.Relevant("RESEARCH", p) {
			mark = "✓"
		}
		fmt.Printf("  [%s] %-40s %s\n", mark, p.Title, p.URL)
	}
}
