// Cars: business-analytics scenario from the paper's introduction —
// gathering pages about a car model's SAFETY aspect (e.g. to feed sentiment
// analysis). Compares the full L2Q approach against the LM, AQ and manual
// baselines, reporting cumulative precision/recall per iteration.
package main

import (
	"fmt"
	"log"

	"l2q"
)

func main() {
	sys, err := l2q.NewSyntheticSystem(l2q.Cars, l2q.SystemOptions{
		NumEntities:    100,
		PagesPerEntity: 40,
		Seed:           2009, // the paper's model year
	})
	if err != nil {
		log.Fatal(err)
	}
	ids := sys.EntityIDs()
	const aspect = l2q.Aspect("SAFETY")

	dm, err := sys.LearnDomain(aspect, ids[:50])
	if err != nil {
		log.Fatal(err)
	}
	hr, err := sys.TrainHR(aspect, ids[:50])
	if err != nil {
		log.Fatal(err)
	}

	target := sys.Corpus().Entity(ids[len(ids)-1])
	fmt.Printf("target: %q — harvesting %s pages\n\n", target.Name, aspect)

	// Relevant universe for reporting (classifier-materialized Y,
	// exactly what the paper treats as ground truth).
	relevant := map[l2q.EntityID]bool{}
	relUniverse := 0
	for _, p := range sys.Corpus().PagesOf(target.ID) {
		if sys.Relevant(aspect, p) {
			relUniverse++
		}
	}
	_ = relevant
	fmt.Printf("the corpus holds %d %s-relevant pages for this model\n\n", relUniverse, aspect)

	for _, tc := range []struct {
		name string
		sel  l2q.Selector
		dm   *l2q.DomainModel
	}{
		{"L2QBAL", l2q.NewL2QBAL(), dm},
		{"HR", l2q.NewHR(hr), nil},
		{"LM", l2q.NewLM(), nil},
		{"MQ", l2q.NewMQFor(l2q.Cars, aspect), nil},
	} {
		h := sys.NewHarvester(target, aspect, tc.dm)
		h.Bootstrap()
		fmt.Printf("%s:\n", tc.name)
		for i := 0; i < 3; i++ {
			q, ok := h.Step(tc.sel)
			if !ok {
				break
			}
			rel, tot := 0, len(h.Pages())
			for _, p := range h.Pages() {
				if p.Entity == target.ID && sys.Relevant(aspect, p) {
					rel++
				}
			}
			fmt.Printf("  q%d=%-28q precision %.2f  recall %.2f\n",
				i+1, q, float64(rel)/float64(tot), float64(rel)/float64(relUniverse))
		}
		fmt.Println()
	}
}
