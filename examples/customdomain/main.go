// Customdomain: using the library on a domain you define yourself — here a
// tiny "restaurants" vertical with MENU and LOCATION aspects. It shows the
// full wiring NewSyntheticSystem normally hides: building a corpus from raw
// text with paragraph labels, declaring a knowledge-base dictionary for
// templates, and wiring a System from the parts.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"l2q"
	"l2q/internal/corpus"
	"l2q/internal/textproc"
	"l2q/internal/types"
)

var (
	cuisines = []string{"sichuan", "neapolitan", "oaxacan", "tuscan", "izakaya", "provencal"}
	dishes   = []string{"mapo tofu", "margherita", "mole negro", "ribollita", "yakitori", "ratatouille"}
	streets  = []string{"green street", "oak avenue", "harbor road", "mill lane", "king street"}
	cities   = []string{"springfield", "riverton", "lakeview", "hillcrest", "brookside"}
)

func main() {
	// 1. Knowledge base: the type dictionary templates are built from.
	kb := types.NewDictionary()
	kb.AddAll("cuisine", cuisines...)
	kb.AddAll("dish", dishes...)
	kb.AddAll("street", streets...)
	kb.AddAll("city", cities...)

	// 2. Tokenizer wired to the KB's phrases so "mapo tofu" is one token.
	tok := &textproc.Tokenizer{Lexicon: textproc.NewLexicon(kb.Phrases())}

	// 3. A small hand-rolled corpus: 12 restaurants × 8 pages.
	rng := rand.New(rand.NewPCG(5, 7))
	c := corpus.New("restaurants")
	pageID := corpus.PageID(0)
	for id := corpus.EntityID(0); id < 12; id++ {
		name := fmt.Sprintf("casa %s", cuisines[int(id)%len(cuisines)])
		seed := fmt.Sprintf("%s %s", name, cities[int(id)%len(cities)])
		if err := c.AddEntity(&corpus.Entity{
			ID: id, Domain: "restaurants", Name: name, SeedQuery: seed,
		}); err != nil {
			log.Fatal(err)
		}
		dish := dishes[int(id)%len(dishes)]
		street := streets[int(id)%len(streets)]
		for pi := 0; pi < 8; pi++ {
			aspect := corpus.Aspect("MENU")
			if pi%2 == 1 {
				aspect = "LOCATION"
			}
			page := &corpus.Page{ID: pageID, Entity: id,
				URL:   fmt.Sprintf("http://food.example/%d", pageID),
				Title: fmt.Sprintf("%s %s", name, aspect)}
			pageID++
			// Anchor paragraph so the seed query matches every page.
			addPara(page, tok, "", seed+" review page")
			for k := 0; k < 3; k++ {
				if aspect == "MENU" {
					addPara(page, tok, aspect, fmt.Sprintf(
						"the menu features %s and seasonal %s specials priced around $%d",
						dish, cuisines[rng.IntN(len(cuisines))], 12+rng.IntN(20)))
				} else {
					addPara(page, tok, aspect, fmt.Sprintf(
						"find us on %s near downtown %s with street parking",
						street, cities[rng.IntN(len(cities))]))
				}
			}
			if err := c.AddPage(page); err != nil {
				log.Fatal(err)
			}
		}
	}

	// 4. Wire the system and harvest.
	sys, err := l2q.NewSystem(c, kb, []l2q.Aspect{"MENU", "LOCATION"}, tok, l2q.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	dm, err := sys.LearnDomain("MENU", sys.EntityIDs()[:8])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned %d templates from the restaurant domain, e.g.:\n", len(dm.TemplateP))
	shown := 0
	for k := range dm.TemplateP {
		fmt.Printf("  %s\n", k)
		if shown++; shown == 5 {
			break
		}
	}

	target := sys.Corpus().Entity(11)
	h := sys.NewHarvester(target, "MENU", dm)
	fired := h.Run(l2q.NewL2QBAL(), 2)
	fmt.Printf("\nharvested %q MENU pages with queries %v:\n", target.Name, fired)
	for _, p := range h.Pages() {
		mark := " "
		if p.Entity == target.ID && sys.Relevant("MENU", p) {
			mark = "✓"
		}
		fmt.Printf("  [%s] %s\n", mark, p.Title)
	}
}

func addPara(p *corpus.Page, tok *textproc.Tokenizer, a corpus.Aspect, text string) {
	p.Paras = append(p.Paras, corpus.Paragraph{
		Text: text, Tokens: tok.Tokenize(text), Aspect: a,
	})
}
