// HTTP harvest: run the full L2Q loop across a real HTTP boundary — the
// setting the paper targets, where the harvester pays per search-API call
// and per page download (§I) — and across a *hostile* one: the remote
// client here talks to the search API through a fault injector that
// answers 20% of requests with a 500 and truncates another 10% mid-body,
// and the harvest still gathers exactly the pages the in-process engine
// does, because the transport retries transient faults with exponential
// backoff instead of silently losing work.
//
// The example then flips the topology with the server-side batch-harvest
// API: one POST /api/v1/harvest runs pipelined sessions next to the index and
// streams framed progress events back, replacing the per-query per-page
// traffic of the client-side run.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"l2q"
)

func main() {
	sys, err := l2q.NewSyntheticSystem(l2q.Researchers, l2q.SystemOptions{
		NumEntities:    40,
		PagesPerEntity: 30,
		Seed:           5,
	})
	if err != nil {
		log.Fatal(err)
	}
	ids := sys.EntityIDs()
	dm, err := sys.LearnDomain("RESEARCH", ids[:20])
	if err != nil {
		log.Fatal(err)
	}
	target := sys.Corpus().Entity(ids[len(ids)-1])

	// Serve the corpus as a search API on a random local port...
	srv := sys.NewSearchServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	// ...and put a fault injector in front of it: a flaky mirror of the
	// same API that errors or truncates 30% of responses.
	flaky := &l2q.FaultInjector{
		Next:         srv.Handler(),
		ErrorRate:    0.20,
		TruncateRate: 0.10,
		Seed:         7,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go http.Serve(ln, flaky) //nolint:errcheck // closed by ln.Close on exit
	flakyAddr := ln.Addr().String()
	fmt.Printf("search API serving %d pages on http://%s\n", sys.Corpus().NumPages(), addr)
	fmt.Printf("flaky front end on http://%s (20%% errors, 10%% truncated bodies)\n\n", flakyAddr)

	// Dial the FLAKY address with a patient retry policy, once per wire
	// codec: CodecAuto negotiates the binary frames, CodecJSON pins the
	// debug wire. Both must harvest identically through the faults.
	retry := l2q.RetryPolicy{MaxAttempts: 8, BaseDelay: 5 * time.Millisecond}
	dialFlaky := func(codec l2q.Codec) *l2q.RemoteEngine {
		re, err := sys.DialRemoteOpts(flakyAddr, l2q.RemoteOptions{Retry: retry, Codec: codec})
		if err != nil {
			log.Fatal(err)
		}
		return re
	}
	remote := dialFlaky(l2q.CodecAuto)
	st := remote.Stats()
	fmt.Printf("dialed: top-%d results, μ=%.0f, %d terms, binary wire negotiated: %v\n\n",
		st.TopK, st.Mu, st.NumTerms, remote.WireNegotiated())

	fmt.Printf("harvesting %q RESEARCH remotely through the faults (3 queries, binary wire)\n", target.Name)
	rh := sys.NewRemoteHarvester(remote, target, "RESEARCH", dm)
	remoteFired := rh.Run(l2q.NewL2QBAL(), 3)
	for i, q := range remoteFired {
		fmt.Printf("  q(%d) = %s\n", i+1, q)
	}
	m := remote.Metrics()
	passed, errs, truncated := flaky.Counts()
	fmt.Printf("gathered %d pages over HTTP; %d requests (%d retried, %d failed for good)\n",
		len(rh.Pages()), m.Requests, m.Retries, m.Errors)
	fmt.Printf("injector: %d served, %d errored, %d truncated\n\n", passed, errs, truncated)

	// The same flaky harvest pinned to JSON — the wire codec must be
	// invisible to the harvest's behavior.
	jh := sys.NewRemoteHarvester(dialFlaky(l2q.CodecJSON), target, "RESEARCH", dm)
	jsonFired := jh.Run(l2q.NewL2QBAL(), 3)

	// The ground truth: the same harvest with the in-process engine.
	lh := sys.NewHarvesterSeeded(target, "RESEARCH", dm, 1)
	localFired := lh.Run(l2q.NewL2QBAL(), 3)

	same := len(localFired) == len(remoteFired) && len(jsonFired) == len(remoteFired)
	for i := 0; same && i < len(localFired); i++ {
		same = localFired[i] == remoteFired[i] && jsonFired[i] == remoteFired[i]
	}
	fmt.Printf("in-process and JSON-wire runs selected the same queries: %v\n", same)
	fmt.Printf("pages gathered: %d binary vs %d json vs %d local\n\n",
		len(rh.Pages()), len(jh.Pages()), len(lh.Pages()))
	if !same || len(rh.Pages()) != len(lh.Pages()) || len(jh.Pages()) != len(lh.Pages()) {
		// This example doubles as the CI smoke test for the remote path:
		// a parity break must fail the run, not just print false.
		log.Fatalf("wire/in-process parity broken: queries %v vs %v vs %v, pages %d/%d/%d",
			remoteFired, jsonFired, localFired, len(rh.Pages()), len(jh.Pages()), len(lh.Pages()))
	}

	// Server-side batch harvest: one POST, sessions run next to the index,
	// progress streams back as events (wire frames when negotiated, NDJSON
	// otherwise). POSTs do real work and are not retried, so this client
	// dials the clean address.
	fmt.Println("server-side batch harvest of 3 entities (POST /api/v1/harvest):")
	direct, err := sys.DialRemote(addr)
	if err != nil {
		log.Fatal(err)
	}
	batch := []l2q.EntityID{ids[len(ids)-3], ids[len(ids)-2], ids[len(ids)-1]}
	events, entitiesDone := 0, 0
	err = direct.HarvestBatch(context.Background(), l2q.HarvestRequest{
		Entities: batch,
		Aspect:   "RESEARCH",
		Strategy: "L2QBAL",
		NQueries: 2,
	}, func(ev l2q.HarvestEvent) error {
		events++
		switch ev.Type {
		case "progress":
			fmt.Printf("  entity %d · q(%d) = %s (+%d pages)\n", ev.Entity, ev.Iteration, ev.Query, ev.NewPages)
		case "entity":
			entitiesDone++
			fmt.Printf("  entity %d done: %d queries, %d pages\n", ev.Entity, len(ev.Fired), len(ev.Pages))
		case "error":
			fmt.Printf("  entity %d failed: %s\n", ev.Entity, ev.Error)
		case "done":
			fmt.Printf("  batch done: %d entities, %d failed\n", ev.Entities, ev.Failed)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d events streamed, %d entities harvested server-side\n", events, entitiesDone)
}
