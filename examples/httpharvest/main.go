// HTTP harvest: run the full L2Q loop across a real HTTP boundary — the
// setting the paper targets, where the harvester pays per search-API call
// and per page download (§I).
//
// The example starts an in-process search API (the same server
// cmd/l2qserve runs), dials it, and harvests one researcher's RESEARCH
// aspect remotely: queries go out as HTTP searches, result pages come back
// as HTML and are segmented on the client. It then repeats the harvest
// with the in-process engine and shows the two are identical — plus the
// request bill the remote run paid, which is exactly the cost L2Q's query
// selection exists to minimize.
package main

import (
	"context"
	"fmt"
	"log"

	"l2q"
)

func main() {
	sys, err := l2q.NewSyntheticSystem(l2q.Researchers, l2q.SystemOptions{
		NumEntities:    40,
		PagesPerEntity: 30,
		Seed:           5,
	})
	if err != nil {
		log.Fatal(err)
	}
	ids := sys.EntityIDs()
	dm, err := sys.LearnDomain("RESEARCH", ids[:20])
	if err != nil {
		log.Fatal(err)
	}
	target := sys.Corpus().Entity(ids[len(ids)-1])

	// Serve the corpus as a search API on a random local port.
	srv := sys.NewSearchServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	fmt.Printf("search API serving %d pages on http://%s\n", sys.Corpus().NumPages(), addr)

	remote, err := sys.DialRemote(addr)
	if err != nil {
		log.Fatal(err)
	}
	st := remote.Stats()
	fmt.Printf("dialed: top-%d results, μ=%.0f, %d terms\n\n", st.TopK, st.Mu, st.NumTerms)

	fmt.Printf("harvesting %q RESEARCH remotely (3 queries)\n", target.Name)
	rh := sys.NewRemoteHarvester(remote, target, "RESEARCH", dm)
	remoteFired := rh.Run(l2q.NewL2QBAL(), 3)
	for i, q := range remoteFired {
		fmt.Printf("  q(%d) = %s\n", i+1, q)
	}
	fmt.Printf("gathered %d pages over HTTP; %d HTTP requests total\n\n",
		len(rh.Pages()), remote.Requests())

	lh := sys.NewHarvesterSeeded(target, "RESEARCH", dm, 1)
	localFired := lh.Run(l2q.NewL2QBAL(), 3)

	same := len(localFired) == len(remoteFired)
	for i := 0; same && i < len(localFired); i++ {
		same = localFired[i] == remoteFired[i]
	}
	fmt.Printf("in-process run selected the same queries: %v\n", same)
	fmt.Printf("pages gathered: %d remote vs %d local\n", len(rh.Pages()), len(lh.Pages()))

	rel := 0
	for _, p := range rh.Pages() {
		if sys.Relevant("RESEARCH", p) {
			rel++
		}
	}
	fmt.Printf("relevant pages in the remote harvest: %d/%d\n", rel, len(rh.Pages()))
}
