// Jobs API: long-running harvests as first-class server-side objects.
//
// POST /api/harvest holds its connection open for the whole batch; this
// example drives the asynchronous alternative end to end against a real
// HTTP boundary:
//
//  1. submit a batch harvest as a job (POST /api/jobs → id) with an
//     ADAPTIVE query budget — the server's shared scheduler pools the
//     queries and reallocates them each round toward the entities with
//     the highest marginal ΔR_E(Φ) gain;
//  2. follow its NDJSON event stream (GET /api/jobs/{id}?stream=1);
//  3. kill a second, identical job mid-harvest (DELETE), read the
//     per-entity checkpoints from its status, and resume it as a new job
//     via the request's "resume" field;
//  4. verify the killed-and-resumed run fired exactly the queries of an
//     uninterrupted run — the checkpoint/resume contract;
//  5. read GET /api/metrics (scheduler queue depth, budget pool state).
//
// The example exits non-zero on any parity break, so CI can run it as a
// smoke test.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"reflect"
	"time"

	"l2q"
)

func main() {
	sys, err := l2q.NewSyntheticSystem(l2q.Researchers, l2q.SystemOptions{
		NumEntities:    40,
		PagesPerEntity: 30,
		Seed:           5,
	})
	if err != nil {
		log.Fatal(err)
	}
	ids := sys.EntityIDs()
	targets := ids[len(ids)-6:]
	const nQueries = 4
	const aspect = "RESEARCH"

	srv := sys.NewSearchServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	client, err := sys.DialRemote(addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search API + jobs API on http://%s\n\n", addr)
	ctx := context.Background()

	// ── 1+2: an adaptive-budget job, followed live ─────────────────────
	id, err := client.SubmitJob(ctx, l2q.HarvestRequest{
		Entities: targets,
		Aspect:   aspect,
		NQueries: nQueries,
		Budget:   &l2q.BudgetSpec{Mode: "adaptive"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s submitted (%d entities × %d queries, adaptive budget %d)\n",
		id, len(targets), nQueries, len(targets)*nQueries)
	firedTotal := 0
	err = client.StreamJob(ctx, id, func(ev l2q.HarvestEvent) error {
		switch ev.Type {
		case "entity":
			firedTotal += len(ev.Fired)
			fmt.Printf("  entity %3d done: %d queries, %d pages\n", ev.Entity, len(ev.Fired), len(ev.Pages))
		case "error":
			return fmt.Errorf("entity %d failed: %s", ev.Entity, ev.Error)
		case "done":
			fmt.Printf("  done: %d entities, %d failed, %d queries spent of %d budget\n",
				ev.Entities, ev.Failed, firedTotal, len(targets)*nQueries)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if firedTotal > len(targets)*nQueries {
		log.Fatalf("PARITY BREAK: adaptive job overspent its budget (%d > %d)", firedTotal, len(targets)*nQueries)
	}

	// ── 3: kill a fixed-budget job mid-harvest, then resume it ─────────
	fmt.Printf("\nkilling a job mid-harvest and resuming from its checkpoints:\n")
	id2, err := client.SubmitJob(ctx, l2q.HarvestRequest{
		Entities: targets,
		Aspect:   aspect,
		NQueries: nQueries,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Wait for a little progress, then cancel. (If the harvest outraces
	// the poll and finishes first, skip the cancel — DELETE on a done
	// job forgets the record — and resume from the final checkpoints,
	// which degenerates to a no-op replay with the same parity contract.)
	var st l2q.JobStatus
	for {
		if st, err = client.JobStatus(ctx, id2, false); err != nil {
			log.Fatal(err)
		}
		if st.Events >= 2 || st.State == l2q.JobDone {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.State != l2q.JobDone {
		if err := client.CancelJob(ctx, id2); err != nil {
			log.Fatal(err)
		}
	}
	for {
		if st, err = client.JobStatus(ctx, id2, true); err != nil {
			var te *l2q.TransportError
			if errors.As(err, &te) && te.Status == http.StatusNotFound {
				// The job completed between the status poll and the
				// DELETE, which therefore forgot the record instead of
				// canceling. Resume from zero checkpoints — the parity
				// check below covers the from-scratch replay too.
				st = l2q.JobStatus{State: l2q.JobDone}
				break
			}
			log.Fatal(err)
		}
		if st.State == l2q.JobCanceled || st.State == l2q.JobDone {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	already := 0
	prior := make(map[l2q.EntityID][]string)
	for _, cp := range st.Checkpoints {
		already += len(cp.Fired)
		for _, q := range cp.Fired {
			prior[cp.Entity] = append(prior[cp.Entity], string(q))
		}
	}
	fmt.Printf("  job %s %s with %d queries already paid for across %d checkpoints\n",
		id2, st.State, already, len(st.Checkpoints))

	id3, err := client.SubmitJob(ctx, l2q.HarvestRequest{
		Entities: targets,
		Aspect:   aspect,
		NQueries: nQueries,
		Resume:   st.Checkpoints,
	})
	if err != nil {
		log.Fatal(err)
	}
	resumedFired := make(map[l2q.EntityID][]string)
	err = client.StreamJob(ctx, id3, func(ev l2q.HarvestEvent) error {
		switch ev.Type {
		case "entity":
			resumedFired[ev.Entity] = ev.Fired
		case "error":
			return fmt.Errorf("resumed entity %d failed: %s", ev.Entity, ev.Error)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  job %s resumed and finished, paying only the remaining queries\n", id3)

	// ── 4: parity with an uninterrupted run ────────────────────────────
	dm, err := sys.LearnDomain(aspect, ids[:20])
	if err != nil {
		log.Fatal(err)
	}
	for _, eid := range targets {
		h := sys.NewHarvesterSeeded(sys.Corpus().Entity(eid), aspect, dm, uint64(eid)+1)
		want := h.Run(l2q.NewL2QBAL(), nQueries)
		got := append([]string(nil), prior[eid]...)
		got = append(got, resumedFired[eid]...)
		wantS := make([]string, len(want))
		for i, q := range want {
			wantS[i] = string(q)
		}
		if !reflect.DeepEqual(got, wantS) {
			log.Fatalf("PARITY BREAK: entity %d killed+resumed fired %v, uninterrupted %v", eid, got, wantS)
		}
	}
	fmt.Printf("  parity OK: killed+resumed fired sequences match an uninterrupted run\n")

	// ── 5: server-side metrics ─────────────────────────────────────────
	m, err := client.ServerMetrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserver metrics: %d requests served; scheduler finished %d jobs, fired %d queries\n",
		m.Requests, m.Scheduler.FinishedJobs, m.Scheduler.FiredQueries)
	fmt.Println("\njobs API round trip complete")
}
