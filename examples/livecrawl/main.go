// Live crawl: a focused crawler feeding the very index it is queried
// through. The crawler's page sink streams every fetched page into a
// generational LiveEngine, and the example searches that engine WHILE
// the crawl is still discovering pages — the serving-while-ingesting
// posture the live index exists for. No rebuild, no downtime: each
// absorbed page is searchable from the next query on.
//
// The example ends with the live index's headline correctness check: an
// engine grown page by page must rank EXACTLY like a frozen engine
// rebuilt from scratch over the same page sequence — same pages, same
// order, same scores to the last bit. A mismatch exits non-zero, which
// is how CI uses this program as a smoke test.
package main

import (
	"fmt"
	"log"
	"os"

	"l2q"
)

func main() {
	sys, err := l2q.NewSyntheticSystem(l2q.Researchers, l2q.SystemOptions{
		NumEntities:    40,
		PagesPerEntity: 30,
		Seed:           7,
	})
	if err != nil {
		log.Fatal(err)
	}
	c := sys.Corpus()
	target := c.Entities[c.NumEntities()-1]
	aspect := l2q.Aspect("RESEARCH")
	fmt.Printf("corpus: %d pages; crawling toward %q (aspect %s)\n",
		c.NumPages(), target.Name, aspect)

	// The live index starts EMPTY: everything it serves, the crawler put
	// there. A small memtable forces several generational seals, so the
	// final parity check spans real segment boundaries.
	live := l2q.NewLiveEngine(nil, l2q.EngineOptions{}, l2q.LiveOptions{MemtableDocs: 24})

	// Seed the frontier with the target's seed-query results, fetched
	// from the full corpus engine (the "commercial search engine" hop the
	// paper starts every harvest with).
	var seeds []*l2q.Page
	for _, r := range sys.Engine().SearchWithSeed(target.SeedTokens(), nil) {
		seeds = append(seeds, r.Page)
	}

	query := []string{"research"}
	var ingested []*l2q.Page
	res := l2q.Crawl(l2q.CrawlPageIndex(c), seeds,
		func(p *l2q.Page) bool { return sys.Relevant(aspect, p) },
		l2q.CrawlConfig{
			Budget: 120,
			// The sink runs synchronously per fetch: absorb the page,
			// and every 30 pages query the index mid-crawl.
			Sink: func(p *l2q.Page) {
				live.Add(p)
				ingested = append(ingested, p)
				if len(ingested)%30 == 0 {
					hits := live.SearchWithSeed(target.SeedTokens(), query)
					m := live.Metrics()
					fmt.Printf("  %3d pages in (epoch %d, %d segments): top hit for %v → ",
						len(ingested), m.Epoch, m.Segments, query)
					if len(hits) == 0 {
						fmt.Println("none yet")
					} else {
						fmt.Printf("page %d (%.4f)\n", hits[0].Page.ID, hits[0].Score)
					}
				}
			},
		})
	live.Quiesce() // drain background compaction before the final audit
	m := live.Metrics()
	fmt.Printf("crawl done: %d fetches, live index holds %d docs in %d segments (%d compactions)\n",
		res.Fetches, m.NumDocs, m.Segments, m.Compactions)

	// The audit: rebuild a frozen engine over the exact ingest sequence
	// and hold every ranking to bit-identity.
	frozen := l2q.NewEngine(ingested, l2q.EngineOptions{})
	queries := [][]string{{"research"}, {"research", "award"}, {"university"}, nil}
	mismatches := 0
	for _, e := range c.Entities {
		for _, q := range queries {
			got := live.SearchWithSeed(e.SeedTokens(), q)
			want := frozen.SearchWithSeed(e.SeedTokens(), q)
			if len(got) != len(want) {
				fmt.Printf("PARITY BREAK: entity %d query %v: grown %d hits, rebuilt %d\n",
					e.ID, q, len(got), len(want))
				mismatches++
				continue
			}
			for i := range want {
				if got[i].Page.ID != want[i].Page.ID || got[i].Score != want[i].Score {
					fmt.Printf("PARITY BREAK: entity %d query %v rank %d: grown page %d (%.17g), rebuilt page %d (%.17g)\n",
						e.ID, q, i, got[i].Page.ID, got[i].Score, want[i].Page.ID, want[i].Score)
					mismatches++
				}
			}
		}
	}
	if mismatches > 0 {
		fmt.Printf("FAIL: %d ranking mismatches between the grown and rebuilt index\n", mismatches)
		os.Exit(1)
	}
	fmt.Printf("parity: %d entities × %d queries rank identically on the grown and rebuilt index\n",
		c.NumEntities(), len(queries))
}
