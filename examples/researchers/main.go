// Researchers: a deeper tour of domain-aware L2Q on the researcher domain.
// It inspects what the domain phase learned — the highest-utility templates
// — and contrasts three strategies (basic P, template-based P+t, and the
// full L2QP) on the same target entity, mirroring the paper's §VI-B
// ablation narrative.
package main

import (
	"fmt"
	"log"
	"sort"

	"l2q"
)

func main() {
	sys, err := l2q.NewSyntheticSystem(l2q.Researchers, l2q.SystemOptions{
		NumEntities:    80,
		PagesPerEntity: 40,
		Seed:           7,
	})
	if err != nil {
		log.Fatal(err)
	}
	ids := sys.EntityIDs()
	const aspect = l2q.Aspect("RESEARCH")

	dm, err := sys.LearnDomain(aspect, ids[:40])
	if err != nil {
		log.Fatal(err)
	}

	// What did the domain phase learn? Show the top templates by
	// precision utility — expect 〈topic〉- and 〈venue〉-shaped patterns.
	type tmpl struct {
		key string
		p   float64
	}
	var tmpls []tmpl
	for k, p := range dm.TemplateP {
		tmpls = append(tmpls, tmpl{key: k, p: p})
	}
	sort.Slice(tmpls, func(i, j int) bool {
		if tmpls[i].p != tmpls[j].p {
			return tmpls[i].p > tmpls[j].p
		}
		return tmpls[i].key < tmpls[j].key
	})
	fmt.Println("top domain templates by precision utility:")
	for _, t := range tmpls[:min(8, len(tmpls))] {
		fmt.Printf("  %-32s P_D = %.3f\n", t.key, t.p)
	}

	// Harvest the same entity with three strategies of increasing
	// sophistication and compare what they gather.
	target := sys.Corpus().Entity(ids[len(ids)-1])
	fmt.Printf("\ntarget: %q, aspect %s\n", target.Name, aspect)

	for _, tc := range []struct {
		name string
		sel  l2q.Selector
		dm   *l2q.DomainModel
	}{
		{"P    (no domain, no context)", l2q.NewP(), nil},
		{"P+t  (templates, no context)", l2q.NewPT(), dm},
		{"L2QP (full approach)", l2q.NewL2QP(), dm},
	} {
		h := sys.NewHarvester(target, aspect, tc.dm)
		fired := h.Run(tc.sel, 3)
		rel, own := 0, 0
		for _, p := range h.Pages() {
			if p.Entity == target.ID {
				own++
				if sys.Relevant(aspect, p) {
					rel++
				}
			}
		}
		fmt.Printf("\n%s\n  queries: %v\n  gathered %d pages (%d of the entity, %d relevant)\n",
			tc.name, fired, len(h.Pages()), own, rel)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
