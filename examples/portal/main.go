// Vertical portal (the paper's second motivating application, §I): build
// an ArnetMiner-style researcher portal by harvesting *every* aspect of
// each featured researcher — RESEARCH, AWARD, EDUCATION, ... — and
// emitting one static profile page per entity with the best snippets per
// aspect, plus a directory page.
//
// Pass -out <dir> to write the HTML; by default the example prints a text
// summary of what the portal would contain.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"l2q"
)

func main() {
	out := flag.String("out", "", "directory to write the portal HTML into (empty = print summary)")
	flag.Parse()

	sys, err := l2q.NewSyntheticSystem(l2q.Researchers, l2q.SystemOptions{
		NumEntities:    50,
		PagesPerEntity: 30,
		Seed:           11,
	})
	if err != nil {
		log.Fatal(err)
	}
	ids := sys.EntityIDs()
	featured := ids[44:] // the portal's researchers
	aspects := sys.Aspects()

	// One domain phase per aspect, learned from the non-featured half.
	models := make(map[l2q.Aspect]*l2q.DomainModel, len(aspects))
	for _, a := range aspects {
		dm, err := sys.LearnDomain(a, ids[:25])
		if err != nil {
			log.Fatal(err)
		}
		models[a] = dm
	}

	type profile struct {
		entity   *l2q.Entity
		snippets map[l2q.Aspect][]string
	}
	var profiles []profile
	for _, id := range featured {
		e := sys.Corpus().Entity(id)
		p := profile{entity: e, snippets: make(map[l2q.Aspect][]string)}
		for _, a := range aspects {
			h := sys.NewHarvester(e, a, models[a])
			h.Run(l2q.NewL2QBAL(), 2)
			p.snippets[a] = bestSnippets(sys, a, h.Pages(), 2)
		}
		profiles = append(profiles, p)
		fmt.Printf("profiled %-22s (%d aspects)\n", e.Name, len(aspects))
	}

	if *out == "" {
		fmt.Println()
		for _, p := range profiles {
			fmt.Printf("== %s ==\n", p.entity.Name)
			for _, a := range aspects {
				if sn := p.snippets[a]; len(sn) > 0 {
					fmt.Printf("  [%s] %s\n", a, trim(sn[0], 96))
				}
			}
		}
		fmt.Println("\n(re-run with -out portal/ to emit the HTML site)")
		return
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	var index strings.Builder
	index.WriteString("<!DOCTYPE html>\n<html><head><title>Researcher portal</title></head><body>\n")
	index.WriteString("<h1>Researcher portal</h1>\n<ul>\n")
	for _, p := range profiles {
		page := renderProfile(p.entity, aspects, p.snippets)
		name := fmt.Sprintf("entity-%d.html", p.entity.ID)
		if err := os.WriteFile(filepath.Join(*out, name), []byte(page), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(&index, "<li><a href=%q>%s</a></li>\n", name, escape(p.entity.Name))
	}
	index.WriteString("</ul>\n</body></html>\n")
	if err := os.WriteFile(filepath.Join(*out, "index.html"), []byte(index.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %d profiles + index to %s\n", len(profiles), *out)
}

// bestSnippets pulls up to k aspect-labeled paragraph texts from the
// harvested pages, preferring pages the classifier marks relevant.
func bestSnippets(sys *l2q.System, a l2q.Aspect, pages []*l2q.Page, k int) []string {
	var out []string
	for pass := 0; pass < 2 && len(out) < k; pass++ {
		for _, p := range pages {
			if len(out) >= k {
				break
			}
			if (pass == 0) != sys.Relevant(a, p) {
				continue
			}
			for i := range p.Paras {
				if p.Paras[i].Aspect == a {
					out = append(out, p.Paras[i].Text)
					break
				}
			}
		}
	}
	return out
}

func renderProfile(e *l2q.Entity, aspects []l2q.Aspect, snippets map[l2q.Aspect][]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<!DOCTYPE html>\n<html><head><title>%s</title></head><body>\n", escape(e.Name))
	fmt.Fprintf(&b, "<h1>%s</h1>\n<p>seed query: <code>%s</code></p>\n", escape(e.Name), escape(e.SeedQuery))
	for _, a := range aspects {
		sn := snippets[a]
		if len(sn) == 0 {
			continue
		}
		fmt.Fprintf(&b, "<h2>%s</h2>\n", escape(string(a)))
		for _, s := range sn {
			fmt.Fprintf(&b, "<p>%s</p>\n", escape(s))
		}
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
