// Business analytics (the paper's first motivating application, §I):
// harvest pages about one aspect of every product in a fleet — here the
// SAFETY aspect of car models — and drill into the harvested paragraphs to
// build an analyst's digest: coverage per model, the vocabulary customers
// see, and which models' safety stories look thin.
//
// The harvest runs with the pipelined scheduler (selection and fetch
// interleaved across entities, §VI-C's efficiency note), exactly how a
// production analytics crawl would batch a whole catalog.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"l2q"
)

const aspect = l2q.Aspect("SAFETY")

func main() {
	sys, err := l2q.NewSyntheticSystem(l2q.Cars, l2q.SystemOptions{
		NumEntities:    40,
		PagesPerEntity: 30,
		Seed:           7,
	})
	if err != nil {
		log.Fatal(err)
	}
	ids := sys.EntityIDs()
	fleet := ids[28:] // the models under analysis
	fmt.Printf("analyzing the %s aspect of %d car models (corpus: %d pages)\n\n",
		aspect, len(fleet), sys.Corpus().NumPages())

	// Domain phase from the remaining models' pages.
	dm, err := sys.LearnDomain(aspect, ids[:28])
	if err != nil {
		log.Fatal(err)
	}

	// Fleet harvest: 3 selected queries per model, pipelined.
	start := time.Now()
	results := sys.HarvestPipelined(context.Background(), fleet, aspect, dm,
		l2q.NewL2QBAL(), 3, nil)
	fmt.Printf("harvested %d models in %v\n\n", len(results), time.Since(start).Round(time.Millisecond))

	type row struct {
		name     string
		pages    int
		relevant int
		relParas int
		topTerms []string
		queries  []l2q.Query
	}
	var rows []row
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("%s: %v", r.Entity.Name, r.Err)
		}
		rw := row{name: r.Entity.Name, pages: len(r.Pages), queries: r.Fired}
		termCount := map[string]int{}
		for _, p := range r.Pages {
			if sys.Relevant(aspect, p) {
				rw.relevant++
			}
			for i := range p.Paras {
				if p.Paras[i].Aspect != aspect {
					continue
				}
				rw.relParas++
				for _, t := range p.Paras[i].Tokens {
					if len(t) > 3 { // skip short glue words
						termCount[t]++
					}
				}
			}
		}
		rw.topTerms = topK(termCount, 4)
		rows = append(rows, rw)
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].relParas > rows[j].relParas })
	fmt.Printf("%-24s %6s %6s %7s  %-28s %s\n",
		"model", "pages", "rel", "paras", "aspect vocabulary", "selected queries")
	for _, r := range rows {
		fmt.Printf("%-24s %6d %6d %7d  %-28s %s\n",
			r.name, r.pages, r.relevant, r.relParas,
			strings.Join(r.topTerms, " "), joinQueries(r.queries))
	}

	// The analyst's red flags: models whose safety coverage trails the
	// fleet (the business signal this pipeline exists to surface).
	fmt.Printf("\nthin coverage (bottom quartile by %s paragraphs):\n", aspect)
	for _, r := range rows[len(rows)-len(rows)/4:] {
		fmt.Printf("  %-24s %d paragraphs across %d relevant pages\n", r.name, r.relParas, r.relevant)
	}
}

func topK(counts map[string]int, k int) []string {
	type tc struct {
		t string
		n int
	}
	all := make([]tc, 0, len(counts))
	for t, n := range counts {
		all = append(all, tc{t, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].t < all[j].t
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, 0, k)
	for _, e := range all[:k] {
		out = append(out, e.t)
	}
	return out
}

func joinQueries(qs []l2q.Query) string {
	parts := make([]string, len(qs))
	for i, q := range qs {
		parts[i] = string(q)
	}
	return strings.Join(parts, " | ")
}
