// Command l2qgen generates a synthetic web corpus and either prints summary
// statistics or writes the corpus to disk (gob or JSON) for other tools.
//
// Usage:
//
//	l2qgen -domain researchers -entities 996 -pages 50 -o corpus.gob
//	l2qgen -domain cars -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"l2q/internal/corpus"
	"l2q/internal/synth"
)

func main() {
	var (
		domain   = flag.String("domain", "researchers", "researchers or cars")
		entities = flag.Int("entities", 0, "number of entities (0 = paper scale)")
		pages    = flag.Int("pages", 0, "pages per entity (0 = paper's 50)")
		seed     = flag.Uint64("seed", 2016, "generation seed")
		out      = flag.String("o", "", "output file (.gob or .json); empty = stats only")
		stats    = flag.Bool("stats", true, "print corpus statistics")
		sample   = flag.Int("sample", 0, "print N sample pages")
	)
	flag.Parse()

	cfg := synth.DefaultConfig(corpus.Domain(*domain))
	if *entities > 0 {
		cfg.NumEntities = *entities
	}
	if *pages > 0 {
		cfg.PagesPerEntity = *pages
	}
	cfg.Seed = *seed

	g, err := synth.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "l2qgen: %v\n", err)
		os.Exit(1)
	}

	if *stats {
		s := g.Corpus.ComputeStats()
		fmt.Printf("domain:      %s\n", s.Domain)
		fmt.Printf("entities:    %d\n", s.Entities)
		fmt.Printf("pages:       %d\n", s.Pages)
		fmt.Printf("paragraphs:  %d\n", s.Paragraphs)
		fmt.Printf("tokens:      %d\n", s.Tokens)
		fmt.Printf("kb words:    %d across %d types\n", g.KB.Len(), len(g.KB.Types()))
		fmt.Println("paragraphs per aspect:")
		aspects := make([]corpus.Aspect, 0, len(s.ParasByAspect))
		for a := range s.ParasByAspect {
			aspects = append(aspects, a)
		}
		sort.Slice(aspects, func(i, j int) bool {
			return s.ParasByAspect[aspects[i]] > s.ParasByAspect[aspects[j]]
		})
		for _, a := range aspects {
			fmt.Printf("  %-14s %8d\n", a, s.ParasByAspect[a])
		}
	}

	for i := 0; i < *sample && i < g.Corpus.NumPages(); i++ {
		p := g.Corpus.Pages[i]
		fmt.Printf("\n--- page %d: %s (%s)\n", p.ID, p.Title, p.URL)
		for _, para := range p.Paras {
			label := string(para.Aspect)
			if label == "" {
				label = "-"
			}
			fmt.Printf("  [%-12s] %s\n", label, para.Text)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "l2qgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if strings.HasSuffix(*out, ".json") {
			err = g.Corpus.WriteJSON(f)
		} else {
			err = g.Corpus.WriteGob(f)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "l2qgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
}
