// Command l2qload drives a live l2qserve with sustained mixed traffic —
// searches in both codecs (JSON and the L2QWIR1 binary frames), raw page
// downloads, metrics scrapes, synchronous streaming harvests, and the
// async jobs API — and reports per-endpoint p50/p99/p999 latency, QPS,
// and server-side allocations per request as one JSON line (the
// BENCH_load.json trajectory artifact).
//
// It is also the admission-control verifier: pointed at a server with
// -maxinflight set and driven past saturation (more workers than slots),
// it asserts that overload degrades gracefully — every shed response is
// the 429 retryable error envelope, no submitted job is lost, and the
// p999 of served requests stays bounded — instead of collapsing into
// queueing convoys.
//
// With no -addr it self-serves: it builds a synthetic corpus, starts an
// in-process server (admission control included), and drives that —
// the zero-setup mode CI's load smoke uses.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"l2q/internal/corpus"
	"l2q/internal/search"
	"l2q/internal/store"
	"l2q/internal/synth"
	"l2q/internal/textproc"
	"l2q/internal/types"
	"l2q/internal/webapi"
)

func main() {
	var (
		addr     = flag.String("addr", "", "target server base URL (e.g. http://127.0.0.1:8080); empty self-serves an in-process server")
		duration = flag.Duration("duration", 30*time.Second, "traffic window")
		workers  = flag.Int("workers", 32, "concurrent closed-loop workers")
		mix      = flag.String("mix", "search=55,page=25,metrics=5,harvest=5,jobs=10", "op mix weights")
		codec    = flag.String("codec", "mixed", "search codec: mixed, json or binary")
		aspect   = flag.String("aspect", "", "harvest aspect (self-serve picks one automatically; empty against -addr disables harvest/jobs ops)")
		out      = flag.String("out", "", "also write the JSON report to this file (stdout always gets it)")
		maxInFl  = flag.Int("maxinflight", 0, "self-serve: server admission bound (shed 429 past this many in flight)")
		entities = flag.Int("entities", 30, "self-serve corpus entities")
		pages    = flag.Int("pages", 20, "self-serve pages per entity")
		seed     = flag.Uint64("seed", 2016, "self-serve corpus seed")
		domain   = flag.String("domain", "researchers", "self-serve corpus domain")
		nQueries = flag.Int("nqueries", 3, "per-harvest query budget")
		assert   = flag.Bool("assertshed", false, "require shed traffic and verify shed correctness; exit 1 on violation")
		p999Max  = flag.Duration("p999max", 0, "fail when the overall served p999 exceeds this (0 = report only)")
		quiet    = flag.Bool("quiet", false, "suppress progress logging")
		ingest   = flag.Int("ingest", 0, "live mixed-traffic mode: ingest this many pages/second through POST /api/v1/ingest alongside the search mix (self-serve starts the server with a live generational index); the report gains ingest lag percentiles")
		memtable = flag.Int("memtable", 0, "live self-serve: memtable seal threshold in documents (0 = default)")
		cluster  = flag.Int("cluster", 0, "self-serve a scatter-gather cluster of this many nodes behind an in-process coordinator and drive that (harvest/jobs ops disabled: the coordinator serves retrieval, not harvesting)")
		replicas = flag.Int("replicas", 2, "cluster mode: partition replication factor")
		nodeDl   = flag.Duration("nodedeadline", 0, "cluster mode: coordinator per-node scatter deadline (0 = default)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "l2qload: ", 0)
	if *quiet {
		logger.SetOutput(io.Discard)
	}

	weights, err := parseMix(*mix)
	if err != nil {
		logger.Fatal(err)
	}

	base := *addr
	var srv *webapi.Server
	if base == "" && *cluster > 0 {
		bound, stop, err := selfServeCluster(*domain, *entities, *pages, *seed,
			*cluster, *replicas, *nodeDl, *maxInFl, logger)
		if err != nil {
			logger.Fatal(err)
		}
		base = "http://" + bound
		defer stop()
	} else if base == "" {
		var bound string
		srv, bound, err = selfServe(*domain, *entities, *pages, *seed, *maxInFl, *ingest > 0, *memtable, aspect, logger)
		if err != nil {
			logger.Fatal(err)
		}
		base = "http://" + bound
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
	}
	base = strings.TrimSuffix(base, "/")
	if *aspect == "" {
		weights["harvest"], weights["jobs"] = 0, 0
	}

	d := newDriver(base, *aspect, *nQueries, weights, *codec, logger)
	if err := d.prepare(); err != nil {
		logger.Fatal(err)
	}

	startMetrics, _ := d.serverMetrics()
	perEp := d.calibrate()

	logger.Printf("driving %s with %d workers for %s (mix %s)", base, *workers, *duration, *mix)
	startWall := time.Now()
	var wg sync.WaitGroup
	recs := make([]*recorder, *workers)
	deadline := startWall.Add(*duration)
	var ing *ingester
	if *ingest > 0 {
		if ing, err = newIngester(d, *ingest, *domain, *entities, *pages, *seed, logger); err != nil {
			logger.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ing.run(deadline)
		}()
	}
	for w := 0; w < *workers; w++ {
		rec := newRecorder()
		recs[w] = rec
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d.worker(w, deadline, rec)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(startWall)

	lost := d.awaitJobs(30 * time.Second)
	endMetrics, _ := d.serverMetrics()

	report := d.report(recs, elapsed, perEp, startMetrics, endMetrics, lost)
	report["config"] = map[string]any{
		"addr": base, "workers": *workers, "duration": duration.String(),
		"mix": *mix, "codec": *codec, "maxInflight": *maxInFl,
		"cluster": *cluster, "replicas": *replicas, "ingest": *ingest,
	}

	ok := true
	fail := func(why string) { ok = false; logger.Printf("FAIL: %s", why) }
	if ing != nil {
		report["ingest"] = ing.section(elapsed)
		if ing.errs > 0 {
			fail(fmt.Sprintf("%d ingest batches failed", ing.errs))
		}
	}
	v := report["verify"].(map[string]any)
	if v["shedBadEnvelope"].(int64) > 0 {
		fail("shed responses with a malformed or non-retryable envelope")
	}
	if lost > 0 {
		fail(fmt.Sprintf("%d submitted jobs never reached a terminal state", lost))
	}
	if *assert && v["shed"].(int64) == 0 {
		fail("-assertshed: no requests were shed (not saturated, or admission control off)")
	}
	if *p999Max > 0 {
		if p := report["p999Ms"].(float64); p > float64(p999Max.Milliseconds()) {
			fail(fmt.Sprintf("served p999 %.1fms exceeds bound %s", p, *p999Max))
		}
	}
	report["ok"] = ok

	line, err := json.Marshal(report)
	if err != nil {
		logger.Fatal(err)
	}
	fmt.Println(string(line))
	if *out != "" {
		if err := os.WriteFile(*out, append(line, '\n'), 0o644); err != nil {
			logger.Fatal(err)
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// parseMix parses "search=55,page=25,..." into op weights.
func parseMix(s string) (map[string]int, error) {
	known := map[string]bool{"search": true, "page": true, "metrics": true, "harvest": true, "jobs": true}
	w := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		var n int
		if ok {
			_, err := fmt.Sscanf(val, "%d", &n)
			ok = err == nil
		}
		if !ok || !known[name] || n < 0 {
			return nil, fmt.Errorf("bad mix element %q (want op=weight with op in search,page,metrics,harvest,jobs)", part)
		}
		w[name] = n
	}
	if len(w) == 0 {
		return nil, errors.New("empty mix")
	}
	return w, nil
}

// selfServe builds a synthetic corpus and starts an in-process server
// with harvesting enabled, picking a harvest aspect into *aspect. With
// live set the server fronts a generational engine and accepts ingest,
// which is what the -ingest mixed-traffic mode drives.
func selfServe(domain string, entities, pages int, seed uint64, maxInFlight int, live bool, memtable int, aspect *string, logger *log.Logger) (*webapi.Server, string, error) {
	cfg := synth.DefaultConfig(corpus.Domain(domain))
	cfg.NumEntities = entities
	cfg.PagesPerEntity = pages
	cfg.Seed = seed
	g, err := synth.Generate(cfg)
	if err != nil {
		return nil, "", err
	}
	var srv *webapi.Server
	if live {
		eng := search.NewLiveEngine(g.Corpus.Pages, search.Options{}, search.LiveOptions{MemtableDocs: memtable})
		srv = webapi.NewLiveServer(g.Corpus, eng, g.Tokenizer)
	} else {
		idx := search.BuildIndexOpts(g.Corpus.Pages, search.Options{})
		engine := search.NewEngineOpts(idx, search.Options{})
		srv = webapi.NewServer(g.Corpus, engine)
	}
	srv.MaxInFlight = maxInFlight
	if maxInFlight > 0 {
		srv.MaxConcurrent = maxInFlight
	}
	rec := types.Chain{g.KB, types.NewRegexRecognizer()}
	ln := store.NewDomainLearner(g.Corpus, g.Tokenizer, rec, 0, nil)
	if len(ln.Aspects) > 0 {
		srv.Harvest = &webapi.HarvestBackend{
			Cfg:         ln.Cfg,
			Aspects:     ln.Aspects,
			Y:           ln.Cls.YFunc,
			Rec:         rec,
			DomainModel: ln.Learn,
		}
		if *aspect == "" {
			*aspect = string(ln.Aspects[0])
		}
	}
	bound, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	mode := "frozen"
	if live {
		mode = "live"
	}
	logger.Printf("self-serving %d pages of %q on %s (%s index, maxinflight %d, aspect %q)",
		g.Corpus.NumPages(), domain, bound, mode, maxInFlight, *aspect)
	return srv, bound, nil
}

// ingester paces the live write path: a donor synthetic corpus (same
// shape as the serving corpus, different seed, IDs offset clear of it)
// streamed through POST /api/v1/ingest at a fixed pages/second rate.
// Lag is measured from each batch's SCHEDULED send time to its ack, so
// a server that falls behind shows queueing delay, not just service
// time — latency reporting without coordinated omission.
type ingester struct {
	cli    *webapi.Client
	rate   int
	donor  []webapi.IngestPage
	logger *log.Logger

	lagMs    []float64
	ingested int64
	dups     int64
	batches  int64
	errs     int64
}

func newIngester(d *driver, rate int, domain string, entities, pages int, seed uint64, logger *log.Logger) (*ingester, error) {
	cfg := synth.DefaultConfig(corpus.Domain(domain))
	cfg.NumEntities = entities
	cfg.PagesPerEntity = pages
	cfg.Seed = seed + 1 // donor corpus: same shape, disjoint content
	g, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	// The ingest client keeps the default retry policy: a shed or lost
	// batch is retried, and the server's duplicate-skip idempotency makes
	// redelivery safe.
	cli, err := webapi.DialOpts(d.base, &textproc.Tokenizer{}, webapi.ClientOptions{Codec: webapi.CodecAuto})
	if err != nil {
		return nil, fmt.Errorf("dial (ingest): %w", err)
	}
	ing := &ingester{cli: cli, rate: rate, logger: logger}
	// Donor entity and page IDs are offset out of the serving corpus's
	// range, so every page is new and auto-registers its entity.
	const offset = 1_000_000
	for _, p := range g.Corpus.Pages {
		e := g.Corpus.Entity(p.Entity)
		ip := webapi.IngestPage{
			ID:         p.ID + offset,
			Entity:     p.Entity + offset,
			EntityName: e.Name,
			SeedQuery:  e.SeedQuery,
			URL:        p.URL,
			Title:      p.Title,
		}
		for _, para := range p.Paras {
			ip.Paras = append(ip.Paras, webapi.IngestParagraph{Text: para.Text, Aspect: string(para.Aspect)})
		}
		for _, l := range p.Links {
			ip.Links = append(ip.Links, l+offset)
		}
		ing.donor = append(ing.donor, ip)
	}
	return ing, nil
}

// run streams the donor in paced batches (ten ticks a second) until the
// deadline or the donor runs dry, whichever comes first.
func (ing *ingester) run(deadline time.Time) {
	per := ing.rate / 10
	if per < 1 {
		per = 1
	}
	interval := time.Duration(float64(time.Second) * float64(per) / float64(ing.rate))
	next := 0
	tick := time.Now()
	for time.Now().Before(deadline) && next < len(ing.donor) {
		batch := ing.donor[next:min(next+per, len(ing.donor))]
		next += len(batch)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		resp, err := ing.cli.Ingest(ctx, webapi.IngestRequest{Pages: batch})
		cancel()
		ing.batches++
		if err != nil {
			ing.errs++
		} else {
			ing.lagMs = append(ing.lagMs, float64(time.Since(tick))/float64(time.Millisecond))
			ing.ingested += int64(resp.Ingested)
			ing.dups += int64(resp.Duplicates)
		}
		tick = tick.Add(interval)
		if d := time.Until(tick); d > 0 {
			time.Sleep(d)
		}
	}
	if next >= len(ing.donor) {
		ing.logger.Printf("ingest: donor corpus exhausted after %d pages; raise -entities/-pages for longer windows", next)
	}
}

// section summarizes the ingest stream for the report.
func (ing *ingester) section(elapsed time.Duration) map[string]any {
	sort.Float64s(ing.lagMs)
	return map[string]any{
		"targetPagesPerS":   ing.rate,
		"achievedPagesPerS": float64(ing.ingested) / elapsed.Seconds(),
		"pages":             ing.ingested,
		"duplicates":        ing.dups,
		"batches":           ing.batches,
		"errors":            ing.errs,
		"lagP50Ms":          percentile(ing.lagMs, 0.50),
		"lagP99Ms":          percentile(ing.lagMs, 0.99),
		"lagP999Ms":         percentile(ing.lagMs, 0.999),
	}
}

// selfServeCluster boots nodes in-process node servers over one shared
// synthetic corpus, dials a coordinator across them, and serves the
// scatter-gather surface — the zero-setup cluster the CI smoke drives.
// The returned stop function shuts the whole fleet down.
func selfServeCluster(domain string, entities, pages int, seed uint64,
	nodes, replicas int, nodeDeadline time.Duration, maxInFlight int,
	logger *log.Logger) (string, func(), error) {

	cfg := synth.DefaultConfig(corpus.Domain(domain))
	cfg.NumEntities = entities
	cfg.PagesPerEntity = pages
	cfg.Seed = seed
	g, err := synth.Generate(cfg)
	if err != nil {
		return "", nil, err
	}
	engine := search.NewEngineOpts(search.BuildIndexOpts(g.Corpus.Pages, search.Options{}), search.Options{})

	var (
		servers []*webapi.Server
		urls    []string
	)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, s := range servers {
			_ = s.Shutdown(ctx)
		}
	}
	for i := 0; i < nodes; i++ {
		node, err := webapi.NewClusterNode(g.Corpus,
			search.ClusterSpec{Nodes: nodes, Replicas: replicas, NodeID: i}, search.Options{}, 0)
		if err != nil {
			stop()
			return "", nil, err
		}
		nsrv := webapi.NewServer(g.Corpus, engine)
		nsrv.Node = node
		bound, err := nsrv.Start("127.0.0.1:0")
		if err != nil {
			stop()
			return "", nil, err
		}
		servers = append(servers, nsrv)
		urls = append(urls, "http://"+bound)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), time.Minute)
	co, err := webapi.DialCoordinator(dctx, webapi.CoordinatorConfig{
		Nodes:        urls,
		Replicas:     replicas,
		NodeDeadline: nodeDeadline,
	}, g.Tokenizer)
	dcancel()
	if err != nil {
		stop()
		return "", nil, err
	}
	coSrv := webapi.NewCoordinatorServer(co)
	coSrv.MaxInFlight = maxInFlight
	if maxInFlight > 0 {
		coSrv.MaxConcurrent = maxInFlight
	}
	bound, err := coSrv.Start("127.0.0.1:0")
	if err != nil {
		stop()
		return "", nil, err
	}
	servers = append(servers, coSrv)
	logger.Printf("self-serving %d-node cluster (replicas %d) over %d pages of %q, coordinator on %s (maxinflight %d)",
		nodes, replicas, g.Corpus.NumPages(), domain, bound, maxInFlight)
	return bound, stop, nil
}

// recorder is one worker's latency log: op name → served latencies (ms).
// Shed (429) and error responses are counted, not timed — mixing rejected
// requests into the latency series would make shedding look like speed.
type recorder struct {
	lat     map[string][]float64
	ops     map[string]int64
	errs    map[string]int64
	shedOK  int64 // 429 with a well-formed retryable "throttled" envelope
	shedBad int64 // 429 with anything else
}

func newRecorder() *recorder {
	return &recorder{lat: map[string][]float64{}, ops: map[string]int64{}, errs: map[string]int64{}}
}

func (r *recorder) record(op string, d time.Duration) {
	r.ops[op]++
	r.lat[op] = append(r.lat[op], float64(d)/float64(time.Millisecond))
}

// driver owns the target endpoints, the op mix, and the shared job
// tracker.
type driver struct {
	base     string
	aspect   string
	nQueries int
	weights  map[string]int
	wheel    []string // weighted op lottery wheel
	codec    string
	logger   *log.Logger

	httpc   *http.Client
	cliJSON *webapi.Client
	cliWire *webapi.Client

	seeds   []string // entity seed queries (query corpus)
	vocab   []string // tokens drawn for q=
	pageIDs []corpus.PageID
	ents    []webapi.EntityInfo

	jobMu   sync.Mutex
	jobOpen map[string]bool // submitted, not yet seen terminal
}

func newDriver(base, aspect string, nQueries int, weights map[string]int, codec string, logger *log.Logger) *driver {
	d := &driver{
		base: base, aspect: aspect, nQueries: nQueries, weights: weights,
		codec: codec, logger: logger, jobOpen: map[string]bool{},
		httpc: &http.Client{
			Timeout: 60 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 256,
			},
		},
	}
	for op, w := range weights {
		for i := 0; i < w; i++ {
			d.wheel = append(d.wheel, op)
		}
	}
	sort.Strings(d.wheel) // deterministic wheel layout
	return d
}

// prepare dials the API clients and harvests the query/page corpus the
// workers draw from.
func (d *driver) prepare() error {
	noRetry := webapi.ClientOptions{Retry: webapi.RetryPolicy{MaxAttempts: 1}, PrefetchWorkers: 4}
	var err error
	optsJSON := noRetry
	optsJSON.Codec = webapi.CodecJSON
	if d.cliJSON, err = webapi.DialOpts(d.base, &textproc.Tokenizer{}, optsJSON); err != nil {
		return fmt.Errorf("dial (json): %w", err)
	}
	optsWire := noRetry
	optsWire.Codec = webapi.CodecAuto // binary when the server offers it
	if d.cliWire, err = webapi.DialOpts(d.base, &textproc.Tokenizer{}, optsWire); err != nil {
		return fmt.Errorf("dial (wire): %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ents, err := d.cliJSON.Entities(ctx)
	if err != nil {
		return fmt.Errorf("entities: %w", err)
	}
	if len(ents) == 0 {
		return errors.New("server reports no entities")
	}
	d.ents = ents
	seen := map[string]bool{}
	for _, e := range ents {
		d.seeds = append(d.seeds, e.SeedQuery)
		for _, t := range strings.Fields(strings.ToLower(e.SeedQuery)) {
			if !seen[t] {
				seen[t] = true
				d.vocab = append(d.vocab, t)
			}
		}
	}
	// Page IDs come from real hit lists so the page op never 404s.
	for i := 0; i < len(d.seeds) && len(d.pageIDs) < 64; i += 3 {
		hits, err := d.searchRawJSON(d.seeds[i], "")
		if err == nil {
			d.pageIDs = append(d.pageIDs, hits...)
		}
	}
	if len(d.pageIDs) == 0 {
		d.weights["page"] = 0
	}
	return nil
}

// searchRawJSON is the bootstrap search: plain JSON, hit IDs only.
func (d *driver) searchRawJSON(seed, q string) ([]corpus.PageID, error) {
	u := d.base + "/api/v1/search?seed=" + urlQueryEscape(seed) + "&q=" + urlQueryEscape(q)
	resp, err := d.httpc.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var sr webapi.SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, err
	}
	ids := make([]corpus.PageID, 0, len(sr.Hits))
	for _, h := range sr.Hits {
		ids = append(ids, h.PageID)
	}
	return ids, nil
}

func urlQueryEscape(s string) string {
	return strings.ReplaceAll(s, " ", "+")
}

// calibrate measures server-side allocations per request for each cheap
// endpoint in isolation: bracket a serial burst with the cumulative
// allocation gauges from /api/v1/metrics and divide. Only meaningful
// self-serve or against an otherwise idle server.
func (d *driver) calibrate() map[string]float64 {
	const burst = 50
	out := map[string]float64{}
	run := func(name string, op func(rng *rand.Rand)) {
		rng := rand.New(rand.NewPCG(7, 7))
		before, err := d.serverMetrics()
		if err != nil {
			return
		}
		for i := 0; i < burst; i++ {
			op(rng)
		}
		after, err := d.serverMetrics()
		if err != nil {
			return
		}
		reqs := after.Requests - before.Requests
		if reqs <= 0 {
			return
		}
		out[name] = float64(after.Runtime.AllocObjects-before.Runtime.AllocObjects) / float64(reqs)
	}
	rec := newRecorder()
	run("search_json", func(rng *rand.Rand) { d.opSearch(rng, rec, d.cliJSON, "search_json") })
	run("search_wire", func(rng *rand.Rand) { d.opSearch(rng, rec, d.cliWire, "search_wire") })
	run("page", func(rng *rand.Rand) { d.opPage(rng, rec) })
	run("metrics", func(rng *rand.Rand) { d.opMetrics(rec) })
	return out
}

func (d *driver) serverMetrics() (webapi.ServerMetrics, error) {
	var m webapi.ServerMetrics
	resp, err := d.httpc.Get(d.base + "/api/v1/metrics")
	if err != nil {
		return m, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return m, fmt.Errorf("metrics: status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&m)
	return m, err
}

// worker is one closed-loop traffic generator.
func (d *driver) worker(id int, deadline time.Time, rec *recorder) {
	rng := rand.New(rand.NewPCG(uint64(id)+1, 2016))
	for time.Now().Before(deadline) {
		switch d.wheel[rng.IntN(len(d.wheel))] {
		case "search":
			cli, name := d.cliJSON, "search_json"
			switch d.codec {
			case "binary":
				cli, name = d.cliWire, "search_wire"
			case "mixed":
				if rng.IntN(2) == 0 {
					cli, name = d.cliWire, "search_wire"
				}
			}
			d.opSearch(rng, rec, cli, name)
		case "page":
			d.opPage(rng, rec)
		case "metrics":
			d.opMetrics(rec)
		case "harvest":
			d.opHarvest(rng, rec)
		case "jobs":
			d.opJob(rng, rec)
		}
	}
}

// classify folds one op outcome into the recorder: a served response
// records latency, a shed 429 records envelope correctness, anything
// else records an error.
func (d *driver) classify(rec *recorder, op string, start time.Time, err error, shedOK func(error) bool) {
	if err == nil {
		rec.record(op, time.Since(start))
		return
	}
	var te *webapi.TransportError
	if errors.As(err, &te) && te.Status == http.StatusTooManyRequests {
		if te.Code == "throttled" && (shedOK == nil || shedOK(err)) {
			rec.shedOK++
		} else {
			rec.shedBad++
		}
		return
	}
	rec.errs[op]++
}

func (d *driver) opSearch(rng *rand.Rand, rec *recorder, cli *webapi.Client, name string) {
	seedQ := d.seeds[rng.IntN(len(d.seeds))]
	var q []textproc.Token
	if len(d.vocab) > 0 && rng.IntN(2) == 0 {
		q = []textproc.Token{d.vocab[rng.IntN(len(d.vocab))]}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	_, err := cli.SearchWithSeedErr(ctx, textproc.SplitQuery(seedQ), q)
	d.classify(rec, name, start, err, nil)
}

// shedEnvelope decodes a raw 429 body and reports whether it is the
// well-formed retryable envelope.
func shedEnvelope(body []byte) bool {
	var env struct {
		Error struct {
			Code      string `json:"code"`
			Retryable bool   `json:"retryable"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		return false
	}
	return env.Error.Code == "throttled" && env.Error.Retryable
}

// rawGet runs one raw HTTP op, handling the shed path: the body is fully
// read and discarded (or handed to keep), and 429s are verified against
// the envelope contract.
func (d *driver) rawGet(rec *recorder, op, url string, keep func([]byte)) {
	start := time.Now()
	resp, err := d.httpc.Get(url)
	if err != nil {
		rec.errs[op]++
		return
	}
	body, rerr := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		if shedEnvelope(body) {
			rec.shedOK++
		} else {
			rec.shedBad++
		}
	case resp.StatusCode != http.StatusOK || rerr != nil:
		rec.errs[op]++
	default:
		rec.record(op, time.Since(start))
		if keep != nil {
			keep(body)
		}
	}
}

func (d *driver) opPage(rng *rand.Rand, rec *recorder) {
	id := d.pageIDs[rng.IntN(len(d.pageIDs))]
	d.rawGet(rec, "page", fmt.Sprintf("%s/page/%d.html", d.base, id), nil)
}

func (d *driver) opMetrics(rec *recorder) {
	d.rawGet(rec, "metrics", d.base+"/api/v1/metrics", nil)
}

func (d *driver) harvestBody(rng *rand.Rand) []byte {
	req := webapi.HarvestRequest{
		Entities: []corpus.EntityID{d.ents[rng.IntN(len(d.ents))].ID},
		Aspect:   d.aspect,
		Strategy: "RND",
		NQueries: d.nQueries,
	}
	b, _ := json.Marshal(req)
	return b
}

// opHarvest runs one synchronous streaming harvest, reading the NDJSON
// event stream to the final done event (the streaming-reader workload).
func (d *driver) opHarvest(rng *rand.Rand, rec *recorder) {
	start := time.Now()
	resp, err := d.httpc.Post(d.base+"/api/v1/harvest", "application/json", bytes.NewReader(d.harvestBody(rng)))
	if err != nil {
		rec.errs["harvest"]++
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if resp.StatusCode == http.StatusTooManyRequests {
			if shedEnvelope(body) {
				rec.shedOK++
			} else {
				rec.shedBad++
			}
		} else {
			rec.errs["harvest"]++
		}
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	done := false
	for sc.Scan() {
		var ev webapi.HarvestEvent
		if json.Unmarshal(sc.Bytes(), &ev) == nil && ev.Type == "done" {
			done = true
		}
	}
	if done && sc.Err() == nil {
		rec.record("harvest", time.Since(start))
	} else {
		rec.errs["harvest"]++
	}
}

// opJob submits an async job, follows its event stream to a terminal
// state, then deletes it. Every submitted id is tracked so the post-run
// verification can prove no job was lost.
func (d *driver) opJob(rng *rand.Rand, rec *recorder) {
	start := time.Now()
	resp, err := d.httpc.Post(d.base+"/api/v1/jobs", "application/json", bytes.NewReader(d.harvestBody(rng)))
	if err != nil {
		rec.errs["jobs"]++
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		// Shed at submission: the job was never accepted, nothing to lose.
		if shedEnvelope(body) {
			rec.shedOK++
		} else {
			rec.shedBad++
		}
		return
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		rec.errs["jobs"]++
		return
	}
	var sub struct {
		ID string `json:"id"`
	}
	if json.Unmarshal(body, &sub) != nil || sub.ID == "" {
		rec.errs["jobs"]++
		return
	}
	d.jobMu.Lock()
	d.jobOpen[sub.ID] = true
	d.jobMu.Unlock()
	rec.record("jobs", time.Since(start)) // submission latency; completion tracked below

	if st, ok := d.pollJob(sub.ID, 60*time.Second); ok && terminalState(st) {
		d.jobMu.Lock()
		delete(d.jobOpen, sub.ID)
		d.jobMu.Unlock()
		req, _ := http.NewRequest(http.MethodDelete, d.base+"/api/v1/jobs/"+sub.ID, nil)
		if dresp, err := d.httpc.Do(req); err == nil {
			io.Copy(io.Discard, dresp.Body)
			dresp.Body.Close()
		}
	}
}

func terminalState(state string) bool {
	return state == webapi.JobDone || state == webapi.JobCanceled
}

// pollJob polls a job until it reaches a terminal state. Polls shed by
// admission control are simply retried — that is the 429 contract.
func (d *driver) pollJob(id string, timeout time.Duration) (string, bool) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := d.httpc.Get(d.base + "/api/v1/jobs/" + id)
		if err != nil {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			var st webapi.JobStatus
			if json.Unmarshal(body, &st) == nil && terminalState(st.State) {
				return st.State, true
			}
		} else if resp.StatusCode == http.StatusNotFound {
			return "", false
		}
		time.Sleep(25 * time.Millisecond)
	}
	return "", false
}

// awaitJobs waits for every still-open submitted job to reach a terminal
// state and returns how many never did (lost jobs — the shed-correctness
// failure mode).
func (d *driver) awaitJobs(timeout time.Duration) int {
	d.jobMu.Lock()
	open := make([]string, 0, len(d.jobOpen))
	for id := range d.jobOpen {
		open = append(open, id)
	}
	d.jobMu.Unlock()
	lost := 0
	for _, id := range open {
		if _, ok := d.pollJob(id, timeout); !ok {
			lost++
		}
	}
	return lost
}

// percentile returns the q-quantile of sorted samples.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// report merges the per-worker recorders into the one-line JSON payload.
func (d *driver) report(recs []*recorder, elapsed time.Duration, allocsPerOp map[string]float64,
	start, end webapi.ServerMetrics, lostJobs int) map[string]any {

	lat := map[string][]float64{}
	ops := map[string]int64{}
	errs := map[string]int64{}
	var shedOK, shedBad int64
	for _, r := range recs {
		for op, xs := range r.lat {
			lat[op] = append(lat[op], xs...)
		}
		for op, n := range r.ops {
			ops[op] += n
		}
		for op, n := range r.errs {
			errs[op] += n
		}
		shedOK += r.shedOK
		shedBad += r.shedBad
	}

	endpoints := map[string]any{}
	var all []float64
	var totalOps int64
	for op, xs := range lat {
		sort.Float64s(xs)
		all = append(all, xs...)
		totalOps += ops[op]
		ep := map[string]any{
			"ops":     ops[op],
			"errors":  errs[op],
			"p50Ms":   percentile(xs, 0.50),
			"p99Ms":   percentile(xs, 0.99),
			"p999Ms":  percentile(xs, 0.999),
			"opsPerS": float64(ops[op]) / elapsed.Seconds(),
		}
		if a, ok := allocsPerOp[op]; ok {
			ep["serverAllocsPerOp"] = a
		}
		endpoints[op] = ep
	}
	for op, n := range errs {
		if _, seen := endpoints[op]; !seen {
			endpoints[op] = map[string]any{"ops": ops[op], "errors": n}
		}
	}
	sort.Float64s(all)

	serverReqs := end.Requests - start.Requests
	server := map[string]any{
		"requests":       serverReqs,
		"shed":           end.Shed - start.Shed,
		"maxInFlight":    end.MaxInFlight,
		"heapInuseBytes": end.Runtime.HeapInuseBytes,
		"gcPauseP99Ms":   end.Runtime.GCPauseP99Ms,
		"goroutines":     end.Runtime.Goroutines,
	}
	if serverReqs > 0 {
		server["allocsPerRequest"] = float64(end.Runtime.AllocObjects-start.Runtime.AllocObjects) / float64(serverReqs)
		server["allocBytesPerRequest"] = float64(end.Runtime.AllocBytes-start.Runtime.AllocBytes) / float64(serverReqs)
	}
	if end.Cluster != nil {
		// The coordinator's fan-out gauges: scatters served, hedged
		// failovers, flagged partials, and per-node client traffic.
		server["cluster"] = end.Cluster
	}
	if end.Live != nil {
		// The generational engine's end-of-run gauges: docs absorbed,
		// epoch/segment churn, compactions run.
		server["live"] = end.Live
	}

	return map[string]any{
		"bench":     "l2qload",
		"durationS": elapsed.Seconds(),
		"qps":       float64(totalOps) / elapsed.Seconds(),
		"p50Ms":     percentile(all, 0.50),
		"p99Ms":     percentile(all, 0.99),
		"p999Ms":    percentile(all, 0.999),
		"endpoints": endpoints,
		"server":    server,
		"verify": map[string]any{
			"shed":            shedOK + shedBad,
			"shedOKEnvelope":  shedOK,
			"shedBadEnvelope": shedBad,
			"lostJobs":        lostJobs,
		},
	}
}
