// Command l2qvet is the repo's analyzer suite: a multichecker that
// machine-checks the load-bearing conventions this codebase's perf and
// reproducibility guarantees depend on (see internal/lint for the five
// analyzers and DESIGN.md "Enforced invariants" for the contract each one
// guards).
//
// Standalone mode (what `make lint` runs):
//
//	l2qvet ./...                  # all analyzers, all packages
//	l2qvet -checks poolput,ctxbg ./internal/...
//	l2qvet -json ./...            # findings as one JSON array
//	l2qvet -list                  # print the suite
//
// Exit status: 0 clean, 1 findings, 2 failure to load/analyze.
//
// Vettool mode: when invoked with a single *.cfg argument (the protocol
// `go vet -vettool=$(which l2qvet) ./...` speaks), l2qvet analyzes the
// one compilation unit described by the config and reports findings on
// stderr, so the suite also runs under the stock vet driver.
//
// Findings are suppressed in code, never here: an //l2qvet:ignore
// <analyzer> <reason> comment on the offending line (or the line above)
// records the exemption and its justification next to the code it
// excuses.
//
// The stock x/tools nilness analyzer is part of the intended suite but
// is GATED on golang.org/x/tools being available: this module is
// dependency-free by policy (the container builds offline), so the
// -nilness flag explains the gate instead of running. Vendor x/tools and
// the lint.Analyzer shapes port to analysis.Analyzer mechanically.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"l2q/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet probes its tool with -V=full before handing it configs.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Println("l2qvet version 1 (stdlib multichecker)")
		return 0
	}

	fs := flag.NewFlagSet("l2qvet", flag.ExitOnError)
	checks := fs.String("checks", "", "comma-separated analyzer subset (default: the whole suite)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list the analyzer suite and exit")
	nilness := fs.Bool("nilness", false, "run the stock x/tools nilness analyzer (gated; see below)")

	// go vet also probes with -flags to learn which flags it may forward
	// (the unitchecker protocol's JSON flag listing).
	if len(args) == 1 && args[0] == "-flags" {
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var flags []jsonFlag
		fs.VisitAll(func(f *flag.Flag) {
			_, isBool := f.Value.(interface{ IsBoolFlag() bool })
			flags = append(flags, jsonFlag{f.Name, isBool, f.Usage})
		})
		data, _ := json.MarshalIndent(flags, "", "\t")
		os.Stdout.Write(data)
		fmt.Println()
		return 0
	}

	fs.Parse(args)

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *nilness {
		fmt.Fprintln(os.Stderr, "l2qvet: nilness is gated on golang.org/x/tools, which this dependency-free module does not vendor.")
		fmt.Fprintln(os.Stderr, "l2qvet: vendor x/tools (go.mod require + vendor/) to enable it; internal/lint's Analyzer shape ports to analysis.Analyzer mechanically.")
		return 2
	}

	analyzers, err := lint.ByName(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "l2qvet:", err)
		return 2
	}

	// Vettool mode: a single JSON config describing one compilation unit.
	if rest := fs.Args(); len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetUnit(rest[0], analyzers)
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "l2qvet:", err)
		return 2
	}
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "l2qvet:", err)
		return 2
	}
	findings, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "l2qvet:", err)
		return 2
	}
	return report(os.Stdout, findings, *asJSON)
}

func report(w io.Writer, findings []lint.Diagnostic, asJSON bool) int {
	if asJSON {
		type jsonFinding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonFinding, 0, len(findings))
		for _, d := range findings {
			out = append(out, jsonFinding{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out) //nolint:errcheck // stdout
	} else {
		for _, d := range findings {
			fmt.Fprintln(w, d.String())
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the unit description `go vet -vettool` hands its tool
// (the x/tools unitchecker wire format; only the fields l2qvet needs).
type vetConfig struct {
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one vet compilation unit. The suite is fact-free,
// so dependency passes (VetxOnly) only need their (empty) facts file
// written; test variants are skipped wholesale — the conventions under
// check are library-code conventions, and in-repo test files exercise
// hostile shapes (hand-rolled faults, detached contexts) on purpose.
func runVetUnit(cfgPath string, analyzers []*lint.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "l2qvet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "l2qvet: %s: %v\n", cfgPath, err)
		return 2
	}
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			_ = os.WriteFile(cfg.VetxOutput, nil, 0o666)
		}
	}
	if cfg.VetxOnly || strings.Contains(cfg.ImportPath, ".test") {
		writeVetx()
		return 0
	}
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	pkg, err := lint.CheckUnit(fset, importer.ForCompiler(fset, "gc", lookup), cfg.ImportPath, cfg.Dir, relativize(cfg.Dir, goFiles))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(os.Stderr, "l2qvet: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	findings, err := lint.RunAnalyzers([]*lint.Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "l2qvet:", err)
		return 2
	}
	writeVetx()
	return report(os.Stderr, findings, false)
}

// relativize makes absolute file paths dir-relative (CheckUnit joins
// them back); vet configs list GoFiles absolute.
func relativize(dir string, files []string) []string {
	out := make([]string, len(files))
	for i, f := range files {
		if rel, err := filepath.Rel(dir, f); err == nil && !strings.HasPrefix(rel, "..") {
			out[i] = rel
		} else {
			out[i] = f
		}
	}
	return out
}
