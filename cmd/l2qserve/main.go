// Command l2qserve serves a corpus as a search API over HTTP: JSON search
// plus rendered HTML pages — the stand-in for the commercial search engine
// the paper harvests through. Remote harvesters connect with
// webapi.Dial and run unchanged (see examples/httpharvest).
//
// With -harvest (the default), the server also exposes POST /api/harvest
// (synchronous batch harvesting streaming NDJSON progress) and the async
// jobs API (POST /api/jobs → id, GET /api/jobs/{id} for status or
// ?stream=1 event following, DELETE to cancel — with per-entity
// checkpoints for resume). Every harvest runs on ONE shared scheduler
// (-selectworkers/-fetchworkers/-maxactive) with FIFO admission and
// per-request fair share; a killed job's checkpoints can be re-submitted
// via the request's "resume" field. Classifiers are trained on the served
// corpus and domain models are learned lazily per aspect (over the
// canonical first-half entity sample). GET /api/metrics exposes the
// server-side counters (requests, scheduler queue depth, budget state).
//
// The corpus is either loaded from a store file written by l2qgen/l2qstore
// (-store) or generated synthetically (-domain/-entities/-pages).
//
// Usage:
//
//	l2qserve -addr 127.0.0.1:8080 -domain researchers -entities 100
//	l2qserve -addr 127.0.0.1:8080 -store corpus.l2q
//	curl -d '{"entities":[7],"aspect":"RESEARCH","nQueries":3}' http://127.0.0.1:8080/api/harvest
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"l2q/internal/classify"
	"l2q/internal/corpus"
	"l2q/internal/search"
	"l2q/internal/store"
	"l2q/internal/synth"
	"l2q/internal/textproc"
	"l2q/internal/types"
	"l2q/internal/webapi"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		storePath = flag.String("store", "", "store file to serve (overrides -domain)")
		domain    = flag.String("domain", "researchers", "researchers or cars")
		entities  = flag.Int("entities", 100, "corpus entities (synthetic mode)")
		pages     = flag.Int("pages", 30, "pages per entity (synthetic mode)")
		seed      = flag.Uint64("seed", 2016, "corpus seed (synthetic mode)")
		topK      = flag.Int("k", 5, "results per query")
		quiet     = flag.Bool("quiet", false, "disable request logging")
		shards    = flag.Int("shards", 0, "index shards (0 = GOMAXPROCS)")
		workers   = flag.Int("scoreworkers", 0, "per-query scoring workers (0 = GOMAXPROCS)")
		cacheSize = flag.Int("cachesize", 0, "query cache capacity (0 = default, <0 = off)")
		harvest   = flag.Bool("harvest", true, "enable POST /api/harvest and the /api/jobs async API (server-side batch harvesting)")
		domains   = flag.String("domains", "", "domain-artifact file (l2qstore domains): boot the harvest backend warm instead of learning per aspect on first request")
		learnW    = flag.Int("learnworkers", 0, "domain-phase counting workers for lazily learned models (0 = GOMAXPROCS)")
		maxSess   = flag.Int("harvestsessions", 64, "max entities per harvest request")
		selectW   = flag.Int("selectworkers", 0, "shared scheduler: select (CPU) workers (0 = GOMAXPROCS)")
		fetchW    = flag.Int("fetchworkers", 0, "shared scheduler: fetch (I/O) workers (0 = 4×select)")
		maxActive = flag.Int("maxactive", 0, "shared scheduler: admission bound on concurrently active jobs (0 = unlimited)")
		maxInFl   = flag.Int("maxinflight", 0, "admission control: shed requests 429 past this many in flight, and default -maxactive to it (0 = off)")
		live      = flag.Bool("live", false, "serve a live generational index: POST /api/v1/ingest grows the corpus while searches keep serving")
		memtable  = flag.Int("memtable", 0, "live mode: memtable seal threshold in documents (0 = default)")
		fanIn     = flag.Int("compactfanin", 0, "live mode: background-compaction fan-in (0 = default, <0 = background compaction off)")
		ingestW   = flag.Int("ingestworkers", 0, "live mode: ingest pre-tokenization workers (0 = GOMAXPROCS)")
		wire      = flag.Bool("wire", true, "offer the binary wire codec to clients that ask for it (Accept: "+webapi.WireContentType+"); JSON stays the default either way")
		compress  = flag.Int("compress", 0, "gzip wire payloads at or above this many bytes (0 = default threshold, <0 = never compress)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
		coord     = flag.Bool("coordinator", false, "coordinator mode: scatter-gather over the node URLs in -nodes instead of serving a local index (the corpus flags must still describe the cluster's corpus — the tokenizer lexicon comes from it)")
		nodesFlag = flag.String("nodes", "", "cluster topology: in coordinator mode a comma-separated list of node base URLs; in node mode the cluster size (serve one partition set with -nodeid)")
		nodeID    = flag.Int("nodeid", 0, "this node's ordinal in [0, nodes) (node mode)")
		replicas  = flag.Int("replicas", 2, "partition replication factor (clamped to [1, nodes])")
		nodeDl    = flag.Duration("nodedeadline", 0, "coordinator: per-node scatter deadline before failing over to a replica (0 = default)")
	)
	flag.Parse()
	sopts := search.Options{Shards: *shards, ScoreWorkers: *workers, CacheSize: *cacheSize}

	logger := log.New(os.Stderr, "l2qserve: ", log.LstdFlags)

	var (
		c   *corpus.Corpus
		idx *search.Index
		tok *textproc.Tokenizer
		rec types.Recognizer = types.NewRegexRecognizer()
	)
	if *storePath != "" {
		b, err := store.LoadFile(*storePath)
		if err != nil {
			logger.Fatal(err)
		}
		c = b.Corpus
		idx = b.Index
		if idx == nil && !*coord && !*live {
			idx = search.BuildIndexOpts(c.Pages, sopts)
		} else if idx != nil && *shards != 0 {
			// The store restores at the default shard count; honor an
			// explicit -shards by redistributing (cheap, shares postings).
			idx = idx.Reshard(*shards)
		}
		// Store files carry no tokenizer; reconstruct the phrase lexicon
		// from the corpus's own multi-word tokens so server-side query
		// tokenization round-trips phrases the way the corpus builder did.
		tok = store.ReconstructTokenizer(c)
	} else {
		cfg := synth.DefaultConfig(corpus.Domain(*domain))
		cfg.NumEntities = *entities
		cfg.PagesPerEntity = *pages
		cfg.Seed = *seed
		g, err := synth.Generate(cfg)
		if err != nil {
			logger.Fatal(err)
		}
		c = g.Corpus
		if !*coord && !*live {
			idx = search.BuildIndexOpts(c.Pages, sopts)
		}
		tok = g.Tokenizer
		rec = types.Chain{g.KB, types.NewRegexRecognizer()}
	}

	if *coord {
		runCoordinator(*addr, *nodesFlag, *replicas, *nodeDl, *maxInFl, *wire, *compress, *drain, *quiet, tok, logger)
		return
	}

	var (
		srv     *webapi.Server
		liveEng *search.LiveEngine
		engine  *search.Engine
	)
	if *live {
		if *nodesFlag != "" {
			logger.Fatal("-live is incompatible with cluster node mode (-nodes)")
		}
		liveEng = search.NewLiveEngine(c.Pages, sopts, search.LiveOptions{
			MemtableDocs:  *memtable,
			CompactFanIn:  *fanIn,
			IngestWorkers: *ingestW,
			TopK:          *topK,
		})
		srv = webapi.NewLiveServer(c, liveEng, tok)
	} else {
		engine = search.NewEngineOpts(idx, sopts).WithTopK(*topK)
		srv = webapi.NewServer(c, engine)
	}
	srv.WireDisabled = !*wire
	srv.CompressMin = *compress
	srv.MaxInFlight = *maxInFl
	if *maxInFl > 0 {
		// Admission control shrinks the blocking concurrency gate too:
		// shed fast at MaxInFlight, never convoy behind it.
		srv.MaxConcurrent = *maxInFl
	}
	if !*quiet {
		srv.Log = logger
	}
	if *nodesFlag != "" {
		n, err := strconv.Atoi(*nodesFlag)
		if err != nil {
			logger.Fatalf("node mode: -nodes must be the cluster size, got %q (coordinator mode needs -coordinator)", *nodesFlag)
		}
		node, err := webapi.NewClusterNode(c, search.ClusterSpec{Nodes: n, Replicas: *replicas, NodeID: *nodeID}, sopts, *topK)
		if err != nil {
			logger.Fatal(err)
		}
		srv.Node = node
	}
	if *harvest {
		var art *store.DomainArtifact
		if *domains != "" {
			var err error
			if art, err = store.LoadDomainsFile(*domains); err != nil {
				logger.Fatal(err)
			}
			if art.CorpusDomain != c.Domain {
				logger.Fatalf("domain artifact %s was learned over domain %q, serving %q",
					*domains, art.CorpusDomain, c.Domain)
			}
			if art.NumEntities != c.NumEntities() || art.NumPages != c.NumPages() {
				logger.Printf("warning: domain artifact %s was learned over %d entities / %d pages; serving %d / %d",
					*domains, art.NumEntities, art.NumPages, c.NumEntities(), c.NumPages())
			}
		}
		if hb := harvestBackend(c, tok, rec, *maxSess, *learnW, art, logger); hb != nil {
			hb.SelectWorkers = *selectW
			hb.FetchWorkers = *fetchW
			hb.MaxActive = *maxActive
			srv.Harvest = hb
		}
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		logger.Fatal(err)
	}
	if *live {
		m := liveEng.Metrics()
		fmt.Printf("serving %d pages of %q on http://%s (top-%d, μ = %.0f, LIVE: %d segments, memtable %d docs)\n",
			c.NumPages(), c.Domain, bound, liveEng.TopK(), liveEng.Mu(),
			m.Segments, m.MemtableDocs)
	} else {
		fmt.Printf("serving %d pages of %q on http://%s (top-%d, μ = %.0f, %d shards, %d score workers)\n",
			c.NumPages(), c.Domain, bound, engine.TopK(), engine.Mu(),
			idx.NumShards(), engine.ScoreWorkers())
	}
	if *maxInFl > 0 {
		fmt.Printf("admission control: shedding 429 past %d in-flight requests\n", *maxInFl)
	}
	endpoints := "endpoints: /api/v1/{stats,search?q=&seed=,collfreq?tokens=,entities,metrics} /page/{id}.html /healthz (legacy /api/* aliased)"
	if srv.Node != nil {
		fmt.Printf("cluster node %d of %d (replicas %d): /api/v1/cluster/{search,stats} serving partitions %v\n",
			*nodeID, srv.Node.Spec().Nodes, srv.Node.Spec().Replicas, srv.Node.Partitions())
	}
	if *live {
		endpoints += " POST /api/v1/ingest"
	}
	if srv.Harvest != nil {
		endpoints += " POST /api/v1/harvest POST|GET|DELETE /api/v1/jobs"
	}
	fmt.Println(endpoints)
	if !srv.WireDisabled {
		fmt.Println("wire: binary codec offered via Accept: " + webapi.WireContentType)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("shutting down (canceling in-flight harvests, draining)")
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Fatal(err)
	}
}

// harvestBackend wires the batch-harvest endpoint over the canonical
// learning protocol (store.DomainLearner — the same one `l2qstore
// domains` precomputes with). With a domain artifact, its classifiers
// and models are used as-is and the server's first harvest runs warm;
// aspects the artifact does not cover keep the lazy path (classifiers
// trained at boot, models learned on first request). Returns nil
// (harvesting disabled) when the corpus carries no aspect labels.
func harvestBackend(c *corpus.Corpus, tok *textproc.Tokenizer, rec types.Recognizer,
	maxSessions, learnWorkers int, art *store.DomainArtifact, logger *log.Logger) *webapi.HarvestBackend {

	if len(c.Aspects()) == 0 {
		logger.Print("harvest: corpus has no aspect labels; endpoint disabled")
		return nil
	}
	var preTrained *classify.Set
	if art != nil {
		preTrained = art.ClassifierSet()
	}
	ln := store.NewDomainLearner(c, tok, rec, learnWorkers, preTrained)
	if len(ln.Aspects) == 0 {
		logger.Print("harvest: no aspect has training signal; endpoint disabled")
		return nil
	}
	hb := &webapi.HarvestBackend{
		Cfg:         ln.Cfg,
		Aspects:     ln.Aspects,
		Y:           ln.Cls.YFunc,
		Rec:         rec,
		MaxSessions: maxSessions,
		// The backend memoizes per aspect, so learning from scratch here
		// runs at most once per aspect (and never for preloaded aspects).
		DomainModel: ln.Learn,
	}
	if art != nil {
		hb.Preload(art.ModelMap())
		covered := make(map[corpus.Aspect]bool, len(art.Models))
		for _, dm := range art.Models {
			covered[dm.Aspect] = true
		}
		var lazy []corpus.Aspect
		for _, a := range ln.Aspects {
			if !covered[a] {
				lazy = append(lazy, a)
			}
		}
		logger.Printf("harvest: booted warm with %d persisted domain models (%d classifiers)",
			len(art.Models), len(art.Classifiers))
		if len(lazy) > 0 {
			logger.Printf("harvest: aspects %v not in the artifact; they learn lazily on first request", lazy)
		}
	}
	return hb
}

// runCoordinator dials the node fleet, aggregates their collection
// statistics into the global scoring model, pushes it back, and serves
// the scatter-gather surface: the same /api/v1 endpoints a single node
// offers, answered by fan-out over the cluster with replica failover.
func runCoordinator(addr, nodes string, replicas int, nodeDeadline time.Duration,
	maxInFlight int, wire bool, compress int, drain time.Duration,
	quiet bool, tok *textproc.Tokenizer, logger *log.Logger) {

	var urls []string
	for _, u := range strings.Split(nodes, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		logger.Fatal("coordinator mode: -nodes must list the node base URLs (comma-separated)")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	co, err := webapi.DialCoordinator(ctx, webapi.CoordinatorConfig{
		Nodes:        urls,
		Replicas:     replicas,
		NodeDeadline: nodeDeadline,
	}, tok)
	cancel()
	if err != nil {
		logger.Fatal(err)
	}

	srv := webapi.NewCoordinatorServer(co)
	srv.WireDisabled = !wire
	srv.CompressMin = compress
	srv.MaxInFlight = maxInFlight
	if maxInFlight > 0 {
		srv.MaxConcurrent = maxInFlight
	}
	if !quiet {
		srv.Log = logger
	}
	bound, err := srv.Start(addr)
	if err != nil {
		logger.Fatal(err)
	}
	st := co.Stats()
	cm := co.Metrics()
	fmt.Printf("coordinating %d nodes (replicas %d) over %d pages of %q on http://%s (top-%d, global μ = %.0f)\n",
		cm.Nodes, cm.Replicas, st.NumPages, st.Domain, bound, st.TopK, st.Mu)
	fmt.Println("endpoints: /api/v1/{stats,search?q=&seed=,collfreq?tokens=,entities,metrics} /page/{id}.html /healthz (scatter-gathered)")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("shutting down (draining)")
	sctx, scancel := context.WithTimeout(context.Background(), drain)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		logger.Fatal(err)
	}
}
