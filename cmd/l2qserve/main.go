// Command l2qserve serves a corpus as a search API over HTTP: JSON search
// plus rendered HTML pages — the stand-in for the commercial search engine
// the paper harvests through. Remote harvesters connect with
// webapi.Dial and run unchanged (see examples/httpharvest).
//
// The corpus is either loaded from a store file written by l2qgen/l2qstore
// (-store) or generated synthetically (-domain/-entities/-pages).
//
// Usage:
//
//	l2qserve -addr 127.0.0.1:8080 -domain researchers -entities 100
//	l2qserve -addr 127.0.0.1:8080 -store corpus.l2q
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"l2q/internal/corpus"
	"l2q/internal/search"
	"l2q/internal/store"
	"l2q/internal/synth"
	"l2q/internal/webapi"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address")
		storePath = flag.String("store", "", "store file to serve (overrides -domain)")
		domain    = flag.String("domain", "researchers", "researchers or cars")
		entities  = flag.Int("entities", 100, "corpus entities (synthetic mode)")
		pages     = flag.Int("pages", 30, "pages per entity (synthetic mode)")
		seed      = flag.Uint64("seed", 2016, "corpus seed (synthetic mode)")
		topK      = flag.Int("k", 5, "results per query")
		quiet     = flag.Bool("quiet", false, "disable request logging")
		shards    = flag.Int("shards", 0, "index shards (0 = GOMAXPROCS)")
		workers   = flag.Int("scoreworkers", 0, "per-query scoring workers (0 = GOMAXPROCS)")
		cacheSize = flag.Int("cachesize", 0, "query cache capacity (0 = default, <0 = off)")
	)
	flag.Parse()
	sopts := search.Options{Shards: *shards, ScoreWorkers: *workers, CacheSize: *cacheSize}

	logger := log.New(os.Stderr, "l2qserve: ", log.LstdFlags)

	var (
		c   *corpus.Corpus
		idx *search.Index
	)
	if *storePath != "" {
		b, err := store.LoadFile(*storePath)
		if err != nil {
			logger.Fatal(err)
		}
		c = b.Corpus
		idx = b.Index
		if idx == nil {
			idx = search.BuildIndexOpts(c.Pages, sopts)
		} else if *shards != 0 {
			// The store restores at the default shard count; honor an
			// explicit -shards by redistributing (cheap, shares postings).
			idx = idx.Reshard(*shards)
		}
	} else {
		cfg := synth.DefaultConfig(corpus.Domain(*domain))
		cfg.NumEntities = *entities
		cfg.PagesPerEntity = *pages
		cfg.Seed = *seed
		g, err := synth.Generate(cfg)
		if err != nil {
			logger.Fatal(err)
		}
		c = g.Corpus
		idx = search.BuildIndexOpts(c.Pages, sopts)
	}

	engine := search.NewEngineOpts(idx, sopts).WithTopK(*topK)
	srv := webapi.NewServer(c, engine)
	if !*quiet {
		srv.Log = logger
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		logger.Fatal(err)
	}
	fmt.Printf("serving %d pages of %q on http://%s (top-%d, μ = %.0f, %d shards, %d score workers)\n",
		c.NumPages(), c.Domain, bound, engine.TopK(), engine.Mu(),
		idx.NumShards(), engine.ScoreWorkers())
	fmt.Println("endpoints: /api/stats /api/search?q=&seed= /api/collfreq?tokens= /api/entities /page/{id}.html /healthz")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("shutting down")
	if err := srv.Shutdown(context.Background()); err != nil {
		logger.Fatal(err)
	}
}
