// Command l2qsearch is an interactive console over the synthetic corpus's
// retrieval engine — useful for poking at what the harvester sees. Each
// input line is a query; the top-k pages are printed with scores.
//
// Usage:
//
//	l2qsearch -domain researchers -entities 100
//	> marc snir uiuc
//	> parallel computing
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"l2q/internal/corpus"
	"l2q/internal/search"
	"l2q/internal/synth"
)

func main() {
	var (
		domain   = flag.String("domain", "researchers", "researchers or cars")
		entities = flag.Int("entities", 100, "corpus entities")
		pages    = flag.Int("pages", 30, "pages per entity")
		seed     = flag.Uint64("seed", 1, "corpus seed")
		topK     = flag.Int("k", 5, "results per query")
	)
	flag.Parse()

	cfg := synth.DefaultConfig(corpus.Domain(*domain))
	cfg.NumEntities = *entities
	cfg.PagesPerEntity = *pages
	cfg.Seed = *seed
	g, err := synth.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "l2qsearch: %v\n", err)
		os.Exit(1)
	}
	engine := search.NewEngine(search.BuildIndex(g.Corpus.Pages)).WithTopK(*topK)
	fmt.Printf("%d pages indexed (μ = %.0f); enter queries, ctrl-d to exit\n",
		g.Corpus.NumPages(), engine.Mu())

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		q := g.Tokenizer.Tokenize(sc.Text())
		if len(q) == 0 {
			fmt.Print("> ")
			continue
		}
		res := engine.Search(q)
		if len(res) == 0 {
			fmt.Println("no results")
		}
		for i, r := range res {
			e := g.Corpus.Entity(r.Page.Entity)
			fmt.Printf("%2d. %-44s %-18s score %.3f\n", i+1, r.Page.Title, e.Name, r.Score)
		}
		fmt.Print("> ")
	}
}
