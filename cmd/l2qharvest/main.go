// Command l2qharvest runs one harvesting session end to end: generate the
// corpus, learn the domain model, then harvest one entity's aspect with the
// chosen strategy, printing each iteration's query and cumulative quality.
//
// Usage:
//
//	l2qharvest -domain researchers -aspect RESEARCH -strategy L2QBAL -queries 4
//	l2qharvest -domain cars -aspect SAFETY -entity 120 -strategy MQ
//	l2qharvest -remote 127.0.0.1:8080 ...   # search via a l2qserve instance
//	l2qharvest -checkpoint run.ckpt ...     # durable, resumable harvest
//
// With -remote, searches and page downloads go through the HTTP search API
// (the corpus and domain model are still built locally — the flag changes
// the transport, exactly the paper's commercial-search-API setting; the
// served corpus must match the local -domain/-entities/-pages/-seed).
//
// With -checkpoint, the session's durable state is written after every
// step (atomically), and a matching checkpoint file is resumed on start:
// kill the harvest at any point (Ctrl-C checkpoints and exits cleanly) and
// rerun the same command line to continue where it stopped, paying only
// the queries not yet fired. -replaycheck verifies the final fired
// sequence against an uninterrupted in-process run (deterministic
// strategies only — RND draws from the RNG during selection, which a
// replay does not).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"reflect"
	"syscall"
	"time"

	"l2q"
	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/store"
)

func main() {
	var (
		domain   = flag.String("domain", "researchers", "researchers or cars")
		aspect   = flag.String("aspect", "RESEARCH", "target aspect (see Fig. 9)")
		strategy = flag.String("strategy", "L2QBAL", "RND|P|R|P+q|R+q|P+t|R+t|L2QP|L2QR|L2QBAL|LM|AQ|HR|MQ")
		entityIx = flag.Int("entity", -1, "entity index (-1 = last entity)")
		queries  = flag.Int("queries", 3, "number of selected queries")
		entities = flag.Int("entities", 120, "corpus entities")
		pages    = flag.Int("pages", 40, "pages per entity")
		dsample  = flag.Int("domainsample", 40, "domain entities for the domain phase")
		seed     = flag.Uint64("seed", 1, "corpus seed")
		remote   = flag.String("remote", "", "harvest via this HTTP search API instead of in-process")
		retries  = flag.Int("retries", 4, "remote transport: attempts per request (1 = no retries)")
		rtimeout = flag.Duration("timeout", 30*time.Second, "remote transport: per-request HTTP timeout")
		prefetch = flag.Int("prefetch", 8, "remote transport: concurrent page downloads per query")
		wireFlag = flag.String("wire", "auto", "remote transport: wire codec — auto (negotiate binary, fall back to JSON), json, or binary (require it)")
		inferW   = flag.Int("inferworkers", 0, "per-step inference workers (0 = GOMAXPROCS)")
		learnW   = flag.Int("learnworkers", 0, "domain-phase counting workers (0 = GOMAXPROCS)")
		warm     = flag.Bool("warmstart", true, "warm-start fixpoint solvers from the previous step")
		incr     = flag.Bool("incremental", true, "persistent incremental session graphs (false = rebuild per step)")
		incrPool = flag.Bool("incrementalpool", true, "persistent incremental candidate pools (false = re-enumerate per step)")
		ckpt     = flag.String("checkpoint", "", "checkpoint file: resume from it if present, write it after every step")
		replay   = flag.Bool("replaycheck", false, "after finishing, verify the fired sequence against an uninterrupted run")
	)
	flag.Parse()

	sys, err := l2q.NewSyntheticSystem(corpus.Domain(*domain), l2q.SystemOptions{
		NumEntities: *entities, PagesPerEntity: *pages, Seed: *seed,
		InferWorkers: *inferW, LearnWorkers: *learnW,
		NoWarmStart: !*warm, NoIncrementalGraph: !*incr, NoIncrementalPool: !*incrPool,
	})
	if err != nil {
		fail(err)
	}
	ids := sys.EntityIDs()
	a := l2q.Aspect(*aspect)

	found := false
	for _, known := range sys.Aspects() {
		if known == a {
			found = true
		}
	}
	if !found {
		fail(fmt.Errorf("unknown aspect %q; choose one of %v", a, sys.Aspects()))
	}

	var dm *l2q.DomainModel
	var hr *l2q.HRModel
	if *dsample > 0 {
		if dm, err = sys.LearnDomain(a, ids[:min(*dsample, len(ids)/2)]); err != nil {
			fail(err)
		}
	}

	var sel l2q.Selector
	switch *strategy {
	case "RND":
		sel = l2q.NewRND()
	case "P":
		sel = l2q.NewP()
	case "R":
		sel = l2q.NewR()
	case "P+q":
		sel = l2q.NewPQ()
	case "R+q":
		sel = l2q.NewRQ()
	case "P+t":
		sel = l2q.NewPT()
	case "R+t":
		sel = l2q.NewRT()
	case "L2QP":
		sel = l2q.NewL2QP()
	case "L2QR":
		sel = l2q.NewL2QR()
	case "L2QBAL":
		sel = l2q.NewL2QBAL()
	case "LM":
		sel = l2q.NewLM()
	case "AQ":
		sel = l2q.NewAQ()
	case "HR":
		if hr, err = sys.TrainHR(a, ids[:min(*dsample, len(ids)/2)]); err != nil {
			fail(err)
		}
		sel = l2q.NewHR(hr)
	case "MQ":
		sel = l2q.NewMQFor(corpus.Domain(*domain), a)
	default:
		fail(fmt.Errorf("unknown strategy %q", *strategy))
	}

	ix := *entityIx
	if ix < 0 || ix >= len(ids) {
		ix = len(ids) - 1
	}
	target := sys.Corpus().Entity(ids[ix])

	relUniverse := 0
	for _, p := range sys.Corpus().PagesOf(target.ID) {
		if sys.Relevant(a, p) {
			relUniverse++
		}
	}

	fmt.Printf("entity:   %q (seed query %q)\n", target.Name, target.SeedQuery)
	fmt.Printf("aspect:   %s (%d relevant pages in the corpus)\n", a, relUniverse)
	fmt.Printf("strategy: %s\n\n", sel.Name())

	var h *l2q.Harvester
	var re *l2q.RemoteEngine
	if *remote != "" {
		// The resilient path: transient transport faults (5xx, timeouts,
		// truncated bodies) are retried with exponential backoff instead
		// of surfacing as empty "unproductive" queries.
		codec, err := l2q.ParseCodec(*wireFlag)
		if err != nil {
			fail(err)
		}
		opts := l2q.RemoteOptions{
			Retry:           l2q.RetryPolicy{MaxAttempts: *retries},
			PrefetchWorkers: *prefetch,
			Timeout:         *rtimeout,
			Codec:           codec,
		}
		if re, err = sys.DialRemoteOpts(*remote, opts); err != nil {
			fail(err)
		}
		negotiated := "json"
		if re.WireNegotiated() {
			negotiated = "binary"
		}
		fmt.Printf("remote:   http://%s (%d pages served; %d attempts/request; %s wire)\n\n",
			*remote, re.Stats().NumPages, *retries, negotiated)
		h = sys.NewRemoteHarvester(re, target, a, dm)
	} else {
		h = sys.NewHarvester(target, a, dm)
	}

	// The harvest is interruptible (StepCtx threads the signal context
	// through the fetch stack) and, with -checkpoint, durable: Ctrl-C
	// writes the final checkpoint and a rerun resumes the exact session.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	resumed := 0
	if *ckpt != "" {
		if _, err := os.Stat(*ckpt); err == nil {
			cps, err := store.LoadCheckpointsFile(*ckpt)
			if err != nil {
				fail(err)
			}
			for _, cp := range cps {
				if cp.Entity == target.ID && cp.Aspect == corpus.Aspect(a) {
					if err := h.Resume(cp); err != nil {
						fail(err)
					}
					resumed = len(cp.Fired)
					fmt.Printf("resumed %d fired queries from %s\n", resumed, *ckpt)
					break
				}
			}
		}
	}
	saveCkpt := func() {
		if *ckpt == "" {
			return
		}
		if err := store.SaveCheckpointsFile(*ckpt, []core.Checkpoint{h.Snapshot()}); err != nil {
			fmt.Fprintf(os.Stderr, "l2qharvest: checkpoint: %v\n", err)
		}
	}
	interrupted := func(err error) {
		saveCkpt()
		if *ckpt != "" {
			fmt.Printf("\ninterrupted (%v); checkpoint saved to %s — rerun to resume\n", err, *ckpt)
			os.Exit(0)
		}
		fail(err)
	}

	if _, err := h.BootstrapCtx(ctx); err != nil {
		interrupted(err)
	}
	report(h, sys, target, a, relUniverse, "seed")
	saveCkpt()
	for i := resumed; i < *queries; i++ {
		q, ok, err := h.StepCtx(ctx, sel)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				interrupted(err)
			}
			fail(err)
		}
		if !ok {
			fmt.Println("selector ran out of candidates")
			break
		}
		report(h, sys, target, a, relUniverse, string(q))
		saveCkpt()
	}
	fmt.Printf("\nselection time: %v total\n", h.SelectionTime().Round(1000))
	if re != nil {
		m := re.Metrics()
		fmt.Printf("HTTP requests issued: %d (%d retried, %d failed after retries, %d page downloads shared in flight)\n",
			m.Requests, m.Retries, m.Errors, m.PrefetchShared)
	}

	if *replay {
		// Uninterrupted in-process reference: same seeding conventions,
		// full budget in one go. Equal fired sequences prove the
		// checkpoint/resume path reproduced the session exactly.
		ref := sys.NewHarvester(target, a, dm)
		refFired := ref.Run(sel, *queries)
		if reflect.DeepEqual(refFired, h.Fired()) {
			fmt.Printf("replaycheck: OK (%d queries match an uninterrupted run)\n", len(refFired))
		} else {
			fail(fmt.Errorf("replaycheck: fired %v, uninterrupted run fires %v", h.Fired(), refFired))
		}
	}
}

func report(h *l2q.Harvester, sys *l2q.System, e *l2q.Entity, a l2q.Aspect, relU int, label string) {
	rel, tot := 0, len(h.Pages())
	for _, p := range h.Pages() {
		if p.Entity == e.ID && sys.Relevant(a, p) {
			rel++
		}
	}
	prec, rec := 0.0, 0.0
	if tot > 0 {
		prec = float64(rel) / float64(tot)
	}
	if relU > 0 {
		rec = float64(rel) / float64(relU)
	}
	fmt.Printf("%-28q → %2d pages, precision %.2f, recall %.2f\n", label, tot, prec, rec)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "l2qharvest: %v\n", err)
	os.Exit(1)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
