// Command l2qstore builds and inspects binary corpus stores (internal/store).
//
// Usage:
//
//	l2qstore build -out researchers.l2q -domain researchers -entities 996 -pages 50
//	l2qstore info -in researchers.l2q
//	l2qstore export -in researchers.l2q -site ./public   (static HTML site)
//	l2qstore domains -in researchers.l2q -out researchers.domains
//
// The domains subcommand precomputes the domain phase over a store file:
// it trains the aspect classifiers and learns every aspect's domain model
// (mirroring exactly what l2qserve would learn lazily on first harvest),
// then persists them as a domain artifact (magic L2QDOM1) that
// `l2qserve -store ... -domains ...` boots warm from.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"l2q/internal/corpus"
	"l2q/internal/html"
	"l2q/internal/search"
	"l2q/internal/store"
	"l2q/internal/synth"
	"l2q/internal/types"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = runBuild(os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	case "export":
		err = runExport(os.Args[2:])
	case "domains":
		err = runDomains(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "l2qstore: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: l2qstore {build|info|export|domains} [flags]")
	os.Exit(2)
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	out := fs.String("out", "corpus.l2q", "output store file")
	domain := fs.String("domain", "researchers", "researchers or cars")
	entities := fs.Int("entities", 100, "corpus entities")
	pages := fs.Int("pages", 30, "pages per entity")
	seed := fs.Uint64("seed", 2016, "corpus seed")
	noIndex := fs.Bool("noindex", false, "skip the inverted-index section")
	fs.Parse(args)

	cfg := synth.DefaultConfig(corpus.Domain(*domain))
	cfg.NumEntities = *entities
	cfg.PagesPerEntity = *pages
	cfg.Seed = *seed
	g, err := synth.Generate(cfg)
	if err != nil {
		return err
	}
	var idx *search.Index
	if !*noIndex {
		idx = search.BuildIndex(g.Corpus.Pages)
	}
	if err := store.SaveFile(*out, g.Corpus, idx); err != nil {
		return err
	}
	fi, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d entities, %d pages, %.1f MiB\n",
		*out, g.Corpus.NumEntities(), g.Corpus.NumPages(), float64(fi.Size())/(1<<20))
	return nil
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "corpus.l2q", "store file")
	fs.Parse(args)

	b, err := store.LoadFile(*in)
	if err != nil {
		return err
	}
	st := b.Corpus.ComputeStats()
	fmt.Printf("domain      %s\n", st.Domain)
	fmt.Printf("entities    %d\n", st.Entities)
	fmt.Printf("pages       %d\n", st.Pages)
	fmt.Printf("paragraphs  %d\n", st.Paragraphs)
	fmt.Printf("tokens      %d\n", st.Tokens)
	if b.Index != nil {
		fmt.Printf("index       %d terms, %d docs\n", b.Index.NumTerms(), b.Index.NumDocs())
	} else {
		fmt.Println("index       (none)")
	}
	aspects := make([]corpus.Aspect, 0, len(st.ParasByAspect))
	for a := range st.ParasByAspect {
		aspects = append(aspects, a)
	}
	sort.Slice(aspects, func(i, j int) bool { return aspects[i] < aspects[j] })
	for _, a := range aspects {
		fmt.Printf("  %-14s %d paragraphs\n", a, st.ParasByAspect[a])
	}
	return nil
}

// runDomains precomputes the domain phase for a store file. The protocol
// mirrors l2qserve's lazy path exactly — classifiers trained on the whole
// served corpus, domain models learned over the canonical first-half
// entity sample — so a warm boot selects byte-identically to a cold one.
func runDomains(args []string) error {
	fs := flag.NewFlagSet("domains", flag.ExitOnError)
	in := fs.String("in", "corpus.l2q", "store file to learn from")
	out := fs.String("out", "corpus.domains", "output domain-artifact file")
	learnW := fs.Int("learnworkers", 0, "domain-phase counting workers (0 = GOMAXPROCS)")
	fs.Parse(args)

	b, err := store.LoadFile(*in)
	if err != nil {
		return err
	}
	c := b.Corpus
	if len(c.Aspects()) == 0 {
		return fmt.Errorf("corpus %s carries no aspect labels to learn from", *in)
	}
	// One shared protocol with l2qserve's lazy path (store.DomainLearner),
	// so the precomputed artifact is byte-identical to what a cold boot
	// would learn.
	start := time.Now()
	ln := store.NewDomainLearner(c, store.ReconstructTokenizer(c),
		types.NewRegexRecognizer(), *learnW, nil)
	art, err := ln.Artifact()
	if err != nil {
		return fmt.Errorf("%s: %w", *in, err)
	}
	if err := store.SaveDomainsFile(*out, art); err != nil {
		return err
	}
	fi, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d domain models + %d classifiers over %d entities (%.1f KiB, %v)\n",
		*out, len(art.Models), len(art.Classifiers), len(ln.DomainIDs),
		float64(fi.Size())/(1<<10), time.Since(start).Round(time.Millisecond))
	return nil
}

func runExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	in := fs.String("in", "corpus.l2q", "store file")
	siteDir := fs.String("site", "public", "output directory for the HTML site")
	fs.Parse(args)

	b, err := store.LoadFile(*in)
	if err != nil {
		return err
	}
	site := html.RenderSite(b.Corpus)
	for path, doc := range site {
		full := filepath.Join(*siteDir, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(full, []byte(doc), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("exported %d HTML files to %s\n", len(site), *siteDir)
	return nil
}
