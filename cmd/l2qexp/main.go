// Command l2qexp regenerates every table and figure of the paper's
// evaluation section (§VI) on the synthetic corpora and prints them in the
// paper's layout. See EXPERIMENTS.md for the recorded paper-vs-measured
// comparison.
//
// Usage:
//
//	l2qexp [-domain researchers|cars|both] [-fig all|9|10|11|12|13|14|crawl|budget]
//	       [-entities N] [-pages N] [-domainsample N] [-test N] [-val N]
//	       [-seed N] [-cv] [-quick] [-json] [-shards N] [-scoreworkers N]
//	       [-cachesize N] [-inferworkers N] [-warmstart] [-incremental]
//
// Beyond the paper's figures, -fig crawl runs the extension experiment
// comparing query-driven harvesting against a link-following focused
// crawler at an equal download budget, -fig budget compares fixed-equal
// vs adaptive cross-entity query-budget allocation at the same global
// spend (the scheduler's BudgetPolicy), and Fig. 13 output includes
// paired significance tests (sign test + bootstrap) of L2QBAL against
// every baseline.
//
// With -json, every figure additionally emits one machine-readable JSON
// line ({"figure":...,"domain":...,"data":...}) alongside the printed
// table, so CI can record a BENCH_*.json perf/quality trajectory.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"time"

	"l2q/internal/corpus"
	"l2q/internal/eval"
	"l2q/internal/synth"
)

// jsonOut mirrors the -json flag: emit one JSON object per figure/series.
var jsonOut bool

// emitJSON writes one machine-readable result line to stdout.
func emitJSON(figure string, domain corpus.Domain, data any) {
	if !jsonOut {
		return
	}
	line, err := json.Marshal(map[string]any{
		"figure": figure,
		"domain": string(domain),
		"data":   data,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "l2qexp: json: %v\n", err)
		return
	}
	fmt.Println(string(line))
}

func main() {
	var (
		domain       = flag.String("domain", "both", "researchers, cars, or both")
		fig          = flag.String("fig", "all", "figure to regenerate: 9|10|11|12|13|14|crawl|budget|9crf|all")
		jsonFlag     = flag.Bool("json", false, "emit one machine-readable JSON line per figure alongside the tables")
		entities     = flag.Int("entities", 0, "entities in the corpus (0 = paper scale)")
		pages        = flag.Int("pages", 0, "pages per entity (0 = paper's 50)")
		domainSample = flag.Int("domainsample", 0, "domain entities in the domain graph (0 = default)")
		test         = flag.Int("test", 0, "test entities (0 = default)")
		val          = flag.Int("val", 0, "validation entities (0 = default)")
		seed         = flag.Uint64("seed", 0, "corpus seed (0 = default)")
		cv           = flag.Bool("cv", false, "cross-validate r0 on the validation split first")
		r0star       = flag.Float64("r0star", 0, "set the seed-recall anchor directly (skips -cv; 0 = config default)")
		quick        = flag.Bool("quick", false, "small fast configuration (smoke test)")
		splits       = flag.Int("splits", 1, "random entity splits to average (paper: 10)")
		shards       = flag.Int("shards", 0, "index shards (0 = GOMAXPROCS)")
		workers      = flag.Int("scoreworkers", 0, "per-query scoring workers (0 = GOMAXPROCS)")
		cacheSize    = flag.Int("cachesize", 0, "query cache capacity (0 = default, <0 = off)")
		inferWorkers = flag.Int("inferworkers", 0, "per-step inference workers (0 = GOMAXPROCS)")
		learnWorkers = flag.Int("learnworkers", 0, "domain-phase counting workers (0 = GOMAXPROCS)")
		warmStart    = flag.Bool("warmstart", true, "warm-start fixpoint solvers from the previous step")
		incremental  = flag.Bool("incremental", true, "persistent incremental session graphs (false = rebuild per step)")
		incrPool     = flag.Bool("incrementalpool", true, "persistent incremental candidate pools (false = re-enumerate per step)")
	)
	flag.Parse()
	jsonOut = *jsonFlag

	domains := []corpus.Domain{synth.DomainResearchers, synth.DomainCars}
	switch *domain {
	case "researchers":
		domains = domains[:1]
	case "cars":
		domains = domains[1:]
	case "both":
	default:
		fmt.Fprintf(os.Stderr, "unknown domain %q\n", *domain)
		os.Exit(2)
	}

	for _, d := range domains {
		cfg := eval.DefaultConfig(d)
		if *quick {
			cfg.NumEntities = 60
			cfg.PagesPerEntity = 20
			cfg.DomainSample = 16
			cfg.NumTest = 8
			cfg.NumValidation = 4
		}
		if *entities > 0 {
			cfg.NumEntities = *entities
		}
		if *pages > 0 {
			cfg.PagesPerEntity = *pages
		}
		if *domainSample > 0 {
			cfg.DomainSample = *domainSample
		}
		if *test > 0 {
			cfg.NumTest = *test
		}
		if *val > 0 {
			cfg.NumValidation = *val
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		if *r0star > 0 {
			cfg.Core.R0Star = *r0star
		}
		cfg.Core.SearchShards = *shards
		cfg.Core.SearchScoreWorkers = *workers
		cfg.Core.SearchCacheSize = *cacheSize
		cfg.Core.InferWorkers = *inferWorkers
		cfg.Core.LearnWorkers = *learnWorkers
		cfg.Core.WarmStart = *warmStart
		cfg.Core.IncrementalGraph = *incremental
		cfg.Core.IncrementalPool = *incrPool
		if err := runDomain(cfg, *fig, *cv, *splits); err != nil {
			fmt.Fprintf(os.Stderr, "l2qexp: %v\n", err)
			os.Exit(1)
		}
	}
}

func runDomain(cfg eval.Config, fig string, cv bool, splits int) error {
	if splits > 1 {
		return runSplits(cfg, splits)
	}
	return runFigures(cfg, fig, cv)
}

// runSplits reports mean ± std of the headline methods across repeated
// random entity splits (the paper's 10-split protocol, §VI-A).
func runSplits(cfg eval.Config, n int) error {
	fmt.Printf("== %s: %d random splits, headline methods (mean ± std of normalized F@3) ==\n",
		cfg.Domain, n)
	start := time.Now()
	envs, err := eval.NewEnvs(cfg, n)
	if err != nil {
		return err
	}
	for _, m := range []eval.Method{eval.MethodL2QBAL, eval.MethodL2QP, eval.MethodL2QR,
		eval.MethodHR, eval.MethodMQ, eval.MethodLM} {
		st, err := eval.RunMethodOverSplits(envs, m, 3, -1)
		if err != nil {
			return err
		}
		fmt.Printf("  %-8s F = %.3f ± %.3f   P = %.3f ± %.3f   R = %.3f ± %.3f\n",
			m, st.Mean.F, st.Std.F, st.Mean.P, st.Std.P, st.Mean.R, st.Std.R)
	}
	fmt.Printf("(%v)\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func runFigures(cfg eval.Config, fig string, cv bool) error {
	fmt.Printf("==================================================================\n")
	fmt.Printf("Domain: %s  (%d entities × %d pages, domain graph sample %d, %d test)\n",
		cfg.Domain, cfg.NumEntities, cfg.PagesPerEntity, cfg.DomainSample, cfg.NumTest)
	fmt.Printf("==================================================================\n")
	start := time.Now()
	env, err := eval.NewEnv(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("environment ready in %v (%d pages indexed)\n\n",
		time.Since(start).Round(time.Millisecond), env.G.Corpus.NumPages())

	if cv {
		r0, scores, err := env.CrossValidateR0()
		if err != nil {
			return err
		}
		fmt.Printf("-- r0* cross-validation (validation split, F of L2QBAL@3) --\n")
		for _, c := range eval.R0Grid {
			fmt.Printf("  r0*=%.2f  F=%.4f\n", c, scores[c])
		}
		fmt.Printf("  chosen r0* = %.2f\n\n", r0)
		env.Cfg.Core.R0Star = r0
	}

	want := func(f string) bool { return fig == "all" || fig == f }

	if want("9") {
		printFig9(env)
	}
	if want("10") {
		if err := printFig10(env); err != nil {
			return err
		}
	}
	if want("11") {
		if err := printFig11(env); err != nil {
			return err
		}
	}
	if want("12") {
		if err := printFig12(env); err != nil {
			return err
		}
	}
	if want("13") {
		if err := printFig13(env); err != nil {
			return err
		}
	}
	if want("14") {
		if err := printFig14(env); err != nil {
			return err
		}
	}
	if want("crawl") {
		if err := printCrawl(env); err != nil {
			return err
		}
	}
	if want("budget") {
		if err := printBudget(env); err != nil {
			return err
		}
	}
	if fig == "9crf" {
		printFig9CRF(env)
	}
	fmt.Printf("total time: %v\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func printFig9(env *eval.Env) {
	fmt.Printf("-- Fig. 9: entity aspects, paragraph frequency, classifier accuracy --\n")
	fmt.Printf("%-14s %10s %10s\n", "Aspect", "Frequency", "Accuracy")
	rows := env.Fig9()
	for _, r := range rows {
		fmt.Printf("%-14s %10d %10.2f\n", r.Aspect, r.Frequency, r.Accuracy)
	}
	emitJSON("fig9", env.Cfg.Domain, rows)
	fmt.Println()
}

func printFig9CRF(env *eval.Env) {
	fmt.Printf("-- Fig. 9 extension: Naive Bayes vs linear-chain CRF accuracy --\n")
	fmt.Printf("%-14s %10s %10s\n", "Aspect", "NB", "CRF")
	rows := env.Fig9CRF()
	for _, r := range rows {
		fmt.Printf("%-14s %10.3f %10.3f\n", r.Aspect, r.AccuracyNB, r.AccuracyCRF)
	}
	emitJSON("fig9crf", env.Cfg.Domain, rows)
	fmt.Println()
}

func printFig10(env *eval.Env) error {
	t0 := time.Now()
	res, err := env.Fig10()
	if err != nil {
		return err
	}
	fmt.Printf("-- Fig. 10: domain & context awareness (normalized, 3 queries) --\n")
	fmt.Printf("precision: ")
	for _, m := range []eval.Method{eval.MethodRND, eval.MethodP, eval.MethodPQ, eval.MethodPT, eval.MethodL2QP} {
		fmt.Printf("%s=%.3f  ", m, res.Precision[m])
	}
	fmt.Printf("\nrecall:    ")
	for _, m := range []eval.Method{eval.MethodRND, eval.MethodR, eval.MethodRQ, eval.MethodRT, eval.MethodL2QR} {
		fmt.Printf("%s=%.3f  ", m, res.Recall[m])
	}
	fmt.Printf("\n(%v)\n\n", time.Since(t0).Round(time.Millisecond))
	emitJSON("fig10", env.Cfg.Domain, res)
	return nil
}

func printFig11(env *eval.Env) error {
	t0 := time.Now()
	res, err := env.Fig11()
	if err != nil {
		return err
	}
	fmt.Printf("-- Fig. 11: effect of domain size (normalized, 3 queries) --\n")
	fmt.Printf("%-18s", "domain used")
	for _, f := range res.Fractions {
		fmt.Printf("%8.0f%%", f*100)
	}
	fmt.Printf("\n%-18s", "precision (L2QP)")
	for _, v := range res.PrecL2QP {
		fmt.Printf("%9.3f", v)
	}
	fmt.Printf("\n%-18s", "recall (L2QR)")
	for _, v := range res.RecL2QR {
		fmt.Printf("%9.3f", v)
	}
	fmt.Printf("\n(%v)\n\n", time.Since(t0).Round(time.Millisecond))
	emitJSON("fig11", env.Cfg.Domain, res)
	return nil
}

func printSeries(res eval.CompareResult, metric func(eval.PRF) float64, name string) {
	fmt.Printf("%-8s", name+"\\#q")
	for k := 2; k <= len(res.Series[0].ByQueries); k++ {
		fmt.Printf("%8d", k)
	}
	fmt.Println()
	ordered := make([]eval.Series, len(res.Series))
	copy(ordered, res.Series)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Method < ordered[j].Method })
	for _, s := range ordered {
		fmt.Printf("%-8s", s.Method)
		for k := 2; k <= len(s.ByQueries); k++ {
			fmt.Printf("%8.3f", metric(s.ByQueries[k-1]))
		}
		fmt.Println()
	}
}

func printFig12(env *eval.Env) error {
	t0 := time.Now()
	res, err := env.Fig12()
	if err != nil {
		return err
	}
	fmt.Printf("-- Fig. 12a: precision vs number of queries (normalized) --\n")
	printSeries(res, func(p eval.PRF) float64 { return p.P }, "prec")
	fmt.Printf("-- Fig. 12b: recall vs number of queries (normalized) --\n")
	printSeries(res, func(p eval.PRF) float64 { return p.R }, "rec")
	fmt.Printf("(%v)\n\n", time.Since(t0).Round(time.Millisecond))
	emitJSON("fig12", env.Cfg.Domain, res)
	return nil
}

func printFig13(env *eval.Env) error {
	t0 := time.Now()
	res, err := env.Fig13()
	if err != nil {
		return err
	}
	fmt.Printf("-- Fig. 13: F-score vs number of queries (normalized) --\n")
	printSeries(res, func(p eval.PRF) float64 { return p.F }, "F")
	sigs, err := res.SignificanceVsFirst()
	if err != nil {
		return err
	}
	fmt.Printf("significance at %d queries (paired over entity×aspect):\n", len(res.Series[0].ByQueries))
	for _, s := range sigs {
		fmt.Printf("  %s\n", s)
	}
	fmt.Printf("(%v)\n\n", time.Since(t0).Round(time.Millisecond))
	emitJSON("fig13", env.Cfg.Domain, res)
	return nil
}

func printCrawl(env *eval.Env) error {
	t0 := time.Now()
	res, err := env.CompareCrawler()
	if err != nil {
		return err
	}
	fmt.Printf("-- Extension: query harvesting vs link-based focused crawler --\n")
	fmt.Printf("equal download budget, normalized F over %d entity×aspect pairs:\n", res.Entities)
	fmt.Printf("  %-22s %.3f\n", "L2QBAL (queries)", res.L2QF)
	fmt.Printf("  %-22s %.3f\n", "focused crawler (links)", res.CrawlerF)
	fmt.Printf("  %s\n", res.Sig)
	fmt.Printf("(%v)\n\n", time.Since(t0).Round(time.Millisecond))
	emitJSON("crawl", env.Cfg.Domain, res)
	return nil
}

func printFig14(env *eval.Env) error {
	res, err := env.Fig14()
	if err != nil {
		return err
	}
	fmt.Printf("-- Fig. 14: time cost per query (seconds) --\n")
	fmt.Printf("%-10s %12s\n", "Method", "Selection")
	for _, m := range []eval.Method{eval.MethodL2QP, eval.MethodL2QR, eval.MethodL2QBAL} {
		fmt.Printf("%-10s %12.4f\n", m, res.SelectionSec[m])
	}
	fmt.Printf("%-10s %12.1f (simulated remote download, %s)\n\n", "Fetch", res.FetchSecPerQuery, res.Domain)
	emitJSON("fig14", env.Cfg.Domain, res)
	return nil
}

// printBudget runs the fixed-vs-adaptive budget-allocation comparison
// (the scheduler's BudgetPolicy) at the same global query spend.
func printBudget(env *eval.Env) error {
	t0 := time.Now()
	// The command owns the context root; Ctrl-C cancels the scheduled
	// harvests instead of abandoning them mid-batch.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := env.BudgetComparison(ctx, env.Cfg.NumQueries)
	if err != nil {
		return err
	}
	fmt.Printf("-- Extension: fixed-equal vs adaptive cross-entity query budgets --\n")
	fmt.Printf("same global budget per aspect (%d queries x %d entities); \u03a3R_E(\u03a6) is the\n", res.NQueries, env.Cfg.NumTest)
	fmt.Printf("summed collective recall, rel the gathered relevant pages:\n")
	fmt.Printf("%-14s %8s | %8s %8s %6s | %8s %8s %6s\n",
		"Aspect", "budget", "fix \u03a3R", "fired", "rel", "ada \u03a3R", "fired", "rel")
	for _, r := range res.Rows {
		fmt.Printf("%-14s %8d | %8.3f %8d %6d | %8.3f %8d %6d\n",
			r.Aspect, r.Budget,
			r.FixedSumRPhi, r.FixedQueries, r.FixedRelPages,
			r.AdaptiveSumRPhi, r.AdaptiveQueries, r.AdaptiveRelPages)
	}
	fmt.Printf("(%v)\n\n", time.Since(t0).Round(time.Millisecond))
	emitJSON("budget", env.Cfg.Domain, res)
	return nil
}
