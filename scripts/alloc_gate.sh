#!/bin/sh
# Allocation-regression gate: run the alloc benchmarks (-benchmem) and
# fail when any hot path allocates more per op than its pinned ceiling.
# The ceilings are the contract the zero-allocation refactor established:
# the append paths with reused buffers stay at 0 allocs/op, the
# convenience wrappers pay only their documented result-slice/fold costs.
#
# Writes one JSON line per benchmark to BENCH_allocs.json (or $1) — the
# CI artifact that trends allocs/op across PRs.
#
# Usage: scripts/alloc_gate.sh [out.json]
set -eu

OUT=${1:-BENCH_allocs.json}
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

# -benchtime in iterations so allocs/op is a stable integer ratio, not a
# wall-clock-dependent sample.
go test -run '^$' \
	-bench 'BenchmarkTokenizeAllocs|BenchmarkNGramsAllocs|BenchmarkSearchAllocs|BenchmarkLiveSearchAllocs|BenchmarkSearchAppendConcurrent|BenchmarkCandidateAllocs|BenchmarkScatterMergeAllocs' \
	-benchmem -benchtime=500x \
	./internal/textproc/ ./internal/search/ ./internal/core/ | tee "$RAW"

# bench-name (CPU suffix stripped) → max allocs/op.
ceiling() {
	case "$1" in
	BenchmarkTokenizeAllocs/append/lower) echo 0 ;;   # pure-ASCII LUT path, zero-copy tokens
	BenchmarkTokenizeAllocs/append/mixed) echo 8 ;;   # one ToLower string per capitalized token
	BenchmarkTokenizeAllocs/convenience) echo 14 ;;   # + the fresh result slice
	BenchmarkTokenizeAllocs/reference) echo 45 ;;     # pre-LUT baseline, kept for the ratio
	BenchmarkNGramsAllocs/append) echo 20 ;;          # only the multi-word gram strings emitted
	BenchmarkNGramsAllocs/convenience) echo 28 ;;     # + result slice growth and the dedup map
	BenchmarkSearchAllocs/cached/append) echo 0 ;;    # cache hit into a reused buffer
	BenchmarkSearchAllocs/cached) echo 1 ;;           # the fresh result slice
	BenchmarkSearchAllocs/nocache/append) echo 8 ;;   # pooled scoring scratch steady state
	BenchmarkLiveSearchAllocs/cached/append) echo 0 ;; # multi-segment cache hit into a reused buffer
	BenchmarkLiveSearchAllocs/cached) echo 1 ;;       # the fresh result slice
	BenchmarkSearchAppendConcurrent) echo 1 ;;        # contended pool refills round up
	BenchmarkCandidateAllocs/steady/append) echo 0 ;; # pool re-emits cached segments
	BenchmarkCandidateAllocs/steady) echo 3 ;;        # the fresh result slice (+ map growth slack)
	BenchmarkScatterMergeAllocs) echo 0 ;;            # coordinator K-way merge over pooled heap scratch
	*) echo "" ;;
	esac
}

: >"$OUT"
fail=0
# go test -benchmem line: name iters ns/op "ns/op" B/op "B/op" N "allocs/op"
while read -r name _ ns _ bytes _ allocs _; do
	base=$(printf '%s' "$name" | sed 's/-[0-9][0-9]*$//')
	max=$(ceiling "$base")
	if [ -z "$max" ]; then
		echo "alloc_gate: $base has no pinned ceiling; add one to scripts/alloc_gate.sh" >&2
		fail=1
		continue
	fi
	ok=true
	if [ "$allocs" -gt "$max" ]; then
		ok=false
		fail=1
		echo "alloc_gate: FAIL $base: $allocs allocs/op exceeds ceiling $max" >&2
	fi
	printf '{"bench":"%s","ns_per_op":%s,"bytes_per_op":%s,"allocs_per_op":%s,"ceiling":%s,"ok":%s}\n' \
		"$base" "$ns" "$bytes" "$allocs" "$max" "$ok" >>"$OUT"
done <<EOF
$(grep '^Benchmark' "$RAW")
EOF

test -s "$OUT" || { echo "alloc_gate: no benchmark lines parsed" >&2; exit 1; }
cat "$OUT"
exit "$fail"
