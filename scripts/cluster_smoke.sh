#!/bin/sh
# Cluster smoke: boot a real 3-node l2qserve fleet plus a coordinator as
# separate processes (the actual CLI flags, not the in-process test
# harness) and drive the scatter-gather surface over HTTP:
#
#   1. a seeded search through the coordinator returns hits
#   2. a page downloads through the coordinator's owner-chain proxy
#   3. /api/v1/metrics exposes the cluster fan-out gauges
#   4. killing one node loses nothing: with replicas=2 every partition
#      still has a live owner, so the same search still returns hits,
#      the failover shows up in the error counters, and no response is
#      flagged partial
#
# Usage: scripts/cluster_smoke.sh
set -eu

WORK=$(mktemp -d)
trap 'kill $(cat "$WORK"/*.pid 2>/dev/null) 2>/dev/null || true; rm -rf "$WORK"' EXIT

go build -o "$WORK/l2qserve" ./cmd/l2qserve

# Small corpus, harvesting off: the smoke is about the cluster surface.
CORPUS="-domain researchers -entities 20 -pages 10 -harvest=false -quiet"

start() { # start <name> <args...>: background one l2qserve, keep its pid
	name=$1
	shift
	"$WORK/l2qserve" "$@" >"$WORK/$name.log" 2>&1 &
	echo $! >"$WORK/$name.pid"
}

# url_of <name>: poll the process log for its self-reported bound address
# (every mode prints "... on http://host:port ..." once serving).
url_of() {
	i=0
	while [ $i -lt 100 ]; do
		u=$(sed -n 's#.*on \(http://[0-9.:]*\).*#\1#p' "$WORK/$1.log" | head -n 1)
		if [ -n "$u" ]; then
			echo "$u"
			return 0
		fi
		i=$((i + 1))
		sleep 0.1
	done
	echo "cluster_smoke: $1 never reported its address:" >&2
	cat "$WORK/$1.log" >&2
	exit 1
}

for i in 0 1 2; do
	# shellcheck disable=SC2086 # CORPUS is a flag list, splitting intended
	start "node$i" -addr 127.0.0.1:0 -nodes 3 -nodeid "$i" -replicas 2 $CORPUS
done
N0=$(url_of node0)
N1=$(url_of node1)
N2=$(url_of node2)

# shellcheck disable=SC2086
start co -addr 127.0.0.1:0 -coordinator -nodes "$N0,$N1,$N2" -replicas 2 $CORPUS
CO=$(url_of co)
echo "cluster_smoke: coordinator $CO over $N0 $N1 $N2"

# 1. Seeded search for a real corpus entity returns hits.
NAME=$(curl -s "$CO/api/v1/entities" | tr ',' '\n' | sed -n 's/.*"name":"\([^"]*\)".*/\1/p' | head -n 1)
[ -n "$NAME" ] || { echo "cluster_smoke: no entities served" >&2; exit 1; }
HITS=$(curl -s -G "$CO/api/v1/search" --data-urlencode "seed=$NAME")
echo "$HITS" | grep -q '"pageId"' || {
	echo "cluster_smoke: scatter search for \"$NAME\" returned no hits: $HITS" >&2
	exit 1
}

# 2. A ranked page downloads through the coordinator's owner-chain proxy.
PID=$(echo "$HITS" | tr ',' '\n' | sed -n 's/.*"pageId":\([0-9]*\).*/\1/p' | head -n 1)
curl -s "$CO/page/$PID.html" | grep -q 'l2q-page-id' || {
	echo "cluster_smoke: page $PID did not proxy through the coordinator" >&2
	exit 1
}

# 3. The metrics surface exposes the fan-out gauges.
METRICS=$(curl -s "$CO/api/v1/metrics")
echo "$METRICS" | grep -q '"cluster"' || { echo "cluster_smoke: metrics missing cluster section: $METRICS" >&2; exit 1; }
echo "$METRICS" | grep -q '"scatters":[1-9]' || { echo "cluster_smoke: no scatters recorded: $METRICS" >&2; exit 1; }

# 4. Kill one node: replicas keep every partition covered, so the same
# search still answers fully (failover, not partial results).
kill "$(cat "$WORK/node1.pid")"
HITS2=$(curl -s -G "$CO/api/v1/search" --data-urlencode "seed=$NAME")
echo "$HITS2" | grep -q '"pageId"' || {
	echo "cluster_smoke: search lost hits after killing node 1: $HITS2" >&2
	exit 1
}
echo "$HITS2" | grep -q '"partial":true' && {
	echo "cluster_smoke: response flagged partial despite a live replica for every partition: $HITS2" >&2
	exit 1
}
METRICS2=$(curl -s "$CO/api/v1/metrics")
echo "$METRICS2" | grep -q '"errors":[1-9]' || {
	echo "cluster_smoke: killed node produced no error counts: $METRICS2" >&2
	exit 1
}

echo "cluster_smoke: PASS (search + page proxy + metrics + node-kill failover)"
