package l2q

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"testing"
)

func testSystem(t *testing.T, d Domain) *System {
	t.Helper()
	sys, err := NewSyntheticSystem(d, SystemOptions{NumEntities: 20, PagesPerEntity: 14, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestUseCRFClassifiers(t *testing.T) {
	if testing.Short() {
		t.Skip("CRF training is seconds-scale")
	}
	sys := testSystem(t, Cars)
	aspect := sys.Aspects()[0]
	nbAcc := sys.ClassifierAccuracy(aspect, sys.Corpus().Pages)
	if err := sys.UseCRFClassifiers(); err != nil {
		t.Fatal(err)
	}
	crfAcc := sys.ClassifierAccuracy(aspect, sys.Corpus().Pages)
	if crfAcc < 0.9 {
		t.Errorf("CRF accuracy %.3f (NB was %.3f)", crfAcc, nbAcc)
	}
	// Harvesting still works with the swapped family.
	e := sys.Corpus().Entities[0]
	h := sys.NewHarvester(e, aspect, nil)
	if fired := h.Run(NewP(), 2); len(fired) == 0 {
		t.Error("no queries fired under CRF classifiers")
	}
}

func TestSaveLoadStoreRoundTrip(t *testing.T) {
	sys := testSystem(t, Researchers)
	path := filepath.Join(t.TempDir(), "sys.l2q")
	if err := sys.SaveStore(path); err != nil {
		t.Fatal(err)
	}
	b, err := LoadStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Corpus.NumPages() != sys.Corpus().NumPages() {
		t.Errorf("pages %d, want %d", b.Corpus.NumPages(), sys.Corpus().NumPages())
	}
	if b.Index == nil || b.Index.NumDocs() != sys.Corpus().NumPages() {
		t.Error("index missing or wrong size")
	}
}

func TestHarvestPipelinedMatchesHarvestMany(t *testing.T) {
	sys := testSystem(t, Researchers)
	aspect := sys.Aspects()[0]
	ids := sys.EntityIDs()
	dm, err := sys.LearnDomain(aspect, ids[:10])
	if err != nil {
		t.Fatal(err)
	}
	targets := ids[15:]

	seq := sys.HarvestMany(targets, aspect, dm, NewL2QBAL(), 2, 4)
	pipe := sys.HarvestPipelined(context.Background(), targets, aspect, dm, NewL2QBAL(), 2, nil)
	if len(seq) != len(pipe) {
		t.Fatalf("result counts %d vs %d", len(seq), len(pipe))
	}
	for i := range seq {
		if pipe[i].Err != nil {
			t.Fatalf("pipeline job %d: %v", i, pipe[i].Err)
		}
		if !reflect.DeepEqual(seq[i].Fired, pipe[i].Fired) {
			t.Errorf("entity %d fired %v vs %v", i, seq[i].Fired, pipe[i].Fired)
		}
		var a, b []PageID
		for _, p := range seq[i].Pages {
			a = append(a, p.ID)
		}
		for _, p := range pipe[i].Pages {
			b = append(b, p.ID)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("entity %d pages %v vs %v", i, a, b)
		}
	}
}

// TestHarvestManyUnknownEntity: an unknown entity ID yields an explicit
// per-entity error, not a zero-valued result whose nil .Entity panics the
// first caller that dereferences it.
func TestHarvestManyUnknownEntity(t *testing.T) {
	sys := testSystem(t, Researchers)
	aspect := sys.Aspects()[0]
	ids := sys.EntityIDs()
	const bogus = EntityID(99999)
	targets := []EntityID{ids[len(ids)-1], bogus, ids[len(ids)-2]}

	results := sys.HarvestMany(targets, aspect, nil, NewP(), 1, 2)
	if len(results) != len(targets) {
		t.Fatalf("%d results for %d targets", len(results), len(targets))
	}
	if results[1].Err == nil {
		t.Fatal("unknown entity produced no error")
	}
	if results[1].Entity != nil {
		t.Errorf("unknown entity has Entity %v", results[1].Entity)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Errorf("valid entity %d errored: %v", i, results[i].Err)
		}
		if results[i].Entity == nil || results[i].Entity.ID != targets[i] {
			t.Errorf("result %d not aligned with its target", i)
		}
		if len(results[i].Pages) == 0 {
			t.Errorf("valid entity %d gathered nothing", i)
		}
	}
}

// TestHarvestPipelinedUnknownEntity: the pipelined variant keeps one
// result per requested ID (unknown IDs no longer shift every later result
// off its entity) and reports the failure per entity.
func TestHarvestPipelinedUnknownEntity(t *testing.T) {
	sys := testSystem(t, Researchers)
	aspect := sys.Aspects()[0]
	ids := sys.EntityIDs()
	const bogus = EntityID(99999)
	targets := []EntityID{ids[len(ids)-1], bogus, ids[len(ids)-2]}

	results := sys.HarvestPipelined(context.Background(), targets, aspect, nil, NewP(), 1, nil)
	if len(results) != len(targets) {
		t.Fatalf("%d results for %d targets (alignment lost)", len(results), len(targets))
	}
	if results[1].Err == nil || results[1].Entity != nil {
		t.Fatalf("unknown entity slot = %+v, want explicit error with nil Entity", results[1])
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Errorf("valid entity %d errored: %v", i, results[i].Err)
		}
		if results[i].Entity == nil || results[i].Entity.ID != targets[i] {
			t.Errorf("result %d not aligned with its target", i)
		}
		if len(results[i].Pages) == 0 {
			t.Errorf("valid entity %d gathered nothing", i)
		}
	}
}

func TestSystemCrawl(t *testing.T) {
	sys := testSystem(t, Cars)
	e := sys.Corpus().Entities[0]
	res := sys.Crawl(e, sys.Aspects()[0], 12)
	if res.Fetches == 0 || res.Fetches > 12 {
		t.Errorf("fetches = %d", res.Fetches)
	}
	if len(res.Pages) != res.Fetches {
		t.Errorf("pages %d != fetches %d", len(res.Pages), res.Fetches)
	}
}

func TestRemoteHarvestParity(t *testing.T) {
	sys := testSystem(t, Researchers)
	aspect := sys.Aspects()[0]
	ids := sys.EntityIDs()
	dm, err := sys.LearnDomain(aspect, ids[:10])
	if err != nil {
		t.Fatal(err)
	}
	e := sys.Corpus().Entities[len(ids)-1]

	srv := sys.NewSearchServer()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	re, err := sys.DialRemote(addr)
	if err != nil {
		t.Fatal(err)
	}

	local := sys.NewHarvesterSeeded(e, aspect, dm, 1)
	localFired := local.Run(NewL2QBAL(), 2)
	remote := sys.NewRemoteHarvester(re, e, aspect, dm)
	remoteFired := remote.Run(NewL2QBAL(), 2)

	if !reflect.DeepEqual(localFired, remoteFired) {
		t.Errorf("fired %v locally, %v remotely", localFired, remoteFired)
	}
	if re.Requests() == 0 {
		t.Error("remote harvest issued no HTTP requests")
	}
}

func TestRenderPageHTML(t *testing.T) {
	sys := testSystem(t, Cars)
	doc := RenderPageHTML(sys.Corpus().Pages[0])
	if len(doc) == 0 || doc[0] != '<' {
		t.Errorf("implausible HTML: %.40q", doc)
	}
}

func TestDialRemoteErrors(t *testing.T) {
	sys := testSystem(t, Cars)
	if _, err := sys.DialRemote("127.0.0.1:1"); err == nil {
		t.Error("dial to a closed port succeeded")
	}
}

func TestLoadStoreMissingFile(t *testing.T) {
	if _, err := LoadStore("/nonexistent/path.l2q"); err == nil {
		t.Error("missing store file accepted")
	}
}

func TestHarvestPipelinedReportsUnknownEntities(t *testing.T) {
	sys := testSystem(t, Cars)
	aspect := sys.Aspects()[0]
	out := sys.HarvestPipelined(context.Background(), []EntityID{99999}, aspect,
		nil, NewP(), 1, nil)
	// One aligned result per requested ID, carrying an explicit error —
	// dropping the slot (the old behavior) shifted every later result off
	// its entity.
	if len(out) != 1 {
		t.Fatalf("unknown entity produced %d results, want 1", len(out))
	}
	if out[0].Err == nil || out[0].Entity != nil {
		t.Errorf("unknown entity slot = %+v, want explicit error with nil Entity", out[0])
	}
}

// TestCheckpointThroughFacade exercises the promoted Snapshot/Resume on the
// public Harvester plus the package-level codec.
func TestCheckpointThroughFacade(t *testing.T) {
	sys := testSystem(t, Researchers)
	aspect := sys.Aspects()[0]
	ids := sys.EntityIDs()
	dm, err := sys.LearnDomain(aspect, ids[:10])
	if err != nil {
		t.Fatal(err)
	}
	e := sys.Corpus().Entities[len(ids)-1]

	h := sys.NewHarvesterSeeded(e, aspect, dm, 1)
	h.Run(NewL2QBAL(), 2)
	var buf bytes.Buffer
	if err := h.Snapshot().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h2 := sys.NewHarvesterSeeded(e, aspect, dm, 1)
	if err := h2.Resume(cp); err != nil {
		t.Fatal(err)
	}
	if len(h2.Pages()) != len(h.Pages()) {
		t.Errorf("resumed pages %d, want %d", len(h2.Pages()), len(h.Pages()))
	}
}

// TestSchedulerPublicSurface drives the long-lived scheduler through the
// public API: NewScheduler + NewHarvestJobs, a fixed batch matching
// HarvestPipelined, and an adaptive-budget batch respecting the pooled
// spend.
func TestSchedulerPublicSurface(t *testing.T) {
	sys := testSystem(t, Researchers)
	aspect := sys.Aspects()[0]
	ids := sys.EntityIDs()
	targets := ids[len(ids)-3:]
	dm, err := sys.LearnDomain(aspect, ids[:8])
	if err != nil {
		t.Fatal(err)
	}
	const nQueries = 2

	want := sys.HarvestPipelined(context.Background(), targets, aspect, dm, NewL2QBAL(), nQueries, nil)

	sched := sys.NewScheduler(SchedulerConfig{})
	defer sched.Close()
	jobs := sys.NewHarvestJobs(targets, aspect, dm, NewL2QBAL(), nQueries, nil)
	if len(jobs) != len(targets) {
		t.Fatalf("built %d jobs for %d targets", len(jobs), len(targets))
	}
	b, err := sched.Submit(context.Background(), jobs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range b.Await(context.Background()) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if !reflect.DeepEqual(r.Fired, want[i].Fired) {
			t.Errorf("job %d fired %v, HarvestPipelined fired %v", i, r.Fired, want[i].Fired)
		}
	}

	// Adaptive batch on the same scheduler: bounded by the pooled budget.
	jobs2 := sys.NewHarvestJobs(targets, aspect, dm, NewL2QBAL(), nQueries, nil)
	b2, err := sched.Submit(context.Background(), jobs2, BatchOptions{
		Budget: BudgetPolicy{Mode: BudgetAdaptive},
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range b2.Await(context.Background()) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		total += len(r.Fired)
	}
	if total > nQueries*len(targets) {
		t.Errorf("adaptive batch fired %d > pooled budget %d", total, nQueries*len(targets))
	}

	if st := sched.Stats(); st.FinishedJobs != int64(2*len(targets)) {
		t.Errorf("FinishedJobs = %d, want %d", st.FinishedJobs, 2*len(targets))
	}
}

// TestCheckpointPublicRoundTrip: the Harvester's promoted Snapshot/Resume
// round trip through the public surface.
func TestCheckpointPublicRoundTrip(t *testing.T) {
	sys := testSystem(t, Cars)
	aspect := sys.Aspects()[0]
	e := sys.Corpus().Entities[sys.Corpus().NumEntities()-1]

	ref := sys.NewHarvester(e, aspect, nil)
	want := ref.Run(NewL2QBAL(), 3)

	h := sys.NewHarvester(e, aspect, nil)
	h.Run(NewL2QBAL(), 1)
	var buf bytes.Buffer
	if err := h.Snapshot().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed := sys.NewHarvester(e, aspect, nil)
	if err := resumed.Resume(cp); err != nil {
		t.Fatal(err)
	}
	got := append(append([]Query(nil), cp.Fired...), resumed.Run(NewL2QBAL(), 2)...)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed fired %v, uninterrupted %v", got, want)
	}
}
