// Benchmarks for the extension systems: the crawler comparison experiment,
// the push solver, the persistent store, the HTML boundary, the CRF
// classifier family, the HTTP search API, and the interleaved pipeline.
// These complement bench_test.go's per-figure benchmarks.
package l2q_test

import (
	"bytes"
	"context"
	"testing"

	"l2q/internal/classify"
	"l2q/internal/core"
	"l2q/internal/crf"
	"l2q/internal/eval"
	"l2q/internal/graph"
	"l2q/internal/html"
	"l2q/internal/pipeline"
	"l2q/internal/store"
	"l2q/internal/synth"
	"l2q/internal/webapi"
)

// BenchmarkExtCrawlerVsQueries regenerates the extension experiment of
// cmd/l2qexp -fig crawl: query-driven harvesting vs the link-following
// focused crawler at an equal download budget.
func BenchmarkExtCrawlerVsQueries(b *testing.B) {
	env := researcherEnv(b)
	b.ResetTimer()
	var last eval.CrawlResult
	for i := 0; i < b.N; i++ {
		res, err := env.CompareCrawler()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.L2QF, "normF-L2QBAL")
	b.ReportMetric(last.CrawlerF, "normF-crawler")
}

// benchGraph builds the same entity-graph shape as BenchmarkGraphSolve.
func benchGraph() (*graph.Graph, []float64) {
	g := graph.New()
	var pages, queries, tmpls []graph.NodeID
	for i := 0; i < 30; i++ {
		pages = append(pages, g.AddNode(graph.KindPage))
	}
	for i := 0; i < 2000; i++ {
		queries = append(queries, g.AddNode(graph.KindQuery))
	}
	for i := 0; i < 400; i++ {
		tmpls = append(tmpls, g.AddNode(graph.KindTemplate))
	}
	for qi, q := range queries {
		g.AddEdgePQ(pages[qi%len(pages)], q, 1)
		if qi%3 == 0 {
			g.AddEdgePQ(pages[(qi+7)%len(pages)], q, 1)
		}
		g.AddEdgeQT(q, tmpls[qi%len(tmpls)], 1)
	}
	reg := make([]float64, g.NumNodes())
	for i := 0; i < 10; i++ {
		reg[pages[i]] = 0.1
	}
	return g, reg
}

// BenchmarkGraphPushSolve measures the residual-push solver on the same
// graph shape as BenchmarkGraphSolve/GaussSeidel (the refs [25][26]
// efficiency alternative; compare ns/op across the three).
func BenchmarkGraphPushSolve(b *testing.B) {
	g, reg := benchGraph()
	op := graph.BuildOperator(g, graph.Recall)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.PushSolve(graph.PushProblem{Op: op, Reg: reg, Eps: 1e-10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphBuildOperator isolates the CSR/CSC construction cost that
// PushSolve amortizes across modes.
func BenchmarkGraphBuildOperator(b *testing.B) {
	g, _ := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.BuildOperator(g, graph.Recall)
	}
}

// BenchmarkStoreSave measures serialization throughput of the binary
// corpus+index store.
func BenchmarkStoreSave(b *testing.B) {
	env := researcherEnv(b)
	var buf bytes.Buffer
	if err := store.Save(&buf, env.G.Corpus, env.Engine.Index()); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := store.Save(&buf, env.G.Corpus, env.Engine.Index()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreLoad measures deserialization + index restore throughput.
func BenchmarkStoreLoad(b *testing.B) {
	env := researcherEnv(b)
	var buf bytes.Buffer
	if err := store.Save(&buf, env.G.Corpus, env.Engine.Index()); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Load(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHTMLRenderPage measures page → HTML rendering.
func BenchmarkHTMLRenderPage(b *testing.B) {
	env := researcherEnv(b)
	p := env.G.Corpus.Pages[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		html.RenderPage(p)
	}
}

// BenchmarkHTMLParsePage measures HTML → page segmentation + re-tokenization
// (the per-download cost of the remote harvest path).
func BenchmarkHTMLParsePage(b *testing.B) {
	env := researcherEnv(b)
	doc := html.RenderPage(env.G.Corpus.Pages[0])
	tok := env.G.Tokenizer
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		html.ParsePage(doc, 0, tok)
	}
}

// BenchmarkCRFvsNBAccuracy trains both classifier families for one aspect
// on half the corpus and reports held-out paragraph accuracy side by side
// (the paper's Fig. 9 uses CRFs; Naive Bayes is the fast default).
func BenchmarkCRFvsNBAccuracy(b *testing.B) {
	env := researcherEnv(b)
	pages := env.G.Corpus.Pages
	half := len(pages) / 2
	train, test := pages[:half], pages[half:]
	var accNB, accCRF float64
	for i := 0; i < b.N; i++ {
		nb := classify.Train(synth.AspResearch, train)
		cr := classify.TrainCRF(synth.AspResearch, train, crf.TrainConfig{})
		if nb == nil || cr == nil {
			b.Fatal("training failed")
		}
		accNB = nb.Accuracy(test)
		accCRF = cr.Accuracy(test)
	}
	b.ReportMetric(accNB, "acc-NB")
	b.ReportMetric(accCRF, "acc-CRF")
}

// BenchmarkRemoteSearch measures one search + page downloads over the HTTP
// boundary (compare with BenchmarkSearchQuery for the in-process cost).
func BenchmarkRemoteSearch(b *testing.B) {
	env := researcherEnv(b)
	srv := webapi.NewServer(env.G.Corpus, env.Engine)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	client, err := webapi.Dial(addr, env.G.Tokenizer)
	if err != nil {
		b.Fatal(err)
	}
	seed := env.G.Corpus.Entities[0].SeedTokens()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := client.SearchWithSeed(seed, nil); len(res) == 0 {
			b.Fatal("no results")
		}
	}
}

// BenchmarkAblationBeta sweeps the precision weight β of the weighted
// strategy (the paper's §VI-C future work on principled P/R combination;
// β = 0.5 is L2QBAL's geometric mean).
func BenchmarkAblationBeta(b *testing.B) {
	env := researcherEnv(b)
	betas := []float64{0.25, 0.5, 0.75}
	out := make([]float64, len(betas))
	for i := 0; i < b.N; i++ {
		for bi, beta := range betas {
			dm, err := env.DomainModel(synth.AspResearch, -1)
			if err != nil {
				b.Fatal(err)
			}
			sel := core.NewL2QWeighted(beta)
			relSum, totSum := 0, 0
			for _, id := range env.TestIDs {
				e := env.G.Corpus.Entity(id)
				s := env.NewSession(e, synth.AspResearch, dm, nil, uint64(id)+1)
				s.Run(sel, 3)
				for _, p := range s.Pages() {
					totSum++
					if env.Cls.Relevant(synth.AspResearch, p) && p.Entity == e.ID {
						relSum++
					}
				}
			}
			out[bi] = float64(relSum) / float64(totSum)
		}
	}
	b.ReportMetric(out[0], "prec-beta0.25")
	b.ReportMetric(out[1], "prec-beta0.50")
	b.ReportMetric(out[2], "prec-beta0.75")
}

// BenchmarkPipelineHarvest measures the interleaved scheduler end to end
// on 8 entities × 2 queries (no simulated latency: pure scheduling +
// selection cost; the latency win is demonstrated in the pipeline tests).
func BenchmarkPipelineHarvest(b *testing.B) {
	env := researcherEnv(b)
	dm, err := env.DomainModel(synth.AspResearch, -1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jobs := make([]pipeline.Job, 0, len(env.TestIDs))
		for _, id := range env.TestIDs {
			e := env.G.Corpus.Entity(id)
			s := env.NewSession(e, synth.AspResearch, dm, nil, uint64(id)+1)
			jobs = append(jobs, pipeline.Job{Session: s, Selector: core.NewL2QBAL(), NQueries: 2})
		}
		results := pipeline.Run(context.Background(), pipeline.Config{}, jobs)
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}
