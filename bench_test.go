// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VI) plus micro-benchmarks for the substrates and ablations of the
// design choices called out in DESIGN.md.
//
// Quality benchmarks report normalized metrics via b.ReportMetric (units
// like normP/op); cmd/l2qexp prints the same numbers as tables at full
// scale. Run with:
//
//	go test -bench=. -benchmem
package l2q_test

import (
	"sync"
	"testing"

	"l2q/internal/classify"
	"l2q/internal/core"
	"l2q/internal/eval"
	"l2q/internal/graph"
	"l2q/internal/search"
	"l2q/internal/synth"
	"l2q/internal/template"
	"l2q/internal/textproc"
	"l2q/internal/types"
)

// benchEnv lazily builds one small shared environment per domain so the
// figure benchmarks measure experiment time, not corpus generation.
var (
	envOnce sync.Once
	envR    *eval.Env
	envErr  error
)

func researcherEnv(b *testing.B) *eval.Env {
	b.Helper()
	envOnce.Do(func() {
		cfg := eval.TestConfig(synth.DomainResearchers)
		cfg.NumEntities = 60
		cfg.PagesPerEntity = 20
		cfg.DomainSample = 16
		cfg.NumTest = 8
		cfg.NumValidation = 4
		cfg.Seed = 1
		envR, envErr = eval.NewEnv(cfg)
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return envR
}

// ---------------------------------------------------------------------------
// One benchmark per table / figure.
// ---------------------------------------------------------------------------

// BenchmarkFig09Classifiers regenerates the classifier table: per-aspect
// training and accuracy measurement.
func BenchmarkFig09Classifiers(b *testing.B) {
	env := researcherEnv(b)
	b.ResetTimer()
	minAcc := 1.0
	for i := 0; i < b.N; i++ {
		rows := env.Fig9()
		for _, r := range rows {
			if r.Accuracy < minAcc {
				minAcc = r.Accuracy
			}
		}
	}
	b.ReportMetric(minAcc, "minAccuracy")
}

// BenchmarkFig10Ablation regenerates the domain/context ablation and
// reports the normalized precision of the full approach.
func BenchmarkFig10Ablation(b *testing.B) {
	env := researcherEnv(b)
	b.ResetTimer()
	var last eval.Fig10Result
	for i := 0; i < b.N; i++ {
		res, err := env.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Precision[eval.MethodL2QP], "normP-L2QP")
	b.ReportMetric(last.Recall[eval.MethodL2QR], "normR-L2QR")
	b.ReportMetric(last.Precision[eval.MethodRND], "normP-RND")
}

// BenchmarkFig11DomainSize regenerates the domain-size sweep.
func BenchmarkFig11DomainSize(b *testing.B) {
	env := researcherEnv(b)
	b.ResetTimer()
	var last eval.Fig11Result
	for i := 0; i < b.N; i++ {
		res, err := env.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.PrecL2QP[0], "normP-0pct")
	b.ReportMetric(last.PrecL2QP[len(last.PrecL2QP)-1], "normP-100pct")
}

// BenchmarkFig12Baselines regenerates the precision/recall baseline
// comparison over 2–5 queries.
func BenchmarkFig12Baselines(b *testing.B) {
	env := researcherEnv(b)
	b.ResetTimer()
	var last eval.CompareResult
	for i := 0; i < b.N; i++ {
		res, err := env.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, s := range last.Series {
		if s.Method == eval.MethodL2QR {
			b.ReportMetric(s.ByQueries[2].R, "normR-L2QR@3")
		}
		if s.Method == eval.MethodMQ {
			b.ReportMetric(s.ByQueries[2].R, "normR-MQ@3")
		}
	}
}

// BenchmarkFig13FScore regenerates the F-score comparison.
func BenchmarkFig13FScore(b *testing.B) {
	env := researcherEnv(b)
	b.ResetTimer()
	var last eval.CompareResult
	for i := 0; i < b.N; i++ {
		res, err := env.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, s := range last.Series {
		if s.Method == eval.MethodL2QBAL {
			b.ReportMetric(s.ByQueries[1].F, "normF-L2QBAL@2")
		}
	}
}

// BenchmarkFig14SelectionTime measures the per-query selection cost of the
// full strategies (the paper's Fig. 14 "Selection" column).
func BenchmarkFig14SelectionTime(b *testing.B) {
	env := researcherEnv(b)
	b.ResetTimer()
	var last eval.Fig14Result
	for i := 0; i < b.N; i++ {
		res, err := env.Fig14()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.SelectionSec[eval.MethodL2QBAL], "selSec-L2QBAL")
	b.ReportMetric(last.FetchSecPerQuery, "fetchSec-simulated")
}

// ---------------------------------------------------------------------------
// Ablations of design choices (DESIGN.md §5–6).
// ---------------------------------------------------------------------------

// benchQuality runs L2QBAL on the benchmark env with a tweaked core config
// and returns the mean normalized F at 3 queries.
func benchQuality(b *testing.B, mutate func(*core.Config)) float64 {
	cfg := eval.TestConfig(synth.DomainResearchers)
	cfg.NumEntities = 60
	cfg.PagesPerEntity = 20
	cfg.DomainSample = 16
	cfg.NumTest = 8
	cfg.NumValidation = 4
	cfg.Seed = 1
	mutate(&cfg.Core)
	env, err := eval.NewEnv(cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := env.RunMethodAllAspects(eval.MethodL2QBAL, env.TestIDs, 3, -1)
	if err != nil {
		b.Fatal(err)
	}
	return res.PerIteration[2].F
}

// BenchmarkAblationEdgeWeights compares binary containment edges against
// retrieval-likelihood edge weights (§III "Wpq can also encode strength").
func BenchmarkAblationEdgeWeights(b *testing.B) {
	var plain, weighted float64
	for i := 0; i < b.N; i++ {
		plain = benchQuality(b, func(c *core.Config) {})
		weighted = benchQuality(b, func(c *core.Config) { c.WeightByLikelihood = true })
	}
	b.ReportMetric(plain, "normF-containment")
	b.ReportMetric(weighted, "normF-likelihood")
}

// BenchmarkAblationWalkRecallReg compares the counting-based template
// recall regularization (default) against the paper-literal forward-walk
// masses (DESIGN.md §5 item 6).
func BenchmarkAblationWalkRecallReg(b *testing.B) {
	var counting, walk float64
	for i := 0; i < b.N; i++ {
		counting = benchQuality(b, func(c *core.Config) {})
		walk = benchQuality(b, func(c *core.Config) { c.UseWalkRecallReg = true })
	}
	b.ReportMetric(counting, "normF-counting")
	b.ReportMetric(walk, "normF-walk")
}

// BenchmarkAblationLambda sweeps the domain-adaptation parameter λ
// (paper §VI-A fixes λ=10).
func BenchmarkAblationLambda(b *testing.B) {
	lambdas := []float64{1, 10, 100}
	out := make([]float64, len(lambdas))
	for i := 0; i < b.N; i++ {
		for li, l := range lambdas {
			out[li] = benchQuality(b, func(c *core.Config) { c.Lambda = l })
		}
	}
	b.ReportMetric(out[0], "normF-lambda1")
	b.ReportMetric(out[1], "normF-lambda10")
	b.ReportMetric(out[2], "normF-lambda100")
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks.
// ---------------------------------------------------------------------------

func BenchmarkIndexBuild(b *testing.B) {
	env := researcherEnv(b)
	pages := env.G.Corpus.Pages
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		search.BuildIndex(pages)
	}
}

func BenchmarkSearchQuery(b *testing.B) {
	env := researcherEnv(b)
	q := env.Cfg.Core.QueryTokens(core.Query(env.G.Corpus.Entities[0].SeedQuery))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Engine.Search(q)
	}
}

func BenchmarkGraphSolve(b *testing.B) {
	// A mid-sized tripartite graph shaped like an entity graph.
	g := graph.New()
	var pages, queries, tmpls []graph.NodeID
	for i := 0; i < 30; i++ {
		pages = append(pages, g.AddNode(graph.KindPage))
	}
	for i := 0; i < 2000; i++ {
		queries = append(queries, g.AddNode(graph.KindQuery))
	}
	for i := 0; i < 400; i++ {
		tmpls = append(tmpls, g.AddNode(graph.KindTemplate))
	}
	for qi, q := range queries {
		g.AddEdgePQ(pages[qi%len(pages)], q, 1)
		if qi%3 == 0 {
			g.AddEdgePQ(pages[(qi+7)%len(pages)], q, 1)
		}
		g.AddEdgeQT(q, tmpls[qi%len(tmpls)], 1)
	}
	reg := make([]float64, g.NumNodes())
	for i := 0; i < 10; i++ {
		reg[pages[i]] = 0.1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.Solve(graph.Problem{G: g, Mode: graph.Recall, Reg: reg}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphSolveGaussSeidel measures the in-place scheme on the same
// graph shape as BenchmarkGraphSolve (compare iterations via ns/op).
func BenchmarkGraphSolveGaussSeidel(b *testing.B) {
	g := graph.New()
	var pages, queries, tmpls []graph.NodeID
	for i := 0; i < 30; i++ {
		pages = append(pages, g.AddNode(graph.KindPage))
	}
	for i := 0; i < 2000; i++ {
		queries = append(queries, g.AddNode(graph.KindQuery))
	}
	for i := 0; i < 400; i++ {
		tmpls = append(tmpls, g.AddNode(graph.KindTemplate))
	}
	for qi, q := range queries {
		g.AddEdgePQ(pages[qi%len(pages)], q, 1)
		if qi%3 == 0 {
			g.AddEdgePQ(pages[(qi+7)%len(pages)], q, 1)
		}
		g.AddEdgeQT(q, tmpls[qi%len(tmpls)], 1)
	}
	reg := make([]float64, g.NumNodes())
	for i := 0; i < 10; i++ {
		reg[pages[i]] = 0.1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.Solve(graph.Problem{G: g, Mode: graph.Recall, Reg: reg, Scheme: graph.GaussSeidel}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchQueryBM25 measures BM25 ranking against the same corpus
// as BenchmarkSearchQuery.
func BenchmarkSearchQueryBM25(b *testing.B) {
	env := researcherEnv(b)
	engine := env.Engine.WithBM25(search.DefaultBM25K1, search.DefaultBM25B)
	q := env.Cfg.Core.QueryTokens(core.Query(env.G.Corpus.Entities[0].SeedQuery))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Search(q)
	}
}

func BenchmarkTemplateEnumerate(b *testing.B) {
	d := types.NewDictionary()
	d.AddAll("topic", "hpc", "data mining")
	d.AddAll("venue", "ijhpca", "tkde")
	q := []textproc.Token{"data mining", "papers", "tkde"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		template.Enumerate(q, d)
	}
}

// BenchmarkTokenize tracks the page-ingest tokenization cost through the
// public surface: "reference" is the retained pre-LUT implementation,
// "tokenize" the convenience path (fresh slice per call), "append" the
// buffer-reuse path harvesting uses per page (steady-state allocation
// floor; the fine-grained alloc gate lives in internal/textproc).
func BenchmarkTokenize(b *testing.B) {
	lex := textproc.NewLexicon([]string{"data mining", "parallel computing"})
	tok := &textproc.Tokenizer{Lexicon: lex}
	text := "He published many data mining papers and studies parallel computing systems at the university."
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lex.MergePhrases(textproc.SplitWordsReference(text))
		}
	})
	b.Run("tokenize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tok.Tokenize(text)
		}
	})
	b.Run("append", func(b *testing.B) {
		var dst []textproc.Token
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = tok.AppendTokens(dst[:0], text)
		}
	})
}

func BenchmarkClassifierTrain(b *testing.B) {
	env := researcherEnv(b)
	pages := env.G.Corpus.Pages
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		classify.Train(synth.AspResearch, pages)
	}
}

func BenchmarkDomainPhase(b *testing.B) {
	env := researcherEnv(b)
	y := env.Cls.YFunc(synth.AspResearch)
	ids := env.DomainIDs[:env.Cfg.DomainSample]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.LearnDomain(env.Cfg.Core, synth.AspResearch, env.G.Corpus, ids, y, env.Rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEntityPhaseSelect(b *testing.B) {
	env := researcherEnv(b)
	dm, err := env.DomainModel(synth.AspResearch, -1)
	if err != nil {
		b.Fatal(err)
	}
	entity := env.G.Corpus.Entity(env.TestIDs[0])
	sel := core.NewL2QBAL()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := env.NewSession(entity, synth.AspResearch, dm, nil, uint64(i))
		s.Bootstrap()
		if _, ok := s.Step(sel); !ok {
			b.Fatal("no candidate")
		}
	}
}
