package core

import (
	"reflect"
	"testing"

	"l2q/internal/classify"
	"l2q/internal/corpus"
	"l2q/internal/synth"
)

// TestGradedYBinaryEquivalence checks the paper's real-valued relevance
// generalization degenerates exactly to the binary model when the score is
// the indicator of Y — both in the domain phase and the entity phase.
func TestGradedYBinaryEquivalence(t *testing.T) {
	f := newFixture(t)
	cfg := DefaultConfig()
	cfg.Tokenizer = f.g.Tokenizer
	indicator := func(p *corpus.Page) float64 {
		if f.y(p) {
			return 1
		}
		return 0
	}

	dmBinary, err := LearnDomain(cfg, synth.AspResearch, f.g.Corpus, f.domain, f.y, f.rec)
	if err != nil {
		t.Fatal(err)
	}
	dmScored, err := LearnDomainScored(cfg, synth.AspResearch, f.g.Corpus, f.domain, f.y, indicator, f.rec)
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range dmBinary.TemplateP {
		if got := dmScored.TemplateP[key]; got != want {
			t.Fatalf("template %q precision %v vs %v", key, got, want)
		}
	}
	for key, want := range dmBinary.TemplateRCount {
		if got := dmScored.TemplateRCount[key]; got != want {
			t.Fatalf("template %q recall-count %v vs %v", key, got, want)
		}
	}

	runWith := func(score func(*corpus.Page) float64) []Query {
		s := NewSession(cfg, f.engine, f.target, synth.AspResearch, f.y, dmBinary, f.rec, 42)
		s.YScore = score
		return s.Run(NewL2QBAL(), 3)
	}
	plain := runWith(nil)
	scored := runWith(indicator)
	if len(plain) == 0 || !reflect.DeepEqual(plain, scored) {
		t.Fatalf("indicator YScore selected %v, binary %v", scored, plain)
	}
}

// TestGradedYFromClassifierScores runs a harvest with the classifier's
// real-valued page scores as Y — the configuration the paper sketches but
// does not evaluate. The harvest must complete and stay focused (a
// majority of gathered pages relevant under the binary Y).
func TestGradedYFromClassifierScores(t *testing.T) {
	f := newFixture(t)
	cfg := DefaultConfig()
	cfg.Tokenizer = f.g.Tokenizer
	cls := classify.Train(synth.AspResearch, f.g.Corpus.Pages)
	if cls == nil {
		t.Fatal("classifier training failed")
	}

	dm, err := LearnDomainScored(cfg, synth.AspResearch, f.g.Corpus, f.domain,
		f.y, cls.PageScore, f.rec)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(cfg, f.engine, f.target, synth.AspResearch, f.y, dm, f.rec, 42)
	s.YScore = cls.PageScore
	fired := s.Run(NewL2QBAL(), 3)
	if len(fired) == 0 {
		t.Fatal("graded harvest selected nothing")
	}
	relOf := func(pages []*corpus.Page) int {
		n := 0
		for _, p := range pages {
			if f.y(p) {
				n++
			}
		}
		return n
	}
	graded := relOf(s.Pages())

	// Reference: the binary model on the same target. Graded scores must
	// not collapse the harvest — within one relevant page of binary.
	ref := NewSession(cfg, f.engine, f.target, synth.AspResearch, f.y, f.dm, f.rec, 42)
	ref.Run(NewL2QBAL(), 3)
	binary := relOf(ref.Pages())
	if graded < binary-1 {
		t.Errorf("graded harvest collapsed: %d relevant vs binary's %d", graded, binary)
	}
}

// TestScoredRegularizationClamping checks out-of-range scores are clamped
// into [0,1] rather than corrupting the fixpoint.
func TestScoredRegularizationClamping(t *testing.T) {
	f := newFixture(t)
	cfg := DefaultConfig()
	cfg.Tokenizer = f.g.Tokenizer
	wild := func(p *corpus.Page) float64 {
		if f.y(p) {
			return 7 // clamps to 1
		}
		return -3 // clamps to 0
	}
	dm, err := LearnDomainScored(cfg, synth.AspResearch, f.g.Corpus, f.domain, f.y, wild, f.rec)
	if err != nil {
		t.Fatal(err)
	}
	for key, v := range dm.TemplateP {
		if v < 0 || v > 1 {
			t.Fatalf("template %q precision %v outside [0,1]", key, v)
		}
	}
}
