// Package core implements the paper's contribution: Learning to Query
// (L2Q). Given a target entity (identified by a seed query) and a target
// aspect (materialized by a relevance function Y over pages), L2Q
// iteratively selects the next query to fire at a search engine so that the
// harvested pages focus on that entity aspect (Fig. 1).
//
// The package provides:
//
//   - The domain phase (§IV-B): one-off learning of template utilities from
//     peer entities in the same domain (LearnDomain → DomainModel).
//   - The entity phase (§IV-C): per-iteration construction of the entity
//     reinforcement graph and utility inference for candidate queries.
//   - Context awareness (§V): collective precision/recall of the candidate
//     together with the past queries Φ, with the redundancy term ∆.
//   - The selection strategies evaluated in §VI: RND, P, R, P+q, R+q,
//     P+t, R+t, L2QP, L2QR and L2QBAL.
package core

import (
	"context"
	"runtime"

	"l2q/internal/search"
	"l2q/internal/textproc"
)

// ContextRetriever is the error-aware, cancellable retriever surface.
// Remote retrievers (internal/webapi's Client) implement it so sessions
// and the pipeline scheduler can cancel in-flight fetches and distinguish
// a transport failure from a genuinely unproductive query; Session's
// FetchQueryCtx uses it when available and adapts plain Retrievers (which
// cannot fail in-process) otherwise.
type ContextRetriever interface {
	Retriever
	// SearchWithSeedErr is SearchWithSeed with context cancellation and
	// typed error propagation: it returns either the complete ranked
	// result list or an error, never a silently shortened list.
	SearchWithSeedErr(ctx context.Context, seed, query []textproc.Token) ([]search.Result, error)
}

// AppendRetriever is the optional allocation-free retrieval surface: a
// Retriever that appends results into a caller-owned buffer instead of
// allocating a fresh slice per query (search.Engine implements it).
// Session.FetchQueryCtx uses it when available, fetching into
// session-owned scratch so steady-state harvesting stops allocating a
// result slice per step.
type AppendRetriever interface {
	SearchWithSeedAppend(dst []search.Result, seed, query []textproc.Token) []search.Result
}

// Query is a candidate query in canonical form: tokens joined by single
// spaces (textproc.JoinQuery). Because tokens may themselves be multi-word
// phrases ("data mining"), converting a Query back to tokens must go
// through Config.QueryTokens, which re-applies the phrase lexicon; naive
// splitting would shatter phrase tokens.
type Query string

// Config carries every tunable of the L2Q model. DefaultConfig returns the
// paper's settings (§VI-A "Settings").
type Config struct {
	// Alpha is the regularization / restart parameter α of Eq. 13
	// (paper: 0.15).
	Alpha float64
	// Lambda is the domain-adaptation parameter λ of Eq. 21–22
	// (paper: 10).
	Lambda float64
	// R0 is the seed-query recall parameter r0 ∈ (0,1) (§V-A), chosen by
	// cross-validation in the paper; 0.3 is our validated default.
	R0 float64
	// R0Star is the seed query's recall w.r.t. Y* (all pages), the base
	// case of the collective precision denominator (§V-B). The relevant
	// subset is much smaller than the page universe, so the seed covers
	// a smaller fraction of Y* than of Y; anchoring both with the same
	// r0 makes R*_E(Φ) saturate and collapses collective precision into
	// collective recall after a few iterations.
	R0Star float64
	// MaxQueryLen is the maximum query length L (paper: 3).
	MaxQueryLen int
	// MinQueryPageDF prunes domain-phase queries occurring in fewer
	// pages (noise n-grams); 2 keeps anything that repeats at all.
	MinQueryPageDF int
	// MinDomainEntityFrac keeps a domain query as an entity-phase
	// candidate only if it occurs with at least this fraction of domain
	// entities (paper: ≥50 of ~500, i.e. 0.1).
	MinDomainEntityFrac float64
	// MaxDomainCandidates caps the domain-derived candidate pool,
	// keeping the most entity-frequent queries.
	MaxDomainCandidates int
	// WeightByLikelihood switches page–query edge weights from binary
	// containment to the retrieval model's per-token likelihood
	// (the paper's "more generally, Wpq can also encode the connection
	// strength", §III). Off by default; an ablation benchmark covers it.
	WeightByLikelihood bool
	// UseGaussSeidel switches the fixpoint solver to in-place
	// Gauss–Seidel sweeps, which converge in fewer iterations than the
	// paper's standard (Jacobi) updating; the solution is identical.
	UseGaussSeidel bool
	// UsePushSolver switches the fixpoint solver to residual forward
	// push (the refs [25][26] efficiency alternative): work scales with
	// the residual mass moved instead of |V|·iterations, which pays off
	// on entity graphs whose regularization is concentrated. Takes
	// precedence over UseGaussSeidel. The per-node error is bounded by
	// SolverTol.
	UsePushSolver bool
	// PriorStrength is the pseudo-count weight m of the domain template
	// prior inside the probability-scale collective-recall estimate
	// R_E(q) ≈ (n·count + m·prior)/(n + m); see §V notes in DESIGN.md.
	PriorStrength float64
	// UseWalkRecallReg switches the entity phase's template recall
	// regularization (Eq. 22) from the probability-scale counting
	// estimate back to the raw forward-walk masses R_D(t). The walk
	// masses are diluted by the domain graph's size and barely move the
	// entity fixpoint at λ=10, so counting is the default; the flag
	// exists for the ablation benchmark.
	UseWalkRecallReg bool
	// SolverTol and SolverMaxIter control the fixpoint solver.
	SolverTol     float64
	SolverMaxIter int
	// IncrementalGraph keeps one persistent entity reinforcement graph
	// per session, updated with per-step deltas — new pages and new
	// candidates are connected against the existing vertices and fired
	// queries are detached — instead of rebuilding the graph from
	// scratch on every Infer. Session.InferReference retains the
	// rebuild path; TestIncrementalMatchesReference holds the two to
	// identical rankings. Per-step selection cost drops from
	// O(pages × candidates) to O(Δ).
	IncrementalGraph bool
	// WarmStart seeds each step's fixpoint solves with the previous
	// step's utilities (graph.Problem.X0 / graph.PushProblem.X0). The
	// damped fixpoint is a contraction with a unique solution, so warm
	// starting changes iteration counts, not results (within SolverTol).
	// Only effective together with IncrementalGraph.
	WarmStart bool
	// IncrementalPool keeps one persistent candidate pool Q_E per
	// session, updated with per-step deltas — only newly ingested pages
	// are enumerated (first-appearance order preserved) and fired
	// queries are removed incrementally — instead of re-enumerating the
	// n-grams of every gathered page on every step.
	// Session.CandidatesReference retains the rebuild path; differential
	// tests hold the two to identical pools. Per-step candidate
	// generation drops from O(all pages) to O(new pages).
	IncrementalPool bool
	// InferWorkers bounds the worker pool used inside one inference
	// step: delta containment checks when connecting candidates, and
	// the per-candidate collective utilities of §V. 0 picks GOMAXPROCS;
	// 1 is serial (what the pipeline scheduler forces under parallel
	// selection, mirroring the search engine's oversubscription rule).
	// Value-neutral: every worker count computes identical utilities.
	InferWorkers int
	// LearnWorkers bounds the worker pool inside the domain phase
	// (LearnDomainScored): the DF/entity-DF counting pass is sharded
	// over entity groups with a deterministic merge. 0 picks GOMAXPROCS;
	// 1 is serial. Value-neutral: every worker count learns an
	// identical DomainModel (LearnDomainReference is the retained
	// serial rebuild path the differential tests compare against).
	LearnWorkers int
	// SearchShards, SearchScoreWorkers and SearchCacheSize tune the
	// retrieval engine (see search.Options): index shard count, per-query
	// scoring parallelism, and the LRU query-result cache capacity. All
	// three are ranking-neutral; zero values pick the engine defaults
	// (shards/workers = GOMAXPROCS, cache on), SearchCacheSize < 0
	// disables caching.
	SearchShards       int
	SearchScoreWorkers int
	SearchCacheSize    int
	// MemtableDocs, CompactFanIn and IngestWorkers tune the live
	// generational engine (see search.LiveOptions): the memtable seal
	// threshold in documents, the background-compaction fan-in (negative
	// disables background compaction), and the ingest pre-tokenization
	// worker bound. All three are ranking-neutral — the live engine's
	// differential-parity contract holds for every setting; zero values
	// pick the engine defaults.
	MemtableDocs  int
	CompactFanIn  int
	IngestWorkers int
	// Stopwords filters candidate n-grams; nil disables filtering.
	Stopwords *textproc.Stopwords
	// Tokenizer re-tokenizes query strings (and the seed query) with the
	// domain's phrase lexicon so multi-word phrase tokens survive the
	// round trip. Nil falls back to plain space splitting, which is only
	// correct when the corpus has no phrase tokens.
	Tokenizer *textproc.Tokenizer
}

// DefaultConfig returns the paper's parameter settings.
func DefaultConfig() Config {
	return Config{
		Alpha:               0.15,
		Lambda:              10,
		R0:                  0.3,
		R0Star:              0.1,
		MaxQueryLen:         3,
		MinQueryPageDF:      2,
		MinDomainEntityFrac: 0.1,
		MaxDomainCandidates: 300,
		PriorStrength:       3,
		SolverTol:           1e-9,
		SolverMaxIter:       200,
		IncrementalGraph:    true,
		IncrementalPool:     true,
		WarmStart:           true,
		Stopwords:           textproc.NewStopwords(),
	}
}

// inferWorkers resolves the InferWorkers knob to a concrete pool size.
func (c Config) inferWorkers() int {
	if c.InferWorkers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if c.InferWorkers < 1 {
		return 1
	}
	return c.InferWorkers
}

// learnWorkers resolves the LearnWorkers knob to a concrete pool size.
func (c Config) learnWorkers() int {
	if c.LearnWorkers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if c.LearnWorkers < 1 {
		return 1
	}
	return c.LearnWorkers
}

// SearchOptions collects the retrieval-engine knobs for search.BuildIndexOpts
// and search.NewEngineOpts.
func (c Config) SearchOptions() search.Options {
	return search.Options{
		Shards:       c.SearchShards,
		ScoreWorkers: c.SearchScoreWorkers,
		CacheSize:    c.SearchCacheSize,
	}
}

// LiveOptions collects the generational-lifecycle knobs for
// search.NewLiveEngine.
func (c Config) LiveOptions() search.LiveOptions {
	return search.LiveOptions{
		MemtableDocs:  c.MemtableDocs,
		CompactFanIn:  c.CompactFanIn,
		IngestWorkers: c.IngestWorkers,
	}
}

// QueryTokens converts a canonical query string to its token sequence,
// re-applying the phrase lexicon when a tokenizer is configured.
func (c Config) QueryTokens(q Query) []textproc.Token {
	if c.Tokenizer != nil {
		return c.Tokenizer.Tokenize(string(q))
	}
	return textproc.SplitQuery(string(q))
}

// ngramConfig builds the textproc enumeration config for this Config,
// excluding the given tokens (the seed query's tokens in the entity phase).
func (c Config) ngramConfig(exclude []textproc.Token) textproc.NGramConfig {
	var ex map[textproc.Token]struct{}
	if len(exclude) > 0 {
		ex = make(map[textproc.Token]struct{}, len(exclude))
		for _, t := range exclude {
			ex[t] = struct{}{}
		}
	}
	return textproc.NGramConfig{MaxLen: c.MaxQueryLen, Stopwords: c.Stopwords, Exclude: ex}
}
