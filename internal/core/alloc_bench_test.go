package core

import "testing"

// BenchmarkCandidateAllocs is the candidate-pool allocation trajectory
// the CI gate (scripts/alloc_gate.sh) pins. It measures CandidatesAppend
// on an incremental pool at step ≥5 with the last fire's delta already
// absorbed — the repeated-refresh steady state, where the pool only
// re-emits its two cached segments:
//
//	steady/append    append into a reused buffer. Pinned at 0 allocs/op.
//	steady           Candidates (fresh result slice per call).
//
// Renaming a benchmark breaks the gate — update the script in the same
// change.
func BenchmarkCandidateAllocs(b *testing.B) {
	env := benchEnvFor(b, benchDomains[0].domain, benchDomains[0].aspect)
	cfg := referenceBenchConfig(env.g)
	cfg.IncrementalPool = true
	s := env.session(cfg)
	s.Bootstrap()
	for _, q := range env.prefix {
		if len(s.Candidates(true)) == 0 {
			b.Fatal("pool ran dry during replay")
		}
		s.Fire(q)
	}
	if len(s.Candidates(true)) == 0 { // absorb the final fire's delta
		b.Fatal("empty pool")
	}
	b.Run("steady/append", func(b *testing.B) {
		var dst []Query
		dst = s.CandidatesAppend(dst, true)
		if len(dst) == 0 {
			b.Fatal("empty pool")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = s.CandidatesAppend(dst[:0], true)
		}
	})
	b.Run("steady", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(s.Candidates(true)) == 0 {
				b.Fatal("empty pool")
			}
		}
	})
}
