package core

import (
	"sync"
	"testing"

	"l2q/internal/classify"
	"l2q/internal/corpus"
	"l2q/internal/search"
	"l2q/internal/synth"
	"l2q/internal/types"
)

// benchEnv is one domain's benchmark substrate: a synthetic researchers-
// or cars-shaped corpus, engine, domain model, and a fixed 5-step query
// prefix (chosen once by the reference L2QBAL run) so every variant
// measures selection at the same session state — "per-step selection at
// step ≥ 5", the acceptance scenario of the incremental refactor.
type benchEnv struct {
	g      *synth.Generated
	engine *search.Engine
	rec    types.Recognizer
	aspect corpus.Aspect
	y      func(*corpus.Page) bool
	dm     *DomainModel
	target *corpus.Entity
	prefix []Query
}

var benchEnvs struct {
	sync.Mutex
	byDomain map[corpus.Domain]*benchEnv
}

func benchEnvFor(b *testing.B, domain corpus.Domain, aspect corpus.Aspect) *benchEnv {
	b.Helper()
	benchEnvs.Lock()
	defer benchEnvs.Unlock()
	if e, ok := benchEnvs.byDomain[domain]; ok {
		return e
	}
	cfg := synth.TestConfig(domain)
	cfg.NumEntities = 40
	cfg.PagesPerEntity = 24
	g, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	engine := search.NewEngine(search.BuildIndex(g.Corpus.Pages))
	rec := types.Chain{g.KB, types.NewRegexRecognizer()}
	y := func(p *corpus.Page) bool { return classify.GroundTruth(p, aspect) }
	var domainIDs []corpus.EntityID
	for i := 0; i < g.Corpus.NumEntities()/2; i++ {
		domainIDs = append(domainIDs, g.Corpus.Entities[i].ID)
	}
	ccfg := DefaultConfig()
	ccfg.Tokenizer = g.Tokenizer
	dm, err := LearnDomain(ccfg, aspect, g.Corpus, domainIDs, y, rec)
	if err != nil {
		b.Fatal(err)
	}
	env := &benchEnv{
		g: g, engine: engine, rec: rec, aspect: aspect, y: y, dm: dm,
		target: g.Corpus.Entities[g.Corpus.NumEntities()-1],
	}
	// The shared 5-query prefix, chosen by a reference run so every
	// variant below replays the identical session state.
	s := env.session(referenceBenchConfig(g))
	env.prefix = s.Run(NewL2QBAL(), 5)
	if len(env.prefix) < 5 {
		b.Fatalf("prefix run fired only %d queries", len(env.prefix))
	}
	if benchEnvs.byDomain == nil {
		benchEnvs.byDomain = make(map[corpus.Domain]*benchEnv)
	}
	benchEnvs.byDomain[domain] = env
	return env
}

func referenceBenchConfig(g *synth.Generated) Config {
	cfg := DefaultConfig()
	cfg.Tokenizer = g.Tokenizer
	cfg.IncrementalGraph = false
	cfg.WarmStart = false
	cfg.IncrementalPool = false
	return cfg
}

func (e *benchEnv) session(cfg Config) *Session {
	return NewSession(cfg, e.engine, e.target, e.aspect, e.y, e.dm, e.rec, 42)
}

// replay brings a fresh session to the post-prefix state. When warm is
// true it also runs an Infer per step, populating the persistent session
// graph exactly as live harvesting would (for reference configs the extra
// Infers are a no-op for state).
func (e *benchEnv) replay(b *testing.B, s *Session, opts InferOptions, warm bool) {
	b.Helper()
	s.Bootstrap()
	for _, q := range e.prefix {
		if warm {
			if _, err := s.Infer(opts); err != nil {
				b.Fatal(err)
			}
		}
		s.Fire(q)
	}
}

var benchDomains = []struct {
	name   string
	domain corpus.Domain
	aspect corpus.Aspect
}{
	{"researchers", synth.DomainResearchers, synth.AspResearch},
	{"cars", synth.DomainCars, synth.AspSafety},
}

// BenchmarkSessionStep measures one entity-phase inference at step ≥5 of
// a harvesting session — the per-step selection cost §VI-C identifies as
// the CPU-bound half of harvesting. Each iteration replays a fresh
// session through the 5-query prefix (untimed) and times exactly one
// inference with the last fire's page delta still pending — the exact
// state a live step sees. "reference" rebuilds the graph and cold-solves (the
// pre-refactor behavior); "incremental" reuses the persistent session
// graph; "incremental-warm" adds warm-started solvers. The acceptance
// bar is ≥2x on researchers.
func BenchmarkSessionStep(b *testing.B) {
	opts := InferOptions{UseTemplates: true, UseDomainCandidates: true, Collective: true}
	variants := []struct {
		name        string
		incremental bool
		warm        bool
	}{
		{"reference", false, false},
		{"incremental", true, false},
		{"incremental-warm", true, true},
	}
	for _, d := range benchDomains {
		env := benchEnvFor(b, d.domain, d.aspect)
		for _, v := range variants {
			b.Run(d.name+"/"+v.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					cfg := referenceBenchConfig(env.g)
					cfg.IncrementalGraph = v.incremental
					cfg.IncrementalPool = v.incremental
					cfg.WarmStart = v.warm
					s := env.session(cfg)
					env.replay(b, s, opts, v.incremental)
					b.StartTimer()
					if _, err := s.Infer(opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkInfer isolates one inference with and without the collective
// (§V) utilities, reference vs incremental, on both domains. The steady
// state (graph fully ingested, warm solver) is the selector-evaluation
// hot path of a long session.
func BenchmarkInfer(b *testing.B) {
	for _, d := range benchDomains {
		env := benchEnvFor(b, d.domain, d.aspect)
		for _, coll := range []struct {
			name string
			opts InferOptions
		}{
			{"collective", InferOptions{UseTemplates: true, UseDomainCandidates: true, Collective: true}},
			{"individual", InferOptions{UseTemplates: true, UseDomainCandidates: true}},
		} {
			b.Run(d.name+"/"+coll.name+"/reference", func(b *testing.B) {
				s := env.session(referenceBenchConfig(env.g))
				env.replay(b, s, coll.opts, false)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.InferReference(coll.opts); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(d.name+"/"+coll.name+"/incremental", func(b *testing.B) {
				cfg := referenceBenchConfig(env.g)
				cfg.IncrementalGraph = true
				cfg.IncrementalPool = true
				cfg.WarmStart = true
				s := env.session(cfg)
				env.replay(b, s, coll.opts, true)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.Infer(coll.opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCandidateStep measures one candidate-pool generation at step
// ≥5 — the dominant remaining per-step cost the incremental pool
// refactor targets. "reference" re-enumerates the n-grams of every
// gathered page per call (the pre-refactor path, retained as
// CandidatesReference); "incremental" syncs the persistent pool against
// the last fire's pending delta, the exact state a live step sees. The
// acceptance bar is ≥2x at step ≥5.
func BenchmarkCandidateStep(b *testing.B) {
	opts := InferOptions{UseTemplates: true, UseDomainCandidates: true, Collective: true}
	for _, d := range benchDomains {
		env := benchEnvFor(b, d.domain, d.aspect)
		b.Run(d.name+"/reference", func(b *testing.B) {
			cfg := referenceBenchConfig(env.g)
			s := env.session(cfg)
			env.replay(b, s, opts, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(s.CandidatesReference(true)) == 0 {
					b.Fatal("empty pool")
				}
			}
		})
		b.Run(d.name+"/incremental", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := referenceBenchConfig(env.g)
				cfg.IncrementalPool = true
				s := env.session(cfg)
				// Warm the pool through the prefix (Candidates per step),
				// leaving the final fire's page delta pending — a live
				// step's exact state.
				s.Bootstrap()
				for _, q := range env.prefix {
					if len(s.Candidates(true)) == 0 {
						b.Fatal("pool ran dry during replay")
					}
					s.Fire(q)
				}
				b.StartTimer()
				if len(s.Candidates(true)) == 0 {
					b.Fatal("empty pool")
				}
			}
		})
	}
}

// BenchmarkLearnDomain measures the domain phase end to end on both
// domains: "reference" is the retained serial two-pass implementation
// (count, then re-enumerate for edges); "serial" is the refactored pass
// at one worker (enumeration reuse + per-page memo, no parallelism);
// "parallel" adds the sharded counting pass at GOMAXPROCS. On the CI's
// multi-core runners the parallel gain lands on top of the reuse gain.
func BenchmarkLearnDomain(b *testing.B) {
	for _, d := range benchDomains {
		env := benchEnvFor(b, d.domain, d.aspect)
		var domainIDs []corpus.EntityID
		for i := 0; i < env.g.Corpus.NumEntities()/2; i++ {
			domainIDs = append(domainIDs, env.g.Corpus.Entities[i].ID)
		}
		cfg := DefaultConfig()
		cfg.Tokenizer = env.g.Tokenizer
		variants := []struct {
			name  string
			learn func() (*DomainModel, error)
		}{
			{"reference", func() (*DomainModel, error) {
				return LearnDomainReference(cfg, env.aspect, env.g.Corpus, domainIDs, env.y, nil, env.rec)
			}},
			{"serial", func() (*DomainModel, error) {
				c := cfg
				c.LearnWorkers = 1
				return LearnDomainScored(c, env.aspect, env.g.Corpus, domainIDs, env.y, nil, env.rec)
			}},
			{"parallel", func() (*DomainModel, error) {
				return LearnDomainScored(cfg, env.aspect, env.g.Corpus, domainIDs, env.y, nil, env.rec)
			}},
		}
		for _, v := range variants {
			b.Run(d.name+"/"+v.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := v.learn(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
