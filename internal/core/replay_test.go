package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"l2q/internal/corpus"
	"l2q/internal/synth"
)

// TestCheckpointResume runs half a session, checkpoints it through the
// JSON codec, resumes into a fresh session, finishes both, and demands
// identical outcomes — the restart-safety property a long-running
// harvester needs.
func TestCheckpointResume(t *testing.T) {
	f := newFixture(t)

	// Reference: one uninterrupted session, 4 queries.
	ref := f.session(f.dm)
	refFired := ref.Run(NewL2QBAL(), 4)
	if len(refFired) < 3 {
		t.Fatalf("reference fired only %v", refFired)
	}

	// Interrupted: 2 queries, checkpoint, serialize, deserialize, resume,
	// 2 more queries.
	first := f.session(f.dm)
	first.Run(NewL2QBAL(), 2)
	var buf bytes.Buffer
	if err := first.Snapshot().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}

	resumed := f.session(f.dm)
	if err := resumed.Resume(cp); err != nil {
		t.Fatal(err)
	}
	more := resumed.Run(NewL2QBAL(), 2)

	got := append(append([]Query(nil), cp.Fired...), more...)
	if !reflect.DeepEqual(got, refFired) {
		t.Errorf("interrupted run fired %v, uninterrupted %v", got, refFired)
	}
	if len(resumed.Pages()) != len(ref.Pages()) {
		t.Errorf("pages %d vs %d", len(resumed.Pages()), len(ref.Pages()))
	}
	for i := range ref.Pages() {
		if resumed.Pages()[i].ID != ref.Pages()[i].ID {
			t.Fatalf("page %d differs", i)
		}
	}
}

func TestResumeValidation(t *testing.T) {
	f := newFixture(t)
	s := f.session(f.dm)
	s.Run(NewP(), 1)
	cp := s.Snapshot()
	if cp.Aspect != synth.AspResearch || len(cp.Fired) != 1 {
		t.Fatalf("implausible checkpoint %+v", cp)
	}

	// Resume into a used session must fail.
	if err := s.Resume(cp); err == nil {
		t.Error("resume into a used session accepted")
	}
	// Wrong entity must fail.
	wrong := cp
	wrong.Entity++
	if err := f.session(f.dm).Resume(wrong); err == nil {
		t.Error("wrong-entity checkpoint accepted")
	}
	// A tampered page list (simulating a corpus that changed under the
	// checkpoint) must fail loudly, not silently corrupt the context.
	tampered := cp
	tampered.PageIDs = append([]corpus.PageID(nil), cp.PageIDs...)
	tampered.PageIDs[0] = 999999
	err := f.session(f.dm).Resume(tampered)
	if err == nil || !strings.Contains(err.Error(), "corpus changed") {
		t.Errorf("tampered checkpoint: err = %v", err)
	}
}

func TestReadCheckpointErrors(t *testing.T) {
	if _, err := ReadCheckpoint(strings.NewReader("not json")); err == nil {
		t.Error("garbage checkpoint accepted")
	}
}

// TestMidBootstrapSnapshot is the nastiest checkpoint state: a session
// snapshotted before the seed ingest. The checkpoint must be valid,
// resume as a fresh start (no phantom seed replay), and the resumed
// session must then behave exactly like an untouched one.
func TestMidBootstrapSnapshot(t *testing.T) {
	f := newFixture(t)

	fresh := f.session(f.dm)
	cp := fresh.Snapshot()
	if cp.Booted || len(cp.Fired) != 0 || len(cp.PageIDs) != 0 {
		t.Fatalf("mid-bootstrap snapshot not empty: %+v", cp)
	}

	resumed := f.session(f.dm)
	if err := resumed.Resume(cp); err != nil {
		t.Fatalf("mid-bootstrap resume: %v", err)
	}
	if resumed.Booted() {
		t.Fatal("mid-bootstrap resume booted the session")
	}

	ref := f.session(f.dm)
	want := ref.Run(NewL2QBAL(), 2)
	got := resumed.Run(NewL2QBAL(), 2)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed-from-unbooted fired %v, fresh fired %v", got, want)
	}
}

// TestSnapshotAnchors: the recorded R_E(Φ)/R*_E(Φ) anchors match the live
// session, replay-verify on Resume, and a corrupted anchor fails loudly.
func TestSnapshotAnchors(t *testing.T) {
	f := newFixture(t)
	s := f.session(f.dm)
	s.Run(NewL2QBAL(), 2)
	cp := s.Snapshot()
	if !cp.Booted {
		t.Fatal("snapshot of a run session not marked booted")
	}
	if cp.RPhi != s.RPhi() {
		t.Fatalf("snapshot RPhi %v, session %v", cp.RPhi, s.RPhi())
	}

	if err := f.session(f.dm).Resume(cp); err != nil {
		t.Fatalf("anchor-verified resume: %v", err)
	}

	bad := cp
	bad.RPhi = cp.RPhi + 0.25
	err := f.session(f.dm).Resume(bad)
	if err == nil || !strings.Contains(err.Error(), "model changed") {
		t.Errorf("tampered anchor: err = %v", err)
	}
}

// TestLegacyCheckpointImpliesBooted: checkpoints written before the
// Booted field existed (fired queries, no flag) must still replay.
func TestLegacyCheckpointImpliesBooted(t *testing.T) {
	f := newFixture(t)
	s := f.session(f.dm)
	s.Run(NewP(), 1)
	cp := s.Snapshot()
	cp.Booted = false // simulate the old wire format
	cp.RPhi, cp.RStarPhi = 0, 0

	resumed := f.session(f.dm)
	if err := resumed.Resume(cp); err != nil {
		t.Fatalf("legacy checkpoint rejected: %v", err)
	}
	if !resumed.Booted() || len(resumed.Fired()) != 1 {
		t.Error("legacy checkpoint did not replay")
	}
}
