package core

import (
	"math"
	"testing"
)

// Tests for the probability-scale collective-utility machinery (§V),
// exercising the calibration invariants documented in DESIGN.md §5.

func TestSmoothed(t *testing.T) {
	tests := []struct {
		obs   float64
		n     int
		prior float64
		m     float64
		want  float64
	}{
		{1, 4, 0, 4, 0.5},     // observed diluted by empty prior
		{0, 0, 0.8, 3, 0.8},   // pure prior when nothing observed
		{0.5, 2, 0.5, 2, 0.5}, // agreement stays put
		{0, 0, 0, 0, 0},       // fully degenerate
	}
	for _, tc := range tests {
		got := smoothed(tc.obs, tc.n, tc.prior, tc.m)
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("smoothed(%v,%d,%v,%v) = %v, want %v",
				tc.obs, tc.n, tc.prior, tc.m, got, tc.want)
		}
	}
}

func TestCapObs(t *testing.T) {
	if capObs(3) != 3 || capObs(maxObservations) != maxObservations {
		t.Fatal("capObs mangles small values")
	}
	if capObs(1000) != maxObservations {
		t.Fatal("capObs does not cap")
	}
}

func TestClamp01(t *testing.T) {
	if clamp01(-0.5) != 0 || clamp01(1.5) != 1 || clamp01(0.25) != 0.25 {
		t.Fatal("clamp01 wrong")
	}
}

// TestCollectiveRedundancyOrdering: of two candidates with identical domain
// priors, the one already covered by the gathered relevant pages must score
// below the uncovered one on collective recall once the context holds
// meaningful coverage — the essence of §V's Fig. 7 example.
func TestCollectiveRedundancyOrdering(t *testing.T) {
	f := newFixture(t)
	s := f.session(f.dm)
	s.Bootstrap()
	// Advance the context so R(Φ) is non-trivial.
	for i := 0; i < 2; i++ {
		if _, ok := s.Step(NewL2QR()); !ok {
			t.Fatal("step failed")
		}
	}
	inf, err := s.Infer(InferOptions{UseTemplates: true, UseDomainCandidates: true, Collective: true})
	if err != nil {
		t.Fatal(err)
	}
	// Find a pair of candidates with (near-)equal individual recall
	// estimates but maximally different observed coverage; collective
	// recall must prefer the novel one relative to their individual gap.
	relPages := 0
	for _, p := range s.Pages() {
		if s.Y(p) {
			relPages++
		}
	}
	if relPages == 0 {
		t.Skip("no relevant pages gathered in this fixture")
	}
	// Weaker but robust check: collective recall must not be constant
	// (the redundancy term must differentiate candidates).
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, v := range inf.CollR {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	if maxV-minV < 1e-9 {
		t.Fatal("collective recall is flat across candidates")
	}
}

// TestCollectiveFloor: every candidate's collective recall must at least
// preserve the context's coverage discounted by its own redundancy —
// i.e. CollR ≥ R(Φ)·(1−R^(Ỹ)(q)) ≥ 0 up to the backfill bonus.
func TestCollectiveFloor(t *testing.T) {
	f := newFixture(t)
	s := f.session(f.dm)
	s.Bootstrap()
	inf, err := s.Infer(InferOptions{UseTemplates: true, UseDomainCandidates: true, Collective: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range inf.Queries {
		if inf.CollR[i] < -1e-9 {
			t.Fatalf("negative collective recall for %q: %v", inf.Queries[i], inf.CollR[i])
		}
		if inf.CollRStar[i] < -1e-9 {
			t.Fatalf("negative collective Y*-recall for %q", inf.Queries[i])
		}
	}
}

func TestWeightByLikelihoodRuns(t *testing.T) {
	f := newFixture(t)
	cfg := DefaultConfig()
	cfg.Tokenizer = f.g.Tokenizer
	cfg.WeightByLikelihood = true
	s := NewSession(cfg, f.engine, f.target, "RESEARCH", f.y, f.dm, f.rec, 3)
	if fired := s.Run(NewL2QP(), 2); len(fired) != 2 {
		t.Fatalf("likelihood-weighted session fired %d queries", len(fired))
	}
}

func TestUseWalkRecallRegRuns(t *testing.T) {
	f := newFixture(t)
	cfg := DefaultConfig()
	cfg.Tokenizer = f.g.Tokenizer
	cfg.UseWalkRecallReg = true
	s := NewSession(cfg, f.engine, f.target, "RESEARCH", f.y, f.dm, f.rec, 3)
	if fired := s.Run(NewL2QR(), 2); len(fired) != 2 {
		t.Fatalf("walk-reg session fired %d queries", len(fired))
	}
}

func TestContextStateMonotone(t *testing.T) {
	// R(Φ) and R*(Φ) are derived from gathered pages, which only grow.
	f := newFixture(t)
	s := f.session(f.dm)
	s.Bootstrap()
	prevR := s.RPhi()
	for i := 0; i < 4; i++ {
		if _, ok := s.Step(NewL2QBAL()); !ok {
			break
		}
		if s.RPhi() < prevR-1e-12 {
			t.Fatalf("R(Φ) decreased at step %d: %f → %f", i, prevR, s.RPhi())
		}
		prevR = s.RPhi()
	}
}

func TestGaussSeidelSelectionEquivalence(t *testing.T) {
	// Switching the solver scheme must not change what gets selected —
	// both schemes reach the same fixpoint.
	f := newFixture(t)
	cfgGS := DefaultConfig()
	cfgGS.Tokenizer = f.g.Tokenizer
	cfgGS.UseGaussSeidel = true
	a := f.session(f.dm).Run(NewPT(), 3)
	sGS := NewSession(cfgGS, f.engine, f.target, "RESEARCH", f.y, f.dm, f.rec, 42)
	b := sGS.Run(NewPT(), 3)
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schemes selected differently: %v vs %v", a, b)
		}
	}
}

func TestSessionErrorf(t *testing.T) {
	f := newFixture(t)
	s := f.session(nil)
	err := s.Errorf("boom %d", 7)
	if err == nil || err.Error() == "" {
		t.Fatal("Errorf returned nothing")
	}
}

func TestDomainModelCountingStats(t *testing.T) {
	f := newFixture(t)
	if f.dm.RelFraction <= 0 || f.dm.RelFraction >= 1 {
		t.Fatalf("RelFraction = %v", f.dm.RelFraction)
	}
	if len(f.dm.QueryRCount) == 0 {
		t.Fatal("no query-level counting priors")
	}
	for q, v := range f.dm.QueryRCount {
		if v < 0 || v > 1 {
			t.Fatalf("QueryRCount[%q] = %v outside [0,1]", q, v)
		}
		if vs := f.dm.QueryRStarCount[q]; vs < 0 || vs > 1 {
			t.Fatalf("QueryRStarCount[%q] = %v outside [0,1]", q, vs)
		}
	}
	for k, v := range f.dm.TemplateRCount {
		if v < 0 || v > 1 {
			t.Fatalf("TemplateRCount[%q] = %v outside [0,1]", k, v)
		}
	}
}
