package core

// candidatePool is the persistent entity-phase candidate pool Q_E of one
// harvesting session (§III–§IV-C), maintained incrementally across Steps
// instead of being re-enumerated from every gathered page per selection —
// the pool-side counterpart of sessionGraph:
//
//   - only newly ingested pages are enumerated (pages are immutable and
//     P_E is append-only, so the first-appearance order over the whole
//     page stream is exactly the order the rebuild path produces);
//   - fired queries are removed incrementally — they leave Q_E for good;
//   - domain candidates (§IV-C) form a tail segment in DomainModel order;
//     a domain candidate later observed as a page n-gram migrates into
//     the page segment at its first-appearance position, reproducing the
//     rebuild path's dedup ("page n-grams first") exactly;
//   - the seed-exclusion enumeration config is built once per session
//     (Session.ngCfg) and page enumerations go through the per-page memo
//     (corpus.Page.NGrams), so concurrent sessions and the §V coverage
//     machinery share one enumeration per page.
//
// The pool's shape depends on whether domain candidates are included and
// on which domain model supplies them, so a session keeps one pool per
// (useDomain, DM) signature and rebuilds only if a selector switches
// signatures mid-session (which none of the stock strategies do).
type candidatePool struct {
	useDomain bool
	dm        *DomainModel // nil when useDomain is false

	nPages int // prefix of s.pages already enumerated
	nFired int // prefix of s.fired already removed

	// pageSeen records every query ever observed as a page n-gram —
	// including fired ones — so re-observation never re-adds a query and
	// the domain tail never re-emits a page-covered query.
	pageSeen map[Query]struct{}
	// pageSeg holds the live page-derived candidates in first-appearance
	// order; domainSeg holds the live domain candidates (DomainModel
	// order) not subsumed by the page segment. The emitted pool is their
	// concatenation.
	pageSeg   []Query
	domainSeg []Query
	// domainLive tracks membership of domainSeg for O(1) migration checks.
	domainLive map[Query]bool

	// firedScratch is the reusable newly-fired set of one sync pass,
	// cleared (but kept at capacity) between syncs so steady-state pool
	// refresh does not allocate it per step.
	firedScratch map[Query]struct{}
}

func newCandidatePool(useDomain bool, dm *DomainModel) *candidatePool {
	p := &candidatePool{
		useDomain: useDomain,
		dm:        dm,
		pageSeen:  make(map[Query]struct{}),
	}
	if dm != nil {
		p.domainLive = make(map[Query]bool, len(dm.Candidates))
		p.domainSeg = make([]Query, 0, len(dm.Candidates))
		for _, q := range dm.Candidates {
			if p.domainLive[q] {
				continue // defensive: Candidates are distinct by construction
			}
			p.domainLive[q] = true
			p.domainSeg = append(p.domainSeg, q)
		}
	}
	return p
}

// matches reports whether the pool was built for this signature.
func (p *candidatePool) matches(useDomain bool, dm *DomainModel) bool {
	return p != nil && p.useDomain == useDomain && p.dm == dm
}

// sync brings the pool up to date with the session — remove newly fired
// queries, enumerate newly ingested pages — and emits the current Q_E.
// The emitted slice is freshly allocated per call (callers may retain it
// across later mutations); the per-step work is O(new fired + new pages'
// n-grams + |Q_E| copy), never a re-enumeration of old pages.
func (p *candidatePool) sync(s *Session) []Query {
	return p.appendPool(make([]Query, 0, len(p.pageSeg)+len(p.domainSeg)), s)
}

// appendPool is sync with a caller-provided buffer: the current Q_E is
// appended to dst. The delta work allocates nothing steady-state (the
// newly-fired scratch set is pool-owned and reused; page enumeration goes
// through the per-page memo), so with a reused dst a no-delta refresh is
// allocation-free.
func (p *candidatePool) appendPool(dst []Query, s *Session) []Query {
	// Retire newly fired queries: remove them from whichever segment
	// holds them. (A query fired before ever being observed stays out of
	// both segments via the firedSet check below.)
	if len(s.fired) > p.nFired {
		if p.firedScratch == nil {
			p.firedScratch = make(map[Query]struct{}, len(s.fired)-p.nFired)
		}
		firedNow := p.firedScratch
		for _, q := range s.fired[p.nFired:] {
			firedNow[q] = struct{}{}
		}
		p.pageSeg = removeQueries(p.pageSeg, firedNow)
		if len(p.domainSeg) > 0 {
			p.domainSeg = removeQueries(p.domainSeg, firedNow)
			for q := range firedNow {
				delete(p.domainLive, q)
			}
		}
		clear(firedNow)
		p.nFired = len(s.fired)
	}

	// Enumerate new pages only, in ingest order.
	for _, page := range s.pages[p.nPages:] {
		for _, qs := range page.NGrams(s.ngCfg) {
			q := Query(qs)
			if _, dup := p.pageSeen[q]; dup {
				continue
			}
			p.pageSeen[q] = struct{}{}
			if p.domainLive[q] {
				// The query migrates from the domain tail into the page
				// segment (the rebuild emits page n-grams first).
				p.domainSeg = removeQuery(p.domainSeg, q)
				delete(p.domainLive, q)
			}
			if _, fired := s.firedSet[q]; fired {
				continue
			}
			p.pageSeg = append(p.pageSeg, q)
		}
	}
	p.nPages = len(s.pages)

	dst = append(dst, p.pageSeg...)
	dst = append(dst, p.domainSeg...)
	return dst
}

// removeQueries filters every member of drop out of qs in place,
// preserving order.
func removeQueries(qs []Query, drop map[Query]struct{}) []Query {
	out := qs[:0]
	for _, q := range qs {
		if _, ok := drop[q]; !ok {
			out = append(out, q)
		}
	}
	return out
}

// removeQuery removes the first occurrence of q from qs in place,
// preserving order.
func removeQuery(qs []Query, q Query) []Query {
	for i, have := range qs {
		if have == q {
			return append(qs[:i], qs[i+1:]...)
		}
	}
	return qs
}
