package core

import (
	"math"
	"reflect"
	"testing"

	"l2q/internal/classify"
	"l2q/internal/corpus"
	"l2q/internal/search"
	"l2q/internal/synth"
	"l2q/internal/types"
)

// diffFixture is a per-domain fixture for the incremental-vs-reference
// differential tests.
type diffFixture struct {
	g      *synth.Generated
	engine *search.Engine
	rec    types.Recognizer
	aspect corpus.Aspect
	y      func(*corpus.Page) bool
	dm     *DomainModel
	target *corpus.Entity
}

func newDiffFixture(t *testing.T, domain corpus.Domain, aspect corpus.Aspect) *diffFixture {
	t.Helper()
	g, err := synth.Generate(synth.TestConfig(domain))
	if err != nil {
		t.Fatal(err)
	}
	engine := search.NewEngine(search.BuildIndex(g.Corpus.Pages))
	rec := types.Chain{g.KB, types.NewRegexRecognizer()}
	y := func(p *corpus.Page) bool { return classify.GroundTruth(p, aspect) }

	n := g.Corpus.NumEntities()
	var domainIDs []corpus.EntityID
	for i := 0; i < n/2; i++ {
		domainIDs = append(domainIDs, g.Corpus.Entities[i].ID)
	}
	cfg := DefaultConfig()
	cfg.Tokenizer = g.Tokenizer
	dm, err := LearnDomain(cfg, aspect, g.Corpus, domainIDs, y, rec)
	if err != nil {
		t.Fatal(err)
	}
	return &diffFixture{
		g: g, engine: engine, rec: rec, aspect: aspect, y: y, dm: dm,
		target: g.Corpus.Entities[n-1],
	}
}

// diffConfig returns the base config for differential runs: solver
// tolerance tightened so that solve-order differences (the incremental
// graph appends nodes in a different order than a rebuild) stay far below
// the 1e-9 drift budget.
func (f *diffFixture) diffConfig() Config {
	cfg := DefaultConfig()
	cfg.Tokenizer = f.g.Tokenizer
	cfg.SolverTol = 1e-12
	return cfg
}

func (f *diffFixture) sessionWith(cfg Config, dm *DomainModel) *Session {
	return NewSession(cfg, f.engine, f.target, f.aspect, f.y, dm, f.rec, 42)
}

func diffDomains(t *testing.T) map[string]*diffFixture {
	t.Helper()
	return map[string]*diffFixture{
		"researchers": newDiffFixture(t, synth.DomainResearchers, synth.AspResearch),
		"cars":        newDiffFixture(t, synth.DomainCars, synth.AspSafety),
	}
}

// inferCases are the InferOptions signatures the §VI-B strategy ablations
// exercise: P/R (basic), P+t/R+t (templates), L2QP/L2QR/L2QBAL
// (templates + collective), plus collective-without-templates for
// completeness.
var inferCases = []struct {
	name string
	opts InferOptions
}{
	{"basic", InferOptions{}},
	{"templates", InferOptions{UseTemplates: true, UseDomainCandidates: true}},
	{"collective", InferOptions{Collective: true}},
	{"full", InferOptions{UseTemplates: true, UseDomainCandidates: true, Collective: true}},
}

// TestIncrementalMatchesReference drives an incremental session and a
// rebuild-per-step reference session in lockstep over several steps and
// holds every utility vector to ≤1e-9 drift and every ranking decision to
// exact equality — for each ablation signature, on both domains.
func TestIncrementalMatchesReference(t *testing.T) {
	const steps = 4
	const maxDrift = 1e-9
	for domain, f := range diffDomains(t) {
		for _, tc := range inferCases {
			t.Run(domain+"/"+tc.name, func(t *testing.T) {
				incCfg := f.diffConfig()
				incCfg.IncrementalGraph = true
				incCfg.WarmStart = true
				refCfg := f.diffConfig()
				refCfg.IncrementalGraph = false
				refCfg.WarmStart = false
				refCfg.IncrementalPool = false

				inc := f.sessionWith(incCfg, f.dm)
				ref := f.sessionWith(refCfg, f.dm)
				inc.Bootstrap()
				ref.Bootstrap()

				for step := 0; step < steps; step++ {
					a, err := inc.Infer(tc.opts)
					if err != nil {
						t.Fatal(err)
					}
					b, err := ref.InferReference(tc.opts)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(a.Queries, b.Queries) {
						t.Fatalf("step %d: candidate pools differ (%d vs %d queries)",
							step, len(a.Queries), len(b.Queries))
					}
					compareVec(t, step, "P", a.P, b.P, maxDrift)
					compareVec(t, step, "R", a.R, b.R, maxDrift)
					compareVec(t, step, "CollR", a.CollR, b.CollR, maxDrift)
					compareVec(t, step, "CollRStar", a.CollRStar, b.CollRStar, maxDrift)
					compareVec(t, step, "CollP", a.CollP, b.CollP, maxDrift)

					// Ranking decisions must agree exactly.
					for _, vals := range [][2][]float64{{a.P, b.P}, {a.R, b.R}, {a.CollP, b.CollP}, {a.CollR, b.CollR}} {
						if vals[0] == nil {
							continue
						}
						ba, bb := a.ArgMax(vals[0]), b.ArgMax(vals[1])
						if ba != bb {
							t.Fatalf("step %d: rankings diverge: incremental picks %q, reference %q",
								step, a.Queries[ba], b.Queries[bb])
						}
					}

					// Fire the reference's top-R choice on both sessions.
					pick := b.Queries[b.ArgMax(b.R)]
					inc.Fire(pick)
					ref.Fire(pick)
				}
			})
		}
	}
}

func compareVec(t *testing.T, step int, name string, a, b []float64, maxDrift float64) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("step %d: %s computed on one path only", step, name)
	}
	if len(a) != len(b) {
		t.Fatalf("step %d: %s lengths differ: %d vs %d", step, name, len(a), len(b))
	}
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > maxDrift || math.IsNaN(d) {
			t.Fatalf("step %d: %s[%d] drift %.3g (incremental %.15f vs reference %.15f)",
				step, name, i, d, a[i], b[i])
		}
	}
}

// TestIncrementalSelectionsMatchReference runs every §VI strategy end to
// end under both paths and requires identical fired-query sequences —
// including the P+q/R+q selectors that bypass Infer (their sessions still
// share the Fire/ingest machinery).
func TestIncrementalSelectionsMatchReference(t *testing.T) {
	selectors := []func() Selector{
		NewP, NewR, NewPQ, NewRQ, NewPT, NewRT, NewL2QP, NewL2QR, NewL2QBAL,
	}
	for domain, f := range diffDomains(t) {
		for _, mk := range selectors {
			sel := mk()
			t.Run(domain+"/"+sel.Name(), func(t *testing.T) {
				incCfg := f.diffConfig()
				refCfg := f.diffConfig()
				refCfg.IncrementalGraph = false
				refCfg.WarmStart = false
				refCfg.IncrementalPool = false

				fired := f.sessionWith(incCfg, f.dm).Run(sel, 3)
				want := f.sessionWith(refCfg, f.dm).Run(sel, 3)
				if !reflect.DeepEqual(fired, want) {
					t.Fatalf("fired %v, reference fired %v", fired, want)
				}
				if len(fired) == 0 {
					t.Fatal("no queries fired")
				}
			})
		}
	}
}

// TestIncrementalMatchesReferenceAcrossSolvers repeats the lockstep
// comparison under the alternative solver configurations (Gauss–Seidel,
// residual push, likelihood-weighted edges) so the warm-start plumbing of
// every solver is covered.
func TestIncrementalMatchesReferenceAcrossSolvers(t *testing.T) {
	f := newDiffFixture(t, synth.DomainResearchers, synth.AspResearch)
	variants := map[string]func(*Config){
		"gauss-seidel": func(c *Config) { c.UseGaussSeidel = true },
		"push":         func(c *Config) { c.UsePushSolver = true },
		"likelihood":   func(c *Config) { c.WeightByLikelihood = true },
	}
	opts := InferOptions{UseTemplates: true, UseDomainCandidates: true, Collective: true}
	for name, mutate := range variants {
		t.Run(name, func(t *testing.T) {
			incCfg := f.diffConfig()
			mutate(&incCfg)
			refCfg := incCfg
			refCfg.IncrementalGraph = false
			refCfg.WarmStart = false
			refCfg.IncrementalPool = false

			inc := f.sessionWith(incCfg, f.dm)
			ref := f.sessionWith(refCfg, f.dm)
			inc.Bootstrap()
			ref.Bootstrap()
			for step := 0; step < 3; step++ {
				a, err := inc.Infer(opts)
				if err != nil {
					t.Fatal(err)
				}
				b, err := ref.InferReference(opts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a.Queries, b.Queries) {
					t.Fatalf("step %d: candidate pools differ", step)
				}
				compareVec(t, step, "P", a.P, b.P, 1e-9)
				compareVec(t, step, "R", a.R, b.R, 1e-9)
				compareVec(t, step, "CollR", a.CollR, b.CollR, 1e-9)
				if ba, bb := a.ArgMax(a.CollR), b.ArgMax(b.CollR); ba != bb {
					t.Fatalf("step %d: rankings diverge", step)
				}
				pick := b.Queries[b.ArgMax(b.CollR)]
				inc.Fire(pick)
				ref.Fire(pick)
			}
		})
	}
}

// TestIncrementalWorkerCountInvariance: the inference worker pool is a
// pure performance knob — every worker count computes identical utilities.
func TestIncrementalWorkerCountInvariance(t *testing.T) {
	f := newDiffFixture(t, synth.DomainResearchers, synth.AspResearch)
	opts := InferOptions{UseTemplates: true, UseDomainCandidates: true, Collective: true}
	run := func(workers int) *Inference {
		cfg := f.diffConfig()
		cfg.InferWorkers = workers
		s := f.sessionWith(cfg, f.dm)
		s.Bootstrap()
		s.Fire(Query("parallel computing"))
		inf, err := s.Infer(opts)
		if err != nil {
			t.Fatal(err)
		}
		return inf
	}
	serial := run(1)
	for _, w := range []int{2, 3, 8} {
		par := run(w)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d computed different utilities than serial", w)
		}
	}
}

// TestIncrementalGraphReuse pins the point of the refactor: across steps
// the session keeps one graph (same builder), only grows it, and detaches
// fired queries rather than rebuilding.
func TestIncrementalGraphReuse(t *testing.T) {
	f := newDiffFixture(t, synth.DomainResearchers, synth.AspResearch)
	cfg := f.diffConfig()
	s := f.sessionWith(cfg, f.dm)
	s.Bootstrap()
	opts := InferOptions{UseTemplates: true, UseDomainCandidates: true, Collective: true}
	if _, err := s.Infer(opts); err != nil {
		t.Fatal(err)
	}
	sg := s.sg
	if sg == nil {
		t.Fatal("no session graph after Infer")
	}
	nodes := sg.b.g.NumNodes()

	inf, err := s.Infer(opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.sg != sg {
		t.Fatal("second Infer rebuilt the session graph")
	}
	if sg.b.g.NumNodes() != nodes {
		t.Fatalf("no-op Infer grew the graph: %d → %d nodes", nodes, sg.b.g.NumNodes())
	}

	// Fire the top candidate: its vertex must be detached, not the graph
	// rebuilt, and the node count may only grow (new pages/candidates).
	pick := inf.Queries[inf.ArgMax(inf.R)]
	s.Fire(pick)
	if _, err := s.Infer(opts); err != nil {
		t.Fatal(err)
	}
	if s.sg != sg {
		t.Fatal("post-fire Infer rebuilt the session graph")
	}
	if sg.b.g.NumNodes() < nodes {
		t.Fatal("node count shrank")
	}
	if !sg.b.detached[pick] {
		t.Fatalf("fired query %q not detached", pick)
	}
	if id, ok := sg.b.queries[pick]; ok && sg.b.g.Degree(id) != 0 {
		t.Fatalf("fired query %q keeps %d edges", pick, sg.b.g.Degree(id))
	}

	// Switching the options signature rebuilds (different graph shape).
	if _, err := s.Infer(InferOptions{}); err != nil {
		t.Fatal(err)
	}
	if s.sg == sg {
		t.Fatal("options switch did not rebuild the session graph")
	}
}

// TestArgMaxSkipsNonFinite is the regression test for the NaN bug: a NaN
// at index 0 used to win every comparison by default.
func TestArgMaxSkipsNonFinite(t *testing.T) {
	inf := &Inference{Queries: []Query{"a", "b", "c", "d"}}
	nan := math.NaN()
	cases := []struct {
		vals []float64
		want int
	}{
		{[]float64{nan, 0.2, 0.7, 0.1}, 2},
		{[]float64{nan, nan, nan, 0.1}, 3},
		{[]float64{math.Inf(1), 0.2, 0.1, 0.0}, 1},
		{[]float64{math.Inf(-1), -0.5, nan, -0.2}, 3},
		{[]float64{nan, nan, nan, nan}, -1},
		{[]float64{0.3, 0.3, 0.1, nan}, 0}, // tie → lexicographic query
		{nil, -1},
	}
	for i, tc := range cases {
		if got := inf.ArgMax(tc.vals); got != tc.want {
			t.Errorf("case %d: ArgMax(%v) = %d, want %d", i, tc.vals, got, tc.want)
		}
	}
}
