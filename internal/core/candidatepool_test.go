package core

import (
	"reflect"
	"testing"

	"l2q/internal/synth"
)

// TestCandidatePoolMatchesReference drives incremental sessions through
// several fired queries on both domains and holds the persistent pool to
// exact equality with the rebuild-per-step CandidatesReference at every
// step — for both pool signatures (with and without domain candidates),
// on the SAME session, so any divergence is the pool's own.
func TestCandidatePoolMatchesReference(t *testing.T) {
	const steps = 5
	for domain, f := range diffDomains(t) {
		t.Run(domain, func(t *testing.T) {
			s := f.sessionWith(f.diffConfig(), f.dm)
			s.Bootstrap()
			for step := 0; step <= steps; step++ {
				for _, useDomain := range []bool{true, false} {
					got := s.Candidates(useDomain)
					want := s.CandidatesReference(useDomain)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("step %d useDomain=%v: pool diverged (%d vs %d candidates)",
							step, useDomain, len(got), len(want))
					}
					if step == 0 && len(got) == 0 {
						t.Fatal("empty candidate pool after bootstrap")
					}
				}
				// Fire the pool's head so every step carries a real delta:
				// one removed query plus the fresh pages it retrieves.
				cands := s.Candidates(true)
				if len(cands) == 0 {
					break
				}
				s.Fire(cands[0])
			}
		})
	}
}

// TestCandidatePoolSignatureSwitch: alternating the useDomain signature
// mid-session rebuilds the pool for the new signature without corrupting
// either view (the same rule sessionGraph applies to InferOptions).
func TestCandidatePoolSignatureSwitch(t *testing.T) {
	f := newDiffFixture(t, synth.DomainResearchers, synth.AspResearch)
	s := f.sessionWith(f.diffConfig(), f.dm)
	s.Bootstrap()
	for i := 0; i < 3; i++ {
		withDM := s.Candidates(true)
		if want := s.CandidatesReference(true); !reflect.DeepEqual(withDM, want) {
			t.Fatalf("iteration %d: domain pool diverged", i)
		}
		withoutDM := s.Candidates(false)
		if want := s.CandidatesReference(false); !reflect.DeepEqual(withoutDM, want) {
			t.Fatalf("iteration %d: no-domain pool diverged", i)
		}
		if len(withDM) < len(withoutDM) {
			t.Fatalf("iteration %d: domain pool smaller than page pool", i)
		}
		s.Fire(withDM[0])
	}
}

// TestCandidatePoolEmitIsolated: the emitted slice is a snapshot — later
// pool mutations (fires, new pages) must not alias into a slice a caller
// retained, because Inference.Queries holds it across the step.
func TestCandidatePoolEmitIsolated(t *testing.T) {
	f := newDiffFixture(t, synth.DomainResearchers, synth.AspResearch)
	s := f.sessionWith(f.diffConfig(), f.dm)
	s.Bootstrap()
	before := s.Candidates(true)
	snapshot := append([]Query(nil), before...)
	s.Fire(before[0])
	s.Candidates(true) // sync the pool past the fire
	if !reflect.DeepEqual(before, snapshot) {
		t.Fatal("pool sync mutated a previously emitted candidate slice")
	}
}

// TestCandidatePoolResumeParity: a checkpointed and resumed session
// rebuilds exactly the pool of the uninterrupted session — the resumed
// replay fires through the same ingest machinery the pool syncs against.
func TestCandidatePoolResumeParity(t *testing.T) {
	for domain, f := range diffDomains(t) {
		t.Run(domain, func(t *testing.T) {
			cfg := f.diffConfig()
			live := f.sessionWith(cfg, f.dm)
			live.Bootstrap()
			for i := 0; i < 3; i++ {
				cands := live.Candidates(true)
				if len(cands) == 0 {
					t.Fatal("pool ran dry")
				}
				live.Fire(cands[i%len(cands)])
			}
			// Raw Fire skips the context refresh Step performs; refresh
			// before snapshotting so the checkpoint anchors are current.
			live.updateContext()
			cp := live.Snapshot()

			resumed := f.sessionWith(cfg, f.dm)
			if err := resumed.Resume(cp); err != nil {
				t.Fatal(err)
			}
			for _, useDomain := range []bool{true, false} {
				got := resumed.Candidates(useDomain)
				if want := resumed.CandidatesReference(useDomain); !reflect.DeepEqual(got, want) {
					t.Fatalf("useDomain=%v: resumed pool diverges from its own reference", useDomain)
				}
				if want := live.Candidates(useDomain); !reflect.DeepEqual(got, want) {
					t.Fatalf("useDomain=%v: resumed pool diverges from the uninterrupted session", useDomain)
				}
			}
		})
	}
}

// TestCandidatePoolFiredNeverReappears: once fired, a query stays out of
// the pool even when later pages re-contain it — and a domain candidate
// fired before ever appearing in a page is removed from the domain tail.
func TestCandidatePoolFiredNeverReappears(t *testing.T) {
	f := newDiffFixture(t, synth.DomainResearchers, synth.AspResearch)
	s := f.sessionWith(f.diffConfig(), f.dm)
	s.Bootstrap()

	cands := s.Candidates(true)
	pageQ := cands[0]
	var domainQ Query
	pageSet := make(map[Query]struct{})
	for _, p := range s.Pages() {
		for _, qs := range p.NGrams(s.ngCfg) {
			pageSet[Query(qs)] = struct{}{}
		}
	}
	for _, q := range s.DM.Candidates {
		if _, onPage := pageSet[q]; !onPage {
			domainQ = q
			break
		}
	}
	s.Fire(pageQ)
	if domainQ != "" {
		s.Fire(domainQ)
	}
	for step := 0; step < 3; step++ {
		cands := s.Candidates(true)
		for _, q := range cands {
			if q == pageQ || (domainQ != "" && q == domainQ) {
				t.Fatalf("step %d: fired query %q reappeared in the pool", step, q)
			}
		}
		if want := s.CandidatesReference(true); !reflect.DeepEqual(cands, want) {
			t.Fatalf("step %d: pool diverged from reference", step)
		}
		if len(cands) == 0 {
			break
		}
		s.Fire(cands[len(cands)/2])
	}
}
