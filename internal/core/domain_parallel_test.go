package core

import (
	"reflect"
	"testing"

	"l2q/internal/classify"
	"l2q/internal/corpus"
	"l2q/internal/synth"
	"l2q/internal/types"
)

// domainLearnFixture builds the inputs LearnDomain consumes for one
// domain, without the session machinery of diffFixture.
type domainLearnFixture struct {
	cfg    Config
	aspect corpus.Aspect
	c      *corpus.Corpus
	ids    []corpus.EntityID
	y      func(*corpus.Page) bool
	score  func(*corpus.Page) float64
	rec    types.Recognizer
}

func newDomainLearnFixture(t testing.TB, domain corpus.Domain, aspect corpus.Aspect) *domainLearnFixture {
	t.Helper()
	g, err := synth.Generate(synth.TestConfig(domain))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Tokenizer = g.Tokenizer
	var ids []corpus.EntityID
	for i := 0; i < g.Corpus.NumEntities()/2; i++ {
		ids = append(ids, g.Corpus.Entities[i].ID)
	}
	y := func(p *corpus.Page) bool { return classify.GroundTruth(p, aspect) }
	score := func(p *corpus.Page) float64 { return p.AspectFraction(aspect) }
	return &domainLearnFixture{
		cfg: cfg, aspect: aspect, c: g.Corpus, ids: ids, y: y, score: score,
		rec: types.Chain{g.KB, types.NewRegexRecognizer()},
	}
}

func domainLearnFixtures(t *testing.T) map[string]*domainLearnFixture {
	t.Helper()
	return map[string]*domainLearnFixture{
		"researchers": newDomainLearnFixture(t, synth.DomainResearchers, synth.AspResearch),
		"cars":        newDomainLearnFixture(t, synth.DomainCars, synth.AspSafety),
	}
}

// TestLearnDomainMatchesReference: the sharded counting pass with reused
// per-page enumerations learns a DomainModel exactly equal to the
// retained serial reference — binary and real-valued relevance, both
// domains.
func TestLearnDomainMatchesReference(t *testing.T) {
	for domain, f := range domainLearnFixtures(t) {
		for _, scored := range []bool{false, true} {
			name := domain + "/binary"
			score := (func(*corpus.Page) float64)(nil)
			if scored {
				name = domain + "/scored"
				score = f.score
			}
			t.Run(name, func(t *testing.T) {
				got, err := LearnDomainScored(f.cfg, f.aspect, f.c, f.ids, f.y, score, f.rec)
				if err != nil {
					t.Fatal(err)
				}
				want, err := LearnDomainReference(f.cfg, f.aspect, f.c, f.ids, f.y, score, f.rec)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatal("parallel domain model differs from the serial reference")
				}
				if len(got.Candidates) == 0 || len(got.QueryP) == 0 {
					t.Fatal("degenerate domain model (no candidates or query utilities)")
				}
			})
		}
	}
}

// TestLearnDomainWorkerInvariance: LearnWorkers is a pure performance
// knob — every worker count learns an identical model.
func TestLearnDomainWorkerInvariance(t *testing.T) {
	f := newDomainLearnFixture(t, synth.DomainResearchers, synth.AspResearch)
	learn := func(workers int) *DomainModel {
		cfg := f.cfg
		cfg.LearnWorkers = workers
		dm, err := LearnDomainScored(cfg, f.aspect, f.c, f.ids, f.y, nil, f.rec)
		if err != nil {
			t.Fatal(err)
		}
		return dm
	}
	serial := learn(1)
	for _, w := range []int{2, 3, 8, 64} {
		if par := learn(w); !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d learned a different model than serial", w)
		}
	}
}

// TestLearnDomainDuplicateEntities: duplicate and interleaved entity IDs
// in the domain sample must count entity-DF by page-stream runs exactly
// as the serial reference does (the sharding is run-aligned).
func TestLearnDomainDuplicateEntities(t *testing.T) {
	f := newDomainLearnFixture(t, synth.DomainCars, synth.AspSafety)
	ids := append([]corpus.EntityID{}, f.ids...)
	// e0, e1, e0 again: a repeated, non-adjacent entity.
	ids = append(ids, f.ids[0])
	cfg := f.cfg
	cfg.LearnWorkers = 3
	got, err := LearnDomainScored(cfg, f.aspect, f.c, ids, f.y, nil, f.rec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := LearnDomainReference(cfg, f.aspect, f.c, ids, f.y, nil, f.rec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("duplicate-entity sample: parallel model differs from reference")
	}
}

// TestLearnDomainHarvestParity is the end-to-end check the acceptance
// criteria ask for: a session harvesting with the parallel-learned model
// fires exactly the queries of one using the reference-learned model.
func TestLearnDomainHarvestParity(t *testing.T) {
	for domain, f := range domainLearnFixtures(t) {
		t.Run(domain, func(t *testing.T) {
			cfg := f.cfg
			cfg.LearnWorkers = 4
			par, err := LearnDomainScored(cfg, f.aspect, f.c, f.ids, f.y, nil, f.rec)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := LearnDomainReference(cfg, f.aspect, f.c, f.ids, f.y, nil, f.rec)
			if err != nil {
				t.Fatal(err)
			}
			diff := diffDomains(t)[domain]
			sel := NewL2QBAL()
			fired := diff.sessionWith(diff.diffConfig(), par).Run(sel, 3)
			want := diff.sessionWith(diff.diffConfig(), ref).Run(sel, 3)
			if !reflect.DeepEqual(fired, want) {
				t.Fatalf("parallel model fired %v, reference model fired %v", fired, want)
			}
			if len(fired) == 0 {
				t.Fatal("no queries fired")
			}
		})
	}
}
