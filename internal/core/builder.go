package core

import (
	"math"

	"l2q/internal/corpus"
	"l2q/internal/graph"
	"l2q/internal/textproc"
	"l2q/internal/types"
)

// graphBuilder assembles a reinforcement graph over pages, queries and
// templates, shared by the domain phase (§IV-B) and entity phase (§IV-C).
// Pages and queries must be added before edges; template nodes and
// query–template edges are created automatically when queries are added
// (provided a recognizer is present).
type graphBuilder struct {
	cfg Config
	rec types.Recognizer // nil disables templates
	g   *graph.Graph

	pages     []*corpus.Page
	pageNode  map[corpus.PageID]graph.NodeID
	queries   map[Query]graph.NodeID
	queryList []Query
	queryToks map[Query][]textproc.Token
	templates map[string]graph.NodeID
	// detached marks queries retired from the graph (fired queries in a
	// persistent session graph); their vertices are isolated and must
	// not receive new edges.
	detached map[Query]bool

	// queryTemplates maps a query to its template keys, for the counting
	// statistics of the collective utilities.
	queryTemplates map[Query][]string

	// engine, when non-nil and cfg.WeightByLikelihood is set, supplies
	// retrieval-model edge weights; otherwise edges weigh 1.
	engine Retriever

	// ops caches the push solver's materialized operator per mode, keyed
	// by Graph.Version: a persistent session graph that did not mutate
	// since the last solve (an Infer with no new pages, candidates or
	// fired queries) reuses the operator instead of rebuilding it.
	ops        [2]*graph.Operator
	opsVersion [2]uint64
}

func newGraphBuilder(cfg Config, rec types.Recognizer) *graphBuilder {
	return &graphBuilder{
		cfg:            cfg,
		rec:            rec,
		g:              graph.New(),
		pageNode:       make(map[corpus.PageID]graph.NodeID),
		queries:        make(map[Query]graph.NodeID),
		queryToks:      make(map[Query][]textproc.Token),
		templates:      make(map[string]graph.NodeID),
		queryTemplates: make(map[Query][]string),
	}
}

// addPage registers a page vertex (idempotent).
func (b *graphBuilder) addPage(p *corpus.Page) {
	if _, ok := b.pageNode[p.ID]; ok {
		return
	}
	id := b.g.AddNode(graph.KindPage)
	b.pageNode[p.ID] = id
	b.pages = append(b.pages, p)
}

// addQuery registers a query vertex (idempotent) along with its template
// vertices and query–template edges.
func (b *graphBuilder) addQuery(q Query) {
	if _, ok := b.queries[q]; ok {
		return
	}
	qid := b.g.AddNode(graph.KindQuery)
	b.queries[q] = qid
	b.queryList = append(b.queryList, q)
	toks := b.cfg.QueryTokens(q)
	b.queryToks[q] = toks
	if b.rec == nil {
		return
	}
	keys := templatesOf(toks, b.rec)
	b.queryTemplates[q] = keys
	for _, key := range keys {
		tid, ok := b.templates[key]
		if !ok {
			tid = b.g.AddNode(graph.KindTemplate)
			b.templates[key] = tid
		}
		b.g.AddEdgeQT(qid, tid, 1)
	}
}

// templateKeysOf returns the template keys abstracting a query.
func (b *graphBuilder) templateKeysOf(q Query) []string {
	return b.queryTemplates[q]
}

// edgeWeight is the page–query edge weight: 1 under containment
// semantics, or the retrieval model's per-token geometric-mean likelihood
// when likelihood weighting is on. Safe for concurrent use (the engine is
// concurrency-safe and page token caches are sync.Once-guarded).
func (b *graphBuilder) edgeWeight(p *corpus.Page, q Query) float64 {
	w := 1.0
	if b.cfg.WeightByLikelihood && b.engine != nil {
		toks := b.queryToks[q]
		if toks == nil {
			toks = b.cfg.QueryTokens(q)
		}
		ll := b.engine.QueryLikelihood(p, toks)
		w = math.Exp(ll / float64(len(toks)))
		if w <= 0 || math.IsNaN(w) {
			w = 1e-12
		}
	}
	return w
}

// addPQEdge connects a page and a query ("q can retrieve p").
func (b *graphBuilder) addPQEdge(p *corpus.Page, q Query) {
	b.g.AddEdgePQ(b.pageNode[p.ID], b.queries[q], b.edgeWeight(p, q))
}

// detachQuery retires a query from the graph (it was fired and left the
// candidate pool): every incident edge is removed, leaving the vertex
// isolated — which the fixpoint treats exactly as if it never existed.
func (b *graphBuilder) detachQuery(q Query) {
	id, ok := b.queries[q]
	if !ok || b.detached[q] {
		return
	}
	b.g.DetachQuery(id)
	if b.detached == nil {
		b.detached = make(map[Query]bool)
	}
	b.detached[q] = true
}

// connect adds page–query edges for the domain phase: each page connects to
// every registered query it contains (conjunctive containment).
func (b *graphBuilder) connect() {
	for _, p := range b.pages {
		for _, q := range b.queryList {
			if p.ContainsQuery(b.queryToks[q]) {
				b.addPQEdge(p, q)
			}
		}
	}
}

// regPair holds the page regularization vectors for both modes:
// P̂(p) = Y(p) (Eq. 11) and R̂(p) = Y(p)/ΣY (Eq. 12).
type regPair struct {
	precision []float64
	recall    []float64
}

// pageRegularization derives the regularization from a relevance function.
func (b *graphBuilder) pageRegularization(y func(*corpus.Page) bool) regPair {
	return b.pageRegularizationScored(func(p *corpus.Page) float64 {
		if y(p) {
			return 1
		}
		return 0
	})
}

// pageRegularizationScored is the paper's real-valued generalization of
// Eq. 11–12 (§I "more generally, Y can map a page to a real-valued
// relevance score"): P̂(p) = Y(p) clamped to [0,1], R̂(p) = Y(p)/Σ Y(p′).
// The binary case reduces to the familiar 1 and 1/|relevant|.
func (b *graphBuilder) pageRegularizationScored(score func(*corpus.Page) float64) regPair {
	n := b.g.NumNodes()
	pr := regPair{precision: make([]float64, n), recall: make([]float64, n)}
	total := 0.0
	for _, p := range b.pages {
		s := clamp01(score(p))
		pr.precision[b.pageNode[p.ID]] = s
		total += s
	}
	if total > 0 {
		for _, p := range b.pages {
			id := b.pageNode[p.ID]
			pr.recall[id] = pr.precision[id] / total
		}
	}
	return pr
}

// addTemplateReg adds λ·U_D(t) on template nodes to a copy of base
// (Eq. 21–22), pulling utilities from the given per-key map.
func (b *graphBuilder) addTemplateReg(base []float64, util map[string]float64, lambda float64) []float64 {
	out := make([]float64, len(base))
	copy(out, base)
	if util == nil {
		return out
	}
	for key, id := range b.templates {
		if u, ok := util[key]; ok {
			out[id] += lambda * u
		}
	}
	return out
}

// solve runs the fixpoint for one mode and regularization vector.
func (b *graphBuilder) solve(mode graph.Mode, reg []float64) ([]float64, error) {
	return b.solveWarm(mode, reg, nil)
}

// solveWarm is solve with an optional warm-start iterate x0 (the previous
// step's utilities; may be shorter than the grown graph — new nodes
// cold-start at their regularization). The fixpoint is unique, so x0
// affects convergence speed only.
func (b *graphBuilder) solveWarm(mode graph.Mode, reg, x0 []float64) ([]float64, error) {
	if b.cfg.UsePushSolver {
		if b.ops[mode] == nil || b.opsVersion[mode] != b.g.Version() {
			b.ops[mode] = graph.BuildOperator(b.g, mode)
			b.opsVersion[mode] = b.g.Version()
		}
		res, err := graph.PushSolve(graph.PushProblem{
			Op:    b.ops[mode],
			Alpha: b.cfg.Alpha,
			Reg:   reg,
			Eps:   b.cfg.SolverTol,
			X0:    x0,
		})
		if err != nil {
			return nil, err
		}
		return res.U, nil
	}
	scheme := graph.Jacobi
	if b.cfg.UseGaussSeidel {
		scheme = graph.GaussSeidel
	}
	res, err := graph.Solve(graph.Problem{
		G:       b.g,
		Mode:    mode,
		Alpha:   b.cfg.Alpha,
		Reg:     reg,
		Tol:     b.cfg.SolverTol,
		MaxIter: b.cfg.SolverMaxIter,
		Scheme:  scheme,
		X0:      x0,
	})
	if err != nil {
		return nil, err
	}
	return res.U, nil
}
