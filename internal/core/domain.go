package core

import (
	"fmt"
	"sort"

	"l2q/internal/corpus"
	"l2q/internal/graph"
	"l2q/internal/par"
	"l2q/internal/template"
	"l2q/internal/textproc"
	"l2q/internal/types"
)

// DomainModel is the output of the domain phase (§IV-B) for one aspect:
// template utilities learned once from peer entities, plus the auxiliary
// data the entity phase and the +q baselines need.
type DomainModel struct {
	Aspect corpus.Aspect

	// TemplateP and TemplateR are P_D(t) and R_D(t), keyed by canonical
	// template key. They become entity-phase regularization via λ
	// (Eq. 21–22).
	TemplateP map[string]float64
	TemplateR map[string]float64
	// TemplateRStar is template recall w.r.t. Y* (every page relevant),
	// needed by collective precision (§V-B) so the Y*-recall inference
	// is domain-regularized symmetrically to the Y-recall one.
	TemplateRStar map[string]float64

	// QueryRCount and QueryRStarCount are probability-scale counting
	// estimates for *transferable* domain queries (those occurring with
	// ≥2 domain entities): the fraction of relevant (resp. all) domain
	// pages containing the query. They are the first-choice prior for
	// the collective utilities; queries outside this map fall back to
	// the template-level prior below.
	QueryRCount     map[Query]float64
	QueryRStarCount map[Query]float64

	// TemplateRCount and TemplateRStarCount are *probability-scale*
	// counting estimates used by the collective utilities (§V):
	// the fraction of relevant (resp. all) domain pages containing at
	// least one query the template abstracts. Unlike the random-walk
	// masses above — which are diluted by mass-splitting across the
	// whole candidate set — these are direct estimates of
	// P(ω ∈ Ω(t) | ω ∈ Ω(Y)) and P(ω ∈ Ω(t)), so they can be combined
	// with R_E(Φ) in Eq. 26 without scale mismatch (see DESIGN.md).
	TemplateRCount     map[string]float64
	TemplateRStarCount map[string]float64

	// QueryP and QueryR are the domain queries' own utilities; the P+q /
	// R+q strategies consume them directly (and fail on entity
	// variation, which is the point of Fig. 10).
	QueryP map[Query]float64
	QueryR map[Query]float64

	// Candidates are domain queries occurring with at least
	// MinDomainEntityFrac of the domain entities, most frequent first;
	// the entity phase adds them to its candidate pool (§IV-C).
	Candidates []Query

	// RelFraction is the fraction of domain pages relevant to the
	// aspect — the domain's estimate of how common the aspect is, used
	// to size the target entity's relevant-page universe when
	// maintaining R_E(Φ).
	RelFraction float64

	// NumEntities and NumPages record the domain sample size.
	NumEntities int
	NumPages    int
}

// LearnDomain runs the domain phase: build the domain reinforcement graph
// over the pages of the given domain entities, solve precision and recall
// (plus Y*-recall), and package the template utilities.
//
// y materializes the aspect's relevance function (classifier output in the
// experiments). rec is the type system used to enumerate templates.
func LearnDomain(cfg Config, aspect corpus.Aspect, c *corpus.Corpus,
	domainEntities []corpus.EntityID, y func(*corpus.Page) bool,
	rec types.Recognizer) (*DomainModel, error) {
	return LearnDomainScored(cfg, aspect, c, domainEntities, y, nil, rec)
}

// LearnDomainScored is LearnDomain with the paper's real-valued relevance
// generalization (§I: "more generally, Y can map a page to a real-valued
// relevance score"): when score is non-nil it replaces the binary y in the
// utility regularization Eq. 11–12 (P̂(p) = score, R̂(p) = score/Σ). The
// binary y still materializes the counting statistics (relevant-page
// document frequencies, RelFraction) — those are set-cardinality notions.
// A {0,1}-valued score reproduces LearnDomain exactly.
//
// The DF/entity-DF counting pass is sharded over a bounded worker pool
// (Config.LearnWorkers) with a deterministic merge, and the per-page
// enumerations it produces are reused for edge building instead of
// re-sliding the n-gram window over every page a second time.
// LearnDomainReference retains the serial single-pass implementation;
// every worker count learns a model identical to it
// (TestLearnDomainMatchesReference).
func LearnDomainScored(cfg Config, aspect corpus.Aspect, c *corpus.Corpus,
	domainEntities []corpus.EntityID, y func(*corpus.Page) bool,
	score func(*corpus.Page) float64, rec types.Recognizer) (*DomainModel, error) {

	pages := domainPages(c, domainEntities)
	if len(pages) == 0 {
		return nil, fmt.Errorf("core: domain phase has no pages (%d entities)", len(domainEntities))
	}
	counts := countDomainParallel(cfg, pages, y)
	queries := surviveQueries(cfg, counts.pageDF)
	b := buildDomainGraph(cfg, rec, pages, queries, func(i int, _ *corpus.Page) []string {
		return counts.perPage[i]
	})
	return packageDomainModel(cfg, aspect, b, counts, pages, domainEntities, y, score)
}

// LearnDomainReference is the retained from-scratch domain phase: one
// serial counting pass followed by a full re-enumeration pass for edge
// building — the pre-parallel behavior, kept as the differential-testing
// ground truth (mirroring Session.CandidatesReference / InferReference).
func LearnDomainReference(cfg Config, aspect corpus.Aspect, c *corpus.Corpus,
	domainEntities []corpus.EntityID, y func(*corpus.Page) bool,
	score func(*corpus.Page) float64, rec types.Recognizer) (*DomainModel, error) {

	pages := domainPages(c, domainEntities)
	if len(pages) == 0 {
		return nil, fmt.Errorf("core: domain phase has no pages (%d entities)", len(domainEntities))
	}

	// Pass 1: count page-DF, relevant-page-DF and entity-DF per n-gram.
	ngCfg := cfg.ngramConfig(nil)
	counts := newDomainCounts()
	lastEntity := make(map[string]corpus.EntityID)
	for _, p := range pages {
		rel := y(p)
		if rel {
			counts.nRelPages++
		}
		for _, q := range textproc.NGrams(p.Tokens(), ngCfg) {
			counts.pageDF[q]++
			if rel {
				counts.relDF[q]++
			}
			if le, seen := lastEntity[q]; !seen || le != p.Entity {
				counts.entityDF[q]++
				lastEntity[q] = p.Entity
			}
		}
	}

	queries := surviveQueries(cfg, counts.pageDF)
	// Edges come from a second enumeration pass: page p connects to query
	// q iff q is one of p's own n-grams.
	b := buildDomainGraph(cfg, rec, pages, queries, func(_ int, p *corpus.Page) []string {
		return textproc.NGrams(p.Tokens(), ngCfg)
	})
	return packageDomainModel(cfg, aspect, b, counts, pages, domainEntities, y, score)
}

// domainPages gathers the domain split's pages in entity order.
func domainPages(c *corpus.Corpus, domainEntities []corpus.EntityID) []*corpus.Page {
	var pages []*corpus.Page
	for _, id := range domainEntities {
		pages = append(pages, c.PagesOf(id)...)
	}
	return pages
}

// domainCounts is the output of the domain phase's counting pass.
type domainCounts struct {
	pageDF    map[string]int
	relDF     map[string]int
	entityDF  map[string]int
	nRelPages int
	// perPage holds each page's enumeration, index-aligned with the page
	// stream, so edge building reuses pass 1's work instead of
	// re-enumerating. Nil on the reference path.
	perPage [][]string
}

func newDomainCounts() *domainCounts {
	return &domainCounts{
		pageDF:   make(map[string]int),
		relDF:    make(map[string]int),
		entityDF: make(map[string]int),
	}
}

// countDomainParallel shards the counting pass over entity runs: each
// worker counts a contiguous range of entity-page runs into local maps
// (the entity-DF "last entity" logic needs an entity's pages to stay
// whole, which runs guarantee), the merge sums integer counts — so the
// result is identical for every worker count. Page enumerations go
// through the per-page memo (corpus.Page.NGrams) and are retained for
// edge building.
func countDomainParallel(cfg Config, pages []*corpus.Page, y func(*corpus.Page) bool) *domainCounts {
	ngCfg := cfg.ngramConfig(nil)

	// Maximal runs of consecutive pages with the same entity. The page
	// stream is grouped per entity by construction, so runs ≈ entities.
	// Run-aligned shards keep the per-shard "last entity" logic exact —
	// an entity's pages never straddle a shard.
	var runStart []int
	runEntities := make(map[corpus.EntityID]struct{})
	duplicated := false
	for i, p := range pages {
		if i == 0 || p.Entity != pages[i-1].Entity {
			runStart = append(runStart, i)
			if _, dup := runEntities[p.Entity]; dup {
				duplicated = true
			}
			runEntities[p.Entity] = struct{}{}
		}
	}
	runStart = append(runStart, len(pages))
	nRuns := len(runStart) - 1

	workers := cfg.learnWorkers()
	if workers > nRuns {
		workers = nRuns
	}
	if workers < 1 || duplicated {
		// An entity appearing in more than one run (duplicate IDs in the
		// domain sample) makes the serial entity-DF count depend on
		// cross-run adjacency of each query's page subsequence — a global
		// property shards cannot reproduce. Count serially (enumeration
		// reuse still applies) so the result stays exactly the
		// reference's on every input.
		workers = 1
	}

	perPage := make([][]string, len(pages))
	locals := make([]*domainCounts, workers)
	par.For(workers, workers, func(w int) {
		local := newDomainCounts()
		lastEntity := make(map[string]corpus.EntityID)
		lo, hi := runStart[w*nRuns/workers], runStart[(w+1)*nRuns/workers]
		for i := lo; i < hi; i++ {
			p := pages[i]
			rel := y(p)
			if rel {
				local.nRelPages++
			}
			grams := p.NGrams(ngCfg)
			perPage[i] = grams // each index belongs to exactly one worker
			for _, q := range grams {
				local.pageDF[q]++
				if rel {
					local.relDF[q]++
				}
				if le, seen := lastEntity[q]; !seen || le != p.Entity {
					local.entityDF[q]++
					lastEntity[q] = p.Entity
				}
			}
		}
		locals[w] = local
	})

	if workers == 1 {
		locals[0].perPage = perPage
		return locals[0]
	}
	merged := newDomainCounts()
	merged.perPage = perPage
	for _, local := range locals {
		merged.nRelPages += local.nRelPages
		for q, n := range local.pageDF {
			merged.pageDF[q] += n
		}
		for q, n := range local.relDF {
			merged.relDF[q] += n
		}
		for q, n := range local.entityDF {
			merged.entityDF[q] += n
		}
	}
	return merged
}

// surviveQueries keeps the n-grams repeating across pages, in sorted
// (deterministic node) order.
func surviveQueries(cfg Config, pageDF map[string]int) []string {
	minDF := cfg.MinQueryPageDF
	if minDF < 1 {
		minDF = 1
	}
	queries := make([]string, 0, len(pageDF))
	for q, df := range pageDF {
		if df >= minDF {
			queries = append(queries, q)
		}
	}
	sort.Strings(queries)
	return queries
}

// buildDomainGraph assembles the domain reinforcement graph: page and
// query vertices, then page–query edges from each page's own enumeration
// (the entity phase uses conjunctive containment instead, because its
// candidate pool includes domain queries that are not n-grams of the
// current pages; here queries are generated from the pages, exactly as
// §III describes — "Q can be generated from P, such as by taking all
// n-grams in P as queries"). enum supplies page i's n-grams.
func buildDomainGraph(cfg Config, rec types.Recognizer, pages []*corpus.Page,
	queries []string, enum func(i int, p *corpus.Page) []string) *graphBuilder {

	b := newGraphBuilder(cfg, rec)
	for _, p := range pages {
		b.addPage(p)
	}
	for _, q := range queries {
		b.addQuery(Query(q))
	}
	for i, p := range pages {
		for _, qs := range enum(i, p) {
			if _, ok := b.queries[Query(qs)]; ok {
				b.addPQEdge(p, Query(qs))
			}
		}
	}
	return b
}

// packageDomainModel solves the three fixpoints over the assembled domain
// graph and packages the DomainModel: template/query utilities, the
// probability-scale counting statistics, and the §IV-C candidate pool.
func packageDomainModel(cfg Config, aspect corpus.Aspect, b *graphBuilder,
	counts *domainCounts, pages []*corpus.Page, domainEntities []corpus.EntityID,
	y func(*corpus.Page) bool, score func(*corpus.Page) float64) (*DomainModel, error) {

	var yReg regPair
	if score != nil {
		yReg = b.pageRegularizationScored(score)
	} else {
		yReg = b.pageRegularization(y)
	}
	prec, err := b.solve(graph.Precision, yReg.precision)
	if err != nil {
		return nil, err
	}
	rec1, err := b.solve(graph.Recall, yReg.recall)
	if err != nil {
		return nil, err
	}
	yStarReg := b.pageRegularization(func(*corpus.Page) bool { return true })
	recStar, err := b.solve(graph.Recall, yStarReg.recall)
	if err != nil {
		return nil, err
	}

	nRelPages := counts.nRelPages
	relDF, pageDF, entityDF := counts.relDF, counts.pageDF, counts.entityDF

	dm := &DomainModel{
		Aspect:             aspect,
		TemplateP:          make(map[string]float64, len(b.templates)),
		TemplateR:          make(map[string]float64, len(b.templates)),
		TemplateRStar:      make(map[string]float64, len(b.templates)),
		TemplateRCount:     make(map[string]float64, len(b.templates)),
		TemplateRStarCount: make(map[string]float64, len(b.templates)),
		QueryRCount:        make(map[Query]float64),
		QueryRStarCount:    make(map[Query]float64),
		QueryP:             make(map[Query]float64, len(b.queries)),
		QueryR:             make(map[Query]float64, len(b.queries)),
		NumEntities:        len(domainEntities),
		NumPages:           len(pages),
	}
	dm.RelFraction = float64(nRelPages) / float64(len(pages))
	for key, id := range b.templates {
		dm.TemplateP[key] = prec[id]
		dm.TemplateR[key] = rec1[id]
		dm.TemplateRStar[key] = recStar[id]
	}
	for q, id := range b.queries {
		dm.QueryP[q] = prec[id]
		dm.QueryR[q] = rec1[id]
	}

	// Probability-scale counting statistics per template: the *mean
	// per-instantiation* coverage over the template's member queries.
	// (Template-level coverage — "some 〈year〉 query appears" — would
	// wildly overestimate what one concrete query like "1980" retrieves;
	// the prior for an unseen query of template t is what a typical
	// member of t achieves.)
	type tAcc struct {
		sumRel, sumAll float64
		n              int
	}
	tacc := make(map[string]*tAcc, len(b.templates))
	for _, q := range b.queryList {
		for _, key := range b.templateKeysOf(q) {
			a := tacc[key]
			if a == nil {
				a = &tAcc{}
				tacc[key] = a
			}
			if nRelPages > 0 {
				a.sumRel += float64(relDF[string(q)]) / float64(nRelPages)
			}
			a.sumAll += float64(pageDF[string(q)]) / float64(len(pages))
			a.n++
		}
	}
	for key, a := range tacc {
		dm.TemplateRCount[key] = a.sumRel / float64(a.n)
		dm.TemplateRStarCount[key] = a.sumAll / float64(a.n)
	}

	// Query-level counting priors for transferable queries.
	for _, q := range b.queryList {
		if entityDF[string(q)] < 2 {
			continue
		}
		if nRelPages > 0 {
			dm.QueryRCount[q] = float64(relDF[string(q)]) / float64(nRelPages)
		}
		dm.QueryRStarCount[q] = float64(pageDF[string(q)]) / float64(len(pages))
	}

	// Candidate pool: domain queries frequent across entities (§IV-C:
	// "we restrict to queries that occur with at least 50 domain
	// entities"), most frequent first, capped.
	minEnt := int(cfg.MinDomainEntityFrac * float64(len(domainEntities)))
	if minEnt < 2 {
		minEnt = 2
	}
	type qc struct {
		q Query
		n int
	}
	var cands []qc
	for _, q := range b.queryList {
		if n := entityDF[string(q)]; n >= minEnt {
			cands = append(cands, qc{q: q, n: n})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n > cands[j].n
		}
		return cands[i].q < cands[j].q
	})
	maxC := cfg.MaxDomainCandidates
	if maxC <= 0 {
		maxC = 300
	}
	if len(cands) > maxC {
		cands = cands[:maxC]
	}
	dm.Candidates = make([]Query, len(cands))
	for i, c := range cands {
		dm.Candidates[i] = c.q
	}
	return dm, nil
}

// TopQueriesByP returns the n domain queries with the highest precision
// utility (for the P+q strategy), most useful first.
func (dm *DomainModel) TopQueriesByP(n int) []Query { return topQueries(dm.QueryP, n) }

// TopQueriesByR returns the n domain queries with the highest recall
// utility (for the R+q strategy), most useful first.
func (dm *DomainModel) TopQueriesByR(n int) []Query { return topQueries(dm.QueryR, n) }

func topQueries(m map[Query]float64, n int) []Query {
	qs := make([]Query, 0, len(m))
	for q := range m {
		qs = append(qs, q)
	}
	sort.Slice(qs, func(i, j int) bool {
		if m[qs[i]] != m[qs[j]] {
			return m[qs[i]] > m[qs[j]]
		}
		return qs[i] < qs[j]
	})
	if n < len(qs) {
		qs = qs[:n]
	}
	return qs
}

// templatesOf enumerates the canonical template keys of a query's token
// sequence under rec.
func templatesOf(toks []textproc.Token, rec types.Recognizer) []string {
	return template.EnumerateKeys(toks, rec)
}
