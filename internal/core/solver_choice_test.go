package core

import (
	"reflect"
	"testing"

	"l2q/internal/synth"
)

// TestSolverChoiceInvariance verifies that the three fixpoint solvers —
// Jacobi (the paper's), Gauss–Seidel, and residual push — lead to the same
// query selections end to end: the solver is an efficiency knob, never a
// behavior knob.
func TestSolverChoiceInvariance(t *testing.T) {
	f := newFixture(t)

	run := func(mutate func(*Config)) []Query {
		cfg := DefaultConfig()
		cfg.Tokenizer = f.g.Tokenizer
		mutate(&cfg)
		dm, err := LearnDomain(cfg, synth.AspResearch, f.g.Corpus, f.domain, f.y, f.rec)
		if err != nil {
			t.Fatal(err)
		}
		s := NewSession(cfg, f.engine, f.target, synth.AspResearch, f.y, dm, f.rec, 42)
		return s.Run(NewL2QBAL(), 3)
	}

	jacobi := run(func(*Config) {})
	gauss := run(func(c *Config) { c.UseGaussSeidel = true })
	push := run(func(c *Config) { c.UsePushSolver = true; c.SolverTol = 1e-12 })

	if len(jacobi) == 0 {
		t.Fatal("no queries selected")
	}
	if !reflect.DeepEqual(jacobi, gauss) {
		t.Errorf("Gauss–Seidel selected %v, Jacobi %v", gauss, jacobi)
	}
	if !reflect.DeepEqual(jacobi, push) {
		t.Errorf("push solver selected %v, Jacobi %v", push, jacobi)
	}
}
