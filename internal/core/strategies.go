package core

import "math"

// The strategies of §VI-B/§VI-C. Constructors return stateless Selectors
// (safe to reuse across sessions):
//
//	RND          random candidate (reference point)
//	P, R         basic utility inference, no domain, no context (§III)
//	P+q, R+q     best domain *queries* used directly (entity-variation foil)
//	P+t, R+t     domain-aware via templates, no context (§IV)
//	L2QP, L2QR   full: domain + context aware (§V)
//	L2QBAL       geometric mean of collective P and R (§VI-C)

// NewRND returns the random-selection reference strategy.
func NewRND() Selector { return rndSelector{} }

type rndSelector struct{}

func (rndSelector) Name() string { return "RND" }

func (rndSelector) Select(s *Session) (Selection, bool) {
	cands := s.candidateQueries(s.DM != nil)
	if len(cands) == 0 {
		return Selection{}, false
	}
	return Selection{Query: cands[s.rng.IntN(len(cands))]}, true
}

// utilitySelector covers P, R, P+t, R+t, L2QP, L2QR and L2QBAL via flags.
type utilitySelector struct {
	name       string
	templates  bool // domain-aware
	collective bool // context-aware
	score      func(inf *Inference, i int) float64
}

func (u utilitySelector) Name() string { return u.name }

func (u utilitySelector) Select(s *Session) (Selection, bool) {
	inf, err := s.Infer(InferOptions{
		UseTemplates:        u.templates,
		UseDomainCandidates: u.templates,
		Collective:          u.collective,
	})
	if err != nil || len(inf.Queries) == 0 {
		return Selection{}, false
	}
	scores := make([]float64, len(inf.Queries))
	for i := range scores {
		scores[i] = u.score(inf, i)
	}
	best := inf.ArgMax(scores)
	if best < 0 {
		return Selection{}, false
	}
	return Selection{Query: inf.Queries[best]}, true
}

// NewP returns the precision-optimizing basic strategy (no domain, no
// context).
func NewP() Selector {
	return utilitySelector{name: "P", score: func(inf *Inference, i int) float64 { return inf.P[i] }}
}

// NewR returns the recall-optimizing basic strategy.
func NewR() Selector {
	return utilitySelector{name: "R", score: func(inf *Inference, i int) float64 { return inf.R[i] }}
}

// NewPT returns P+t: domain-aware via templates, not context-aware.
func NewPT() Selector {
	return utilitySelector{name: "P+t", templates: true,
		score: func(inf *Inference, i int) float64 { return inf.P[i] }}
}

// NewRT returns R+t: domain-aware via templates, not context-aware.
func NewRT() Selector {
	return utilitySelector{name: "R+t", templates: true,
		score: func(inf *Inference, i int) float64 { return inf.R[i] }}
}

// NewL2QP returns the full precision-optimizing approach (domain + context).
func NewL2QP() Selector {
	return utilitySelector{name: "L2QP", templates: true, collective: true,
		score: func(inf *Inference, i int) float64 { return inf.CollP[i] }}
}

// NewL2QR returns the full recall-optimizing approach.
func NewL2QR() Selector {
	return utilitySelector{name: "L2QR", templates: true, collective: true,
		score: func(inf *Inference, i int) float64 { return inf.CollR[i] }}
}

// NewL2QBAL returns the balanced strategy: geometric mean of collective
// precision and recall (§VI-C; the harmonic mean is avoided because the
// probabilistic utilities have incomparable scales).
func NewL2QBAL() Selector {
	return utilitySelector{name: "L2QBAL", templates: true, collective: true,
		score: func(inf *Inference, i int) float64 {
			p, r := inf.CollP[i], inf.CollR[i]
			if p <= 0 || r <= 0 {
				return 0
			}
			return math.Sqrt(p * r)
		}}
}

// NewL2QWeighted generalizes L2QBAL with a precision weight β ∈ (0,1):
// score = CollP^β · CollR^(1−β). The paper leaves "a more thorough and
// principled approach" to combining the two utilities as future work
// (§VI-C); this strategy is that extension — β = 0.5 recovers L2QBAL,
// larger β trades recall for precision.
func NewL2QWeighted(beta float64) Selector {
	if beta <= 0 || beta >= 1 {
		beta = 0.5
	}
	return utilitySelector{
		name: "L2QW", templates: true, collective: true,
		score: func(inf *Inference, i int) float64 {
			p, r := inf.CollP[i], inf.CollR[i]
			if p <= 0 || r <= 0 {
				return 0
			}
			return math.Pow(p, beta) * math.Pow(r, 1-beta)
		}}
}

// domainQuerySelector implements P+q / R+q: fire the domain's individually
// best queries in order, exposing entity variation (§VI-B, Fig. 10).
type domainQuerySelector struct {
	name string
	byR  bool
}

func (d domainQuerySelector) Name() string { return d.name }

func (d domainQuerySelector) Select(s *Session) (Selection, bool) {
	if s.DM == nil {
		return Selection{}, false
	}
	var ranked []Query
	if d.byR {
		ranked = s.DM.TopQueriesByR(len(s.DM.QueryR))
	} else {
		ranked = s.DM.TopQueriesByP(len(s.DM.QueryP))
	}
	for _, q := range ranked {
		if _, fired := s.firedSet[q]; !fired {
			return Selection{Query: q}, true
		}
	}
	return Selection{}, false
}

// NewPQ returns P+q: domain queries ranked by precision, fired directly.
func NewPQ() Selector { return domainQuerySelector{name: "P+q"} }

// NewRQ returns R+q: domain queries ranked by recall, fired directly.
func NewRQ() Selector { return domainQuerySelector{name: "R+q", byR: true} }
