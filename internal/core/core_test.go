package core

import (
	"math"
	"testing"

	"l2q/internal/classify"
	"l2q/internal/corpus"
	"l2q/internal/search"
	"l2q/internal/synth"
	"l2q/internal/types"
)

// fixture bundles everything a core test needs: a small researcher corpus,
// a search engine, a recognizer chain and a trained domain model for
// RESEARCH.
type fixture struct {
	g      *synth.Generated
	engine *search.Engine
	rec    types.Recognizer
	y      func(*corpus.Page) bool
	dm     *DomainModel
	domain []corpus.EntityID
	target *corpus.Entity
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	idx := search.BuildIndex(g.Corpus.Pages)
	engine := search.NewEngine(idx)
	rec := types.Chain{g.KB, types.NewRegexRecognizer()}

	// First half of the entities are the domain; the target is the last.
	n := g.Corpus.NumEntities()
	var domain []corpus.EntityID
	for i := 0; i < n/2; i++ {
		domain = append(domain, g.Corpus.Entities[i].ID)
	}
	aspect := synth.AspResearch
	y := func(p *corpus.Page) bool { return classify.GroundTruth(p, aspect) }

	cfg := DefaultConfig()
	cfg.Tokenizer = g.Tokenizer
	dm, err := LearnDomain(cfg, aspect, g.Corpus, domain, y, rec)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		g:      g,
		engine: engine,
		rec:    rec,
		y:      y,
		dm:     dm,
		domain: domain,
		target: g.Corpus.Entities[n-1],
	}
}

func (f *fixture) session(dm *DomainModel) *Session {
	cfg := DefaultConfig()
	cfg.Tokenizer = f.g.Tokenizer
	return NewSession(cfg, f.engine, f.target, synth.AspResearch, f.y, dm, f.rec, 42)
}

func TestQueryTokensRoundTripsPhrases(t *testing.T) {
	f := newFixture(t)
	cfg := DefaultConfig()
	cfg.Tokenizer = f.g.Tokenizer
	toks := cfg.QueryTokens(Query("data mining papers"))
	if len(toks) != 2 || toks[0] != "data mining" || toks[1] != "papers" {
		t.Fatalf("phrase token shattered: %v", toks)
	}
	// Without a tokenizer the fallback splits naively.
	plain := DefaultConfig().QueryTokens(Query("a b"))
	if len(plain) != 2 {
		t.Fatalf("fallback split wrong: %v", plain)
	}
}

func TestLearnDomainProducesTemplates(t *testing.T) {
	f := newFixture(t)
	if len(f.dm.TemplateP) == 0 {
		t.Fatal("no template utilities learned")
	}
	if len(f.dm.Candidates) == 0 {
		t.Fatal("no domain candidate queries")
	}
	if f.dm.NumPages == 0 || f.dm.NumEntities == 0 {
		t.Fatal("sample bookkeeping empty")
	}
	// The RESEARCH grammar guarantees "〈topic〉 research"-style templates;
	// at least one template containing 〈topic〉 must carry positive
	// precision utility.
	found := false
	for key, p := range f.dm.TemplateP {
		if p > 0 && containsTopic(key) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no 〈topic〉 template with positive precision")
	}
	// Every template must have all three utilities populated.
	for key := range f.dm.TemplateP {
		if _, ok := f.dm.TemplateR[key]; !ok {
			t.Fatalf("template %q missing recall", key)
		}
		if _, ok := f.dm.TemplateRStar[key]; !ok {
			t.Fatalf("template %q missing Y* recall", key)
		}
	}
}

func containsTopic(key string) bool {
	tmpl := "〈topic〉"
	for i := 0; i+len(tmpl) <= len(key); i++ {
		if key[i:i+len(tmpl)] == tmpl {
			return true
		}
	}
	return false
}

func TestLearnDomainValidation(t *testing.T) {
	f := newFixture(t)
	cfg := DefaultConfig()
	if _, err := LearnDomain(cfg, synth.AspResearch, f.g.Corpus, nil, f.y, f.rec); err == nil {
		t.Error("empty domain accepted")
	}
}

func TestBootstrapRetrievesOwnPages(t *testing.T) {
	f := newFixture(t)
	s := f.session(f.dm)
	n := s.Bootstrap()
	if n == 0 {
		t.Fatal("seed query retrieved nothing")
	}
	for _, p := range s.Pages() {
		if p.Entity != f.target.ID {
			t.Fatalf("seed retrieved foreign page (entity %d)", p.Entity)
		}
	}
	if again := s.Bootstrap(); again != 0 {
		t.Fatal("Bootstrap not idempotent")
	}
}

func TestInferBasicUtilities(t *testing.T) {
	f := newFixture(t)
	s := f.session(nil) // no domain model
	s.Bootstrap()
	inf, err := s.Infer(InferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(inf.Queries) == 0 {
		t.Fatal("no candidates")
	}
	if len(inf.P) != len(inf.Queries) || len(inf.R) != len(inf.Queries) {
		t.Fatal("utility slices misaligned")
	}
	for i := range inf.Queries {
		if math.IsNaN(inf.P[i]) || math.IsNaN(inf.R[i]) || inf.P[i] < 0 || inf.R[i] < 0 {
			t.Fatalf("bad utility for %q: P=%f R=%f", inf.Queries[i], inf.P[i], inf.R[i])
		}
		if inf.P[i] > 1+1e-9 {
			t.Fatalf("precision above 1 without λ-regularization: %f", inf.P[i])
		}
	}
	if inf.CollP != nil {
		t.Fatal("collective utilities computed without request")
	}
}

func TestInferCollectiveBounds(t *testing.T) {
	f := newFixture(t)
	s := f.session(f.dm)
	s.Bootstrap()
	inf, err := s.Infer(InferOptions{UseTemplates: true, UseDomainCandidates: true, Collective: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(inf.CollR) != len(inf.Queries) {
		t.Fatal("collective slices misaligned")
	}
	rPhi := s.RPhi()
	for i := range inf.Queries {
		// Collective recall is a probability and can never fall below
		// the novelty floor R(Φ)·(1−R^(Ỹ)(q)) ≥ 0.
		if inf.CollR[i] < -1e-12 || inf.CollR[i] > 1+1e-12 {
			t.Fatalf("CollR %f outside [0,1]", inf.CollR[i])
		}
		if inf.CollRStar[i] < -1e-12 || inf.CollRStar[i] > 1+1e-12 {
			t.Fatalf("CollRStar %f outside [0,1]", inf.CollRStar[i])
		}
		// Adding a query never loses already-gathered coverage: the
		// candidate that covers nothing still leaves R(Φ) intact.
		if inf.CollR[i] > 0 && inf.CollR[i] < rPhi-1e-9 && inf.CollRStar[i] >= 1 {
			t.Fatalf("CollR %f dropped below R(Φ)=%f", inf.CollR[i], rPhi)
		}
		if inf.CollP[i] < 0 || math.IsNaN(inf.CollP[i]) {
			t.Fatalf("bad CollP %f", inf.CollP[i])
		}
	}
}

func TestDomainCandidatesExtendPool(t *testing.T) {
	f := newFixture(t)
	s := f.session(f.dm)
	s.Bootstrap()
	without := s.candidateQueries(false)
	with := s.candidateQueries(true)
	if len(with) <= len(without) {
		t.Fatalf("domain candidates did not extend pool: %d vs %d", len(with), len(without))
	}
}

func TestAllStrategiesRun(t *testing.T) {
	f := newFixture(t)
	sels := []Selector{
		NewRND(), NewP(), NewR(), NewPQ(), NewRQ(),
		NewPT(), NewRT(), NewL2QP(), NewL2QR(), NewL2QBAL(),
	}
	for _, sel := range sels {
		s := f.session(f.dm)
		fired := s.Run(sel, 3)
		if len(fired) != 3 {
			t.Errorf("%s fired %d queries, want 3", sel.Name(), len(fired))
			continue
		}
		seen := map[Query]struct{}{}
		for _, q := range fired {
			if _, dup := seen[q]; dup {
				t.Errorf("%s fired duplicate query %q", sel.Name(), q)
			}
			seen[q] = struct{}{}
		}
		if len(s.Pages()) == 0 {
			t.Errorf("%s gathered no pages", sel.Name())
		}
	}
}

func TestStrategyNames(t *testing.T) {
	want := map[string]Selector{
		"RND": NewRND(), "P": NewP(), "R": NewR(), "P+q": NewPQ(), "R+q": NewRQ(),
		"P+t": NewPT(), "R+t": NewRT(), "L2QP": NewL2QP(), "L2QR": NewL2QR(),
		"L2QBAL": NewL2QBAL(),
	}
	for name, sel := range want {
		if sel.Name() != name {
			t.Errorf("Name() = %q, want %q", sel.Name(), name)
		}
	}
}

func TestDomainQueryStrategyNeedsDomain(t *testing.T) {
	f := newFixture(t)
	s := f.session(nil)
	s.Bootstrap()
	if _, ok := NewPQ().Select(s); ok {
		t.Fatal("P+q selected without a domain model")
	}
}

func TestL2QPDeterministic(t *testing.T) {
	f := newFixture(t)
	a := f.session(f.dm).Run(NewL2QP(), 3)
	b := f.session(f.dm).Run(NewL2QP(), 3)
	if len(a) != len(b) {
		t.Fatal("run lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic selection: %v vs %v", a, b)
		}
	}
}

func TestCollectiveStateAdvances(t *testing.T) {
	f := newFixture(t)
	s := f.session(f.dm)
	s.Bootstrap()
	before := s.RPhi()
	if _, ok := s.Step(NewL2QR()); !ok {
		t.Fatal("step failed")
	}
	after := s.RPhi()
	if after < before-1e-12 {
		t.Fatalf("R(Φ) decreased after adding a query: %f → %f", before, after)
	}
}

func TestStepSkipsExhaustedSelector(t *testing.T) {
	f := newFixture(t)
	s := f.session(f.dm)
	s.Bootstrap()
	// Exhaust P+q by marking every ranked domain query as fired.
	for _, q := range f.dm.TopQueriesByP(len(f.dm.QueryP)) {
		s.firedSet[q] = struct{}{}
	}
	if _, ok := s.Step(NewPQ()); ok {
		t.Fatal("exhausted selector still selected")
	}
}

func TestFireTracksContext(t *testing.T) {
	f := newFixture(t)
	s := f.session(f.dm)
	s.Bootstrap()
	nPages := len(s.Pages())
	s.Fire(Query("parallel computing"))
	if len(s.Fired()) != 1 || s.Fired()[0] != "parallel computing" {
		t.Fatalf("Fired = %v", s.Fired())
	}
	if len(s.Pages()) < nPages {
		t.Fatal("pages shrank")
	}
	if s.SelectionTime() != 0 {
		t.Fatal("Fire must not account selection time")
	}
}

func TestTopQueriesOrdering(t *testing.T) {
	f := newFixture(t)
	top := f.dm.TopQueriesByP(10)
	if len(top) == 0 {
		t.Fatal("no top queries")
	}
	for i := 1; i < len(top); i++ {
		if f.dm.QueryP[top[i-1]] < f.dm.QueryP[top[i]] {
			t.Fatal("TopQueriesByP not sorted")
		}
	}
	topR := f.dm.TopQueriesByR(5)
	if len(topR) > 5 {
		t.Fatal("TopQueriesByR cap ignored")
	}
}
