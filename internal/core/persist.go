package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"l2q/internal/corpus"
)

// The domain phase runs once per (domain, aspect) and is the expensive
// part of L2Q (Fig. 14 note: "the efficiency of the domain phase is not of
// primary concern, as it is only executed once") — which is precisely why
// a deployment wants to persist its output. WriteGob/ReadDomainModel
// round-trip the learned model.

// wireDomainModel decouples the wire format from the in-memory struct.
type wireDomainModel struct {
	Aspect             string
	TemplateP          map[string]float64
	TemplateR          map[string]float64
	TemplateRStar      map[string]float64
	TemplateRCount     map[string]float64
	TemplateRStarCount map[string]float64
	QueryRCount        map[string]float64
	QueryRStarCount    map[string]float64
	QueryP             map[string]float64
	QueryR             map[string]float64
	Candidates         []string
	RelFraction        float64
	NumEntities        int
	NumPages           int
}

// WriteGob serializes the domain model.
func (dm *DomainModel) WriteGob(w io.Writer) error {
	wm := wireDomainModel{
		Aspect:             string(dm.Aspect),
		TemplateP:          dm.TemplateP,
		TemplateR:          dm.TemplateR,
		TemplateRStar:      dm.TemplateRStar,
		TemplateRCount:     dm.TemplateRCount,
		TemplateRStarCount: dm.TemplateRStarCount,
		QueryRCount:        queryMapToString(dm.QueryRCount),
		QueryRStarCount:    queryMapToString(dm.QueryRStarCount),
		QueryP:             queryMapToString(dm.QueryP),
		QueryR:             queryMapToString(dm.QueryR),
		RelFraction:        dm.RelFraction,
		NumEntities:        dm.NumEntities,
		NumPages:           dm.NumPages,
	}
	for _, q := range dm.Candidates {
		wm.Candidates = append(wm.Candidates, string(q))
	}
	if err := gob.NewEncoder(w).Encode(wm); err != nil {
		return fmt.Errorf("core: encode domain model: %w", err)
	}
	return nil
}

// ReadDomainModel deserializes a model written by WriteGob.
func ReadDomainModel(r io.Reader) (*DomainModel, error) {
	var wm wireDomainModel
	if err := gob.NewDecoder(r).Decode(&wm); err != nil {
		return nil, fmt.Errorf("core: decode domain model: %w", err)
	}
	dm := &DomainModel{
		Aspect:             corpus.Aspect(wm.Aspect),
		TemplateP:          wm.TemplateP,
		TemplateR:          wm.TemplateR,
		TemplateRStar:      wm.TemplateRStar,
		TemplateRCount:     wm.TemplateRCount,
		TemplateRStarCount: wm.TemplateRStarCount,
		QueryRCount:        stringMapToQuery(wm.QueryRCount),
		QueryRStarCount:    stringMapToQuery(wm.QueryRStarCount),
		QueryP:             stringMapToQuery(wm.QueryP),
		QueryR:             stringMapToQuery(wm.QueryR),
		RelFraction:        wm.RelFraction,
		NumEntities:        wm.NumEntities,
		NumPages:           wm.NumPages,
	}
	for _, q := range wm.Candidates {
		dm.Candidates = append(dm.Candidates, Query(q))
	}
	return dm, nil
}

func queryMapToString(m map[Query]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[string(k)] = v
	}
	return out
}

func stringMapToQuery(m map[string]float64) map[Query]float64 {
	out := make(map[Query]float64, len(m))
	for k, v := range m {
		out[Query(k)] = v
	}
	return out
}
