package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"l2q/internal/search"
	"l2q/internal/textproc"
)

// blockingRetriever is a remote-shaped engine: every search blocks until
// the context is canceled (as a hung HTTP fetch would), like a
// webapi.Client with a dead server.
type blockingRetriever struct {
	Retriever
}

func (r blockingRetriever) SearchWithSeedErr(ctx context.Context, _, _ []textproc.Token) ([]search.Result, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// erroringRetriever fails every search with a fixed error.
type erroringRetriever struct {
	Retriever
	err error
}

func (r erroringRetriever) SearchWithSeedErr(context.Context, []textproc.Token, []textproc.Token) ([]search.Result, error) {
	return nil, r.err
}

// TestRunCtxMatchesRun: with an in-process engine (which cannot fail),
// RunCtx fires exactly what Run fires.
func TestRunCtxMatchesRun(t *testing.T) {
	f := newFixture(t)
	ref := f.session(f.dm)
	want := ref.Run(NewL2QBAL(), 3)

	s := f.session(f.dm)
	got, err := s.RunCtx(context.Background(), NewL2QBAL(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RunCtx fired %v, Run fired %v", got, want)
	}
}

// TestRunCtxCancel is the satellite's point: Session.Run fetched through
// the errorless FetchQuery, so a single-session harvest ignored
// cancellation entirely. RunCtx must return promptly when the context is
// canceled mid-fetch, without recording the aborted query in Φ.
func TestRunCtxCancel(t *testing.T) {
	f := newFixture(t)
	s := f.session(f.dm)
	s.Engine = blockingRetriever{Retriever: f.engine}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	fired, err := s.RunCtx(ctx, NewL2QBAL(), 5)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("RunCtx returned %v after cancellation", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(fired) != 0 || len(s.Fired()) != 0 {
		t.Errorf("aborted harvest recorded queries: %v", s.Fired())
	}
}

// TestStepCtxErrorKeepsQueryOutOfPhi: a terminal transport failure must
// not poison the context Φ — the query was never answered, so a resumed
// session may retry it.
func TestStepCtxErrorKeepsQueryOutOfPhi(t *testing.T) {
	f := newFixture(t)
	s := f.session(f.dm)
	s.Bootstrap() // boot through the healthy engine first
	sentinel := errors.New("transport down")
	s.Engine = erroringRetriever{Retriever: f.engine, err: sentinel}

	_, _, err := s.StepCtx(context.Background(), NewL2QBAL())
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the transport error", err)
	}
	if len(s.Fired()) != 0 {
		t.Errorf("failed fetch recorded in Φ: %v", s.Fired())
	}
}
