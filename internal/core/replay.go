package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"l2q/internal/corpus"
)

// Checkpoint is the durable state of a harvesting session: everything
// needed to resume after a restart. Because retrieval over a fixed corpus
// is deterministic, the context Φ (the fired queries, in order) fully
// determines the gathered page set — so a checkpoint is tiny and resuming
// is an exact replay, not an approximation. Gathered page IDs and the
// collective-recall anchors are recorded for verification only: a replay
// that reproduces Φ but lands on different pages or a different R_E(Φ)
// means the corpus, engine, or model configuration changed under the
// checkpoint, and Resume fails loudly instead of silently corrupting the
// context model.
type Checkpoint struct {
	// Entity and Aspect identify the session.
	Entity corpus.EntityID `json:"entity"`
	Aspect corpus.Aspect   `json:"aspect"`
	// Booted records whether the seed results were ingested. A snapshot
	// taken mid-bootstrap (session created, seed not yet ingested) is
	// valid and resumes as a fresh start.
	Booted bool `json:"booted,omitempty"`
	// Fired is the ordered context Φ (excluding the implicit seed).
	Fired []Query `json:"fired"`
	// PageIDs are the gathered pages at checkpoint time, in order.
	PageIDs []corpus.PageID `json:"pageIds"`
	// RPhi and RStarPhi anchor the collective recalls R_E(Φ) and R*_E(Φ)
	// at snapshot time; Resume replay-verifies against them.
	RPhi     float64 `json:"rPhi,omitempty"`
	RStarPhi float64 `json:"rStarPhi,omitempty"`
}

// Snapshot captures the session's durable state. It is valid in every
// session state, including mid-bootstrap (before the seed ingest).
func (s *Session) Snapshot() Checkpoint {
	cp := Checkpoint{
		Entity:   s.Entity.ID,
		Aspect:   s.Aspect,
		Booted:   s.bootOnce,
		Fired:    append([]Query(nil), s.fired...),
		RPhi:     s.rPhi,
		RStarPhi: s.rStarPhi,
	}
	for _, p := range s.pages {
		cp.PageIDs = append(cp.PageIDs, p.ID)
	}
	return cp
}

// Encode serializes the checkpoint as JSON. internal/store provides the
// compact framed binary codec for checkpoint files (store.SaveCheckpoints).
func (cp Checkpoint) Encode(w io.Writer) error {
	if err := json.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpoint deserializes a checkpoint written by Encode.
func ReadCheckpoint(r io.Reader) (Checkpoint, error) {
	var cp Checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return cp, fmt.Errorf("core: read checkpoint: %w", err)
	}
	return cp, nil
}

// booted reports whether the checkpointed session had ingested its seed.
// Checkpoints written before the Booted field existed imply it from the
// recorded state (a session with fired queries or pages must have booted).
func (cp Checkpoint) booted() bool {
	return cp.Booted || len(cp.Fired) > 0 || len(cp.PageIDs) > 0
}

// anchorTol bounds the replay drift of the verification anchors. The
// replay recomputes R_E(Φ) with the same float operations in the same
// order, so anything beyond rounding noise means real divergence.
const anchorTol = 1e-9

// Resume replays a checkpoint into a fresh session: it bootstraps, fires
// the checkpointed queries in order, and verifies the gathered pages and
// the R_E(Φ)/R*_E(Φ) anchors match the recorded values (a mismatch means
// the corpus, engine or configuration changed under the checkpoint, which
// would silently corrupt the context model — better to fail loudly). The
// session must be newly created with the same configuration, engine,
// entity, aspect, Y, domain model and recognizer. A mid-bootstrap
// checkpoint (Booted false, nothing fired) resumes as a valid fresh
// session without firing the seed — the next Step or the pipeline
// scheduler bootstraps it.
func (s *Session) Resume(cp Checkpoint) error {
	if s.bootOnce {
		return s.Errorf("resume into a used session")
	}
	if cp.Entity != s.Entity.ID || cp.Aspect != s.Aspect {
		return s.Errorf("checkpoint is for entity %d aspect %s", cp.Entity, cp.Aspect)
	}
	if !cp.booted() {
		return nil // mid-bootstrap snapshot: nothing to replay
	}
	s.Bootstrap()
	for _, q := range cp.Fired {
		s.Fire(q)
	}
	s.updateContext()
	if len(s.pages) != len(cp.PageIDs) {
		return s.Errorf("replay gathered %d pages, checkpoint has %d (corpus changed?)",
			len(s.pages), len(cp.PageIDs))
	}
	for i, p := range s.pages {
		if p.ID != cp.PageIDs[i] {
			return s.Errorf("replay page %d is %d, checkpoint has %d (corpus changed?)",
				i, p.ID, cp.PageIDs[i])
		}
	}
	// Anchor verification. Zero anchors are skipped: checkpoints written
	// before the fields existed carry none, and a genuinely-zero recall
	// is implied by the (already verified) page replay.
	if cp.RPhi != 0 && math.Abs(s.rPhi-cp.RPhi) > anchorTol {
		return s.Errorf("replay R_E(Φ) %.12f, checkpoint has %.12f (model changed?)", s.rPhi, cp.RPhi)
	}
	if cp.RStarPhi != 0 && math.Abs(s.rStarPhi-cp.RStarPhi) > anchorTol {
		return s.Errorf("replay R*_E(Φ) %.12f, checkpoint has %.12f (model changed?)", s.rStarPhi, cp.RStarPhi)
	}
	return nil
}
