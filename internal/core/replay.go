package core

import (
	"encoding/json"
	"fmt"
	"io"

	"l2q/internal/corpus"
)

// Checkpoint is the durable state of a harvesting session: everything
// needed to resume after a restart. Because retrieval over a fixed corpus
// is deterministic, the context Φ (the fired queries, in order) fully
// determines the gathered page set — so a checkpoint is tiny and resuming
// is an exact replay, not an approximation. Gathered page IDs are recorded
// for verification only.
type Checkpoint struct {
	// Entity and Aspect identify the session.
	Entity corpus.EntityID `json:"entity"`
	Aspect corpus.Aspect   `json:"aspect"`
	// Fired is the ordered context Φ (excluding the implicit seed).
	Fired []Query `json:"fired"`
	// PageIDs are the gathered pages at checkpoint time, in order.
	PageIDs []corpus.PageID `json:"pageIds"`
}

// Snapshot captures the session's durable state. The session must have
// been bootstrapped (a snapshot of an unbooted session is empty but valid).
func (s *Session) Snapshot() Checkpoint {
	cp := Checkpoint{
		Entity: s.Entity.ID,
		Aspect: s.Aspect,
		Fired:  append([]Query(nil), s.fired...),
	}
	for _, p := range s.pages {
		cp.PageIDs = append(cp.PageIDs, p.ID)
	}
	return cp
}

// Encode serializes the checkpoint as JSON.
func (cp Checkpoint) Encode(w io.Writer) error {
	if err := json.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpoint deserializes a checkpoint written by Encode.
func ReadCheckpoint(r io.Reader) (Checkpoint, error) {
	var cp Checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return cp, fmt.Errorf("core: read checkpoint: %w", err)
	}
	return cp, nil
}

// Resume replays a checkpoint into a fresh session: it bootstraps, fires
// the checkpointed queries in order, and verifies the gathered pages match
// the recorded IDs (a mismatch means the corpus or engine changed under
// the checkpoint, which would silently corrupt the context model — better
// to fail loudly). The session must be newly created with the same
// configuration, engine, entity, aspect, Y, domain model and recognizer.
func (s *Session) Resume(cp Checkpoint) error {
	if s.bootOnce {
		return s.Errorf("resume into a used session")
	}
	if cp.Entity != s.Entity.ID || cp.Aspect != s.Aspect {
		return s.Errorf("checkpoint is for entity %d aspect %s", cp.Entity, cp.Aspect)
	}
	s.Bootstrap()
	for _, q := range cp.Fired {
		s.Fire(q)
	}
	s.updateContext()
	if len(s.pages) != len(cp.PageIDs) {
		return s.Errorf("replay gathered %d pages, checkpoint has %d (corpus changed?)",
			len(s.pages), len(cp.PageIDs))
	}
	for i, p := range s.pages {
		if p.ID != cp.PageIDs[i] {
			return s.Errorf("replay page %d is %d, checkpoint has %d (corpus changed?)",
				i, p.ID, cp.PageIDs[i])
		}
	}
	return nil
}
