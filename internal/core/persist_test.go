package core

import (
	"bytes"
	"reflect"
	"testing"
)

func TestDomainModelGobRoundTrip(t *testing.T) {
	f := newFixture(t)
	var buf bytes.Buffer
	if err := f.dm.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDomainModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Aspect != f.dm.Aspect {
		t.Fatalf("aspect %q != %q", back.Aspect, f.dm.Aspect)
	}
	if back.RelFraction != f.dm.RelFraction ||
		back.NumEntities != f.dm.NumEntities || back.NumPages != f.dm.NumPages {
		t.Fatal("scalar fields mismatch")
	}
	if !reflect.DeepEqual(back.TemplateP, f.dm.TemplateP) {
		t.Fatal("TemplateP mismatch")
	}
	if !reflect.DeepEqual(back.QueryRCount, f.dm.QueryRCount) {
		t.Fatal("QueryRCount mismatch")
	}
	if !reflect.DeepEqual(back.Candidates, f.dm.Candidates) {
		t.Fatal("Candidates mismatch")
	}

	// The restored model must drive a session identically.
	a := f.session(f.dm).Run(NewL2QP(), 2)
	b := f.session(back).Run(NewL2QP(), 2)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("restored model selects differently: %v vs %v", a, b)
	}
}

func TestReadDomainModelGarbage(t *testing.T) {
	if _, err := ReadDomainModel(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSessionTrace(t *testing.T) {
	f := newFixture(t)
	s := f.session(f.dm)
	var records []TraceRecord
	s.Trace = func(r TraceRecord) { records = append(records, r) }
	s.Run(NewL2QBAL(), 3)
	if len(records) != 3 {
		t.Fatalf("trace records = %d", len(records))
	}
	for i, r := range records {
		if r.Iteration != i+1 {
			t.Errorf("record %d iteration = %d", i, r.Iteration)
		}
		if r.Query == "" || r.TotalPages == 0 {
			t.Errorf("record %d incomplete: %+v", i, r)
		}
		if r.RPhi < 0 || r.RPhi > 1 || r.RStarPhi < 0 || r.RStarPhi > 1 {
			t.Errorf("record %d context out of range: %+v", i, r)
		}
	}
	// Total pages must be non-decreasing.
	for i := 1; i < len(records); i++ {
		if records[i].TotalPages < records[i-1].TotalPages {
			t.Fatal("TotalPages decreased")
		}
	}
}
