package core

import (
	"context"
	"fmt"
	"math/rand/v2"
	"time"

	"l2q/internal/corpus"
	"l2q/internal/search"
	"l2q/internal/textproc"
	"l2q/internal/types"
)

// Retriever is the search-engine surface a session needs. *search.Engine
// satisfies it in-process; internal/webapi's Client satisfies it across an
// HTTP boundary (the paper's commercial-search-API setting), reproducing
// the engine's scoring from collection statistics.
type Retriever interface {
	// SearchWithSeed runs seed ∥ query and returns the top-k results.
	SearchWithSeed(seed, query []textproc.Token) []search.Result
	// QueryLikelihood scores one page against a query (edge weighting).
	QueryLikelihood(p *corpus.Page, query []textproc.Token) float64
	// TopK is the result-list size of every search.
	TopK() int
}

// Session is one harvesting run for one (entity, aspect) pair: it tracks
// the context of past queries Φ, the current result pages P_E, and the
// collective-recall state the context-aware model maintains recursively
// (§V-A: R_E(Φ) decomposes over the query history with base case r0).
type Session struct {
	Cfg    Config
	Engine Retriever
	Entity *corpus.Entity
	Aspect corpus.Aspect
	// Y is the materialized relevance function (classifier output).
	Y func(*corpus.Page) bool
	// YScore, when set, replaces the binary Y in the entity graph's
	// utility regularization (Eq. 11–12) with a real-valued relevance —
	// the paper's §I generalization ("Y can map a page to a real-valued
	// relevance score"). The §V collective-context accounting stays on
	// the binary Y: "a gathered page is relevant" is a set notion. A
	// {0,1}-valued YScore reproduces the binary behavior exactly.
	YScore func(*corpus.Page) float64
	// DM is the domain model; nil runs without domain awareness.
	DM *DomainModel
	// Rec is the type system for templates; nil disables templates.
	Rec types.Recognizer
	// Fetcher, when set, accounts simulated download latency (Fig. 14).
	Fetcher *search.Fetcher
	// Trace, when set, receives one record after every Step — handy for
	// analyzing why a strategy chose what it chose.
	Trace func(TraceRecord)

	seed     []textproc.Token
	fired    []Query
	firedSet map[Query]struct{}
	pages    []*corpus.Page
	pageSet  map[corpus.PageID]struct{}

	// ngCfg is the candidate-enumeration config (seed-token exclusion),
	// built once at session construction: the seed never changes, so
	// rebuilding the stopword/exclude maps per step was pure churn.
	ngCfg textproc.NGramConfig

	// sg is the persistent entity graph (Config.IncrementalGraph): built
	// lazily on the first Infer and updated with deltas each step.
	sg *sessionGraph

	// pool is the persistent candidate pool Q_E (Config.IncrementalPool):
	// built lazily on the first selection and synced with per-step deltas
	// — only new pages are enumerated and fired queries are removed —
	// mirroring sg's lifecycle.
	pool *candidatePool

	// candBuf is the session-owned scratch the internal candidateQueries
	// emits Q_E into, reused across steps so steady-state selection does
	// not allocate a fresh pool copy per step. Valid until the next
	// candidateQueries call; the public Candidates returns a fresh slice.
	candBuf []Query

	// resBuf is the session-owned result scratch FetchQueryCtx fetches
	// into when the retriever supports AppendRetriever. Valid until the
	// next fetch on this session — fetch and ingest are sequential per
	// session (the scheduler pipelines across sessions, not within one),
	// and ingest copies the pages it keeps.
	resBuf []search.Result

	// rPhi and rStarPhi are R_E(Φ) and R*_E(Φ), the collective recalls
	// of the context w.r.t. Y and Y* (§V-A). They are maintained from
	// observable state anchored at the seed-recall parameter r0: the
	// seed's g₀ relevant pages correspond to recall r0, implying a
	// relevant universe of g₀/r0 pages, so after gathering g relevant
	// pages R_E(Φ) ≈ g·r0/g₀. (Chaining Eq. 26's own estimates instead
	// compounds the optimism of containment-based priors — containment
	// overstates what top-k retrieval returns — and saturates R_E(Φ)
	// at 1 after one good query, degenerating selection.)
	rPhi, rStarPhi float64
	seedRel        int     // relevant pages retrieved by the seed query
	seedPages      int     // pages retrieved by the seed query
	nStarHat       float64 // estimated page universe |Ω(Y*)| ≈ seedPages/r0*

	rng *rand.Rand

	// selectTime accumulates the CPU time spent choosing queries
	// (the "Selection" column of Fig. 14).
	selectTime time.Duration
	bootOnce   bool
}

// NewSession creates a harvesting session. rngSeed drives only the RND
// strategy; every other selector is deterministic.
func NewSession(cfg Config, engine Retriever, entity *corpus.Entity,
	aspect corpus.Aspect, y func(*corpus.Page) bool, dm *DomainModel,
	rec types.Recognizer, rngSeed uint64) *Session {

	s := &Session{
		Cfg:      cfg,
		Engine:   engine,
		Entity:   entity,
		Aspect:   aspect,
		Y:        y,
		DM:       dm,
		Rec:      rec,
		seed:     cfg.QueryTokens(Query(entity.SeedQuery)),
		firedSet: make(map[Query]struct{}),
		pageSet:  make(map[corpus.PageID]struct{}),
		rng:      rand.New(rand.NewPCG(rngSeed, rngSeed^0xa5a5a5a55a5a5a5a)),
	}
	s.ngCfg = cfg.ngramConfig(s.seed)
	return s
}

// Pages returns the current result pages P_E in retrieval order.
func (s *Session) Pages() []*corpus.Page { return s.pages }

// Fired returns the non-seed queries fired so far, in order.
func (s *Session) Fired() []Query { return s.fired }

// SelectionTime returns accumulated query-selection CPU time.
func (s *Session) SelectionTime() time.Duration { return s.selectTime }

// RPhi returns the model's running estimate of R_E(Φ).
func (s *Session) RPhi() float64 { return s.rPhi }

// Booted reports whether the session has ingested its seed results — the
// state the pipeline scheduler checks to pick a resumed session up at the
// select stage instead of re-firing the seed.
func (s *Session) Booted() bool { return s.bootOnce }

// Bootstrap fires the seed query q(0) and initializes the context state
// with the seed-recall parameter r0 (§V-A). It is idempotent.
func (s *Session) Bootstrap() int {
	if s.bootOnce {
		return 0
	}
	return s.IngestSeed(s.FetchQuery(""))
}

// BootstrapCtx is Bootstrap with cancellation and typed error
// propagation: a canceled context (or a transport failure the retriever
// could not retry away) surfaces as an error instead of silently
// bootstrapping from an empty seed result.
func (s *Session) BootstrapCtx(ctx context.Context) (int, error) {
	if s.bootOnce {
		return 0, nil
	}
	res, err := s.FetchQueryCtx(ctx, "")
	if err != nil {
		return 0, err
	}
	return s.IngestSeed(res), nil
}

// FetchQuery runs the retrieval (search plus simulated download) for q
// without touching session state; the empty query fetches the seed alone.
// It is the I/O half of Fire, safe to run on a fetch worker while another
// entity's selection occupies the CPU (the pipeline scheduler's split).
// It is the errorless adapter over FetchQueryCtx: a transport failure
// yields no results (an unproductive query).
func (s *Session) FetchQuery(q Query) []search.Result {
	//l2qvet:ignore ctxbg errorless legacy adapter: FetchQuery's public signature has no ctx; error-aware callers use FetchQueryCtx
	res, _ := s.FetchQueryCtx(context.Background(), q)
	return res
}

// FetchQueryCtx is FetchQuery with cancellation and typed error
// propagation. When the engine implements ContextRetriever (remote
// transports), cancellation aborts the in-flight HTTP work and transport
// failures surface as errors instead of masquerading as unproductive
// queries; plain Retrievers (in-process engines, which cannot fail) are
// adapted with a cancellation pre-check. The simulated-latency Fetcher,
// when set, is also cancellable.
func (s *Session) FetchQueryCtx(ctx context.Context, q Query) ([]search.Result, error) {
	var extra []textproc.Token
	if q != "" {
		extra = s.Cfg.QueryTokens(q)
	}
	var res []search.Result
	if cr, ok := s.Engine.(ContextRetriever); ok {
		var err error
		if res, err = cr.SearchWithSeedErr(ctx, s.seed, extra); err != nil {
			return nil, err
		}
	} else {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if ar, ok := s.Engine.(AppendRetriever); ok {
			s.resBuf = ar.SearchWithSeedAppend(s.resBuf[:0], s.seed, extra)
			res = s.resBuf
		} else {
			res = s.Engine.SearchWithSeed(s.seed, extra)
		}
	}
	if s.Fetcher != nil {
		if _, err := s.Fetcher.FetchContext(ctx, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// IngestSeed initializes the session from pre-fetched seed results — the
// state half of Bootstrap. Idempotent; returns the number of new pages.
func (s *Session) IngestSeed(res []search.Result) int {
	if s.bootOnce {
		return 0
	}
	s.bootOnce = true
	n := s.merge(res)
	s.seedPages = len(s.pages)
	for _, p := range s.pages {
		if s.Y(p) {
			s.seedRel++
		}
	}
	s.updateContext()
	return n
}

// IngestQuery records q in the context Φ and merges its pre-fetched
// results — the state half of Fire. Returns the number of new pages.
// Like Step, it delivers a TraceRecord when a Trace callback is installed
// (SelectionTime is zero here: in the split select/fetch scheduler the
// selection happened on another worker's clock).
func (s *Session) IngestQuery(q Query, res []search.Result) int {
	s.fired = append(s.fired, q)
	s.firedSet[q] = struct{}{}
	n := s.merge(res)
	s.updateContext()
	if s.Trace != nil {
		s.Trace(TraceRecord{
			Iteration:  len(s.fired),
			Query:      q,
			NewPages:   n,
			TotalPages: len(s.pages),
			RPhi:       s.rPhi,
			RStarPhi:   s.rStarPhi,
		})
	}
	return n
}

// updateContext refreshes R_E(Φ) and R*_E(Φ) from the gathered pages.
//
// The page universe is anchored at the seed's Y*-recall parameter r0*:
// N̂* = |seed results| / r0*. The relevant universe uses the domain's
// aspect frequency when a domain model is available (N̂ = RelFraction·N̂*);
// without a domain model it falls back to the seed-recall anchor g₀/r0
// (§V-A's base case). A mis-sized universe makes R_E(Φ) saturate at 1,
// after which the redundancy discount −R^(Ỹ)(q)·R_E(Φ) drowns every
// covered query and selection degenerates to chasing novelty.
func (s *Session) updateContext() {
	rel := 0
	for _, p := range s.pages {
		if s.Y(p) {
			rel++
		}
	}
	p0 := s.seedPages
	if p0 < 1 {
		p0 = 1
	}
	r0Star := s.Cfg.R0Star
	if r0Star == 0 {
		r0Star = s.Cfg.R0 / 3
	}
	s.nStarHat = float64(p0) / r0Star
	s.rStarPhi = clamp01(float64(len(s.pages)) / s.nStarHat)

	var nHat float64
	if s.DM != nil && s.DM.RelFraction > 0 {
		nHat = s.DM.RelFraction * s.nStarHat
	} else {
		g0 := s.seedRel
		if g0 < 1 {
			g0 = 1
		}
		nHat = float64(g0) / s.Cfg.R0
	}
	if nHat < 1 {
		nHat = 1
	}
	s.rPhi = clamp01(float64(rel) / nHat)
}

// merge folds results into P_E, returning the number of new pages.
func (s *Session) merge(res []search.Result) int {
	added := 0
	for _, r := range res {
		if _, dup := s.pageSet[r.Page.ID]; dup {
			continue
		}
		s.pageSet[r.Page.ID] = struct{}{}
		s.pages = append(s.pages, r.Page)
		added++
	}
	return added
}

// Fire submits a chosen query (appended to the seed) and records it in the
// context Φ. Returns the number of new pages retrieved.
func (s *Session) Fire(q Query) int {
	return s.ingestNoContext(q, s.FetchQuery(q))
}

// ingestNoContext is IngestQuery without the context refresh (Step calls
// updateContext itself after Fire, preserving the original single-threaded
// code path and its trace semantics).
func (s *Session) ingestNoContext(q Query, res []search.Result) int {
	s.fired = append(s.fired, q)
	s.firedSet[q] = struct{}{}
	return s.merge(res)
}

// Selection is a selector's decision.
type Selection struct {
	Query Query
}

// TraceRecord is one harvesting iteration's outcome.
type TraceRecord struct {
	Iteration  int
	Query      Query
	NewPages   int
	TotalPages int
	// RPhi and RStarPhi are the context state after the step.
	RPhi, RStarPhi float64
	// SelectionTime is the time this step's selection took.
	SelectionTime time.Duration
}

// Selector chooses the next query for a session. Implementations must not
// fire queries themselves; Session.Step does that.
type Selector interface {
	Name() string
	Select(s *Session) (Selection, bool)
}

// Step runs one iteration of Fig. 1: select the best query, fire it, and
// update the collective context. It reports the query fired and false when
// the selector found no candidate. It is the errorless wrapper over
// StepCtx: a transport failure is recorded as an unproductive query
// (matching the errorless FetchQuery it historically fired through).
func (s *Session) Step(sel Selector) (Query, bool) {
	s.Bootstrap()
	start := time.Now()
	choice, ok := sel.Select(s)
	selDur := time.Since(start)
	s.selectTime += selDur
	if !ok {
		return "", false
	}
	added := s.Fire(choice.Query)
	s.updateContext()
	s.trace(choice.Query, added, selDur)
	return choice.Query, true
}

// StepCtx is Step with cancellation and typed error propagation: the
// fetch half runs through FetchQueryCtx, so a canceled context aborts an
// in-flight remote download and a transport failure that survived the
// retriever's retry budget surfaces as an error — the query is NOT
// recorded in Φ (no search result was paid for), so a resumed session can
// retry it.
func (s *Session) StepCtx(ctx context.Context, sel Selector) (Query, bool, error) {
	if _, err := s.BootstrapCtx(ctx); err != nil {
		return "", false, err
	}
	start := time.Now()
	choice, ok := sel.Select(s)
	selDur := time.Since(start)
	s.selectTime += selDur
	if !ok {
		return "", false, nil
	}
	res, err := s.FetchQueryCtx(ctx, choice.Query)
	if err != nil {
		return "", false, err
	}
	added := s.ingestNoContext(choice.Query, res)
	s.updateContext()
	s.trace(choice.Query, added, selDur)
	return choice.Query, true, nil
}

// trace delivers one iteration's TraceRecord when a callback is set.
func (s *Session) trace(q Query, added int, selDur time.Duration) {
	if s.Trace == nil {
		return
	}
	s.Trace(TraceRecord{
		Iteration:     len(s.fired),
		Query:         q,
		NewPages:      added,
		TotalPages:    len(s.pages),
		RPhi:          s.rPhi,
		RStarPhi:      s.rStarPhi,
		SelectionTime: selDur,
	})
}

// Run bootstraps and performs n selection iterations, returning the fired
// queries. It stops early if the selector runs out of candidates. It is
// the errorless legacy wrapper over Step: a remote transport failure
// degrades to an unproductive query and the loop keeps spending its
// budget — exactly the pre-RunCtx behavior, so existing callers see no
// semantic change. Use RunCtx when a short result must be
// distinguishable from a completed one (and for cancellation).
func (s *Session) Run(sel Selector, n int) []Query {
	s.Bootstrap()
	out := make([]Query, 0, n)
	for i := 0; i < n; i++ {
		q, ok := s.Step(sel)
		if !ok {
			break
		}
		out = append(out, q)
	}
	return out
}

// RunCtx is Run with cancellation: the harvest stops at the first failed
// or canceled fetch, returning the queries fired so far alongside the
// error. A single-session harvest driven by a CLI becomes interruptible
// this way — Run's errorless FetchQuery path ignored ctx entirely.
func (s *Session) RunCtx(ctx context.Context, sel Selector, n int) ([]Query, error) {
	if _, err := s.BootstrapCtx(ctx); err != nil {
		return nil, err
	}
	out := make([]Query, 0, n)
	for i := 0; i < n; i++ {
		q, ok, err := s.StepCtx(ctx, sel)
		if err != nil {
			return out, err
		}
		if !ok {
			break
		}
		out = append(out, q)
	}
	return out, nil
}

// Candidates exposes the entity-phase candidate pool Q_E to selectors
// implemented outside this package (the baselines). The returned slice is
// freshly allocated — callers may retain it across later steps.
func (s *Session) Candidates(useDomain bool) []Query {
	return s.CandidatesAppend(nil, useDomain)
}

// CandidatesAppend is Candidates with a caller-provided buffer: the
// current Q_E is appended to dst and the grown slice returned. A caller
// reusing dst across steps refreshes the pool without allocating (the
// per-step delta work is itself allocation-free steady-state).
func (s *Session) CandidatesAppend(dst []Query, useDomain bool) []Query {
	if !s.Cfg.IncrementalPool {
		ref := s.CandidatesReference(useDomain)
		if dst == nil {
			return ref
		}
		return append(dst, ref...)
	}
	dm := s.DM
	if !useDomain {
		dm = nil
	}
	if !s.pool.matches(useDomain, dm) {
		s.pool = newCandidatePool(useDomain, dm)
	}
	return s.pool.appendPool(dst, s)
}

// candidateQueries produces the entity-phase candidate pool Q_E: n-grams
// of the current result pages (excluding seed tokens), optionally extended
// with the domain candidates (§IV-C), minus already-fired queries. The
// result is deterministic: page n-grams in first-appearance order, then
// domain candidates.
//
// The returned slice is session-owned scratch, valid until the next
// candidateQueries call on this session — internal per-step consumers
// (selectors, inference) use each pool within their step, so reusing one
// buffer removes the per-step copy. External callers go through
// Candidates, which allocates.
//
// With Config.IncrementalPool (the default) the pool persists across steps
// and is synced with deltas — only new pages are enumerated and fired
// queries removed; CandidatesReference is the retained rebuild-per-step
// path, and the two produce identical pools (TestCandidatePoolMatchesReference).
func (s *Session) candidateQueries(useDomain bool) []Query {
	if !s.Cfg.IncrementalPool {
		return s.CandidatesReference(useDomain)
	}
	s.candBuf = s.CandidatesAppend(s.candBuf[:0], useDomain)
	return s.candBuf
}

// CandidatesReference is the from-scratch candidate enumeration: it
// re-enumerates the n-grams of every gathered page on every call. It is
// the differential-testing ground truth for the incremental pool,
// mirroring Session.InferReference and search.Engine.SearchReference.
func (s *Session) CandidatesReference(useDomain bool) []Query {
	seen := make(map[Query]struct{})
	var out []Query
	add := func(q Query) {
		if _, dup := seen[q]; dup {
			return
		}
		if _, fired := s.firedSet[q]; fired {
			return
		}
		seen[q] = struct{}{}
		out = append(out, q)
	}
	for _, p := range s.pages {
		for _, qs := range textproc.NGrams(p.Tokens(), s.ngCfg) {
			add(Query(qs))
		}
	}
	if useDomain && s.DM != nil {
		for _, q := range s.DM.Candidates {
			add(q)
		}
	}
	return out
}

// Errorf wraps session context into an error (used by callers).
func (s *Session) Errorf(format string, args ...any) error {
	prefix := fmt.Sprintf("l2q[%s/%s]: ", s.Entity.Name, s.Aspect)
	return fmt.Errorf(prefix+format, args...)
}
