package core

import (
	"math"

	"l2q/internal/graph"
	"l2q/internal/par"
)

// InferOptions selects which parts of the L2Q model an inference run uses,
// matching the strategy ablations of §VI-B.
type InferOptions struct {
	// UseTemplates enables domain-aware learning through templates:
	// template vertices in the entity graph plus λ-scaled regularization
	// from the domain model (Eq. 21–22).
	UseTemplates bool
	// UseDomainCandidates extends the candidate pool with frequent
	// domain queries (§IV-C).
	UseDomainCandidates bool
	// Collective enables context-aware utilities over Φ ∪ {q} (§V).
	Collective bool
}

// Inference holds per-candidate utilities from one entity-phase run.
// Slices are parallel to Queries.
type Inference struct {
	Queries []Query
	// P and R are the individual domain-aware utilities P_E(q), R_E(q)
	// (Eq. 20).
	P, R []float64
	// CollR, CollRStar and CollP are the collective utilities
	// R_E(Φ∪{q}), R*_E(Φ∪{q}) and P_E(Φ∪{q}) (Eq. 24–27); nil unless
	// Collective was requested.
	CollR, CollRStar, CollP []float64
}

// ArgMax returns the index of the maximal finite value, breaking ties by
// query string for determinism; -1 when empty or no value is finite.
// Non-finite utilities (NaN from a degenerate ratio, ±Inf from an
// overflowed score) are skipped: every comparison against NaN is false,
// so a NaN at index 0 would otherwise win outright, and an Inf would mask
// every real candidate.
func (inf *Inference) ArgMax(vals []float64) int {
	best := -1
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if best < 0 || v > vals[best] ||
			(v == vals[best] && inf.Queries[i] < inf.Queries[best]) {
			best = i
		}
	}
	return best
}

// Infer runs the entity phase (§IV-C): assemble the entity reinforcement
// graph over the current result pages and candidate queries, regularize
// with page relevance and (optionally) domain template utilities, and
// solve for the requested utilities.
//
// With Config.IncrementalGraph (the default) the graph persists across
// steps and is updated with deltas; InferReference is the retained
// rebuild-per-step path, and the two compute identical rankings
// (TestIncrementalMatchesReference).
func (s *Session) Infer(opts InferOptions) (*Inference, error) {
	if s.Cfg.IncrementalGraph {
		return s.inferIncremental(opts)
	}
	return s.InferReference(opts)
}

// InferReference is the from-scratch entity-phase inference: it rebuilds
// the reinforcement graph over the current pages and candidates and
// cold-solves both fixpoints. It is the differential-testing ground truth
// for the incremental path, mirroring search.Engine.SearchReference.
func (s *Session) InferReference(opts InferOptions) (*Inference, error) {
	cands := s.candidateQueries(opts.UseDomainCandidates)
	inf := &Inference{Queries: cands}
	if len(cands) == 0 {
		return inf, nil
	}

	rec := s.Rec
	if !opts.UseTemplates {
		rec = nil // no template vertices at all
	}
	b := newGraphBuilder(s.Cfg, rec)
	b.engine = s.Engine
	for _, p := range s.pages {
		b.addPage(p)
	}
	for _, q := range cands {
		b.addQuery(q)
	}
	// Entity graphs are small: conjunctive containment against every
	// current page (domain candidates are not n-grams of P_E, so the
	// n-gram trick of the domain phase does not apply here).
	b.connect()

	var pageReg regPair
	if s.YScore != nil {
		pageReg = b.pageRegularizationScored(s.YScore)
	} else {
		pageReg = b.pageRegularization(s.Y)
	}

	lambda := s.Cfg.Lambda
	var tmplP, tmplR map[string]float64
	if opts.UseTemplates && s.DM != nil {
		tmplP = s.DM.TemplateP
		if s.Cfg.UseWalkRecallReg {
			tmplR = s.DM.TemplateR
		} else {
			tmplR = s.DM.TemplateRCount
		}
	}

	// P_E: precision with page + λ·P_D(t) regularization.
	precReg := b.addTemplateReg(pageReg.precision, tmplP, lambda)
	prec, err := b.solve(graph.Precision, precReg)
	if err != nil {
		return nil, err
	}
	// R_E: recall with page + λ·R_D(t) regularization.
	recReg := b.addTemplateReg(pageReg.recall, tmplR, lambda)
	rcl, err := b.solve(graph.Recall, recReg)
	if err != nil {
		return nil, err
	}

	inf.P = make([]float64, len(cands))
	inf.R = make([]float64, len(cands))
	for i, q := range cands {
		id := b.queries[q]
		inf.P[i] = prec[id]
		inf.R[i] = rcl[id]
	}
	if !opts.Collective {
		return inf, nil
	}
	s.collective(inf, b, opts)
	return inf, nil
}

// collective computes the context-aware utilities of §V on a consistent
// probability scale.
//
// Eq. 26 decomposes R_E(Φ∪{q}) = R_E(Φ) + R_E(q) − ∆(Φ,q) with
// ∆ = R^(Ỹ)_E(q)·R_E(Φ). R_E(Φ) is probability-scale (its base case r0 is
// "the recall of the seed query"), so the other two terms must be too:
//
//   - R^(Ỹ)_E(q) = P(ω ∈ Ω(q) | ω ∈ Ω(Ỹ)) is fully observable — Ỹ lives on
//     the already-gathered pages — so we compute it exactly by counting:
//     the fraction of gathered relevant pages containing q. (The paper
//     routes this through the recall fixpoint, whose stationary masses are
//     diluted across the whole candidate set and would make ∆ vanish;
//     counting computes the same conditional without the scale distortion.)
//   - R_E(q) = P(ω ∈ Ω(q) | ω ∈ Ω(Y)) over the *universe* of relevant
//     pages. The gathered relevant pages are our sample of that universe,
//     and the domain model's template counting statistics are the prior
//     for what we have not seen; we blend them with pseudo-count m
//     (Config.PriorStrength):  (n·count + m·prior)/(n + m).
//
// The Y* counterparts (for collective precision, Eq. 27) replace "relevant
// pages" with "all pages" throughout.
func (s *Session) collective(inf *Inference, b *graphBuilder, opts InferOptions) {
	nRel := 0
	for _, p := range s.pages {
		if s.Y(p) {
			nRel++
		}
	}
	s.collectiveCover(inf, b, opts, nRel, nil)
}

// collectiveCover is collective with the relevant-page count precomputed
// and an optional injected coverage source: cover(i) returns the number
// of gathered relevant pages / gathered pages containing candidate i. The
// incremental path supplies counts cached during delta connection; nil
// recounts by scanning the pages (the reference behavior). Candidates are
// scored on a bounded worker pool (Config.InferWorkers) — each writes
// only its own indexes, so every worker count computes identical values.
func (s *Session) collectiveCover(inf *Inference, b *graphBuilder, opts InferOptions,
	nRel int, cover func(i int) (relCover, allCover int)) {

	nPages := len(s.pages)
	m := s.Cfg.PriorStrength
	useDM := opts.UseTemplates && s.DM != nil

	inf.CollR = make([]float64, len(inf.Queries))
	inf.CollRStar = make([]float64, len(inf.Queries))
	inf.CollP = make([]float64, len(inf.Queries))
	par.For(len(inf.Queries), s.Cfg.inferWorkers(), func(i int) {
		q := inf.Queries[i]

		// Exact redundancy conditionals over the gathered pages.
		var relCover, allCover int
		if cover != nil {
			relCover, allCover = cover(i)
		} else {
			toks := b.queryToks[q]
			for _, p := range s.pages {
				if p.ContainsQuery(toks) {
					allCover++
					if s.Y(p) {
						relCover++
					}
				}
			}
		}
		rTilde, rTildeStar := 0.0, 0.0
		if nRel > 0 {
			rTilde = float64(relCover) / float64(nRel)
		}
		if nPages > 0 {
			rTildeStar = float64(allCover) / float64(nPages)
		}

		// Domain priors (probability-scale counting stats): the query's
		// own domain coverage when it is a transferable domain query,
		// otherwise the mean per-instantiation coverage of its
		// templates.
		priorR, priorRStar := 0.0, 0.0
		if useDM {
			if v, ok := s.DM.QueryRCount[q]; ok {
				priorR = v
				priorRStar = s.DM.QueryRStarCount[q]
			} else if keys := b.templateKeysOf(q); len(keys) > 0 {
				n := 0
				for _, key := range keys {
					if v, ok := s.DM.TemplateRCount[key]; ok {
						priorR += v
						priorRStar += s.DM.TemplateRStarCount[key]
						n++
					}
				}
				if n > 0 {
					priorR /= float64(n)
					priorRStar /= float64(n)
				}
			}
		}

		// Smoothed probability-scale coverage of the candidate alone.
		// The observation count is capped: the gathered pages are a
		// *biased* sample (they were selected by past queries), so
		// growing them must not drown the domain prior — otherwise
		// unseen pockets of relevant pages (the entity's second topic)
		// become invisible exactly when the context has covered the
		// first pocket.
		rq := smoothed(rTilde, capObs(nRel), priorR, m)
		rqStar := smoothed(rTildeStar, capObs(nPages), priorRStar, m)

		// Retrieval-slot calibration: Ω(q)-containment says which
		// pages q *could* retrieve, but the engine returns only the
		// top k. A query contained in M̂ ≈ rqStar·N̂* pages delivers
		// roughly a k/M̂ share of its containment coverage per firing.
		// This is what makes entity-specific keywords beat generic
		// ones (§I): "research" is contained everywhere but wastes its
		// k slots, "parallel computing" converts containment into
		// retrieval one-for-one. Without it, universal words
		// ("homepage") maximize containment-recall while retrieving
		// nothing new.
		k := float64(s.Engine.TopK())
		share := 1.0
		if s.nStarHat > 0 && k > 0 {
			if mHat := rqStar * s.nStarHat; mHat > k {
				share = k / mHat
			}
		}

		// Backfill: the engine always returns k results, so slots the
		// query's own containment does not fill come back as seed-
		// ranked pages — new with probability (1−R*(Φ)) and relevant
		// only at base rate. Ignoring backfill makes tiny-footprint
		// junk queries look free in the Eq. 27 ratio (they seem to add
		// nothing to the denominator), and collective precision then
		// rewards exactly the queries that waste their slots.
		targetedStar := share * (rqStar - rTildeStar*s.rStarPhi)
		if targetedStar < 0 {
			targetedStar = 0
		}
		backfill := 0.0
		if k > 0 && s.nStarHat > 0 {
			slots := targetedStar * s.nStarHat / k
			if slots > 1 {
				slots = 1
			}
			backfill = k * (1 - slots) * (1 - s.rStarPhi) / s.nStarHat
		}

		// Eq. 26 and its Y* counterpart. The values are deliberately
		// NOT clamped to [0,1]: they are selection scores, and
		// clamping would collapse every strong candidate into a tie
		// at 1.0 that the lexicographic tie-break would then decide.
		inf.CollR[i] = s.rPhi + share*(rq-rTilde*s.rPhi) + backfill
		inf.CollRStar[i] = s.rStarPhi + targetedStar + backfill
		// Eq. 27: collective precision ∝ collective recall ratio.
		if inf.CollRStar[i] > 0 {
			inf.CollP[i] = inf.CollR[i] / inf.CollRStar[i]
		}
	})
}

// smoothed blends an observed coverage fraction (over n observations) with
// a prior via pseudo-count m.
func smoothed(observed float64, n int, prior float64, m float64) float64 {
	if n == 0 && m == 0 {
		return 0
	}
	return (float64(n)*observed + m*prior) / (float64(n) + m)
}

// maxObservations caps the effective sample size of the gathered-page
// evidence inside smoothed (see the comment at the call site).
const maxObservations = 5

func capObs(n int) int {
	if n > maxObservations {
		return maxObservations
	}
	return n
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
