package core

import (
	"l2q/internal/corpus"
	"l2q/internal/graph"
	"l2q/internal/par"
)

// sessionGraph is the persistent entity reinforcement graph of one
// harvesting session (§IV-C), maintained incrementally across Steps
// instead of being rebuilt per inference:
//
//   - new result pages and new candidate queries are appended and
//     connected against the existing vertices (delta containment — only
//     new×old and ×new pairs are checked, never old×old again);
//   - fired queries are detached (they leave the candidate pool; an
//     isolated vertex is invisible to both walks, so the graph stays
//     exactly equivalent to a from-scratch build over the current pool);
//   - the page regularization vectors (Eq. 11–12) are updated in place —
//     new pages append their score, the recall vector renormalizes
//     against the running total;
//   - the previous step's solved utilities are kept as warm starts for
//     the next step's fixpoints (Config.WarmStart);
//   - conjunctive-containment coverage counts per candidate — the exact
//     redundancy conditionals the collective utilities of §V recount on
//     every step in the rebuild path — fall out of delta connection as a
//     byproduct and are cached.
//
// The graph's shape depends on the InferOptions signature (templates add
// vertices, domain candidates extend the pool), so a session keeps one
// sessionGraph per signature and rebuilds only if a selector switches
// options mid-session (which none of the stock strategies do).
type sessionGraph struct {
	b           *graphBuilder
	templates   bool // graph was built with template vertices
	domainCands bool // candidate pool includes domain candidates

	nPagesConnected int // prefix of b.pages already delta-connected
	nFiredSeen      int // prefix of s.fired already detached

	// pageRel caches the binary Y(p) per b.pages index for the coverage
	// counters (classifier calls are memoized but not free); relCount
	// is the number of true entries.
	pageRel  []bool
	relCount int
	// coverAll and coverRel count the pages (resp. relevant pages)
	// containing each attached query — maintained incrementally, they
	// replace the per-step O(pages × candidates) recount inside the
	// collective utilities.
	coverAll map[Query]int
	coverRel map[Query]int

	// In-place page regularization state (Eq. 11–12). regTotal
	// accumulates clamped scores in page order, reproducing the rebuild
	// path's left-to-right summation exactly.
	reg          regPair
	regTotal     float64
	nPagesScored int

	// prevPrec and prevRecall are the last solved utility vectors,
	// node-indexed; they seed the next solves when warm starting (new
	// nodes beyond their length cold-start at the regularization).
	prevPrec, prevRecall []float64
}

func newSessionGraph(b *graphBuilder, opts InferOptions) *sessionGraph {
	return &sessionGraph{
		b:           b,
		templates:   opts.UseTemplates,
		domainCands: opts.UseDomainCandidates,
		coverAll:    make(map[Query]int),
		coverRel:    make(map[Query]int),
	}
}

// matches returns the index of the sessionGraph options signature; a
// mismatch means the cached graph was built for different InferOptions.
func (sg *sessionGraph) matches(opts InferOptions) bool {
	return sg != nil && sg.templates == opts.UseTemplates &&
		sg.domainCands == opts.UseDomainCandidates
}

// pqMatch is one discovered containment edge: a page (by b.pages index)
// and its edge weight, computed in parallel and applied serially.
type pqMatch struct {
	page int32
	w    float64
}

// ingest brings the persistent graph up to date with the session: detach
// newly fired queries, append new pages and new candidate queries, and
// delta-connect — new queries against old pages, every attached query
// against new pages. Containment checks and edge weights run on a bounded
// worker pool (Config.InferWorkers); graph mutation stays serial, so the
// result is deterministic for every worker count.
func (sg *sessionGraph) ingest(s *Session, cands []Query) {
	b := sg.b

	// Retire fired queries: they left the candidate pool for good.
	for _, q := range s.fired[sg.nFiredSeen:] {
		b.detachQuery(q)
	}
	sg.nFiredSeen = len(s.fired)

	// Append new pages (b.pages mirrors s.pages in order) and cache Y.
	oldPages := sg.nPagesConnected
	for _, p := range s.pages[len(b.pages):] {
		b.addPage(p)
	}
	for _, p := range b.pages[len(sg.pageRel):] {
		rel := s.Y(p)
		sg.pageRel = append(sg.pageRel, rel)
		if rel {
			sg.relCount++
		}
	}

	// Append new candidate queries (with their template vertices).
	var newQs []Query
	for _, q := range cands {
		if _, ok := b.queries[q]; !ok {
			b.addQuery(q)
			newQs = append(newQs, q)
		}
	}

	workers := s.Cfg.inferWorkers()
	oldSlice := b.pages[:oldPages]
	newSlice := b.pages[oldPages:]

	// Phase A: new queries × old pages.
	matchesA := make([][]pqMatch, len(newQs))
	par.For(len(newQs), workers, func(i int) {
		matchesA[i] = b.findMatches(newQs[i], oldSlice, 0)
	})

	// Phase B: every attached query (old and new) × new pages.
	var attached []Query
	if len(newSlice) > 0 {
		attached = make([]Query, 0, len(b.queryList))
		for _, q := range b.queryList {
			if !b.detached[q] {
				attached = append(attached, q)
			}
		}
	}
	matchesB := make([][]pqMatch, len(attached))
	par.For(len(attached), workers, func(i int) {
		matchesB[i] = b.findMatches(attached[i], newSlice, int32(oldPages))
	})

	// Apply edges serially, counting coverage as a byproduct.
	for i, q := range newQs {
		sg.applyMatches(q, matchesA[i])
	}
	for i, q := range attached {
		sg.applyMatches(q, matchesB[i])
	}
	sg.nPagesConnected = len(b.pages)
}

// findMatches scans a page window for conjunctive containment of q,
// returning page indexes offset into b.pages plus edge weights.
func (b *graphBuilder) findMatches(q Query, window []*corpus.Page, offset int32) []pqMatch {
	toks := b.queryToks[q]
	var ms []pqMatch
	for pi, p := range window {
		if p.ContainsQuery(toks) {
			ms = append(ms, pqMatch{page: offset + int32(pi), w: b.edgeWeight(p, q)})
		}
	}
	return ms
}

func (sg *sessionGraph) applyMatches(q Query, ms []pqMatch) {
	b := sg.b
	qid := b.queries[q]
	for _, m := range ms {
		b.g.AddEdgePQ(b.pageNode[b.pages[m.page].ID], qid, m.w)
		sg.coverAll[q]++
		if sg.pageRel[m.page] {
			sg.coverRel[q]++
		}
	}
}

// pageReg updates the page regularization vectors in place (Eq. 11–12):
// precision entries are appended for new pages only; the recall vector is
// the precision vector renormalized by the running score total.
func (sg *sessionGraph) pageReg(s *Session) regPair {
	b := sg.b
	n := b.g.NumNodes()
	for len(sg.reg.precision) < n {
		sg.reg.precision = append(sg.reg.precision, 0)
		sg.reg.recall = append(sg.reg.recall, 0)
	}
	score := s.YScore
	if score == nil {
		score = func(p *corpus.Page) float64 {
			if s.Y(p) {
				return 1
			}
			return 0
		}
	}
	for _, p := range b.pages[sg.nPagesScored:] {
		sc := clamp01(score(p))
		sg.reg.precision[b.pageNode[p.ID]] = sc
		sg.regTotal += sc
	}
	sg.nPagesScored = len(b.pages)
	if sg.regTotal > 0 {
		for _, p := range b.pages {
			id := b.pageNode[p.ID]
			sg.reg.recall[id] = sg.reg.precision[id] / sg.regTotal
		}
	}
	return sg.reg
}

// inferIncremental is the fast path of Session.Infer: one persistent
// graph per session, O(Δ) ingest per step, warm-started fixpoints, and
// cached coverage counts for the collective utilities. It computes the
// same utilities as InferReference (see TestIncrementalMatchesReference).
func (s *Session) inferIncremental(opts InferOptions) (*Inference, error) {
	cands := s.candidateQueries(opts.UseDomainCandidates)
	inf := &Inference{Queries: cands}
	if len(cands) == 0 {
		return inf, nil
	}

	sg := s.sg
	if !sg.matches(opts) {
		rec := s.Rec
		if !opts.UseTemplates {
			rec = nil // no template vertices at all
		}
		b := newGraphBuilder(s.Cfg, rec)
		b.engine = s.Engine
		sg = newSessionGraph(b, opts)
		s.sg = sg
	}
	sg.ingest(s, cands)
	b := sg.b

	pageReg := sg.pageReg(s)

	lambda := s.Cfg.Lambda
	var tmplP, tmplR map[string]float64
	if opts.UseTemplates && s.DM != nil {
		tmplP = s.DM.TemplateP
		if s.Cfg.UseWalkRecallReg {
			tmplR = s.DM.TemplateR
		} else {
			tmplR = s.DM.TemplateRCount
		}
	}

	var x0P, x0R []float64
	if s.Cfg.WarmStart {
		x0P, x0R = sg.prevPrec, sg.prevRecall
	}
	precReg := b.addTemplateReg(pageReg.precision, tmplP, lambda)
	prec, err := b.solveWarm(graph.Precision, precReg, x0P)
	if err != nil {
		return nil, err
	}
	recReg := b.addTemplateReg(pageReg.recall, tmplR, lambda)
	rcl, err := b.solveWarm(graph.Recall, recReg, x0R)
	if err != nil {
		return nil, err
	}
	sg.prevPrec, sg.prevRecall = prec, rcl

	inf.P = make([]float64, len(cands))
	inf.R = make([]float64, len(cands))
	for i, q := range cands {
		id := b.queries[q]
		inf.P[i] = prec[id]
		inf.R[i] = rcl[id]
	}
	if !opts.Collective {
		return inf, nil
	}
	s.collectiveCover(inf, b, opts, sg.relCount, func(i int) (relCover, allCover int) {
		return sg.coverRel[inf.Queries[i]], sg.coverAll[inf.Queries[i]]
	})
	return inf, nil
}
