// Package par provides the one bounded parallel-for shared by the
// CPU-bound fan-outs of the reproduction — per-candidate collective
// scoring and delta containment (core), the domain phase's sharded
// counting pass (core), per-aspect classifier training (classify), and
// the eval environment's warm-ups — so the worker-pool idiom lives in
// exactly one place.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(0..n-1) over a bounded worker pool, following the repo's
// worker-knob convention (core.Config.InferWorkers/LearnWorkers): 0
// picks GOMAXPROCS, negative means serial. The pool never exceeds n; a
// single worker runs inline. Iterations must be independent; each index
// is executed exactly once. A panicking fn crashes the process (as an
// inline loop would) — do not use For for work that recovers.
func For(n, workers int, fn func(int)) {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
