package html

import (
	"math/rand/v2"
	"reflect"
	"testing"
)

func lexAll(t *testing.T, src string) []Token {
	t.Helper()
	lx := NewLexer(src)
	var out []Token
	for {
		tok, ok := lx.Next()
		if !ok {
			return out
		}
		out = append(out, tok)
	}
}

func TestLexerBasicTags(t *testing.T) {
	toks := lexAll(t, `<p>hello</p>`)
	want := []Token{
		{Type: StartTagToken, Data: "p"},
		{Type: TextToken, Data: "hello"},
		{Type: EndTagToken, Data: "p"},
	}
	if !reflect.DeepEqual(toks, want) {
		t.Fatalf("got %+v, want %+v", toks, want)
	}
}

func TestLexerAttributes(t *testing.T) {
	toks := lexAll(t, `<a href="x.html" class='big' data-n=3 disabled>t</a>`)
	if len(toks) != 3 {
		t.Fatalf("want 3 tokens, got %d: %+v", len(toks), toks)
	}
	a := toks[0]
	if a.Type != StartTagToken || a.Data != "a" {
		t.Fatalf("bad start tag: %+v", a)
	}
	wantAttrs := []Attribute{
		{Key: "href", Val: "x.html"},
		{Key: "class", Val: "big"},
		{Key: "data-n", Val: "3"},
		{Key: "disabled", Val: ""},
	}
	if !reflect.DeepEqual(a.Attrs, wantAttrs) {
		t.Fatalf("attrs %+v, want %+v", a.Attrs, wantAttrs)
	}
}

func TestLexerAttrLookup(t *testing.T) {
	toks := lexAll(t, `<meta name="k" content="v">`)
	if v, ok := toks[0].Attr("content"); !ok || v != "v" {
		t.Fatalf("Attr(content) = %q, %v", v, ok)
	}
	if _, ok := toks[0].Attr("missing"); ok {
		t.Fatal("Attr(missing) should not be found")
	}
}

func TestLexerSelfClosing(t *testing.T) {
	toks := lexAll(t, `<br/><hr />`)
	if toks[0].Type != SelfClosingTagToken || toks[0].Data != "br" {
		t.Fatalf("br: %+v", toks[0])
	}
	if toks[1].Type != SelfClosingTagToken || toks[1].Data != "hr" {
		t.Fatalf("hr: %+v", toks[1])
	}
}

func TestLexerUppercaseNamesLowered(t *testing.T) {
	toks := lexAll(t, `<DIV CLASS="A">x</DIV>`)
	if toks[0].Data != "div" || toks[2].Data != "div" {
		t.Fatalf("names not lowercased: %+v", toks)
	}
	if toks[0].Attrs[0].Key != "class" {
		t.Fatalf("attr key not lowercased: %+v", toks[0].Attrs)
	}
}

func TestLexerComment(t *testing.T) {
	toks := lexAll(t, `a<!-- hidden <p> -->b`)
	want := []Token{
		{Type: TextToken, Data: "a"},
		{Type: CommentToken, Data: " hidden <p> "},
		{Type: TextToken, Data: "b"},
	}
	if !reflect.DeepEqual(toks, want) {
		t.Fatalf("got %+v", toks)
	}
}

func TestLexerDoctype(t *testing.T) {
	toks := lexAll(t, `<!DOCTYPE html><html></html>`)
	if toks[0].Type != DoctypeToken || toks[0].Data != "DOCTYPE html" {
		t.Fatalf("doctype: %+v", toks[0])
	}
}

func TestLexerScriptRawText(t *testing.T) {
	toks := lexAll(t, `<script>if (a<b) { x="<p>"; }</script>after`)
	want := []Token{
		{Type: StartTagToken, Data: "script"},
		{Type: TextToken, Data: `if (a<b) { x="<p>"; }`},
		{Type: EndTagToken, Data: "script"},
		{Type: TextToken, Data: "after"},
	}
	if !reflect.DeepEqual(toks, want) {
		t.Fatalf("got %+v", toks)
	}
}

func TestLexerUnterminatedScript(t *testing.T) {
	toks := lexAll(t, `<script>var x = 1;`)
	if len(toks) != 2 || toks[1].Type != TextToken || toks[1].Data != "var x = 1;" {
		t.Fatalf("got %+v", toks)
	}
}

func TestLexerLiteralLessThan(t *testing.T) {
	toks := lexAll(t, `3 < 5 and <1 is text`)
	// All of it should come back as text (the "<1" is not a tag).
	var text string
	for _, tok := range toks {
		if tok.Type != TextToken {
			t.Fatalf("unexpected non-text token %+v", tok)
		}
		text += tok.Data
	}
	if text != "3 < 5 and <1 is text" {
		t.Fatalf("text = %q", text)
	}
}

func TestLexerEntitiesInTextAndAttrs(t *testing.T) {
	toks := lexAll(t, `<a title="a &amp; b">x &lt; y &#65; &#x42;</a>`)
	if v, _ := toks[0].Attr("title"); v != "a & b" {
		t.Fatalf("attr entity: %q", v)
	}
	if toks[1].Data != "x < y A B" {
		t.Fatalf("text entity: %q", toks[1].Data)
	}
}

func TestLexerTruncatedInputs(t *testing.T) {
	// None of these should panic or loop; content varies.
	for _, src := range []string{
		"<", "<a", "<a href=", `<a href="x`, "</", "</p", "<!--", "<!doctype",
		"<a ", "<a /", "text<", "&amp", "&", "&#;", "&#x;",
	} {
		lexAll(t, src) // must terminate
	}
}

func TestDecodeEntities(t *testing.T) {
	cases := map[string]string{
		"plain":            "plain",
		"&amp;&lt;&gt;":    "&<>",
		"&quot;x&apos;":    `"x'`,
		"&#65;&#x41;":      "AA",
		"&bogus;":          "&bogus;",
		"&amp":             "&amp",
		"a &amp; b &amp c": "a & b &amp c",
		"&nbsp;":           "\u00a0",
		"&#0;":             "&#0;",
	}
	for in, want := range cases {
		if got := DecodeEntities(in); got != want {
			t.Errorf("DecodeEntities(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	for _, s := range []string{
		"plain", "a < b & c > d", `quotes " and ' here`, "unicode é ü",
	} {
		if got := DecodeEntities(EscapeText(s)); got != s {
			t.Errorf("text round trip %q -> %q", s, got)
		}
		if got := DecodeEntities(EscapeAttr(s)); got != s {
			t.Errorf("attr round trip %q -> %q", s, got)
		}
	}
}

func TestTokenTypeString(t *testing.T) {
	names := map[TokenType]string{
		TextToken: "text", StartTagToken: "start", EndTagToken: "end",
		SelfClosingTagToken: "self-closing", CommentToken: "comment",
		DoctypeToken: "doctype", TokenType(200): "unknown",
	}
	for tt, want := range names {
		if tt.String() != want {
			t.Errorf("%d.String() = %q, want %q", tt, tt.String(), want)
		}
	}
}

// TestLexerNeverPanicsOnRandomBytes feeds random byte soup to the lexer:
// it must always terminate without panicking, whatever the input.
func TestLexerNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewPCG(99, 100))
	const alphabet = `<>/='"!-abc &#;xA `
	for trial := 0; trial < 500; trial++ {
		n := rng.IntN(120)
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.IntN(len(alphabet))]
		}
		lx := NewLexer(string(b))
		for steps := 0; ; steps++ {
			if _, ok := lx.Next(); !ok {
				break
			}
			if steps > 10*n+16 {
				t.Fatalf("lexer did not terminate on %q", b)
			}
		}
		_ = Parse(string(b)) // the segmenter must survive too
	}
}
