package html

import (
	"fmt"
	"strings"

	"l2q/internal/corpus"
	"l2q/internal/textproc"
)

// RenderPage renders a corpus page as a complete HTML document. The
// rendering is a faithful small web page: head with title and meta,
// one <p> per paragraph, and a footer nav with the page's outgoing links.
//
// Paragraph aspect labels are carried in data-aspect attributes. On the
// real Web those labels do not exist — they are produced by the aspect
// classifiers — but our synthetic corpus is also the supervision source
// for those classifiers, so the rendered site must preserve them for the
// ingestion round trip (ParsePage) to rebuild an equivalent corpus.
func RenderPage(p *corpus.Page) string {
	var b strings.Builder
	b.Grow(1024)
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", EscapeText(p.Title))
	fmt.Fprintf(&b, "<meta name=\"l2q-page-id\" content=\"%d\"/>\n", p.ID)
	fmt.Fprintf(&b, "<meta name=\"l2q-entity-id\" content=\"%d\"/>\n", p.Entity)
	b.WriteString("<style>body{font-family:serif}</style>\n")
	b.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", EscapeText(p.Title))
	for i := range p.Paras {
		para := &p.Paras[i]
		if para.Aspect != "" {
			fmt.Fprintf(&b, "<p data-aspect=\"%s\">%s</p>\n",
				EscapeAttr(string(para.Aspect)), EscapeText(para.Text))
		} else {
			fmt.Fprintf(&b, "<p>%s</p>\n", EscapeText(para.Text))
		}
	}
	if len(p.Links) > 0 {
		b.WriteString("<nav>\n")
		for _, l := range p.Links {
			fmt.Fprintf(&b, "<a href=\"%s\">related page %d</a>\n", PageHref(l), l)
		}
		b.WriteString("</nav>\n")
	}
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

// PageHref is the canonical relative URL of a corpus page in the rendered
// site; ParseHref inverts it.
func PageHref(id corpus.PageID) string {
	return fmt.Sprintf("/page/%d.html", id)
}

// ParseHref extracts the page ID from a canonical href; ok is false for
// foreign URLs.
func ParseHref(href string) (corpus.PageID, bool) {
	const prefix = "/page/"
	if !strings.HasPrefix(href, prefix) || !strings.HasSuffix(href, ".html") {
		return 0, false
	}
	num := href[len(prefix) : len(href)-len(".html")]
	id := 0
	for i := 0; i < len(num); i++ {
		c := num[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		id = id*10 + int(c-'0')
	}
	if num == "" {
		return 0, false
	}
	return corpus.PageID(id), true
}

// ParsePage ingests a rendered HTML document back into a corpus page: it
// segments paragraphs, recovers aspect labels from data-aspect attributes,
// tokenizes with the given tokenizer, and resolves canonical links. The
// entity assignment comes from the l2q-entity-id meta (fallback: the
// provided default). The <h1> heading duplicates the title and is dropped.
func ParsePage(src string, defaultEntity corpus.EntityID, tok *textproc.Tokenizer) *corpus.Page {
	d := Parse(src)
	p := &corpus.Page{Entity: defaultEntity, Title: d.Title}
	if v, ok := d.Meta["l2q-page-id"]; ok {
		if id, ok := parseInt(v); ok {
			p.ID = corpus.PageID(id)
		}
	}
	if v, ok := d.Meta["l2q-entity-id"]; ok {
		if id, ok := parseInt(v); ok {
			p.Entity = corpus.EntityID(id)
		}
	}
	for i, text := range d.Paragraphs {
		if text == d.Title && i == 0 {
			continue // the <h1> echo of the title
		}
		if isLinkParagraph(d, i) {
			continue // nav anchor text, not content
		}
		var aspect corpus.Aspect
		if attrs := d.ParaAttrs[i]; attrs != nil {
			aspect = corpus.Aspect(attrs["aspect"])
		}
		p.Paras = append(p.Paras, corpus.Paragraph{
			Text:   text,
			Tokens: tok.Tokenize(text),
			Aspect: aspect,
		})
	}
	for _, href := range d.Links {
		if id, ok := ParseHref(href); ok {
			p.Links = append(p.Links, id)
		}
	}
	return p
}

// isLinkParagraph reports whether paragraph i is the rendered nav block
// ("related page N" anchor text).
func isLinkParagraph(d *Document, i int) bool {
	return strings.HasPrefix(d.Paragraphs[i], "related page ")
}

func parseInt(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	n := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}
