package html

import "strings"

// Document is the segmented view of one HTML page: what the harvesting
// pipeline needs downstream — a title, metadata, paragraph texts, and
// outgoing links. It is the output of Parse.
type Document struct {
	// Title is the text of the first <title> element.
	Title string
	// Meta maps <meta name=...> to its content attribute.
	Meta map[string]string
	// Paragraphs are the block-segmented text runs, whitespace-normalized,
	// in document order. Empty runs are dropped.
	Paragraphs []string
	// ParaAttrs carries, for each paragraph, the data-* attributes of the
	// block element that opened it (e.g. data-aspect on rendered corpus
	// pages). Index-aligned with Paragraphs; nil when the block had none.
	ParaAttrs []map[string]string
	// Links are the href values of <a> elements, in document order,
	// duplicates preserved.
	Links []string
}

// blockElements end the current paragraph on open and on close — the same
// block-level segmentation jsoup-based pipelines use.
var blockElements = map[string]bool{
	"address": true, "article": true, "aside": true, "blockquote": true,
	"body": true, "caption": true, "dd": true, "div": true, "dl": true,
	"dt": true, "fieldset": true, "figcaption": true, "figure": true,
	"footer": true, "form": true, "h1": true, "h2": true, "h3": true,
	"h4": true, "h5": true, "h6": true, "header": true, "hr": true,
	"html": true, "li": true, "main": true, "nav": true, "ol": true,
	"p": true, "pre": true, "section": true, "table": true, "tbody": true,
	"td": true, "tfoot": true, "th": true, "thead": true, "tr": true,
	"ul": true,
}

// skipElements have their entire content discarded.
var skipElements = map[string]bool{
	"script": true, "style": true, "noscript": true,
	"textarea": true, "svg": true, "iframe": true,
}

// Parse tokenizes and segments an HTML document. It never fails; the
// worst malformed input yields an empty Document.
func Parse(src string) *Document {
	d := &Document{Meta: make(map[string]string)}
	lx := NewLexer(src)

	var text strings.Builder // accumulating paragraph text
	var curAttrs map[string]string
	skipDepth := 0 // inside script/style/svg/iframe
	inTitle := false
	var title strings.Builder

	flush := func() {
		para := normalizeSpace(text.String())
		text.Reset()
		if para == "" {
			curAttrs = nil
			return
		}
		d.Paragraphs = append(d.Paragraphs, para)
		d.ParaAttrs = append(d.ParaAttrs, curAttrs)
		curAttrs = nil
	}

	for {
		tok, ok := lx.Next()
		if !ok {
			break
		}
		switch tok.Type {
		case TextToken:
			if skipDepth > 0 {
				continue
			}
			if inTitle {
				title.WriteString(tok.Data)
				continue
			}
			text.WriteString(tok.Data)
		case StartTagToken, SelfClosingTagToken:
			name := tok.Data
			if skipElements[name] {
				if tok.Type == StartTagToken {
					skipDepth++
				}
				continue
			}
			switch {
			case name == "title":
				if tok.Type == StartTagToken {
					inTitle = true
				}
			case name == "meta":
				if k, ok := tok.Attr("name"); ok {
					if v, ok := tok.Attr("content"); ok {
						d.Meta[k] = v
					}
				}
			case name == "a":
				if href, ok := tok.Attr("href"); ok && href != "" {
					d.Links = append(d.Links, href)
				}
				text.WriteByte(' ') // anchors separate words
			case name == "br":
				text.WriteByte('\n')
			case blockElements[name]:
				flush()
				curAttrs = dataAttrs(tok.Attrs)
			default:
				// Inline element: word boundary, no paragraph break.
				text.WriteByte(' ')
			}
		case EndTagToken:
			name := tok.Data
			if skipElements[name] {
				if skipDepth > 0 {
					skipDepth--
				}
				continue
			}
			switch {
			case name == "title":
				inTitle = false
			case name == "a":
				text.WriteByte(' ')
			case blockElements[name]:
				flush()
			default:
				text.WriteByte(' ')
			}
		case CommentToken, DoctypeToken:
			// Ignored.
		}
	}
	flush()
	d.Title = normalizeSpace(title.String())
	return d
}

// dataAttrs extracts data-* attributes (without the prefix) or nil.
func dataAttrs(attrs []Attribute) map[string]string {
	var m map[string]string
	for _, a := range attrs {
		if strings.HasPrefix(a.Key, "data-") {
			if m == nil {
				m = make(map[string]string, 2)
			}
			m[a.Key[len("data-"):]] = a.Val
		}
	}
	return m
}

// normalizeSpace collapses whitespace runs to single spaces and trims.
func normalizeSpace(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	space := true // leading spaces dropped
	for _, r := range s {
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' || r == '\f' || r == '\u00a0' {
			if !space {
				b.WriteByte(' ')
				space = true
			}
			continue
		}
		b.WriteRune(r)
		space = false
	}
	return strings.TrimRight(b.String(), " ")
}
