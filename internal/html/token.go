// Package html is a small, dependency-free HTML substrate: a forgiving
// tokenizer, a block-level paragraph segmenter, and a renderer that turns
// corpus pages into HTML documents.
//
// The paper harvests real web pages and segments them into paragraphs with
// jsoup (§VI-A, footnote 4); the classifiers and the evaluation both run at
// paragraph granularity. This package is our jsoup substitute: the
// synthetic web is rendered to genuine HTML (render.go), and harvested
// documents are parsed and segmented back into paragraphs (segment.go).
// Keeping a real HTML boundary in the pipeline — rather than passing
// in-memory structs around — means the ingestion path is exercised exactly
// as it would be against live pages.
//
// The tokenizer is deliberately browser-like in spirit: it never fails on
// malformed input, it treats unknown constructs as text, and it handles
// the raw-text elements (script, style) whose content must not be
// interpreted as markup.
package html

import "strings"

// TokenType discriminates lexer tokens.
type TokenType uint8

// Token types produced by the Lexer.
const (
	// TextToken is a run of character data (entities already decoded).
	TextToken TokenType = iota
	// StartTagToken is an opening tag like <p class="x">.
	StartTagToken
	// EndTagToken is a closing tag like </p>.
	EndTagToken
	// SelfClosingTagToken is a void-style tag like <br/>.
	SelfClosingTagToken
	// CommentToken is a <!-- ... --> comment (Data holds the body).
	CommentToken
	// DoctypeToken is a <!DOCTYPE ...> or other <!...> declaration.
	DoctypeToken
)

func (t TokenType) String() string {
	switch t {
	case TextToken:
		return "text"
	case StartTagToken:
		return "start"
	case EndTagToken:
		return "end"
	case SelfClosingTagToken:
		return "self-closing"
	case CommentToken:
		return "comment"
	case DoctypeToken:
		return "doctype"
	}
	return "unknown"
}

// Attribute is one key/value pair on a start tag. Val is entity-decoded;
// valueless attributes have Val == "".
type Attribute struct {
	Key string
	Val string
}

// Token is one lexical unit of an HTML document. For tag tokens Data is
// the lowercased tag name; for text and comments it is the content.
type Token struct {
	Type  TokenType
	Data  string
	Attrs []Attribute
}

// Attr returns the value of the named attribute and whether it is present.
func (t *Token) Attr(key string) (string, bool) {
	for i := range t.Attrs {
		if t.Attrs[i].Key == key {
			return t.Attrs[i].Val, true
		}
	}
	return "", false
}

// rawTextElements are elements whose content is not markup: everything up
// to the matching end tag is a single text token that the segmenter will
// then discard.
var rawTextElements = map[string]bool{
	"script":   true,
	"style":    true,
	"noscript": true,
	"textarea": true,
}

// Lexer tokenizes an HTML document. It never returns errors: malformed
// markup degrades to text, as in browsers. The zero value is not usable;
// construct with NewLexer.
type Lexer struct {
	src string
	pos int
	// pendingRaw is the raw-text element whose content the next Next call
	// must consume verbatim (set after emitting e.g. <script>).
	pendingRaw string
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token. The second result is false at end of input.
func (l *Lexer) Next() (Token, bool) {
	if l.pendingRaw != "" {
		tag := l.pendingRaw
		l.pendingRaw = ""
		if text, ok := l.rawText(tag); ok {
			return Token{Type: TextToken, Data: text}, true
		}
		// Fall through: no content before the end tag (or EOF).
	}
	if l.pos >= len(l.src) {
		return Token{}, false
	}
	if l.src[l.pos] != '<' {
		return l.text(), true
	}
	// A '<' only opens markup when followed by a letter, '/', '!' or '?';
	// otherwise it is literal text ("a < b").
	if l.pos+1 >= len(l.src) {
		l.pos++
		return Token{Type: TextToken, Data: "<"}, true
	}
	switch c := l.src[l.pos+1]; {
	case c == '!':
		return l.declaration(), true
	case c == '?':
		return l.processingInstruction(), true
	case c == '/':
		return l.endTag(), true
	case isTagNameStart(c):
		return l.startTag(), true
	default:
		l.pos++
		return Token{Type: TextToken, Data: "<"}, true
	}
}

// text consumes character data up to the next markup-opening '<'.
func (l *Lexer) text() Token {
	start := l.pos
	for l.pos < len(l.src) {
		i := strings.IndexByte(l.src[l.pos:], '<')
		if i < 0 {
			l.pos = len(l.src)
			break
		}
		l.pos += i
		if l.pos+1 < len(l.src) {
			c := l.src[l.pos+1]
			if c == '!' || c == '?' || c == '/' || isTagNameStart(c) {
				break
			}
		}
		l.pos++ // literal '<'
	}
	return Token{Type: TextToken, Data: DecodeEntities(l.src[start:l.pos])}
}

// rawText consumes everything up to </tag (case-insensitive) and returns
// it verbatim, leaving the end tag for the next call. Returns ok=false if
// the content is empty.
func (l *Lexer) rawText(tag string) (string, bool) {
	lower := strings.ToLower(l.src[l.pos:])
	idx := strings.Index(lower, "</"+tag)
	var content string
	if idx < 0 {
		content = l.src[l.pos:]
		l.pos = len(l.src)
	} else {
		content = l.src[l.pos : l.pos+idx]
		l.pos += idx
	}
	return content, content != ""
}

// declaration consumes <!...> constructs: comments and doctypes.
func (l *Lexer) declaration() Token {
	if strings.HasPrefix(l.src[l.pos:], "<!--") {
		body := l.src[l.pos+4:]
		end := strings.Index(body, "-->")
		if end < 0 {
			l.pos = len(l.src)
			return Token{Type: CommentToken, Data: body}
		}
		l.pos += 4 + end + 3
		return Token{Type: CommentToken, Data: body[:end]}
	}
	start := l.pos + 2
	end := strings.IndexByte(l.src[start:], '>')
	if end < 0 {
		data := l.src[start:]
		l.pos = len(l.src)
		return Token{Type: DoctypeToken, Data: strings.TrimSpace(data)}
	}
	data := l.src[start : start+end]
	l.pos = start + end + 1
	return Token{Type: DoctypeToken, Data: strings.TrimSpace(data)}
}

// processingInstruction consumes <? ... > (treated as a doctype-like
// declaration; HTML5 parsers emit these as bogus comments).
func (l *Lexer) processingInstruction() Token {
	start := l.pos + 2
	end := strings.IndexByte(l.src[start:], '>')
	if end < 0 {
		data := l.src[start:]
		l.pos = len(l.src)
		return Token{Type: CommentToken, Data: data}
	}
	data := l.src[start : start+end]
	l.pos = start + end + 1
	return Token{Type: CommentToken, Data: data}
}

// endTag consumes </name ...>.
func (l *Lexer) endTag() Token {
	start := l.pos + 2
	end := strings.IndexByte(l.src[start:], '>')
	if end < 0 {
		name := strings.ToLower(strings.TrimSpace(l.src[start:]))
		l.pos = len(l.src)
		return Token{Type: EndTagToken, Data: name}
	}
	name := l.src[start : start+end]
	if i := strings.IndexAny(name, " \t\r\n/"); i >= 0 {
		name = name[:i]
	}
	l.pos = start + end + 1
	return Token{Type: EndTagToken, Data: strings.ToLower(name)}
}

// startTag consumes <name attrs...> including self-closing forms, and arms
// raw-text mode for script/style/noscript/textarea.
func (l *Lexer) startTag() Token {
	start := l.pos + 1
	i := start
	for i < len(l.src) && isTagNameChar(l.src[i]) {
		i++
	}
	name := strings.ToLower(l.src[start:i])
	tok := Token{Type: StartTagToken, Data: name}

	for {
		for i < len(l.src) && isSpace(l.src[i]) {
			i++
		}
		if i >= len(l.src) {
			break
		}
		if l.src[i] == '>' {
			i++
			break
		}
		if l.src[i] == '/' {
			// Possible self-closing slash; only meaningful before '>'.
			j := i + 1
			for j < len(l.src) && isSpace(l.src[j]) {
				j++
			}
			if j < len(l.src) && l.src[j] == '>' {
				tok.Type = SelfClosingTagToken
				i = j + 1
				break
			}
			i++
			continue
		}
		var attr Attribute
		attr, i = l.attribute(i)
		if attr.Key != "" {
			tok.Attrs = append(tok.Attrs, attr)
		}
	}
	l.pos = i
	if tok.Type == StartTagToken && rawTextElements[name] {
		l.pendingRaw = name
	}
	return tok
}

// attribute parses one attribute starting at i; returns the attribute and
// the next position.
func (l *Lexer) attribute(i int) (Attribute, int) {
	start := i
	for i < len(l.src) && !isSpace(l.src[i]) && l.src[i] != '=' && l.src[i] != '>' && l.src[i] != '/' {
		i++
	}
	key := strings.ToLower(l.src[start:i])
	for i < len(l.src) && isSpace(l.src[i]) {
		i++
	}
	if i >= len(l.src) || l.src[i] != '=' {
		return Attribute{Key: key}, i
	}
	i++ // consume '='
	for i < len(l.src) && isSpace(l.src[i]) {
		i++
	}
	if i >= len(l.src) {
		return Attribute{Key: key}, i
	}
	switch q := l.src[i]; q {
	case '"', '\'':
		i++
		vstart := i
		for i < len(l.src) && l.src[i] != q {
			i++
		}
		val := l.src[vstart:i]
		if i < len(l.src) {
			i++ // closing quote
		}
		return Attribute{Key: key, Val: DecodeEntities(val)}, i
	default:
		vstart := i
		for i < len(l.src) && !isSpace(l.src[i]) && l.src[i] != '>' {
			i++
		}
		return Attribute{Key: key, Val: DecodeEntities(l.src[vstart:i])}, i
	}
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

func isTagNameStart(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isTagNameChar(c byte) bool {
	return isTagNameStart(c) || (c >= '0' && c <= '9') || c == '-' || c == ':'
}
