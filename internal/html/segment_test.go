package html

import (
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"l2q/internal/corpus"
	"l2q/internal/textproc"
)

func TestParseBasicDocument(t *testing.T) {
	d := Parse(`<!DOCTYPE html><html><head>
		<title>Marc Snir</title>
		<meta name="author" content="gen">
		<style>p{color:red}</style>
	</head><body>
		<h1>Heading</h1>
		<p>First paragraph.</p>
		<p>Second  with   spaces.</p>
		<div>Third in a div with <b>bold</b> text.</div>
	</body></html>`)

	if d.Title != "Marc Snir" {
		t.Errorf("title = %q", d.Title)
	}
	if d.Meta["author"] != "gen" {
		t.Errorf("meta = %v", d.Meta)
	}
	want := []string{
		"Heading",
		"First paragraph.",
		"Second with spaces.",
		"Third in a div with bold text.",
	}
	if !reflect.DeepEqual(d.Paragraphs, want) {
		t.Errorf("paragraphs = %q, want %q", d.Paragraphs, want)
	}
}

func TestParseSkipsScriptStyle(t *testing.T) {
	d := Parse(`<body><p>keep</p><script>drop me</script><style>p{}</style><p>also keep</p></body>`)
	want := []string{"keep", "also keep"}
	if !reflect.DeepEqual(d.Paragraphs, want) {
		t.Errorf("paragraphs = %q", d.Paragraphs)
	}
}

func TestParseLinks(t *testing.T) {
	d := Parse(`<body><p>See <a href="/page/12.html">twelve</a> and
		<a href="http://other.example.com/">offsite</a>.</p></body>`)
	want := []string{"/page/12.html", "http://other.example.com/"}
	if !reflect.DeepEqual(d.Links, want) {
		t.Errorf("links = %q", d.Links)
	}
	if len(d.Paragraphs) != 1 || !strings.Contains(d.Paragraphs[0], "twelve") {
		t.Errorf("anchor text lost: %q", d.Paragraphs)
	}
}

func TestParseDataAttrs(t *testing.T) {
	d := Parse(`<body><p data-aspect="RESEARCH" data-x="1">a</p><p>b</p></body>`)
	if len(d.Paragraphs) != 2 {
		t.Fatalf("paragraphs = %q", d.Paragraphs)
	}
	if d.ParaAttrs[0]["aspect"] != "RESEARCH" || d.ParaAttrs[0]["x"] != "1" {
		t.Errorf("attrs[0] = %v", d.ParaAttrs[0])
	}
	if d.ParaAttrs[1] != nil {
		t.Errorf("attrs[1] = %v, want nil", d.ParaAttrs[1])
	}
}

func TestParseBrAndInline(t *testing.T) {
	d := Parse(`<body><p>line one<br>line two</p><p>a<em>b</em>c</p></body>`)
	if d.Paragraphs[0] != "line one line two" {
		t.Errorf("br paragraph = %q", d.Paragraphs[0])
	}
	// Inline tags become word boundaries, never paragraph breaks.
	if d.Paragraphs[1] != "a b c" {
		t.Errorf("inline paragraph = %q", d.Paragraphs[1])
	}
}

func TestParseListItems(t *testing.T) {
	d := Parse(`<ul><li>one</li><li>two</li></ul>`)
	want := []string{"one", "two"}
	if !reflect.DeepEqual(d.Paragraphs, want) {
		t.Errorf("list paragraphs = %q", d.Paragraphs)
	}
}

func TestParseMalformedNeverPanics(t *testing.T) {
	for _, src := range []string{
		"", "<", "<<<>>>", "<p", "text only", "<body><p>unclosed",
		"<title>no end", "</unopened></p>", "<a href=>x</a>",
		strings.Repeat("<p>x", 1000),
	} {
		_ = Parse(src) // must not panic
	}
}

func TestPageHrefRoundTrip(t *testing.T) {
	for _, id := range []corpus.PageID{0, 1, 12345} {
		got, ok := ParseHref(PageHref(id))
		if !ok || got != id {
			t.Errorf("round trip %d -> %d, %v", id, got, ok)
		}
	}
	for _, href := range []string{"", "/page/.html", "/page/x.html", "http://x/", "/page/1.htm"} {
		if _, ok := ParseHref(href); ok {
			t.Errorf("ParseHref(%q) unexpectedly ok", href)
		}
	}
}

func TestRenderParsePageRoundTrip(t *testing.T) {
	tok := &textproc.Tokenizer{}
	orig := &corpus.Page{
		ID:     42,
		Entity: 7,
		Title:  "Marc Snir research",
		Links:  []corpus.PageID{3, 99},
		Paras: []corpus.Paragraph{
			{Text: "He conducts research on parallel & hpc systems.", Aspect: "RESEARCH"},
			{Text: "Visit him at Siebel Center, U Illinois.", Aspect: ""},
			{Text: "He won the <best paper> award.", Aspect: "AWARD"},
		},
	}
	for i := range orig.Paras {
		orig.Paras[i].Tokens = tok.Tokenize(orig.Paras[i].Text)
	}

	rendered := RenderPage(orig)
	got := ParsePage(rendered, 0, tok)

	if got.ID != orig.ID || got.Entity != orig.Entity || got.Title != orig.Title {
		t.Fatalf("identity: got %d/%d/%q", got.ID, got.Entity, got.Title)
	}
	if !reflect.DeepEqual(got.Links, orig.Links) {
		t.Errorf("links = %v, want %v", got.Links, orig.Links)
	}
	if len(got.Paras) != len(orig.Paras) {
		t.Fatalf("paragraph count = %d, want %d: %q", len(got.Paras), len(orig.Paras), rendered)
	}
	for i := range orig.Paras {
		if got.Paras[i].Text != orig.Paras[i].Text {
			t.Errorf("para %d text = %q, want %q", i, got.Paras[i].Text, orig.Paras[i].Text)
		}
		if got.Paras[i].Aspect != orig.Paras[i].Aspect {
			t.Errorf("para %d aspect = %q, want %q", i, got.Paras[i].Aspect, orig.Paras[i].Aspect)
		}
		if !reflect.DeepEqual(got.Paras[i].Tokens, orig.Paras[i].Tokens) {
			t.Errorf("para %d tokens differ", i)
		}
	}
}

// TestRenderParseQuick fuzzes the render→parse round trip with random
// printable paragraph texts: every already-normalized text must survive.
func TestRenderParseQuick(t *testing.T) {
	tok := &textproc.Tokenizer{}
	rng := rand.New(rand.NewPCG(1, 2))
	// Alphabet intentionally includes HTML-significant characters.
	const alphabet = "abc XYZ 09.&<>\"'=/"

	gen := func() string {
		n := 1 + rng.IntN(40)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[rng.IntN(len(alphabet))])
		}
		return normalizeSpace(b.String())
	}

	f := func() bool {
		text := gen()
		if text == "" {
			return true
		}
		p := &corpus.Page{ID: 1, Entity: 1, Title: "t",
			Paras: []corpus.Paragraph{{Text: text, Aspect: "A"}}}
		p.Paras[0].Tokens = tok.Tokenize(text)
		got := ParsePage(RenderPage(p), 1, tok)
		return len(got.Paras) == 1 && got.Paras[0].Text == text &&
			got.Paras[0].Aspect == "A"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeSpace(t *testing.T) {
	cases := map[string]string{
		"":               "",
		"  a  b  ":       "a b",
		"a\n\tb\r\nc":    "a b c",
		"x":              "x",
		" \t\n ":         "",
		"a b":            "a b",
		"one  two three": "one two three",
	}
	for in, want := range cases {
		if got := normalizeSpace(in); got != want {
			t.Errorf("normalizeSpace(%q) = %q, want %q", in, got, want)
		}
	}
}
