package html

import (
	"reflect"
	"testing"

	"l2q/internal/corpus"
	"l2q/internal/synth"
	"l2q/internal/textproc"
)

// TestSiteRoundTrip renders a full synthetic corpus to HTML and ingests it
// back, checking that entities, pages, paragraph labels and tokens all
// survive the HTML boundary — the fidelity the harvesting pipeline relies
// on when it operates over rendered pages instead of in-memory structs.
func TestSiteRoundTrip(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	orig := g.Corpus

	site := RenderSite(orig)
	if len(site) != orig.NumPages()+1 {
		t.Fatalf("site has %d files, want %d", len(site), orig.NumPages()+1)
	}

	got, err := ParseSite(site, g.Tokenizer)
	if err != nil {
		t.Fatal(err)
	}
	if got.Domain != orig.Domain {
		t.Errorf("domain = %q, want %q", got.Domain, orig.Domain)
	}
	if got.NumEntities() != orig.NumEntities() {
		t.Fatalf("entities = %d, want %d", got.NumEntities(), orig.NumEntities())
	}
	if got.NumPages() != orig.NumPages() {
		t.Fatalf("pages = %d, want %d", got.NumPages(), orig.NumPages())
	}

	for _, oe := range orig.Entities {
		ge := got.Entity(oe.ID)
		if ge == nil {
			t.Fatalf("entity %d missing", oe.ID)
		}
		if ge.Name != oe.Name || ge.SeedQuery != oe.SeedQuery {
			t.Errorf("entity %d: got %q/%q, want %q/%q",
				oe.ID, ge.Name, ge.SeedQuery, oe.Name, oe.SeedQuery)
		}
		if !reflect.DeepEqual(ge.Attrs, oe.Attrs) {
			t.Errorf("entity %d attrs: got %v, want %v", oe.ID, ge.Attrs, oe.Attrs)
		}
	}

	byID := make(map[corpus.PageID]*corpus.Page, got.NumPages())
	for _, p := range got.Pages {
		byID[p.ID] = p
	}
	for _, op := range orig.Pages {
		gp := byID[op.ID]
		if gp == nil {
			t.Fatalf("page %d missing", op.ID)
		}
		if gp.Entity != op.Entity || gp.Title != op.Title {
			t.Errorf("page %d: entity/title mismatch", op.ID)
		}
		if len(gp.Paras) != len(op.Paras) {
			t.Fatalf("page %d: %d paragraphs, want %d", op.ID, len(gp.Paras), len(op.Paras))
		}
		for i := range op.Paras {
			if gp.Paras[i].Aspect != op.Paras[i].Aspect {
				t.Errorf("page %d para %d aspect = %q, want %q",
					op.ID, i, gp.Paras[i].Aspect, op.Paras[i].Aspect)
			}
			if !reflect.DeepEqual(gp.Paras[i].Tokens, op.Paras[i].Tokens) {
				t.Errorf("page %d para %d tokens differ:\n got %v\nwant %v",
					op.ID, i, gp.Paras[i].Tokens, op.Paras[i].Tokens)
			}
		}
	}
}

func TestParseSiteErrors(t *testing.T) {
	if _, err := ParseSite(Site{}, nil); err == nil {
		t.Error("missing index should fail")
	}
	// A page referencing an entity absent from the index.
	site := Site{
		IndexPath: `<html><body><ul><li data-entity-id="1" data-seed="s" data-name="n">n</li></ul></body></html>`,
		PageHref(5): RenderPage(&corpus.Page{
			ID: 5, Entity: 99, Title: "x",
			Paras: []corpus.Paragraph{{Text: "t"}},
		}),
	}
	if _, err := ParseSite(site, &textproc.Tokenizer{}); err == nil {
		t.Error("unknown entity reference should fail")
	}
}
