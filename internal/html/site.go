package html

import (
	"fmt"
	"sort"
	"strings"

	"l2q/internal/corpus"
	"l2q/internal/textproc"
)

// Site is a rendered corpus: a map from site-relative path to HTML
// document. It contains one index page ("/index.html") carrying the
// entity directory and one page per corpus page (PageHref paths).
type Site map[string]string

// IndexPath is the path of the entity directory page.
const IndexPath = "/index.html"

// RenderSite renders a whole corpus as a static HTML site. The index page
// lists every entity with its metadata in data-* attributes, so that
// ParseSite can reconstruct an equivalent corpus without side channels —
// the same shape as a vertical portal's entity directory.
func RenderSite(c *corpus.Corpus) Site {
	s := make(Site, c.NumPages()+1)

	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&b, "<title>%s directory</title>\n", EscapeText(string(c.Domain)))
	fmt.Fprintf(&b, "<meta name=\"l2q-domain\" content=\"%s\"/>\n", EscapeAttr(string(c.Domain)))
	b.WriteString("</head>\n<body>\n<ul>\n")
	for _, e := range c.Entities {
		fmt.Fprintf(&b, "<li data-entity-id=\"%d\" data-seed=\"%s\" data-name=\"%s\"",
			e.ID, EscapeAttr(e.SeedQuery), EscapeAttr(e.Name))
		// Attrs render sorted for deterministic output.
		keys := make([]string, 0, len(e.Attrs))
		for k := range e.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " data-attr-%s=\"%s\"", EscapeAttr(k), EscapeAttr(e.Attrs[k]))
		}
		fmt.Fprintf(&b, ">%s</li>\n", EscapeText(e.Name))
	}
	b.WriteString("</ul>\n</body>\n</html>\n")
	s[IndexPath] = b.String()

	for _, p := range c.Pages {
		s[PageHref(p.ID)] = RenderPage(p)
	}
	return s
}

// ParseSite reconstructs a corpus from a rendered site: entities from the
// index page, pages from every PageHref path, re-tokenized with tok.
// Pages referencing entities missing from the index are skipped with an
// error only if strict reconstruction fails entirely.
func ParseSite(s Site, tok *textproc.Tokenizer) (*corpus.Corpus, error) {
	idx, ok := s[IndexPath]
	if !ok {
		return nil, fmt.Errorf("html: site has no %s", IndexPath)
	}
	d := Parse(idx)
	c := corpus.New(corpus.Domain(d.Meta["l2q-domain"]))

	// Entity directory: one <li> per entity; dataAttrs are exposed via
	// ParaAttrs of the list-item paragraphs.
	for i := range d.Paragraphs {
		attrs := d.ParaAttrs[i]
		if attrs == nil {
			continue
		}
		idStr, ok := attrs["entity-id"]
		if !ok {
			continue
		}
		id, ok := parseInt(idStr)
		if !ok {
			return nil, fmt.Errorf("html: bad entity id %q in index", idStr)
		}
		e := &corpus.Entity{
			ID:        corpus.EntityID(id),
			Domain:    c.Domain,
			Name:      attrs["name"],
			SeedQuery: attrs["seed"],
		}
		for k, v := range attrs {
			if strings.HasPrefix(k, "attr-") {
				if e.Attrs == nil {
					e.Attrs = make(map[string]string)
				}
				e.Attrs[k[len("attr-"):]] = v
			}
		}
		if err := c.AddEntity(e); err != nil {
			return nil, err
		}
	}

	// Pages, in deterministic path order.
	paths := make([]string, 0, len(s))
	for path := range s {
		if path != IndexPath {
			paths = append(paths, path)
		}
	}
	sort.Slice(paths, func(i, j int) bool {
		a, _ := ParseHref(paths[i])
		b, _ := ParseHref(paths[j])
		return a < b
	})
	for _, path := range paths {
		if _, ok := ParseHref(path); !ok {
			continue // foreign asset
		}
		p := ParsePage(s[path], -1, tok)
		if c.Entity(p.Entity) == nil {
			return nil, fmt.Errorf("html: page %s references unknown entity %d", path, p.Entity)
		}
		if err := c.AddPage(p); err != nil {
			return nil, err
		}
	}
	return c, nil
}
