package html

import (
	"strconv"
	"strings"
)

// namedEntities covers the named character references that occur in
// practice in the documents this pipeline produces or ingests. Unknown
// references pass through verbatim (browser behavior for bare '&').
var namedEntities = map[string]rune{
	"amp":    '&',
	"lt":     '<',
	"gt":     '>',
	"quot":   '"',
	"apos":   '\'',
	"nbsp":   '\u00a0',
	"copy":   '©',
	"reg":    '®',
	"trade":  '™',
	"mdash":  '—',
	"ndash":  '–',
	"hellip": '…',
	"lsquo":  '‘',
	"rsquo":  '’',
	"ldquo":  '“',
	"rdquo":  '”',
	"middot": '·',
	"bull":   '•',
	"deg":    '°',
	"frac12": '½',
	"times":  '×',
	"eacute": 'é',
	"egrave": 'è',
	"uuml":   'ü',
	"ouml":   'ö',
	"auml":   'ä',
	"ccedil": 'ç',
	"ntilde": 'ñ',
}

// DecodeEntities replaces character references (&amp;, &#65;, &#x41;) with
// their characters. Malformed references are left untouched.
func DecodeEntities(s string) string {
	amp := strings.IndexByte(s, '&')
	if amp < 0 {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	b.WriteString(s[:amp])
	s = s[amp:]
	for len(s) > 0 {
		if s[0] != '&' {
			next := strings.IndexByte(s, '&')
			if next < 0 {
				b.WriteString(s)
				break
			}
			b.WriteString(s[:next])
			s = s[next:]
			continue
		}
		r, n := decodeOneEntity(s)
		if n == 0 {
			b.WriteByte('&')
			s = s[1:]
			continue
		}
		b.WriteRune(r)
		s = s[n:]
	}
	return b.String()
}

// decodeOneEntity decodes the reference at the start of s (which begins
// with '&'); returns the rune and the number of bytes consumed, or 0 if
// the text is not a valid reference.
func decodeOneEntity(s string) (rune, int) {
	end := strings.IndexByte(s, ';')
	if end < 0 || end == 1 || end > 12 {
		return 0, 0
	}
	body := s[1:end]
	if body[0] == '#' {
		num := body[1:]
		base := 10
		if len(num) > 1 && (num[0] == 'x' || num[0] == 'X') {
			base = 16
			num = num[1:]
		}
		v, err := strconv.ParseUint(num, base, 32)
		if err != nil || v == 0 || v > 0x10ffff {
			return 0, 0
		}
		return rune(v), end + 1
	}
	if r, ok := namedEntities[body]; ok {
		return r, end + 1
	}
	return 0, 0
}

// EscapeText escapes character data for inclusion in an HTML text node.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, "&<>") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// EscapeAttr escapes a string for inclusion in a double-quoted attribute.
func EscapeAttr(s string) string {
	if !strings.ContainsAny(s, "&<>\"") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '"':
			b.WriteString("&quot;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
