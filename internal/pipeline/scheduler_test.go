package pipeline

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/search"
	"l2q/internal/synth"
)

// outcome is one session's observable result: the fired sequence and the
// gathered page IDs.
type outcome struct {
	fired []core.Query
	pages []corpus.PageID
}

func sessionOutcome(fired []core.Query, s *core.Session) outcome {
	o := outcome{fired: fired}
	for _, p := range s.Pages() {
		o.pages = append(o.pages, p.ID)
	}
	return o
}

// sequentialReference runs each target session to completion one at a
// time — the ground truth every scheduler configuration must reproduce.
func sequentialReference(f *fixture, targets []*corpus.Entity, nQueries int) []outcome {
	want := make([]outcome, len(targets))
	for i, e := range targets {
		s := f.session(e, nil)
		fired := s.Run(core.NewL2QBAL(), nQueries)
		want[i] = sessionOutcome(fired, s)
	}
	return want
}

// TestSchedulerMatchesRun is the tentpole's differential-parity core: many
// batches submitted concurrently to ONE long-lived scheduler must each
// fire identical per-entity query sequences and gather identical page
// sets as the sequential reference (and therefore as the one-shot Run,
// which the existing TestPipelineMatchesSequential pins to the same
// reference).
func TestSchedulerMatchesRun(t *testing.T) {
	f := newFixture(t)
	targets := f.targets(6)
	const nQueries = 3
	want := sequentialReference(f, targets, nQueries)

	s := New(Config{SelectWorkers: 3, FetchWorkers: 8})
	defer s.Close()

	const submitters = 3
	got := make([][]outcome, submitters)
	var wg sync.WaitGroup
	for sub := 0; sub < submitters; sub++ {
		wg.Add(1)
		go func(sub int) {
			defer wg.Done()
			jobs := make([]Job, len(targets))
			sessions := make([]*core.Session, len(targets))
			for i, e := range targets {
				sessions[i] = f.session(e, nil)
				jobs[i] = Job{Session: sessions[i], Selector: core.NewL2QBAL(), NQueries: nQueries}
			}
			b, err := s.Submit(context.Background(), jobs, BatchOptions{})
			if err != nil {
				t.Error(err)
				return
			}
			results := b.Await(context.Background())
			out := make([]outcome, len(targets))
			for i := range targets {
				if results[i].Err != nil {
					t.Errorf("submitter %d job %d: %v", sub, i, results[i].Err)
				}
				out[i] = sessionOutcome(results[i].Fired, sessions[i])
			}
			got[sub] = out
		}(sub)
	}
	wg.Wait()

	for sub := range got {
		for i := range targets {
			if !reflect.DeepEqual(got[sub][i].fired, want[i].fired) {
				t.Errorf("submitter %d entity %d fired %v, want %v", sub, i, got[sub][i].fired, want[i].fired)
			}
			if !reflect.DeepEqual(got[sub][i].pages, want[i].pages) {
				t.Errorf("submitter %d entity %d pages differ", sub, i)
			}
		}
	}

	st := s.Stats()
	if st.FinishedJobs != int64(submitters*len(targets)) {
		t.Errorf("FinishedJobs = %d, want %d", st.FinishedJobs, submitters*len(targets))
	}
	if st.FiredQueries != int64(submitters*len(targets)*nQueries) {
		t.Errorf("FiredQueries = %d, want %d", st.FiredQueries, submitters*len(targets)*nQueries)
	}
	if st.ActiveJobs != 0 || st.QueuedJobs != 0 || st.Batches != 0 {
		t.Errorf("scheduler not quiescent after completion: %+v", st)
	}
}

// TestSchedulerAdmissionFIFO: with MaxActive=1, jobs run strictly one at
// a time in submission order, across batches.
func TestSchedulerAdmissionFIFO(t *testing.T) {
	f := newFixture(t)
	targets := f.targets(4)

	s := New(Config{SelectWorkers: 2, FetchWorkers: 4, MaxActive: 1})
	defer s.Close()

	var mu sync.Mutex
	var order []corpus.EntityID

	batches := make([]*Batch, len(targets))
	for i, e := range targets {
		sess := f.session(e, nil)
		id := e.ID
		sess.Trace = func(core.TraceRecord) {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
		}
		b, err := s.Submit(context.Background(), []Job{{Session: sess, Selector: core.NewP(), NQueries: 2}}, BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		batches[i] = b
	}
	for _, b := range batches {
		for _, r := range b.Await(context.Background()) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
	}

	// With one admission slot, each entity's trace records must form a
	// contiguous block in submission order.
	mu.Lock()
	defer mu.Unlock()
	var wantOrder []corpus.EntityID
	for _, e := range targets {
		wantOrder = append(wantOrder, e.ID, e.ID)
	}
	if !reflect.DeepEqual(order, wantOrder) {
		t.Errorf("admission order %v, want FIFO %v", order, wantOrder)
	}
}

// TestSchedulerFairShare: a small batch submitted after a large
// slow-fetching batch must not wait for the whole backlog — round-robin
// across batches gives it its share of the pools immediately.
func TestSchedulerFairShare(t *testing.T) {
	f := newFixture(t)
	targets := f.targets(9)

	s := New(Config{SelectWorkers: 2, FetchWorkers: 2})
	defer s.Close()

	slowJobs := make([]Job, 8)
	for i, e := range targets[:8] {
		fetcher := search.NewFetcher(30 * time.Millisecond)
		fetcher.Sleep = true
		slowJobs[i] = Job{Session: f.session(e, fetcher), Selector: core.NewRT(), NQueries: 3}
	}
	slow, err := s.Submit(context.Background(), slowJobs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	fast, err := s.Submit(context.Background(), []Job{
		{Session: f.session(targets[8], nil), Selector: core.NewRT(), NQueries: 2},
	}, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	fastRes := fast.Await(context.Background())
	fastTime := time.Since(start)
	slowRes := slow.Await(context.Background())
	slowTime := time.Since(start)

	for _, r := range append(fastRes, slowRes...) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	// The fast batch (instant fetches) must finish well before the slow
	// backlog drains; without fair share it would queue behind 8×3 slow
	// fetch rounds.
	if fastTime > slowTime/2 {
		t.Errorf("fast batch took %v of the slow batch's %v: no fair share", fastTime, slowTime)
	}
}

// TestSchedulerCancelLatency mirrors TestPipelineCancellationLatency for
// Batch.Cancel: canceling one batch aborts its in-flight 20 s fetches
// within milliseconds, and an independent batch on the same scheduler is
// untouched.
func TestSchedulerCancelLatency(t *testing.T) {
	f := newFixture(t)
	targets := f.targets(5)

	s := New(Config{SelectWorkers: 2, FetchWorkers: 8})
	defer s.Close()

	slowJobs := make([]Job, 4)
	for i, e := range targets[:4] {
		sess := f.session(e, nil)
		sess.Engine = slowRetriever{Retriever: f.engine, delay: 20 * time.Second}
		slowJobs[i] = Job{Session: sess, Selector: core.NewRT(), NQueries: 5}
	}
	doomed, err := s.Submit(context.Background(), slowJobs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := s.Submit(context.Background(), []Job{
		{Session: f.session(targets[4], nil), Selector: core.NewRT(), NQueries: 2},
	}, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	doomed.Cancel()
	results := doomed.Await(context.Background())
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Cancel took %v, want ~ms", elapsed)
	}
	for i, r := range results {
		if r.Err == nil {
			t.Errorf("job %d finished despite 20s fetches", i)
		}
	}
	for _, r := range healthy.Await(context.Background()) {
		if r.Err != nil {
			t.Errorf("independent batch caught the cancellation: %v", r.Err)
		}
	}
}

// TestSchedulerDrain: Drain waits for submitted work and refuses new
// submissions afterwards.
func TestSchedulerDrain(t *testing.T) {
	f := newFixture(t)
	targets := f.targets(3)

	s := New(Config{SelectWorkers: 2, FetchWorkers: 4})
	defer s.Close()

	jobs := make([]Job, len(targets))
	for i, e := range targets {
		jobs[i] = Job{Session: f.session(e, nil), Selector: core.NewP(), NQueries: 2}
	}
	b, err := s.Submit(context.Background(), jobs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Done():
	default:
		t.Fatal("Drain returned with the batch unfinished")
	}
	for _, r := range b.Results() {
		if r.Err != nil {
			t.Error(r.Err)
		}
	}
	if _, err := s.Submit(context.Background(), jobs, BatchOptions{}); err == nil {
		t.Error("Submit accepted after Drain")
	}
}

// TestSchedulerResumedSession: a batch killed mid-harvest and resumed
// from its checkpoints finishes with the same fired-query sequence as an
// uninterrupted run — the tentpole's checkpoint/resume acceptance
// criterion, driven through the scheduler's pre-booted admission path.
func TestSchedulerResumedSession(t *testing.T) {
	f := newFixture(t)
	targets := f.targets(4)
	const nQueries = 4
	want := sequentialReference(f, targets, nQueries)

	s := New(Config{SelectWorkers: 2, FetchWorkers: 4})
	defer s.Close()

	// Phase 1: harvest with per-ingest checkpointing, cancel mid-run.
	var cpMu sync.Mutex
	latest := make(map[int]core.Checkpoint)
	jobs := make([]Job, len(targets))
	for i, e := range targets {
		fetcher := search.NewFetcher(10 * time.Millisecond)
		fetcher.Sleep = true
		jobs[i] = Job{Session: f.session(e, fetcher), Selector: core.NewL2QBAL(), NQueries: nQueries}
	}
	b, err := s.Submit(context.Background(), jobs, BatchOptions{
		Checkpoint: func(job int, cp core.Checkpoint) {
			cpMu.Lock()
			latest[job] = cp
			cpMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond) // let some queries land
	b.Cancel()
	b.Await(context.Background())

	// Phase 2: fresh sessions resumed from the kill-point checkpoints,
	// submitted with the remaining budget.
	jobs2 := make([]Job, len(targets))
	sessions2 := make([]*core.Session, len(targets))
	prior := make([][]core.Query, len(targets))
	for i, e := range targets {
		sessions2[i] = f.session(e, nil)
		remaining := nQueries
		if cp, ok := latest[i]; ok {
			if err := sessions2[i].Resume(cp); err != nil {
				t.Fatalf("resume job %d: %v", i, err)
			}
			prior[i] = cp.Fired
			remaining -= len(cp.Fired)
		}
		jobs2[i] = Job{Session: sessions2[i], Selector: core.NewL2QBAL(), NQueries: remaining}
	}
	b2, err := s.Submit(context.Background(), jobs2, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	results := b2.Await(context.Background())

	for i := range targets {
		if results[i].Err != nil {
			t.Fatalf("resumed job %d: %v", i, results[i].Err)
		}
		full := append(append([]core.Query(nil), prior[i]...), results[i].Fired...)
		if !reflect.DeepEqual(full, want[i].fired) {
			t.Errorf("entity %d: interrupted+resumed fired %v, uninterrupted %v", i, full, want[i].fired)
		}
		got := sessionOutcome(nil, sessions2[i])
		if !reflect.DeepEqual(got.pages, want[i].pages) {
			t.Errorf("entity %d: resumed pages differ from uninterrupted", i)
		}
	}
}

// TestSchedulerCloseAborts: Close cancels in-flight batches and makes
// Await return promptly with errors.
func TestSchedulerCloseAborts(t *testing.T) {
	f := newFixture(t)
	targets := f.targets(3)

	s := New(Config{SelectWorkers: 2, FetchWorkers: 4})
	jobs := make([]Job, len(targets))
	for i, e := range targets {
		sess := f.session(e, nil)
		sess.Engine = slowRetriever{Retriever: f.engine, delay: 20 * time.Second}
		jobs[i] = Job{Session: sess, Selector: core.NewRT(), NQueries: 5}
	}
	b, err := s.Submit(context.Background(), jobs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	start := time.Now()
	s.Close()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close took %v", elapsed)
	}
	canceled := 0
	for _, r := range b.Results() {
		if r.Err != nil {
			canceled++
		}
	}
	if canceled == 0 {
		t.Error("Close finished no jobs with errors despite 20s fetches in flight")
	}
}

// TestSchedulerSharesTunedEngine is the regression test for per-batch
// cache cold-starts: two batches submitted to one scheduler whose
// sessions share an in-process engine must resolve to the SAME tuned
// copy, so the query cache stays shared — and warm — across requests.
func TestSchedulerSharesTunedEngine(t *testing.T) {
	f := newFixture(t)
	targets := f.targets(2)

	s := New(Config{SelectWorkers: 2, FetchWorkers: 4}) // >1 selects → implicit re-tune
	defer s.Close()

	submit := func() core.Retriever {
		jobs := []Job{{Session: f.session(targets[0], nil), Selector: core.NewP(), NQueries: 1}}
		b, err := s.Submit(context.Background(), jobs, BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range b.Await(context.Background()) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
		return jobs[0].Session.Engine
	}
	e1, e2 := submit(), submit()
	if e1 != e2 {
		t.Fatal("second batch got a different tuned engine copy: query cache restarts cold per batch")
	}
	if e1 == core.Retriever(f.engine) {
		t.Fatal("engine was not re-tuned at all under parallel selection")
	}
}

// TestSchedulerSharedEnumerationRace drives concurrent scheduler batches
// over the same entities WHILE the domain phase re-learns over the same
// corpus: every one of those consumers enumerates the same immutable
// pages through the per-page n-gram memo (corpus.Page.NGrams), so this is
// the -race exercise for the shared-enumeration layer. Parity with the
// sequential reference must survive the contention.
func TestSchedulerSharedEnumerationRace(t *testing.T) {
	f := newFixture(t)
	targets := f.targets(4)
	const nQueries = 2
	want := sequentialReference(f, targets, nQueries)

	s := New(Config{SelectWorkers: 3, FetchWorkers: 6})
	defer s.Close()

	var domainIDs []corpus.EntityID
	for i := 0; i < f.g.Corpus.NumEntities()/2; i++ {
		domainIDs = append(domainIDs, f.g.Corpus.Entities[i].ID)
	}
	learnCfg := f.cfg
	learnCfg.LearnWorkers = 4

	stop := make(chan struct{})
	learnErr := make(chan error, 1)
	go func() {
		defer close(learnErr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Same pages, exclusion-free enumeration config: shares the
			// memo maps the harvesting sessions populate concurrently.
			if _, err := core.LearnDomainScored(learnCfg, synth.AspResearch,
				f.g.Corpus, domainIDs, f.y, nil, f.rec); err != nil {
				learnErr <- err
				return
			}
		}
	}()

	const submitters = 3
	var wg sync.WaitGroup
	for sub := 0; sub < submitters; sub++ {
		wg.Add(1)
		go func(sub int) {
			defer wg.Done()
			jobs := make([]Job, len(targets))
			sessions := make([]*core.Session, len(targets))
			for i, e := range targets {
				sessions[i] = f.session(e, nil)
				jobs[i] = Job{Session: sessions[i], Selector: core.NewL2QBAL(), NQueries: nQueries}
			}
			b, err := s.Submit(context.Background(), jobs, BatchOptions{})
			if err != nil {
				t.Error(err)
				return
			}
			results := b.Await(context.Background())
			for i := range targets {
				if results[i].Err != nil {
					t.Errorf("submitter %d job %d: %v", sub, i, results[i].Err)
					continue
				}
				got := sessionOutcome(results[i].Fired, sessions[i])
				if !reflect.DeepEqual(got, want[i]) {
					t.Errorf("submitter %d entity %d diverged under shared enumeration", sub, targets[i].ID)
				}
			}
		}(sub)
	}
	wg.Wait()
	close(stop)
	if err := <-learnErr; err != nil {
		t.Fatalf("concurrent domain learning failed: %v", err)
	}
}
