package pipeline

// Adaptive cross-entity budget allocation. The paper's premise is that
// queries are the cost unit (§I: every search-API call costs time, money
// and bandwidth), and Endrullis et al. (PAPERS.md) judge query generators
// on recall per query spent. A fixed per-entity budget ignores that
// signal: an entity whose collective recall R_E(Φ) has saturated keeps
// burning its remaining queries for nothing while a poorly-covered peer
// is starved. BudgetPolicy pools the batch's queries instead: the batch
// proceeds in rounds; each round, every still-hungry entity asks for one
// query, the pool ranks requests by the marginal ΔR_E(Φ) of each entity's
// last query, and grants while budget remains. Saturated entities
// (collective recall complete — or, with Patience set, too many
// consecutive queries under MinGain) and entities whose candidate pool
// ran dry stop early: their unspent share stays in the pool and flows to
// the highest-gain requesters of later rounds.
//
// The fixed-equal mode (the zero value) is the differential-parity
// reference: each job fires exactly Job.NQueries queries with no
// coordination, byte-identical to the one-shot Run path.

import "l2q/internal/core"

// BudgetMode selects how a batch's query budget is allocated.
type BudgetMode int

const (
	// BudgetFixed gives every job exactly its Job.NQueries queries —
	// today's batch behavior, held to differential parity with Run.
	BudgetFixed BudgetMode = iota
	// BudgetAdaptive pools the batch's queries and reallocates each
	// round toward the entities with the highest marginal ΔR_E(Φ).
	BudgetAdaptive
)

// BudgetPolicy tunes a batch's query-budget allocation. The zero value is
// fixed-equal allocation.
type BudgetPolicy struct {
	Mode BudgetMode
	// TotalQueries is the adaptive mode's global budget; 0 defaults to
	// the sum of the batch's Job.NQueries (the same spend as fixed mode,
	// which is what makes the two comparable).
	TotalQueries int
	// MinGain is the low-gain threshold on a query's marginal ΔR_E(Φ)
	// used by the Patience rule and the round ranking; 0 defaults to
	// 1e-6, i.e. "the query gathered no relevant page".
	MinGain float64
	// Patience enables the aggressive early-stop: an entity that fires
	// this many consecutive below-MinGain queries is declared saturated
	// and donates its remaining share. 0 (the default) disables it —
	// then an entity stops only when its collective recall R_E(Φ) is
	// complete (no possible gain left) or its candidates run out, which
	// makes adaptive allocation provably no worse than fixed-equal at
	// the same budget (R_E(Φ) is monotone, so every donated query can
	// only add). Positive Patience trades that guarantee for bigger
	// savings on long-tailed batches.
	Patience int
	// MaxPerEntity caps one entity's total queries in adaptive mode
	// (0 = unlimited); a fairness stop against one entity absorbing the
	// whole donated pool.
	MaxPerEntity int
}

// BatchOptions tunes one Submit call.
type BatchOptions struct {
	// Budget is the batch's allocation policy (zero value: fixed-equal).
	Budget BudgetPolicy
	// Checkpoint, when non-nil, receives the session's durable state
	// after every ingest (seed included), from the worker that owns the
	// job at that moment — the hook the server uses to persist in-flight
	// jobs. Calls for one job are serialized; calls for different jobs
	// are concurrent.
	Checkpoint func(job int, cp core.Checkpoint)
}

// budgetPool is the batch-scoped allocation state (guarded by the
// scheduler mutex).
type budgetPool struct {
	mode      BudgetMode
	remaining int // adaptive: unspent global budget
	minGain   float64
	patience  int
	maxPer    int
}

func newBudgetPool(p BudgetPolicy, jobs []Job) *budgetPool {
	bp := &budgetPool{
		mode:     p.Mode,
		minGain:  p.MinGain,
		patience: p.Patience,
		maxPer:   p.MaxPerEntity,
	}
	if bp.minGain <= 0 {
		bp.minGain = 1e-6
	}
	if bp.mode == BudgetAdaptive {
		bp.remaining = p.TotalQueries
		if bp.remaining <= 0 {
			for i := range jobs {
				bp.remaining += jobs[i].NQueries
			}
		}
	}
	return bp
}

// Decisions of decideLocked.
const (
	decideGrant  = iota // run the selector and fire the next query
	decidePark          // wait for the round barrier's budget grant
	decideFinish        // job is done (budget spent, saturated, or complete)
)

// decideLocked chooses a job's next move after an ingest (or on re-entry
// with a granted token).
func (b *Batch) decideLocked(i int) int {
	st := b.states[i]
	if b.pool.mode != BudgetAdaptive {
		if len(st.fired) >= st.job.NQueries {
			return decideFinish
		}
		return decideGrant
	}
	if st.granted {
		// Re-entry after a round grant: the token is already paid for.
		return decideGrant
	}
	if b.pool.remaining <= 0 {
		return decideFinish
	}
	if st.lastRPhi >= 1 {
		// Collective recall complete — the §V estimate has saturated, so
		// every further query would gain exactly zero. Donate the rest.
		return decideFinish
	}
	if b.pool.patience > 0 && st.lowStreak >= b.pool.patience {
		return decideFinish // aggressive early-stop (opt-in): donate
	}
	if b.pool.maxPer > 0 && len(st.fired) >= b.pool.maxPer {
		return decideFinish
	}
	return decidePark
}

// refundLocked returns an unspent grant to the pool (the selector found
// no candidate, so no search was attempted).
func (b *Batch) refundLocked(i int) {
	st := b.states[i]
	if st.granted {
		st.granted = false
		b.pool.remaining++
	}
}

// maybeReleaseLocked runs the round barrier: once every live job of an
// adaptive batch is parked, rank the requests by marginal ΔR_E(Φ) (ties
// by job index, so rounds are deterministic) and grant one query each
// while budget remains; requests beyond the budget finish. Fixed-mode
// batches never park, so this is a no-op for them.
func (b *Batch) maybeReleaseLocked() {
	if b.pool.mode != BudgetAdaptive || b.live == 0 {
		return
	}
	ready := b.parked[:0:0]
	for _, i := range b.parked {
		if b.states[i].stage == stageParked {
			ready = append(ready, i)
		}
	}
	if len(ready) < b.live {
		return // some live job is still mid-cycle; the round is not over
	}
	b.parked = nil
	// Insertion sort by (gain desc, index asc): rounds are small and the
	// determinism matters more than asymptotics.
	for x := 1; x < len(ready); x++ {
		for y := x; y > 0; y-- {
			gy, gp := b.states[ready[y]].lastGain, b.states[ready[y-1]].lastGain
			if gy > gp || (gy == gp && ready[y] < ready[y-1]) {
				ready[y], ready[y-1] = ready[y-1], ready[y]
			} else {
				break
			}
		}
	}
	grants := len(ready)
	if b.pool.remaining < grants {
		grants = b.pool.remaining
	}
	for k, i := range ready {
		st := b.states[i]
		if k < grants {
			b.pool.remaining--
			st.granted = true
			st.stage = stageSelectQueued
			b.selectQ = append(b.selectQ, i)
		} else {
			b.finishLocked(i, nil) // budget exhausted
		}
	}
	if grants > 0 {
		b.s.selCond.Broadcast()
	}
}
