package pipeline

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"l2q/internal/classify"
	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/search"
	"l2q/internal/synth"
	"l2q/internal/types"
)

type fixture struct {
	g      *synth.Generated
	engine *search.Engine
	rec    types.Recognizer
	y      func(*corpus.Page) bool
	dm     *core.DomainModel
	cfg    core.Config
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	engine := search.NewEngine(search.BuildIndex(g.Corpus.Pages))
	rec := types.Chain{g.KB, types.NewRegexRecognizer()}
	aspect := synth.AspResearch
	y := func(p *corpus.Page) bool { return classify.GroundTruth(p, aspect) }
	cfg := core.DefaultConfig()
	cfg.Tokenizer = g.Tokenizer
	var domain []corpus.EntityID
	for i := 0; i < g.Corpus.NumEntities()/2; i++ {
		domain = append(domain, g.Corpus.Entities[i].ID)
	}
	dm, err := core.LearnDomain(cfg, aspect, g.Corpus, domain, y, rec)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{g: g, engine: engine, rec: rec, y: y, dm: dm, cfg: cfg}
}

func (f *fixture) session(e *corpus.Entity, fetcher *search.Fetcher) *core.Session {
	s := core.NewSession(f.cfg, f.engine, e, synth.AspResearch, f.y, f.dm, f.rec, uint64(e.ID)+1)
	s.Fetcher = fetcher
	return s
}

func (f *fixture) targets(n int) []*corpus.Entity {
	ents := f.g.Corpus.Entities
	return ents[len(ents)-n:]
}

// TestPipelineMatchesSequential is the correctness core: the interleaved
// scheduler must produce exactly the same fired queries and gathered pages
// as running each session sequentially.
func TestPipelineMatchesSequential(t *testing.T) {
	f := newFixture(t)
	targets := f.targets(6)
	const nQueries = 3

	// Sequential reference.
	type outcome struct {
		fired []core.Query
		pages []corpus.PageID
	}
	want := make([]outcome, len(targets))
	for i, e := range targets {
		s := f.session(e, nil)
		fired := s.Run(core.NewL2QBAL(), nQueries)
		var ids []corpus.PageID
		for _, p := range s.Pages() {
			ids = append(ids, p.ID)
		}
		want[i] = outcome{fired: fired, pages: ids}
	}

	// Pipelined run with fresh sessions.
	jobs := make([]Job, len(targets))
	sessions := make([]*core.Session, len(targets))
	for i, e := range targets {
		sessions[i] = f.session(e, nil)
		jobs[i] = Job{Session: sessions[i], Selector: core.NewL2QBAL(), NQueries: nQueries}
	}
	results := Run(context.Background(), Config{SelectWorkers: 3, FetchWorkers: 8}, jobs)

	for i := range targets {
		if results[i].Err != nil {
			t.Fatalf("job %d: %v", i, results[i].Err)
		}
		if !reflect.DeepEqual(results[i].Fired, want[i].fired) {
			t.Errorf("job %d fired %v, want %v", i, results[i].Fired, want[i].fired)
		}
		var ids []corpus.PageID
		for _, p := range sessions[i].Pages() {
			ids = append(ids, p.ID)
		}
		if !reflect.DeepEqual(ids, want[i].pages) {
			t.Errorf("job %d pages %v, want %v", i, ids, want[i].pages)
		}
	}
}

// TestPipelineOverlapsFetches verifies the point of the exercise: with
// slow (sleeping) fetches, the pipeline completes many entities in less
// wall time than running them back to back. The sequential baseline is
// measured in-process so the comparison stays valid under -race (where
// CPU-bound selection inflates ~10×).
func TestPipelineOverlapsFetches(t *testing.T) {
	f := newFixture(t)
	targets := f.targets(8)
	const nQueries = 2
	const perPage = 6 * time.Millisecond

	makeJobs := func() []Job {
		jobs := make([]Job, len(targets))
		for i, e := range targets {
			fetcher := search.NewFetcher(perPage)
			fetcher.Sleep = true
			jobs[i] = Job{Session: f.session(e, fetcher), Selector: core.NewRT(), NQueries: nQueries}
		}
		return jobs
	}

	// Sequential baseline: same work, one entity at a time.
	seqJobs := makeJobs()
	seqStart := time.Now()
	for i := range seqJobs {
		s := seqJobs[i].Session
		s.Run(seqJobs[i].Selector, seqJobs[i].NQueries)
	}
	sequential := time.Since(seqStart)

	pipeJobs := makeJobs()
	pipeStart := time.Now()
	results := Run(context.Background(), Config{SelectWorkers: 2, FetchWorkers: 16}, pipeJobs)
	pipelined := time.Since(pipeStart)

	for i := range results {
		if results[i].Err != nil {
			t.Fatalf("job %d: %v", i, results[i].Err)
		}
	}
	if pipelined > sequential*8/10 {
		t.Errorf("pipeline %v vs sequential %v: no meaningful overlap", pipelined, sequential)
	}
}

func TestPipelineCancellation(t *testing.T) {
	f := newFixture(t)
	targets := f.targets(4)

	jobs := make([]Job, len(targets))
	for i, e := range targets {
		fetcher := search.NewFetcher(200 * time.Millisecond)
		fetcher.Sleep = true
		jobs[i] = Job{Session: f.session(e, fetcher), Selector: core.NewRT(), NQueries: 50}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	start := time.Now()
	results := Run(ctx, Config{SelectWorkers: 2, FetchWorkers: 4}, jobs)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	canceled := 0
	for _, r := range results {
		if r.Err != nil {
			canceled++
		}
	}
	if canceled == 0 {
		t.Error("expected at least one job cut short by cancellation")
	}
}

// slowRetriever is a remote-shaped engine: searches block for delay (as a
// slow HTTP fetch would) but honor context cancellation, like
// webapi.Client. It wraps the fixture engine for actual results.
type slowRetriever struct {
	core.Retriever
	delay time.Duration
}

func (r slowRetriever) SearchWithSeedErr(ctx context.Context, seed, query []string) ([]search.Result, error) {
	t := time.NewTimer(r.delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return r.Retriever.SearchWithSeed(seed, query), nil
}

// failingRetriever fails every search with a persistent transport error
// (what a webapi.Client returns once its retry budget is exhausted).
type failingRetriever struct {
	core.Retriever
	err error
}

func (r failingRetriever) SearchWithSeedErr(context.Context, []string, []string) ([]search.Result, error) {
	return nil, r.err
}

// TestPipelineCancellationLatency is the regression test for the fetch
// stage ignoring ctx: a worker blocked in a slow remote fetch used to hold
// wg.Wait() hostage until the transport's own timeout (up to 30 s for the
// HTTP client). With ctx propagated into Session.FetchQueryCtx, Run must
// return within milliseconds of cancellation even with 20-second fetches
// in flight.
func TestPipelineCancellationLatency(t *testing.T) {
	f := newFixture(t)
	targets := f.targets(4)
	jobs := make([]Job, len(targets))
	for i, e := range targets {
		s := f.session(e, nil)
		s.Engine = slowRetriever{Retriever: f.engine, delay: 20 * time.Second}
		jobs[i] = Job{Session: s, Selector: core.NewRT(), NQueries: 5}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	results := Run(ctx, Config{SelectWorkers: 2, FetchWorkers: 4}, jobs)
	elapsed := time.Since(start)
	// ~100 ms is the target; 2 s leaves headroom for -race CI boxes while
	// still proving we did not wait out the 20 s fetches.
	if elapsed > 2*time.Second {
		t.Fatalf("Run returned %v after cancellation, want ~100ms", elapsed)
	}
	for i, r := range results {
		if r.Err == nil {
			t.Errorf("job %d finished despite 20s fetches inside a 50ms window", i)
		}
	}
}

// TestPipelineFetchErrorSurfaces: a transport failure the retriever could
// not retry away finishes the job with that error instead of ingesting an
// empty result set as an "unproductive query".
func TestPipelineFetchErrorSurfaces(t *testing.T) {
	f := newFixture(t)
	targets := f.targets(2)
	sentinel := errors.New("transport down after retries")
	jobs := make([]Job, len(targets))
	for i, e := range targets {
		s := f.session(e, nil)
		s.Engine = failingRetriever{Retriever: f.engine, err: sentinel}
		jobs[i] = Job{Session: s, Selector: core.NewRT(), NQueries: 3}
	}
	results := Run(context.Background(), Config{SelectWorkers: 2, FetchWorkers: 4}, jobs)
	for i, r := range results {
		if !errors.Is(r.Err, sentinel) {
			t.Errorf("job %d err = %v, want the transport error", i, r.Err)
		}
		if len(jobs[i].Session.Pages()) != 0 {
			t.Errorf("job %d ingested %d pages from a dead transport", i, len(jobs[i].Session.Pages()))
		}
	}
}

func TestPipelineValidation(t *testing.T) {
	results := Run(context.Background(), Config{}, []Job{{}})
	if results[0].Err == nil {
		t.Error("empty job accepted")
	}
	if out := Run(context.Background(), Config{}, nil); len(out) != 0 {
		t.Errorf("nil jobs returned %d results", len(out))
	}
}

func TestPipelineZeroQueryBudget(t *testing.T) {
	f := newFixture(t)
	e := f.targets(1)[0]
	s := f.session(e, nil)
	results := Run(context.Background(), Config{}, []Job{
		{Session: s, Selector: core.NewP(), NQueries: 0},
	})
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	if len(results[0].Fired) != 0 {
		t.Errorf("fired %v with zero budget", results[0].Fired)
	}
	// The seed bootstrap must still have happened.
	if len(s.Pages()) == 0 {
		t.Error("seed results not ingested")
	}
}

// TestPipelineRaceTraceSharedEngine is the concurrency proof for the
// incremental-inference refactor: a full pipeline run where every session
// keeps a persistent session graph, all sessions share ONE cached engine
// (shared LRU query cache under concurrent Search), and every session has
// a Trace callback appending into shared test state. Run under -race (CI
// always does), any unsynchronized access in the session graph, the
// shared cache, or trace delivery fails the suite.
func TestPipelineRaceTraceSharedEngine(t *testing.T) {
	f := newFixture(t)
	targets := f.targets(6)
	const nQueries = 2

	shared := search.NewEngineOpts(search.BuildIndex(f.g.Corpus.Pages), search.Options{})
	var mu sync.Mutex
	traces := make(map[corpus.EntityID][]core.TraceRecord)

	jobs := make([]Job, len(targets))
	for i, e := range targets {
		s := f.session(e, nil)
		s.Engine = shared
		id := e.ID
		s.Trace = func(tr core.TraceRecord) {
			mu.Lock()
			traces[id] = append(traces[id], tr)
			mu.Unlock()
		}
		jobs[i] = Job{Session: s, Selector: core.NewL2QBAL(), NQueries: nQueries}
	}
	results := Run(context.Background(), Config{SelectWorkers: 4, FetchWorkers: 8}, jobs)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if len(r.Fired) != nQueries {
			t.Errorf("job %d fired %d queries, want %d", i, len(r.Fired), nQueries)
		}
	}
	for _, e := range targets {
		recs := traces[e.ID]
		if len(recs) != nQueries {
			t.Fatalf("entity %d: %d trace records, want %d", e.ID, len(recs), nQueries)
		}
		for j, tr := range recs {
			if tr.Iteration != j+1 {
				t.Errorf("entity %d trace %d: iteration %d", e.ID, j, tr.Iteration)
			}
			if tr.Query == "" || tr.TotalPages == 0 {
				t.Errorf("entity %d trace %d: empty record %+v", e.ID, j, tr)
			}
		}
	}
}

// TestSessionTuning checks the inference-knob threading: the implicit
// rule serializes per-step inference under parallel selection, explicit
// values are applied verbatim, and a single select worker leaves sessions
// untouched.
func TestSessionTuning(t *testing.T) {
	f := newFixture(t)
	e := f.targets(1)[0]

	mkJobs := func() []Job {
		return []Job{{Session: f.session(e, nil), Selector: core.NewP(), NQueries: 1}}
	}

	jobs := mkJobs()
	Config{SelectWorkers: 4}.withDefaults().tuneSessions(jobs)
	if got := jobs[0].Session.Cfg.InferWorkers; got != 1 {
		t.Errorf("implicit rule under parallel selection: InferWorkers = %d, want 1", got)
	}

	jobs = mkJobs()
	Config{SelectWorkers: 4, InferWorkers: 3}.withDefaults().tuneSessions(jobs)
	if got := jobs[0].Session.Cfg.InferWorkers; got != 3 {
		t.Errorf("explicit InferWorkers: got %d, want 3", got)
	}

	jobs = mkJobs()
	before := jobs[0].Session.Cfg.InferWorkers
	Config{SelectWorkers: 1}.withDefaults().tuneSessions(jobs)
	if got := jobs[0].Session.Cfg.InferWorkers; got != before {
		t.Errorf("single select worker mutated InferWorkers: %d → %d", before, got)
	}
}

// TestEngineTuning checks the search-knob threading: jobs whose sessions
// share one in-process engine get exactly one re-tuned copy (so the query
// cache stays shared), explicit options are applied, and non-engine
// retrievers are left alone.
func TestEngineTuning(t *testing.T) {
	f := newFixture(t)
	targets := f.targets(3)
	jobs := make([]Job, 0, len(targets))
	for _, e := range targets {
		jobs = append(jobs, Job{Session: f.session(e, nil), Selector: core.NewP(), NQueries: 1})
	}
	cfg := Config{Search: &search.Options{ScoreWorkers: 3, CacheSize: 7}}
	cfg.tuneEngines(jobs, map[*search.Engine]*search.Engine{})
	tuned, ok := jobs[0].Session.Engine.(*search.Engine)
	if !ok {
		t.Fatal("session engine is no longer a *search.Engine")
	}
	if tuned == f.engine {
		t.Fatal("tuneEngines did not replace the engine")
	}
	if tuned.ScoreWorkers() != 3 {
		t.Fatalf("ScoreWorkers = %d, want 3", tuned.ScoreWorkers())
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Session.Engine != core.Retriever(tuned) {
			t.Fatalf("job %d got a different engine copy (cache no longer shared)", i)
		}
	}

	// Default config with parallel selection collapses per-query scoring
	// to serial while preserving the engine's cache configuration —
	// including a deliberately disabled cache.
	noCache := f.engine.WithCache(-1)
	jobs2 := []Job{{Session: f.session(targets[0], nil), Selector: core.NewP(), NQueries: 1}}
	jobs2[0].Session.Engine = noCache
	Config{SelectWorkers: 4}.withDefaults().tuneEngines(jobs2, map[*search.Engine]*search.Engine{})
	t2 := jobs2[0].Session.Engine.(*search.Engine)
	if t2 == noCache || t2.ScoreWorkers() != 1 {
		t.Fatal("implicit default should serialize per-query scoring")
	}
	t2.Search(f.cfg.QueryTokens("research"))
	if h, m := t2.CacheStats(); h != 0 || m != 0 {
		t.Fatal("implicit default re-enabled a deliberately disabled cache")
	}

	// A single select worker leaves engines untouched.
	jobs3 := []Job{{Session: f.session(targets[0], nil), Selector: core.NewP(), NQueries: 1}}
	Config{SelectWorkers: 1}.withDefaults().tuneEngines(jobs3, map[*search.Engine]*search.Engine{})
	if jobs3[0].Session.Engine != core.Retriever(f.engine) {
		t.Fatal("single-select-worker config should leave engines untouched")
	}
}
