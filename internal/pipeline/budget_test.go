package pipeline

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"l2q/internal/core"
)

// cappedSelector delegates to an inner selector but refuses once the
// session has fired cap queries — a deterministic stand-in for an entity
// whose candidate pool runs dry.
type cappedSelector struct {
	inner core.Selector
	cap   int
}

func (c cappedSelector) Name() string { return "capped(" + c.inner.Name() + ")" }
func (c cappedSelector) Select(s *core.Session) (core.Selection, bool) {
	if len(s.Fired()) >= c.cap {
		return core.Selection{}, false
	}
	return c.inner.Select(s)
}

// uselessSelector always selects a fresh query that matches nothing, so
// every fired query gains ΔR_E(Φ) = 0 — a deterministic stand-in for a
// saturated entity.
type uselessSelector struct{}

func (uselessSelector) Name() string { return "useless" }
func (uselessSelector) Select(s *core.Session) (core.Selection, bool) {
	return core.Selection{Query: core.Query(fmt.Sprintf("zzzunmatchable%d", len(s.Fired())))}, true
}

// TestBudgetFixedParity: an explicit fixed-equal policy through the
// long-lived scheduler reproduces the one-shot Run reference exactly.
func TestBudgetFixedParity(t *testing.T) {
	f := newFixture(t)
	targets := f.targets(4)
	const nQueries = 3
	want := sequentialReference(f, targets, nQueries)

	s := New(Config{SelectWorkers: 2, FetchWorkers: 4})
	defer s.Close()
	jobs := make([]Job, len(targets))
	sessions := make([]*core.Session, len(targets))
	for i, e := range targets {
		sessions[i] = f.session(e, nil)
		jobs[i] = Job{Session: sessions[i], Selector: core.NewL2QBAL(), NQueries: nQueries}
	}
	b, err := s.Submit(context.Background(), jobs, BatchOptions{Budget: BudgetPolicy{Mode: BudgetFixed}})
	if err != nil {
		t.Fatal(err)
	}
	results := b.Await(context.Background())
	for i := range targets {
		if results[i].Err != nil {
			t.Fatal(results[i].Err)
		}
		if !reflect.DeepEqual(results[i].Fired, want[i].fired) {
			t.Errorf("entity %d fired %v, want %v", i, results[i].Fired, want[i].fired)
		}
	}
}

// adaptiveRun submits one adaptive batch and returns its results plus the
// per-job fired counts and total.
func adaptiveRun(t *testing.T, f *fixture, jobs []Job, policy BudgetPolicy) ([]Result, []int, int) {
	t.Helper()
	s := New(Config{SelectWorkers: 2, FetchWorkers: 4})
	defer s.Close()
	b, err := s.Submit(context.Background(), jobs, BatchOptions{Budget: policy})
	if err != nil {
		t.Fatal(err)
	}
	results := b.Await(context.Background())
	counts := make([]int, len(results))
	total := 0
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		counts[i] = len(r.Fired)
		total += counts[i]
	}
	return results, counts, total
}

// TestBudgetAdaptiveConservation: the adaptive pool never spends more
// than the global budget, and spends all of it while candidates and gain
// remain.
func TestBudgetAdaptiveConservation(t *testing.T) {
	f := newFixture(t)
	targets := f.targets(4)
	jobs := make([]Job, len(targets))
	for i, e := range targets {
		jobs[i] = Job{Session: f.session(e, nil), Selector: core.NewL2QBAL(), NQueries: 2}
	}
	const budget = 8 // = sum of NQueries
	_, _, total := adaptiveRun(t, f, jobs, BudgetPolicy{Mode: BudgetAdaptive, TotalQueries: budget})
	if total > budget {
		t.Fatalf("fired %d queries on a budget of %d", total, budget)
	}
	if total == 0 {
		t.Fatal("adaptive mode fired nothing")
	}
}

// TestBudgetAdaptiveDonatesExhausted: an entity whose candidate pool runs
// dry donates its unspent share — the remaining entities harvest beyond
// their equal split, and the refunded grant is re-spent, not lost.
func TestBudgetAdaptiveDonatesExhausted(t *testing.T) {
	f := newFixture(t)
	targets := f.targets(2)
	const budget = 6
	jobs := []Job{
		{Session: f.session(targets[0], nil), Selector: cappedSelector{inner: core.NewL2QBAL(), cap: 1}, NQueries: 3},
		{Session: f.session(targets[1], nil), Selector: core.NewL2QBAL(), NQueries: 3},
	}
	// Patience is effectively disabled so the uncapped entity keeps
	// accepting grants even once its own gains fade — the test isolates
	// the donation mechanics from the saturation rule.
	_, counts, total := adaptiveRun(t, f, jobs,
		BudgetPolicy{Mode: BudgetAdaptive, TotalQueries: budget, Patience: 1000})
	if counts[0] != 1 {
		t.Fatalf("capped entity fired %d, want 1", counts[0])
	}
	if counts[1] <= 3 {
		t.Errorf("uncapped entity fired %d, equal split is 3 — no donation happened", counts[1])
	}
	if total != budget {
		t.Errorf("total fired %d, want the full budget %d (refund lost?)", total, budget)
	}
}

// TestBudgetAdaptiveStopsSaturated: an entity whose queries stop gaining
// R_E(Φ) is cut off after Patience queries and donates the rest.
func TestBudgetAdaptiveStopsSaturated(t *testing.T) {
	f := newFixture(t)
	targets := f.targets(2)
	const budget = 8
	jobs := []Job{
		{Session: f.session(targets[0], nil), Selector: uselessSelector{}, NQueries: 4},
		{Session: f.session(targets[1], nil), Selector: core.NewL2QBAL(), NQueries: 4},
	}
	_, counts, total := adaptiveRun(t, f, jobs,
		BudgetPolicy{Mode: BudgetAdaptive, TotalQueries: budget, Patience: 2})
	if counts[0] != 2 {
		t.Errorf("saturated entity fired %d queries, want exactly Patience=2", counts[0])
	}
	// The productive entity keeps receiving grants after the useless one
	// is cut off (it may itself saturate on this tiny corpus, so no claim
	// about the full budget being spent — donation-to-the-end is covered
	// by TestBudgetAdaptiveDonatesExhausted).
	if counts[1] <= counts[0] {
		t.Errorf("productive entity fired %d ≤ saturated entity's %d", counts[1], counts[0])
	}
	if total > budget {
		t.Errorf("fired %d on a budget of %d", total, budget)
	}
}

// TestBudgetAdaptiveDeterministic: the round barrier makes adaptive
// allocation reproducible — two identical submissions fire identical
// per-entity sequences regardless of worker interleaving.
func TestBudgetAdaptiveDeterministic(t *testing.T) {
	f := newFixture(t)
	targets := f.targets(4)
	run := func() [][]core.Query {
		jobs := make([]Job, len(targets))
		for i, e := range targets {
			jobs[i] = Job{Session: f.session(e, nil), Selector: core.NewL2QBAL(), NQueries: 3}
		}
		results, _, _ := adaptiveRun(t, f, jobs, BudgetPolicy{Mode: BudgetAdaptive})
		out := make([][]core.Query, len(results))
		for i, r := range results {
			out[i] = r.Fired
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two identical adaptive runs diverged:\n%v\n%v", a, b)
	}
}

// TestBudgetAdaptiveAtLeastFixed: at the same global budget, adaptive
// allocation achieves at least the fixed-equal allocation's summed
// collective recall ΣR_E(Φ) — the acceptance bar the l2qexp budget bench
// reports on both full domains.
func TestBudgetAdaptiveAtLeastFixed(t *testing.T) {
	f := newFixture(t)
	targets := f.targets(5)
	const nQueries = 3

	sumRPhi := func(policy BudgetPolicy) float64 {
		jobs := make([]Job, len(targets))
		sessions := make([]*core.Session, len(targets))
		for i, e := range targets {
			sessions[i] = f.session(e, nil)
			jobs[i] = Job{Session: sessions[i], Selector: core.NewL2QBAL(), NQueries: nQueries}
		}
		s := New(Config{SelectWorkers: 2, FetchWorkers: 4})
		defer s.Close()
		b, err := s.Submit(context.Background(), jobs, BatchOptions{Budget: policy})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range b.Await(context.Background()) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
		sum := 0.0
		for _, sess := range sessions {
			sum += sess.RPhi()
		}
		return sum
	}

	fixed := sumRPhi(BudgetPolicy{Mode: BudgetFixed})
	adaptive := sumRPhi(BudgetPolicy{Mode: BudgetAdaptive})
	if adaptive < fixed-1e-9 {
		t.Errorf("adaptive ΣR_E(Φ) = %.6f < fixed %.6f at the same budget", adaptive, fixed)
	}
}
