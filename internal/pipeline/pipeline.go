// Package pipeline schedules many harvesting sessions so that CPU-bound
// query selection and I/O-bound page fetching overlap across entities.
//
// The paper's efficiency discussion (§VI-C) observes that per-query cost
// is dominated by the fetch (8–18 s against remote servers, vs 1–2 s of
// selection) and suggests the improvement implemented here: "parallelizing
// over entities, and interleaving the selection (CPU) and fetch (I/O)
// operations between different entities." Each session alternates
// select → fetch → ingest; the scheduler runs selections on a bounded CPU
// pool and fetches on a wider I/O pool, so while entity A's download is in
// flight, entity B's selection runs. Sessions themselves are never touched
// concurrently — all state mutation for one session happens in whichever
// worker holds the job, and jobs move between stages under one scheduler
// lock.
//
// The pools are long-lived: a Scheduler (see New/Submit/Drain) serves many
// concurrent submitters over its lifetime with FIFO admission, per-batch
// fair share, and optional adaptive cross-entity budget allocation
// (BudgetPolicy); Run is the retained one-shot wrapper.
package pipeline

import (
	"runtime"

	"l2q/internal/core"
	"l2q/internal/search"
)

// Job is one entity-aspect harvest: a session, a selector, and a query
// budget. Fresh sessions start with the seed fetch; a session resumed
// from a checkpoint (core.Session.Resume) is picked up at the select
// stage. NQueries counts the queries fired under this scheduler — for a
// resumed session that is the budget remaining, not the overall total.
type Job struct {
	Session  *core.Session
	Selector core.Selector
	NQueries int
}

// Result is one finished (or aborted) job.
type Result struct {
	Job *Job
	// Fired lists the selected queries, in order.
	Fired []core.Query
	// Err is non-nil when the job was cut short: context cancellation, or
	// a transport failure the session's retriever could not retry away
	// (remote engines surface *webapi.TransportError through the fetch
	// stage instead of silently recording an unproductive query).
	Err error
}

// Config tunes the scheduler. Zero values choose sensible defaults.
type Config struct {
	// SelectWorkers bounds concurrent query selections (CPU-bound;
	// default GOMAXPROCS).
	SelectWorkers int
	// FetchWorkers bounds concurrent fetches (I/O-bound; default
	// 4×SelectWorkers — fetches park on the network, not the CPU).
	FetchWorkers int
	// MaxActive bounds the jobs admitted across all batches (admission
	// control for a shared server-side scheduler); 0 is unlimited. Jobs
	// beyond the bound wait in strict FIFO submission order.
	MaxActive int
	// Search, when non-nil, re-tunes every job session's in-process
	// *search.Engine with these options (score workers, cache) before
	// the run; sessions sharing an engine share the tuned copy, so the
	// query cache stays shared across entities. When nil and more than
	// one select worker is configured, engines are re-tuned to serial
	// per-query scoring only (ScoreWorkers=1, the engine's cache
	// configuration untouched): the pipeline already saturates the CPU
	// pool across entities, and nesting per-query parallelism under it
	// would oversubscribe GOMAXPROCS² goroutines. Both re-tunes are
	// ranking-neutral. Remote retrievers are left untouched.
	Search *search.Options
	// InferWorkers sets every job session's per-step inference
	// parallelism (core.Config.InferWorkers: delta containment and
	// collective scoring). 0 applies the same oversubscription rule as
	// the search knob: with more than one select worker, sessions run
	// serial inference (the scheduler already saturates the CPU pool
	// across entities; nesting per-step parallelism under it would
	// oversubscribe GOMAXPROCS² goroutines), and a single select worker
	// leaves sessions untouched. Positive values are applied verbatim.
	// Value-neutral either way: worker counts never change utilities.
	InferWorkers int
	// LearnWorkers sets every job session's domain-phase parallelism
	// (core.Config.LearnWorkers). Sessions themselves never learn a
	// domain model mid-run, but their Config is the one any caller-side
	// learning (warm-up, re-learning on model invalidation) inherits, so
	// the knob is threaded for the same reason InferWorkers is. Unlike
	// inference there is no oversubscription rule: learning happens
	// outside the select pool, so 0 leaves sessions untouched and
	// positive values are applied verbatim. Value-neutral: every worker
	// count learns identical models.
	LearnWorkers int
}

func (c Config) withDefaults() Config {
	if c.SelectWorkers <= 0 {
		c.SelectWorkers = runtime.GOMAXPROCS(0)
	}
	if c.FetchWorkers <= 0 {
		c.FetchWorkers = 4 * c.SelectWorkers
	}
	return c
}

// tuneEngines applies the Config.Search policy to every job whose session
// retrieves through an in-process engine. One tuned copy is made per
// distinct engine so jobs that shared an engine (the common case: one
// System) keep sharing its result cache. The tuned map outlives one call
// when the caller is a long-lived Scheduler: every batch submitted over
// the scheduler's lifetime resolves to the SAME tuned copy, so the query
// cache stays shared — and warm — across requests instead of being
// re-created cold per batch.
func (c Config) tuneEngines(jobs []Job, tuned map[*search.Engine]*search.Engine) {
	var tune func(*search.Engine) *search.Engine
	switch {
	case c.Search != nil:
		tune = func(e *search.Engine) *search.Engine { return e.WithOptions(*c.Search) }
	case c.SelectWorkers > 1:
		// Implicit default: serialize per-query scoring but preserve
		// the engine's cache setting (size and enabled/disabled state)
		// — the caller configured that deliberately.
		tune = func(e *search.Engine) *search.Engine { return e.WithScoreWorkers(1) }
	default:
		return
	}
	for i := range jobs {
		s := jobs[i].Session
		if s == nil {
			continue
		}
		if e, ok := s.Engine.(*search.Engine); ok {
			t := tuned[e]
			if t == nil {
				t = tune(e)
				tuned[e] = t
			}
			s.Engine = t
		}
	}
}

// tuneSessions applies the Config.InferWorkers and Config.LearnWorkers
// policies to every job session (see the field docs; the inference
// analogue of tuneEngines).
func (c Config) tuneSessions(jobs []Job) {
	w := c.InferWorkers
	if w == 0 && c.SelectWorkers > 1 {
		w = 1 // serial inference under parallel selection
	}
	if w == 0 && c.LearnWorkers == 0 {
		return
	}
	for i := range jobs {
		s := jobs[i].Session
		if s == nil {
			continue
		}
		if w != 0 {
			s.Cfg.InferWorkers = w
		}
		if c.LearnWorkers != 0 {
			s.Cfg.LearnWorkers = c.LearnWorkers
		}
	}
}
