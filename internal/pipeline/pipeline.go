// Package pipeline schedules many harvesting sessions so that CPU-bound
// query selection and I/O-bound page fetching overlap across entities.
//
// The paper's efficiency discussion (§VI-C) observes that per-query cost
// is dominated by the fetch (8–18 s against remote servers, vs 1–2 s of
// selection) and suggests the improvement implemented here: "parallelizing
// over entities, and interleaving the selection (CPU) and fetch (I/O)
// operations between different entities." Each session alternates
// select → fetch → ingest; the scheduler runs selections on a bounded CPU
// pool and fetches on a wider I/O pool, so while entity A's download is in
// flight, entity B's selection runs. Sessions themselves are never touched
// concurrently — all state mutation for one session happens in whichever
// worker holds the job, and jobs move between pools by message passing.
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"l2q/internal/core"
	"l2q/internal/search"
)

// Job is one entity-aspect harvest: a fresh session, a selector, and a
// query budget (iterations after the seed).
type Job struct {
	Session  *core.Session
	Selector core.Selector
	NQueries int
}

// Result is one finished (or aborted) job.
type Result struct {
	Job *Job
	// Fired lists the selected queries, in order.
	Fired []core.Query
	// Err is non-nil when the job was cut short: context cancellation, or
	// a transport failure the session's retriever could not retry away
	// (remote engines surface *webapi.TransportError through the fetch
	// stage instead of silently recording an unproductive query).
	Err error
}

// Config tunes the scheduler. Zero values choose sensible defaults.
type Config struct {
	// SelectWorkers bounds concurrent query selections (CPU-bound;
	// default GOMAXPROCS).
	SelectWorkers int
	// FetchWorkers bounds concurrent fetches (I/O-bound; default
	// 4×SelectWorkers — fetches park on the network, not the CPU).
	FetchWorkers int
	// Search, when non-nil, re-tunes every job session's in-process
	// *search.Engine with these options (score workers, cache) before
	// the run; sessions sharing an engine share the tuned copy, so the
	// query cache stays shared across entities. When nil and more than
	// one select worker is configured, engines are re-tuned to serial
	// per-query scoring only (ScoreWorkers=1, the engine's cache
	// configuration untouched): the pipeline already saturates the CPU
	// pool across entities, and nesting per-query parallelism under it
	// would oversubscribe GOMAXPROCS² goroutines. Both re-tunes are
	// ranking-neutral. Remote retrievers are left untouched.
	Search *search.Options
	// InferWorkers sets every job session's per-step inference
	// parallelism (core.Config.InferWorkers: delta containment and
	// collective scoring). 0 applies the same oversubscription rule as
	// the search knob: with more than one select worker, sessions run
	// serial inference (the scheduler already saturates the CPU pool
	// across entities; nesting per-step parallelism under it would
	// oversubscribe GOMAXPROCS² goroutines), and a single select worker
	// leaves sessions untouched. Positive values are applied verbatim.
	// Value-neutral either way: worker counts never change utilities.
	InferWorkers int
}

func (c Config) withDefaults() Config {
	if c.SelectWorkers <= 0 {
		c.SelectWorkers = runtime.GOMAXPROCS(0)
	}
	if c.FetchWorkers <= 0 {
		c.FetchWorkers = 4 * c.SelectWorkers
	}
	return c
}

// tuneEngines applies the Config.Search policy to every job whose session
// retrieves through an in-process engine. One tuned copy is made per
// distinct engine so jobs that shared an engine (the common case: one
// System) keep sharing its result cache.
func (c Config) tuneEngines(jobs []Job) {
	var tune func(*search.Engine) *search.Engine
	switch {
	case c.Search != nil:
		tune = func(e *search.Engine) *search.Engine { return e.WithOptions(*c.Search) }
	case c.SelectWorkers > 1:
		// Implicit default: serialize per-query scoring but preserve
		// the engine's cache setting (size and enabled/disabled state)
		// — the caller configured that deliberately.
		tune = func(e *search.Engine) *search.Engine { return e.WithScoreWorkers(1) }
	default:
		return
	}
	tuned := make(map[*search.Engine]*search.Engine, 1)
	for i := range jobs {
		s := jobs[i].Session
		if s == nil {
			continue
		}
		if e, ok := s.Engine.(*search.Engine); ok {
			t := tuned[e]
			if t == nil {
				t = tune(e)
				tuned[e] = t
			}
			s.Engine = t
		}
	}
}

// tuneSessions applies the Config.InferWorkers policy to every job
// session (see the field doc; the inference analogue of tuneEngines).
func (c Config) tuneSessions(jobs []Job) {
	w := c.InferWorkers
	if w == 0 {
		if c.SelectWorkers <= 1 {
			return
		}
		w = 1 // serial inference under parallel selection
	}
	for i := range jobs {
		if s := jobs[i].Session; s != nil {
			s.Cfg.InferWorkers = w
		}
	}
}

// stage is where a job currently is in its select/fetch/ingest cycle.
type jobState struct {
	job   *Job
	fired []core.Query
	// pending is the query whose results the fetch stage is producing;
	// empty string while bootstrapping (the seed fetch).
	pending core.Query
	booted  bool
	results []search.Result
}

// Run executes all jobs to completion (or ctx cancellation) and returns
// one Result per job, in input order. Sessions must be freshly created and
// must not be shared between jobs.
func Run(ctx context.Context, cfg Config, jobs []Job) []Result {
	cfg = cfg.withDefaults()
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	cfg.tuneEngines(jobs)
	cfg.tuneSessions(jobs)
	for i := range jobs {
		if jobs[i].Session == nil || jobs[i].Selector == nil {
			results[i] = Result{Job: &jobs[i], Err: fmt.Errorf("pipeline: job %d missing session or selector", i)}
		}
	}

	// Channels sized to the job count so workers never block on handoff
	// (a job is in exactly one place at a time).
	fetchCh := make(chan int, len(jobs))
	selectCh := make(chan int, len(jobs))
	states := make([]*jobState, len(jobs))

	var wg sync.WaitGroup
	var doneMu sync.Mutex
	remaining := 0
	done := make(chan struct{})
	finish := func(i int, err error) {
		st := states[i]
		results[i] = Result{Job: st.job, Fired: st.fired, Err: err}
		doneMu.Lock()
		remaining--
		if remaining == 0 {
			close(done)
		}
		doneMu.Unlock()
	}

	for i := range jobs {
		if results[i].Err != nil {
			continue
		}
		states[i] = &jobState{job: &jobs[i]}
		remaining++
	}
	if remaining == 0 {
		return results
	}
	// Jobs enter at the fetch stage (the seed fetch).
	for i := range jobs {
		if states[i] != nil {
			fetchCh <- i
		}
	}

	// Fetch workers: run the I/O half, then hand the job to selection.
	// The fetch is context-aware (Session.FetchQueryCtx): cancellation
	// aborts an in-flight remote download immediately instead of holding
	// wg.Wait() hostage for the transport's full HTTP timeout, and a
	// transport failure that survived the retriever's retry budget
	// finishes the job with a typed error rather than ingesting an empty
	// result set as if the query had been unproductive.
	for w := 0; w < cfg.FetchWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case <-done:
					return
				case i := <-fetchCh:
					st := states[i]
					res, err := st.job.Session.FetchQueryCtx(ctx, st.pending)
					if err != nil {
						finish(i, err)
						continue
					}
					st.results = res
					selectCh <- i
				}
			}
		}()
	}

	// Select workers: ingest the fetched results, then either select the
	// next query (handing back to fetch) or finish the job.
	for w := 0; w < cfg.SelectWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case <-done:
					return
				case i := <-selectCh:
					st := states[i]
					s := st.job.Session
					if !st.booted {
						st.booted = true
						s.IngestSeed(st.results)
					} else {
						s.IngestQuery(st.pending, st.results)
						st.fired = append(st.fired, st.pending)
					}
					st.results = nil
					if len(st.fired) >= st.job.NQueries {
						finish(i, nil)
						continue
					}
					choice, ok := st.job.Selector.Select(s)
					if !ok {
						finish(i, nil)
						continue
					}
					st.pending = choice.Query
					fetchCh <- i
				}
			}
		}()
	}

	select {
	case <-done:
	case <-ctx.Done():
	}
	wg.Wait()

	// Mark jobs that never finished (cancellation) with the context error.
	if err := ctx.Err(); err != nil {
		for i := range jobs {
			if states[i] != nil && results[i].Job == nil {
				st := states[i]
				results[i] = Result{Job: st.job, Fired: st.fired, Err: err}
			}
		}
	}
	return results
}
