package pipeline

// The scheduler soak smoke: submit/cancel/resume churn against one
// long-lived scheduler under -race. Scheduler state transitions are
// order-sensitive by nature (admission, round barriers, cancellation
// racing workers), so beyond the targeted unit tests the CI runs this
// churn loop for 30 s (L2Q_SOAK=30s); the default keeps it to a moment so
// the normal suite exercises the same paths cheaply.

import (
	"context"
	"math/rand/v2"
	"os"
	"sync"
	"testing"
	"time"

	"l2q/internal/core"
	"l2q/internal/search"
)

func soakDuration() time.Duration {
	if v := os.Getenv("L2Q_SOAK"); v != "" {
		if d, err := time.ParseDuration(v); err == nil {
			return d
		}
	}
	return 1500 * time.Millisecond
}

func TestSchedulerSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	f := newFixture(t)
	targets := f.targets(8)
	dur := soakDuration()

	s := New(Config{SelectWorkers: 2, FetchWorkers: 6, MaxActive: 6})
	defer s.Close()

	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	const submitters = 4
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w)+1, 0xdecafbad))
			cps := make(map[int]core.Checkpoint) // latest checkpoint per slot
			var cpMu sync.Mutex
			for round := 0; time.Now().Before(deadline); round++ {
				n := 1 + rng.IntN(3)
				jobs := make([]Job, 0, n)
				slots := make([]int, 0, n)
				for k := 0; k < n; k++ {
					slot := rng.IntN(len(targets))
					e := targets[slot]
					var fetcher *search.Fetcher
					if rng.IntN(2) == 0 {
						fetcher = search.NewFetcher(time.Duration(rng.IntN(8)) * time.Millisecond)
						fetcher.Sleep = true
					}
					sess := f.session(e, fetcher)
					budget := 1 + rng.IntN(3)
					// Resume churn: occasionally restart from the last
					// checkpoint this submitter saw for the slot.
					cpMu.Lock()
					if cp, ok := cps[slot]; ok && rng.IntN(3) == 0 {
						if err := sess.Resume(cp); err != nil {
							t.Error(err)
						}
					}
					cpMu.Unlock()
					jobs = append(jobs, Job{Session: sess, Selector: core.NewRT(), NQueries: budget})
					slots = append(slots, slot)
				}
				opts := BatchOptions{
					Checkpoint: func(job int, cp core.Checkpoint) {
						cpMu.Lock()
						cps[slots[job]] = cp
						cpMu.Unlock()
					},
				}
				if rng.IntN(3) == 0 {
					opts.Budget = BudgetPolicy{Mode: BudgetAdaptive, Patience: 1 + rng.IntN(3)}
				}
				ctx, cancel := context.WithCancel(context.Background())
				b, err := s.Submit(ctx, jobs, opts)
				if err != nil {
					cancel()
					t.Error(err)
					return
				}
				switch rng.IntN(4) {
				case 0:
					// Cancel mid-flight after a beat.
					time.Sleep(time.Duration(rng.IntN(5)) * time.Millisecond)
					b.Cancel()
					b.Await(context.Background())
				case 1:
					// Abandon via ctx.
					go func() {
						time.Sleep(time.Duration(rng.IntN(5)) * time.Millisecond)
						cancel()
					}()
					b.Await(context.Background())
				default:
					b.Await(context.Background())
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()

	// The scheduler must be quiescent and reusable after the churn.
	st := s.Stats()
	if st.ActiveJobs != 0 || st.QueuedJobs != 0 || st.Batches != 0 {
		t.Fatalf("scheduler not quiescent after soak: %+v", st)
	}
	b, err := s.Submit(context.Background(), []Job{
		{Session: f.session(targets[0], nil), Selector: core.NewP(), NQueries: 1},
	}, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range b.Await(context.Background()) {
		if r.Err != nil {
			t.Fatalf("post-soak submission failed: %v", r.Err)
		}
	}
}
