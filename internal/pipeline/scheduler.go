package pipeline

// The long-lived scheduler. pipeline.Run used to build fresh worker pools
// per invocation, which was fine for a one-batch CLI run but wrong for a
// server: every POST /api/harvest got its own GOMAXPROCS-sized select pool
// with no admission control, and nothing could be shared, queued, fairly
// interleaved, checkpointed, or drained. Scheduler inverts that: New(cfg)
// owns the select/fetch pools for its lifetime; any number of concurrent
// callers Submit job batches; jobs are admitted FIFO (Config.MaxActive is
// the admission bound) and, once admitted, served round-robin across
// batches so one large submission cannot starve a small one; Drain and
// Close manage shutdown. Run survives as a thin submit-all-and-await
// wrapper over a private scheduler — the retained reference the parity
// tests hold the scheduler to.

import (
	"context"
	"fmt"
	"sync"

	"l2q/internal/core"
	"l2q/internal/search"
)

// jobStage is where a job currently is in its lifecycle.
type jobStage int

const (
	stagePending      jobStage = iota // submitted, awaiting admission
	stageFetchQueued                  // ready for a fetch worker
	stageFetching                     // owned by a fetch worker
	stageSelectQueued                 // ready for a select worker
	stageSelecting                    // owned by a select worker
	stageParked                       // waiting for a budget grant (adaptive)
	stageDone
)

// jobState is the scheduler-side state of one job. A job is owned by at
// most one worker at a time; every field is otherwise guarded by the
// scheduler mutex.
type jobState struct {
	job   *Job
	stage jobStage
	fired []core.Query
	// pending is the query whose results the fetch stage is producing;
	// empty string while bootstrapping (the seed fetch).
	pending core.Query
	booted  bool
	// needsIngest marks results awaiting ingestion; a budget grant
	// re-queues a job to the select stage with needsIngest=false (it
	// already ingested before parking).
	needsIngest bool
	results     []search.Result

	// Budget-allocation signals (maintained by the owning select worker
	// at ingest time, read under the scheduler mutex at grant time).
	lastRPhi  float64 // R_E(Φ) after the last ingest
	lastGain  float64 // marginal ΔR_E(Φ) of the last fired query
	lowStreak int     // consecutive queries with ΔR_E(Φ) < MinGain
	granted   bool    // holds an unspent adaptive budget token
}

// Scheduler runs harvesting jobs on shared select (CPU) and fetch (I/O)
// worker pools for its whole lifetime. Construct with New, submit batches
// with Submit, and stop with Drain/Close. Safe for concurrent use.
type Scheduler struct {
	cfg Config

	mu      sync.Mutex
	selCond *sync.Cond
	ftCond  *sync.Cond

	// batches holds every batch with unfinished jobs, in submission
	// (admission FIFO) order. Worker pick is round-robin over this slice
	// (per-submitter fair share); admission walks it front to back.
	batches []*Batch
	rrSel   int
	rrFt    int

	active int // admitted, unfinished jobs
	queued int // jobs awaiting admission

	// tunedEngines maps each distinct in-process engine to its one tuned
	// copy for the scheduler's whole lifetime, so every batch shares the
	// same (warm) query cache instead of re-tuning a cold copy per
	// Submit.
	tunedEngines map[*search.Engine]*search.Engine

	finished int64 // jobs finished over the scheduler lifetime
	fired    int64 // queries fired over the scheduler lifetime

	draining bool
	closed   bool
	wg       sync.WaitGroup
}

// Stats is a point-in-time snapshot of scheduler load, the server-side
// /api/metrics payload.
type Stats struct {
	SelectWorkers int   `json:"selectWorkers"`
	FetchWorkers  int   `json:"fetchWorkers"`
	Batches       int   `json:"batches"`
	ActiveJobs    int   `json:"activeJobs"`
	QueuedJobs    int   `json:"queuedJobs"`
	ParkedJobs    int   `json:"parkedJobs"`
	FinishedJobs  int64 `json:"finishedJobs"`
	FiredQueries  int64 `json:"firedQueries"`
	// BudgetRemaining sums the unspent query budget across the active
	// adaptive-mode batches.
	BudgetRemaining int `json:"budgetRemaining"`
}

// New starts a scheduler: its worker pools spin up immediately and live
// until Close.
func New(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{cfg: cfg, tunedEngines: make(map[*search.Engine]*search.Engine)}
	s.selCond = sync.NewCond(&s.mu)
	s.ftCond = sync.NewCond(&s.mu)
	for w := 0; w < cfg.FetchWorkers; w++ {
		s.wg.Add(1)
		go s.fetchWorker()
	}
	for w := 0; w < cfg.SelectWorkers; w++ {
		s.wg.Add(1)
		go s.selectWorker()
	}
	return s
}

// Batch is one Submit call's unit of work: its jobs, their results, and
// the batch-scoped budget pool. Await/Cancel/Done manage its lifecycle.
type Batch struct {
	s    *Scheduler
	jobs []Job
	opts BatchOptions
	pool *budgetPool

	ctx       context.Context
	cancel    context.CancelFunc
	stopWatch func() bool

	// All below guarded by s.mu.
	states     []*jobState
	results    []Result
	nextAdmit  int   // states index of the next job to admit
	live       int   // admitted, unfinished jobs
	unfinished int   // all unfinished jobs (admitted or not)
	fetchQ     []int // job indices ready for fetch
	selectQ    []int // job indices ready for select/ingest
	parked     []int // job indices awaiting a budget grant

	done chan struct{}
}

// Submit enqueues a batch of jobs. Jobs are admitted FIFO relative to
// every other submission and run on the scheduler's shared pools; ctx
// cancellation (or Cancel) aborts the batch's unfinished jobs. Sessions
// must not be shared between jobs; a session that has already fired
// queries (a checkpoint resume) is picked up where it left off, with
// Job.NQueries counting only the queries fired under this scheduler.
// Submit fails once the scheduler is draining or closed.
func (s *Scheduler) Submit(ctx context.Context, jobs []Job, opts BatchOptions) (*Batch, error) {
	if ctx == nil {
		//l2qvet:ignore ctxbg nil-ctx normalization of the public Submit API; callers that have a ctx pass it
		ctx = context.Background()
	}
	bctx, cancel := context.WithCancel(ctx)
	b := &Batch{
		s:       s,
		jobs:    jobs,
		opts:    opts,
		pool:    newBudgetPool(opts.Budget, jobs),
		ctx:     bctx,
		cancel:  cancel,
		states:  make([]*jobState, len(jobs)),
		results: make([]Result, len(jobs)),
		done:    make(chan struct{}),
	}

	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		cancel()
		return nil, fmt.Errorf("pipeline: scheduler is shut down")
	}
	for i := range jobs {
		if jobs[i].Session == nil || jobs[i].Selector == nil {
			b.results[i] = Result{Job: &jobs[i], Err: fmt.Errorf("pipeline: job %d missing session or selector", i)}
			continue
		}
		b.states[i] = &jobState{job: &jobs[i], stage: stagePending}
		b.unfinished++
		s.queued++
	}
	if b.unfinished == 0 {
		s.mu.Unlock()
		cancel()
		close(b.done)
		return b, nil
	}
	// Engine/session tuning happens before any job runs. The tuned map
	// is scheduler-lifetime state (guarded by s.mu, which is held here):
	// batches submitted over the scheduler's life resolve to the same
	// tuned engine copy, so the query cache stays shared and warm across
	// requests instead of starting cold per batch.
	s.cfg.tuneEngines(jobs, s.tunedEngines)
	s.cfg.tuneSessions(jobs)
	s.batches = append(s.batches, b)
	// Tie the batch to the caller's context before any job can finish
	// (finishLocked reads stopWatch under this same lock). A pre-canceled
	// ctx fires the func in its own goroutine, which then blocks on the
	// scheduler lock until the batch is fully enqueued.
	b.stopWatch = context.AfterFunc(ctx, b.Cancel)
	s.admitLocked()
	s.mu.Unlock()
	return b, nil
}

// Await blocks until the batch finishes and returns its results (one per
// job, in input order). If ctx is canceled first, the batch itself is
// canceled and Await returns once the abort completes — unfinished jobs
// carry the cancellation error, mirroring Run's contract.
func (b *Batch) Await(ctx context.Context) []Result {
	select {
	case <-b.done:
	case <-ctx.Done():
		b.Cancel()
		<-b.done
	}
	return b.results
}

// Done is closed when every job in the batch has finished.
func (b *Batch) Done() <-chan struct{} { return b.done }

// Results returns the batch results; valid once Done is closed.
func (b *Batch) Results() []Result { return b.results }

// Cancel aborts the batch's unfinished jobs: queued and parked jobs
// finish immediately with the cancellation error, in-flight fetches are
// aborted through the job context, and jobs owned by a worker finish as
// soon as the worker observes the canceled context.
func (b *Batch) Cancel() {
	b.cancel()
	s := b.s
	s.mu.Lock()
	defer s.mu.Unlock()
	err := b.ctx.Err()
	for i, st := range b.states {
		if st == nil || st.stage == stageDone {
			continue
		}
		switch st.stage {
		case stageFetching, stageSelecting:
			// Owned by a worker; it observes b.ctx and finishes the job.
		default:
			b.finishLocked(i, err)
		}
	}
}

// Checkpoints snapshots the durable state of every job session; call it
// only after Done (sessions are owned by workers while the batch runs —
// use BatchOptions.Checkpoint for in-flight persistence). Jobs that never
// produced a session state (invalid submissions) yield zero checkpoints.
func (b *Batch) Checkpoints() []core.Checkpoint {
	out := make([]core.Checkpoint, len(b.jobs))
	for i := range b.jobs {
		if b.jobs[i].Session != nil {
			out[i] = b.jobs[i].Session.Snapshot()
		}
	}
	return out
}

// Drain stops admission of new batches and waits for every submitted job
// to finish (or ctx to expire). After Drain the scheduler only accepts
// Close; it is the graceful half of shutdown.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	batches := append([]*Batch(nil), s.batches...)
	s.mu.Unlock()
	for _, b := range batches {
		select {
		case <-b.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Close cancels every unfinished batch and stops the worker pools. It is
// idempotent and safe to call concurrently with Submit/Await.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.draining = true
	batches := append([]*Batch(nil), s.batches...)
	s.mu.Unlock()
	for _, b := range batches {
		b.Cancel()
		<-b.done
	}
	s.mu.Lock()
	s.closed = true
	s.selCond.Broadcast()
	s.ftCond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats snapshots scheduler load.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		SelectWorkers: s.cfg.SelectWorkers,
		FetchWorkers:  s.cfg.FetchWorkers,
		Batches:       len(s.batches),
		ActiveJobs:    s.active,
		QueuedJobs:    s.queued,
		FinishedJobs:  s.finished,
		FiredQueries:  s.fired,
	}
	for _, b := range s.batches {
		for _, i := range b.parked {
			if b.states[i].stage == stageParked {
				st.ParkedJobs++
			}
		}
		if b.pool.mode == BudgetAdaptive {
			st.BudgetRemaining += b.pool.remaining
		}
	}
	return st
}

// admitLocked admits pending jobs strictly FIFO (batch submission order,
// job order within a batch) while Config.MaxActive allows. A pre-booted
// session (checkpoint resume) skips the seed fetch and enters at the
// select stage.
func (s *Scheduler) admitLocked() {
	for _, b := range s.batches {
		for b.nextAdmit < len(b.states) {
			if s.cfg.MaxActive > 0 && s.active >= s.cfg.MaxActive {
				return
			}
			i := b.nextAdmit
			b.nextAdmit++
			st := b.states[i]
			if st == nil || st.stage != stagePending {
				continue
			}
			s.queued--
			s.active++
			b.live++
			if st.job.Session.Booted() {
				st.booted = true
				st.lastRPhi = st.job.Session.RPhi()
				st.stage = stageSelectQueued
				b.selectQ = append(b.selectQ, i)
				s.selCond.Signal()
			} else {
				st.stage = stageFetchQueued
				b.fetchQ = append(b.fetchQ, i)
				s.ftCond.Signal()
			}
		}
	}
}

// nextLocked pops the next ready job for one stage, round-robin across
// batches (fair share between submitters). Entries whose job has moved on
// (canceled mid-queue) are discarded.
func (s *Scheduler) nextLocked(queue func(*Batch) *[]int, rr *int, want jobStage) (*Batch, int, bool) {
	n := len(s.batches)
	for k := 1; k <= n; k++ {
		b := s.batches[(*rr+k)%n]
		q := queue(b)
		for len(*q) > 0 {
			i := (*q)[0]
			*q = (*q)[1:]
			if b.states[i].stage == want {
				*rr = (*rr + k) % n
				return b, i, true
			}
		}
	}
	return nil, 0, false
}

func fetchQueue(b *Batch) *[]int  { return &b.fetchQ }
func selectQueue(b *Batch) *[]int { return &b.selectQ }

// fetchWorker runs the I/O half: fetch the pending query's results (the
// seed fetch for fresh jobs), then hand the job to the select stage. The
// fetch is context-aware: batch cancellation aborts an in-flight remote
// download immediately, and a transport failure that survived the
// retriever's retry budget finishes the job with a typed error rather
// than ingesting an empty result set as if the query had been
// unproductive.
func (s *Scheduler) fetchWorker() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		if s.closed {
			s.mu.Unlock()
			return
		}
		b, i, ok := s.nextLocked(fetchQueue, &s.rrFt, stageFetchQueued)
		if !ok {
			s.ftCond.Wait()
			continue
		}
		st := b.states[i]
		if err := b.ctx.Err(); err != nil {
			b.finishLocked(i, err)
			continue
		}
		st.stage = stageFetching
		s.mu.Unlock()

		res, err := st.job.Session.FetchQueryCtx(b.ctx, st.pending)

		s.mu.Lock()
		if err != nil {
			b.finishLocked(i, err)
			continue
		}
		st.results = res
		st.needsIngest = true
		st.stage = stageSelectQueued
		b.selectQ = append(b.selectQ, i)
		s.selCond.Signal()
	}
}

// selectWorker runs the CPU half: ingest fetched results into the session
// (updating R_E(Φ) and delivering Trace records), consult the budget
// pool, and either select the next query (handing the job back to fetch),
// park for a budget grant, or finish the job.
func (s *Scheduler) selectWorker() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		if s.closed {
			s.mu.Unlock()
			return
		}
		b, i, ok := s.nextLocked(selectQueue, &s.rrSel, stageSelectQueued)
		if !ok {
			s.selCond.Wait()
			continue
		}
		st := b.states[i]
		if err := b.ctx.Err(); err != nil {
			b.finishLocked(i, err)
			continue
		}
		st.stage = stageSelecting
		s.mu.Unlock()

		sess := st.job.Session
		firedNow := false
		if st.needsIngest {
			if !st.booted {
				st.booted = true
				sess.IngestSeed(st.results)
			} else {
				sess.IngestQuery(st.pending, st.results)
				st.fired = append(st.fired, st.pending)
				firedNow = true
			}
			st.results = nil
			st.needsIngest = false
			r := sess.RPhi()
			st.lastGain = r - st.lastRPhi
			st.lastRPhi = r
			if firedNow {
				if st.lastGain < b.pool.minGain {
					st.lowStreak++
				} else {
					st.lowStreak = 0
				}
			}
			if b.opts.Checkpoint != nil {
				b.opts.Checkpoint(i, sess.Snapshot())
			}
		}

		s.mu.Lock()
		if firedNow {
			s.fired++
		}
		if err := b.ctx.Err(); err != nil {
			b.finishLocked(i, err)
			continue
		}
		switch b.decideLocked(i) {
		case decideFinish:
			b.finishLocked(i, nil)
			continue
		case decidePark:
			st.stage = stageParked
			b.parked = append(b.parked, i)
			b.maybeReleaseLocked()
			continue
		case decideGrant:
		}
		s.mu.Unlock()

		choice, found := st.job.Selector.Select(sess)

		s.mu.Lock()
		if err := b.ctx.Err(); err != nil {
			b.finishLocked(i, err)
			continue
		}
		if !found {
			// Out of candidates: the granted token was never spent on a
			// search, so it flows back to the pool for redistribution.
			b.refundLocked(i)
			b.finishLocked(i, nil)
			continue
		}
		st.granted = false
		st.pending = choice.Query
		st.stage = stageFetchQueued
		b.fetchQ = append(b.fetchQ, i)
		s.ftCond.Signal()
	}
}

// finishLocked records one job's result and unwinds the batch/scheduler
// accounting: admission of the next pending job, the budget round barrier
// (a finishing job may have been the last non-parked one), and batch
// completion.
func (b *Batch) finishLocked(i int, err error) {
	st := b.states[i]
	if st == nil || st.stage == stageDone {
		return
	}
	wasPending := st.stage == stagePending
	st.stage = stageDone
	b.results[i] = Result{Job: st.job, Fired: st.fired, Err: err}
	b.unfinished--
	if wasPending {
		b.s.queued--
	} else {
		b.live--
		b.s.active--
		b.s.finished++
	}
	b.s.admitLocked()
	b.maybeReleaseLocked()
	if b.unfinished == 0 {
		b.s.removeBatchLocked(b)
		b.cancel()
		if b.stopWatch != nil {
			b.stopWatch()
		}
		close(b.done)
	}
}

// removeBatchLocked drops a fully finished batch from the admission list.
func (s *Scheduler) removeBatchLocked(b *Batch) {
	for k, other := range s.batches {
		if other == b {
			s.batches = append(s.batches[:k], s.batches[k+1:]...)
			return
		}
	}
}

// Run executes all jobs to completion (or ctx cancellation) and returns
// one Result per job, in input order. Sessions must be freshly created
// and must not be shared between jobs. It is the one-shot wrapper over a
// private Scheduler: submit everything, await, close — and the reference
// the fixed-budget parity tests compare the long-lived scheduler against.
func Run(ctx context.Context, cfg Config, jobs []Job) []Result {
	s := New(cfg)
	defer s.Close()
	b, err := s.Submit(ctx, jobs, BatchOptions{})
	if err != nil {
		// Unreachable on a fresh scheduler; keep the results contract.
		results := make([]Result, len(jobs))
		for i := range jobs {
			results[i] = Result{Job: &jobs[i], Err: err}
		}
		return results
	}
	return b.Await(ctx)
}
