package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapDeterminism guards the byte-identical artifact guarantee of the
// store and wire codecs (L2QSTOR1/L2QCKPT1/L2QDOM1/L2QWIR1): Go map
// iteration order is random, so a codec path that serializes — or
// collects into an ordered slice — while ranging over a map produces
// different bytes on every run, breaking differential wire parity and
// checkpoint/artifact reproducibility. In internal/store and
// internal/webapi the analyzer flags two shapes inside a `for range`
// over a map:
//
//   - any call that touches a store.Enc (method call on one, or an Enc
//     passed as an argument) — encoding directly in iteration order;
//   - an append to a slice that the enclosing function never sorts —
//     the sanctioned idiom is collect-keys, sort, then iterate the
//     sorted slice.
var MapDeterminism = &Analyzer{
	Name: "mapdeterminism",
	Doc: "codec paths must not serialize in map-iteration order: sort collected keys, " +
		"and never feed a store.Enc from inside a map range",
	Run: runMapDeterminism,
}

func runMapDeterminism(pass *Pass) error {
	if !pathIn(pass.Path(), "store", "webapi") {
		return nil
	}
	info := pass.Info()
	for _, f := range pass.Files() {
		var enclosing *ast.FuncDecl
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				enclosing = n
			case *ast.RangeStmt:
				checkMapRange(pass, info, enclosing, n)
			}
			return true
		})
	}
	return nil
}

func checkMapRange(pass *Pass, info *types.Info, enclosing *ast.FuncDecl, rng *ast.RangeStmt) {
	tv, ok := info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}

	// Targets of appends performed inside the range body.
	appended := map[types.Object]ast.Expr{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if encExpr := touchesEnc(info, n); encExpr != nil {
				pass.Reportf(n.Pos(), "store.Enc fed inside range over a map: encoded bytes depend on map iteration order")
				return true
			}
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(n.Args) > 0 {
					if target, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
						if obj := info.Uses[target]; obj != nil {
							if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
								appended[obj] = n.Args[0]
							}
						}
					}
				}
			}
		}
		return true
	})
	if len(appended) == 0 || enclosing == nil || enclosing.Body == nil {
		return
	}
	for obj, expr := range appended {
		if !sortedInFunc(info, enclosing.Body, obj) {
			pass.Reportf(expr.Pos(), "%s is appended to in map-iteration order and never sorted in %s: collect, sort, then iterate",
				obj.Name(), enclosing.Name.Name)
		}
	}
}

// touchesEnc reports (by returning the offending expression) whether the
// call invokes a method on, or passes as an argument, a value of a type
// named Enc defined in a package whose path element is "store".
func touchesEnc(info *types.Info, call *ast.CallExpr) ast.Expr {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[sel.X]; ok && isStoreEnc(tv.Type) {
			return sel.X
		}
	}
	for _, a := range call.Args {
		if tv, ok := info.Types[a]; ok && isStoreEnc(tv.Type) {
			return a
		}
	}
	return nil
}

func isStoreEnc(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Enc" || named.Obj().Pkg() == nil {
		return false
	}
	return pathIn(named.Obj().Pkg().Path(), "store")
}

// sortedInFunc reports whether the function body contains a sort call
// over the object: sort.Strings/Ints/Float64s/Slice/SliceStable/
// Sort/Stable or any slices.Sort* with obj among the arguments.
func sortedInFunc(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		isSorter := (fn.Pkg().Path() == "sort" && (fn.Name() == "Strings" || fn.Name() == "Ints" ||
			fn.Name() == "Float64s" || fn.Name() == "Slice" || fn.Name() == "SliceStable" ||
			fn.Name() == "Sort" || fn.Name() == "Stable")) ||
			(fn.Pkg().Path() == "slices" && strings.HasPrefix(fn.Name(), "Sort"))
		if !isSorter {
			return true
		}
		for _, a := range call.Args {
			if id, ok := ast.Unparen(a).(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}
