package lint

import (
	"go/ast"
	"go/types"
)

// CtxBG bans context.Background() in internal/* library code. Since PR 3
// the harvest stack threads cancellation end to end — a Background() that
// sneaks into library code detaches whatever runs under it from the
// caller's deadline and from graceful shutdown (the exact bug class the
// ~100ms-vs-30s pipeline cancellation fix removed). The sanctioned
// exceptions — errorless-adapter implementations of legacy interfaces,
// lifetime contexts owned by a server object, nil-ctx normalization of a
// public API — carry an //l2qvet:ignore ctxbg <reason> annotation at the
// call site, which is the whole point: a detached context is a recorded
// decision, not a default.
var CtxBG = &Analyzer{
	Name: "ctxbg",
	Doc: "no context.Background() in internal/* library code: thread the caller's ctx, " +
		"or annotate a sanctioned adapter site with //l2qvet:ignore ctxbg <reason>",
	Run: runCtxBG,
}

func runCtxBG(pass *Pass) error {
	if !inInternal(pass.Path()) {
		return nil
	}
	info := pass.Info()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.FullName() != "context.Background" {
				return true
			}
			pass.Reportf(call.Pos(), "context.Background() in library code: thread the caller's context instead")
			return true
		})
	}
	return nil
}
