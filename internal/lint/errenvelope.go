package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// ErrEnvelope enforces the unified retryable-error envelope on the
// serving surface (PR 6): every failure internal/webapi hands a client is
// `{"error":{"code","message","retryable"}}`, written by the one
// writeError helper — that is what lets a single client-side decoder
// honor server retryability hints on every route and both codecs. A
// handler that calls http.Error, or hand-rolls a 4xx/5xx status write,
// produces a body the client's envelope decoder cannot classify, so the
// retry loop falls back to guessing from the status class.
//
// The writeError helper itself is exempt by name; the fault injector's
// deliberately-hostile responses carry //l2qvet:ignore annotations (an
// injected fault is *supposed* to be a malformed failure).
var ErrEnvelope = &Analyzer{
	Name: "errenvelope",
	Doc: "internal/webapi handlers must fail through writeError's retryable-error envelope, " +
		"not http.Error or a hand-rolled 4xx/5xx response",
	Run: runErrEnvelope,
}

func runErrEnvelope(pass *Pass) error {
	if !pathIn(pass.Path(), "webapi") {
		return nil
	}
	info := pass.Info()
	for _, f := range pass.Files() {
		var enclosing *ast.FuncDecl
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				enclosing = n
			case *ast.CallExpr:
				if enclosing != nil && enclosing.Name.Name == "writeError" {
					return true // the designated envelope helper
				}
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.FullName() == "net/http.Error" {
					pass.Reportf(n.Pos(), "http.Error bypasses the retryable-error envelope: use writeError")
					return true
				}
				if sel.Sel.Name == "WriteHeader" && len(n.Args) == 1 {
					if tv, ok := info.Types[n.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
						if status, ok := constant.Int64Val(tv.Value); ok && status >= 400 {
							pass.Reportf(n.Pos(), "hand-rolled %d response bypasses the retryable-error envelope: use writeError", status)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}
