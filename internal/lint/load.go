package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
)

// Package is one loaded, parsed, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	ImportMap  map[string]string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir over the patterns and
// decodes the package stream. -export populates each package's build-cache
// export-data file, which is what lets the loader type-check against
// compiled imports with nothing beyond the standard library's gc importer.
func goList(dir string, patterns ...string) ([]*listPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,ImportMap,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding: %v", patterns, err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportLookup resolves import paths to export-data readers from a
// path -> file map, growing the map on demand via go list (the testdata
// harness hits stdlib packages lazily).
type exportLookup struct {
	mu      sync.Mutex
	dir     string // directory go list runs in
	exports map[string]string
}

func (l *exportLookup) add(pkgs []*listPkg) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.exports == nil {
		l.exports = map[string]string{}
	}
	for _, p := range pkgs {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
}

func (l *exportLookup) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	f := l.exports[path]
	l.mu.Unlock()
	if f == "" {
		pkgs, err := goList(l.dir, path)
		if err != nil {
			return nil, fmt.Errorf("no export data for %q: %v", path, err)
		}
		l.add(pkgs)
		l.mu.Lock()
		f = l.exports[path]
		l.mu.Unlock()
	}
	if f == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(f)
}

// CheckUnit parses and type-checks one explicit compilation unit; it is
// how cmd/l2qvet's vettool mode reuses the loader's back half on the
// file list `go vet` hands it.
func CheckUnit(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	return checkFiles(fset, imp, path, dir, goFiles)
}

// checkFiles parses and type-checks one package's files.
func checkFiles(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, gf := range goFiles {
		if !filepath.IsAbs(gf) {
			gf = filepath.Join(dir, gf)
		}
		f, err := parser.ParseFile(fset, gf, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Load type-checks the pattern-matched packages of the module rooted at
// dir and returns them ready for analysis. Dependencies (in-module and
// standard library alike) are imported from build-cache export data, so
// only the target packages themselves are parsed from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	lk := &exportLookup{dir: dir}
	lk.add(listed)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lk.lookup)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := checkFiles(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// testdataImporter resolves imports for testdata packages: an import path
// that exists as a directory under the testdata root is type-checked from
// source (recursively, analysistest's GOPATH=testdata convention); every
// other path must be a standard-library package and is imported from
// export data.
type testdataImporter struct {
	root   string
	fset   *token.FileSet
	std    types.Importer
	loaded map[string]*Package
}

func (ti *testdataImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := ti.loaded[path]; ok {
		return pkg.Types, nil
	}
	dir := filepath.Join(ti.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, err := ti.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ti.std.Import(path)
}

func (ti *testdataImporter) load(path, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			goFiles = append(goFiles, e.Name())
		}
	}
	sort.Strings(goFiles)
	pkg, err := checkFiles(ti.fset, ti, path, dir, goFiles)
	if err != nil {
		return nil, err
	}
	ti.loaded[path] = pkg
	return pkg, nil
}

// LoadTestdata type-checks one package from a testdata tree (root is the
// testdata/src directory, path the package-relative dir). moduleDir is
// where `go list` resolves standard-library export data.
func LoadTestdata(moduleDir, root, path string) (*Package, error) {
	fset := token.NewFileSet()
	lk := &exportLookup{dir: moduleDir}
	ti := &testdataImporter{
		root:   root,
		fset:   fset,
		std:    importer.ForCompiler(fset, "gc", lk.lookup),
		loaded: map[string]*Package{},
	}
	return ti.load(path, filepath.Join(root, filepath.FromSlash(path)))
}
