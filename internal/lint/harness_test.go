package lint

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// backquoted extracts the expectation regexes from a `// want` comment —
// the analysistest convention, backquote-delimited so the patterns can
// hold quotes and escapes verbatim.
var backquoted = regexp.MustCompile("`([^`]*)`")

// testAnalyzer runs one analyzer over one testdata package and holds its
// findings to the package's inline `// want` expectations: every finding
// must match a want on its line, and every want must be consumed. Findings
// silenced by //l2qvet:ignore directives never reach the comparison, so a
// suppressed fixture is simply a line with no want.
func testAnalyzer(t *testing.T, a *Analyzer, path string) {
	t.Helper()
	pkg, err := LoadTestdata(".", "testdata/src", path)
	if err != nil {
		t.Fatalf("loading testdata package %s: %v", path, err)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s over %s: %v", a.Name, path, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				i := strings.Index(c.Text, "want ")
				if i < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, m := range backquoted.FindAllStringSubmatch(c.Text[i:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		got := fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(got) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding at %s: %s", d.Pos, got)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected a finding matching %q, got none", k.file, k.line, re)
		}
	}
}

func TestPoolPut(t *testing.T)    { testAnalyzer(t, PoolPut, "poolput") }
func TestCtxBG(t *testing.T)      { testAnalyzer(t, CtxBG, "internal/ctxbg") }
func TestAppendTwin(t *testing.T) { testAnalyzer(t, AppendTwin, "appendtwin") }

func TestMapDeterminism(t *testing.T) { testAnalyzer(t, MapDeterminism, "mapdet/store") }

// TestCtxBGScope and TestMapDeterminismScope hold the path scoping: the
// same shapes that fire inside internal/* or the codec paths are ignored
// outside them.
func TestCtxBGScope(t *testing.T)          { testAnalyzer(t, CtxBG, "ctxbgout") }
func TestMapDeterminismScope(t *testing.T) { testAnalyzer(t, MapDeterminism, "mapdet/other") }

func TestErrEnvelope(t *testing.T) { testAnalyzer(t, ErrEnvelope, "errenvelope/webapi") }

// TestMalformedIgnore: a directive without an analyzer and reason is
// itself a finding of the pseudo-analyzer "l2qvet".
func TestMalformedIgnore(t *testing.T) {
	pkg, err := LoadTestdata(".", "testdata/src", "ignoredir")
	if err != nil {
		t.Fatalf("loading testdata package ignoredir: %v", err)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, Analyzers())
	if err != nil {
		t.Fatalf("running suite over ignoredir: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly the malformed-directive finding: %v", len(diags), diags)
	}
	if diags[0].Analyzer != "l2qvet" || !strings.Contains(diags[0].Message, "malformed") {
		t.Fatalf("got %v, want a malformed-directive finding from the l2qvet pseudo-analyzer", diags[0])
	}
}

// TestByName covers the subset selector and its error path.
func TestByName(t *testing.T) {
	subset, err := ByName("poolput, ctxbg")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if len(subset) != 2 || subset[0] != PoolPut || subset[1] != CtxBG {
		t.Fatalf("ByName returned %v, want [poolput ctxbg]", subset)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) succeeded, want an error naming the suite")
	}
}
