package lint

import (
	"os/exec"
	"strings"
	"testing"
)

// TestRepoIsClean runs the full suite over the whole module — the same
// check `make lint` and CI run via cmd/l2qvet — so a convention regression
// fails `go test ./...` even when nobody runs the linter by hand.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("resolving module root: %v", err)
	}
	root := strings.TrimSpace(string(out))
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages from the module root")
	}
	diags, err := RunAnalyzers(pkgs, Analyzers())
	if err != nil {
		t.Fatalf("running the suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
