package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AppendTwin enforces the single-implementation rule behind the AppendX
// convention (PR 7, DESIGN.md "Allocation discipline"): when an exported
// X has an append twin — an exported AppendX or XAppend in the same
// package (same receiver for methods) whose signature is X's with a
// destination slice prepended — then X must delegate to the twin
// (`return AppendX(nil, …)`). Two bodies for one operation drift apart:
// the differential tests hold the twin to the reference, and a
// convenience form with its own loop silently escapes that net.
//
// Functions named *Reference are exempt: they are the repo's retained
// rebuild-path implementations, deliberately independent so differential
// parity tests have something honest to compare against.
var AppendTwin = &Analyzer{
	Name: "appendtwin",
	Doc: "an exported X with an AppendX/XAppend twin must delegate to the twin " +
		"(X = AppendX(nil, …)); a second implementation is drift waiting to happen",
	Run: runAppendTwin,
}

func runAppendTwin(pass *Pass) error {
	info := pass.Info()

	// Collect every exported function and method with its declaration.
	type fnDecl struct {
		obj  *types.Func
		decl *ast.FuncDecl
	}
	var fns []fnDecl
	for _, f := range pass.Files() {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() {
				continue
			}
			if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
				fns = append(fns, fnDecl{obj, fd})
			}
		}
	}

	for _, f := range fns {
		name := f.obj.Name()
		if strings.HasSuffix(name, "Reference") {
			continue
		}
		sig := f.obj.Signature()
		if sig.Results().Len() != 1 {
			continue
		}
		res := sig.Results().At(0).Type()
		if _, ok := res.Underlying().(*types.Slice); !ok {
			continue
		}
		// Skip append-style functions themselves: first parameter is the
		// result slice type.
		if sig.Params().Len() > 0 && types.Identical(sig.Params().At(0).Type(), res) {
			continue
		}

		var twins []*types.Func
		for _, t := range fns {
			if t.obj == f.obj || !isAppendName(t.obj.Name()) {
				continue
			}
			if !sameReceiver(sig, t.obj.Signature()) {
				continue
			}
			if isAppendTwinSig(sig, t.obj.Signature(), res) {
				twins = append(twins, t.obj)
			}
		}
		if len(twins) == 0 || f.decl.Body == nil {
			continue
		}
		if !callsAny(info, f.decl.Body, twins) {
			names := make([]string, len(twins))
			for i, t := range twins {
				names[i] = t.Name()
			}
			pass.Reportf(f.decl.Pos(), "%s does not delegate to its append twin %s: keep one implementation (%s = %s(nil, …))",
				name, strings.Join(names, "/"), name, names[0])
		}
	}
	return nil
}

func isAppendName(name string) bool {
	return strings.HasPrefix(name, "Append") || strings.HasSuffix(name, "Append")
}

// sameReceiver reports whether two signatures are both receiver-less or
// share the same named receiver base type.
func sameReceiver(a, b *types.Signature) bool {
	return recvBase(a) == recvBase(b)
}

func recvBase(sig *types.Signature) *types.TypeName {
	r := sig.Recv()
	if r == nil {
		return nil
	}
	t := r.Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// isAppendTwinSig reports whether twin's signature is sig's with a
// destination slice of type res prepended and the same single result.
func isAppendTwinSig(sig, twin *types.Signature, res types.Type) bool {
	if twin.Results().Len() != 1 || !types.Identical(twin.Results().At(0).Type(), res) {
		return false
	}
	if twin.Params().Len() != sig.Params().Len()+1 || sig.Variadic() != twin.Variadic() {
		return false
	}
	if !types.Identical(twin.Params().At(0).Type(), res) {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if !types.Identical(sig.Params().At(i).Type(), twin.Params().At(i+1).Type()) {
			return false
		}
	}
	return true
}

// callsAny reports whether body contains a call to any of the functions.
func callsAny(info *types.Info, body *ast.BlockStmt, fns []*types.Func) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var callee types.Object
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			callee = info.Uses[fun]
		case *ast.SelectorExpr:
			callee = info.Uses[fun.Sel]
		}
		for _, fn := range fns {
			if callee == fn {
				found = true
			}
		}
		return true
	})
	return found
}
