package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// PoolPut enforces the pooled-scratch hand-back convention from DESIGN.md
// "Allocation discipline": a struct returned to a sync.Pool must not
// silently retain references through pointer-bearing fields. Every such
// field has to be explicitly accounted for before the Put — assigned
// (the `sc.raw = raw` hand-back that keeps pool-owned capacity), element
// -niled (`sc.lists[i] = nil`, dropping aliases into the index), or
// cleared (`clear(sc.seen)`). A field that is merely *left alone* is the
// bug this catches: add a field to pooled scratch, forget to manage it,
// and the pool pins whatever the last call stored there.
//
// When the Put lives in a release helper taking the scratch as a
// parameter, fields the helper does not account for must be accounted
// for by every caller of the helper (the releaseSearchScratch shape).
// Only locally-defined struct types are checked — foreign pooled types
// (gzip.Writer, store.Enc) manage their own state behind Reset.
var PoolPut = &Analyzer{
	Name: "poolput",
	Doc: "sync.Pool.Put of a struct with pointer-bearing fields must assign, element-nil, " +
		"or clear each such field at the put site (or across release-helper callers)",
	Run: runPoolPut,
}

func runPoolPut(pass *Pass) error {
	info := pass.Info()

	// Index every function declaration by its object, and record each
	// node's enclosing declaration while walking.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files() {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}

	for _, f := range pass.Files() {
		var enclosing *ast.FuncDecl
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				enclosing = n
			case *ast.CallExpr:
				checkPut(pass, decls, enclosing, n)
			}
			return true
		})
	}
	return nil
}

// checkPut analyzes one candidate call expression.
func checkPut(pass *Pass, decls map[*types.Func]*ast.FuncDecl, enclosing *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.Info()
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" || len(call.Args) != 1 || enclosing == nil {
		return
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.FullName() != "(*sync.Pool).Put" {
		return
	}
	arg := ast.Unparen(call.Args[0])
	id, ok := arg.(*ast.Ident)
	if !ok {
		return // Put of a non-identifier: nothing to track.
	}
	obj := info.Uses[id]
	if obj == nil {
		return
	}
	st, fields := localPointerFields(pass, obj.Type())
	if st == nil || len(fields) == 0 {
		return
	}

	acc := accountedFields(info, enclosing.Body, obj)
	missing := subtract(fields, acc)
	if len(missing) == 0 {
		return
	}

	// If the scratch arrived as a parameter, this is a release helper:
	// the remaining fields may legitimately be handed back by the
	// callers (they hold the local values being returned to the pool).
	if paramObj(info, enclosing, obj) {
		helperObj, _ := info.Defs[enclosing.Name].(*types.Func)
		callers := callerSites(pass, decls, helperObj, enclosing, obj)
		if len(callers) > 0 {
			for _, cs := range callers {
				callerAcc := accountedFields(info, cs.fn.Body, cs.arg)
				if m := subtract(missing, callerAcc); len(m) != 0 {
					pass.Reportf(cs.pos, "sync.Pool.Put of *%s via %s: pointer-bearing field(s) %s neither reset in the helper nor assigned here before release",
						st.Obj().Name(), enclosing.Name.Name, strings.Join(m, ", "))
				}
			}
			return
		}
	}

	pass.Reportf(call.Pos(), "sync.Pool.Put of *%s: pointer-bearing field(s) %s not assigned, element-niled, or cleared before Put",
		st.Obj().Name(), strings.Join(missing, ", "))
}

// localPointerFields returns the named struct behind t when it is defined
// in the package under analysis, plus its pointer-bearing field names.
func localPointerFields(pass *Pass, t types.Type) (*types.Named, []string) {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() != pass.Types() {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	var fields []string
	for i := 0; i < st.NumFields(); i++ {
		if hasPointers(st.Field(i).Type(), 0) {
			fields = append(fields, st.Field(i).Name())
		}
	}
	sort.Strings(fields)
	return named, fields
}

// hasPointers reports whether values of t can hold references: pointers,
// slices, maps, channels, funcs, interfaces, or aggregates containing
// them. Strings are treated as value types — they are immutable and the
// repo's scratch convention (tokens are string headers) deliberately
// retains them.
func hasPointers(t types.Type, depth int) bool {
	if depth > 10 {
		return true // cyclic type: assume the worst
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasPointers(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return hasPointers(u.Elem(), depth+1)
	default:
		return false
	}
}

// accountedFields scans a function body for the field-accounting forms on
// the variable obj: `obj.f = ...`, `obj.f[i] = ...`, `clear(obj.f)`.
func accountedFields(info *types.Info, body *ast.BlockStmt, obj types.Object) map[string]bool {
	acc := map[string]bool{}
	if body == nil {
		return acc
	}
	fieldOf := func(e ast.Expr) (string, bool) {
		if ix, ok := e.(*ast.IndexExpr); ok {
			e = ix.X // obj.f[i] accounts f
		}
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			return "", false
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || info.Uses[base] != obj {
			return "", false
		}
		return sel.Sel.Name, true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if f, ok := fieldOf(lhs); ok {
					acc[f] = true
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && len(n.Args) == 1 {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "clear" {
					if f, ok := fieldOf(n.Args[0]); ok {
						acc[f] = true
					}
				}
			}
		}
		return true
	})
	return acc
}

// paramObj reports whether obj is one of fd's parameters.
func paramObj(info *types.Info, fd *ast.FuncDecl, obj types.Object) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if info.Defs[name] == obj {
				return true
			}
		}
	}
	return false
}

// callerSite is one call of a release helper: the enclosing function, the
// identifier passed for the scratch parameter, and the report position.
type callerSite struct {
	fn  *ast.FuncDecl
	arg types.Object
	pos token.Pos
}

// callerSites finds every same-package call of helper, resolving the
// argument bound to the scratch parameter obj.
func callerSites(pass *Pass, decls map[*types.Func]*ast.FuncDecl, helper *types.Func, helperDecl *ast.FuncDecl, obj types.Object) []callerSite {
	if helper == nil {
		return nil
	}
	// Index of the scratch parameter in the helper signature.
	idx := -1
	i := 0
	for _, field := range helperDecl.Type.Params.List {
		for _, name := range field.Names {
			if pass.Info().Defs[name] == obj {
				idx = i
			}
			i++
		}
	}
	if idx < 0 {
		return nil
	}
	var sites []callerSite
	for _, f := range pass.Files() {
		var enclosing *ast.FuncDecl
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				enclosing = n
			case *ast.CallExpr:
				if enclosing == nil || enclosing == helperDecl {
					return true
				}
				var callee types.Object
				switch fun := ast.Unparen(n.Fun).(type) {
				case *ast.Ident:
					callee = pass.Info().Uses[fun]
				case *ast.SelectorExpr:
					callee = pass.Info().Uses[fun.Sel]
				}
				if callee != helper || idx >= len(n.Args) {
					return true
				}
				site := callerSite{fn: enclosing, pos: n.Pos()}
				if id, ok := ast.Unparen(n.Args[idx]).(*ast.Ident); ok {
					site.arg = pass.Info().Uses[id]
				}
				sites = append(sites, site)
			}
			return true
		})
	}
	return sites
}

// subtract returns the fields not present in acc, preserving order.
func subtract(fields []string, acc map[string]bool) []string {
	var out []string
	for _, f := range fields {
		if !acc[f] {
			out = append(out, f)
		}
	}
	return out
}
