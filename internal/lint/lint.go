// Package lint is l2qvet's analyzer suite: repo-specific static checks
// that machine-enforce the conventions this codebase's performance and
// reproducibility guarantees rest on. Seven PRs of optimization left the
// repo with invariants that were documented (DESIGN.md "Allocation
// discipline", the store codec's determinism bar, the webapi error
// envelope) but enforced only by review; each analyzer here turns one of
// them into a compiler-adjacent check:
//
//   - poolput: every sync.Pool.Put of a locally-defined struct with
//     pointer-bearing fields must account for those fields at the put
//     site (assign, element-nil, or clear) so pooled scratch cannot
//     silently pin index postings or page text (PR 7).
//   - ctxbg: no context.Background() in internal/* library code except
//     annotated errorless-adapter sites — new code threads the caller's
//     context (PR 3).
//   - mapdeterminism: codec paths (internal/store, internal/webapi) may
//     not serialize in map-iteration order — collected keys must be
//     sorted, and nothing may feed a store.Enc from inside a map range
//     (the byte-identical artifact guarantee, PRs 4–6).
//   - appendtwin: an exported X alongside an AppendX/XAppend twin must
//     delegate to the twin; two implementations drift (PR 7).
//   - errenvelope: internal/webapi handlers fail through writeError's
//     unified retryable-error envelope, never http.Error or a hand-rolled
//     4xx/5xx (PR 6).
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) so the analyzers port mechanically if that
// module is ever vendored; this repo is dependency-free by policy, so
// loading and running are implemented on the standard library alone
// (go/parser + go/types over `go list -export` build-cache export data).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. The shape intentionally matches
// x/tools/go/analysis.Analyzer so a future migration is mechanical.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //l2qvet:ignore directives.
	Name string
	// Doc is the one-paragraph description printed by `l2qvet -list`.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Fset returns the file set all positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Files returns the package's parsed (non-test) files.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// Path returns the package import path.
func (p *Pass) Path() string { return p.Pkg.Path }

// Types returns the type-checked package.
func (p *Pass) Types() *types.Package { return p.Pkg.Types }

// Info returns the type-checker's recorded use/def/type maps.
func (p *Pass) Info() *types.Info { return p.Pkg.Info }

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, position already resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// SuppressedBy holds the in-code justification when an
	// //l2qvet:ignore directive silenced this finding (such findings are
	// filtered out of RunAnalyzers' return; the field exists for tools
	// that want to audit suppressions).
	SuppressedBy string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzers returns the full l2qvet suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{PoolPut, CtxBG, MapDeterminism, AppendTwin, ErrEnvelope}
}

// ByName resolves a comma-separated analyzer list ("" = the whole suite).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return Analyzers(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: %s)", n, strings.Join(analyzerNames(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

func analyzerNames() []string {
	var ns []string
	for _, a := range Analyzers() {
		ns = append(ns, a.Name)
	}
	return ns
}

// ignoreDirective is one parsed //l2qvet:ignore comment.
type ignoreDirective struct {
	pos      token.Position
	analyzer string // "" on a malformed directive
	reason   string
}

// IgnorePrefix is the in-code suppression marker. A finding is silenced
// by a comment on its own line or the line directly above:
//
//	//l2qvet:ignore <analyzer> <reason>
//
// The reason is mandatory: a suppression is a recorded decision, not an
// off switch. Malformed directives are themselves findings.
const IgnorePrefix = "l2qvet:ignore"

// parseIgnores extracts every suppression directive in a file, keyed by
// line. Malformed directives (no analyzer, or no reason) are returned
// separately so the runner can report them.
func parseIgnores(fset *token.FileSet, f *ast.File) (byLine map[int]map[string]string, malformed []ignoreDirective) {
	byLine = map[int]map[string]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, IgnorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, IgnorePrefix))
			pos := fset.Position(c.Pos())
			name, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			if name == "" || reason == "" {
				malformed = append(malformed, ignoreDirective{pos: pos})
				continue
			}
			if byLine[pos.Line] == nil {
				byLine[pos.Line] = map[string]string{}
			}
			byLine[pos.Line][name] = reason
		}
	}
	return byLine, malformed
}

// RunAnalyzers runs every analyzer over every package and returns the
// surviving findings sorted by position. Suppressed findings are dropped;
// malformed suppression directives come back as findings of the pseudo
// analyzer "l2qvet".
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		ignores := map[string]map[int]map[string]string{} // file -> line -> analyzer -> reason
		for _, f := range pkg.Files {
			byLine, malformed := parseIgnores(pkg.Fset, f)
			ignores[pkg.Fset.Position(f.Pos()).Filename] = byLine
			for _, m := range malformed {
				out = append(out, Diagnostic{
					Analyzer: "l2qvet",
					Pos:      m.pos,
					Message:  "malformed " + IgnorePrefix + " directive: want //" + IgnorePrefix + " <analyzer> <reason>",
				})
			}
		}
		suppressedBy := func(d Diagnostic) string {
			byLine := ignores[d.Pos.Filename]
			for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
				if reason, ok := byLine[line][d.Analyzer]; ok {
					return reason
				}
			}
			return ""
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				report: func(d Diagnostic) {
					if suppressedBy(d) == "" {
						out = append(out, d)
					}
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// pathIn reports whether the package import path names pkg (exactly, or
// as its last path element) — how the repo-scoped analyzers recognize
// their target packages both in the real module ("l2q/internal/store")
// and in testdata trees ("mapdet/store").
func pathIn(path string, names ...string) bool {
	for _, n := range names {
		if path == n || strings.HasSuffix(path, "/"+n) {
			return true
		}
	}
	return false
}

// inInternal reports whether the import path lies under an internal/
// tree — the scope of the library-code-only checks.
func inInternal(path string) bool {
	return path == "internal" || strings.HasPrefix(path, "internal/") ||
		strings.Contains(path, "/internal/") || strings.HasSuffix(path, "/internal")
}
