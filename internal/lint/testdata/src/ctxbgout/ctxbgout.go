// Package ctxbgout sits outside any internal/ tree: ctxbg does not apply
// here (a main package or test harness may own a root context).
package ctxbgout

import "context"

// Root owns a fresh root context; fine outside internal/*.
func Root() context.Context {
	return context.Background()
}
