// Package appendtwin exercises the appendtwin analyzer: an exported X
// whose signature pairs with an exported AppendX/XAppend twin must
// delegate to the twin rather than keep a second implementation.
package appendtwin

// AppendWords is the single real implementation.
func AppendWords(dst []string, s string) []string {
	return append(dst, s)
}

// BadWords reimplements the operation instead of delegating.
func BadWords(s string) []string { // want `appendtwin: BadWords does not delegate to its append twin AppendWords`
	return []string{s}
}

// GoodWords is the sanctioned thin wrapper.
func GoodWords(s string) []string {
	return AppendWords(nil, s)
}

// WordsReference is a retained reference implementation, exempt by name:
// differential parity tests need an independent body to compare against.
func WordsReference(s string) []string {
	return []string{s}
}

// Tok carries the method-pair case.
type Tok struct{ sep string }

// Append is the method twin.
func (t *Tok) Append(dst []string, s string) []string {
	return append(dst, s, t.sep)
}

// Bad duplicates the method twin's body.
func (t *Tok) Bad(s string) []string { // want `appendtwin: Bad does not delegate to its append twin Append`
	return []string{s, t.sep}
}

// Good delegates.
func (t *Tok) Good(s string) []string {
	return t.Append(nil, s)
}

// Suppressed keeps a second implementation with a recorded reason.
//
//l2qvet:ignore appendtwin fixture keeps a deliberate second implementation
func Suppressed(s string) []string {
	return []string{s}
}
