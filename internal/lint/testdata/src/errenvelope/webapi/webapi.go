// Package webapi exercises the errenvelope analyzer inside a serving-path
// package (the analyzer recognizes packages whose last path element is
// webapi).
package webapi

import "net/http"

// badHandler bypasses the envelope with http.Error.
func badHandler(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `errenvelope: http\.Error bypasses the retryable-error envelope: use writeError`
}

// badStatus hand-rolls an error status.
func badStatus(w http.ResponseWriter) {
	w.WriteHeader(http.StatusBadRequest) // want `errenvelope: hand-rolled 400 response bypasses the retryable-error envelope: use writeError`
}

// goodOK writes a success status: only 4xx/5xx are the envelope's business.
func goodOK(w http.ResponseWriter) {
	w.WriteHeader(http.StatusOK)
}

// writeError is the designated envelope helper, exempt by name (the real
// one writes the JSON envelope; the status here is a variable, so the
// constant-status check does not fire either).
func writeError(w http.ResponseWriter, code int, msg string) {
	w.WriteHeader(code)
	http.Error(w, msg, code)
}

// suppressed records the fault-injector exception.
func suppressed(w http.ResponseWriter) {
	//l2qvet:ignore errenvelope fixture emits a hostile non-envelope body on purpose
	http.Error(w, "injected", http.StatusInternalServerError)
}

var _ = badHandler
var _ = badStatus
var _ = goodOK
var _ = writeError
var _ = suppressed
