// Package poolput exercises the poolput analyzer: sync.Pool.Put of a
// locally-defined struct with pointer-bearing fields must account for
// each such field (assign, element-nil, or clear) before the Put.
package poolput

import (
	"bytes"
	"sync"
)

type scratch struct {
	buf  []byte
	seen map[string]bool
	n    int // value field: not tracked
}

var pool = sync.Pool{New: func() any { return new(scratch) }}

// Bad returns scratch with both pointer-bearing fields untouched.
func Bad() {
	sc := pool.Get().(*scratch)
	sc.n = 0
	pool.Put(sc) // want `poolput: sync\.Pool\.Put of \*scratch: pointer-bearing field\(s\) buf, seen not assigned, element-niled, or cleared`
}

// Good accounts every pointer-bearing field before the Put.
func Good() {
	sc := pool.Get().(*scratch)
	sc.buf = sc.buf[:0]
	clear(sc.seen)
	pool.Put(sc)
}

type slots struct {
	lists [][]int
}

var slotPool = sync.Pool{New: func() any { return new(slots) }}

// ElementNil accounts a slice field by niling its elements.
func ElementNil() {
	s := slotPool.Get().(*slots)
	for i := range s.lists {
		s.lists[i] = nil
	}
	slotPool.Put(s)
}

// release is a release helper: it accounts buf itself and relies on its
// callers to account seen (the releaseSearchScratch shape).
func release(sc *scratch) {
	sc.buf = sc.buf[:0]
	pool.Put(sc)
}

// GoodCaller hands seen back before delegating to the helper.
func GoodCaller() {
	sc := pool.Get().(*scratch)
	clear(sc.seen)
	release(sc)
}

// BadCaller releases without accounting the field the helper leaves to it.
func BadCaller() {
	sc := pool.Get().(*scratch)
	release(sc) // want `poolput: sync\.Pool\.Put of \*scratch via release: pointer-bearing field\(s\) seen neither reset in the helper nor assigned here`
}

// Suppressed records a deliberate retention with a justification.
func Suppressed() {
	sc := pool.Get().(*scratch)
	//l2qvet:ignore poolput fixture retains its fields on purpose
	pool.Put(sc)
}

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Foreign pools a type defined elsewhere: foreign types manage their own
// state behind Reset and are not checked.
func Foreign() {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	bufPool.Put(b)
}
