// Package ctxbg exercises the ctxbg analyzer: context.Background() is
// banned in internal/* library code unless the site carries a suppression
// explaining why a detached context is correct there.
package ctxbg

import "context"

// Bad detaches from the caller's cancellation.
func Bad() context.Context {
	return context.Background() // want `ctxbg: context\.Background\(\) in library code: thread the caller's context instead`
}

// Good threads the caller's context.
func Good(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}

// Adapter is a sanctioned errorless-adapter site: the suppression records
// the decision next to the code.
func Adapter() context.Context {
	//l2qvet:ignore ctxbg errorless adapter fixture: the legacy signature has no ctx parameter
	return context.Background()
}
