// Package other sits outside the codec paths: mapdeterminism ignores it
// even though it collects map keys unsorted.
package other

// Keys returns the keys in whatever order the map yields them.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
