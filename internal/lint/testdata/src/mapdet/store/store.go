// Package store exercises the mapdeterminism analyzer inside a codec-path
// package (the analyzer recognizes packages whose last path element is
// store or webapi).
package store

import "sort"

// Enc mimics the real store codec's encoder: the analyzer recognizes any
// type named Enc defined in a store package.
type Enc struct{ b []byte }

// Uvarint appends one encoded value.
func (e *Enc) Uvarint(v uint64) { e.b = append(e.b, byte(v)) }

// BadEnc encodes in map-iteration order: different bytes every run.
func BadEnc(e *Enc, m map[string]uint64) {
	for _, v := range m {
		e.Uvarint(v) // want `mapdeterminism: store\.Enc fed inside range over a map: encoded bytes depend on map iteration order`
	}
}

// BadAppend collects keys in iteration order and never sorts them.
func BadAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `mapdeterminism: keys is appended to in map-iteration order and never sorted in BadAppend`
	}
	return keys
}

// Good is the sanctioned idiom: collect, sort, then iterate.
func Good(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SuppressedEnc records a justified exception.
func SuppressedEnc(e *Enc, m map[string]uint64) {
	for _, v := range m {
		//l2qvet:ignore mapdeterminism fixture encodes a map guaranteed to hold one entry
		e.Uvarint(v)
	}
}
