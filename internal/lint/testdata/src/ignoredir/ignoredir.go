// Package ignoredir holds a deliberately malformed suppression directive:
// a directive without an analyzer name and reason is itself a finding.
package ignoredir

//l2qvet:ignore
var X = 0
