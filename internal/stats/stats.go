// Package stats provides the small statistical toolkit behind the
// evaluation's "significantly outperforms" claims: summary statistics,
// bootstrap confidence intervals, and paired significance tests
// (exact sign test and paired bootstrap). Everything is deterministic
// given a seed and uses no distribution tables — resampling and exact
// binomial tails only.
package stats

import (
	"math"
	"math/rand/v2"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation on
// the sorted copy of xs. Empty input returns 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CI is a confidence interval around a point estimate.
type CI struct {
	Mean float64
	Lo   float64
	Hi   float64
}

// BootstrapCI returns the percentile-bootstrap confidence interval of the
// mean at the given confidence level (e.g. 0.95), using iters resamples
// (default 2000 when ≤ 0). Deterministic for a fixed seed.
func BootstrapCI(xs []float64, conf float64, iters int, seed uint64) CI {
	out := CI{Mean: Mean(xs)}
	if len(xs) < 2 {
		out.Lo, out.Hi = out.Mean, out.Mean
		return out
	}
	if iters <= 0 {
		iters = 2000
	}
	if conf <= 0 || conf >= 1 {
		conf = 0.95
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	means := make([]float64, iters)
	for i := 0; i < iters; i++ {
		s := 0.0
		for j := 0; j < len(xs); j++ {
			s += xs[rng.IntN(len(xs))]
		}
		means[i] = s / float64(len(xs))
	}
	alpha := (1 - conf) / 2
	out.Lo = Quantile(means, alpha)
	out.Hi = Quantile(means, 1-alpha)
	return out
}

// SignTestResult reports a two-sided exact sign test over paired samples.
type SignTestResult struct {
	// Wins counts pairs where a > b; Losses where a < b; Ties are
	// excluded from the test (standard treatment).
	Wins, Losses, Ties int
	// P is the two-sided exact binomial p-value (1 when no untied pairs).
	P float64
}

// SignTest runs the two-sided exact sign test on paired samples a, b
// (len(a) == len(b) required; extra elements of the longer slice are
// ignored).
func SignTest(a, b []float64) SignTestResult {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var r SignTestResult
	for i := 0; i < n; i++ {
		switch {
		case a[i] > b[i]:
			r.Wins++
		case a[i] < b[i]:
			r.Losses++
		default:
			r.Ties++
		}
	}
	m := r.Wins + r.Losses
	if m == 0 {
		r.P = 1
		return r
	}
	k := r.Wins
	if r.Losses < k {
		k = r.Losses
	}
	// Two-sided: 2·P(X ≤ k) for X ~ Binomial(m, ½), capped at 1.
	tail := 0.0
	for i := 0; i <= k; i++ {
		tail += math.Exp(logChoose(m, i) - float64(m)*math.Ln2)
	}
	r.P = math.Min(1, 2*tail)
	return r
}

// PairedBootstrapResult reports a paired bootstrap test of mean difference.
type PairedBootstrapResult struct {
	// MeanDiff is mean(a) − mean(b).
	MeanDiff float64
	// P is the two-sided bootstrap p-value for the null "mean diff = 0".
	P float64
}

// PairedBootstrap resamples the paired differences a−b and reports how
// often the resampled mean difference crosses zero (two-sided).
// Deterministic for a fixed seed; iters defaults to 2000 when ≤ 0.
func PairedBootstrap(a, b []float64, iters int, seed uint64) PairedBootstrapResult {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var out PairedBootstrapResult
	if n == 0 {
		out.P = 1
		return out
	}
	diffs := make([]float64, n)
	for i := 0; i < n; i++ {
		diffs[i] = a[i] - b[i]
	}
	out.MeanDiff = Mean(diffs)
	if n < 2 {
		out.P = 1
		return out
	}
	if iters <= 0 {
		iters = 2000
	}
	rng := rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))
	crosses := 0
	for i := 0; i < iters; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += diffs[rng.IntN(n)]
		}
		m := s / float64(n)
		if (out.MeanDiff >= 0 && m <= 0) || (out.MeanDiff <= 0 && m >= 0) {
			crosses++
		}
	}
	// Add-one smoothing keeps the p-value away from an overconfident 0.
	out.P = math.Min(1, 2*float64(crosses+1)/float64(iters+1))
	return out
}

// logChoose is log C(n, k) via lgamma.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk - lnk
}
