package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceKnownValues(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Errorf("mean = %v", m)
	}
	if v := Variance(xs); !almost(v, 32.0/7.0, 1e-12) {
		t.Errorf("variance = %v", v)
	}
	if s := StdDev(xs); !almost(s, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("stddev = %v", s)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty input should be all zeros")
	}
	if Variance([]float64{3}) != 0 {
		t.Error("singleton variance should be 0")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	cases := map[float64]float64{0: 1, 0.25: 2, 0.5: 3, 0.75: 4, 1: 5, -1: 1, 2: 5}
	for q, want := range cases {
		if got := Quantile(xs, q); !almost(got, want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	f := func(n uint8) bool {
		xs := make([]float64, int(n%50)+2)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapCICoversMean(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	xs := make([]float64, 60)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	ci := BootstrapCI(xs, 0.95, 2000, 42)
	if ci.Lo > ci.Mean || ci.Hi < ci.Mean {
		t.Errorf("CI [%v, %v] does not bracket mean %v", ci.Lo, ci.Hi, ci.Mean)
	}
	// The interval should be tight around 10 for n=60, σ=1.
	if ci.Lo < 9.3 || ci.Hi > 10.7 {
		t.Errorf("CI [%v, %v] implausible for N(10,1) with n=60", ci.Lo, ci.Hi)
	}
	// Deterministic given the seed.
	again := BootstrapCI(xs, 0.95, 2000, 42)
	if again != ci {
		t.Error("bootstrap not deterministic for fixed seed")
	}
}

func TestBootstrapCIDegenerate(t *testing.T) {
	ci := BootstrapCI([]float64{5}, 0.95, 100, 1)
	if ci.Lo != 5 || ci.Hi != 5 || ci.Mean != 5 {
		t.Errorf("singleton CI = %+v", ci)
	}
}

func TestSignTestExactValues(t *testing.T) {
	// 6 wins, 0 losses: p = 2·(1/2)⁶ = 0.03125.
	a := []float64{1, 1, 1, 1, 1, 1}
	b := []float64{0, 0, 0, 0, 0, 0}
	r := SignTest(a, b)
	if r.Wins != 6 || r.Losses != 0 || r.Ties != 0 {
		t.Fatalf("counts %+v", r)
	}
	if !almost(r.P, 0.03125, 1e-12) {
		t.Errorf("p = %v, want 0.03125", r.P)
	}
}

func TestSignTestBalanced(t *testing.T) {
	a := []float64{1, 0, 1, 0}
	b := []float64{0, 1, 0, 1}
	r := SignTest(a, b)
	if r.Wins != 2 || r.Losses != 2 {
		t.Fatalf("counts %+v", r)
	}
	// 2-vs-2 is the most balanced outcome: p must be 1 (capped).
	if r.P != 1 {
		t.Errorf("p = %v, want 1", r.P)
	}
}

func TestSignTestTiesExcluded(t *testing.T) {
	a := []float64{1, 2, 3, 3, 3}
	b := []float64{0, 1, 3, 3, 3}
	r := SignTest(a, b)
	if r.Wins != 2 || r.Losses != 0 || r.Ties != 3 {
		t.Fatalf("counts %+v", r)
	}
	if !almost(r.P, 0.5, 1e-12) { // 2·(1/2)²
		t.Errorf("p = %v, want 0.5", r.P)
	}
}

func TestSignTestAllTies(t *testing.T) {
	r := SignTest([]float64{1, 1}, []float64{1, 1})
	if r.P != 1 {
		t.Errorf("all-ties p = %v", r.P)
	}
}

func TestPairedBootstrapDetectsDifference(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	n := 40
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		base := rng.NormFloat64()
		a[i] = base + 1.0 // consistently one higher
		b[i] = base + 0.1*rng.NormFloat64()
	}
	r := PairedBootstrap(a, b, 2000, 7)
	if r.MeanDiff < 0.5 {
		t.Fatalf("mean diff = %v", r.MeanDiff)
	}
	if r.P > 0.01 {
		t.Errorf("clear difference got p = %v", r.P)
	}
}

func TestPairedBootstrapNull(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	n := 40
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	r := PairedBootstrap(a, b, 2000, 9)
	if r.P < 0.05 {
		t.Errorf("null comparison got p = %v (diff %v)", r.P, r.MeanDiff)
	}
}

func TestPairedBootstrapDegenerate(t *testing.T) {
	if r := PairedBootstrap(nil, nil, 100, 1); r.P != 1 {
		t.Errorf("empty p = %v", r.P)
	}
	if r := PairedBootstrap([]float64{1}, []float64{0}, 100, 1); r.P != 1 {
		t.Errorf("n=1 p = %v", r.P)
	}
}

func TestLogChoose(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, math.Log(10)},
		{10, 0, 0},
		{10, 10, 0},
		{52, 5, math.Log(2598960)},
	}
	for _, c := range cases {
		if got := logChoose(c.n, c.k); !almost(got, c.want, 1e-9) {
			t.Errorf("logChoose(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	if !math.IsInf(logChoose(3, 5), -1) {
		t.Error("k > n should be -inf")
	}
}
