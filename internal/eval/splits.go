package eval

import (
	"fmt"
	"math"
	"math/rand/v2"

	"l2q/internal/baselines"
	"l2q/internal/classify"
	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/par"
	"l2q/internal/search"
	"l2q/internal/synth"
	"l2q/internal/types"
)

// NewEnvs builds n environments over the SAME corpus and index with
// different random entity splits — the paper's protocol repeats the split
// 10 times and averages (§VI-A). Classifiers are retrained per split (they
// must only see the split's domain half); the corpus, index and engine are
// shared, which is what makes multi-split evaluation affordable.
func NewEnvs(cfg Config, n int) ([]*Env, error) {
	if n <= 0 {
		n = 1
	}
	g, err := synth.Generate(synth.Config{
		Domain:         cfg.Domain,
		NumEntities:    cfg.NumEntities,
		PagesPerEntity: cfg.PagesPerEntity,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	cfg.Core.Tokenizer = g.Tokenizer
	sopts := cfg.Core.SearchOptions()
	engine := search.NewEngineOpts(search.BuildIndexOpts(g.Corpus.Pages, sopts), sopts)

	// Splits are independent (each trains its own classifiers over its
	// own domain half) and each split's state is fully determined by its
	// seed, so building them concurrently is value-neutral; classifier
	// training inside one split additionally parallelizes over aspects.
	envs := make([]*Env, n)
	errs := make([]error, n)
	trainWorkers := cfg.Core.LearnWorkers
	if n > 1 && trainWorkers == 0 {
		// Oversubscription rule: split-level parallelism already fills
		// the CPU, so per-split classifier training runs serial unless
		// an explicit worker count was requested. Value-neutral.
		trainWorkers = -1
	}
	par.For(n, 0, func(i int) {
		envs[i], errs[i] = newEnvFrom(cfg, g, engine, cfg.Seed+uint64(i)*7919, trainWorkers)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("eval: split %d: %w", i, err)
		}
	}
	return envs, nil
}

// newEnvFrom wires an Env over shared corpus/engine with one split.
// trainWorkers bounds this split's classifier training only (the caller
// serializes it when building splits in parallel).
func newEnvFrom(cfg Config, g *synth.Generated, engine *search.Engine, splitSeed uint64, trainWorkers int) (*Env, error) {
	if cfg.NumQueries <= 0 {
		cfg.NumQueries = 3
	}
	env := &Env{
		Cfg:    cfg,
		G:      g,
		Engine: engine,
		Rec:    types.Chain{g.KB, types.NewRegexRecognizer()},
		dms:    make(map[dmKey]*core.DomainModel),
		hrs:    make(map[corpus.Aspect]*baselines.HRModel),
	}
	n := g.Corpus.NumEntities()
	perm := rand.New(rand.NewPCG(splitSeed, splitSeed^0xdeadbeef)).Perm(n)
	ids := make([]corpus.EntityID, n)
	for i, pi := range perm {
		ids[i] = g.Corpus.Entities[pi].ID
	}
	half := n / 2
	env.DomainIDs = ids[:half]
	rest := ids[half:]
	nv := cfg.NumValidation
	if nv > len(rest) {
		nv = len(rest)
	}
	env.ValIDs = rest[:nv]
	rest = rest[nv:]
	nt := cfg.NumTest
	if nt > len(rest) {
		nt = len(rest)
	}
	env.TestIDs = rest[:nt]
	if len(env.TestIDs) == 0 {
		return nil, fmt.Errorf("eval: no test entities (n=%d)", n)
	}
	var trainPages []*corpus.Page
	for _, id := range env.DomainIDs {
		trainPages = append(trainPages, g.Corpus.PagesOf(id)...)
	}
	env.Cls = classify.TrainSetWorkers(g.Aspects, trainPages, trainWorkers)
	for _, a := range g.Aspects {
		if _, ok := env.Cls.ByAspect[a]; !ok {
			return nil, fmt.Errorf("eval: no classifier trained for aspect %s", a)
		}
	}
	return env, nil
}

// SplitStats aggregates one method's metric across splits.
type SplitStats struct {
	Method Method
	// Mean and Std are over the per-split mean normalized metrics at
	// the final iteration.
	Mean, Std PRF
	Splits    int
}

// RunMethodOverSplits evaluates a method on every split's test entities
// and returns the across-split mean and standard deviation of the final-
// iteration normalized metrics.
func RunMethodOverSplits(envs []*Env, m Method, nQueries, domainSample int) (SplitStats, error) {
	if len(envs) == 0 {
		return SplitStats{}, fmt.Errorf("eval: no splits")
	}
	finals := make([]PRF, 0, len(envs))
	for _, env := range envs {
		r, err := env.RunMethodAllAspects(m, env.TestIDs, nQueries, domainSample)
		if err != nil {
			return SplitStats{}, err
		}
		finals = append(finals, r.PerIteration[len(r.PerIteration)-1])
	}
	out := SplitStats{Method: m, Splits: len(finals)}
	for _, f := range finals {
		out.Mean.add(f)
	}
	out.Mean.scale(float64(len(finals)))
	var vp, vr, vf float64
	for _, f := range finals {
		vp += (f.P - out.Mean.P) * (f.P - out.Mean.P)
		vr += (f.R - out.Mean.R) * (f.R - out.Mean.R)
		vf += (f.F - out.Mean.F) * (f.F - out.Mean.F)
	}
	n := float64(len(finals))
	out.Std = PRF{P: math.Sqrt(vp / n), R: math.Sqrt(vr / n), F: math.Sqrt(vf / n)}
	return out, nil
}
