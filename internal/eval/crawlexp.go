package eval

import (
	"sync"

	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/crawler"
)

// CrawlResult compares query-driven harvesting (L2QBAL) with the classic
// link-following focused crawler at an equal page-download budget — the
// extension experiment materializing the paper's §II claim that
// query-driven harvesting, not link traversal, is the right primitive for
// entity aspects (links encode entity locality but say nothing about which
// aspect a page covers).
type CrawlResult struct {
	Domain corpus.Domain
	// L2QF and CrawlerF are mean normalized F-scores over all aspects and
	// test entities, at the default 3 selected queries and the matching
	// crawler budget of (3+1)·topK page downloads.
	L2QF, CrawlerF float64
	// Sig is the paired significance of the difference.
	Sig Significance
	// Entities is the number of contributing (entity, aspect) pairs.
	Entities int
}

// CompareCrawler runs the budget-matched comparison on the test split.
func (e *Env) CompareCrawler() (CrawlResult, error) {
	const nQueries = 3
	budget := (nQueries + 1) * e.Engine.TopK()
	byID := crawler.PageIndex(e.G.Corpus)

	type pair struct {
		l2q, crawl float64
		ok         bool
	}
	out := CrawlResult{Domain: e.Cfg.Domain}
	var allPairs []pair
	for _, aspect := range e.G.Aspects {
		dm, err := e.DomainModel(aspect, -1)
		if err != nil {
			return out, err
		}
		pairs := make([]pair, len(e.TestIDs))
		var wg sync.WaitGroup
		sem := make(chan struct{}, e.parallelism())
		for i, id := range e.TestIDs {
			wg.Add(1)
			go func(i int, id corpus.EntityID) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()

				entity := e.G.Corpus.Entity(id)
				relevant := e.relevantUniverse(entity, aspect)
				if len(relevant) == 0 {
					return
				}
				ideal := e.idealRun(entity, aspect, nQueries)
				y := e.Cls.YFunc(aspect)

				s := e.NewSession(entity, aspect, dm, nil, uint64(id)+1)
				s.Run(core.NewL2QBAL(), nQueries)
				l2q := normalize(measure(s.Pages(), relevant), ideal[nQueries-1])

				seeds := e.Engine.SearchWithSeed(entity.SeedTokens(), nil)
				seedPages := make([]*corpus.Page, 0, len(seeds))
				for _, r := range seeds {
					seedPages = append(seedPages, r.Page)
				}
				cr := crawler.Crawl(byID, seedPages, y, crawler.Config{Budget: budget})
				crawl := normalize(measure(cr.Pages, relevant), ideal[nQueries-1])

				pairs[i] = pair{l2q: l2q.F, crawl: crawl.F, ok: true}
			}(i, id)
		}
		wg.Wait()
		allPairs = append(allPairs, pairs...)
	}

	var fa, fb []float64
	for _, p := range allPairs {
		if !p.ok {
			continue
		}
		fa = append(fa, p.l2q)
		fb = append(fb, p.crawl)
	}
	out.Entities = len(fa)
	if len(fa) == 0 {
		return out, nil
	}
	a := RunResult{Method: MethodL2QBAL, PerEntityF: fa}
	b := RunResult{Method: Method("CRAWL"), PerEntityF: fb}
	sig, err := Compare(a, b)
	if err != nil {
		return out, err
	}
	out.Sig = sig
	sum := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s
	}
	out.L2QF = sum(fa) / float64(len(fa))
	out.CrawlerF = sum(fb) / float64(len(fb))
	return out, nil
}
