package eval

import "testing"

func TestBudgetComparisonSmoke(t *testing.T) {
	env, err := NewEnv(TestConfig("researchers"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := env.BudgetComparison(t.Context(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		t.Logf("%+v", row)
		if row.AdaptiveQueries > row.Budget {
			t.Errorf("aspect %s: adaptive overspent %d > %d", row.Aspect, row.AdaptiveQueries, row.Budget)
		}
		if row.AdaptiveSumRPhi < row.FixedSumRPhi-1e-9 {
			t.Errorf("aspect %s: adaptive ΣRφ %.4f < fixed %.4f", row.Aspect, row.AdaptiveSumRPhi, row.FixedSumRPhi)
		}
	}
}
