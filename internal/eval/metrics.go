package eval

import (
	"l2q/internal/corpus"
)

// PR is a precision/recall measurement.
type PR struct {
	Precision float64
	Recall    float64
}

// F1 returns the harmonic mean of precision and recall.
func (m PR) F1() float64 {
	if m.Precision+m.Recall == 0 {
		return 0
	}
	return 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
}

// PRF is a normalized precision/recall/F triple (method ÷ ideal).
type PRF struct {
	P, R, F float64
}

// add accumulates another sample.
func (a *PRF) add(b PRF) { a.P += b.P; a.R += b.R; a.F += b.F }

// scale divides by a count.
func (a *PRF) scale(n float64) {
	if n == 0 {
		return
	}
	a.P /= n
	a.R /= n
	a.F /= n
}

// relevantUniverse returns the entity's pages relevant to the aspect under
// the evaluation truth: classifier output (the paper takes classifier
// output as ground truth, §VI-A "Entity aspects").
func (e *Env) relevantUniverse(entity *corpus.Entity, aspect corpus.Aspect) map[corpus.PageID]struct{} {
	out := make(map[corpus.PageID]struct{})
	for _, p := range e.G.Corpus.PagesOf(entity.ID) {
		if e.Cls.Relevant(aspect, p) {
			out[p.ID] = struct{}{}
		}
	}
	return out
}

// measure computes the actual precision and recall of a harvested page set
// for one (entity, aspect) pair. A retrieved page counts as relevant iff it
// belongs to the target entity and is aspect-relevant; pages of other
// entities are harvesting mistakes and hurt precision.
func measure(pages []*corpus.Page, relevant map[corpus.PageID]struct{}) PR {
	if len(relevant) == 0 {
		return PR{}
	}
	hit := 0
	for _, p := range pages {
		if _, ok := relevant[p.ID]; ok {
			hit++
		}
	}
	pr := PR{Recall: float64(hit) / float64(len(relevant))}
	if len(pages) > 0 {
		pr.Precision = float64(hit) / float64(len(pages))
	}
	return pr
}

// normalize divides method metrics by the ideal's (§VI-A: "we normalize the
// results against an ideal solution ... the same normalization factor is
// applied to all methods"). A zero ideal component yields zero.
func normalize(method, ideal PR) PRF {
	var out PRF
	if ideal.Precision > 0 {
		out.P = method.Precision / ideal.Precision
	}
	if ideal.Recall > 0 {
		out.R = method.Recall / ideal.Recall
	}
	if f := ideal.F1(); f > 0 {
		out.F = method.F1() / f
	}
	return out
}
