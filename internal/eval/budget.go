package eval

// The budget-allocation experiment. The paper treats queries as the cost
// unit (§I); Endrullis et al. (PAPERS.md) evaluate query generators on
// recall per query spent. This experiment quantifies what the adaptive
// cross-entity budget pool (pipeline.BudgetPolicy) buys over the paper's
// fixed per-entity allocation: harvest the test entities twice at the SAME
// global query budget — once with every entity firing exactly nQueries
// (fixed-equal, the paper's protocol), once with the pooled adaptive
// allocation (saturated entities donate to high-gain ones) — and compare
// the summed collective recall ΣR_E(Φ) plus the actually-gathered
// relevant pages.

import (
	"context"

	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/pipeline"
)

// BudgetRow is one aspect's fixed-vs-adaptive comparison.
type BudgetRow struct {
	Aspect   string `json:"aspect"`
	Entities int    `json:"entities"`
	// Budget is the shared global query budget of both modes.
	Budget int `json:"budget"`
	// FixedQueries/AdaptiveQueries are the queries actually fired (the
	// adaptive mode may leave budget unspent once every entity is
	// saturated or out of candidates).
	FixedQueries    int `json:"fixedQueries"`
	AdaptiveQueries int `json:"adaptiveQueries"`
	// Summed collective recall ΣR_E(Φ) (the model's own objective).
	FixedSumRPhi    float64 `json:"fixedSumRPhi"`
	AdaptiveSumRPhi float64 `json:"adaptiveSumRPhi"`
	// Relevant pages gathered (classifier-relevant, summed over
	// entities) — the observable counterpart.
	FixedRelPages    int `json:"fixedRelPages"`
	AdaptiveRelPages int `json:"adaptiveRelPages"`
}

// BudgetResult is the whole experiment for one domain.
type BudgetResult struct {
	Domain   string      `json:"domain"`
	NQueries int         `json:"nQueries"`
	Rows     []BudgetRow `json:"rows"`
}

// budgetHarvest runs one allocation mode over the test entities of one
// aspect and tallies the outcome. ctx bounds the scheduled harvests:
// cancellation aborts the batch and surfaces as the per-job error.
func (e *Env) budgetHarvest(ctx context.Context, aspect corpus.Aspect, dm *core.DomainModel,
	nQueries int, policy pipeline.BudgetPolicy) (queries, relPages int, sumRPhi float64, err error) {

	y := e.Cls.YFunc(aspect)
	jobs := make([]pipeline.Job, 0, len(e.TestIDs))
	sessions := make([]*core.Session, 0, len(e.TestIDs))
	for _, id := range e.TestIDs {
		entity := e.G.Corpus.Entity(id)
		s := e.NewSession(entity, aspect, dm, nil, uint64(id)+1)
		jobs = append(jobs, pipeline.Job{Session: s, Selector: core.NewL2QBAL(), NQueries: nQueries})
		sessions = append(sessions, s)
	}
	sched := pipeline.New(pipeline.Config{SelectWorkers: e.parallelism()})
	defer sched.Close()
	b, serr := sched.Submit(ctx, jobs, pipeline.BatchOptions{Budget: policy})
	if serr != nil {
		return 0, 0, 0, serr
	}
	for _, r := range b.Await(ctx) {
		if r.Err != nil {
			return 0, 0, 0, r.Err
		}
		queries += len(r.Fired)
	}
	for _, s := range sessions {
		sumRPhi += s.RPhi()
		for _, p := range s.Pages() {
			if y(p) {
				relPages++
			}
		}
	}
	return queries, relPages, sumRPhi, nil
}

// BudgetComparison runs the fixed-vs-adaptive comparison at a per-entity
// budget of nQueries (≤0: the configured default) across every aspect.
// ctx cancels the underlying harvests between and within aspects.
func (e *Env) BudgetComparison(ctx context.Context, nQueries int) (BudgetResult, error) {
	if nQueries <= 0 {
		nQueries = e.Cfg.NumQueries
	}
	res := BudgetResult{Domain: string(e.Cfg.Domain), NQueries: nQueries}
	for _, aspect := range e.G.Aspects {
		dm, err := e.DomainModel(aspect, -1)
		if err != nil {
			return res, err
		}
		row := BudgetRow{
			Aspect:   string(aspect),
			Entities: len(e.TestIDs),
			Budget:   nQueries * len(e.TestIDs),
		}
		if row.FixedQueries, row.FixedRelPages, row.FixedSumRPhi, err = e.budgetHarvest(
			ctx, aspect, dm, nQueries, pipeline.BudgetPolicy{Mode: pipeline.BudgetFixed}); err != nil {
			return res, err
		}
		if row.AdaptiveQueries, row.AdaptiveRelPages, row.AdaptiveSumRPhi, err = e.budgetHarvest(
			ctx, aspect, dm, nQueries, pipeline.BudgetPolicy{Mode: pipeline.BudgetAdaptive}); err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
