package eval

import (
	"math"
	"testing"

	"l2q/internal/synth"
)

// tinyEnv is a fast environment for experiment-driver integration tests.
func tinyEnv(t *testing.T) *Env {
	t.Helper()
	cfg := TestConfig(synth.DomainResearchers)
	cfg.NumEntities = 30
	cfg.PagesPerEntity = 18
	cfg.DomainSample = 10
	cfg.NumTest = 3
	cfg.NumValidation = 2
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestFig10WellFormed(t *testing.T) {
	env := tinyEnv(t)
	res, err := env.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodRND, MethodP, MethodPQ, MethodPT, MethodL2QP} {
		v, ok := res.Precision[m]
		if !ok || math.IsNaN(v) || v < 0 {
			t.Errorf("precision[%s] = %v (ok=%v)", m, v, ok)
		}
	}
	for _, m := range []Method{MethodRND, MethodR, MethodRQ, MethodRT, MethodL2QR} {
		v, ok := res.Recall[m]
		if !ok || math.IsNaN(v) || v < 0 {
			t.Errorf("recall[%s] = %v (ok=%v)", m, v, ok)
		}
	}
}

func TestFig11WellFormed(t *testing.T) {
	env := tinyEnv(t)
	res, err := env.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PrecL2QP) != len(Fig11Fractions) || len(res.RecL2QR) != len(Fig11Fractions) {
		t.Fatalf("series lengths: %d, %d", len(res.PrecL2QP), len(res.RecL2QR))
	}
	// Using the full domain sample must beat using none — the core
	// message of Fig. 11.
	if res.RecL2QR[len(res.RecL2QR)-1] <= res.RecL2QR[0] {
		t.Errorf("domain knowledge did not improve recall: %v", res.RecL2QR)
	}
}

func TestFig12And13WellFormed(t *testing.T) {
	env := tinyEnv(t)
	res, err := env.Compare([]Method{MethodL2QBAL, MethodMQ}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.ByQueries) != 3 {
			t.Fatalf("%s has %d points", s.Method, len(s.ByQueries))
		}
		for _, p := range s.ByQueries {
			if math.IsNaN(p.F) || p.F < 0 {
				t.Fatalf("%s has bad F %v", s.Method, p.F)
			}
		}
	}
}

// TestShapeDomainAwarenessHelps is the central qualitative claim of the
// paper at small scale: the full approach must clearly beat the random
// reference point on its own metric.
func TestShapeDomainAwarenessHelps(t *testing.T) {
	env := tinyEnv(t)
	l2qp, err := env.RunMethodAllAspects(MethodL2QP, env.TestIDs, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := env.RunMethodAllAspects(MethodRND, env.TestIDs, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	if l2qp.PerIteration[2].P <= rnd.PerIteration[2].P {
		t.Errorf("L2QP precision %.3f not above RND %.3f",
			l2qp.PerIteration[2].P, rnd.PerIteration[2].P)
	}
}

func TestRunMethodNoDomainSample(t *testing.T) {
	// domainSample = 0 is the Fig. 11 zero point: the domain-aware
	// method must still run (without a model).
	env := tinyEnv(t)
	res, err := env.RunMethod(MethodL2QR, env.G.Aspects[0], env.TestIDs, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Entities == 0 {
		t.Fatal("no entities evaluated")
	}
}

func TestHRModelCaching(t *testing.T) {
	env := tinyEnv(t)
	a := env.G.Aspects[0]
	m1, err := env.HRModel(a)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := env.HRModel(a)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("HR model not cached")
	}
}

func TestSelectorForHRWithoutModel(t *testing.T) {
	env := tinyEnv(t)
	if _, err := env.selectorFor(MethodHR, env.G.Aspects[0], nil); err == nil {
		t.Fatal("HR without model accepted")
	}
}

func TestPRFArithmetic(t *testing.T) {
	a := PRF{P: 1, R: 2, F: 3}
	a.add(PRF{P: 1, R: 2, F: 3})
	a.scale(2)
	if a.P != 1 || a.R != 2 || a.F != 3 {
		t.Fatalf("PRF arithmetic wrong: %+v", a)
	}
	z := PRF{P: 5}
	z.scale(0) // must not divide by zero
	if z.P != 5 {
		t.Fatal("scale(0) must be a no-op")
	}
}

func TestHashStringStable(t *testing.T) {
	if hashString("L2QP") != hashString("L2QP") {
		t.Fatal("hash not deterministic")
	}
	if hashString("L2QP") == hashString("L2QR") {
		t.Fatal("hash collision on method names")
	}
}

func TestFig9CRFExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("trains one CRF per aspect")
	}
	env := tinyEnv(t)
	rows := env.Fig9CRF()
	if len(rows) != len(env.G.Aspects) {
		t.Fatalf("%d rows, want %d", len(rows), len(env.G.Aspects))
	}
	for _, r := range rows {
		if r.AccuracyNB < 0.8 {
			t.Errorf("%s: NB accuracy %.3f implausible", r.Aspect, r.AccuracyNB)
		}
		if r.AccuracyCRF < 0.8 {
			t.Errorf("%s: CRF accuracy %.3f implausible", r.Aspect, r.AccuracyCRF)
		}
	}
}
