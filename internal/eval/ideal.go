package eval

import (
	"l2q/internal/corpus"
)

// idealRun computes the per-iteration upper bound the paper normalizes
// against (§VI-A "Evaluation methodology"): a solution that, at every
// iteration, retrieves the best possible top-k result — unseen relevant
// pages of the target entity — on top of the seed query's actual results
// (which every method shares).
//
// The paper's ideal feeds each candidate to the search engine and picks the
// one maximizing actual coverage × precision; ours is the limit of that
// process (an oracle query that retrieves exactly k unseen relevant pages),
// so it bounds the paper's ideal from above and remains method-agnostic:
// the same factor divides every method, preserving order (a better method
// is still better after normalization).
func (e *Env) idealRun(entity *corpus.Entity, aspect corpus.Aspect, nQueries int) []PR {
	relevant := e.relevantUniverse(entity, aspect)
	topK := e.Engine.TopK()

	// Seed retrieval, identical to what every session's Bootstrap does.
	seed := e.Cfg.Core.QueryTokens(toQuery(entity.SeedQuery))
	res := e.Engine.Search(seed)
	seen := make(map[corpus.PageID]struct{}, len(res))
	total, hits := 0, 0
	for _, r := range res {
		if _, dup := seen[r.Page.ID]; dup {
			continue
		}
		seen[r.Page.ID] = struct{}{}
		total++
		if _, ok := relevant[r.Page.ID]; ok {
			hits++
		}
	}
	unseenRel := len(relevant) - hits

	out := make([]PR, 0, nQueries)
	for i := 0; i < nQueries; i++ {
		take := topK
		if take > unseenRel {
			take = unseenRel
		}
		hits += take
		total += take
		unseenRel -= take
		pr := PR{}
		if len(relevant) > 0 {
			pr.Recall = float64(hits) / float64(len(relevant))
		}
		if total > 0 {
			pr.Precision = float64(hits) / float64(total)
		}
		out = append(out, pr)
	}
	return out
}
