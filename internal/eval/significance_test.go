package eval

import (
	"math"
	"strings"
	"testing"

	"l2q/internal/synth"
)

func TestCompareRequiresAlignedLists(t *testing.T) {
	a := RunResult{Method: MethodL2QBAL, PerEntityF: []float64{0.5, 0.6}}
	b := RunResult{Method: MethodHR, PerEntityF: []float64{0.4}}
	if _, err := Compare(a, b); err == nil {
		t.Error("misaligned lists accepted")
	}
}

func TestCompareDropsNaNPairwise(t *testing.T) {
	nan := math.NaN()
	a := RunResult{Method: MethodL2QBAL, PerEntityF: []float64{0.9, nan, 0.8, 0.7}}
	b := RunResult{Method: MethodHR, PerEntityF: []float64{0.5, 0.5, nan, 0.6}}
	s, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s.Pairs != 2 {
		t.Fatalf("pairs = %d, want 2", s.Pairs)
	}
	if s.Sign.Wins != 2 || s.Sign.Losses != 0 {
		t.Errorf("sign counts %+v", s.Sign)
	}
	if s.MeanDiff <= 0 {
		t.Errorf("mean diff = %v", s.MeanDiff)
	}
	if !strings.Contains(s.String(), "L2QBAL vs HR") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestCompareAllNaN(t *testing.T) {
	nan := math.NaN()
	a := RunResult{Method: MethodP, PerEntityF: []float64{nan}}
	b := RunResult{Method: MethodR, PerEntityF: []float64{nan}}
	if _, err := Compare(a, b); err == nil {
		t.Error("no common entities accepted")
	}
}

// TestSignificanceEndToEnd runs two real methods on a small environment
// and checks the comparison is well-formed (the better method should win
// the sign test direction on this corpus).
func TestSignificanceEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full evaluations")
	}
	cfg := TestConfig(synth.DomainResearchers)
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	aspect := synth.AspResearch
	ids := env.TestIDs
	bal, err := env.RunMethod(MethodL2QBAL, aspect, ids, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := env.RunMethod(MethodRND, aspect, ids, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Compare(bal, rnd)
	if err != nil {
		t.Fatal(err)
	}
	if s.Pairs == 0 {
		t.Fatal("no pairs")
	}
	if s.MeanDiff <= 0 {
		t.Errorf("L2QBAL did not beat RND: %s", s)
	}
	if s.Sign.Wins <= s.Sign.Losses {
		t.Errorf("sign direction wrong: %s", s)
	}
	t.Logf("%s", s)
}
