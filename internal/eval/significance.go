package eval

import (
	"fmt"
	"math"

	"l2q/internal/stats"
)

// Significance reports a paired comparison between two methods evaluated
// over the same entity list, backing the paper's "significantly
// outperforms" claims with an exact sign test and a paired bootstrap.
type Significance struct {
	A, B Method
	// Pairs is the number of entities evaluable under both methods.
	Pairs int
	// MeanDiff is mean F(A) − mean F(B) over the pairs.
	MeanDiff float64
	// Sign is the two-sided exact sign test.
	Sign stats.SignTestResult
	// Bootstrap is the two-sided paired bootstrap of the mean difference.
	Bootstrap stats.PairedBootstrapResult
}

// Compare runs the paired significance tests on two RunResults. Both must
// come from RunMethod calls over the same entity list (their PerEntityF
// vectors are index-aligned); entities skipped by either method are
// dropped pairwise.
func Compare(a, b RunResult) (Significance, error) {
	if len(a.PerEntityF) != len(b.PerEntityF) {
		return Significance{}, fmt.Errorf(
			"eval: cannot pair %s (%d entities) with %s (%d): different entity lists",
			a.Method, len(a.PerEntityF), b.Method, len(b.PerEntityF))
	}
	var fa, fb []float64
	for i := range a.PerEntityF {
		if math.IsNaN(a.PerEntityF[i]) || math.IsNaN(b.PerEntityF[i]) {
			continue
		}
		fa = append(fa, a.PerEntityF[i])
		fb = append(fb, b.PerEntityF[i])
	}
	s := Significance{A: a.Method, B: b.Method, Pairs: len(fa)}
	if len(fa) == 0 {
		return s, fmt.Errorf("eval: no common evaluable entities for %s vs %s", a.Method, b.Method)
	}
	s.MeanDiff = stats.Mean(fa) - stats.Mean(fb)
	s.Sign = stats.SignTest(fa, fb)
	s.Bootstrap = stats.PairedBootstrap(fa, fb, 2000, 2016)
	return s, nil
}

// String renders the comparison in one line, e.g.
// "L2QBAL vs HR: ΔF=+0.112 over 36 pairs; sign test p=0.0012 (28W/6L/2T); bootstrap p=0.0010".
func (s Significance) String() string {
	return fmt.Sprintf("%s vs %s: ΔF=%+.3f over %d pairs; sign test p=%.4f (%dW/%dL/%dT); bootstrap p=%.4f",
		s.A, s.B, s.MeanDiff, s.Pairs, s.Sign.P, s.Sign.Wins, s.Sign.Losses, s.Sign.Ties, s.Bootstrap.P)
}
