package eval

import (
	"fmt"
	"math"
	"sync"

	"l2q/internal/baselines"
	"l2q/internal/core"
	"l2q/internal/corpus"
)

// Method identifies a query-selection method under evaluation.
type Method string

// The methods of §VI-B (ablations) and §VI-C (baselines).
const (
	MethodRND    Method = "RND"
	MethodP      Method = "P"
	MethodR      Method = "R"
	MethodPQ     Method = "P+q"
	MethodRQ     Method = "R+q"
	MethodPT     Method = "P+t"
	MethodRT     Method = "R+t"
	MethodL2QP   Method = "L2QP"
	MethodL2QR   Method = "L2QR"
	MethodL2QBAL Method = "L2QBAL"
	MethodLM     Method = "LM"
	MethodAQ     Method = "AQ"
	MethodHR     Method = "HR"
	MethodMQ     Method = "MQ"
)

// needsDomainModel reports whether the method consumes the L2Q domain model.
func (m Method) needsDomainModel() bool {
	switch m {
	case MethodPQ, MethodRQ, MethodPT, MethodRT, MethodL2QP, MethodL2QR, MethodL2QBAL, MethodRND:
		return true
	}
	return false
}

// RunResult aggregates one method's evaluation for one aspect.
type RunResult struct {
	Method Method
	// PerIteration holds mean normalized P/R/F after 1..n selected
	// queries (index 0 = after the first non-seed query).
	PerIteration []PRF
	// SelectionSecPerQuery is the mean wall-clock selection cost.
	SelectionSecPerQuery float64
	// Entities is how many test entities contributed.
	Entities int
	// PerEntityF holds the final-iteration normalized F-score of every
	// evaluated entity, index-aligned with the entityIDs passed to
	// RunMethod (skipped entities hold NaN). Two RunResults over the same
	// entity list are therefore paired samples for significance testing.
	PerEntityF []float64
}

// toQuery converts a seed string to a core.Query.
func toQuery(s string) core.Query { return core.Query(s) }

// selectorFor builds the Selector for a method. dm and hr may be nil when
// the method does not need them.
func (e *Env) selectorFor(m Method, aspect corpus.Aspect,
	hr *baselines.HRModel) (core.Selector, error) {
	switch m {
	case MethodRND:
		return core.NewRND(), nil
	case MethodP:
		return core.NewP(), nil
	case MethodR:
		return core.NewR(), nil
	case MethodPQ:
		return core.NewPQ(), nil
	case MethodRQ:
		return core.NewRQ(), nil
	case MethodPT:
		return core.NewPT(), nil
	case MethodRT:
		return core.NewRT(), nil
	case MethodL2QP:
		return core.NewL2QP(), nil
	case MethodL2QR:
		return core.NewL2QR(), nil
	case MethodL2QBAL:
		return core.NewL2QBAL(), nil
	case MethodLM:
		return baselines.NewLM(), nil
	case MethodAQ:
		return baselines.NewAQ(), nil
	case MethodHR:
		if hr == nil {
			return nil, fmt.Errorf("eval: HR needs a trained model")
		}
		return baselines.NewHR(hr), nil
	case MethodMQ:
		return baselines.NewMQFor(e.Cfg.Domain, aspect), nil
	default:
		return nil, fmt.Errorf("eval: unknown method %q", m)
	}
}

// RunMethod evaluates one method on one aspect over the given entities.
// domainSample controls the domain model size (≤0 default, and for
// methods that need a domain model a sample of 0 entities means "no domain
// model at all" — the Fig. 11 zero point).
func (e *Env) RunMethod(m Method, aspect corpus.Aspect, entityIDs []corpus.EntityID,
	nQueries, domainSample int) (RunResult, error) {

	if nQueries <= 0 {
		nQueries = e.Cfg.NumQueries
	}
	var dm *core.DomainModel
	var hr *baselines.HRModel
	var err error
	// domainSample semantics: <0 default sample, 0 no domain model at all
	// (the Fig. 11 zero point), >0 explicit sample size.
	if m.needsDomainModel() && domainSample != 0 {
		dm, err = e.DomainModel(aspect, domainSample)
		if err != nil {
			return RunResult{}, err
		}
	}
	if m == MethodHR {
		hr, err = e.HRModel(aspect)
		if err != nil {
			return RunResult{}, err
		}
	}
	sel, err := e.selectorFor(m, aspect, hr)
	if err != nil {
		return RunResult{}, err
	}

	type perEntity struct {
		prf     []PRF
		selSec  float64
		queries int
		ok      bool
	}
	results := make([]perEntity, len(entityIDs))

	var wg sync.WaitGroup
	sem := make(chan struct{}, e.parallelism())
	for i, id := range entityIDs {
		wg.Add(1)
		go func(i int, id corpus.EntityID) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			entity := e.G.Corpus.Entity(id)
			relevant := e.relevantUniverse(entity, aspect)
			if len(relevant) == 0 {
				return // classifier found nothing for this pair; skip
			}
			ideal := e.idealRun(entity, aspect, nQueries)
			rngSeed := uint64(id)*1099511628211 ^ hashString(string(m))
			s := e.NewSession(entity, aspect, dm, nil, rngSeed)
			s.Bootstrap()

			// Cumulative quality after each selected query; if the
			// selector exhausts its candidates early (MQ after its
			// five), the page set simply stops growing while the
			// ideal keeps improving — exactly the penalty the paper's
			// protocol implies.
			prf := make([]PRF, nQueries)
			fired := 0
			for it := 0; it < nQueries; it++ {
				if _, ok := s.Step(sel); ok {
					fired++
				}
				prf[it] = normalize(measure(s.Pages(), relevant), ideal[it])
			}
			res := perEntity{prf: prf, ok: true, queries: fired}
			if fired > 0 {
				res.selSec = s.SelectionTime().Seconds() / float64(fired)
			}
			results[i] = res
		}(i, id)
	}
	wg.Wait()

	out := RunResult{
		Method:       m,
		PerIteration: make([]PRF, nQueries),
		PerEntityF:   make([]float64, len(results)),
	}
	var selSec float64
	for i, r := range results {
		if !r.ok {
			out.PerEntityF[i] = math.NaN()
			continue
		}
		out.Entities++
		selSec += r.selSec
		for it := range r.prf {
			out.PerIteration[it].add(r.prf[it])
		}
		out.PerEntityF[i] = r.prf[len(r.prf)-1].F
	}
	if out.Entities == 0 {
		return out, fmt.Errorf("eval: no evaluable entities for %s/%s", m, aspect)
	}
	n := float64(out.Entities)
	for it := range out.PerIteration {
		out.PerIteration[it].scale(n)
	}
	out.SelectionSecPerQuery = selSec / n
	return out, nil
}

// RunMethodAllAspects averages RunMethod across every target aspect.
func (e *Env) RunMethodAllAspects(m Method, entityIDs []corpus.EntityID,
	nQueries, domainSample int) (RunResult, error) {

	if nQueries <= 0 {
		nQueries = e.Cfg.NumQueries
	}
	// Warm the per-aspect domain-model cache concurrently before the
	// serial aspect loop pays each one on first use.
	if m.needsDomainModel() && domainSample != 0 {
		if err := e.PretrainDomainModels(domainSample); err != nil {
			return RunResult{Method: m}, err
		}
	}
	agg := RunResult{Method: m, PerIteration: make([]PRF, nQueries)}
	var selSec float64
	for _, aspect := range e.G.Aspects {
		r, err := e.RunMethod(m, aspect, entityIDs, nQueries, domainSample)
		if err != nil {
			return agg, err
		}
		for it := range r.PerIteration {
			agg.PerIteration[it].add(r.PerIteration[it])
		}
		selSec += r.SelectionSecPerQuery
		agg.Entities += r.Entities
		// Concatenate per-(entity, aspect) scores; aspect order is fixed,
		// so two methods' vectors stay pairwise aligned.
		agg.PerEntityF = append(agg.PerEntityF, r.PerEntityF...)
	}
	n := float64(len(e.G.Aspects))
	for it := range agg.PerIteration {
		agg.PerIteration[it].scale(n)
	}
	agg.SelectionSecPerQuery = selSec / n
	return agg, nil
}

// hashString is a small FNV-1a for deterministic per-method RNG seeds.
func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
