// Package eval implements the paper's evaluation methodology (§VI-A) and
// the runners that regenerate every figure of the evaluation section:
//
//   - entity splits: half the entities are domain entities, the rest split
//     into validation and test;
//   - the ideal-solution upper bound and normalization of precision,
//     recall and F-score against it;
//   - per-iteration cumulative evaluation of harvested pages;
//   - experiment drivers for Fig. 9 (classifiers), Fig. 10 (domain/context
//     ablation), Fig. 11 (domain size), Fig. 12 (precision/recall vs.
//     baselines), Fig. 13 (F-score) and Fig. 14 (time cost).
package eval

import (
	"sync"

	"l2q/internal/baselines"
	"l2q/internal/classify"
	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/par"
	"l2q/internal/search"
	"l2q/internal/synth"
	"l2q/internal/types"
)

// Config scales one experimental environment. Defaults follow the paper
// where affordable; every knob exists so unit tests run in milliseconds.
type Config struct {
	Domain         corpus.Domain
	NumEntities    int
	PagesPerEntity int
	Seed           uint64

	// DomainSample caps how many domain-half entities feed the domain
	// reinforcement graph (the full half is used for classifier training
	// and HR statistics admission; the graph is the expensive part).
	DomainSample int
	// NumTest and NumValidation pick target entities from the non-domain
	// half.
	NumTest       int
	NumValidation int
	// NumQueries is the maximum harvesting iterations (paper: 2–5).
	NumQueries int
	// Parallelism bounds concurrent sessions (0 = GOMAXPROCS-ish 8).
	Parallelism int

	Core core.Config
}

// DefaultConfig returns the experiment-scale configuration for a domain:
// paper-scale corpus sizes with a tractable domain-graph sample.
func DefaultConfig(domain corpus.Domain) Config {
	gen := synth.DefaultConfig(domain)
	return Config{
		Domain:         domain,
		NumEntities:    gen.NumEntities,
		PagesPerEntity: gen.PagesPerEntity,
		Seed:           gen.Seed,
		DomainSample:   60,
		NumTest:        36,
		NumValidation:  12,
		NumQueries:     5,
		Core:           core.DefaultConfig(),
	}
}

// TestConfig returns a miniature environment for unit tests.
func TestConfig(domain corpus.Domain) Config {
	return Config{
		Domain:         domain,
		NumEntities:    24,
		PagesPerEntity: 16,
		Seed:           7,
		DomainSample:   8,
		NumTest:        4,
		NumValidation:  2,
		NumQueries:     3,
		Core:           core.DefaultConfig(),
	}
}

// Env is a fully materialized experimental environment: corpus, retrieval
// engine, aspect classifiers, type system, splits, and lazily built domain
// models. Env methods are safe for concurrent use after construction.
type Env struct {
	Cfg    Config
	G      *synth.Generated
	Engine *search.Engine
	Cls    *classify.Set
	Rec    types.Recognizer

	DomainIDs []corpus.EntityID // domain half
	ValIDs    []corpus.EntityID
	TestIDs   []corpus.EntityID

	mu  sync.Mutex
	dms map[dmKey]*core.DomainModel
	hrs map[corpus.Aspect]*baselines.HRModel
}

type dmKey struct {
	aspect corpus.Aspect
	sample int // domain entities used (for the Fig. 11 sweep)
}

// NewEnv generates the corpus, builds the index, trains the classifiers on
// the domain half, and draws the entity splits (§VI-A "Evaluation
// methodology": half the entities are domain entities, the rest split into
// validation and test). For the paper's repeated-split protocol use
// NewEnvs.
func NewEnv(cfg Config) (*Env, error) {
	envs, err := NewEnvs(cfg, 1)
	if err != nil {
		return nil, err
	}
	return envs[0], nil
}

// domainSampleIDs returns the first k domain entities (deterministic).
func (e *Env) domainSampleIDs(k int) []corpus.EntityID {
	if k > len(e.DomainIDs) {
		k = len(e.DomainIDs)
	}
	return e.DomainIDs[:k]
}

// DomainModel returns (building and caching on first use) the domain model
// for an aspect using `sample` domain entities; sample ≤ 0 uses the
// configured default.
func (e *Env) DomainModel(aspect corpus.Aspect, sample int) (*core.DomainModel, error) {
	return e.domainModel(aspect, sample, e.Cfg.Core)
}

// domainModel is DomainModel with an explicit learning config, so the
// parallel pretrainer can serialize the inner counting pass without
// changing what gets cached (worker counts are value-neutral).
func (e *Env) domainModel(aspect corpus.Aspect, sample int, cfg core.Config) (*core.DomainModel, error) {
	if sample <= 0 {
		sample = e.Cfg.DomainSample
	}
	key := dmKey{aspect: aspect, sample: sample}
	e.mu.Lock()
	dm, ok := e.dms[key]
	e.mu.Unlock()
	if ok {
		return dm, nil
	}
	dm, err := core.LearnDomain(cfg, aspect, e.G.Corpus,
		e.domainSampleIDs(sample), e.Cls.YFunc(aspect), e.Rec)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.dms[key] = dm
	e.mu.Unlock()
	return dm, nil
}

// PretrainDomainModels learns (and caches) the domain model of every
// target aspect up front, aspects in parallel under the environment's
// worker bound — the eval-side mirror of the server's warm boot, so an
// all-aspects experiment pays the domain phase concurrently instead of
// serially on each aspect's first session. Value-neutral: each model is
// byte-identical to the one lazy learning would build (the per-model
// counting pass itself is additionally sharded over Core.LearnWorkers).
func (e *Env) PretrainDomainModels(sample int) error {
	aspects := e.G.Aspects
	errs := make([]error, len(aspects))
	inner := e.Cfg.Core
	if e.parallelism() > 1 && len(aspects) > 1 && inner.LearnWorkers == 0 {
		// Same oversubscription rule as the pipeline scheduler: aspect-
		// level parallelism already saturates the CPU, so each model's
		// counting pass runs serial — unless the caller set an explicit
		// worker count, which is honored verbatim. Value-neutral.
		inner.LearnWorkers = -1
	}
	par.For(len(aspects), e.parallelism(), func(i int) {
		_, errs[i] = e.domainModel(aspects[i], sample, inner)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// HRModel returns (building and caching on first use) the harvest-rate
// baseline's domain statistics for an aspect.
func (e *Env) HRModel(aspect corpus.Aspect) (*baselines.HRModel, error) {
	e.mu.Lock()
	m, ok := e.hrs[aspect]
	e.mu.Unlock()
	if ok {
		return m, nil
	}
	m, err := baselines.TrainHR(e.Cfg.Core, e.G.Corpus,
		e.domainSampleIDs(e.Cfg.DomainSample), e.Cls.YFunc(aspect), e.Rec)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.hrs[aspect] = m
	e.mu.Unlock()
	return m, nil
}

// NewSession builds a harvesting session for one (entity, aspect) pair
// with classifier-materialized Y, reusing the environment's engine.
func (e *Env) NewSession(entity *corpus.Entity, aspect corpus.Aspect,
	dm *core.DomainModel, fetcher *search.Fetcher, rngSeed uint64) *core.Session {

	s := core.NewSession(e.Cfg.Core, e.Engine, entity, aspect,
		e.Cls.YFunc(aspect), dm, e.Rec, rngSeed)
	s.Fetcher = fetcher
	return s
}

// parallelism resolves the worker count.
func (e *Env) parallelism() int {
	if e.Cfg.Parallelism > 0 {
		return e.Cfg.Parallelism
	}
	return 8
}
