package eval

import (
	"testing"

	"l2q/internal/synth"
)

func TestCompareCrawler(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full evaluations")
	}
	env, err := NewEnv(TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	res, err := env.CompareCrawler()
	if err != nil {
		t.Fatal(err)
	}
	if res.Entities == 0 {
		t.Fatal("no contributing pairs")
	}
	t.Logf("L2QBAL F=%.3f, crawler F=%.3f over %d pairs (%s)",
		res.L2QF, res.CrawlerF, res.Entities, res.Sig)
	if res.L2QF <= res.CrawlerF {
		t.Errorf("query harvesting (%.3f) did not beat link crawling (%.3f)",
			res.L2QF, res.CrawlerF)
	}
	if res.Sig.Pairs != res.Entities {
		t.Errorf("significance pairs %d != entities %d", res.Sig.Pairs, res.Entities)
	}
}
