package eval

import (
	"testing"

	"l2q/internal/synth"
)

func TestNewEnvsShareCorpus(t *testing.T) {
	cfg := TestConfig(synth.DomainResearchers)
	envs, err := NewEnvs(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 3 {
		t.Fatalf("envs = %d", len(envs))
	}
	if envs[0].G != envs[1].G || envs[0].Engine != envs[1].Engine {
		t.Fatal("corpus/engine must be shared across splits")
	}
	// Splits must differ (with overwhelming probability).
	same := true
	for i := range envs[0].TestIDs {
		if i < len(envs[1].TestIDs) && envs[0].TestIDs[i] != envs[1].TestIDs[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two splits drew identical test sets")
	}
	// Classifier sets are per split.
	if envs[0].Cls == envs[1].Cls {
		t.Fatal("classifiers must be retrained per split")
	}
}

func TestNewEnvsDefaultsToOne(t *testing.T) {
	cfg := TestConfig(synth.DomainResearchers)
	envs, err := NewEnvs(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 1 {
		t.Fatalf("envs = %d", len(envs))
	}
}

func TestRunMethodOverSplits(t *testing.T) {
	cfg := TestConfig(synth.DomainResearchers)
	cfg.NumTest = 3
	envs, err := NewEnvs(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := RunMethodOverSplits(envs, MethodMQ, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Splits != 2 {
		t.Fatalf("splits = %d", stats.Splits)
	}
	if stats.Mean.F < 0 || stats.Std.F < 0 {
		t.Fatalf("bad stats: %+v", stats)
	}
	if _, err := RunMethodOverSplits(nil, MethodMQ, 2, -1); err == nil {
		t.Fatal("empty splits accepted")
	}
}
