package eval

import "fmt"

// R0Grid is the cross-validation grid for the seed-recall anchor (§V-A:
// "we treat it as a parameter r0 ∈ (0,1) ... to be chosen by cross
// validation"). With a domain model present, the binding anchor is the
// seed's Y*-recall r0* (the Y-universe is then sized from the domain's
// aspect frequency), so the sweep tunes Config.R0Star.
var R0Grid = []float64{0.05, 0.08, 0.1, 0.15, 0.25}

// CrossValidateR0 picks the seed anchor maximizing the balanced strategy's
// mean normalized F-score on the validation entities, returning the chosen
// value and the per-candidate scores.
func (e *Env) CrossValidateR0() (float64, map[float64]float64, error) {
	if len(e.ValIDs) == 0 {
		return e.Cfg.Core.R0Star, nil, fmt.Errorf("eval: no validation entities")
	}
	const n = 3
	scores := make(map[float64]float64, len(R0Grid))
	bestR0, bestF := e.Cfg.Core.R0Star, -1.0
	saved := e.Cfg.Core.R0Star
	defer func() { e.Cfg.Core.R0Star = saved }()
	for _, r0 := range R0Grid {
		e.Cfg.Core.R0Star = r0
		res, err := e.RunMethodAllAspects(MethodL2QBAL, e.ValIDs, n, -1)
		if err != nil {
			return saved, scores, err
		}
		f := res.PerIteration[n-1].F
		scores[r0] = f
		if f > bestF {
			bestF, bestR0 = f, r0
		}
	}
	return bestR0, scores, nil
}
