package eval

import (
	"time"

	"l2q/internal/classify"
	"l2q/internal/corpus"
	"l2q/internal/crf"
	"l2q/internal/search"
	"l2q/internal/synth"
)

// ---------------------------------------------------------------------------
// Fig. 9 — tested entity aspects and accuracy of aspect classifiers.
// ---------------------------------------------------------------------------

// Fig9Row is one row of Fig. 9: an aspect, its paragraph frequency in the
// corpus, and the classifier's paragraph-level accuracy on held-out (test
// half) pages.
type Fig9Row struct {
	Aspect    corpus.Aspect
	Frequency int
	Accuracy  float64
}

// Fig9 reproduces the classifier table.
func (e *Env) Fig9() []Fig9Row {
	stats := e.G.Corpus.ComputeStats()
	var testPages []*corpus.Page
	for _, id := range e.TestIDs {
		testPages = append(testPages, e.G.Corpus.PagesOf(id)...)
	}
	rows := make([]Fig9Row, 0, len(e.G.Aspects))
	for _, a := range e.G.Aspects {
		rows = append(rows, Fig9Row{
			Aspect:    a,
			Frequency: stats.ParasByAspect[a],
			Accuracy:  e.Cls.ByAspect[a].Accuracy(testPages),
		})
	}
	return rows
}

// Fig9CRFRow extends Fig. 9 with the paper's actual classifier family: the
// held-out accuracy of a linear-chain CRF next to the Naive Bayes default.
type Fig9CRFRow struct {
	Aspect      corpus.Aspect
	AccuracyNB  float64
	AccuracyCRF float64
}

// Fig9CRF trains one CRF per aspect on the domain half (the same split the
// NB classifiers were trained on) and measures both families on the test
// half. CRF training is seconds-to-minutes per aspect depending on corpus
// scale.
func (e *Env) Fig9CRF() []Fig9CRFRow {
	var domainPages, testPages []*corpus.Page
	for _, id := range e.DomainIDs {
		domainPages = append(domainPages, e.G.Corpus.PagesOf(id)...)
	}
	for _, id := range e.TestIDs {
		testPages = append(testPages, e.G.Corpus.PagesOf(id)...)
	}
	crfs := classify.TrainCRFSet(e.G.Aspects, domainPages, crf.DefaultTrainConfig())
	rows := make([]Fig9CRFRow, 0, len(e.G.Aspects))
	for _, a := range e.G.Aspects {
		rows = append(rows, Fig9CRFRow{
			Aspect:      a,
			AccuracyNB:  e.Cls.AccuracyOf(a, testPages),
			AccuracyCRF: crfs.AccuracyOf(a, testPages),
		})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Fig. 10 — validation of domain and context awareness.
// ---------------------------------------------------------------------------

// Fig10Result holds the ablation bars: normalized precision for the
// precision-family strategies and normalized recall for the recall family,
// measured at the default number of queries (3), averaged over all aspects
// and test entities.
type Fig10Result struct {
	Domain    corpus.Domain
	Precision map[Method]float64 // RND, P, P+q, P+t, L2QP
	Recall    map[Method]float64 // RND, R, R+q, R+t, L2QR
}

// Fig10 runs the domain/context ablation.
func (e *Env) Fig10() (Fig10Result, error) {
	out := Fig10Result{
		Domain:    e.Cfg.Domain,
		Precision: make(map[Method]float64),
		Recall:    make(map[Method]float64),
	}
	const n = 3 // paper's default query count
	for _, m := range []Method{MethodRND, MethodP, MethodPQ, MethodPT, MethodL2QP} {
		r, err := e.RunMethodAllAspects(m, e.TestIDs, n, -1)
		if err != nil {
			return out, err
		}
		out.Precision[m] = r.PerIteration[n-1].P
	}
	for _, m := range []Method{MethodRND, MethodR, MethodRQ, MethodRT, MethodL2QR} {
		r, err := e.RunMethodAllAspects(m, e.TestIDs, n, -1)
		if err != nil {
			return out, err
		}
		out.Recall[m] = r.PerIteration[n-1].R
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Fig. 11 — effect of domain size.
// ---------------------------------------------------------------------------

// Fig11Result holds the domain-size sweep: for each fraction of the domain
// entities, the normalized precision of L2QP and recall of L2QR.
type Fig11Result struct {
	Domain    corpus.Domain
	Fractions []float64
	PrecL2QP  []float64
	RecL2QR   []float64
}

// Fig11Fractions are the sweep points of the paper.
var Fig11Fractions = []float64{0, 0.05, 0.10, 0.25, 1.0}

// Fig11 sweeps the number of domain entities used by the domain phase.
func (e *Env) Fig11() (Fig11Result, error) {
	out := Fig11Result{Domain: e.Cfg.Domain, Fractions: Fig11Fractions}
	const n = 3
	for _, frac := range Fig11Fractions {
		sample := int(frac * float64(e.Cfg.DomainSample))
		if frac > 0 && sample < 1 {
			sample = 1
		}
		rp, err := e.RunMethodAllAspects(MethodL2QP, e.TestIDs, n, sample)
		if err != nil {
			return out, err
		}
		rr, err := e.RunMethodAllAspects(MethodL2QR, e.TestIDs, n, sample)
		if err != nil {
			return out, err
		}
		out.PrecL2QP = append(out.PrecL2QP, rp.PerIteration[n-1].P)
		out.RecL2QR = append(out.RecL2QR, rr.PerIteration[n-1].R)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Fig. 12 / Fig. 13 — comparison with baselines over 2–5 queries.
// ---------------------------------------------------------------------------

// Series is one method's normalized metrics across query counts.
type Series struct {
	Method Method
	// ByQueries[k] holds the metrics after k+1 selected queries
	// (so index 1 = the paper's "2 queries" point, etc.).
	ByQueries []PRF
	// SelectionSecPerQuery supports Fig. 14.
	SelectionSecPerQuery float64
	// PerEntityF pairs this series with others for significance testing
	// (see RunResult.PerEntityF).
	PerEntityF []float64
}

// CompareResult holds every method's series for one domain.
type CompareResult struct {
	Domain corpus.Domain
	Series []Series
}

// Fig12Methods are the methods in the precision/recall comparison.
var Fig12Methods = []Method{MethodL2QP, MethodL2QR, MethodLM, MethodAQ, MethodHR, MethodMQ}

// Fig13Methods are the methods in the F-score comparison.
var Fig13Methods = []Method{MethodL2QBAL, MethodLM, MethodAQ, MethodHR, MethodMQ}

// Compare runs a set of methods for up to maxQueries iterations.
func (e *Env) Compare(methods []Method, maxQueries int) (CompareResult, error) {
	out := CompareResult{Domain: e.Cfg.Domain}
	for _, m := range methods {
		r, err := e.RunMethodAllAspects(m, e.TestIDs, maxQueries, -1)
		if err != nil {
			return out, err
		}
		out.Series = append(out.Series, Series{
			Method:               m,
			ByQueries:            r.PerIteration,
			SelectionSecPerQuery: r.SelectionSecPerQuery,
			PerEntityF:           r.PerEntityF,
		})
	}
	return out, nil
}

// SignificanceVsFirst runs the paired significance tests of the first
// series (the L2Q method by convention) against every other series — the
// statistical backing for the paper's "significantly outperforms" claims.
func (r CompareResult) SignificanceVsFirst() ([]Significance, error) {
	if len(r.Series) < 2 {
		return nil, nil
	}
	first := RunResult{Method: r.Series[0].Method, PerEntityF: r.Series[0].PerEntityF}
	out := make([]Significance, 0, len(r.Series)-1)
	for _, s := range r.Series[1:] {
		sig, err := Compare(first, RunResult{Method: s.Method, PerEntityF: s.PerEntityF})
		if err != nil {
			return out, err
		}
		out = append(out, sig)
	}
	return out, nil
}

// Fig12 regenerates the precision/recall-vs-baselines comparison (2–5
// queries).
func (e *Env) Fig12() (CompareResult, error) { return e.Compare(Fig12Methods, 5) }

// Fig13 regenerates the F-score comparison with the balanced strategy.
func (e *Env) Fig13() (CompareResult, error) { return e.Compare(Fig13Methods, 5) }

// ---------------------------------------------------------------------------
// Fig. 14 — time cost per query.
// ---------------------------------------------------------------------------

// Fig14Result reports the per-query selection cost of the three full
// strategies and the (simulated) fetch cost.
type Fig14Result struct {
	Domain       corpus.Domain
	SelectionSec map[Method]float64
	// FetchSecPerQuery is the simulated remote download cost of one
	// query's result list (Fig. 14's "Fetch" column: ~18 s researchers,
	// ~8 s cars).
	FetchSecPerQuery float64
}

// Fig14 measures selection time on the test entities for one aspect (the
// first target aspect; selection cost is aspect-independent) and accounts
// the simulated fetch budget.
func (e *Env) Fig14() (Fig14Result, error) {
	out := Fig14Result{Domain: e.Cfg.Domain, SelectionSec: make(map[Method]float64)}
	aspect := e.G.Aspects[0]
	for _, m := range []Method{MethodL2QP, MethodL2QR, MethodL2QBAL} {
		r, err := e.RunMethod(m, aspect, e.TestIDs, 3, -1)
		if err != nil {
			return out, err
		}
		out.SelectionSec[m] = r.SelectionSecPerQuery
	}
	lat := search.ResearcherFetchLatency
	if e.Cfg.Domain == synth.DomainCars {
		lat = search.CarFetchLatency
	}
	out.FetchSecPerQuery = (time.Duration(e.Engine.TopK()) * lat).Seconds()
	return out, nil
}
