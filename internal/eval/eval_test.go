package eval

import (
	"math"
	"testing"

	"l2q/internal/corpus"
	"l2q/internal/synth"
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv(TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestNewEnvSplits(t *testing.T) {
	env := testEnv(t)
	n := env.G.Corpus.NumEntities()
	if len(env.DomainIDs) != n/2 {
		t.Fatalf("domain half = %d, want %d", len(env.DomainIDs), n/2)
	}
	if len(env.TestIDs) == 0 || len(env.ValIDs) == 0 {
		t.Fatal("empty splits")
	}
	// Splits must be disjoint.
	seen := map[corpus.EntityID]string{}
	for _, id := range env.DomainIDs {
		seen[id] = "domain"
	}
	for _, id := range env.ValIDs {
		if role, dup := seen[id]; dup {
			t.Fatalf("entity %d in both %s and validation", id, role)
		}
		seen[id] = "validation"
	}
	for _, id := range env.TestIDs {
		if role, dup := seen[id]; dup {
			t.Fatalf("entity %d in both %s and test", id, role)
		}
	}
}

func TestMeasureAndNormalize(t *testing.T) {
	env := testEnv(t)
	entity := env.G.Corpus.Entity(env.TestIDs[0])
	aspect := env.G.Aspects[0]
	rel := env.relevantUniverse(entity, aspect)
	if len(rel) == 0 {
		t.Fatal("no relevant pages")
	}
	pages := env.G.Corpus.PagesOf(entity.ID)
	pr := measure(pages, rel)
	wantRecall := 1.0
	if math.Abs(pr.Recall-wantRecall) > 1e-9 {
		t.Fatalf("all pages retrieved but recall = %f", pr.Recall)
	}
	wantPrec := float64(len(rel)) / float64(len(pages))
	if math.Abs(pr.Precision-wantPrec) > 1e-9 {
		t.Fatalf("precision = %f, want %f", pr.Precision, wantPrec)
	}

	n := normalize(PR{Precision: 0.4, Recall: 0.5}, PR{Precision: 0.8, Recall: 1.0})
	if math.Abs(n.P-0.5) > 1e-9 || math.Abs(n.R-0.5) > 1e-9 {
		t.Fatalf("normalize = %+v", n)
	}
	z := normalize(PR{Precision: 0.4}, PR{})
	if z.P != 0 || z.R != 0 || z.F != 0 {
		t.Fatalf("zero ideal should normalize to zero, got %+v", z)
	}
}

func TestF1(t *testing.T) {
	if f := (PR{Precision: 0.5, Recall: 0.5}).F1(); math.Abs(f-0.5) > 1e-9 {
		t.Fatalf("F1 = %f", f)
	}
	if f := (PR{}).F1(); f != 0 {
		t.Fatalf("empty F1 = %f", f)
	}
}

func TestIdealRunMonotone(t *testing.T) {
	env := testEnv(t)
	entity := env.G.Corpus.Entity(env.TestIDs[0])
	ideal := env.idealRun(entity, env.G.Aspects[0], 5)
	if len(ideal) != 5 {
		t.Fatalf("ideal has %d points", len(ideal))
	}
	for i := 1; i < len(ideal); i++ {
		if ideal[i].Recall < ideal[i-1].Recall-1e-12 {
			t.Fatal("ideal recall not monotone")
		}
	}
	for _, pr := range ideal {
		if pr.Precision < 0 || pr.Precision > 1 || pr.Recall < 0 || pr.Recall > 1 {
			t.Fatalf("ideal out of range: %+v", pr)
		}
	}
}

func TestIdealDominatesMethods(t *testing.T) {
	// The ideal is an upper bound: every method's normalized metrics
	// should be ≤ 1 (tiny numerical slack allowed).
	env := testEnv(t)
	for _, m := range []Method{MethodL2QBAL, MethodMQ} {
		r, err := e2aspects(env, m)
		if err != nil {
			t.Fatal(err)
		}
		for it, prf := range r.PerIteration {
			if prf.P > 1+1e-9 || prf.R > 1+1e-9 || prf.F > 1+1e-9 {
				t.Fatalf("%s beats the ideal at iteration %d: %+v", m, it+1, prf)
			}
		}
	}
}

func e2aspects(env *Env, m Method) (RunResult, error) {
	return env.RunMethod(m, env.G.Aspects[0], env.TestIDs, 3, -1)
}

func TestRunMethodAllMethods(t *testing.T) {
	env := testEnv(t)
	methods := []Method{
		MethodRND, MethodP, MethodR, MethodPQ, MethodRQ, MethodPT, MethodRT,
		MethodL2QP, MethodL2QR, MethodL2QBAL, MethodLM, MethodAQ, MethodHR, MethodMQ,
	}
	aspect := env.G.Aspects[3] // RESEARCH-like: most frequent
	for _, m := range methods {
		r, err := env.RunMethod(m, aspect, env.TestIDs, 2, -1)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if r.Entities == 0 {
			t.Fatalf("%s evaluated no entities", m)
		}
		if len(r.PerIteration) != 2 {
			t.Fatalf("%s has %d iterations", m, len(r.PerIteration))
		}
		for _, prf := range r.PerIteration {
			if math.IsNaN(prf.P) || math.IsNaN(prf.R) || math.IsNaN(prf.F) {
				t.Fatalf("%s produced NaN", m)
			}
		}
	}
}

func TestRunMethodUnknown(t *testing.T) {
	env := testEnv(t)
	if _, err := env.RunMethod("NOPE", env.G.Aspects[0], env.TestIDs, 2, -1); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestFig9Rows(t *testing.T) {
	env := testEnv(t)
	rows := env.Fig9()
	if len(rows) != len(env.G.Aspects) {
		t.Fatalf("%d rows, want %d", len(rows), len(env.G.Aspects))
	}
	for _, r := range rows {
		if r.Frequency <= 0 {
			t.Errorf("aspect %s has zero frequency", r.Aspect)
		}
		if r.Accuracy < 0.8 {
			t.Errorf("aspect %s accuracy %.3f below paper's floor", r.Aspect, r.Accuracy)
		}
	}
}

func TestFig14Shape(t *testing.T) {
	env := testEnv(t)
	res, err := env.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodL2QP, MethodL2QR, MethodL2QBAL} {
		if _, ok := res.SelectionSec[m]; !ok {
			t.Fatalf("missing selection time for %s", m)
		}
	}
	if res.FetchSecPerQuery <= res.SelectionSec[MethodL2QBAL] {
		t.Fatalf("fetch (%.2fs) should dominate selection (%.4fs) as in Fig. 14",
			res.FetchSecPerQuery, res.SelectionSec[MethodL2QBAL])
	}
}

func TestDomainModelCaching(t *testing.T) {
	env := testEnv(t)
	a := env.G.Aspects[0]
	dm1, err := env.DomainModel(a, -1)
	if err != nil {
		t.Fatal(err)
	}
	dm2, err := env.DomainModel(a, -1)
	if err != nil {
		t.Fatal(err)
	}
	if dm1 != dm2 {
		t.Fatal("domain model not cached")
	}
	dm3, err := env.DomainModel(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dm3 == dm1 {
		t.Fatal("different sample size must build a different model")
	}
}

func TestCrossValidateR0(t *testing.T) {
	env := testEnv(t)
	r0, scores, err := env.CrossValidateR0()
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(R0Grid) {
		t.Fatalf("scores for %d candidates, want %d", len(scores), len(R0Grid))
	}
	found := false
	for _, c := range R0Grid {
		if c == r0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("chosen r0 %f not on the grid", r0)
	}
}
