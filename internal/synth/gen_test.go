package synth

import (
	"math/rand/v2"
	"strings"
	"testing"

	"l2q/internal/corpus"
)

func TestGenerateResearchersSmall(t *testing.T) {
	g, err := Generate(TestConfig(DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	c := g.Corpus
	if c.NumEntities() != 24 {
		t.Fatalf("entities = %d", c.NumEntities())
	}
	if c.NumPages() != 24*16 {
		t.Fatalf("pages = %d", c.NumPages())
	}
	for _, e := range c.Entities {
		if e.SeedQuery == "" {
			t.Fatalf("entity %d has empty seed", e.ID)
		}
		pages := c.PagesOf(e.ID)
		if len(pages) != 16 {
			t.Fatalf("entity %d has %d pages", e.ID, len(pages))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := TestConfig(DomainResearchers)
	g1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Corpus.NumPages() != g2.Corpus.NumPages() {
		t.Fatal("page counts differ")
	}
	for i := range g1.Corpus.Pages {
		a, b := g1.Corpus.Pages[i], g2.Corpus.Pages[i]
		if a.Title != b.Title || len(a.Paras) != len(b.Paras) {
			t.Fatalf("page %d differs", i)
		}
		for j := range a.Paras {
			if a.Paras[j].Text != b.Paras[j].Text {
				t.Fatalf("page %d para %d differs:\n%s\n%s", i, j, a.Paras[j].Text, b.Paras[j].Text)
			}
		}
	}
}

func TestSeedTokensOnEveryPage(t *testing.T) {
	for _, domain := range []corpus.Domain{DomainResearchers, DomainCars} {
		g, err := Generate(TestConfig(domain))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range g.Corpus.Entities {
			seed := g.Tokenizer.Tokenize(e.SeedQuery)
			for _, p := range g.Corpus.PagesOf(e.ID) {
				if !p.ContainsQuery(seed) {
					t.Fatalf("domain %s entity %q page %d misses seed tokens %v",
						domain, e.Name, p.ID, seed)
				}
			}
		}
	}
}

func TestEveryTargetAspectHasRelevantPages(t *testing.T) {
	for _, domain := range []corpus.Domain{DomainResearchers, DomainCars} {
		g, err := Generate(TestConfig(domain))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range g.Corpus.Entities {
			for _, a := range g.Aspects {
				found := false
				for _, p := range g.Corpus.PagesOf(e.ID) {
					if p.AspectFraction(a) >= 0.3 {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("domain %s entity %q has no page for aspect %s", domain, e.Name, a)
				}
			}
		}
	}
}

func TestAspectFrequencySkew(t *testing.T) {
	g, err := Generate(Config{Domain: DomainResearchers, NumEntities: 40, PagesPerEntity: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	stats := g.Corpus.ComputeStats()
	research := stats.ParasByAspect[AspResearch]
	employment := stats.ParasByAspect[AspEmployment]
	if research <= 3*employment {
		t.Fatalf("expected RESEARCH ≫ EMPLOYMENT, got %d vs %d", research, employment)
	}
}

func TestEntityVariation(t *testing.T) {
	// Two entities should have mostly different topic sets — the premise
	// behind templates (§IV-A).
	rng := rand.New(rand.NewPCG(1, 2))
	same := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		p1 := newResearcherProfile(corpus.EntityID(2*i), rng)
		p2 := newResearcherProfile(corpus.EntityID(2*i+1), rng)
		t1 := map[string]bool{}
		for _, x := range p1.Fields["topic"] {
			t1[x] = true
		}
		for _, x := range p2.Fields["topic"] {
			if t1[x] {
				same++
				break
			}
		}
	}
	if same > trials/2 {
		t.Fatalf("topic overlap too common: %d/%d trials", same, trials)
	}
}

func TestCarPairsCoverPaperScale(t *testing.T) {
	if n := len(carPairs()); n < 143 {
		t.Fatalf("car (make,model) pairs = %d, need ≥ 143", n)
	}
}

func TestKBRecognizesGrammarSlots(t *testing.T) {
	g, err := Generate(TestConfig(DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"hpc", "ijhpca", "turing", "ibm", "phd"} {
		if got := g.KB.TypesOf(w); len(got) == 0 {
			t.Errorf("KB misses %q", w)
		}
	}
	// Phrases must be merged into single tokens by the shared tokenizer.
	toks := g.Tokenizer.Tokenize("his data mining papers at university of illinois")
	joined := strings.Join(toks, "|")
	if !strings.Contains(joined, "data mining") || !strings.Contains(joined, "university of illinois") {
		t.Errorf("phrase merging failed: %v", toks)
	}
}

func TestExpandUnknownSlotPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown slot")
		}
	}()
	rng := rand.New(rand.NewPCG(1, 1))
	prof := newResearcherProfile(0, rng)
	f := newSlotFiller(prof, rng, nil)
	expand("{nosuchslot}", f.fill)
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{Domain: "bogus", NumEntities: 1, PagesPerEntity: 1}); err == nil {
		t.Error("unknown domain accepted")
	}
	if _, err := Generate(Config{Domain: DomainResearchers}); err == nil {
		t.Error("zero sizes accepted")
	}
}

func TestSeedQueriesUnique(t *testing.T) {
	g, err := Generate(Config{Domain: DomainResearchers, NumEntities: 200, PagesPerEntity: 7, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, e := range g.Corpus.Entities {
		if seen[e.SeedQuery] {
			t.Fatalf("duplicate seed query %q", e.SeedQuery)
		}
		seen[e.SeedQuery] = true
	}
}
