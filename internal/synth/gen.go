package synth

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"

	"l2q/internal/corpus"
	"l2q/internal/textproc"
	"l2q/internal/types"
)

// Domain identifiers for the two corpora reproduced from the paper.
const (
	DomainResearchers corpus.Domain = "researchers"
	DomainCars        corpus.Domain = "cars"
)

// Config controls corpus generation. The zero value is invalid; use
// DefaultConfig or fill every field.
type Config struct {
	Domain corpus.Domain
	// NumEntities is the number of entities (paper: 996 researchers,
	// 143 cars).
	NumEntities int
	// PagesPerEntity is the page count per entity (paper: ~50).
	PagesPerEntity int
	// Seed makes generation deterministic.
	Seed uint64
}

// DefaultConfig returns the paper-scale configuration for a domain.
func DefaultConfig(domain corpus.Domain) Config {
	switch domain {
	case DomainCars:
		return Config{Domain: domain, NumEntities: 143, PagesPerEntity: 50, Seed: 2016}
	default:
		return Config{Domain: DomainResearchers, NumEntities: 996, PagesPerEntity: 50, Seed: 2016}
	}
}

// TestConfig returns a small configuration suited to unit tests.
func TestConfig(domain corpus.Domain) Config {
	return Config{Domain: domain, NumEntities: 24, PagesPerEntity: 16, Seed: 7}
}

// Generated bundles a corpus with the linguistic resources derived from the
// same vocabulary: the knowledge-base dictionary (our Freebase/MAS stand-in),
// the phrase lexicon, and a tokenizer wired to that lexicon.
type Generated struct {
	Corpus    *corpus.Corpus
	KB        *types.Dictionary
	Lexicon   *textproc.Lexicon
	Tokenizer *textproc.Tokenizer
	// Aspects are the target aspects for this domain (Fig. 9).
	Aspects []corpus.Aspect
}

// spec wires one domain's generator pieces together.
type spec struct {
	aspects    []corpus.Aspect // target aspects
	weights    map[corpus.Aspect]float64
	grammar    map[corpus.Aspect][]string
	filler     []string
	fillerPool []string
	newProfile func(corpus.EntityID, *rand.Rand) *Profile
	kb         func() *types.Dictionary
	anchorTmpl string
}

func specFor(domain corpus.Domain) (*spec, error) {
	switch domain {
	case DomainResearchers:
		return &spec{
			aspects:    ResearcherAspects,
			weights:    researcherAspectWeights,
			grammar:    researcherGrammar,
			filler:     researcherFillerSentences,
			fillerPool: fillerWords,
			newProfile: newResearcherProfile,
			kb:         researcherKB,
			anchorTmpl: "homepage of {firstname} {lastname} at {institute} {instshort}",
		}, nil
	case DomainCars:
		return &spec{
			aspects:    CarAspects,
			weights:    carAspectWeights,
			grammar:    carGrammar,
			filler:     carFillerSentences,
			fillerPool: carFiller,
			newProfile: newCarProfile,
			kb:         carKB,
			anchorTmpl: "{make} {model} {trim} {bodystyle} research page",
		}, nil
	default:
		return nil, fmt.Errorf("synth: unknown domain %q", domain)
	}
}

// Generate builds a deterministic synthetic corpus per cfg.
func Generate(cfg Config) (*Generated, error) {
	sp, err := specFor(cfg.Domain)
	if err != nil {
		return nil, err
	}
	if cfg.NumEntities <= 0 || cfg.PagesPerEntity <= 0 {
		return nil, fmt.Errorf("synth: NumEntities and PagesPerEntity must be positive, got %d, %d",
			cfg.NumEntities, cfg.PagesPerEntity)
	}

	kb := sp.kb()
	lex := textproc.NewLexicon(kb.Phrases())
	tok := &textproc.Tokenizer{Lexicon: lex}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15))

	c := corpus.New(cfg.Domain)
	nextPage := corpus.PageID(0)

	// Sorted aspect list for deterministic weighted sampling.
	allAspects := make([]corpus.Aspect, 0, len(sp.weights))
	for a := range sp.weights {
		allAspects = append(allAspects, a)
	}
	sort.Slice(allAspects, func(i, j int) bool { return allAspects[i] < allAspects[j] })
	weightsVec := make([]float64, len(allAspects))
	for i, a := range allAspects {
		weightsVec[i] = sp.weights[a]
	}

	global := map[string][]string{"filler": sp.fillerPool}

	for id := corpus.EntityID(0); int(id) < cfg.NumEntities; id++ {
		prof := sp.newProfile(id, rng)
		if err := c.AddEntity(prof.Entity); err != nil {
			return nil, err
		}
		fill := newSlotFiller(prof, rng, global)

		for pi := 0; pi < cfg.PagesPerEntity; pi++ {
			// The first len(aspects) pages cycle through the target
			// aspects so every (entity, aspect) pair has at least one
			// relevant page; the rest follow the skewed distribution.
			var primary corpus.Aspect
			if pi < len(sp.aspects) {
				primary = sp.aspects[pi]
			} else {
				primary = allAspects[weightedIndex(rng, weightsVec)]
			}
			page := genPage(nextPage, prof, primary, sp, fill, tok, rng)
			if err := c.AddPage(page); err != nil {
				return nil, err
			}
			nextPage++
		}
	}

	linkPages(c, rng)

	return &Generated{
		Corpus:    c,
		KB:        kb,
		Lexicon:   lex,
		Tokenizer: tok,
		Aspects:   sp.aspects,
	}, nil
}

// linkPages wires a hyperlink graph over the corpus, giving the link-based
// focused-crawler baseline (internal/crawler) a web to walk. The shape
// mirrors real entity pages: strong intra-entity linking (a homepage ring
// plus random internal references), sparse cross-entity links to peers in
// the domain, and no link signal about *aspects* — which is precisely why
// the paper harvests through queries instead of links.
func linkPages(c *corpus.Corpus, rng *rand.Rand) {
	for _, e := range c.Entities {
		pages := c.PagesOf(e.ID)
		for i, p := range pages {
			seen := map[corpus.PageID]struct{}{p.ID: {}}
			add := func(id corpus.PageID) {
				if _, dup := seen[id]; dup {
					return
				}
				seen[id] = struct{}{}
				p.Links = append(p.Links, id)
			}
			// Ring: every page reaches its entity successor, so the
			// entity's pages are mutually discoverable.
			add(pages[(i+1)%len(pages)].ID)
			// Two random intra-entity references.
			for k := 0; k < 2; k++ {
				add(pages[rng.IntN(len(pages))].ID)
			}
			// One cross-entity link with 30% probability.
			if rng.Float64() < 0.3 && c.NumPages() > len(pages) {
				add(c.Pages[rng.IntN(c.NumPages())].ID)
			}
		}
	}
}

// genPage builds one page: an anchor paragraph carrying the seed tokens, a
// majority of primary-aspect paragraphs, one minor-aspect paragraph, and one
// generic filler paragraph.
func genPage(id corpus.PageID, prof *Profile, primary corpus.Aspect, sp *spec,
	fill *slotFiller, tok *textproc.Tokenizer, rng *rand.Rand) *corpus.Page {

	nBody := 4 + rng.IntN(4)      // 4..7 body paragraphs
	nPrimary := (nBody*3 + 4) / 5 // ~60%, at least 3 of 4
	if nPrimary < 2 {
		nPrimary = 2
	}

	page := &corpus.Page{
		ID:     id,
		Entity: prof.Entity.ID,
		URL:    fmt.Sprintf("http://www.site%03d.example.com/p%d", int(id)%257, id),
		Title:  prof.Entity.Name + " " + strings.ToLower(string(primary)),
	}

	addPara := func(aspect corpus.Aspect, text string) {
		page.Paras = append(page.Paras, corpus.Paragraph{
			Text:   text,
			Tokens: tok.Tokenize(text),
			Aspect: aspect,
		})
	}

	// Anchor paragraph: guarantees the seed query matches every page of
	// its entity (real pages about an entity mention the entity).
	fill.reset()
	addPara("", expand(sp.anchorTmpl, fill.fill))

	for i := 0; i < nPrimary; i++ {
		addPara(primary, genParagraph(sp.grammar[primary], sp.filler, fill, rng))
	}

	// One minor-aspect paragraph (a different aspect), one filler.
	minorPool := make([]corpus.Aspect, 0, len(sp.weights))
	for a := range sp.weights {
		if a != primary {
			minorPool = append(minorPool, a)
		}
	}
	sort.Slice(minorPool, func(i, j int) bool { return minorPool[i] < minorPool[j] })
	for i := nPrimary; i < nBody-1; i++ {
		minor := minorPool[rng.IntN(len(minorPool))]
		addPara(minor, genParagraph(sp.grammar[minor], sp.filler, fill, rng))
	}

	fill.reset()
	addPara("", expand(pick(rng, sp.filler), fill.fill))

	return page
}

// genParagraph produces 2–3 sentences of one aspect, occasionally followed
// by a filler sentence so aspects are not trivially separable.
func genParagraph(templates, filler []string, fill *slotFiller, rng *rand.Rand) string {
	n := 2 + rng.IntN(2)
	sents := make([]string, 0, n+1)
	for i := 0; i < n; i++ {
		fill.reset()
		sents = append(sents, expand(pick(rng, templates), fill.fill))
	}
	if rng.Float64() < 0.25 {
		fill.reset()
		sents = append(sents, expand(pick(rng, filler), fill.fill))
	}
	return strings.Join(sents, ". ") + "."
}

// TargetAspects returns the evaluated aspects of a domain (Fig. 9).
func TargetAspects(domain corpus.Domain) []corpus.Aspect {
	switch domain {
	case DomainCars:
		return CarAspects
	default:
		return ResearcherAspects
	}
}
