package synth

import (
	"strings"
	"testing"

	"l2q/internal/corpus"
)

// TestJunkTokensPresent verifies the page-local junk tokens exist (they
// make unguided selection pay a realistic price; see vocab commentary).
func TestJunkTokensPresent(t *testing.T) {
	for _, d := range []corpus.Domain{DomainResearchers, DomainCars} {
		g, err := Generate(Config{Domain: d, NumEntities: 10, PagesPerEntity: 20, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		junk := 0
		for _, p := range g.Corpus.Pages {
			for _, tok := range p.Tokens() {
				if strings.HasPrefix(tok, "x") && len(tok) == 7 && isHex(tok[1:]) {
					junk++
				}
			}
		}
		if junk == 0 {
			t.Errorf("domain %s has no junk tokens", d)
		}
	}
}

func isHex(s string) bool {
	for _, r := range s {
		if !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f') {
			return false
		}
	}
	return true
}

// TestIndicatorBleed: the generic RESEARCH indicator word must appear in
// TEACHING paragraphs too (the bleed that makes manual generic queries
// noisy, mirroring the real web).
func TestIndicatorBleed(t *testing.T) {
	g, err := Generate(Config{Domain: DomainResearchers, NumEntities: 30, PagesPerEntity: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	bleed := 0
	for _, p := range g.Corpus.Pages {
		for i := range p.Paras {
			if p.Paras[i].Aspect != AspTeaching {
				continue
			}
			for _, tok := range p.Paras[i].Tokens {
				if tok == "research" {
					bleed++
				}
			}
		}
	}
	if bleed == 0 {
		t.Fatal("no research-vocabulary bleed into TEACHING")
	}
}

// TestSynonymSplit: no single literal should cover every RESEARCH
// paragraph — synonym diversity is what keeps manual queries incomplete.
func TestSynonymSplit(t *testing.T) {
	g, err := Generate(Config{Domain: DomainResearchers, NumEntities: 30, PagesPerEntity: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	total, with := 0, 0
	for _, p := range g.Corpus.Pages {
		for i := range p.Paras {
			if p.Paras[i].Aspect != AspResearch {
				continue
			}
			total++
			for _, tok := range p.Paras[i].Tokens {
				if tok == "research" {
					with++
					break
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no research paragraphs")
	}
	frac := float64(with) / float64(total)
	if frac > 0.9 {
		t.Fatalf("'research' covers %.2f of RESEARCH paragraphs — synonym split broken", frac)
	}
	if frac < 0.05 {
		t.Fatalf("'research' covers only %.2f — indicator too weak", frac)
	}
}

func TestTargetAspects(t *testing.T) {
	if len(TargetAspects(DomainResearchers)) != 7 || len(TargetAspects(DomainCars)) != 7 {
		t.Fatal("each domain must evaluate 7 aspects (Fig. 9)")
	}
	if len(TargetAspects("unknown")) != 7 {
		t.Fatal("unknown domain should default to researcher aspects")
	}
}

func TestDefaultConfigs(t *testing.T) {
	r := DefaultConfig(DomainResearchers)
	if r.NumEntities != 996 || r.PagesPerEntity != 50 {
		t.Fatalf("researcher default = %+v", r)
	}
	c := DefaultConfig(DomainCars)
	if c.NumEntities != 143 || c.PagesPerEntity != 50 {
		t.Fatalf("car default = %+v", c)
	}
}
