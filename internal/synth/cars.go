package synth

import (
	"fmt"
	"math/rand/v2"

	"l2q/internal/corpus"
	"l2q/internal/types"
)

// Car-domain aspects (Fig. 9, right column). DEALER and NEWS are noise.
const (
	AspVerdict     corpus.Aspect = "VERDICT"
	AspInterior    corpus.Aspect = "INTERIOR"
	AspExterior    corpus.Aspect = "EXTERIOR"
	AspPrice       corpus.Aspect = "PRICE"
	AspReliability corpus.Aspect = "RELIABILITY"
	AspSafety      corpus.Aspect = "SAFETY"
	AspDriving     corpus.Aspect = "DRIVING"
	AspDealer      corpus.Aspect = "DEALER"
	AspCarNews     corpus.Aspect = "NEWS"
)

// CarAspects are the target aspects evaluated for the car domain, in
// Fig. 9 order.
var CarAspects = []corpus.Aspect{
	AspVerdict, AspInterior, AspExterior, AspPrice,
	AspReliability, AspSafety, AspDriving,
}

// See researcherGrammar for the indicator-word design rationale: generic
// indicators split coverage with synonyms and bleed into the noise aspects.
var carGrammar = map[corpus.Aspect][]string{
	AspVerdict: {
		"the {verdict} gives the {make} {model} high marks",
		"our {verdict} ranks it above the {rival}",
		"final verdict the {model} earns a {rating} of ten overall",
		"the {verdict} summary praises its balance",
		"{verdict} for this {bodystyle} reflects strong value",
		"reviewers conclude the {verdict} favors the {trim} trim",
	},
	AspInterior: {
		"the cabin offers {ifeature} and {ifeature2}",
		"{ifeature} comes standard on the {trim} trim",
		"interior materials include {ifeature} with soft touch surfaces",
		"rear passengers enjoy {ifeature} and generous legroom",
		"the {model} cockpit gains {ifeature} this year",
		"inside you find {ifeature} plus {ifeature2}",
	},
	AspExterior: {
		"{efeature} and {efeature2} define the exterior",
		"the {color} paint pairs well with {efeature}",
		"exterior styling features {efeature} on the {bodystyle}",
		"its profile shows {efeature} and sculpted lines",
		"the {trim} adds {efeature} outside",
		"available {color} finish complements the {efeature}",
	},
	AspPrice: {
		"base price starts at {money} for the {trim}",
		"the {trim} trim costs {money} with destination",
		"pricing ranges from {money} to {money2}",
		"msrp of {money} undercuts the {rival}",
		"expect to pay {money} for the {bodystyle} version",
		"invoice figures near {money} leave room to negotiate",
	},
	AspReliability: {
		"{reliability} remains a strong point",
		"owners report excellent {reliability}",
		"the {reliability} rating tops its class",
		"reliability surveys highlight {reliability} and {reliability2}",
		"predicted dependability is above average with solid {reliability}",
		"long term {reliability} data favors the {model}",
	},
	AspSafety: {
		"{safety} and {safety2} come standard",
		"the {model} earned five stars with {safety}",
		"safety equipment includes {safety}",
		"{safety} helped it ace the crash test",
		"standard {safety} protects all occupants",
		"the institute praised its {safety} in {year} testing",
	},
	AspDriving: {
		"the {engine} engine delivers brisk {driving}",
		"{driving} and {driving2} impress on the road",
		"driving dynamics show composed {driving}",
		"our test drive revealed excellent {driving} from the {engine}",
		"behind the wheel the {model} feels planted with strong {driving}",
		"expect athletic {driving} with minimal {driving2}",
	},
	// DEALER bleeds the PRICE and DRIVING indicator vocabulary ("price",
	// "test drive"), making generic queries noisy.
	AspDealer: {
		"visit our {location} dealership for {model} inventory",
		"call {phone} for the best price quote today",
		"the {location} showroom has the {color} {model} in stock",
		"schedule a test drive at our {location} lot",
		"ask about price matching at the {location} store",
	},
	// NEWS bleeds SAFETY and RELIABILITY vocabulary (recall coverage).
	AspCarNews: {
		"the {year} auto show featured the {make} lineup",
		"{make} announced updates for the {year2} model year",
		"industry news covers the {make} {model} refresh",
		"spy photos preview the next {model}",
		"{make} issued a safety recall notice in {year}",
	},
}

var carFillerSentences = []string{
	"browse the {filler} gallery and {filler2} pages",
	"this {filler} listing includes full {filler2} data",
	"see the {filler} section for {filler2} information",
	"compare {filler} and {filler2} across the lineup",
	"stock number {uniqueid} updated daily",
	"listing id {uniqueid} vin on request",
}

var carAspectWeights = map[corpus.Aspect]float64{
	AspDriving:     0.30,
	AspVerdict:     0.12,
	AspInterior:    0.13,
	AspExterior:    0.09,
	AspPrice:       0.14,
	AspReliability: 0.05,
	AspSafety:      0.05,
	AspDealer:      0.07,
	AspCarNews:     0.05,
}

// carPairs enumerates every (make, model) pair in declaration order; the
// corpus takes the first NumEntities of them (paper: 143 models of 2009).
func carPairs() [][2]string {
	var out [][2]string
	for _, line := range carLines {
		for _, m := range line.models {
			out = append(out, [2]string{line.make, m})
		}
	}
	return out
}

// newCarProfile draws one car model's attributes.
func newCarProfile(id corpus.EntityID, rng *rand.Rand) *Profile {
	pairs := carPairs()
	pair := pairs[int(id)%len(pairs)]
	mk, model := pair[0], pair[1]
	trim := trims[int(id)%len(trims)]
	name := mk + " " + model

	// A rival is some other model (for VERDICT/PRICE comparisons).
	rival := pairs[rng.IntN(len(pairs))]
	for rival[1] == model {
		rival = pairs[rng.IntN(len(pairs))]
	}

	basePrice := 18 + rng.IntN(60)

	p := &Profile{
		Entity: &corpus.Entity{
			ID:        id,
			Domain:    DomainCars,
			Name:      name,
			SeedQuery: mk + " " + model + " " + trim,
			Attrs: map[string]string{
				"make": mk, "model": model, "trim": trim,
			},
		},
		Fields: map[string][]string{
			"make":        {mk},
			"model":       {model},
			"name":        {name},
			"trim":        {trim},
			"bodystyle":   {bodyStyles[rng.IntN(len(bodyStyles))]},
			"color":       sampleDistinct(rng, colors, 2+rng.IntN(2)),
			"ifeature":    sampleDistinct(rng, interiorFeatures, 3+rng.IntN(3)),
			"efeature":    sampleDistinct(rng, exteriorFeatures, 3+rng.IntN(2)),
			"engine":      {engines[rng.IntN(len(engines))]},
			"driving":     sampleDistinct(rng, drivingTerms, 3+rng.IntN(2)),
			"safety":      sampleDistinct(rng, safetyTerms, 2+rng.IntN(2)),
			"reliability": sampleDistinct(rng, reliabilityTerms, 2+rng.IntN(2)),
			"verdict":     sampleDistinct(rng, verdictTerms, 2),
			"rival":       {rival[0] + " " + rival[1]},
			"location":    sampleDistinct(rng, dealerCities, 2),
			"phone":       {fmt.Sprintf("%d-%d-%04d", 200+rng.IntN(700), 200+rng.IntN(700), rng.IntN(10000))},
			"money": {
				fmt.Sprintf("$%d,%03d", basePrice, rng.IntN(10)*100),
				fmt.Sprintf("$%d,%03d", basePrice+3+rng.IntN(8), rng.IntN(10)*100),
			},
		},
	}
	return p
}

// carKB builds the type dictionary for the car domain.
func carKB() *types.Dictionary {
	d := types.NewDictionary()
	for _, line := range carLines {
		d.Add(line.make, "make")
		for _, m := range line.models {
			d.Add(m, "model")
		}
	}
	d.AddAll("trim", trims...)
	d.AddAll("bodystyle", bodyStyles...)
	d.AddAll("feature", interiorFeatures...)
	d.AddAll("feature", exteriorFeatures...)
	d.AddAll("engine", engines...)
	d.AddAll("drivingterm", drivingTerms...)
	d.AddAll("safetyterm", safetyTerms...)
	d.AddAll("reliabilityterm", reliabilityTerms...)
	d.AddAll("verdictterm", verdictTerms...)
	d.AddAll("color", colors...)
	d.AddAll("location", dealerCities...)
	return d
}
