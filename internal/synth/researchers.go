package synth

import (
	"fmt"
	"math/rand/v2"

	"l2q/internal/corpus"
	"l2q/internal/types"
)

// Researcher-domain aspects. The seven target aspects match Fig. 9; HOBBY
// and TEACHING are noise aspects that exist in the corpus (so irrelevant
// pages are realistic) but are never harvesting targets.
const (
	AspBiography    corpus.Aspect = "BIOGRAPHY"
	AspPresentation corpus.Aspect = "PRESENTATION"
	AspAward        corpus.Aspect = "AWARD"
	AspResearch     corpus.Aspect = "RESEARCH"
	AspEducation    corpus.Aspect = "EDUCATION"
	AspEmployment   corpus.Aspect = "EMPLOYMENT"
	AspContact      corpus.Aspect = "CONTACT"
	AspHobby        corpus.Aspect = "HOBBY"
	AspTeaching     corpus.Aspect = "TEACHING"
)

// ResearcherAspects are the target aspects evaluated for the researcher
// domain, in Fig. 9 order.
var ResearcherAspects = []corpus.Aspect{
	AspBiography, AspPresentation, AspAward, AspResearch,
	AspEducation, AspEmployment, AspContact,
}

// researcherGrammar maps each aspect to its sentence templates. The
// phrasings are chosen so that the informative abstractions are exactly the
// kind of templates the paper reports: "〈topic〉 research", "〈topic〉 〈venue〉",
// "〈award〉 award", "〈degree〉 degree 〈institute〉", "〈email〉", etc.
// The grammars encode two properties the paper's argument rests on (§I):
// generic indicator words ("research", "award") cover only part of an
// aspect's pages — synonyms take the rest — and they bleed into other
// aspects, so a manual generic query is both incomplete and noisy, whereas
// entity-specific typed words (〈topic〉, 〈venue〉) are dense within the
// entity's relevant pages.
var researcherGrammar = map[corpus.Aspect][]string{
	AspResearch: {
		"he conducts research on {topic} and {topic2} systems",
		"his work focuses on {topic} with applications to {topic2}",
		"he published many {topic} papers in {venue}",
		"his recent {topic} paper in {venue} drew wide attention",
		"the {topic} group also studies {topic2} problems",
		"research interests include {topic} and {topic2}",
		"a {venue} article on {topic} appeared in {year}",
		"he investigates scalable {topic} algorithms",
		"ongoing {topic} projects are funded through {year}",
		"his {topic} results influenced later work on {topic2}",
	},
	AspAward: {
		"he received the {award} award in {year}",
		"winner of the {award} prize for contributions to {topic}",
		"the {award} honor recognized his work on {topic}",
		"he was honored with the {award} medal at {venue}",
		"recipient of the {award} award for {topic}",
		"his accolades include the {award} and {award2} distinctions",
	},
	AspEducation: {
		"he earned his {degree} degree from {school} in {year}",
		"{degree} studies in computer science at {school}",
		"graduated from {school} with a {degree} in {year}",
		"his {degree} thesis on {topic} was completed at {school}",
		"he completed doctoral training at {school}",
		"education includes a {degree} from {school}",
	},
	AspEmployment: {
		"he was a senior manager at {company} before joining {institute}",
		"worked at {company} from {year} to {year2}",
		"previous position at {company} as research staff",
		"he joined {institute} after several years at {company}",
		"employment history includes {company} and {company2}",
		"he served at {company} before academia",
	},
	AspContact: {
		"contact him at {email} or call {phone}",
		"email {email} for appointments",
		"office phone {phone} at {institute}",
		"reach him at {email} or stop by the office",
		"mailing address {institute} campus {location}",
		"the assistant answers {phone} during business hours",
	},
	AspBiography: {
		"he was born in {location} in {year}",
		"short biography he is a professor at {institute}",
		"he grew up in {location} before moving to {location2}",
		"his award winning career spans {institute} and {company}",
		"biography {firstname} {lastname} leads the {topic} group at {institute}",
		"a brief bio describes his journey from {location} to {institute}",
	},
	AspPresentation: {
		"slides of his {topic} talk at {venue} are available",
		"keynote presentation on {topic} at {venue} in {year}",
		"download the lecture deck from the {venue} site",
		"invited talk about {topic} and {topic2} at {venue}",
		"his {venue} tutorial slides cover {topic}",
		"the seminar lecture discussed {topic} challenges",
	},
	AspHobby: {
		"he enjoys {hobby} and {hobby2} on weekends",
		"his {hobby} photos from {location} are posted online",
		"outside work he pursues {hobby}",
		"friends join him for {hobby} near {location}",
	},
	// TEACHING deliberately reuses research/papers/projects vocabulary:
	// the generic words a user would fire for RESEARCH also hit course
	// pages, exactly the noise that penalizes MQ on the real web.
	AspTeaching: {
		"he teaches the {topic} research methods course at {institute}",
		"course projects cover {topic} this semester",
		"students present papers in the {topic} seminar",
		"the {topic} syllabus and homework are online",
		"office hours for the {topic} class are posted",
		"lecture slides for the {topic} course are downloadable",
		"students conduct research on {topic} in the lab course",
		"the course develops research interests in {topic}",
		"he published the {topic} course notes online",
	},
}

var researcherFillerSentences = []string{
	"welcome to the {filler} page with general {filler2} information",
	"please find additional {filler} details online",
	"this {filler} section lists recent {filler2} updates",
	"see the complete {filler} overview for more",
	"the {filler} list is updated with {filler2} items",
	"document id {uniqueid} cached copy",
	"page revision {uniqueid} archived {filler}",
}

// researcherAspectWeights is the primary-aspect distribution for pages,
// producing the skew of Fig. 9 (RESEARCH ≫ EMPLOYMENT).
var researcherAspectWeights = map[corpus.Aspect]float64{
	AspResearch:     0.38,
	AspPresentation: 0.08,
	AspAward:        0.08,
	AspEducation:    0.08,
	AspBiography:    0.07,
	AspEmployment:   0.04,
	AspContact:      0.06,
	AspHobby:        0.09,
	AspTeaching:     0.12,
}

// newResearcherProfile draws one researcher's attributes.
func newResearcherProfile(id corpus.EntityID, rng *rand.Rand) *Profile {
	fi := int(id) % len(firstNames)
	li := (int(id) / len(firstNames)) % len(lastNames)
	first, last := firstNames[fi], lastNames[li]
	// Beyond the name grid, disambiguate with a numeral suffix so seed
	// queries stay unique at any corpus scale.
	suffix := ""
	if n := int(id) / (len(firstNames) * len(lastNames)); n > 0 {
		suffix = fmt.Sprintf("%d", n+1)
	}
	last += suffix

	inst := institutes[rng.IntN(len(institutes))]
	schools := sampleDistinct(rng, institutes, 2)
	name := first + " " + last

	p := &Profile{
		Entity: &corpus.Entity{
			ID:        id,
			Domain:    DomainResearchers,
			Name:      name,
			SeedQuery: first + " " + last + " " + inst.short,
			Attrs: map[string]string{
				"institute": inst.full,
			},
		},
		Fields: map[string][]string{
			"firstname": {first},
			"lastname":  {last},
			"name":      {name},
			"institute": {inst.full},
			"instshort": {inst.short},
			"topic":     sampleDistinct(rng, topics, 2+rng.IntN(3)),
			"venue":     sampleDistinct(rng, venues, 2+rng.IntN(2)),
			"award":     sampleDistinct(rng, awards, 1+rng.IntN(2)),
			"company":   sampleDistinct(rng, companies, 1+rng.IntN(2)),
			"degree":    sampleDistinct(rng, degrees, 2),
			"location":  sampleDistinct(rng, locations, 2),
			"hobby":     sampleDistinct(rng, hobbies, 2),
			"email":     {last + "@" + inst.short + ".edu"},
			"phone":     {fmt.Sprintf("%d-%d-%04d", 200+rng.IntN(700), 200+rng.IntN(700), rng.IntN(10000))},
			"url":       {"www." + inst.short + ".edu"},
		},
	}
	p.Fields["school"] = []string{schools[0].full, schools[1].full}
	return p
}

// researcherKB builds the type dictionary for the researcher domain — our
// stand-in for Freebase plus Microsoft Academic Search (§VI-A "Templates").
func researcherKB() *types.Dictionary {
	d := types.NewDictionary()
	d.AddAll("topic", topics...)
	d.AddAll("venue", venues...)
	for _, inst := range institutes {
		d.Add(inst.full, "institute")
		d.Add(inst.short, "institute")
	}
	d.AddAll("award", awards...)
	d.AddAll("company", companies...)
	d.AddAll("degree", degrees...)
	d.AddAll("location", locations...)
	d.AddAll("hobby", hobbies...)
	// Person names, as a CoreNLP-style NER gazetteer would supply.
	d.AddAll("person", firstNames...)
	d.AddAll("person", lastNames...)
	return d
}
