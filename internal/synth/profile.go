package synth

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"l2q/internal/corpus"
)

// Profile is one entity's private attribute assignment: its own topics,
// venues, features, and so on. Profiles are the source of entity variation
// (§IV-A): two entities share the sentence grammar but not the slot values.
type Profile struct {
	Entity *corpus.Entity
	// Fields maps slot name → the entity's values for that slot
	// ("topic" → {"hpc", "parallel computing"}).
	Fields map[string][]string
}

// fieldValues returns the values of a slot, or nil.
func (p *Profile) fieldValues(name string) []string { return p.Fields[name] }

// slotFiller resolves {placeholder} keys during sentence expansion.
// Placeholders ending in a digit ("topic2") request a value distinct from
// the base placeholder's last pick within the same sentence when possible.
type slotFiller struct {
	profile *Profile
	rng     *rand.Rand
	global  map[string][]string // pools for slots not bound per entity
	last    map[string]string   // base slot → last value used in sentence
}

func newSlotFiller(p *Profile, rng *rand.Rand, global map[string][]string) *slotFiller {
	return &slotFiller{profile: p, rng: rng, global: global, last: make(map[string]string)}
}

// reset clears per-sentence distinctness state.
func (f *slotFiller) reset() {
	for k := range f.last {
		delete(f.last, k)
	}
}

// fill resolves a placeholder key to a concrete string. Unknown keys panic:
// a grammar referencing a missing slot is a programmer error that tests
// should catch immediately.
func (f *slotFiller) fill(key string) string {
	base := key
	wantDistinct := false
	if n := len(key); n > 0 && key[n-1] >= '2' && key[n-1] <= '9' {
		base = key[:n-1]
		wantDistinct = true
	}

	switch base {
	case "year":
		v := fmt.Sprintf("%d", 1980+f.rng.IntN(36))
		f.last[base] = v
		return v
	case "uniqueid":
		// A page-local junk token (document ids, cache-buster strings).
		// On the real web such tokens occur on a single page only, so a
		// query containing one retrieves nothing new; they exist to
		// make unguided query selection (RND) pay a realistic price.
		return fmt.Sprintf("x%06x", f.rng.IntN(1<<24))
	case "rating":
		return fmt.Sprintf("%d", 6+f.rng.IntN(4))
	case "money":
		return fmt.Sprintf("$%d,%03d", 18+f.rng.IntN(60), f.rng.IntN(10)*100)
	case "number":
		return fmt.Sprintf("%d", 1+f.rng.IntN(500))
	}

	pool := f.profile.fieldValues(base)
	if pool == nil {
		pool = f.global[base]
	}
	if len(pool) == 0 {
		panic(fmt.Sprintf("synth: grammar references unknown slot %q", key))
	}
	v := pool[f.rng.IntN(len(pool))]
	if wantDistinct && len(pool) > 1 {
		for tries := 0; tries < 4 && v == f.last[base]; tries++ {
			v = pool[f.rng.IntN(len(pool))]
		}
	}
	f.last[base] = v
	return v
}

// expand substitutes every {placeholder} in tmpl using fill.
func expand(tmpl string, fill func(string) string) string {
	var b strings.Builder
	b.Grow(len(tmpl) + 32)
	for i := 0; i < len(tmpl); {
		open := strings.IndexByte(tmpl[i:], '{')
		if open < 0 {
			b.WriteString(tmpl[i:])
			break
		}
		b.WriteString(tmpl[i : i+open])
		i += open
		close := strings.IndexByte(tmpl[i:], '}')
		if close < 0 { // unbalanced brace: emit literally
			b.WriteString(tmpl[i:])
			break
		}
		key := tmpl[i+1 : i+close]
		b.WriteString(fill(key))
		i += close + 1
	}
	return b.String()
}

// pick returns a uniformly random element.
func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.IntN(len(xs))] }

// sampleDistinct draws k distinct elements (or all if k ≥ len).
func sampleDistinct[T any](rng *rand.Rand, xs []T, k int) []T {
	if k >= len(xs) {
		out := make([]T, len(xs))
		copy(out, xs)
		return out
	}
	idx := rng.Perm(len(xs))[:k]
	out := make([]T, 0, k)
	for _, i := range idx {
		out = append(out, xs[i])
	}
	return out
}

// weightedIndex samples an index proportional to weights (must be positive).
func weightedIndex(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r <= 0 {
			return i
		}
	}
	return len(weights) - 1
}
