// Package synth generates the synthetic web corpora that substitute for the
// paper's crawled collections (996 DBLP researchers and 143 consumer car
// models, ~50 pages each; §VI-A "Corpora").
//
// The generator is engineered to reproduce the statistical structure that
// L2Q exploits rather than surface realism:
//
//   - Entity variation (§IV-A, Fig. 3): each entity draws its own topics,
//     venues, features, etc., so concrete high-utility queries differ across
//     entities while the abstractions (templates) stay stable.
//   - Aspect-indicative n-grams: every aspect has a sentence grammar whose
//     phrasings ("research on 〈topic〉", "received the 〈award〉 award") yield
//     the high-precision / high-recall templates the domain phase must find.
//   - Redundancy: aspect words co-occur within pages so that different good
//     queries retrieve overlapping top-k result sets (§V motivation).
//   - Skewed aspect frequency, mirroring Fig. 9 (RESEARCH ≫ EMPLOYMENT for
//     researchers, DRIVING ≫ SAFETY for cars).
//
// Everything is deterministic given Config.Seed.
package synth

// ---------------------------------------------------------------------------
// Researcher domain vocabulary (the stand-in for DBLP + Freebase + MAS).
// ---------------------------------------------------------------------------

var firstNames = []string{
	"marc", "philip", "andrew", "jiawei", "rakesh", "hector", "jennifer",
	"michael", "david", "susan", "christos", "jeffrey", "barbara", "laura",
	"alon", "surajit", "raghu", "joseph", "anhai", "divesh", "magdalena",
	"daniela", "samuel", "gerhard", "timos", "elisa", "carlo", "sihem",
	"volker", "beng", "kian", "wei", "xin", "ling", "hai", "yufei",
}

var lastNames = []string{
	"snir", "yu", "ng", "han", "agrawal", "garcia", "widom", "stonebraker",
	"dewitt", "davidson", "faloutsos", "ullman", "liskov", "haas", "halevy",
	"chaudhuri", "ramakrishnan", "hellerstein", "doan", "srivastava",
	"balazinska", "florescu", "madden", "weikum", "sellis", "bertino",
	"zaniolo", "amer", "markl", "ooi", "tan", "wang", "luna", "zhou",
	"jin", "tao", "chen", "kumar", "lee", "patel",
}

// topics deliberately mixes single-word and multi-word entries so the phrase
// lexicon and sliding-window enumeration are both exercised.
var topics = []string{
	"hpc", "parallel computing", "data mining", "machine learning",
	"databases", "query optimization", "information retrieval",
	"distributed systems", "computer vision", "natural language processing",
	"graph mining", "data integration", "stream processing", "crowdsourcing",
	"privacy", "security", "compilers", "operating systems", "networking",
	"complexity theory", "algorithms", "bioinformatics", "robotics",
	"deep learning", "knowledge graphs", "entity resolution", "web search",
	"recommender systems", "spatial databases", "temporal reasoning",
	"transaction processing", "concurrency control", "fault tolerance",
	"sensor networks", "cloud computing", "big data", "visualization",
	"human computation", "program analysis", "formal verification",
	"approximate query", "data cleaning", "schema matching", "text mining",
	"social networks", "probabilistic inference", "reinforcement learning",
	"computer architecture", "storage systems", "data provenance",
}

var venues = []string{
	"ijhpca", "tkde", "jmlr", "sigmod", "vldb", "icde", "kdd", "www",
	"sigir", "cikm", "icml", "nips", "aaai", "ijcai", "acl", "emnlp",
	"sosp", "osdi", "nsdi", "podc", "focs", "stoc", "soda", "wsdm",
	"edbt", "icdt", "pods", "vldbj", "tods", "tois", "jacm", "cacm",
	"isca", "micro", "asplos", "ppopp", "supercomputing", "hpdc",
}

// institutes come with a short token used in seed queries ("uiuc").
type institute struct {
	full  string // multi-word name, becomes a phrase token
	short string
}

var institutes = []institute{
	{"university of illinois", "uiuc"}, {"stanford university", "stanford"},
	{"mit csail", "mit"}, {"carnegie mellon university", "cmu"},
	{"university of washington", "uw"}, {"cornell university", "cornell"},
	{"princeton university", "princeton"}, {"uc berkeley", "berkeley"},
	{"university of michigan", "umich"}, {"georgia tech", "gatech"},
	{"university of wisconsin", "wisc"}, {"university of texas", "utexas"},
	{"columbia university", "columbia"}, {"eth zurich", "ethz"},
	{"epfl lausanne", "epfl"}, {"max planck institute", "mpi"},
	{"national university of singapore", "nus"}, {"tsinghua university", "tsinghua"},
	{"university of toronto", "toronto"}, {"university of edinburgh", "edinburgh"},
	{"uc san diego", "ucsd"}, {"uc los angeles", "ucla"},
	{"university of maryland", "umd"}, {"purdue university", "purdue"},
	{"ohio state university", "osu"}, {"university of chicago", "uchicago"},
	{"nyu courant", "nyu"}, {"harvard university", "harvard"},
	{"yale university", "yale"}, {"brown university", "brown"},
	{"duke university", "duke"}, {"rice university", "rice"},
}

var awards = []string{
	"turing", "sigmod edgar codd", "acm fellow", "ieee fellow",
	"sloan fellowship", "nsf career", "best paper", "test of time",
	"distinguished scientist", "kanellakis", "von neumann",
	"humboldt research", "packard fellowship", "guggenheim",
	"young investigator", "dissertation", "influential paper",
	"outstanding contribution", "lifetime achievement", "rising star",
}

var companies = []string{
	"ibm", "microsoft", "google", "bell labs", "oracle", "amazon",
	"facebook", "yahoo", "intel", "nvidia", "baidu", "alibaba",
	"hp labs", "xerox parc", "salesforce", "linkedin", "twitter",
	"netflix", "uber", "airbnb",
}

var degrees = []string{"phd", "masters", "bachelors", "postdoc"}

var locations = []string{
	"chicago", "urbana", "palo alto", "seattle", "boston", "pittsburgh",
	"new york", "austin", "atlanta", "madison", "zurich", "singapore",
	"beijing", "toronto", "london", "paris", "munich", "tel aviv",
	"bangalore", "sydney",
}

var hobbies = []string{
	"hiking", "photography", "chess", "marathon running", "gardening",
	"sailing", "cooking", "jazz piano", "bird watching", "cycling",
}

// fillerWords pad paragraphs with low-signal vocabulary shared across all
// entities and aspects so no aspect is trivially separable by any word.
var fillerWords = []string{
	"page", "information", "details", "update", "welcome", "homepage",
	"section", "content", "official", "general", "overview", "summary",
	"recent", "news", "various", "several", "important", "notable",
	"member", "group", "team", "list", "full", "complete", "related",
	"additional", "online", "available", "please", "find", "see",
}

// ---------------------------------------------------------------------------
// Car domain vocabulary (the stand-in for the 2009 consumer car corpus).
// ---------------------------------------------------------------------------

type carLine struct {
	make   string
	models []string
}

var carLines = []carLine{
	{"bmw", []string{"3 series", "5 series", "x5", "z4", "7 series", "x3"}},
	{"audi", []string{"a4", "a6", "q5", "q7", "tt", "a3"}},
	{"mercedes", []string{"c class", "e class", "glk", "s class", "slk", "ml"}},
	{"toyota", []string{"camry", "corolla", "prius", "rav4", "highlander", "venza"}},
	{"honda", []string{"accord", "civic", "crv", "pilot", "fit", "odyssey"}},
	{"ford", []string{"fusion", "focus", "escape", "flex", "mustang", "f150"}},
	{"chevrolet", []string{"malibu", "traverse", "equinox", "camaro", "impala", "tahoe"}},
	{"nissan", []string{"altima", "maxima", "murano", "rogue", "370z", "cube"}},
	{"volkswagen", []string{"jetta", "passat", "tiguan", "golf", "cc", "routan"}},
	{"hyundai", []string{"sonata", "elantra", "genesis", "santa fe", "tucson", "accent"}},
	{"subaru", []string{"outback", "forester", "legacy", "impreza", "tribeca"}},
	{"mazda", []string{"mazda3", "mazda6", "cx7", "cx9", "mx5", "rx8"}},
	{"kia", []string{"optima", "sorento", "soul", "sportage", "forte", "sedona"}},
	{"lexus", []string{"es 350", "rx 350", "is 250", "gs 450", "lx 570"}},
	{"acura", []string{"tsx", "tl", "mdx", "rdx", "rl"}},
	{"infiniti", []string{"g37", "fx35", "m35", "ex35", "qx56"}},
	{"volvo", []string{"s60", "xc90", "xc60", "s80", "c30"}},
	{"jeep", []string{"wrangler", "grand cherokee", "liberty", "patriot", "compass"}},
	{"dodge", []string{"charger", "challenger", "journey", "grand caravan", "ram 1500"}},
	{"cadillac", []string{"cts", "escalade", "srx", "dts", "sts"}},
	{"buick", []string{"lacrosse", "enclave", "lucerne"}},
	{"gmc", []string{"acadia", "terrain", "sierra", "yukon"}},
	{"chrysler", []string{"300", "town and country", "sebring", "pt cruiser"}},
	{"mini", []string{"cooper", "clubman"}},
	{"suzuki", []string{"grand vitara", "sx4", "kizashi"}},
	{"mitsubishi", []string{"lancer", "outlander", "galant", "eclipse"}},
	{"porsche", []string{"cayenne", "911", "boxster", "cayman", "panamera"}},
	{"saab", []string{"9 3", "9 5"}},
	{"lincoln", []string{"mkz", "mks", "navigator", "mkx"}},
}

var trims = []string{
	"328i", "335i", "lx", "ex", "se", "sel", "limited", "sport", "touring",
	"premium", "base", "gt", "ltz", "sle", "slt", "xle", "awd", "s line",
	"m sport", "titanium", "platinum", "laramie", "denali", "hybrid",
}

var bodyStyles = []string{
	"sedan", "coupe", "suv", "hatchback", "wagon", "convertible",
	"crossover", "minivan", "pickup",
}

var interiorFeatures = []string{
	"leather seats", "navigation system", "heated seats", "sunroof",
	"bluetooth", "premium audio", "dual zone climate", "rear camera",
	"keyless entry", "power liftgate", "third row seating", "bose speakers",
	"leather wrapped wheel", "ambient lighting", "memory seats",
	"ventilated seats", "panoramic roof", "touchscreen display",
}

var exteriorFeatures = []string{
	"alloy wheels", "led taillights", "fog lamps", "chrome grille",
	"roof rails", "xenon headlights", "power mirrors", "rear spoiler",
	"body side moldings", "tinted glass", "sport exhaust", "tow hitch",
}

var engines = []string{
	"v6", "v8", "inline four", "turbocharged four", "twin turbo v6",
	"diesel", "hybrid drivetrain", "flat six", "supercharged v6",
}

var drivingTerms = []string{
	"handling", "acceleration", "steering feel", "ride quality",
	"braking", "cornering", "road feedback", "throttle response",
	"cabin noise", "suspension tuning", "body roll", "grip",
}

var safetyTerms = []string{
	"stability control", "side airbags", "antilock brakes", "crash test",
	"traction control", "curtain airbags", "lane departure warning",
	"blind spot monitor", "crumple zones", "tire pressure monitor",
}

var reliabilityTerms = []string{
	"powertrain warranty", "maintenance cost", "repair frequency",
	"owner complaints", "recall history", "build quality",
	"long term durability", "resale value",
}

var verdictTerms = []string{
	"editors rating", "overall score", "pros and cons", "bottom line",
	"comparison test", "class ranking", "recommendation", "final verdict",
}

var colors = []string{
	"alpine white", "jet black", "silver metallic", "deep blue",
	"crimson red", "graphite gray", "pearl white", "midnight blue",
	"champagne gold", "forest green",
}

var dealerCities = locations

var carFiller = []string{
	"review", "listing", "photos", "gallery", "specs", "inventory",
	"compare", "research", "overview", "details", "model", "vehicle",
	"automotive", "lineup", "available", "standard", "optional",
	"package", "equipment", "edition",
}
