// Package template implements query templates (paper Def. 1): abstractions
// of queries in which each unit is either a literal word or a type from the
// type system. Templates are the bridge that carries utility knowledge
// across entities in the same domain (§IV-A): "hpc ijhpca" (Snir),
// "data mining tkde" (Yu) and "ai jmlr" (Ng) all abstract to
// "〈topic〉 〈venue〉", so evidence about any of them transfers to the others.
package template

import (
	"strings"

	"l2q/internal/textproc"
	"l2q/internal/types"
)

// Unit is one position of a template: a literal word or a type.
type Unit struct {
	Word string     // set when the unit is a literal word
	Type types.Type // set when the unit is a type
}

// IsType reports whether the unit is a type (vs. a literal word).
func (u Unit) IsType() bool { return u.Type != "" }

// render returns the unit's canonical string form.
func (u Unit) render() string {
	if u.IsType() {
		return u.Type.Render()
	}
	return u.Word
}

// Template is a sequence of units (Def. 1).
type Template struct {
	Units []Unit
}

// Key returns the canonical string identity of the template, e.g.
// "〈topic〉 research". Two templates are the same iff their keys match.
func (t Template) Key() string {
	parts := make([]string, len(t.Units))
	for i, u := range t.Units {
		parts[i] = u.render()
	}
	return strings.Join(parts, " ")
}

// NumTypeUnits counts the type (non-literal) units.
func (t Template) NumTypeUnits() int {
	n := 0
	for _, u := range t.Units {
		if u.IsType() {
			n++
		}
	}
	return n
}

// Abstracts reports whether the template abstracts the query (Def. 1):
// same length, literal units match exactly, and type units contain the
// query word according to the recognizer.
func (t Template) Abstracts(query []textproc.Token, rec types.Recognizer) bool {
	if len(query) != len(t.Units) {
		return false
	}
	for i, u := range t.Units {
		if !u.IsType() {
			if query[i] != u.Word {
				return false
			}
			continue
		}
		found := false
		for _, wt := range rec.TypesOf(query[i]) {
			if wt == u.Type {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// MaxPerQuery caps template enumeration per query; beyond this, the
// enumeration is cut deterministically (queries are ≤3 units and words
// rarely have >2 types, so the cap is a safety valve, not a tuning knob).
const MaxPerQuery = 32

// Enumerate returns every template that abstracts the query (Def. 1),
// excluding the degenerate all-literal template, which is just the query
// itself and generalizes nothing. Each token position may remain literal
// or be abstracted into any of its types; the result is the cross product,
// capped at MaxPerQuery, in deterministic order.
func Enumerate(query []textproc.Token, rec types.Recognizer) []Template {
	if len(query) == 0 {
		return nil
	}
	options := make([][]Unit, len(query))
	for i, w := range query {
		opts := []Unit{{Word: w}}
		for _, wt := range rec.TypesOf(w) {
			opts = append(opts, Unit{Type: wt})
		}
		options[i] = opts
	}

	var out []Template
	units := make([]Unit, len(query))
	var walk func(pos, typed int)
	walk = func(pos, typed int) {
		if len(out) >= MaxPerQuery {
			return
		}
		if pos == len(query) {
			if typed == 0 {
				return // all-literal: the query itself
			}
			cp := make([]Unit, len(units))
			copy(cp, units)
			out = append(out, Template{Units: cp})
			return
		}
		for _, u := range options[pos] {
			units[pos] = u
			inc := 0
			if u.IsType() {
				inc = 1
			}
			walk(pos+1, typed+inc)
		}
	}
	walk(0, 0)
	return out
}

// EnumerateKeys is Enumerate returning canonical keys only.
func EnumerateKeys(query []textproc.Token, rec types.Recognizer) []string {
	ts := Enumerate(query, rec)
	keys := make([]string, len(ts))
	for i, t := range ts {
		keys[i] = t.Key()
	}
	return keys
}

// ParseKey parses a canonical key back into a Template ("〈topic〉 research").
// It is the inverse of Key for well-formed inputs; malformed unit syntax is
// treated as a literal word.
func ParseKey(key string) Template {
	parts := strings.Split(key, " ")
	units := make([]Unit, 0, len(parts))
	for _, p := range parts {
		if strings.HasPrefix(p, "〈") && strings.HasSuffix(p, "〉") {
			name := strings.TrimSuffix(strings.TrimPrefix(p, "〈"), "〉")
			units = append(units, Unit{Type: types.Type(name)})
			continue
		}
		units = append(units, Unit{Word: p})
	}
	return Template{Units: units}
}
