package template

import (
	"reflect"
	"sort"
	"testing"

	"l2q/internal/textproc"
	"l2q/internal/types"
)

func testDict() *types.Dictionary {
	d := types.NewDictionary()
	d.AddAll("topic", "hpc", "ai", "data mining")
	d.AddAll("venue", "ijhpca", "jmlr", "tkde")
	d.AddAll("institute", "uiuc", "stanford")
	return d
}

func keys(ts []Template) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Key()
	}
	sort.Strings(out)
	return out
}

func TestEnumerateSingleTypedWord(t *testing.T) {
	d := testDict()
	got := keys(Enumerate([]textproc.Token{"hpc"}, d))
	want := []string{"〈topic〉"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Enumerate = %v, want %v", got, want)
	}
}

func TestEnumerateMixedQuery(t *testing.T) {
	d := testDict()
	// "hpc research": hpc ∈ 〈topic〉, research is untyped.
	got := keys(Enumerate([]textproc.Token{"hpc", "research"}, d))
	want := []string{"〈topic〉 research"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Enumerate = %v, want %v", got, want)
	}
}

func TestEnumerateDoubleTyped(t *testing.T) {
	d := testDict()
	// "hpc ijhpca": both words typed → 3 non-trivial combinations.
	got := keys(Enumerate([]textproc.Token{"hpc", "ijhpca"}, d))
	want := []string{"hpc 〈venue〉", "〈topic〉 ijhpca", "〈topic〉 〈venue〉"}
	sort.Strings(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Enumerate = %v, want %v", got, want)
	}
}

func TestEnumerateUntypedQueryYieldsNothing(t *testing.T) {
	d := testDict()
	if got := Enumerate([]textproc.Token{"plain", "words"}, d); len(got) != 0 {
		t.Errorf("Enumerate = %v, want none", got)
	}
	if got := Enumerate(nil, d); got != nil {
		t.Errorf("Enumerate(nil) = %v", got)
	}
}

func TestPaperFig3SharedTemplate(t *testing.T) {
	// The paper's Fig. 3: hpc ijhpca / data mining tkde / ai jmlr all
	// abstract to 〈topic〉 〈venue〉 — the bridge across entities.
	d := testDict()
	queries := [][]textproc.Token{
		{"hpc", "ijhpca"},
		{"data mining", "tkde"},
		{"ai", "jmlr"},
	}
	for _, q := range queries {
		found := false
		for _, tmpl := range Enumerate(q, d) {
			if tmpl.Key() == "〈topic〉 〈venue〉" {
				found = true
				if !tmpl.Abstracts(q, d) {
					t.Errorf("template does not abstract its own source %v", q)
				}
			}
		}
		if !found {
			t.Errorf("query %v does not yield 〈topic〉 〈venue〉", q)
		}
	}
}

func TestAbstracts(t *testing.T) {
	d := testDict()
	tmpl := Template{Units: []Unit{{Type: "topic"}, {Word: "research"}}}
	tests := []struct {
		q    []textproc.Token
		want bool
	}{
		{[]textproc.Token{"hpc", "research"}, true},
		{[]textproc.Token{"ai", "research"}, true},
		{[]textproc.Token{"data mining", "research"}, true},
		{[]textproc.Token{"uiuc", "research"}, false}, // institute, not topic
		{[]textproc.Token{"hpc", "papers"}, false},    // literal mismatch
		{[]textproc.Token{"hpc"}, false},              // length mismatch
		{[]textproc.Token{"hpc", "research", "x"}, false},
	}
	for _, tc := range tests {
		if got := tmpl.Abstracts(tc.q, d); got != tc.want {
			t.Errorf("Abstracts(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestEnumerationConsistentWithAbstracts(t *testing.T) {
	// Property: every enumerated template abstracts its source query.
	d := testDict()
	queries := [][]textproc.Token{
		{"hpc"},
		{"hpc", "research"},
		{"hpc", "ijhpca"},
		{"ai", "jmlr", "uiuc"},
		{"data mining", "tkde", "stanford"},
	}
	for _, q := range queries {
		for _, tmpl := range Enumerate(q, d) {
			if !tmpl.Abstracts(q, d) {
				t.Errorf("template %q does not abstract %v", tmpl.Key(), q)
			}
			if tmpl.NumTypeUnits() == 0 {
				t.Errorf("all-literal template leaked: %q", tmpl.Key())
			}
		}
	}
}

func TestEnumerateCap(t *testing.T) {
	// A word with many types must not blow up the enumeration.
	d := types.NewDictionary()
	for _, ty := range []types.Type{"a", "b", "c", "d", "e", "f", "g"} {
		d.Add("w", ty)
	}
	got := Enumerate([]textproc.Token{"w", "w", "w"}, d)
	if len(got) > MaxPerQuery {
		t.Fatalf("enumeration %d exceeds cap %d", len(got), MaxPerQuery)
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	for _, key := range []string{"〈topic〉 research", "hpc 〈venue〉", "〈topic〉 〈venue〉", "plain words"} {
		if got := ParseKey(key).Key(); got != key {
			t.Errorf("round trip %q → %q", key, got)
		}
	}
}

func TestEnumerateKeys(t *testing.T) {
	d := testDict()
	got := EnumerateKeys([]textproc.Token{"hpc", "research"}, d)
	if !reflect.DeepEqual(got, []string{"〈topic〉 research"}) {
		t.Errorf("EnumerateKeys = %v", got)
	}
}
