// Package store persists a corpus and its inverted index in a compact,
// checksummed binary file — the "gather once, harvest many times" storage
// layer. The paper's protocol collects all pages in advance (§VI-A) and
// then runs every experiment against that fixed collection; this package
// makes the collection a durable artifact instead of an in-memory object
// that must be regenerated per process.
//
// The format is a sequence of named sections, each independently
// CRC32-checksummed, ending in a sentinel section:
//
//	magic "L2QSTOR1"
//	section := nameLen uvarint | name | payloadLen uvarint | crc32 (4B LE) | payload
//	...
//	end     := section with name "END" and empty payload
//
// Payload encodings use varints throughout; token streams are dictionary-
// coded against a front-coded sorted term dictionary, and posting lists are
// delta-encoded. Sections unknown to a reader are skipped, so the format
// can grow without breaking old readers.
//
// The payload primitives (Enc/Dec) are exported: the live wire protocol
// (internal/webapi's L2QWIR1 frames) encodes its payloads with the exact
// same varint/length-prefix/sticky-error idiom the durable artifacts
// (L2QSTOR1, L2QCKPT1, L2QDOM1) proved out.
package store

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Enc builds a payload. All methods append; Enc never fails. The zero
// value is ready to use, and Reset makes one instance poolable.
type Enc struct {
	buf []byte
}

// Uvarint appends an unsigned varint.
func (e *Enc) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Varint appends a zig-zag signed varint.
func (e *Enc) Varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes appends a length-prefixed byte blob.
func (e *Enc) Bytes(p []byte) {
	e.Uvarint(uint64(len(p)))
	e.buf = append(e.buf, p...)
}

// Byte appends one raw byte (flags, booleans).
func (e *Enc) Byte(b byte) {
	e.buf = append(e.buf, b)
}

// Raw appends p verbatim, with no length prefix — for payloads whose
// outer framing already delimits them (a wire frame carrying one blob).
func (e *Enc) Raw(p []byte) {
	e.buf = append(e.buf, p...)
}

// F64 appends a float64 verbatim (little-endian IEEE 754 bits), so
// restored values are bit-identical to the encoded ones.
func (e *Enc) F64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// Len returns the number of encoded bytes so far.
func (e *Enc) Len() int { return len(e.buf) }

// Data returns the encoded payload. The slice aliases the encoder's
// buffer: copy it if the encoder outlives the use (pooled encoders do).
func (e *Enc) Data() []byte { return e.buf }

// Reset empties the encoder for reuse, keeping the allocated buffer.
func (e *Enc) Reset() { e.buf = e.buf[:0] }

// Dec consumes a payload built by Enc. The first malformed read poisons
// the decoder; callers check Err once at the end (sticky-error style,
// like bufio.Scanner).
type Dec struct {
	buf []byte
	pos int
	err error
}

// NewDec returns a decoder over payload.
func NewDec(payload []byte) *Dec { return &Dec{buf: payload} }

// Fail poisons the decoder with a truncation/corruption error naming
// what was being read (no-op if already poisoned).
func (d *Dec) Fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("store: truncated or corrupt %s at offset %d", what, d.pos)
	}
}

// Err returns the sticky decode error, nil while the payload reads clean.
func (d *Dec) Err() error { return d.err }

// Uvarint reads an unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.Fail("uvarint")
		return 0
	}
	d.pos += n
	return v
}

// Varint reads a zig-zag signed varint.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		d.Fail("varint")
		return 0
	}
	d.pos += n
	return v
}

// Str reads a length-prefixed string.
func (d *Dec) Str() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.pos) {
		d.Fail("string")
		return ""
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

// Bytes reads a length-prefixed byte blob. The returned slice aliases
// the decoder's buffer.
func (d *Dec) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.pos) {
		d.Fail("bytes")
		return nil
	}
	p := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return p
}

// Byte reads one raw byte.
func (d *Dec) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.buf) {
		d.Fail("byte")
		return 0
	}
	b := d.buf[d.pos]
	d.pos++
	return b
}

// F64 reads a verbatim float64.
func (d *Dec) F64() float64 {
	if d.err != nil {
		return 0
	}
	if d.pos+8 > len(d.buf) {
		d.Fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.pos:]))
	d.pos += 8
	return v
}

// Count reads a length prefix and sanity-checks it against the remaining
// bytes (each element needs at least one byte), so hostile lengths cannot
// trigger huge allocations.
func (d *Dec) Count(what string) int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.buf)-d.pos) {
		d.Fail(what + " count")
		return 0
	}
	return int(n)
}

// Remaining returns how many bytes are left to read.
func (d *Dec) Remaining() int { return len(d.buf) - d.pos }

// Done reports a clean, fully consumed payload.
func (d *Dec) Done() bool { return d.err == nil && d.pos == len(d.buf) }
