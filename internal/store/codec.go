// Package store persists a corpus and its inverted index in a compact,
// checksummed binary file — the "gather once, harvest many times" storage
// layer. The paper's protocol collects all pages in advance (§VI-A) and
// then runs every experiment against that fixed collection; this package
// makes the collection a durable artifact instead of an in-memory object
// that must be regenerated per process.
//
// The format is a sequence of named sections, each independently
// CRC32-checksummed, ending in a sentinel section:
//
//	magic "L2QSTOR1"
//	section := nameLen uvarint | name | payloadLen uvarint | crc32 (4B LE) | payload
//	...
//	end     := section with name "END" and empty payload
//
// Payload encodings use varints throughout; token streams are dictionary-
// coded against a front-coded sorted term dictionary, and posting lists are
// delta-encoded. Sections unknown to a reader are skipped, so the format
// can grow without breaking old readers.
package store

import (
	"encoding/binary"
	"fmt"
	"math"
)

// enc builds a section payload. All methods append; enc never fails.
type enc struct {
	buf []byte
}

func (e *enc) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *enc) varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

func (e *enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *enc) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// dec consumes a section payload. The first malformed read poisons the
// decoder; callers check err once at the end (sticky-error style, like
// bufio.Scanner).
type dec struct {
	buf []byte
	pos int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("store: truncated or corrupt %s at offset %d", what, d.pos)
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.pos += n
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.pos += n
	return v
}

func (d *dec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.pos) {
		d.fail("string")
		return ""
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

func (d *dec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.pos+8 > len(d.buf) {
		d.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.pos:]))
	d.pos += 8
	return v
}

// count reads a length prefix and sanity-checks it against the remaining
// bytes (each element needs at least one byte), so hostile lengths cannot
// trigger huge allocations.
func (d *dec) count(what string) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.buf)-d.pos) {
		d.fail(what + " count")
		return 0
	}
	return int(n)
}

func (d *dec) done() bool { return d.err == nil && d.pos == len(d.buf) }
