package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"l2q/internal/corpus"
	"l2q/internal/search"
	"l2q/internal/textproc"
)

// magic identifies the file format and its major version.
const magic = "L2QSTOR1"

// Section names. Readers skip sections they do not know.
const (
	secMeta     = "META"
	secDict     = "DICT"
	secEntities = "ENTS"
	secPages    = "PAGE"
	secIndex    = "INDX"
	secEnd      = "END"
)

// maxSectionSize bounds one section payload (a corrupted length prefix must
// not cause a multi-gigabyte allocation).
const maxSectionSize = 1 << 31

// Bundle is what a store file contains: the corpus, and — if the file was
// written with an index — the restored inverted index over c.Pages.
type Bundle struct {
	Corpus *corpus.Corpus
	// Index is nil when the file carries no INDX section; callers can
	// rebuild with search.BuildIndex(c.Pages) at tokenization cost.
	Index *search.Index
}

// Save writes the corpus (and optionally its index) to w. idx may be nil.
// The index must have been built over c.Pages in corpus order.
func Save(w io.Writer, c *corpus.Corpus, idx *search.Index) error {
	if c == nil {
		return fmt.Errorf("store: nil corpus")
	}
	if idx != nil && idx.NumDocs() != c.NumPages() {
		return fmt.Errorf("store: index covers %d docs, corpus has %d pages",
			idx.NumDocs(), c.NumPages())
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return fmt.Errorf("store: write magic: %w", err)
	}

	dict := buildDictionary(func(emit func(textproc.Token)) {
		for _, p := range c.Pages {
			for i := range p.Paras {
				for _, t := range p.Paras[i].Tokens {
					emit(t)
				}
			}
		}
	})

	sections := []struct {
		name   string
		encode func(*Enc)
	}{
		{secMeta, func(e *Enc) { encodeMeta(e, c) }},
		{secDict, dict.encode},
		{secEntities, func(e *Enc) { encodeEntities(e, c) }},
		{secPages, func(e *Enc) { encodePages(e, c, dict) }},
	}
	for _, s := range sections {
		if err := writeSection(bw, s.name, s.encode); err != nil {
			return err
		}
	}
	if idx != nil {
		if err := writeSection(bw, secIndex, func(e *Enc) { encodeIndex(e, idx, dict) }); err != nil {
			return err
		}
	}
	if err := writeSection(bw, secEnd, func(*Enc) {}); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	return nil
}

// Load reads a store file. Unknown sections are skipped; checksum or
// structural damage yields an error naming the section.
func Load(r io.Reader) (*Bundle, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("store: read magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("store: bad magic %q (not a store file or wrong version)", head)
	}

	var (
		meta     *metaInfo
		dict     *dictionary
		ents     []*corpus.Entity
		pages    []*corpus.Page
		postings map[textproc.Token][]search.RawPosting
	)
	for {
		name, payload, err := readSection(br)
		if err != nil {
			return nil, err
		}
		if name == secEnd {
			break
		}
		d := NewDec(payload)
		switch name {
		case secMeta:
			meta = decodeMeta(d)
		case secDict:
			dict = decodeDictionary(d)
		case secEntities:
			ents = decodeEntities(d)
		case secPages:
			if dict == nil {
				return nil, fmt.Errorf("store: PAGE section before DICT")
			}
			pages = decodePages(d, dict)
		case secIndex:
			if dict == nil {
				return nil, fmt.Errorf("store: INDX section before DICT")
			}
			postings = decodeIndex(d, dict)
		default:
			continue // forward compatibility: skip unknown sections
		}
		if d.Err() != nil {
			return nil, fmt.Errorf("store: section %s: %w", name, d.Err())
		}
		if !d.Done() {
			return nil, fmt.Errorf("store: section %s has %d trailing bytes", name, d.Remaining())
		}
	}
	if meta == nil || dict == nil {
		return nil, fmt.Errorf("store: missing META or DICT section")
	}

	c := corpus.New(meta.domain)
	for _, e := range ents {
		if err := c.AddEntity(e); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	for _, p := range pages {
		if err := c.AddPage(p); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	b := &Bundle{Corpus: c}
	if postings != nil {
		idx, err := search.RestoreIndex(c.Pages, postings)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		b.Index = idx
	}
	return b, nil
}

// SaveFile writes the bundle to path atomically (temp file + rename).
func SaveFile(path string, c *corpus.Corpus, idx *search.Index) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := Save(f, c, idx); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: rename: %w", err)
	}
	return nil
}

// LoadFile reads a bundle from path.
func LoadFile(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// writeSection emits one framed, checksummed section.
func writeSection(w *bufio.Writer, name string, encode func(*Enc)) error {
	e := &Enc{}
	encode(e)
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, uint64(len(name)))
	hdr = append(hdr, name...)
	hdr = binary.AppendUvarint(hdr, uint64(e.Len()))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(e.Data()))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("store: write section %s header: %w", name, err)
	}
	if _, err := w.Write(e.Data()); err != nil {
		return fmt.Errorf("store: write section %s: %w", name, err)
	}
	return nil
}

// readSection reads one framed section and verifies its checksum.
func readSection(r *bufio.Reader) (string, []byte, error) {
	nameLen, err := binary.ReadUvarint(r)
	if err != nil {
		return "", nil, fmt.Errorf("store: read section name length: %w", err)
	}
	if nameLen == 0 || nameLen > 64 {
		return "", nil, fmt.Errorf("store: implausible section name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return "", nil, fmt.Errorf("store: read section name: %w", err)
	}
	size, err := binary.ReadUvarint(r)
	if err != nil {
		return "", nil, fmt.Errorf("store: section %s: read size: %w", name, err)
	}
	if size > maxSectionSize {
		return "", nil, fmt.Errorf("store: section %s: implausible size %d", name, size)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return "", nil, fmt.Errorf("store: section %s: read crc: %w", name, err)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return "", nil, fmt.Errorf("store: section %s: read payload: %w", name, err)
	}
	want := binary.LittleEndian.Uint32(crcBuf[:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return "", nil, fmt.Errorf("store: section %s: checksum mismatch (got %08x, want %08x)", name, got, want)
	}
	return string(name), payload, nil
}

// metaInfo is the META section: format metadata.
type metaInfo struct {
	domain corpus.Domain
}

func encodeMeta(e *Enc, c *corpus.Corpus) {
	e.Str(string(c.Domain))
	e.Uvarint(uint64(c.NumEntities()))
	e.Uvarint(uint64(c.NumPages()))
}

func decodeMeta(d *Dec) *metaInfo {
	m := &metaInfo{domain: corpus.Domain(d.Str())}
	d.Uvarint() // entity count (informational)
	d.Uvarint() // page count (informational)
	return m
}
