package store

import (
	"sort"

	"l2q/internal/corpus"
	"l2q/internal/search"
	"l2q/internal/textproc"
)

// encodeEntities writes the ENTS section: one record per entity, attrs
// sorted for byte-deterministic output.
func encodeEntities(e *enc, c *corpus.Corpus) {
	e.uvarint(uint64(len(c.Entities)))
	for _, ent := range c.Entities {
		e.varint(int64(ent.ID))
		e.str(string(ent.Domain))
		e.str(ent.Name)
		e.str(ent.SeedQuery)
		keys := make([]string, 0, len(ent.Attrs))
		for k := range ent.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		e.uvarint(uint64(len(keys)))
		for _, k := range keys {
			e.str(k)
			e.str(ent.Attrs[k])
		}
	}
}

func decodeEntities(d *dec) []*corpus.Entity {
	n := d.count("entities")
	out := make([]*corpus.Entity, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		ent := &corpus.Entity{
			ID:        corpus.EntityID(d.varint()),
			Domain:    corpus.Domain(d.str()),
			Name:      d.str(),
			SeedQuery: d.str(),
		}
		nAttrs := d.count("entity attrs")
		if nAttrs > 0 {
			ent.Attrs = make(map[string]string, nAttrs)
			for j := 0; j < nAttrs && d.err == nil; j++ {
				k := d.str()
				ent.Attrs[k] = d.str()
			}
		}
		out = append(out, ent)
	}
	return out
}

// encodePages writes the PAGE section. Paragraph tokens are dictionary
// IDs; aspects are interned into a small per-section table; links are
// written as deltas from the page's own ID (links cluster near their
// source in generated webs).
func encodePages(e *enc, c *corpus.Corpus, dict *dictionary) {
	// Aspect table for this section.
	aspectID := map[corpus.Aspect]uint64{}
	var aspects []corpus.Aspect
	for _, p := range c.Pages {
		for i := range p.Paras {
			a := p.Paras[i].Aspect
			if _, ok := aspectID[a]; !ok {
				aspectID[a] = uint64(len(aspects))
				aspects = append(aspects, a)
			}
		}
	}
	e.uvarint(uint64(len(aspects)))
	for _, a := range aspects {
		e.str(string(a))
	}

	e.uvarint(uint64(len(c.Pages)))
	for _, p := range c.Pages {
		e.varint(int64(p.ID))
		e.varint(int64(p.Entity))
		e.str(p.URL)
		e.str(p.Title)
		e.uvarint(uint64(len(p.Paras)))
		for i := range p.Paras {
			para := &p.Paras[i]
			e.uvarint(aspectID[para.Aspect])
			e.str(para.Text)
			e.uvarint(uint64(len(para.Tokens)))
			for _, t := range para.Tokens {
				e.uvarint(dict.id(t))
			}
		}
		e.uvarint(uint64(len(p.Links)))
		for _, l := range p.Links {
			e.varint(int64(l) - int64(p.ID))
		}
	}
}

func decodePages(d *dec, dict *dictionary) []*corpus.Page {
	nAspects := d.count("aspects")
	aspects := make([]corpus.Aspect, 0, nAspects)
	for i := 0; i < nAspects && d.err == nil; i++ {
		aspects = append(aspects, corpus.Aspect(d.str()))
	}

	nPages := d.count("pages")
	out := make([]*corpus.Page, 0, nPages)
	for i := 0; i < nPages && d.err == nil; i++ {
		p := &corpus.Page{
			ID:     corpus.PageID(d.varint()),
			Entity: corpus.EntityID(d.varint()),
			URL:    d.str(),
			Title:  d.str(),
		}
		nParas := d.count("paragraphs")
		p.Paras = make([]corpus.Paragraph, 0, nParas)
		for j := 0; j < nParas && d.err == nil; j++ {
			aid := d.uvarint()
			if aid >= uint64(len(aspects)) {
				d.fail("aspect id")
				break
			}
			para := corpus.Paragraph{Aspect: aspects[aid], Text: d.str()}
			nToks := d.count("tokens")
			para.Tokens = make([]textproc.Token, 0, nToks)
			for k := 0; k < nToks && d.err == nil; k++ {
				t, ok := dict.term(d.uvarint())
				if !ok {
					d.fail("token id")
					break
				}
				para.Tokens = append(para.Tokens, t)
			}
			p.Paras = append(p.Paras, para)
		}
		nLinks := d.count("links")
		for j := 0; j < nLinks && d.err == nil; j++ {
			p.Links = append(p.Links, corpus.PageID(int64(p.ID)+d.varint()))
		}
		out = append(out, p)
	}
	return out
}

// encodeIndex writes the INDX section: per term (dictionary ID), the
// posting list with document-ordinal deltas and term frequencies.
func encodeIndex(e *enc, idx *search.Index, dict *dictionary) {
	e.uvarint(uint64(idx.NumTerms()))
	idx.DumpPostings(func(term textproc.Token, posts []search.RawPosting) {
		e.uvarint(dict.id(term))
		e.uvarint(uint64(len(posts)))
		prev := int32(0)
		for _, p := range posts {
			e.uvarint(uint64(p.Doc - prev))
			e.uvarint(uint64(p.TF))
			prev = p.Doc
		}
	})
}

func decodeIndex(d *dec, dict *dictionary) map[textproc.Token][]search.RawPosting {
	nTerms := d.count("index terms")
	out := make(map[textproc.Token][]search.RawPosting, nTerms)
	for i := 0; i < nTerms && d.err == nil; i++ {
		term, ok := dict.term(d.uvarint())
		if !ok {
			d.fail("index term id")
			return out
		}
		nPosts := d.count("postings")
		posts := make([]search.RawPosting, 0, nPosts)
		doc := int32(0)
		for j := 0; j < nPosts && d.err == nil; j++ {
			doc += int32(d.uvarint())
			posts = append(posts, search.RawPosting{Doc: doc, TF: int32(d.uvarint())})
		}
		out[term] = posts
	}
	return out
}
