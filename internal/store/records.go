package store

import (
	"sort"

	"l2q/internal/corpus"
	"l2q/internal/search"
	"l2q/internal/textproc"
)

// encodeEntities writes the ENTS section: one record per entity, attrs
// sorted for byte-deterministic output.
func encodeEntities(e *Enc, c *corpus.Corpus) {
	e.Uvarint(uint64(len(c.Entities)))
	for _, ent := range c.Entities {
		e.Varint(int64(ent.ID))
		e.Str(string(ent.Domain))
		e.Str(ent.Name)
		e.Str(ent.SeedQuery)
		keys := make([]string, 0, len(ent.Attrs))
		for k := range ent.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		e.Uvarint(uint64(len(keys)))
		for _, k := range keys {
			e.Str(k)
			e.Str(ent.Attrs[k])
		}
	}
}

func decodeEntities(d *Dec) []*corpus.Entity {
	n := d.Count("entities")
	out := make([]*corpus.Entity, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		ent := &corpus.Entity{
			ID:        corpus.EntityID(d.Varint()),
			Domain:    corpus.Domain(d.Str()),
			Name:      d.Str(),
			SeedQuery: d.Str(),
		}
		nAttrs := d.Count("entity attrs")
		if nAttrs > 0 {
			ent.Attrs = make(map[string]string, nAttrs)
			for j := 0; j < nAttrs && d.Err() == nil; j++ {
				k := d.Str()
				ent.Attrs[k] = d.Str()
			}
		}
		out = append(out, ent)
	}
	return out
}

// encodePages writes the PAGE section. Paragraph tokens are dictionary
// IDs; aspects are interned into a small per-section table; links are
// written as deltas from the page's own ID (links cluster near their
// source in generated webs).
func encodePages(e *Enc, c *corpus.Corpus, dict *dictionary) {
	// Aspect table for this section.
	aspectID := map[corpus.Aspect]uint64{}
	var aspects []corpus.Aspect
	for _, p := range c.Pages {
		for i := range p.Paras {
			a := p.Paras[i].Aspect
			if _, ok := aspectID[a]; !ok {
				aspectID[a] = uint64(len(aspects))
				aspects = append(aspects, a)
			}
		}
	}
	e.Uvarint(uint64(len(aspects)))
	for _, a := range aspects {
		e.Str(string(a))
	}

	e.Uvarint(uint64(len(c.Pages)))
	for _, p := range c.Pages {
		e.Varint(int64(p.ID))
		e.Varint(int64(p.Entity))
		e.Str(p.URL)
		e.Str(p.Title)
		e.Uvarint(uint64(len(p.Paras)))
		for i := range p.Paras {
			para := &p.Paras[i]
			e.Uvarint(aspectID[para.Aspect])
			e.Str(para.Text)
			e.Uvarint(uint64(len(para.Tokens)))
			for _, t := range para.Tokens {
				e.Uvarint(dict.id(t))
			}
		}
		e.Uvarint(uint64(len(p.Links)))
		for _, l := range p.Links {
			e.Varint(int64(l) - int64(p.ID))
		}
	}
}

func decodePages(d *Dec, dict *dictionary) []*corpus.Page {
	nAspects := d.Count("aspects")
	aspects := make([]corpus.Aspect, 0, nAspects)
	for i := 0; i < nAspects && d.Err() == nil; i++ {
		aspects = append(aspects, corpus.Aspect(d.Str()))
	}

	nPages := d.Count("pages")
	out := make([]*corpus.Page, 0, nPages)
	for i := 0; i < nPages && d.Err() == nil; i++ {
		p := &corpus.Page{
			ID:     corpus.PageID(d.Varint()),
			Entity: corpus.EntityID(d.Varint()),
			URL:    d.Str(),
			Title:  d.Str(),
		}
		nParas := d.Count("paragraphs")
		p.Paras = make([]corpus.Paragraph, 0, nParas)
		for j := 0; j < nParas && d.Err() == nil; j++ {
			aid := d.Uvarint()
			if aid >= uint64(len(aspects)) {
				d.Fail("aspect id")
				break
			}
			para := corpus.Paragraph{Aspect: aspects[aid], Text: d.Str()}
			nToks := d.Count("tokens")
			para.Tokens = make([]textproc.Token, 0, nToks)
			for k := 0; k < nToks && d.Err() == nil; k++ {
				t, ok := dict.term(d.Uvarint())
				if !ok {
					d.Fail("token id")
					break
				}
				para.Tokens = append(para.Tokens, t)
			}
			p.Paras = append(p.Paras, para)
		}
		nLinks := d.Count("links")
		for j := 0; j < nLinks && d.Err() == nil; j++ {
			p.Links = append(p.Links, corpus.PageID(int64(p.ID)+d.Varint()))
		}
		out = append(out, p)
	}
	return out
}

// encodeIndex writes the INDX section: per term (dictionary ID), the
// posting list with document-ordinal deltas and term frequencies.
func encodeIndex(e *Enc, idx *search.Index, dict *dictionary) {
	e.Uvarint(uint64(idx.NumTerms()))
	idx.DumpPostings(func(term textproc.Token, posts []search.RawPosting) {
		e.Uvarint(dict.id(term))
		e.Uvarint(uint64(len(posts)))
		prev := int32(0)
		for _, p := range posts {
			e.Uvarint(uint64(p.Doc - prev))
			e.Uvarint(uint64(p.TF))
			prev = p.Doc
		}
	})
}

func decodeIndex(d *Dec, dict *dictionary) map[textproc.Token][]search.RawPosting {
	nTerms := d.Count("index terms")
	out := make(map[textproc.Token][]search.RawPosting, nTerms)
	for i := 0; i < nTerms && d.Err() == nil; i++ {
		term, ok := dict.term(d.Uvarint())
		if !ok {
			d.Fail("index term id")
			return out
		}
		nPosts := d.Count("postings")
		posts := make([]search.RawPosting, 0, nPosts)
		doc := int32(0)
		for j := 0; j < nPosts && d.Err() == nil; j++ {
			doc += int32(d.Uvarint())
			posts = append(posts, search.RawPosting{Doc: doc, TF: int32(d.Uvarint())})
		}
		out[term] = posts
	}
	return out
}
