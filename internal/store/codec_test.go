package store

import (
	"math"
	"testing"
	"testing/quick"

	"l2q/internal/textproc"
)

func TestEncDecPrimitivesRoundTrip(t *testing.T) {
	f := func(u uint64, i int64, s string, fl float64) bool {
		if math.IsNaN(fl) {
			fl = 0 // NaN != NaN would fail the comparison, not the codec
		}
		e := &Enc{}
		e.Uvarint(u)
		e.Varint(i)
		e.Str(s)
		e.F64(fl)
		d := NewDec(e.Data())
		gu := d.Uvarint()
		gi := d.Varint()
		gs := d.Str()
		gf := d.F64()
		return d.Err() == nil && d.Done() && gu == u && gi == i && gs == s && gf == fl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecStickyError(t *testing.T) {
	d := NewDec([]byte{0xff}) // truncated uvarint
	_ = d.Uvarint()
	if d.Err() == nil {
		t.Fatal("expected error")
	}
	// Every subsequent read must stay failed and return zero values.
	if v := d.Uvarint(); v != 0 {
		t.Errorf("uvarint after error = %d", v)
	}
	if s := d.Str(); s != "" {
		t.Errorf("str after error = %q", s)
	}
	if v := d.Varint(); v != 0 {
		t.Errorf("varint after error = %d", v)
	}
	if v := d.F64(); v != 0 {
		t.Errorf("f64 after error = %v", v)
	}
}

func TestDecStringBounds(t *testing.T) {
	e := &Enc{}
	e.Uvarint(1000) // claims 1000 bytes
	d := NewDec(e.Data())
	if s := d.Str(); s != "" || d.Err() == nil {
		t.Fatalf("oversized string accepted: %q", s)
	}
}

func TestDecCountBounds(t *testing.T) {
	e := &Enc{}
	e.Uvarint(1 << 40) // hostile count
	d := NewDec(e.Data())
	if n := d.Count("test"); n != 0 || d.Err() == nil {
		t.Fatalf("hostile count accepted: %d", n)
	}
}

func TestDictionaryRoundTrip(t *testing.T) {
	f := func(words []string) bool {
		seen := map[string]bool{}
		dict := buildDictionary(func(emit func(textproc.Token)) {
			for _, w := range words {
				emit(w)
				seen[w] = true
			}
		})
		if len(dict.terms) != len(seen) {
			return false
		}
		e := &Enc{}
		dict.encode(e)
		d := NewDec(e.Data())
		got := decodeDictionary(d)
		if d.Err() != nil || !d.Done() {
			return false
		}
		if len(got.terms) != len(dict.terms) {
			return false
		}
		for i, term := range dict.terms {
			if got.terms[i] != term || got.ids[term] != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDictionaryFrontCodingSharedPrefixes(t *testing.T) {
	dict := buildDictionary(func(emit func(textproc.Token)) {
		for _, w := range []string{"research", "researcher", "researchers", "rest", "zebra"} {
			emit(w)
		}
	})
	e := &Enc{}
	dict.encode(e)
	// Front coding must beat naive length-prefixed strings here.
	naive := 0
	for _, w := range dict.terms {
		naive += 1 + len(w)
	}
	if e.Len() >= naive {
		t.Errorf("front-coded size %d >= naive %d", e.Len(), naive)
	}
	d := NewDec(e.Data())
	got := decodeDictionary(d)
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	for i := range dict.terms {
		if got.terms[i] != dict.terms[i] {
			t.Errorf("term %d = %q, want %q", i, got.terms[i], dict.terms[i])
		}
	}
}

func TestDictionaryUnicodeBoundaries(t *testing.T) {
	words := []string{"caf", "café", "cafés", "日本", "日本語"}
	dict := buildDictionary(func(emit func(textproc.Token)) {
		for _, w := range words {
			emit(w)
		}
	})
	e := &Enc{}
	dict.encode(e)
	d := NewDec(e.Data())
	got := decodeDictionary(d)
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	for i := range dict.terms {
		if got.terms[i] != dict.terms[i] {
			t.Errorf("term %d = %q, want %q", i, got.terms[i], dict.terms[i])
		}
	}
}

func TestDictionaryLookupMisses(t *testing.T) {
	dict := buildDictionary(func(emit func(textproc.Token)) { emit("only") })
	if _, ok := dict.term(1); ok {
		t.Error("out-of-range term id resolved")
	}
	if _, ok := dict.term(0); !ok {
		t.Error("valid term id failed")
	}
}
