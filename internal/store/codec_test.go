package store

import (
	"math"
	"testing"
	"testing/quick"

	"l2q/internal/textproc"
)

func TestEncDecPrimitivesRoundTrip(t *testing.T) {
	f := func(u uint64, i int64, s string, fl float64) bool {
		if math.IsNaN(fl) {
			fl = 0 // NaN != NaN would fail the comparison, not the codec
		}
		e := &enc{}
		e.uvarint(u)
		e.varint(i)
		e.str(s)
		e.f64(fl)
		d := &dec{buf: e.buf}
		gu := d.uvarint()
		gi := d.varint()
		gs := d.str()
		gf := d.f64()
		return d.err == nil && d.done() && gu == u && gi == i && gs == s && gf == fl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecStickyError(t *testing.T) {
	d := &dec{buf: []byte{0xff}} // truncated uvarint
	_ = d.uvarint()
	if d.err == nil {
		t.Fatal("expected error")
	}
	// Every subsequent read must stay failed and return zero values.
	if v := d.uvarint(); v != 0 {
		t.Errorf("uvarint after error = %d", v)
	}
	if s := d.str(); s != "" {
		t.Errorf("str after error = %q", s)
	}
	if v := d.varint(); v != 0 {
		t.Errorf("varint after error = %d", v)
	}
	if v := d.f64(); v != 0 {
		t.Errorf("f64 after error = %v", v)
	}
}

func TestDecStringBounds(t *testing.T) {
	e := &enc{}
	e.uvarint(1000) // claims 1000 bytes
	d := &dec{buf: e.buf}
	if s := d.str(); s != "" || d.err == nil {
		t.Fatalf("oversized string accepted: %q", s)
	}
}

func TestDecCountBounds(t *testing.T) {
	e := &enc{}
	e.uvarint(1 << 40) // hostile count
	d := &dec{buf: e.buf}
	if n := d.count("test"); n != 0 || d.err == nil {
		t.Fatalf("hostile count accepted: %d", n)
	}
}

func TestDictionaryRoundTrip(t *testing.T) {
	f := func(words []string) bool {
		seen := map[string]bool{}
		dict := buildDictionary(func(emit func(textproc.Token)) {
			for _, w := range words {
				emit(w)
				seen[w] = true
			}
		})
		if len(dict.terms) != len(seen) {
			return false
		}
		e := &enc{}
		dict.encode(e)
		d := &dec{buf: e.buf}
		got := decodeDictionary(d)
		if d.err != nil || !d.done() {
			return false
		}
		if len(got.terms) != len(dict.terms) {
			return false
		}
		for i, term := range dict.terms {
			if got.terms[i] != term || got.ids[term] != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDictionaryFrontCodingSharedPrefixes(t *testing.T) {
	dict := buildDictionary(func(emit func(textproc.Token)) {
		for _, w := range []string{"research", "researcher", "researchers", "rest", "zebra"} {
			emit(w)
		}
	})
	e := &enc{}
	dict.encode(e)
	// Front coding must beat naive length-prefixed strings here.
	naive := 0
	for _, w := range dict.terms {
		naive += 1 + len(w)
	}
	if len(e.buf) >= naive {
		t.Errorf("front-coded size %d >= naive %d", len(e.buf), naive)
	}
	d := &dec{buf: e.buf}
	got := decodeDictionary(d)
	if d.err != nil {
		t.Fatal(d.err)
	}
	for i := range dict.terms {
		if got.terms[i] != dict.terms[i] {
			t.Errorf("term %d = %q, want %q", i, got.terms[i], dict.terms[i])
		}
	}
}

func TestDictionaryUnicodeBoundaries(t *testing.T) {
	words := []string{"caf", "café", "cafés", "日本", "日本語"}
	dict := buildDictionary(func(emit func(textproc.Token)) {
		for _, w := range words {
			emit(w)
		}
	})
	e := &enc{}
	dict.encode(e)
	d := &dec{buf: e.buf}
	got := decodeDictionary(d)
	if d.err != nil {
		t.Fatal(d.err)
	}
	for i := range dict.terms {
		if got.terms[i] != dict.terms[i] {
			t.Errorf("term %d = %q, want %q", i, got.terms[i], dict.terms[i])
		}
	}
}

func TestDictionaryLookupMisses(t *testing.T) {
	dict := buildDictionary(func(emit func(textproc.Token)) { emit("only") })
	if _, ok := dict.term(1); ok {
		t.Error("out-of-range term id resolved")
	}
	if _, ok := dict.term(0); !ok {
		t.Error("valid term id failed")
	}
}
