package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"l2q/internal/corpus"
	"l2q/internal/search"
	"l2q/internal/synth"
	"l2q/internal/textproc"
)

func testBundle(t *testing.T, domain corpus.Domain) (*corpus.Corpus, *search.Index) {
	t.Helper()
	g, err := synth.Generate(synth.TestConfig(domain))
	if err != nil {
		t.Fatal(err)
	}
	// Give some pages links so the link encoding is exercised.
	for i, p := range g.Corpus.Pages {
		if i%3 == 0 && i+2 < g.Corpus.NumPages() {
			p.Links = []corpus.PageID{p.ID + 1, p.ID + 2, 0}
		}
	}
	return g.Corpus, search.BuildIndex(g.Corpus.Pages)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, domain := range []corpus.Domain{synth.DomainResearchers, synth.DomainCars} {
		t.Run(string(domain), func(t *testing.T) {
			c, idx := testBundle(t, domain)
			var buf bytes.Buffer
			if err := Save(&buf, c, idx); err != nil {
				t.Fatal(err)
			}
			b, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			assertCorpusEqual(t, c, b.Corpus)
			if b.Index == nil {
				t.Fatal("index missing from bundle")
			}
			assertIndexEqual(t, idx, b.Index)
		})
	}
}

func TestSaveLoadWithoutIndex(t *testing.T) {
	c, _ := testBundle(t, synth.DomainCars)
	var buf bytes.Buffer
	if err := Save(&buf, c, nil); err != nil {
		t.Fatal(err)
	}
	b, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Index != nil {
		t.Error("expected nil index")
	}
	assertCorpusEqual(t, c, b.Corpus)
}

func TestSaveFileLoadFile(t *testing.T) {
	c, idx := testBundle(t, synth.DomainCars)
	path := filepath.Join(t.TempDir(), "corpus.l2q")
	if err := SaveFile(path, c, idx); err != nil {
		t.Fatal(err)
	}
	b, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertCorpusEqual(t, c, b.Corpus)
	assertIndexEqual(t, idx, b.Index)
}

// TestRestoredIndexSearchIdentical verifies the restored index ranks
// exactly like the original for real queries.
func TestRestoredIndexSearchIdentical(t *testing.T) {
	c, idx := testBundle(t, synth.DomainResearchers)
	var buf bytes.Buffer
	if err := Save(&buf, c, idx); err != nil {
		t.Fatal(err)
	}
	b, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := search.NewEngine(idx)
	restored := search.NewEngine(b.Index)

	queries := [][]textproc.Token{
		c.Entities[0].SeedTokens(),
		{"research"},
		{"research", "award"},
		{"nonexistent-token-xyz"},
	}
	for _, q := range queries {
		ro := orig.Search(q)
		rr := restored.Search(q)
		if len(ro) != len(rr) {
			t.Fatalf("query %v: %d vs %d results", q, len(ro), len(rr))
		}
		for i := range ro {
			if ro[i].Page.ID != rr[i].Page.ID {
				t.Errorf("query %v rank %d: page %d vs %d", q, i, ro[i].Page.ID, rr[i].Page.ID)
			}
			if diff := ro[i].Score - rr[i].Score; diff > 1e-12 || diff < -1e-12 {
				t.Errorf("query %v rank %d: score %v vs %v", q, i, ro[i].Score, rr[i].Score)
			}
		}
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	if _, err := Load(strings.NewReader("NOTASTORE-FILE")); err == nil {
		t.Fatal("expected error for bad magic")
	}
	if _, err := Load(strings.NewReader("L2")); err == nil {
		t.Fatal("expected error for short file")
	}
}

func TestLoadDetectsCorruption(t *testing.T) {
	c, idx := testBundle(t, synth.DomainCars)
	var buf bytes.Buffer
	if err := Save(&buf, c, idx); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	// Flip one byte in the middle of the file: some section's checksum
	// (or frame) must catch it.
	for _, off := range []int{len(clean) / 4, len(clean) / 2, 3 * len(clean) / 4} {
		bad := append([]byte(nil), clean...)
		bad[off] ^= 0x5a
		if _, err := Load(bytes.NewReader(bad)); err == nil {
			t.Errorf("corruption at offset %d not detected", off)
		}
	}
}

func TestLoadDetectsTruncation(t *testing.T) {
	c, idx := testBundle(t, synth.DomainCars)
	var buf bytes.Buffer
	if err := Save(&buf, c, idx); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for _, n := range []int{len(clean) - 1, len(clean) / 2, len(magic) + 1} {
		if _, err := Load(bytes.NewReader(clean[:n])); err == nil {
			t.Errorf("truncation to %d bytes not detected", n)
		}
	}
}

func TestLoadSkipsUnknownSections(t *testing.T) {
	c, _ := testBundle(t, synth.DomainCars)
	var buf bytes.Buffer
	if err := Save(&buf, c, nil); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	// Splice an unknown (but well-formed) section in front of the END
	// sentinel: readers must skip it.
	endFrame := sectionFrame("END", nil)
	if !bytes.HasSuffix(clean, endFrame) {
		t.Fatal("file does not end with the END sentinel frame")
	}
	future := sectionFrame("FUTR", []byte("payload from the future"))
	spliced := append(append(clean[:len(clean)-len(endFrame)], future...), endFrame...)

	b, err := Load(bytes.NewReader(spliced))
	if err != nil {
		t.Fatal(err)
	}
	assertCorpusEqual(t, c, b.Corpus)
}

// sectionFrame mirrors writeSection's framing for test construction.
func sectionFrame(name string, payload []byte) []byte {
	var out []byte
	out = binary.AppendUvarint(out, uint64(len(name)))
	out = append(out, name...)
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

func TestSaveValidation(t *testing.T) {
	if err := Save(&bytes.Buffer{}, nil, nil); err == nil {
		t.Error("nil corpus accepted")
	}
	c, _ := testBundle(t, synth.DomainCars)
	wrongIdx := search.BuildIndex(c.Pages[:1])
	if err := Save(&bytes.Buffer{}, c, wrongIdx); err == nil {
		t.Error("mismatched index accepted")
	}
}

func assertCorpusEqual(t *testing.T, want, got *corpus.Corpus) {
	t.Helper()
	if want.Domain != got.Domain {
		t.Fatalf("domain %q vs %q", got.Domain, want.Domain)
	}
	if got.NumEntities() != want.NumEntities() || got.NumPages() != want.NumPages() {
		t.Fatalf("size %d/%d vs %d/%d",
			got.NumEntities(), got.NumPages(), want.NumEntities(), want.NumPages())
	}
	for i, we := range want.Entities {
		ge := got.Entities[i]
		if we.ID != ge.ID || we.Name != ge.Name || we.SeedQuery != ge.SeedQuery ||
			we.Domain != ge.Domain || !reflect.DeepEqual(we.Attrs, ge.Attrs) {
			t.Fatalf("entity %d differs: %+v vs %+v", i, ge, we)
		}
	}
	for i, wp := range want.Pages {
		gp := got.Pages[i]
		if wp.ID != gp.ID || wp.Entity != gp.Entity || wp.URL != gp.URL || wp.Title != gp.Title {
			t.Fatalf("page %d header differs", i)
		}
		if !reflect.DeepEqual(wp.Links, gp.Links) {
			t.Fatalf("page %d links %v vs %v", i, gp.Links, wp.Links)
		}
		if len(wp.Paras) != len(gp.Paras) {
			t.Fatalf("page %d has %d paras, want %d", i, len(gp.Paras), len(wp.Paras))
		}
		for j := range wp.Paras {
			w, g := &wp.Paras[j], &gp.Paras[j]
			if w.Text != g.Text || w.Aspect != g.Aspect || !reflect.DeepEqual(w.Tokens, g.Tokens) {
				t.Fatalf("page %d para %d differs", i, j)
			}
		}
	}
}

func assertIndexEqual(t *testing.T, want, got *search.Index) {
	t.Helper()
	if want.NumDocs() != got.NumDocs() || want.NumTerms() != got.NumTerms() ||
		want.TotalTokens() != got.TotalTokens() {
		t.Fatalf("index stats: docs %d/%d terms %d/%d toks %d/%d",
			got.NumDocs(), want.NumDocs(), got.NumTerms(), want.NumTerms(),
			got.TotalTokens(), want.TotalTokens())
	}
	wantPosts := map[string][]search.RawPosting{}
	want.DumpPostings(func(term textproc.Token, posts []search.RawPosting) {
		wantPosts[term] = append([]search.RawPosting(nil), posts...)
	})
	got.DumpPostings(func(term textproc.Token, posts []search.RawPosting) {
		if !reflect.DeepEqual(wantPosts[term], posts) {
			t.Fatalf("postings for %q differ", term)
		}
		delete(wantPosts, term)
	})
	if len(wantPosts) != 0 {
		t.Fatalf("%d terms missing from restored index", len(wantPosts))
	}
}

// TestSaveLoadThroughPipe proves the format is truly streaming: writer and
// reader connected by an os.Pipe with no seeking.
func TestSaveLoadThroughPipe(t *testing.T) {
	c, idx := testBundle(t, synth.DomainCars)
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		defer pw.Close()
		errCh <- Save(pw, c, idx)
	}()
	b, err := Load(pr)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	assertCorpusEqual(t, c, b.Corpus)
	assertIndexEqual(t, idx, b.Index)
}
