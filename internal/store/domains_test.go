package store

import (
	"bytes"
	"reflect"
	"testing"

	"l2q/internal/classify"
	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/synth"
	"l2q/internal/types"
)

// learnArtifact trains real classifiers and domain models over a small
// synthetic corpus — the artifact producers (l2qstore domains) persist.
func learnArtifact(t testing.TB) (*DomainArtifact, *corpus.Corpus, *classify.Set) {
	t.Helper()
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	c := g.Corpus
	aspects := c.Aspects()
	cls := classify.TrainSet(aspects, c.Pages)
	cfg := core.DefaultConfig()
	cfg.Tokenizer = ReconstructTokenizer(c)
	rec := types.NewRegexRecognizer()
	var ids []corpus.EntityID
	for _, e := range c.Entities[:c.NumEntities()/2] {
		ids = append(ids, e.ID)
	}
	art := &DomainArtifact{CorpusDomain: c.Domain, NumEntities: c.NumEntities(), NumPages: c.NumPages()}
	for _, a := range aspects {
		if !cls.Has(a) {
			continue
		}
		dm, err := core.LearnDomain(cfg, a, c, ids, cls.YFunc(a), rec)
		if err != nil {
			t.Fatal(err)
		}
		art.Models = append(art.Models, dm)
		art.Classifiers = append(art.Classifiers, cls.ByAspect[a].Params())
	}
	if len(art.Models) == 0 {
		t.Fatal("no models learned")
	}
	return art, c, cls
}

// TestDomainsRoundTrip: every model and classifier parameter survives the
// codec exactly — the float64s carry IEEE bits verbatim, so a warm-booted
// server computes byte-identical selections.
func TestDomainsRoundTrip(t *testing.T) {
	art, c, cls := learnArtifact(t)

	var buf bytes.Buffer
	if err := SaveDomains(&buf, art); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDomains(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.CorpusDomain != art.CorpusDomain ||
		loaded.NumEntities != art.NumEntities || loaded.NumPages != art.NumPages {
		t.Fatalf("meta mismatch: %+v", loaded)
	}
	if len(loaded.Models) != len(art.Models) {
		t.Fatalf("loaded %d models, saved %d", len(loaded.Models), len(art.Models))
	}
	for i, dm := range art.Models {
		if !reflect.DeepEqual(loaded.Models[i], dm) {
			t.Errorf("model %s did not round-trip exactly", dm.Aspect)
		}
	}

	// Restored classifiers must predict identically on every page.
	set := loaded.ClassifierSet()
	if set == nil {
		t.Fatal("no classifiers restored")
	}
	for _, dm := range art.Models {
		a := dm.Aspect
		for _, p := range c.Pages {
			if set.Relevant(a, p) != cls.Relevant(a, p) {
				t.Fatalf("aspect %s page %d: restored classifier disagrees", a, p.ID)
			}
		}
	}
}

// TestDomainsDeterministicBytes: the same artifact always encodes to the
// same bytes (maps are sorted before encoding).
func TestDomainsDeterministicBytes(t *testing.T) {
	art, _, _ := learnArtifact(t)
	var a, b bytes.Buffer
	if err := SaveDomains(&a, art); err != nil {
		t.Fatal(err)
	}
	if err := SaveDomains(&b, art); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of one artifact produced different bytes")
	}
}

// TestDomainsCorruption: a flipped payload byte fails the section CRC
// instead of decoding garbage.
func TestDomainsCorruption(t *testing.T) {
	art, _, _ := learnArtifact(t)
	var buf bytes.Buffer
	if err := SaveDomains(&buf, art); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	corrupted := append([]byte(nil), raw...)
	corrupted[len(corrupted)/2] ^= 0xff
	if _, err := LoadDomains(bytes.NewReader(corrupted)); err == nil {
		t.Fatal("corrupted artifact loaded without error")
	}

	if _, err := LoadDomains(bytes.NewReader([]byte("NOTADOM"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestDomainsFileRoundTrip covers the atomic file helpers.
func TestDomainsFileRoundTrip(t *testing.T) {
	art, _, _ := learnArtifact(t)
	path := t.TempDir() + "/x.domains"
	if err := SaveDomainsFile(path, art); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDomainsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// learnArtifact builds models in sorted-aspect order, which is also
	// the codec's canonical order, so a direct compare is exact.
	if !reflect.DeepEqual(loaded.Models, art.Models) {
		t.Fatal("file round trip lost model state")
	}
}
