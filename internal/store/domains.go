package store

// Domain-artifact files persist the output of the domain phase — trained
// core.DomainModels plus the aspect classifiers that materialize Y — so a
// server boots warm instead of re-learning every domain model on its
// first harvest request (the paper's own efficiency note: the domain
// phase "is only executed once", §VI-C — which is precisely why its
// output should be a durable artifact). The format mirrors the store
// file: a magic header, framed CRC32-checksummed sections, and an END
// sentinel, with the same forward-compatibility rule (skip unknown
// sections).
//
//	magic "L2QDOM1"
//	DMET section: corpus domain str | entities uvarint | pages uvarint
//	DOMS section: count | per model: aspect str | 5 template maps |
//	    4 query maps | candidates | relFraction f64 | numEntities |
//	    numPages   (maps encoded sorted by key, so files are
//	    deterministic byte-for-byte)
//	CLSF section: count | per classifier: aspect str | logPrior f64×2 |
//	    logUnk f64×2 | per class: vocab count | (token str, f64)...
//	END sentinel
//
// Every float64 travels verbatim (IEEE bits), so a loaded model selects
// byte-identically to the freshly learned one.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"

	"l2q/internal/classify"
	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/textproc"
	"l2q/internal/types"
)

// domMagic identifies a domain-artifact file and its major version.
const domMagic = "L2QDOM1"

const (
	secDomMeta     = "DMET"
	secDomains     = "DOMS"
	secClassifiers = "CLSF"
)

// DomainArtifact is what a domain-artifact file contains: the trained
// domain models and aspect classifiers of one corpus, plus the corpus
// identity they were learned from (informational, surfaced at load so an
// operator can spot a corpus/artifact mismatch).
type DomainArtifact struct {
	// CorpusDomain, NumEntities and NumPages identify the corpus the
	// models were learned over.
	CorpusDomain corpus.Domain
	NumEntities  int
	NumPages     int
	// Models holds one trained DomainModel per aspect, sorted by aspect.
	Models []*core.DomainModel
	// Classifiers holds the trained aspect classifiers, sorted by
	// aspect; may be empty when the producer persisted models only.
	Classifiers []classify.Params
}

// ModelMap returns the artifact's models keyed by aspect — the shape
// webapi.HarvestBackend.Preload consumes.
func (a *DomainArtifact) ModelMap() map[corpus.Aspect]*core.DomainModel {
	m := make(map[corpus.Aspect]*core.DomainModel, len(a.Models))
	for _, dm := range a.Models {
		m[dm.Aspect] = dm
	}
	return m
}

// ModelByAspect returns the artifact's domain model for an aspect, or nil.
func (a *DomainArtifact) ModelByAspect(asp corpus.Aspect) *core.DomainModel {
	for _, dm := range a.Models {
		if dm.Aspect == asp {
			return dm
		}
	}
	return nil
}

// ClassifierSet reconstructs a classify.Set from the persisted
// classifier parameters (nil when the artifact carries none).
func (a *DomainArtifact) ClassifierSet() *classify.Set {
	if len(a.Classifiers) == 0 {
		return nil
	}
	cs := make([]*classify.Classifier, 0, len(a.Classifiers))
	for _, p := range a.Classifiers {
		cs = append(cs, classify.FromParams(p))
	}
	return classify.NewSet(cs)
}

// DomainLearner is the canonical warm-boot learning protocol, shared by
// cmd/l2qstore's `domains` subcommand (precompute an artifact) and
// cmd/l2qserve's harvest backend (lazy fallback): aspect classifiers
// trained on the WHOLE served corpus, domain models learned over the
// first half of the corpus entities under one config. Keeping the
// protocol in one place — not mirrored by hand across the two commands —
// is what makes a precomputed artifact select byte-identically to a
// cold-booted server.
type DomainLearner struct {
	// Corpus, Cfg and Rec are the learning inputs (Cfg carries the
	// tokenizer and LearnWorkers).
	Corpus *corpus.Corpus
	Cfg    core.Config
	Rec    types.Recognizer
	// Cls holds the aspect classifiers; Aspects lists the aspects with
	// training signal (the servable set); DomainIDs is the canonical
	// first-half domain sample.
	Cls       *classify.Set
	Aspects   []corpus.Aspect
	DomainIDs []corpus.EntityID
}

// NewDomainLearner wires the protocol for a corpus. tok is the (possibly
// reconstructed) tokenizer; learnWorkers bounds both classifier training
// and each model's counting pass. preTrained, when non-nil (classifiers
// restored from an artifact), is used as-is — aspects it does not cover
// are trained here and merged, so an artifact built before a corpus
// gained an aspect degrades to lazy training instead of silently
// disabling the aspect.
func NewDomainLearner(c *corpus.Corpus, tok *textproc.Tokenizer,
	rec types.Recognizer, learnWorkers int, preTrained *classify.Set) *DomainLearner {

	aspects := c.Aspects()
	cls := preTrained
	if cls == nil {
		cls = classify.TrainSetWorkers(aspects, c.Pages, learnWorkers)
	} else {
		var missing []corpus.Aspect
		for _, a := range aspects {
			if !cls.Has(a) {
				missing = append(missing, a)
			}
		}
		if len(missing) > 0 {
			fresh := classify.TrainSetWorkers(missing, c.Pages, learnWorkers)
			for a, cl := range fresh.ByAspect {
				cls.ByAspect[a] = cl
			}
		}
	}
	var usable []corpus.Aspect
	for _, a := range aspects {
		if cls.Has(a) {
			usable = append(usable, a)
		}
	}
	cfg := core.DefaultConfig()
	cfg.Tokenizer = tok
	cfg.LearnWorkers = learnWorkers
	ids := make([]corpus.EntityID, 0, c.NumEntities()/2)
	for _, e := range c.Entities[:c.NumEntities()/2] {
		ids = append(ids, e.ID)
	}
	return &DomainLearner{Corpus: c, Cfg: cfg, Rec: rec, Cls: cls, Aspects: usable, DomainIDs: ids}
}

// Learn learns one aspect's domain model under the protocol — the shape
// webapi.HarvestBackend.DomainModel consumes.
func (l *DomainLearner) Learn(a corpus.Aspect) (*core.DomainModel, error) {
	return core.LearnDomain(l.Cfg, a, l.Corpus, l.DomainIDs, l.Cls.YFunc(a), l.Rec)
}

// Artifact learns every servable aspect and packages the persistable
// DomainArtifact (models + classifier parameters).
func (l *DomainLearner) Artifact() (*DomainArtifact, error) {
	art := &DomainArtifact{
		CorpusDomain: l.Corpus.Domain,
		NumEntities:  l.Corpus.NumEntities(),
		NumPages:     l.Corpus.NumPages(),
	}
	for _, a := range l.Aspects {
		dm, err := l.Learn(a)
		if err != nil {
			return nil, fmt.Errorf("store: aspect %s: %w", a, err)
		}
		art.Models = append(art.Models, dm)
		art.Classifiers = append(art.Classifiers, l.Cls.ByAspect[a].Params())
	}
	if len(art.Models) == 0 {
		return nil, fmt.Errorf("store: no aspect has training signal")
	}
	return art, nil
}

// SaveDomains writes the domain artifact to w in the framed, checksummed
// store format. Models and classifiers are sorted by aspect before
// encoding, so equal artifacts produce identical bytes.
func SaveDomains(w io.Writer, a *DomainArtifact) error {
	if a == nil || len(a.Models) == 0 {
		return fmt.Errorf("store: no domain models to save")
	}
	models := append([]*core.DomainModel(nil), a.Models...)
	sort.Slice(models, func(i, j int) bool { return models[i].Aspect < models[j].Aspect })
	cls := append([]classify.Params(nil), a.Classifiers...)
	sort.Slice(cls, func(i, j int) bool { return cls[i].Aspect < cls[j].Aspect })

	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(domMagic); err != nil {
		return fmt.Errorf("store: write domain magic: %w", err)
	}
	if err := writeSection(bw, secDomMeta, func(e *Enc) {
		e.Str(string(a.CorpusDomain))
		e.Uvarint(uint64(a.NumEntities))
		e.Uvarint(uint64(a.NumPages))
	}); err != nil {
		return err
	}
	if err := writeSection(bw, secDomains, func(e *Enc) { encodeDomainModels(e, models) }); err != nil {
		return err
	}
	if len(cls) > 0 {
		if err := writeSection(bw, secClassifiers, func(e *Enc) { encodeClassifiers(e, cls) }); err != nil {
			return err
		}
	}
	if err := writeSection(bw, secEnd, func(*Enc) {}); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	return nil
}

// LoadDomains reads a domain-artifact file written by SaveDomains.
func LoadDomains(r io.Reader) (*DomainArtifact, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(domMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("store: read domain magic: %w", err)
	}
	if string(head) != domMagic {
		return nil, fmt.Errorf("store: bad magic %q (not a domain-artifact file or wrong version)", head)
	}
	a := &DomainArtifact{}
	seen := false
	for {
		name, payload, err := readSection(br)
		if err != nil {
			return nil, err
		}
		if name == secEnd {
			break
		}
		d := NewDec(payload)
		switch name {
		case secDomMeta:
			a.CorpusDomain = corpus.Domain(d.Str())
			a.NumEntities = int(d.Uvarint())
			a.NumPages = int(d.Uvarint())
		case secDomains:
			a.Models = decodeDomainModels(d)
			seen = true
		case secClassifiers:
			a.Classifiers = decodeClassifiers(d)
		default:
			continue // forward compatibility: skip unknown sections
		}
		if d.Err() != nil {
			return nil, fmt.Errorf("store: section %s: %w", name, d.Err())
		}
		if !d.Done() {
			return nil, fmt.Errorf("store: section %s has %d trailing bytes", name, d.Remaining())
		}
	}
	if !seen {
		return nil, fmt.Errorf("store: missing DOMS section")
	}
	return a, nil
}

// SaveDomainsFile writes the artifact to path atomically (temp file +
// rename), so a crash mid-write never truncates a previous artifact.
func SaveDomainsFile(path string, a *DomainArtifact) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := SaveDomains(f, a); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: rename: %w", err)
	}
	return nil
}

// LoadDomainsFile reads a domain-artifact file from path.
func LoadDomainsFile(path string) (*DomainArtifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return LoadDomains(f)
}

func encodeDomainModels(e *Enc, models []*core.DomainModel) {
	e.Uvarint(uint64(len(models)))
	for _, dm := range models {
		e.Str(string(dm.Aspect))
		encStrMap(e, dm.TemplateP)
		encStrMap(e, dm.TemplateR)
		encStrMap(e, dm.TemplateRStar)
		encStrMap(e, dm.TemplateRCount)
		encStrMap(e, dm.TemplateRStarCount)
		encQueryMap(e, dm.QueryRCount)
		encQueryMap(e, dm.QueryRStarCount)
		encQueryMap(e, dm.QueryP)
		encQueryMap(e, dm.QueryR)
		e.Uvarint(uint64(len(dm.Candidates)))
		for _, q := range dm.Candidates {
			e.Str(string(q))
		}
		e.F64(dm.RelFraction)
		e.Uvarint(uint64(dm.NumEntities))
		e.Uvarint(uint64(dm.NumPages))
	}
}

func decodeDomainModels(d *Dec) []*core.DomainModel {
	n := d.Count("domain models")
	out := make([]*core.DomainModel, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		dm := &core.DomainModel{Aspect: corpus.Aspect(d.Str())}
		dm.TemplateP = decStrMap(d)
		dm.TemplateR = decStrMap(d)
		dm.TemplateRStar = decStrMap(d)
		dm.TemplateRCount = decStrMap(d)
		dm.TemplateRStarCount = decStrMap(d)
		dm.QueryRCount = decQueryMap(d)
		dm.QueryRStarCount = decQueryMap(d)
		dm.QueryP = decQueryMap(d)
		dm.QueryR = decQueryMap(d)
		nc := d.Count("domain candidates")
		dm.Candidates = make([]core.Query, 0, nc)
		for j := 0; j < nc && d.Err() == nil; j++ {
			dm.Candidates = append(dm.Candidates, core.Query(d.Str()))
		}
		dm.RelFraction = d.F64()
		dm.NumEntities = int(d.Uvarint())
		dm.NumPages = int(d.Uvarint())
		out = append(out, dm)
	}
	return out
}

func encodeClassifiers(e *Enc, cls []classify.Params) {
	e.Uvarint(uint64(len(cls)))
	for _, p := range cls {
		e.Str(string(p.Aspect))
		for cls := 0; cls < 2; cls++ {
			e.F64(p.LogPrior[cls])
			e.F64(p.LogUnk[cls])
		}
		for cls := 0; cls < 2; cls++ {
			toks := make([]string, 0, len(p.LogLik[cls]))
			for t := range p.LogLik[cls] {
				toks = append(toks, string(t))
			}
			sort.Strings(toks)
			e.Uvarint(uint64(len(toks)))
			for _, t := range toks {
				e.Str(t)
				e.F64(p.LogLik[cls][textproc.Token(t)])
			}
		}
	}
}

func decodeClassifiers(d *Dec) []classify.Params {
	n := d.Count("classifiers")
	out := make([]classify.Params, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		p := classify.Params{Aspect: corpus.Aspect(d.Str())}
		for cls := 0; cls < 2; cls++ {
			p.LogPrior[cls] = d.F64()
			p.LogUnk[cls] = d.F64()
		}
		for cls := 0; cls < 2; cls++ {
			nt := d.Count("classifier vocab")
			lik := make(map[textproc.Token]float64, nt)
			for j := 0; j < nt && d.Err() == nil; j++ {
				t := textproc.Token(d.Str())
				lik[t] = d.F64()
			}
			p.LogLik[cls] = lik
		}
		out = append(out, p)
	}
	return out
}

// encStrMap encodes a string-keyed float map sorted by key.
func encStrMap(e *Enc, m map[string]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.Str(k)
		e.F64(m[k])
	}
}

func decStrMap(d *Dec) map[string]float64 {
	n := d.Count("map entries")
	m := make(map[string]float64, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		k := d.Str()
		m[k] = d.F64()
	}
	return m
}

// encQueryMap encodes a Query-keyed float map sorted by key.
func encQueryMap(e *Enc, m map[core.Query]float64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	e.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.Str(k)
		e.F64(m[core.Query(k)])
	}
}

func decQueryMap(d *Dec) map[core.Query]float64 {
	n := d.Count("map entries")
	m := make(map[core.Query]float64, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		k := d.Str()
		m[core.Query(k)] = d.F64()
	}
	return m
}

// ReconstructTokenizer rebuilds a phrase-merging tokenizer from a
// corpus's own tokens: any multi-word token (internal space) was produced
// by a phrase lexicon, so collecting them recovers it. Store files carry
// no tokenizer, so consumers serving or learning over a restored corpus
// (cmd/l2qserve, cmd/l2qstore domains) need this to round-trip phrase
// tokens in queries.
func ReconstructTokenizer(c *corpus.Corpus) *textproc.Tokenizer {
	seen := make(map[string]struct{})
	var phrases []string
	for _, p := range c.Pages {
		for i := range p.Paras {
			for _, t := range p.Paras[i].Tokens {
				for j := 0; j < len(t); j++ {
					if t[j] == ' ' {
						if _, dup := seen[string(t)]; !dup {
							seen[string(t)] = struct{}{}
							phrases = append(phrases, string(t))
						}
						break
					}
				}
			}
		}
	}
	if len(phrases) == 0 {
		return &textproc.Tokenizer{}
	}
	return &textproc.Tokenizer{Lexicon: textproc.NewLexicon(phrases)}
}
