package store

// Checkpoint files persist the durable state of in-flight harvesting
// sessions (core.Checkpoint) so a killed harvest resumes instead of
// re-paying every query it already fired. The format mirrors the store
// file: a magic header, framed CRC32-checksummed sections, and an END
// sentinel, so the same reader machinery (and the same forward-
// compatibility rule: skip unknown sections) applies.
//
//	magic "L2QCKPT1"
//	CKPT section: count | per checkpoint:
//	    entity varint | aspect str | booted byte | rPhi f64 | rStarPhi f64
//	    | nFired uvarint | fired str... | nPages uvarint | pageID deltas varint...
//	END sentinel

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"l2q/internal/core"
	"l2q/internal/corpus"
)

// ckptMagic identifies a checkpoint file and its major version.
const ckptMagic = "L2QCKPT1"

const secCheckpoints = "CKPT"

// SaveCheckpoints writes session checkpoints to w in the framed,
// checksummed store format.
func SaveCheckpoints(w io.Writer, cps []core.Checkpoint) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(ckptMagic); err != nil {
		return fmt.Errorf("store: write checkpoint magic: %w", err)
	}
	if err := writeSection(bw, secCheckpoints, func(e *enc) { encodeCheckpoints(e, cps) }); err != nil {
		return err
	}
	if err := writeSection(bw, secEnd, func(*enc) {}); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	return nil
}

// LoadCheckpoints reads a checkpoint file written by SaveCheckpoints.
func LoadCheckpoints(r io.Reader) ([]core.Checkpoint, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("store: read checkpoint magic: %w", err)
	}
	if string(head) != ckptMagic {
		return nil, fmt.Errorf("store: bad magic %q (not a checkpoint file or wrong version)", head)
	}
	var cps []core.Checkpoint
	seen := false
	for {
		name, payload, err := readSection(br)
		if err != nil {
			return nil, err
		}
		if name == secEnd {
			break
		}
		if name != secCheckpoints {
			continue // forward compatibility: skip unknown sections
		}
		d := &dec{buf: payload}
		cps = decodeCheckpoints(d)
		seen = true
		if d.err != nil {
			return nil, fmt.Errorf("store: section %s: %w", name, d.err)
		}
		if !d.done() {
			return nil, fmt.Errorf("store: section %s has %d trailing bytes", name, len(payload)-d.pos)
		}
	}
	if !seen {
		return nil, fmt.Errorf("store: missing CKPT section")
	}
	return cps, nil
}

// SaveCheckpointsFile writes the checkpoints to path atomically (temp
// file + rename), so a crash mid-write never truncates the previous
// checkpoint — the whole point of keeping one.
func SaveCheckpointsFile(path string, cps []core.Checkpoint) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := SaveCheckpoints(f, cps); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: rename: %w", err)
	}
	return nil
}

// LoadCheckpointsFile reads a checkpoint file from path.
func LoadCheckpointsFile(path string) ([]core.Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return LoadCheckpoints(f)
}

func encodeCheckpoints(e *enc, cps []core.Checkpoint) {
	e.uvarint(uint64(len(cps)))
	for _, cp := range cps {
		e.varint(int64(cp.Entity))
		e.str(string(cp.Aspect))
		booted := byte(0)
		if cp.Booted {
			booted = 1
		}
		e.buf = append(e.buf, booted)
		e.f64(cp.RPhi)
		e.f64(cp.RStarPhi)
		e.uvarint(uint64(len(cp.Fired)))
		for _, q := range cp.Fired {
			e.str(string(q))
		}
		e.uvarint(uint64(len(cp.PageIDs)))
		prev := int64(0)
		for _, id := range cp.PageIDs {
			e.varint(int64(id) - prev)
			prev = int64(id)
		}
	}
}

func decodeCheckpoints(d *dec) []core.Checkpoint {
	n := d.count("checkpoints")
	out := make([]core.Checkpoint, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		cp := core.Checkpoint{
			Entity: corpus.EntityID(d.varint()),
			Aspect: corpus.Aspect(d.str()),
		}
		if d.err == nil {
			if d.pos >= len(d.buf) {
				d.fail("booted flag")
				break
			}
			cp.Booted = d.buf[d.pos] != 0
			d.pos++
		}
		cp.RPhi = d.f64()
		cp.RStarPhi = d.f64()
		nFired := d.count("fired queries")
		for j := 0; j < nFired && d.err == nil; j++ {
			cp.Fired = append(cp.Fired, core.Query(d.str()))
		}
		nPages := d.count("checkpoint pages")
		prev := int64(0)
		for j := 0; j < nPages && d.err == nil; j++ {
			prev += d.varint()
			cp.PageIDs = append(cp.PageIDs, corpus.PageID(prev))
		}
		out = append(out, cp)
	}
	return out
}
