package store

// Checkpoint files persist the durable state of in-flight harvesting
// sessions (core.Checkpoint) so a killed harvest resumes instead of
// re-paying every query it already fired. The format mirrors the store
// file: a magic header, framed CRC32-checksummed sections, and an END
// sentinel, so the same reader machinery (and the same forward-
// compatibility rule: skip unknown sections) applies.
//
//	magic "L2QCKPT1"
//	CKPT section: count | per checkpoint:
//	    entity varint | aspect str | booted byte | rPhi f64 | rStarPhi f64
//	    | nFired uvarint | fired str... | nPages uvarint | pageID deltas varint...
//	END sentinel

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"l2q/internal/core"
	"l2q/internal/corpus"
)

// ckptMagic identifies a checkpoint file and its major version.
const ckptMagic = "L2QCKPT1"

const secCheckpoints = "CKPT"

// SaveCheckpoints writes session checkpoints to w in the framed,
// checksummed store format.
func SaveCheckpoints(w io.Writer, cps []core.Checkpoint) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(ckptMagic); err != nil {
		return fmt.Errorf("store: write checkpoint magic: %w", err)
	}
	if err := writeSection(bw, secCheckpoints, func(e *Enc) { encodeCheckpoints(e, cps) }); err != nil {
		return err
	}
	if err := writeSection(bw, secEnd, func(*Enc) {}); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	return nil
}

// LoadCheckpoints reads a checkpoint file written by SaveCheckpoints.
func LoadCheckpoints(r io.Reader) ([]core.Checkpoint, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("store: read checkpoint magic: %w", err)
	}
	if string(head) != ckptMagic {
		return nil, fmt.Errorf("store: bad magic %q (not a checkpoint file or wrong version)", head)
	}
	var cps []core.Checkpoint
	seen := false
	for {
		name, payload, err := readSection(br)
		if err != nil {
			return nil, err
		}
		if name == secEnd {
			break
		}
		if name != secCheckpoints {
			continue // forward compatibility: skip unknown sections
		}
		d := NewDec(payload)
		cps = decodeCheckpoints(d)
		seen = true
		if d.Err() != nil {
			return nil, fmt.Errorf("store: section %s: %w", name, d.Err())
		}
		if !d.Done() {
			return nil, fmt.Errorf("store: section %s has %d trailing bytes", name, d.Remaining())
		}
	}
	if !seen {
		return nil, fmt.Errorf("store: missing CKPT section")
	}
	return cps, nil
}

// SaveCheckpointsFile writes the checkpoints to path atomically (temp
// file + rename), so a crash mid-write never truncates the previous
// checkpoint — the whole point of keeping one.
func SaveCheckpointsFile(path string, cps []core.Checkpoint) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := SaveCheckpoints(f, cps); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: rename: %w", err)
	}
	return nil
}

// LoadCheckpointsFile reads a checkpoint file from path.
func LoadCheckpointsFile(path string) ([]core.Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return LoadCheckpoints(f)
}

func encodeCheckpoints(e *Enc, cps []core.Checkpoint) {
	e.Uvarint(uint64(len(cps)))
	for _, cp := range cps {
		e.Varint(int64(cp.Entity))
		e.Str(string(cp.Aspect))
		booted := byte(0)
		if cp.Booted {
			booted = 1
		}
		e.Byte(booted)
		e.F64(cp.RPhi)
		e.F64(cp.RStarPhi)
		e.Uvarint(uint64(len(cp.Fired)))
		for _, q := range cp.Fired {
			e.Str(string(q))
		}
		e.Uvarint(uint64(len(cp.PageIDs)))
		prev := int64(0)
		for _, id := range cp.PageIDs {
			e.Varint(int64(id) - prev)
			prev = int64(id)
		}
	}
}

func decodeCheckpoints(d *Dec) []core.Checkpoint {
	n := d.Count("checkpoints")
	out := make([]core.Checkpoint, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		cp := core.Checkpoint{
			Entity: corpus.EntityID(d.Varint()),
			Aspect: corpus.Aspect(d.Str()),
		}
		cp.Booted = d.Byte() != 0
		cp.RPhi = d.F64()
		cp.RStarPhi = d.F64()
		nFired := d.Count("fired queries")
		for j := 0; j < nFired && d.Err() == nil; j++ {
			cp.Fired = append(cp.Fired, core.Query(d.Str()))
		}
		nPages := d.Count("checkpoint pages")
		prev := int64(0)
		for j := 0; j < nPages && d.Err() == nil; j++ {
			prev += d.Varint()
			cp.PageIDs = append(cp.PageIDs, corpus.PageID(prev))
		}
		out = append(out, cp)
	}
	return out
}
