package store

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"l2q/internal/classify"
	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/search"
	"l2q/internal/synth"
	"l2q/internal/types"
)

// ckptFixture is a minimal harvesting environment for one domain.
type ckptFixture struct {
	cfg    core.Config
	engine *search.Engine
	rec    types.Recognizer
	y      func(*corpus.Page) bool
	dm     *core.DomainModel
	target *corpus.Entity
	aspect corpus.Aspect
}

func newCkptFixture(t *testing.T, domain corpus.Domain, aspect corpus.Aspect) *ckptFixture {
	t.Helper()
	g, err := synth.Generate(synth.TestConfig(domain))
	if err != nil {
		t.Fatal(err)
	}
	engine := search.NewEngine(search.BuildIndex(g.Corpus.Pages))
	rec := types.Chain{g.KB, types.NewRegexRecognizer()}
	y := func(p *corpus.Page) bool { return classify.GroundTruth(p, aspect) }
	cfg := core.DefaultConfig()
	cfg.Tokenizer = g.Tokenizer
	var domainIDs []corpus.EntityID
	for i := 0; i < g.Corpus.NumEntities()/2; i++ {
		domainIDs = append(domainIDs, g.Corpus.Entities[i].ID)
	}
	dm, err := core.LearnDomain(cfg, aspect, g.Corpus, domainIDs, y, rec)
	if err != nil {
		t.Fatal(err)
	}
	return &ckptFixture{
		cfg: cfg, engine: engine, rec: rec, y: y, dm: dm,
		target: g.Corpus.Entities[g.Corpus.NumEntities()-1],
		aspect: aspect,
	}
}

func (f *ckptFixture) session() *core.Session {
	return core.NewSession(f.cfg, f.engine, f.target, f.aspect, f.y, f.dm, f.rec, 42)
}

// roundTrip pushes checkpoints through the binary codec.
func roundTrip(t *testing.T, cps []core.Checkpoint) []core.Checkpoint {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveCheckpoints(&buf, cps); err != nil {
		t.Fatal(err)
	}
	out, err := LoadCheckpoints(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCheckpointRoundTripResumes is the satellite's core: snapshot →
// store encode/decode → resume must reproduce the original session's
// next selection exactly, across both domains — and the mid-bootstrap
// snapshot (the nastiest state) must survive the same path.
func TestCheckpointRoundTripResumes(t *testing.T) {
	cases := []struct {
		domain corpus.Domain
		aspect corpus.Aspect
	}{
		{synth.DomainResearchers, synth.AspResearch},
		{synth.DomainCars, synth.AspSafety},
	}
	for _, tc := range cases {
		t.Run(string(tc.domain), func(t *testing.T) {
			f := newCkptFixture(t, tc.domain, tc.aspect)

			// Reference: uninterrupted run.
			ref := f.session()
			want := ref.Run(core.NewL2QBAL(), 4)
			if len(want) < 3 {
				t.Fatalf("reference fired only %v", want)
			}

			// Interrupted at 2 queries, through the binary codec.
			first := f.session()
			first.Run(core.NewL2QBAL(), 2)
			cps := roundTrip(t, []core.Checkpoint{first.Snapshot()})
			if len(cps) != 1 {
				t.Fatalf("round trip returned %d checkpoints", len(cps))
			}
			if !reflect.DeepEqual(cps[0], first.Snapshot()) {
				t.Fatalf("codec changed the checkpoint:\n%+v\n%+v", cps[0], first.Snapshot())
			}

			resumed := f.session()
			if err := resumed.Resume(cps[0]); err != nil {
				t.Fatal(err)
			}
			more := resumed.Run(core.NewL2QBAL(), 2)
			got := append(append([]core.Query(nil), cps[0].Fired...), more...)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("resumed run fired %v, uninterrupted %v", got, want)
			}

			// Mid-bootstrap snapshot: encode, decode, resume, and the
			// session must still match a fresh run exactly.
			unbooted := roundTrip(t, []core.Checkpoint{f.session().Snapshot()})
			virgin := f.session()
			if err := virgin.Resume(unbooted[0]); err != nil {
				t.Fatal(err)
			}
			if virgin.Booted() {
				t.Fatal("mid-bootstrap checkpoint booted the session")
			}
			fresh := f.session()
			if a, b := virgin.Run(core.NewL2QBAL(), 2), fresh.Run(core.NewL2QBAL(), 2); !reflect.DeepEqual(a, b) {
				t.Errorf("mid-bootstrap resume fired %v, fresh %v", a, b)
			}
		})
	}
}

// TestCheckpointFileRoundTrip: the atomic file variants, with several
// checkpoints per file (the scheduler persists whole batches).
func TestCheckpointFileRoundTrip(t *testing.T) {
	f := newCkptFixture(t, synth.DomainResearchers, synth.AspResearch)
	s1, s2 := f.session(), f.session()
	s1.Run(core.NewL2QBAL(), 1)
	s2.Run(core.NewL2QBAL(), 3)
	want := []core.Checkpoint{s1.Snapshot(), s2.Snapshot(), f.session().Snapshot()}

	path := filepath.Join(t.TempDir(), "harvest.ckpt")
	if err := SaveCheckpointsFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpointsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("file round trip mismatch:\n%+v\n%+v", got, want)
	}
}

// TestCheckpointCorruption: a flipped payload byte is caught by the
// section checksum, and a truncated file fails cleanly.
func TestCheckpointCorruption(t *testing.T) {
	f := newCkptFixture(t, synth.DomainResearchers, synth.AspResearch)
	s := f.session()
	s.Run(core.NewP(), 1)
	var buf bytes.Buffer
	if err := SaveCheckpoints(&buf, []core.Checkpoint{s.Snapshot()}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0xff
	if _, err := LoadCheckpoints(bytes.NewReader(flipped)); err == nil {
		t.Error("corrupted checkpoint file accepted")
	}
	if _, err := LoadCheckpoints(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Error("truncated checkpoint file accepted")
	}
	if _, err := LoadCheckpoints(bytes.NewReader([]byte("L2QSTOR1"))); err == nil {
		t.Error("store-file magic accepted as a checkpoint file")
	}
}
