package store

import (
	"sort"

	"l2q/internal/textproc"
)

// dictionary assigns dense IDs to a sorted term set and serializes them
// front-coded: each term stores the length of the prefix it shares with its
// predecessor plus the remaining suffix. Sorted web vocabularies share long
// prefixes, so this typically shrinks the term section by 30–50%.
type dictionary struct {
	terms []string
	ids   map[string]uint64
}

// buildDictionary collects every distinct token used by the corpus pages.
func buildDictionary(tokenStreams func(emit func(textproc.Token))) *dictionary {
	set := make(map[string]struct{}, 1024)
	tokenStreams(func(t textproc.Token) { set[t] = struct{}{} })
	terms := make([]string, 0, len(set))
	for t := range set {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	d := &dictionary{terms: terms, ids: make(map[string]uint64, len(terms))}
	for i, t := range terms {
		d.ids[t] = uint64(i)
	}
	return d
}

// id returns the dense ID of a term that is guaranteed to be present.
func (d *dictionary) id(t string) uint64 { return d.ids[t] }

// term returns the term for an ID; ok is false for out-of-range IDs.
func (d *dictionary) term(id uint64) (string, bool) {
	if id >= uint64(len(d.terms)) {
		return "", false
	}
	return d.terms[id], true
}

func (d *dictionary) encode(e *Enc) {
	e.Uvarint(uint64(len(d.terms)))
	prev := ""
	for _, t := range d.terms {
		shared := sharedPrefixLen(prev, t)
		e.Uvarint(uint64(shared))
		e.Str(t[shared:])
		prev = t
	}
}

func decodeDictionary(d *Dec) *dictionary {
	n := d.Count("dictionary")
	dict := &dictionary{
		terms: make([]string, 0, n),
		ids:   make(map[string]uint64, n),
	}
	prev := ""
	for i := 0; i < n; i++ {
		shared := int(d.Uvarint())
		suffix := d.Str()
		if d.Err() != nil {
			return dict
		}
		if shared > len(prev) {
			d.Fail("dictionary prefix")
			return dict
		}
		t := prev[:shared] + suffix
		dict.terms = append(dict.terms, t)
		dict.ids[t] = uint64(i)
		prev = t
	}
	return dict
}

// sharedPrefixLen returns the length of the longest common byte prefix,
// capped so a multi-byte rune is never split (front coding must produce
// valid string boundaries when reassembled — byte-level is fine because we
// reassemble with the same byte arithmetic, but capping at a rune boundary
// keeps the suffixes valid UTF-8 for debuggability).
func sharedPrefixLen(a, b string) int {
	n := 0
	max := len(a)
	if len(b) < max {
		max = len(b)
	}
	for n < max && a[n] == b[n] {
		n++
	}
	// Back off to a rune boundary in b so suffixes stay valid UTF-8.
	for n > 0 && n < len(b) && !utf8Start(b[n]) {
		n--
	}
	return n
}

func utf8Start(c byte) bool { return c < 0x80 || c >= 0xc0 }
