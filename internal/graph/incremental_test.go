package graph

import (
	"math"
	"math/rand/v2"
	"testing"
)

// randomTripartite builds a random page/query/template graph for the
// incremental-mutation property tests.
func randomTripartite(rng *rand.Rand, nP, nQ, nT int, weighted bool) (*Graph, []NodeID, []NodeID, []NodeID) {
	g := New()
	pages := make([]NodeID, nP)
	for i := range pages {
		pages[i] = g.AddNode(KindPage)
	}
	queries := make([]NodeID, nQ)
	for i := range queries {
		queries[i] = g.AddNode(KindQuery)
	}
	templates := make([]NodeID, nT)
	for i := range templates {
		templates[i] = g.AddNode(KindTemplate)
	}
	w := func() float64 {
		if weighted {
			return 0.1 + rng.Float64()
		}
		return 1
	}
	for _, q := range queries {
		for _, p := range pages {
			if rng.Float64() < 0.3 {
				g.AddEdgePQ(p, q, w())
			}
		}
		for _, tm := range templates {
			if rng.Float64() < 0.4 {
				g.AddEdgeQT(q, tm, w())
			}
		}
	}
	return g, pages, queries, templates
}

// TestDetachQueryMatchesRebuild: detaching a query must leave every other
// node's utility exactly as if the query had never been added.
func TestDetachQueryMatchesRebuild(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		rng := rand.New(rand.NewPCG(7, 11))
		g, pages, queries, templates := randomTripartite(rng, 12, 8, 3, weighted)

		// Rebuild without query 5, replaying the same weights: regenerate
		// with the same seed and skip its edges.
		rng2 := rand.New(rand.NewPCG(7, 11))
		h := New()
		hPages := make([]NodeID, len(pages))
		for i := range hPages {
			hPages[i] = h.AddNode(KindPage)
		}
		hQueries := make([]NodeID, len(queries))
		for i := range hQueries {
			hQueries[i] = h.AddNode(KindQuery)
		}
		hTempl := make([]NodeID, len(templates))
		for i := range hTempl {
			hTempl[i] = h.AddNode(KindTemplate)
		}
		w2 := func() float64 {
			if weighted {
				return 0.1 + rng2.Float64()
			}
			return 1
		}
		const skip = 5
		for qi, q := range hQueries {
			for _, p := range hPages {
				if rng2.Float64() < 0.3 {
					if wv := w2(); qi != skip {
						h.AddEdgePQ(p, q, wv)
					}
				}
			}
			for _, tm := range hTempl {
				if rng2.Float64() < 0.4 {
					if wv := w2(); qi != skip {
						h.AddEdgeQT(q, tm, wv)
					}
				}
			}
		}

		v0 := g.Version()
		g.DetachQuery(queries[skip])
		if g.Version() == v0 {
			t.Fatal("DetachQuery did not bump the version")
		}
		if g.NumEdges() != h.NumEdges() {
			t.Fatalf("edge counts differ after detach: %d vs %d", g.NumEdges(), h.NumEdges())
		}
		if g.Degree(queries[skip]) != 0 {
			t.Fatalf("detached query keeps degree %d", g.Degree(queries[skip]))
		}

		for _, mode := range []Mode{Precision, Recall} {
			reg := make([]float64, g.NumNodes())
			for i, p := range pages {
				if i%2 == 0 {
					reg[p] = 0.5
				}
			}
			ra, err := Solve(Problem{G: g, Mode: mode, Reg: reg, Tol: 1e-13})
			if err != nil {
				t.Fatal(err)
			}
			rb, err := Solve(Problem{G: h, Mode: mode, Reg: reg, Tol: 1e-13})
			if err != nil {
				t.Fatal(err)
			}
			for v := range ra.U {
				if v == int(queries[skip]) {
					// The detached vertex itself decays to α·reg = 0.
					if ra.U[v] != 0 {
						t.Fatalf("detached query has utility %g", ra.U[v])
					}
					continue
				}
				if d := math.Abs(ra.U[v] - rb.U[v]); d > 1e-10 {
					t.Fatalf("%v weighted=%v node %d: detach %.15f vs rebuild %.15f",
						mode, weighted, v, ra.U[v], rb.U[v])
				}
			}
		}
	}
}

// TestWarmStartSameFixpoint: warm-starting from an arbitrary (even bad)
// iterate converges to the same solution, in no more iterations when the
// start is the previous solution.
func TestWarmStartSameFixpoint(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	g, pages, _, _ := randomTripartite(rng, 20, 15, 4, true)
	reg := make([]float64, g.NumNodes())
	for _, p := range pages {
		reg[p] = rng.Float64()
	}
	for _, scheme := range []Iteration{Jacobi, GaussSeidel} {
		for _, mode := range []Mode{Precision, Recall} {
			cold, err := Solve(Problem{G: g, Mode: mode, Reg: reg, Tol: 1e-12, Scheme: scheme})
			if err != nil {
				t.Fatal(err)
			}
			// Warm start at the exact solution: converges immediately.
			warm, err := Solve(Problem{G: g, Mode: mode, Reg: reg, Tol: 1e-12, Scheme: scheme, X0: cold.U})
			if err != nil {
				t.Fatal(err)
			}
			if warm.Iterations > 2 {
				t.Errorf("%v/%v: warm start at solution took %d iterations", scheme, mode, warm.Iterations)
			}
			for v := range cold.U {
				if d := math.Abs(cold.U[v] - warm.U[v]); d > 1e-10 {
					t.Fatalf("%v/%v node %d: warm %.15f vs cold %.15f", scheme, mode, v, warm.U[v], cold.U[v])
				}
			}
			// Warm start from garbage still converges to the fixpoint.
			bad := make([]float64, len(reg))
			for i := range bad {
				bad[i] = 10 * rng.Float64()
			}
			fromBad, err := Solve(Problem{G: g, Mode: mode, Reg: reg, Tol: 1e-12, Scheme: scheme, X0: bad})
			if err != nil {
				t.Fatal(err)
			}
			for v := range cold.U {
				if d := math.Abs(cold.U[v] - fromBad.U[v]); d > 1e-9 {
					t.Fatalf("%v/%v node %d: from-bad %.15f vs cold %.15f", scheme, mode, v, fromBad.U[v], cold.U[v])
				}
			}
		}
	}
}

// TestWarmStartShortX0 covers the grown-graph convention: an X0 from
// before the graph grew is padded with Reg for the new nodes.
func TestWarmStartShortX0(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 2))
	g, pages, queries, _ := randomTripartite(rng, 10, 6, 2, false)
	reg := make([]float64, g.NumNodes())
	for _, p := range pages {
		reg[p] = 1
	}
	prev, err := Solve(Problem{G: g, Mode: Precision, Reg: reg, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// Grow: one new page connected to an existing query.
	np := g.AddNode(KindPage)
	g.AddEdgePQ(np, queries[0], 1)
	reg2 := append(append([]float64(nil), reg...), 1)
	cold, err := Solve(Problem{G: g, Mode: Precision, Reg: reg2, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Solve(Problem{G: g, Mode: Precision, Reg: reg2, Tol: 1e-12, X0: prev.U})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations >= cold.Iterations {
		t.Errorf("warm start after one-page growth took %d iterations, cold %d",
			warm.Iterations, cold.Iterations)
	}
	for v := range cold.U {
		if d := math.Abs(cold.U[v] - warm.U[v]); d > 1e-10 {
			t.Fatalf("node %d: warm %.15f vs cold %.15f", v, warm.U[v], cold.U[v])
		}
	}
}

// TestPushWarmStart: the incremental push (X0 + signed correction
// residuals) reaches the same solution as a cold push, with far fewer
// pushes when the graph barely changed.
func TestPushWarmStart(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 17))
	g, pages, queries, _ := randomTripartite(rng, 40, 30, 5, false)
	reg := make([]float64, g.NumNodes())
	for _, p := range pages {
		reg[p] = rng.Float64()
	}
	for _, mode := range []Mode{Precision, Recall} {
		prev, err := PushSolve(PushProblem{G: g, Mode: mode, Reg: reg, Eps: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		if !prev.Converged {
			t.Fatal("cold push did not converge")
		}

		// Identity warm start: nothing to push.
		same, err := PushSolve(PushProblem{G: g, Mode: mode, Reg: reg, Eps: 1e-12, X0: prev.U})
		if err != nil {
			t.Fatal(err)
		}
		if same.Iterations > prev.Iterations/10 {
			t.Errorf("%v: warm push at solution did %d pushes (cold %d)", mode, same.Iterations, prev.Iterations)
		}
		for v := range prev.U {
			if d := math.Abs(prev.U[v] - same.U[v]); d > 1e-8 {
				t.Fatalf("%v node %d: warm %.12f vs cold %.12f", mode, v, same.U[v], prev.U[v])
			}
		}

		// Grow the graph slightly and re-solve warm vs cold.
		np := g.AddNode(KindPage)
		g.AddEdgePQ(np, queries[1], 1)
		reg = append(reg, 0.5)
		cold, err := PushSolve(PushProblem{G: g, Mode: mode, Reg: reg, Eps: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		warm, err := PushSolve(PushProblem{G: g, Mode: mode, Reg: reg, Eps: 1e-12, X0: prev.U})
		if err != nil {
			t.Fatal(err)
		}
		if !warm.Converged {
			t.Fatalf("%v: warm push did not converge", mode)
		}
		for v := range cold.U {
			if d := math.Abs(cold.U[v] - warm.U[v]); d > 1e-8 {
				t.Fatalf("%v node %d after growth: warm %.12f vs cold %.12f", mode, v, warm.U[v], cold.U[v])
			}
		}
		if warm.Iterations > cold.Iterations {
			t.Errorf("%v: warm push did %d pushes, cold %d — no locality win", mode, warm.Iterations, cold.Iterations)
		}
		pages = append(pages, np)
	}
}

// TestDetachQueryPanicsOnNonQuery guards the kind check.
func TestDetachQueryPanicsOnNonQuery(t *testing.T) {
	g := New()
	p := g.AddNode(KindPage)
	defer func() {
		if recover() == nil {
			t.Fatal("DetachQuery(page) did not panic")
		}
	}()
	g.DetachQuery(p)
}
