package graph

import (
	"fmt"
	"math"
)

// This file implements a residual ("forward push") solver for the same
// damped fixpoint as Solve. The paper notes that beyond standard iterative
// updating "there also exist numerous algorithms [26], [25], [27] to
// improve the efficiency" of the random walks; residual push is the
// classic one (local push à la Andersen–Chung–Lang, the engine behind the
// paper's reference [26] on incremental personalized PageRank). Its
// advantage over power iteration is locality: work is proportional to the
// residual mass actually moved, not to |V|·iterations, which pays off on
// the entity graphs where regularization is concentrated on a handful of
// pages and templates.

// Operator is the mode's linear update F of Eq. 13 in compressed sparse
// form: step(x) = A·x, so that Solve's iteration is x ← (1−α)·A·x + α·r.
// Build with BuildOperator; an Operator is immutable afterwards.
type Operator struct {
	n int
	// CSR (rows): out[u] = Σ vals[rowStart[u]..] · x[colIdx[..]].
	rowStart []int32
	colIdx   []int32
	vals     []float64
	// CSC (columns): who reads x[v], needed by the push step.
	colStart []int32
	rowIdx   []int32
	colVals  []float64
}

// BuildOperator materializes the update matrix of (g, mode). The rows
// reproduce stepPrecision/stepRecall exactly; Solve and PushSolve on the
// same operator converge to the same fixpoint.
func BuildOperator(g *Graph, mode Mode) *Operator {
	n := g.NumNodes()
	type entry struct {
		row, col int32
		val      float64
	}
	var entries []entry
	add := func(row, col NodeID, val float64) {
		if val != 0 {
			entries = append(entries, entry{row: int32(row), col: int32(col), val: val})
		}
	}

	for id := 0; id < n; id++ {
		v := NodeID(id)
		switch g.kinds[id] {
		case KindPage:
			if mode == Precision {
				if tot := g.totPQPage[id]; tot > 0 {
					for _, e := range g.pqByPage[v] {
						add(v, e.to, e.w/tot)
					}
				}
			} else {
				for _, e := range g.pqByPage[v] {
					if tot := g.totPQQuery[e.to]; tot > 0 {
						add(v, e.to, e.w/tot)
					}
				}
			}
		case KindQuery:
			sides := 0.0
			if mode == Precision {
				if g.totPQQuery[id] > 0 {
					sides++
				}
				if g.totQTQuery[id] > 0 {
					sides++
				}
				if sides == 0 {
					continue
				}
				if tot := g.totPQQuery[id]; tot > 0 {
					for _, e := range g.pqByQuery[v] {
						add(v, e.to, e.w/tot/sides)
					}
				}
				if tot := g.totQTQuery[id]; tot > 0 {
					for _, e := range g.qtByQuery[v] {
						add(v, e.to, e.w/tot/sides)
					}
				}
			} else {
				if len(g.pqByQuery[v]) > 0 {
					sides++
				}
				if len(g.qtByQuery[v]) > 0 {
					sides++
				}
				if sides == 0 {
					continue
				}
				for _, e := range g.pqByQuery[v] {
					if tot := g.totPQPage[e.to]; tot > 0 {
						add(v, e.to, e.w/tot/sides)
					}
				}
				for _, e := range g.qtByQuery[v] {
					if tot := g.totQTTempl[e.to]; tot > 0 {
						add(v, e.to, e.w/tot/sides)
					}
				}
			}
		case KindTemplate:
			if mode == Precision {
				if tot := g.totQTTempl[id]; tot > 0 {
					for _, e := range g.qtByTempl[v] {
						add(v, e.to, e.w/tot)
					}
				}
			} else {
				for _, e := range g.qtByTempl[v] {
					if tot := g.totQTQuery[e.to]; tot > 0 {
						add(v, e.to, e.w/tot)
					}
				}
			}
		}
	}

	op := &Operator{n: n}
	// CSR.
	op.rowStart = make([]int32, n+1)
	for _, e := range entries {
		op.rowStart[e.row+1]++
	}
	for i := 0; i < n; i++ {
		op.rowStart[i+1] += op.rowStart[i]
	}
	op.colIdx = make([]int32, len(entries))
	op.vals = make([]float64, len(entries))
	fill := append([]int32(nil), op.rowStart[:n]...)
	for _, e := range entries {
		op.colIdx[fill[e.row]] = e.col
		op.vals[fill[e.row]] = e.val
		fill[e.row]++
	}
	// CSC.
	op.colStart = make([]int32, n+1)
	for _, e := range entries {
		op.colStart[e.col+1]++
	}
	for i := 0; i < n; i++ {
		op.colStart[i+1] += op.colStart[i]
	}
	op.rowIdx = make([]int32, len(entries))
	op.colVals = make([]float64, len(entries))
	fill = append(fill[:0], op.colStart[:n]...)
	for _, e := range entries {
		op.rowIdx[fill[e.col]] = e.row
		op.colVals[fill[e.col]] = e.val
		fill[e.col]++
	}
	return op
}

// NumNodes returns the dimension of the operator.
func (op *Operator) NumNodes() int { return op.n }

// NNZ returns the number of stored coefficients.
func (op *Operator) NNZ() int { return len(op.vals) }

// Apply computes out = A·x (one undamped step).
func (op *Operator) Apply(x, out []float64) {
	for u := 0; u < op.n; u++ {
		s := 0.0
		for i := op.rowStart[u]; i < op.rowStart[u+1]; i++ {
			s += op.vals[i] * x[op.colIdx[i]]
		}
		out[u] = s
	}
}

// PushProblem configures PushSolve.
type PushProblem struct {
	G *Graph
	// Op short-circuits operator construction when the caller already
	// built one (e.g. to solve precision and recall on the same graph).
	Op *Operator
	// Mode selects precision or recall propagation (used when Op is nil).
	Mode Mode
	// Alpha is the restart probability; DefaultAlpha if zero.
	Alpha float64
	// Reg is the utility regularization Û (the restart vector).
	Reg []float64
	// Eps is the per-node residual threshold; pushing stops when every
	// residual is below it. Default 1e-9.
	Eps float64
	// MaxPushes bounds the total number of push operations (default
	// 400·|V|; the bound exists to keep adversarial ε terminating).
	MaxPushes int
	// X0, when non-nil, is the incremental warm start: the solve begins
	// at X0 and pushes only the *correction* residual
	//
	//	res = Reg − (X0 − (1−α)·A·X0)/α
	//
	// which is exactly the restart vector whose solution is x* − X0.
	// When X0 is the previous step's solution on a slightly-grown graph,
	// the residual is near zero except around the new and mutated nodes,
	// so work is proportional to the change — the local-push analogue of
	// incremental personalized PageRank (ref [26]). Correction residuals
	// are signed; pushing is linear, so negative mass propagates the same
	// way. X0 may be shorter than the node count (the graph grew);
	// missing entries cold-start at Reg.
	X0 []float64
}

// PushSolve solves the Eq. 13 fixpoint by residual push. It maintains the
// invariant x* = x + S(res) with S the solution operator, pushing one
// node's residual at a time:
//
//	x[v] += α·res[v];  res[u] += (1−α)·A[u][v]·res[v]  ∀u reading v
//
// For precision operators (row sums ≤ 1) the final L∞ error is at most
// Eps; for recall operators (column sums ≤ 1) the total L1 error is at
// most n·Eps. Converged is false only when MaxPushes was exhausted.
func PushSolve(p PushProblem) (Result, error) {
	op := p.Op
	if op == nil {
		if p.G == nil {
			return Result{}, fmt.Errorf("graph: PushSolve needs G or Op")
		}
		op = BuildOperator(p.G, p.Mode)
	}
	n := op.n
	if len(p.Reg) != n {
		return Result{}, fmt.Errorf("graph: regularization length %d != %d nodes", len(p.Reg), n)
	}
	alpha := p.Alpha
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	if alpha <= 0 || alpha >= 1 {
		return Result{}, fmt.Errorf("graph: alpha %v outside (0,1)", alpha)
	}
	eps := p.Eps
	if eps <= 0 {
		eps = 1e-9
	}
	maxPushes := p.MaxPushes
	if maxPushes == 0 {
		maxPushes = 400 * n
		if maxPushes < 1<<16 {
			maxPushes = 1 << 16
		}
	}

	x := make([]float64, n)
	var res []float64
	if p.X0 == nil {
		res = append([]float64(nil), p.Reg...)
	} else {
		// Warm start: x = X0 (new nodes cold-start at Reg), and the
		// residual is the correction restart vector res = Reg − S⁻¹(x)
		// with S⁻¹(y) = (y − (1−α)·A·y)/α, so that x + S(res) = S(Reg).
		copy(x, p.Reg)
		copy(x, p.X0)
		ax := make([]float64, n)
		op.Apply(x, ax)
		res = make([]float64, n)
		oneMinus := 1 - alpha
		for v := 0; v < n; v++ {
			res[v] = p.Reg[v] - (x[v]-oneMinus*ax[v])/alpha
		}
	}
	queued := make([]bool, n)
	queue := make([]int32, 0, n)
	for v := 0; v < n; v++ {
		if math.Abs(res[v]) > eps {
			queue = append(queue, int32(v))
			queued[v] = true
		}
	}

	pushes := 0
	oneMinus := 1 - alpha
	for len(queue) > 0 && pushes < maxPushes {
		v := queue[0]
		queue = queue[1:]
		queued[v] = false
		rho := res[v]
		if math.Abs(rho) <= eps {
			continue
		}
		res[v] = 0
		x[v] += alpha * rho
		spread := oneMinus * rho
		for i := op.colStart[v]; i < op.colStart[v+1]; i++ {
			u := op.rowIdx[i]
			res[u] += spread * op.colVals[i]
			if !queued[u] && math.Abs(res[u]) > eps {
				queue = append(queue, u)
				queued[u] = true
			}
		}
		pushes++
	}

	converged := true
	for v := 0; v < n; v++ {
		if math.Abs(res[v]) > eps {
			converged = false
			break
		}
	}
	return Result{U: x, Iterations: pushes, Converged: converged}, nil
}
