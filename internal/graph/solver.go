package graph

import (
	"fmt"
	"math"
)

// Mode selects which utility the solver computes.
type Mode uint8

// Solver modes: probabilistic precision (backward walk) or recall
// (forward walk).
const (
	Precision Mode = iota
	Recall
)

func (m Mode) String() string {
	if m == Precision {
		return "precision"
	}
	return "recall"
}

// DefaultAlpha is the restart / regularization parameter α of Eq. 13.
// The paper sets α = 0.15, "a typical value robust to random walks on
// most graphs" (§VI-A "Settings").
const DefaultAlpha = 0.15

// Iteration selects the fixpoint iteration scheme. The paper uses
// "standard iterative updating" (Jacobi) and points to the literature for
// faster schemes ([25]–[27], beyond its scope); Gauss–Seidel is the
// classic in-place variant that typically halves the iteration count by
// consuming fresh values within a sweep. Both converge to the same unique
// fixpoint.
type Iteration uint8

// Iteration schemes.
const (
	Jacobi Iteration = iota
	GaussSeidel
)

// Problem describes one utility-inference fixpoint.
type Problem struct {
	G *Graph
	// Mode selects precision or recall propagation.
	Mode Mode
	// Alpha is the restart probability; DefaultAlpha if zero.
	Alpha float64
	// Reg is the utility regularization Û indexed by NodeID (P̂ or R̂,
	// Eq. 11–12 and 21–22). Missing regularization is zero.
	Reg []float64
	// Tol is the L∞ convergence tolerance (default 1e-10).
	Tol float64
	// MaxIter bounds the iterations (default 200; the paper observes
	// convergence in ~50).
	MaxIter int
	// Scheme selects Jacobi (default, the paper's iteration) or
	// Gauss–Seidel.
	Scheme Iteration
	// X0, when non-nil, is the warm-start iterate: the iteration begins
	// at X0 instead of at Reg. The fixpoint is unique and the map is a
	// contraction, so the converged result is independent of the start —
	// a warm start only changes how many iterations convergence takes.
	// X0 may be shorter than the node count (the graph grew since the
	// previous solve); missing entries start at Reg, the cold-start
	// value. Entries beyond the node count are ignored.
	X0 []float64
}

// Result carries the solved utilities and convergence diagnostics.
type Result struct {
	U          []float64
	Iterations int
	Converged  bool
}

// Solve runs the damped fixpoint iteration of Eq. 13 until convergence.
// It returns an error if the problem is malformed; numeric iteration
// itself cannot fail (the map is a (1−α)-contraction in L∞ for precision
// and in L1 for recall, so it always converges given enough iterations).
func Solve(p Problem) (Result, error) {
	if p.G == nil {
		return Result{}, fmt.Errorf("graph: nil graph")
	}
	n := p.G.NumNodes()
	if len(p.Reg) != n {
		return Result{}, fmt.Errorf("graph: regularization length %d != %d nodes", len(p.Reg), n)
	}
	alpha := p.Alpha
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	if alpha <= 0 || alpha >= 1 {
		return Result{}, fmt.Errorf("graph: alpha %v outside (0,1)", alpha)
	}
	tol := p.Tol
	if tol == 0 {
		tol = 1e-10
	}
	maxIter := p.MaxIter
	if maxIter == 0 {
		maxIter = 200
	}

	x := make([]float64, n)
	next := make([]float64, n)
	copy(x, p.Reg) // cold start at the regularization
	if p.X0 != nil {
		copy(x, p.X0) // warm start; tail (new nodes) stays at Reg
	}

	var iter int
	converged := false
	for iter = 1; iter <= maxIter; iter++ {
		var delta float64
		if p.Scheme == GaussSeidel {
			// In-place sweep: updates read already-updated values.
			copy(next, x)
			if p.Mode == Precision {
				stepPrecision(p.G, alpha, p.Reg, next, next)
			} else {
				stepRecall(p.G, alpha, p.Reg, next, next)
			}
			for i := range x {
				if d := math.Abs(next[i] - x[i]); d > delta {
					delta = d
				}
			}
			copy(x, next)
		} else {
			if p.Mode == Precision {
				stepPrecision(p.G, alpha, p.Reg, x, next)
			} else {
				stepRecall(p.G, alpha, p.Reg, x, next)
			}
			for i := range x {
				if d := math.Abs(next[i] - x[i]); d > delta {
					delta = d
				}
			}
			x, next = next, x
		}
		if delta < tol {
			converged = true
			break
		}
	}
	return Result{U: x, Iterations: iter, Converged: converged}, nil
}

// stepPrecision applies one synchronous backward-walk update:
//
//	P(p) = (1−α)·Σ_q [Wpq/Σ_{q'∈N(p)}Wpq']·P(q) + α·P̂(p)   (Eq. 8)
//	P(q) = (1−α)·avg( Σ_p [Wpq/Σ_{p'∈N(q)}Wp'q]·P(p),        (Eq. 6)
//	                  Σ_t [Wqt/Σ_{t'∈NT(q)}Wqt']·P(t) ) + α·P̂(q)  (Eq. 17)
//	P(t) = (1−α)·Σ_q [Wqt/Σ_{q'∈N(t)}Wq't]·P(q) + α·P̂(t)    (Eq. 15)
func stepPrecision(g *Graph, alpha float64, reg, x, out []float64) {
	oneMinus := 1 - alpha
	for id := range g.kinds {
		v := NodeID(id)
		var from float64
		switch g.kinds[id] {
		case KindPage:
			if tot := g.totPQPage[id]; tot > 0 {
				s := 0.0
				for _, e := range g.pqByPage[v] {
					s += e.w * x[e.to]
				}
				from = s / tot
			}
		case KindQuery:
			sides, acc := 0, 0.0
			if tot := g.totPQQuery[id]; tot > 0 {
				s := 0.0
				for _, e := range g.pqByQuery[v] {
					s += e.w * x[e.to]
				}
				acc += s / tot
				sides++
			}
			if tot := g.totQTQuery[id]; tot > 0 {
				s := 0.0
				for _, e := range g.qtByQuery[v] {
					s += e.w * x[e.to]
				}
				acc += s / tot
				sides++
			}
			if sides > 0 {
				from = acc / float64(sides)
			}
		case KindTemplate:
			if tot := g.totQTTempl[id]; tot > 0 {
				s := 0.0
				for _, e := range g.qtByTempl[v] {
					s += e.w * x[e.to]
				}
				from = s / tot
			}
		}
		out[id] = oneMinus*from + alpha*reg[id]
	}
}

// stepRecall applies one synchronous forward-walk update, where every
// sender divides its recall among receivers:
//
//	R(q) = (1−α)·avg( Σ_p [Wpq/Σ_{q'∈N(p)}Wpq']·R(p),        (Eq. 7)
//	                  Σ_t [Wqt/Σ_{q'∈N(t)}Wq't]·R(t) ) + α·R̂(q)  (Eq. 18)
//	R(p) = (1−α)·Σ_q [Wpq/Σ_{p'∈N(q)}Wp'q]·R(q) + α·R̂(p)    (Eq. 9)
//	R(t) = (1−α)·Σ_q [Wqt/Σ_{t'∈NT(q)}Wqt']·R(q) + α·R̂(t)   (Eq. 16)
func stepRecall(g *Graph, alpha float64, reg, x, out []float64) {
	oneMinus := 1 - alpha
	for id := range g.kinds {
		v := NodeID(id)
		var from float64
		switch g.kinds[id] {
		case KindPage:
			// Each query q divides R(q) among the pages it retrieves.
			s := 0.0
			for _, e := range g.pqByPage[v] {
				if tot := g.totPQQuery[e.to]; tot > 0 {
					s += e.w / tot * x[e.to]
				}
			}
			from = s
		case KindQuery:
			sides, acc := 0, 0.0
			if len(g.pqByQuery[v]) > 0 {
				s := 0.0
				for _, e := range g.pqByQuery[v] {
					if tot := g.totPQPage[e.to]; tot > 0 {
						s += e.w / tot * x[e.to]
					}
				}
				acc += s
				sides++
			}
			if len(g.qtByQuery[v]) > 0 {
				s := 0.0
				for _, e := range g.qtByQuery[v] {
					if tot := g.totQTTempl[e.to]; tot > 0 {
						s += e.w / tot * x[e.to]
					}
				}
				acc += s
				sides++
			}
			if sides > 0 {
				from = acc / float64(sides)
			}
		case KindTemplate:
			// Each query divides its recall among its templates.
			s := 0.0
			for _, e := range g.qtByTempl[v] {
				if tot := g.totQTQuery[e.to]; tot > 0 {
					s += e.w / tot * x[e.to]
				}
			}
			from = s
		}
		out[id] = oneMinus*from + alpha*reg[id]
	}
}
