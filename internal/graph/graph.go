// Package graph implements the reinforcement graph of L2Q (§III–§IV) and
// the random-walk-with-restart fixpoint solver that computes probabilistic
// precision and recall utilities.
//
// The graph is tripartite: pages P, queries Q and templates T, with
// page–query edges ("q can retrieve p") and query–template edges
// ("t abstracts q"). Utilities satisfy the damped fixpoint of Eq. 13:
//
//	U(v) = (1−α)·F({U(v′) | v′ ∈ N(v)}) + α·Û(v)
//
// where F instantiates differently for precision (Eq. 6/8/15/17: weighted
// averages normalized at the *receiving* node — the backward walk) and for
// recall (Eq. 7/9/16/18: mass divided at the *sending* node — the forward
// walk). Queries average their page-side and template-side estimates
// (§IV-A: "we combine both sides by taking their average").
package graph

import "fmt"

// Kind discriminates the three vertex classes.
type Kind uint8

// Vertex kinds.
const (
	KindPage Kind = iota
	KindQuery
	KindTemplate
)

func (k Kind) String() string {
	switch k {
	case KindPage:
		return "page"
	case KindQuery:
		return "query"
	case KindTemplate:
		return "template"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// NodeID indexes a vertex in a Graph.
type NodeID int32

type halfEdge struct {
	to NodeID
	w  float64
}

// Graph is a mutable tripartite reinforcement graph. Add nodes and edges,
// then hand it to Solve; no explicit finalize step is needed because weight
// totals are maintained incrementally. Mutation is also valid *after* a
// solve — appending nodes/edges (and detaching a query) keeps every total
// consistent, which is what lets a harvesting session grow one persistent
// graph across steps instead of rebuilding it.
type Graph struct {
	kinds []Kind

	pqByPage  [][]halfEdge // page → its query edges
	pqByQuery [][]halfEdge // query → its page edges
	qtByQuery [][]halfEdge // query → its template edges
	qtByTempl [][]halfEdge // template → its query edges

	totPQPage  []float64 // Σ w over a page's query edges
	totPQQuery []float64 // Σ w over a query's page edges
	totQTQuery []float64 // Σ w over a query's template edges
	totQTTempl []float64 // Σ w over a template's query edges

	numEdges int
	version  uint64
}

// New creates an empty graph.
func New() *Graph { return &Graph{} }

// AddNode adds a vertex of the given kind and returns its ID.
func (g *Graph) AddNode(k Kind) NodeID {
	id := NodeID(len(g.kinds))
	g.kinds = append(g.kinds, k)
	g.pqByPage = append(g.pqByPage, nil)
	g.pqByQuery = append(g.pqByQuery, nil)
	g.qtByQuery = append(g.qtByQuery, nil)
	g.qtByTempl = append(g.qtByTempl, nil)
	g.totPQPage = append(g.totPQPage, 0)
	g.totPQQuery = append(g.totPQQuery, 0)
	g.totQTQuery = append(g.totQTQuery, 0)
	g.totQTTempl = append(g.totQTTempl, 0)
	g.version++
	return id
}

// NumNodes returns the vertex count.
func (g *Graph) NumNodes() int { return len(g.kinds) }

// Version counts mutations (node adds, edge adds, detaches). Callers that
// cache anything derived from the topology — solved utilities used as warm
// starts, materialized operators — compare versions to detect staleness.
func (g *Graph) Version() uint64 { return g.version }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return g.numEdges }

// KindOf returns a vertex's kind.
func (g *Graph) KindOf(id NodeID) Kind { return g.kinds[id] }

// Degree returns the number of incident edges of a vertex.
func (g *Graph) Degree(id NodeID) int {
	switch g.kinds[id] {
	case KindPage:
		return len(g.pqByPage[id])
	case KindQuery:
		return len(g.pqByQuery[id]) + len(g.qtByQuery[id])
	default:
		return len(g.qtByTempl[id])
	}
}

// AddEdgePQ connects a page and a query with weight w > 0 (Wpq in the
// paper: the strength with which q retrieves p). Panics on kind mismatch
// or non-positive weight — both are programmer errors.
func (g *Graph) AddEdgePQ(p, q NodeID, w float64) {
	if g.kinds[p] != KindPage || g.kinds[q] != KindQuery {
		panic(fmt.Sprintf("graph: AddEdgePQ(%s,%s)", g.kinds[p], g.kinds[q]))
	}
	if w <= 0 {
		panic("graph: non-positive edge weight")
	}
	g.pqByPage[p] = append(g.pqByPage[p], halfEdge{to: q, w: w})
	g.pqByQuery[q] = append(g.pqByQuery[q], halfEdge{to: p, w: w})
	g.totPQPage[p] += w
	g.totPQQuery[q] += w
	g.numEdges++
	g.version++
}

// AddEdgeQT connects a query and a template with weight w > 0 (Wqt: t
// abstracts q).
func (g *Graph) AddEdgeQT(q, t NodeID, w float64) {
	if g.kinds[q] != KindQuery || g.kinds[t] != KindTemplate {
		panic(fmt.Sprintf("graph: AddEdgeQT(%s,%s)", g.kinds[q], g.kinds[t]))
	}
	if w <= 0 {
		panic("graph: non-positive edge weight")
	}
	g.qtByQuery[q] = append(g.qtByQuery[q], halfEdge{to: t, w: w})
	g.qtByTempl[t] = append(g.qtByTempl[t], halfEdge{to: q, w: w})
	g.totQTQuery[q] += w
	g.totQTTempl[t] += w
	g.numEdges++
	g.version++
}

// DetachQuery removes every edge incident to a query vertex, leaving it
// isolated. An isolated vertex with zero regularization is invisible to
// both walks — its utility is 0 and it contributes to no neighbor — so
// detaching is exactly equivalent to the vertex never having been added.
// This is how a persistent session graph retires a fired query (fired
// queries leave the candidate pool) without renumbering nodes.
//
// Totals on the affected neighbors are recomputed by re-summing their
// remaining edges, not decremented, so they match a from-scratch build
// exactly. Cost is O(Σ degree of the detached query's neighbors).
func (g *Graph) DetachQuery(q NodeID) {
	if g.kinds[q] != KindQuery {
		panic(fmt.Sprintf("graph: DetachQuery(%s)", g.kinds[q]))
	}
	for _, e := range g.pqByQuery[q] {
		g.pqByPage[e.to] = dropEdgesTo(g.pqByPage[e.to], q)
		g.totPQPage[e.to] = sumWeights(g.pqByPage[e.to])
		g.numEdges--
	}
	for _, e := range g.qtByQuery[q] {
		g.qtByTempl[e.to] = dropEdgesTo(g.qtByTempl[e.to], q)
		g.totQTTempl[e.to] = sumWeights(g.qtByTempl[e.to])
		g.numEdges--
	}
	g.pqByQuery[q] = nil
	g.qtByQuery[q] = nil
	g.totPQQuery[q] = 0
	g.totQTQuery[q] = 0
	g.version++
}

// dropEdgesTo filters out all half-edges pointing at v, in place.
func dropEdgesTo(edges []halfEdge, v NodeID) []halfEdge {
	out := edges[:0]
	for _, e := range edges {
		if e.to != v {
			out = append(out, e)
		}
	}
	return out
}

func sumWeights(edges []halfEdge) float64 {
	s := 0.0
	for _, e := range edges {
		s += e.w
	}
	return s
}
