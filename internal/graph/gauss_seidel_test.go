package graph

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestGaussSeidelSameFixpoint: both schemes must converge to the same
// unique fixpoint of Eq. 13.
func TestGaussSeidelSameFixpoint(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	for trial := 0; trial < 15; trial++ {
		g, ids := randomGraph(rng, 4+rng.IntN(6), 4+rng.IntN(10), 1+rng.IntN(4))
		reg := make([]float64, g.NumNodes())
		for _, id := range ids {
			if g.KindOf(id) == KindPage {
				reg[id] = rng.Float64()
			}
		}
		for _, mode := range []Mode{Precision, Recall} {
			jac, err := Solve(Problem{G: g, Mode: mode, Reg: reg, Tol: 1e-13})
			if err != nil {
				t.Fatal(err)
			}
			gs, err := Solve(Problem{G: g, Mode: mode, Reg: reg, Tol: 1e-13, Scheme: GaussSeidel})
			if err != nil {
				t.Fatal(err)
			}
			for i := range jac.U {
				if math.Abs(jac.U[i]-gs.U[i]) > 1e-8 {
					t.Fatalf("trial %d mode %v node %d: jacobi %g vs gauss-seidel %g",
						trial, mode, i, jac.U[i], gs.U[i])
				}
			}
			if !gs.Converged {
				t.Fatalf("gauss-seidel did not converge")
			}
		}
	}
}

// TestGaussSeidelConvergesFaster: on a typical graph the in-place sweep
// should not need more iterations than Jacobi.
func TestGaussSeidelIterationCount(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 23))
	g, ids := randomGraph(rng, 10, 40, 6)
	reg := make([]float64, g.NumNodes())
	for _, id := range ids {
		if g.KindOf(id) == KindPage {
			reg[id] = rng.Float64()
		}
	}
	jac, err := Solve(Problem{G: g, Mode: Precision, Reg: reg, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	gs, err := Solve(Problem{G: g, Mode: Precision, Reg: reg, Tol: 1e-12, Scheme: GaussSeidel})
	if err != nil {
		t.Fatal(err)
	}
	if gs.Iterations > jac.Iterations {
		t.Fatalf("gauss-seidel used %d iterations, jacobi %d", gs.Iterations, jac.Iterations)
	}
}
