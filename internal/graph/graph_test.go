package graph

import (
	"math"
	"math/rand/v2"
	"testing"
)

// fig2 builds the paper's running example (Fig. 2): six pages of Marc Snir,
// five queries, Y = RESEARCH with p1..p4 relevant.
//
//	q1: p1,p2,p3   q2: p1,p2   q3: p3,p4   q4: p4,p5,p6   q5: p6
func fig2(t *testing.T) (g *Graph, pages, queries []NodeID) {
	t.Helper()
	g = New()
	pages = make([]NodeID, 6)
	for i := range pages {
		pages[i] = g.AddNode(KindPage)
	}
	queries = make([]NodeID, 5)
	for i := range queries {
		queries[i] = g.AddNode(KindQuery)
	}
	edges := map[int][]int{0: {0, 1, 2}, 1: {0, 1}, 2: {2, 3}, 3: {3, 4, 5}, 4: {5}}
	for qi, ps := range edges {
		for _, pi := range ps {
			g.AddEdgePQ(pages[pi], queries[qi], 1)
		}
	}
	return g, pages, queries
}

func regFig2(g *Graph, pages []NodeID, mode Mode) []float64 {
	reg := make([]float64, g.NumNodes())
	for i := 0; i < 4; i++ { // p1..p4 relevant
		if mode == Precision {
			reg[pages[i]] = 1
		} else {
			reg[pages[i]] = 0.25
		}
	}
	return reg
}

func solveFig2(t *testing.T, mode Mode) (pages, queries []NodeID, u []float64) {
	t.Helper()
	g, pages, queries := fig2(t)
	res, err := Solve(Problem{G: g, Mode: mode, Reg: regFig2(g, pages, mode)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("solver did not converge in %d iterations", res.Iterations)
	}
	return pages, queries, res.U
}

func TestFig2Precision(t *testing.T) {
	_, queries, u := solveFig2(t, Precision)
	// q1 and q2 retrieve only relevant pages; q4 retrieves 1/3 relevant;
	// q5 retrieves none.
	if !(u[queries[0]] > u[queries[3]]) {
		t.Errorf("P(q1)=%.4f should exceed P(q4)=%.4f", u[queries[0]], u[queries[3]])
	}
	if !(u[queries[1]] > u[queries[3]]) {
		t.Errorf("P(q2)=%.4f should exceed P(q4)=%.4f", u[queries[1]], u[queries[3]])
	}
	if !(u[queries[3]] > u[queries[4]]) {
		t.Errorf("P(q4)=%.4f should exceed P(q5)=%.4f", u[queries[3]], u[queries[4]])
	}
	if !(u[queries[2]] > u[queries[4]]) {
		t.Errorf("P(q3)=%.4f should exceed P(q5)=%.4f", u[queries[2]], u[queries[4]])
	}
}

func TestFig2Recall(t *testing.T) {
	_, queries, u := solveFig2(t, Recall)
	// q1 covers three relevant pages, q2 two, q5 zero.
	if !(u[queries[0]] > u[queries[1]]) {
		t.Errorf("R(q1)=%.4f should exceed R(q2)=%.4f", u[queries[0]], u[queries[1]])
	}
	if !(u[queries[1]] > u[queries[4]]) {
		t.Errorf("R(q2)=%.4f should exceed R(q5)=%.4f", u[queries[1]], u[queries[4]])
	}
	if !(u[queries[2]] > u[queries[4]]) {
		t.Errorf("R(q3)=%.4f should exceed R(q5)=%.4f", u[queries[2]], u[queries[4]])
	}
}

// TestFig5Templates extends the running example with templates (Fig. 5):
// t1 abstracts q1,q2; t2 abstracts q3; t3 abstracts q4,q5. t1 covers only
// relevant pages while t3 covers mostly irrelevant ones, so P(t1) > P(t3)
// and R(t1) > R(t3).
func TestFig5Templates(t *testing.T) {
	g, pages, queries := fig2(t)
	t1 := g.AddNode(KindTemplate)
	t2 := g.AddNode(KindTemplate)
	t3 := g.AddNode(KindTemplate)
	g.AddEdgeQT(queries[0], t1, 1)
	g.AddEdgeQT(queries[1], t1, 1)
	g.AddEdgeQT(queries[2], t2, 1)
	g.AddEdgeQT(queries[3], t3, 1)
	g.AddEdgeQT(queries[4], t3, 1)

	for _, mode := range []Mode{Precision, Recall} {
		reg := regFig2(g, pages, mode)
		res, err := Solve(Problem{G: g, Mode: mode, Reg: reg})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("mode %v did not converge", mode)
		}
		if !(res.U[t1] > res.U[t3]) {
			t.Errorf("mode %v: U(t1)=%.5f should exceed U(t3)=%.5f", mode, res.U[t1], res.U[t3])
		}
	}
}

func TestIsolatedNodeGetsOnlyRegularization(t *testing.T) {
	g := New()
	p := g.AddNode(KindPage)
	reg := []float64{0.8}
	res, err := Solve(Problem{G: g, Mode: Precision, Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultAlpha * 0.8
	if math.Abs(res.U[p]-want) > 1e-9 {
		t.Errorf("isolated node U = %.6f, want %.6f", res.U[p], want)
	}
}

func TestSolveValidation(t *testing.T) {
	g := New()
	g.AddNode(KindPage)
	if _, err := Solve(Problem{G: nil, Reg: nil}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Solve(Problem{G: g, Reg: []float64{1, 2}}); err == nil {
		t.Error("wrong reg length accepted")
	}
	if _, err := Solve(Problem{G: g, Reg: []float64{1}, Alpha: 1.5}); err == nil {
		t.Error("alpha out of range accepted")
	}
}

func TestEdgeValidationPanics(t *testing.T) {
	g := New()
	p := g.AddNode(KindPage)
	q := g.AddNode(KindQuery)
	tm := g.AddNode(KindTemplate)

	assertPanics(t, "PQ kind mismatch", func() { g.AddEdgePQ(q, p, 1) })
	assertPanics(t, "QT kind mismatch", func() { g.AddEdgeQT(p, tm, 1) })
	assertPanics(t, "zero weight", func() { g.AddEdgePQ(p, q, 0) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

// randomGraph builds a random tripartite graph for property tests.
func randomGraph(rng *rand.Rand, nP, nQ, nT int) (*Graph, []NodeID) {
	g := New()
	ids := make([]NodeID, 0, nP+nQ+nT)
	var ps, qs, ts []NodeID
	for i := 0; i < nP; i++ {
		id := g.AddNode(KindPage)
		ps = append(ps, id)
		ids = append(ids, id)
	}
	for i := 0; i < nQ; i++ {
		id := g.AddNode(KindQuery)
		qs = append(qs, id)
		ids = append(ids, id)
	}
	for i := 0; i < nT; i++ {
		id := g.AddNode(KindTemplate)
		ts = append(ts, id)
		ids = append(ids, id)
	}
	for _, q := range qs {
		for _, p := range ps {
			if rng.Float64() < 0.4 {
				g.AddEdgePQ(p, q, 0.2+rng.Float64())
			}
		}
		for _, tm := range ts {
			if rng.Float64() < 0.4 {
				g.AddEdgeQT(q, tm, 0.2+rng.Float64())
			}
		}
	}
	return g, ids
}

func TestPropertyPrecisionBoundedByMaxReg(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 30; trial++ {
		g, ids := randomGraph(rng, 2+rng.IntN(8), 2+rng.IntN(8), 1+rng.IntN(4))
		reg := make([]float64, g.NumNodes())
		maxReg := 0.0
		for _, id := range ids {
			if g.KindOf(id) == KindPage && rng.Float64() < 0.5 {
				reg[id] = rng.Float64()
				if reg[id] > maxReg {
					maxReg = reg[id]
				}
			}
		}
		res, err := Solve(Problem{G: g, Mode: Precision, Reg: reg})
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			if res.U[id] < -1e-12 || res.U[id] > maxReg+1e-12 {
				t.Fatalf("trial %d: precision %f outside [0, %f]", trial, res.U[id], maxReg)
			}
		}
	}
}

func TestPropertyRecallMassBounded(t *testing.T) {
	// The forward walk only redistributes the regularization mass, so
	// total solved recall cannot exceed total injected mass.
	rng := rand.New(rand.NewPCG(5, 17))
	for trial := 0; trial < 30; trial++ {
		g, ids := randomGraph(rng, 2+rng.IntN(8), 2+rng.IntN(8), 1+rng.IntN(4))
		reg := make([]float64, g.NumNodes())
		var mass float64
		var pageIDs []NodeID
		for _, id := range ids {
			if g.KindOf(id) == KindPage {
				pageIDs = append(pageIDs, id)
			}
		}
		for _, id := range pageIDs {
			reg[id] = 1 / float64(len(pageIDs))
			mass += reg[id]
		}
		res, err := Solve(Problem{G: g, Mode: Recall, Reg: reg})
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, id := range pageIDs {
			total += res.U[id]
		}
		if total > mass+1e-9 {
			t.Fatalf("trial %d: page recall mass %f exceeds injected %f", trial, total, mass)
		}
	}
}

func TestPropertySolutionIsFixpoint(t *testing.T) {
	// Applying one more update step to the converged solution must not
	// move it: the solution satisfies Eq. 13 exactly (within tolerance).
	rng := rand.New(rand.NewPCG(23, 29))
	for trial := 0; trial < 20; trial++ {
		g, ids := randomGraph(rng, 3+rng.IntN(6), 3+rng.IntN(6), 1+rng.IntN(3))
		reg := make([]float64, g.NumNodes())
		for _, id := range ids {
			if g.KindOf(id) == KindPage {
				reg[id] = rng.Float64()
			}
		}
		for _, mode := range []Mode{Precision, Recall} {
			res, err := Solve(Problem{G: g, Mode: mode, Reg: reg, Tol: 1e-13})
			if err != nil {
				t.Fatal(err)
			}
			next := make([]float64, g.NumNodes())
			if mode == Precision {
				stepPrecision(g, DefaultAlpha, reg, res.U, next)
			} else {
				stepRecall(g, DefaultAlpha, reg, res.U, next)
			}
			for i := range next {
				if math.Abs(next[i]-res.U[i]) > 1e-9 {
					t.Fatalf("trial %d mode %v: not a fixpoint at node %d: %g vs %g",
						trial, mode, i, next[i], res.U[i])
				}
			}
		}
	}
}

func TestPropertyMonotoneInRegularization(t *testing.T) {
	// Raising one page's regularization must not lower any utility
	// (the propagation operator is monotone).
	rng := rand.New(rand.NewPCG(41, 43))
	for trial := 0; trial < 20; trial++ {
		g, ids := randomGraph(rng, 3+rng.IntN(5), 3+rng.IntN(5), 1+rng.IntN(3))
		reg := make([]float64, g.NumNodes())
		var pagePick NodeID = -1
		for _, id := range ids {
			if g.KindOf(id) == KindPage {
				reg[id] = rng.Float64() * 0.5
				pagePick = id
			}
		}
		if pagePick < 0 {
			continue
		}
		base, err := Solve(Problem{G: g, Mode: Precision, Reg: reg})
		if err != nil {
			t.Fatal(err)
		}
		reg2 := make([]float64, len(reg))
		copy(reg2, reg)
		reg2[pagePick] += 0.4
		boosted, err := Solve(Problem{G: g, Mode: Precision, Reg: reg2})
		if err != nil {
			t.Fatal(err)
		}
		for i := range base.U {
			if boosted.U[i] < base.U[i]-1e-9 {
				t.Fatalf("trial %d: utility dropped at node %d after boost", trial, i)
			}
		}
	}
}

func TestDegreeAndAccessors(t *testing.T) {
	g, pages, queries := fig2(t)
	if g.NumNodes() != 11 || g.NumEdges() != 11 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if g.Degree(pages[0]) != 2 { // p1 in q1, q2
		t.Fatalf("Degree(p1) = %d", g.Degree(pages[0]))
	}
	if g.Degree(queries[0]) != 3 {
		t.Fatalf("Degree(q1) = %d", g.Degree(queries[0]))
	}
	if g.KindOf(pages[0]) != KindPage || KindPage.String() != "page" ||
		KindQuery.String() != "query" || KindTemplate.String() != "template" {
		t.Fatal("kind accessors wrong")
	}
	if Precision.String() != "precision" || Recall.String() != "recall" {
		t.Fatal("mode strings wrong")
	}
}
