package graph

import (
	"math"
	"math/rand/v2"
	"testing"
)

// randTripartite builds a random page–query–template graph with every node
// kind populated and a sprinkling of isolated nodes.
func randTripartite(rng *rand.Rand, nP, nQ, nT int) (*Graph, []NodeID, []NodeID, []NodeID) {
	g := New()
	pages := make([]NodeID, nP)
	queries := make([]NodeID, nQ)
	templates := make([]NodeID, nT)
	for i := range pages {
		pages[i] = g.AddNode(KindPage)
	}
	for i := range queries {
		queries[i] = g.AddNode(KindQuery)
	}
	for i := range templates {
		templates[i] = g.AddNode(KindTemplate)
	}
	for _, q := range queries {
		for _, p := range pages {
			if rng.Float64() < 0.3 {
				g.AddEdgePQ(p, q, 0.25+rng.Float64())
			}
		}
		for _, t := range templates {
			if rng.Float64() < 0.4 {
				g.AddEdgeQT(q, t, 0.25+rng.Float64())
			}
		}
	}
	return g, pages, queries, templates
}

// randReg places regularization mass on a few pages (the realistic shape:
// Û is concentrated on relevant pages).
func randReg(rng *rand.Rand, g *Graph, pages []NodeID) []float64 {
	reg := make([]float64, g.NumNodes())
	for _, p := range pages {
		if rng.Float64() < 0.4 {
			reg[p] = rng.Float64()
		}
	}
	return reg
}

// TestOperatorApplyMatchesStep checks BuildOperator row-for-row against the
// reference step functions: A·x must equal stepMode(x) with α = 0.
func TestOperatorApplyMatchesStep(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for trial := 0; trial < 10; trial++ {
		g, _, _, _ := randTripartite(rng, 6, 8, 3)
		x := make([]float64, g.NumNodes())
		for i := range x {
			x[i] = rng.Float64()
		}
		zeros := make([]float64, g.NumNodes())
		for _, mode := range []Mode{Precision, Recall} {
			op := BuildOperator(g, mode)
			got := make([]float64, g.NumNodes())
			op.Apply(x, got)

			want := make([]float64, g.NumNodes())
			// stepX computes out = (1−α)·A·x + α·reg; with reg = 0 and a
			// tiny α the difference from A·x is a pure (1−α) scale.
			const alpha = 1e-9
			if mode == Precision {
				stepPrecision(g, alpha, zeros, x, want)
			} else {
				stepRecall(g, alpha, zeros, x, want)
			}
			for i := range want {
				if diff := math.Abs(got[i]*(1-alpha) - want[i]); diff > 1e-9 {
					t.Fatalf("mode %v node %d: apply %v, step %v", mode, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPushMatchesSolve checks the push solver against the power-iteration
// fixpoint on random graphs, both modes.
func TestPushMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 24))
	for trial := 0; trial < 10; trial++ {
		g, pages, _, _ := randTripartite(rng, 8, 12, 4)
		reg := randReg(rng, g, pages)
		for _, mode := range []Mode{Precision, Recall} {
			exact, err := Solve(Problem{G: g, Mode: mode, Alpha: 0.15, Reg: reg, Tol: 1e-14})
			if err != nil {
				t.Fatal(err)
			}
			approx, err := PushSolve(PushProblem{G: g, Mode: mode, Alpha: 0.15, Reg: reg, Eps: 1e-12})
			if err != nil {
				t.Fatal(err)
			}
			if !approx.Converged {
				t.Fatalf("trial %d mode %v: push did not converge", trial, mode)
			}
			for i := range exact.U {
				if diff := math.Abs(exact.U[i] - approx.U[i]); diff > 1e-8 {
					t.Fatalf("trial %d mode %v node %d: solve %v, push %v",
						trial, mode, i, exact.U[i], approx.U[i])
				}
			}
		}
	}
}

// TestPushEpsilonControlsAccuracy verifies that tightening Eps strictly
// reduces (or keeps equal) the worst-case deviation from the fixpoint.
func TestPushEpsilonControlsAccuracy(t *testing.T) {
	rng := rand.New(rand.NewPCG(25, 26))
	g, pages, _, _ := randTripartite(rng, 10, 15, 5)
	reg := randReg(rng, g, pages)
	exact, err := Solve(Problem{G: g, Mode: Precision, Alpha: 0.15, Reg: reg, Tol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	maxErr := func(eps float64) float64 {
		r, err := PushSolve(PushProblem{G: g, Mode: Precision, Alpha: 0.15, Reg: reg, Eps: eps})
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for i := range exact.U {
			if d := math.Abs(exact.U[i] - r.U[i]); d > worst {
				worst = d
			}
		}
		return worst
	}
	loose := maxErr(1e-3)
	tight := maxErr(1e-10)
	if tight > loose+1e-12 {
		t.Fatalf("tight eps error %v > loose %v", tight, loose)
	}
	if tight > 1e-8 {
		t.Fatalf("tight eps error %v too large", tight)
	}
	// The documented L∞ bound for precision mode.
	if loose > 1e-3+1e-9 {
		t.Fatalf("loose error %v exceeds the eps bound", loose)
	}
}

// TestPushLocality checks the headline property: with concentrated
// regularization, push touches far fewer coefficient reads than a full
// power iteration would.
func TestPushLocality(t *testing.T) {
	rng := rand.New(rand.NewPCG(27, 28))
	// A graph with many disconnected communities; mass in one of them.
	g := New()
	var reg []float64
	var firstPage NodeID
	const communities = 50
	for c := 0; c < communities; c++ {
		p1 := g.AddNode(KindPage)
		p2 := g.AddNode(KindPage)
		q := g.AddNode(KindQuery)
		tpl := g.AddNode(KindTemplate)
		g.AddEdgePQ(p1, q, 1)
		g.AddEdgePQ(p2, q, 1)
		g.AddEdgeQT(q, tpl, 1)
		if c == 0 {
			firstPage = p1
		}
		_ = rng
	}
	reg = make([]float64, g.NumNodes())
	reg[firstPage] = 1

	r, err := PushSolve(PushProblem{G: g, Mode: Precision, Alpha: 0.15, Reg: reg, Eps: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatal("push did not converge")
	}
	// Pushes scale with the 4-node community times the geometric decay
	// horizon (~log(eps)/log(1−α) ≈ 142 rounds), not with the 200-node
	// graph: power iteration would touch all 200 nodes every one of those
	// rounds (~28k node updates).
	powerWork := g.NumNodes() * 142
	if r.Iterations*10 > powerWork {
		t.Fatalf("pushes %d not local (power iteration work ≈ %d)", r.Iterations, powerWork)
	}
	// Only the active community carries mass.
	for v := 4; v < g.NumNodes(); v++ {
		if r.U[v] != 0 {
			t.Fatalf("node %d outside the community has mass %v", v, r.U[v])
		}
	}
}

func TestPushSolveValidation(t *testing.T) {
	if _, err := PushSolve(PushProblem{}); err == nil {
		t.Error("missing graph accepted")
	}
	g := New()
	g.AddNode(KindPage)
	if _, err := PushSolve(PushProblem{G: g, Reg: []float64{1, 2}}); err == nil {
		t.Error("bad reg length accepted")
	}
	if _, err := PushSolve(PushProblem{G: g, Reg: []float64{1}, Alpha: 2}); err == nil {
		t.Error("bad alpha accepted")
	}
}

func TestPushMaxPushesBudget(t *testing.T) {
	rng := rand.New(rand.NewPCG(29, 30))
	g, pages, _, _ := randTripartite(rng, 10, 15, 5)
	reg := randReg(rng, g, pages)
	r, err := PushSolve(PushProblem{G: g, Mode: Recall, Alpha: 0.15, Reg: reg,
		Eps: 1e-15, MaxPushes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Converged {
		t.Error("3 pushes cannot converge at eps=1e-15 on this graph")
	}
	if r.Iterations > 3 {
		t.Errorf("budget exceeded: %d pushes", r.Iterations)
	}
}

// TestPushReuseOperator checks the Op short-circuit path.
func TestPushReuseOperator(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	g, pages, _, _ := randTripartite(rng, 6, 9, 3)
	reg := randReg(rng, g, pages)
	op := BuildOperator(g, Recall)
	a, err := PushSolve(PushProblem{Op: op, Alpha: 0.15, Reg: reg, Eps: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PushSolve(PushProblem{G: g, Mode: Recall, Alpha: 0.15, Reg: reg, Eps: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.U {
		if a.U[i] != b.U[i] {
			t.Fatalf("node %d: operator path %v, graph path %v", i, a.U[i], b.U[i])
		}
	}
	if op.NumNodes() != g.NumNodes() || op.NNZ() == 0 {
		t.Errorf("operator stats: %d nodes, %d nnz", op.NumNodes(), op.NNZ())
	}
}
