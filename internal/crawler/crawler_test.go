package crawler

import (
	"reflect"
	"testing"

	"l2q/internal/classify"
	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/search"
	"l2q/internal/synth"
	"l2q/internal/types"
)

// chainCorpus builds a tiny hand-wired web:
//
//	s0 (rel) → {r1 (rel), n1 (irrel)}
//	r1 → r2 (rel), n1 → n2 (irrel), r2 → r3 (rel)
//
// A best-first crawler with budget 4 must fetch s0, r1, r2 (following the
// relevant branch first) before any n-page beyond the tie at the top.
func chainCorpus(t *testing.T) (map[corpus.PageID]*corpus.Page, []*corpus.Page, func(*corpus.Page) bool) {
	t.Helper()
	c := corpus.New("test")
	if err := c.AddEntity(&corpus.Entity{ID: 1, Name: "e", SeedQuery: "e"}); err != nil {
		t.Fatal(err)
	}
	rel := map[corpus.PageID]bool{0: true, 1: true, 2: true, 3: true}
	mk := func(id corpus.PageID, links ...corpus.PageID) *corpus.Page {
		p := &corpus.Page{ID: id, Entity: 1, Links: links,
			Paras: []corpus.Paragraph{{Text: "x", Tokens: []string{"x"}}}}
		if err := c.AddPage(p); err != nil {
			t.Fatal(err)
		}
		return p
	}
	s0 := mk(0, 1, 10) // relevant seed linking to r1 and n1
	mk(1, 2)           // r1 → r2
	mk(2, 3)           // r2 → r3
	mk(3)
	mk(10, 11) // n1 → n2
	mk(11)
	y := func(p *corpus.Page) bool { return rel[p.ID] }
	return PageIndex(c), []*corpus.Page{s0}, y
}

func TestCrawlFollowsRelevance(t *testing.T) {
	byID, seeds, y := chainCorpus(t)
	res := Crawl(byID, seeds, y, Config{Budget: 4})
	if res.Fetches != 4 {
		t.Fatalf("fetches = %d", res.Fetches)
	}
	var ids []corpus.PageID
	for _, p := range res.Pages {
		ids = append(ids, p.ID)
	}
	// s0 first; r1 and n1 tie (both discovered from the relevant seed),
	// FIFO breaks toward r1; r1 is relevant so r2 (priority 1) beats n2
	// (priority 0, from irrelevant n1).
	want := []corpus.PageID{0, 1, 10, 2}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("crawl order %v, want %v", ids, want)
	}
}

func TestCrawlBudget(t *testing.T) {
	byID, seeds, y := chainCorpus(t)
	for _, budget := range []int{0, 1, 3, 100} {
		res := Crawl(byID, seeds, y, Config{Budget: budget})
		if res.Fetches > budget {
			t.Errorf("budget %d: %d fetches", budget, res.Fetches)
		}
		if budget >= 6 && res.Fetches != 6 {
			t.Errorf("budget %d: fetched %d of 6 reachable pages", budget, res.Fetches)
		}
	}
}

func TestCrawlDeterminism(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	byID := PageIndex(g.Corpus)
	seeds := g.Corpus.PagesOf(g.Corpus.Entities[0].ID)[:2]
	aspect := synth.AspResearch
	y := func(p *corpus.Page) bool { return classify.GroundTruth(p, aspect) }

	a := Crawl(byID, seeds, y, Config{Budget: 30})
	b := Crawl(byID, seeds, y, Config{Budget: 30})
	if len(a.Pages) != len(b.Pages) {
		t.Fatal("nondeterministic crawl size")
	}
	for i := range a.Pages {
		if a.Pages[i].ID != b.Pages[i].ID {
			t.Fatalf("nondeterministic order at %d", i)
		}
	}
}

func TestCrawlMaxFrontier(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainCars))
	if err != nil {
		t.Fatal(err)
	}
	byID := PageIndex(g.Corpus)
	seeds := g.Corpus.PagesOf(g.Corpus.Entities[0].ID)[:2]
	y := func(*corpus.Page) bool { return true }
	res := Crawl(byID, seeds, y, Config{Budget: 10, MaxFrontier: 3})
	if res.FrontierLeft > 3 {
		t.Errorf("frontier grew to %d past the cap", res.FrontierLeft)
	}
}

// TestCrawlSink: the sink sees every fetched page, in fetch order — the
// contract the live-index feed (examples/livecrawl) depends on.
func TestCrawlSink(t *testing.T) {
	byID, seeds, y := chainCorpus(t)
	var sunk []corpus.PageID
	res := Crawl(byID, seeds, y, Config{Budget: 4, Sink: func(p *corpus.Page) {
		sunk = append(sunk, p.ID)
	}})
	var fetched []corpus.PageID
	for _, p := range res.Pages {
		fetched = append(fetched, p.ID)
	}
	if !reflect.DeepEqual(sunk, fetched) {
		t.Fatalf("sink saw %v, fetch order was %v", sunk, fetched)
	}
}

func TestCrawlDanglingLinks(t *testing.T) {
	c := corpus.New("test")
	if err := c.AddEntity(&corpus.Entity{ID: 1, Name: "e", SeedQuery: "e"}); err != nil {
		t.Fatal(err)
	}
	p := &corpus.Page{ID: 0, Entity: 1, Links: []corpus.PageID{404, 405},
		Paras: []corpus.Paragraph{{Text: "x", Tokens: []string{"x"}}}}
	if err := c.AddPage(p); err != nil {
		t.Fatal(err)
	}
	res := Crawl(PageIndex(c), []*corpus.Page{p}, func(*corpus.Page) bool { return true },
		Config{Budget: 10})
	if res.Fetches != 1 {
		t.Errorf("fetches = %d (dangling links must not count)", res.Fetches)
	}
}

// TestQueryHarvestBeatsCrawler materializes the paper's motivating claim on
// the synthetic web: at the same page budget, the query-driven harvester's
// aspect F-score beats the link-driven focused crawler's, because links
// encode entity locality but not aspects.
func TestQueryHarvestBeatsCrawler(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	engine := search.NewEngine(search.BuildIndex(g.Corpus.Pages))
	rec := types.Chain{g.KB, types.NewRegexRecognizer()}
	aspect := synth.AspResearch
	y := func(p *corpus.Page) bool { return classify.GroundTruth(p, aspect) }
	cfg := core.DefaultConfig()
	cfg.Tokenizer = g.Tokenizer
	var domain []corpus.EntityID
	for i := 0; i < g.Corpus.NumEntities()/2; i++ {
		domain = append(domain, g.Corpus.Entities[i].ID)
	}
	dm, err := core.LearnDomain(cfg, aspect, g.Corpus, domain, y, rec)
	if err != nil {
		t.Fatal(err)
	}
	byID := PageIndex(g.Corpus)

	fscore := func(pages []*corpus.Page, entity corpus.EntityID) float64 {
		var relevant int
		for _, p := range g.Corpus.PagesOf(entity) {
			if y(p) {
				relevant++
			}
		}
		hit, got := 0, 0
		seen := map[corpus.PageID]struct{}{}
		for _, p := range pages {
			if _, dup := seen[p.ID]; dup {
				continue
			}
			seen[p.ID] = struct{}{}
			got++
			if p.Entity == entity && y(p) {
				hit++
			}
		}
		if got == 0 || relevant == 0 || hit == 0 {
			return 0
		}
		prec := float64(hit) / float64(got)
		rec := float64(hit) / float64(relevant)
		return 2 * prec * rec / (prec + rec)
	}

	var l2qSum, crawlSum float64
	n := 0
	targets := g.Corpus.Entities[g.Corpus.NumEntities()-4:]
	for _, e := range targets {
		sess := core.NewSession(cfg, engine, e, aspect, y, dm, rec, 1)
		sess.Run(core.NewL2QBAL(), 3)
		budget := len(sess.Pages())

		seeds := engine.SearchWithSeed(e.SeedTokens(), nil)
		seedPages := make([]*corpus.Page, 0, len(seeds))
		for _, r := range seeds {
			seedPages = append(seedPages, r.Page)
		}
		crawl := Crawl(byID, seedPages, y, Config{Budget: budget})

		l2qSum += fscore(sess.Pages(), e.ID)
		crawlSum += fscore(crawl.Pages, e.ID)
		n++
	}
	l2qF, crawlF := l2qSum/float64(n), crawlSum/float64(n)
	t.Logf("mean F over %d entities: L2QBAL %.3f, focused crawler %.3f", n, l2qF, crawlF)
	if l2qF <= crawlF {
		t.Errorf("query harvesting (%.3f) did not beat link crawling (%.3f)", l2qF, crawlF)
	}
}
