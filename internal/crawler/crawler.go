// Package crawler implements a best-first focused crawler — the
// link-following alternative to query-driven harvesting that the paper's
// related work contrasts against (§II: "our setting differs from
// traditional Web crawling [7], [8], [9], which follow links in the
// gathered pages").
//
// The crawler is the classic focused-crawling recipe (Chakrabarti et al.;
// Diligenti et al.'s context-graph crawlers are its refinement): maintain
// a frontier of discovered-but-unfetched URLs, prioritized by the
// relevance of the pages that link to them, fetch the best one, classify
// it, and enqueue its out-links. The comparison experiment
// (BenchmarkAblationCrawlerVsQueries and l2qexp -fig crawl) materializes
// the paper's argument: links on entity pages encode *entity* locality but
// carry no signal about the target *aspect*, so at equal page budgets the
// focused crawler trails the query-driven harvester on aspect F-score.
package crawler

import (
	"container/heap"

	"l2q/internal/corpus"
)

// Config tunes a crawl.
type Config struct {
	// Budget is the number of page fetches (the resource the paper
	// meters: downloads cost time, bandwidth and API money).
	Budget int
	// MaxFrontier caps the frontier size; 0 means unbounded.
	MaxFrontier int
	// Sink, when non-nil, receives every fetched page in fetch order —
	// the hook that streams a crawl into a live index (see
	// examples/livecrawl) instead of batching Result.Pages at the end.
	Sink func(*corpus.Page)
}

// Result is the outcome of a crawl.
type Result struct {
	// Pages are the fetched pages, in fetch order (includes seeds).
	Pages []*corpus.Page
	// Fetches is the number of page fetches spent.
	Fetches int
	// FrontierLeft is the frontier size when the budget ran out.
	FrontierLeft int
}

// frontierItem is one discovered link waiting to be fetched.
type frontierItem struct {
	id corpus.PageID
	// priority is the best relevance among parents that linked here
	// (1 = a relevant page linked to it, 0 = only irrelevant parents).
	priority float64
	// order breaks priority ties FIFO for determinism.
	order int
	index int
}

type frontier struct {
	items []*frontierItem
	byID  map[corpus.PageID]*frontierItem
}

func (f *frontier) Len() int { return len(f.items) }
func (f *frontier) Less(i, j int) bool {
	if f.items[i].priority != f.items[j].priority {
		return f.items[i].priority > f.items[j].priority
	}
	return f.items[i].order < f.items[j].order
}
func (f *frontier) Swap(i, j int) {
	f.items[i], f.items[j] = f.items[j], f.items[i]
	f.items[i].index = i
	f.items[j].index = j
}
func (f *frontier) Push(x any) {
	it := x.(*frontierItem)
	it.index = len(f.items)
	f.items = append(f.items, it)
}
func (f *frontier) Pop() any {
	old := f.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	f.items = old[:n-1]
	return it
}

// Crawl runs a best-first focused crawl. Fetching is modeled by lookup in
// the fixed corpus (pageByID), exactly parallel to how the query-driven
// methods retrieve from the same fixed collection. seeds are the entry
// pages (typically the seed query's results — the same entry point L2Q
// gets); y is the materialized aspect relevance used to prioritize.
func Crawl(pageByID map[corpus.PageID]*corpus.Page, seeds []*corpus.Page,
	y func(*corpus.Page) bool, cfg Config) Result {

	if cfg.Budget <= 0 {
		return Result{}
	}
	var res Result
	fetched := make(map[corpus.PageID]struct{})
	fr := &frontier{byID: make(map[corpus.PageID]*frontierItem)}
	order := 0

	enqueue := func(id corpus.PageID, prio float64) {
		if _, done := fetched[id]; done {
			return
		}
		if it, ok := fr.byID[id]; ok {
			if prio > it.priority {
				it.priority = prio
				heap.Fix(fr, it.index)
			}
			return
		}
		if cfg.MaxFrontier > 0 && fr.Len() >= cfg.MaxFrontier {
			return
		}
		it := &frontierItem{id: id, priority: prio, order: order}
		order++
		fr.byID[id] = it
		heap.Push(fr, it)
	}

	visit := func(p *corpus.Page) {
		res.Pages = append(res.Pages, p)
		res.Fetches++
		if cfg.Sink != nil {
			cfg.Sink(p)
		}
		prio := 0.0
		if y(p) {
			prio = 1.0
		}
		for _, l := range p.Links {
			enqueue(l, prio)
		}
	}

	// Seeds cost fetches too: the crawler downloads them like any page.
	for _, p := range seeds {
		if res.Fetches >= cfg.Budget {
			break
		}
		if _, dup := fetched[p.ID]; dup {
			continue
		}
		fetched[p.ID] = struct{}{}
		visit(p)
	}

	for res.Fetches < cfg.Budget && fr.Len() > 0 {
		it := heap.Pop(fr).(*frontierItem)
		delete(fr.byID, it.id)
		p, ok := pageByID[it.id]
		if !ok {
			continue // dangling link
		}
		if _, dup := fetched[p.ID]; dup {
			continue
		}
		fetched[p.ID] = struct{}{}
		visit(p)
	}
	res.FrontierLeft = fr.Len()
	return res
}

// PageIndex builds the fetch table for a corpus.
func PageIndex(c *corpus.Corpus) map[corpus.PageID]*corpus.Page {
	m := make(map[corpus.PageID]*corpus.Page, c.NumPages())
	for _, p := range c.Pages {
		m[p.ID] = p
	}
	return m
}
