package corpus

import (
	"sync"
	"testing"
)

// TestPageConcurrentTokenCaches exercises the lazily built token caches
// from many goroutines; run with -race.
func TestPageConcurrentTokenCaches(t *testing.T) {
	p := &Page{ID: 1, Entity: 0}
	for i := 0; i < 20; i++ {
		p.Paras = append(p.Paras, Paragraph{
			Tokens: []string{"alpha", "beta", "gamma", "delta"},
		})
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if len(p.Tokens()) != 80 {
					t.Error("token cache corrupted")
					return
				}
				if !p.HasToken("gamma") || p.HasToken("zeta") {
					t.Error("token-set cache corrupted")
					return
				}
				if !p.ContainsQuery([]string{"alpha", "delta"}) {
					t.Error("containment corrupted")
					return
				}
			}
		}()
	}
	wg.Wait()
}
