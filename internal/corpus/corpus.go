// Package corpus defines the data model shared by every layer of the
// reproduction: entities, pages, paragraphs, aspects, and the Corpus
// container that holds the pre-collected "web" the experiments run on.
//
// The paper collects ~50 pages per entity from the live Web in advance and
// retrieves only from that fixed corpus (§VI-A "Corpora"); Corpus is that
// fixed collection. Pages carry paragraph-level aspect labels because the
// paper evaluates relevance at paragraph granularity (§VI-A "Entity
// aspects") and the aspect classifiers are paragraph classifiers.
package corpus

import (
	"fmt"
	"sort"
	"sync"

	"l2q/internal/textproc"
)

// Aspect names a target facet of an entity, e.g. "RESEARCH" or "SAFETY".
// The empty aspect is reserved for unlabeled / noise paragraphs.
type Aspect string

// Domain names a kind of entity: "researchers" or "cars" in the paper, but
// the system is domain-agnostic and callers can define their own.
type Domain string

// EntityID uniquely identifies an entity within a corpus.
type EntityID int

// PageID uniquely identifies a page within a corpus.
type PageID int

// Paragraph is the retrieval-granularity text unit: a run of sentences with
// a single dominant aspect label assigned by the generator (the analogue of
// the paper's jsoup paragraph segmentation + CRF labels).
type Paragraph struct {
	Text   string
	Tokens []textproc.Token
	// Aspect is the generator's ground-truth label; empty for filler.
	Aspect Aspect
}

// Page is one web page: an ordered list of paragraphs about one entity.
// The token caches are built lazily under sync.Once, so pages are safe to
// share across concurrent harvesting sessions (which never mutate Paras).
type Page struct {
	ID     PageID
	Entity EntityID
	URL    string
	Title  string
	Paras  []Paragraph
	// Links are outgoing hyperlinks to other pages in the corpus. The
	// query-driven L2Q methods never follow them; they exist so the
	// link-based focused-crawler baseline (internal/crawler) has a web
	// graph to walk, and so the HTML rendering is a faithful page.
	Links []PageID

	tokOnce  sync.Once
	tokens   []textproc.Token // cached concatenation of paragraph tokens
	setOnce  sync.Once
	tokenSet map[textproc.Token]struct{}
	// ngrams memoizes candidate-query enumerations per config: sessions,
	// domain learning and §V coverage share one enumeration of the
	// immutable page instead of re-sliding the window each time.
	ngrams textproc.NGramMemo
}

// Tokens returns the page's full token stream (paragraphs concatenated),
// computing and caching it on first use.
func (p *Page) Tokens() []textproc.Token {
	p.tokOnce.Do(func() {
		n := 0
		for i := range p.Paras {
			n += len(p.Paras[i].Tokens)
		}
		p.tokens = make([]textproc.Token, 0, n)
		for i := range p.Paras {
			p.tokens = append(p.tokens, p.Paras[i].Tokens...)
		}
	})
	return p.tokens
}

// NGrams returns the page's deduplicated candidate n-grams under cfg in
// first-appearance order (textproc.NGrams over Tokens), computing each
// distinct config's enumeration at most once for the page's lifetime.
// The returned slice is shared — callers must not mutate it.
func (p *Page) NGrams(cfg textproc.NGramConfig) []string {
	return p.ngrams.NGrams(p.Tokens(), cfg)
}

// HasToken reports whether the page contains the token anywhere; the set is
// built lazily and cached.
func (p *Page) HasToken(tok textproc.Token) bool {
	p.setOnce.Do(func() {
		toks := p.Tokens()
		p.tokenSet = make(map[textproc.Token]struct{}, len(toks))
		for _, t := range toks {
			p.tokenSet[t] = struct{}{}
		}
	})
	_, ok := p.tokenSet[tok]
	return ok
}

// ContainsQuery reports whether the page contains the query: every query
// token must appear in the page (conjunctive containment). This is the
// edge predicate for reinforcement graphs ("page p can be retrieved by
// query q", §III).
func (p *Page) ContainsQuery(queryTokens []textproc.Token) bool {
	for _, t := range queryTokens {
		if !p.HasToken(t) {
			return false
		}
	}
	return len(queryTokens) > 0
}

// AspectFraction returns the fraction of paragraphs labeled with aspect a.
func (p *Page) AspectFraction(a Aspect) float64 {
	if len(p.Paras) == 0 {
		return 0
	}
	n := 0
	for i := range p.Paras {
		if p.Paras[i].Aspect == a {
			n++
		}
	}
	return float64(n) / float64(len(p.Paras))
}

// Entity is one real-world object being harvested: a researcher or a car
// model, identified by a seed query (name + disambiguator, §I "Input").
type Entity struct {
	ID     EntityID
	Domain Domain
	Name   string
	// SeedQuery uniquely identifies the entity, e.g. "marc snir uiuc".
	// It is both the initial query and an implicit conjunct appended to
	// every subsequent query.
	SeedQuery string
	// Attrs carries generator metadata (topics, institute, make, ...);
	// the harvesting algorithms never look at it — only tests and the
	// ideal-solution oracle may.
	Attrs map[string]string
}

// SeedTokens returns the tokenized seed query.
func (e *Entity) SeedTokens() []textproc.Token {
	return textproc.SplitQuery(e.SeedQuery)
}

// Corpus is the fixed page collection for one domain.
type Corpus struct {
	Domain   Domain
	Entities []*Entity
	Pages    []*Page

	byEntity map[EntityID][]*Page
	entByID  map[EntityID]*Entity
}

// New creates an empty corpus for a domain.
func New(domain Domain) *Corpus {
	return &Corpus{
		Domain:   domain,
		byEntity: make(map[EntityID][]*Page),
		entByID:  make(map[EntityID]*Entity),
	}
}

// AddEntity registers an entity; its ID must be unique in the corpus.
func (c *Corpus) AddEntity(e *Entity) error {
	if _, dup := c.entByID[e.ID]; dup {
		return fmt.Errorf("corpus: duplicate entity id %d", e.ID)
	}
	c.Entities = append(c.Entities, e)
	c.entByID[e.ID] = e
	return nil
}

// AddPage registers a page; its entity must already exist.
func (c *Corpus) AddPage(p *Page) error {
	if _, ok := c.entByID[p.Entity]; !ok {
		return fmt.Errorf("corpus: page %d references unknown entity %d", p.ID, p.Entity)
	}
	c.Pages = append(c.Pages, p)
	c.byEntity[p.Entity] = append(c.byEntity[p.Entity], p)
	return nil
}

// Entity returns the entity with the given ID, or nil.
func (c *Corpus) Entity(id EntityID) *Entity { return c.entByID[id] }

// PagesOf returns the pages of one entity (shared slice; do not mutate).
func (c *Corpus) PagesOf(id EntityID) []*Page { return c.byEntity[id] }

// NumEntities returns the number of entities.
func (c *Corpus) NumEntities() int { return len(c.Entities) }

// NumPages returns the number of pages.
func (c *Corpus) NumPages() int { return len(c.Pages) }

// Subset returns a shallow corpus view containing only the given entities
// and their pages, preserving order. Unknown IDs are ignored.
func (c *Corpus) Subset(ids []EntityID) *Corpus {
	sub := New(c.Domain)
	want := make(map[EntityID]struct{}, len(ids))
	for _, id := range ids {
		want[id] = struct{}{}
	}
	for _, e := range c.Entities {
		if _, ok := want[e.ID]; ok {
			_ = sub.AddEntity(e)
		}
	}
	for _, p := range c.Pages {
		if _, ok := want[p.Entity]; ok {
			_ = sub.AddPage(p)
		}
	}
	return sub
}

// Stats summarizes a corpus for logs and the Fig. 9 frequency column.
type Stats struct {
	Domain        Domain
	Entities      int
	Pages         int
	Paragraphs    int
	Tokens        int
	ParasByAspect map[Aspect]int
}

// ComputeStats walks the corpus once and tallies the summary.
func (c *Corpus) ComputeStats() Stats {
	s := Stats{
		Domain:        c.Domain,
		Entities:      len(c.Entities),
		Pages:         len(c.Pages),
		ParasByAspect: make(map[Aspect]int),
	}
	for _, p := range c.Pages {
		s.Paragraphs += len(p.Paras)
		for i := range p.Paras {
			s.Tokens += len(p.Paras[i].Tokens)
			if a := p.Paras[i].Aspect; a != "" {
				s.ParasByAspect[a]++
			}
		}
	}
	return s
}

// Aspects returns the sorted list of aspects appearing in the corpus.
func (c *Corpus) Aspects() []Aspect {
	set := make(map[Aspect]struct{})
	for _, p := range c.Pages {
		for i := range p.Paras {
			if a := p.Paras[i].Aspect; a != "" {
				set[a] = struct{}{}
			}
		}
	}
	out := make([]Aspect, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
