package corpus

import (
	"bytes"
	"reflect"
	"testing"

	"l2q/internal/textproc"
)

func mkPara(aspect Aspect, words ...string) Paragraph {
	return Paragraph{Text: textproc.JoinQuery(words), Tokens: words, Aspect: aspect}
}

func buildTestCorpus(t *testing.T) *Corpus {
	t.Helper()
	c := New("researchers")
	if err := c.AddEntity(&Entity{ID: 1, Domain: "researchers", Name: "Marc Snir", SeedQuery: "marc snir uiuc"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddEntity(&Entity{ID: 2, Domain: "researchers", Name: "Philip Yu", SeedQuery: "philip yu uic"}); err != nil {
		t.Fatal(err)
	}
	p1 := &Page{ID: 10, Entity: 1, URL: "http://a", Title: "Snir research", Paras: []Paragraph{
		mkPara("RESEARCH", "research", "on", "parallel", "and", "hpc", "systems"),
		mkPara("", "visit", "him", "at", "siebel", "center"),
	}}
	p2 := &Page{ID: 11, Entity: 2, URL: "http://b", Title: "Yu research", Paras: []Paragraph{
		mkPara("RESEARCH", "data mining", "papers", "in", "tkde"),
	}}
	for _, p := range []*Page{p1, p2} {
		if err := c.AddPage(p); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestCorpusBasics(t *testing.T) {
	c := buildTestCorpus(t)
	if c.NumEntities() != 2 || c.NumPages() != 2 {
		t.Fatalf("entities=%d pages=%d", c.NumEntities(), c.NumPages())
	}
	if e := c.Entity(1); e == nil || e.Name != "Marc Snir" {
		t.Fatalf("Entity(1) = %+v", e)
	}
	if got := len(c.PagesOf(1)); got != 1 {
		t.Fatalf("PagesOf(1) len = %d", got)
	}
	if got := c.Entity(1).SeedTokens(); !reflect.DeepEqual(got, []textproc.Token{"marc", "snir", "uiuc"}) {
		t.Fatalf("SeedTokens = %v", got)
	}
}

func TestCorpusDuplicateAndOrphans(t *testing.T) {
	c := New("d")
	if err := c.AddEntity(&Entity{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddEntity(&Entity{ID: 1}); err == nil {
		t.Error("duplicate entity accepted")
	}
	if err := c.AddPage(&Page{ID: 1, Entity: 99}); err == nil {
		t.Error("orphan page accepted")
	}
}

func TestPageTokensAndContainment(t *testing.T) {
	c := buildTestCorpus(t)
	p := c.PagesOf(1)[0]
	toks := p.Tokens()
	if len(toks) != 11 {
		t.Fatalf("Tokens len = %d, want 11", len(toks))
	}
	if !p.HasToken("hpc") || p.HasToken("tkde") {
		t.Error("HasToken wrong")
	}
	if !p.ContainsQuery([]textproc.Token{"parallel", "hpc"}) {
		t.Error("conjunctive containment should hold")
	}
	if p.ContainsQuery([]textproc.Token{"parallel", "tkde"}) {
		t.Error("containment must require all tokens")
	}
	if p.ContainsQuery(nil) {
		t.Error("empty query must not match")
	}
}

func TestAspectFraction(t *testing.T) {
	c := buildTestCorpus(t)
	p := c.PagesOf(1)[0]
	if got := p.AspectFraction("RESEARCH"); got != 0.5 {
		t.Errorf("AspectFraction = %v, want 0.5", got)
	}
	empty := &Page{}
	if got := empty.AspectFraction("RESEARCH"); got != 0 {
		t.Errorf("empty page fraction = %v", got)
	}
}

func TestStatsAndAspects(t *testing.T) {
	c := buildTestCorpus(t)
	s := c.ComputeStats()
	if s.Entities != 2 || s.Pages != 2 || s.Paragraphs != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ParasByAspect["RESEARCH"] != 2 {
		t.Fatalf("RESEARCH paras = %d", s.ParasByAspect["RESEARCH"])
	}
	if got := c.Aspects(); !reflect.DeepEqual(got, []Aspect{"RESEARCH"}) {
		t.Fatalf("Aspects = %v", got)
	}
}

func TestSubset(t *testing.T) {
	c := buildTestCorpus(t)
	sub := c.Subset([]EntityID{2, 99})
	if sub.NumEntities() != 1 || sub.NumPages() != 1 {
		t.Fatalf("subset entities=%d pages=%d", sub.NumEntities(), sub.NumPages())
	}
	if sub.Entity(2) == nil || sub.Entity(1) != nil {
		t.Fatal("subset membership wrong")
	}
}

func TestGobRoundTrip(t *testing.T) {
	c := buildTestCorpus(t)
	var buf bytes.Buffer
	if err := c.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCorpus(t, c, back)
}

func TestJSONRoundTrip(t *testing.T) {
	c := buildTestCorpus(t)
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameCorpus(t, c, back)
}

func assertSameCorpus(t *testing.T, a, b *Corpus) {
	t.Helper()
	if a.Domain != b.Domain || a.NumEntities() != b.NumEntities() || a.NumPages() != b.NumPages() {
		t.Fatalf("corpus mismatch: %v/%d/%d vs %v/%d/%d",
			a.Domain, a.NumEntities(), a.NumPages(), b.Domain, b.NumEntities(), b.NumPages())
	}
	for i, e := range a.Entities {
		be := b.Entities[i]
		if e.ID != be.ID || e.Name != be.Name || e.SeedQuery != be.SeedQuery {
			t.Fatalf("entity %d mismatch: %+v vs %+v", i, e, be)
		}
	}
	for i, p := range a.Pages {
		bp := b.Pages[i]
		if p.ID != bp.ID || p.Entity != bp.Entity || len(p.Paras) != len(bp.Paras) {
			t.Fatalf("page %d mismatch", i)
		}
		for j := range p.Paras {
			if p.Paras[j].Aspect != bp.Paras[j].Aspect ||
				!reflect.DeepEqual(p.Paras[j].Tokens, bp.Paras[j].Tokens) {
				t.Fatalf("page %d para %d mismatch", i, j)
			}
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := ReadGob(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Error("garbage gob accepted")
	}
	if _, err := ReadJSON(bytes.NewReader([]byte("{bad"))); err == nil {
		t.Error("garbage json accepted")
	}
}
