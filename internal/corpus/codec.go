package corpus

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"

	"l2q/internal/textproc"
)

// wireCorpus is the serialization schema; it keeps the wire format decoupled
// from the in-memory struct (which carries caches).
type wireCorpus struct {
	Domain   Domain
	Entities []wireEntity
	Pages    []wirePage
}

type wireEntity struct {
	ID        EntityID
	Domain    Domain
	Name      string
	SeedQuery string
	Attrs     map[string]string
}

type wirePage struct {
	ID     PageID
	Entity EntityID
	URL    string
	Title  string
	Paras  []wirePara
	Links  []PageID
}

type wirePara struct {
	Text   string
	Tokens []textproc.Token
	Aspect Aspect
}

func (c *Corpus) toWire() wireCorpus {
	w := wireCorpus{Domain: c.Domain}
	for _, e := range c.Entities {
		w.Entities = append(w.Entities, wireEntity{
			ID: e.ID, Domain: e.Domain, Name: e.Name,
			SeedQuery: e.SeedQuery, Attrs: e.Attrs,
		})
	}
	for _, p := range c.Pages {
		wp := wirePage{ID: p.ID, Entity: p.Entity, URL: p.URL, Title: p.Title, Links: p.Links}
		for i := range p.Paras {
			wp.Paras = append(wp.Paras, wirePara{
				Text: p.Paras[i].Text, Tokens: p.Paras[i].Tokens, Aspect: p.Paras[i].Aspect,
			})
		}
		w.Pages = append(w.Pages, wp)
	}
	return w
}

func fromWire(w wireCorpus) (*Corpus, error) {
	c := New(w.Domain)
	for i := range w.Entities {
		we := w.Entities[i]
		err := c.AddEntity(&Entity{
			ID: we.ID, Domain: we.Domain, Name: we.Name,
			SeedQuery: we.SeedQuery, Attrs: we.Attrs,
		})
		if err != nil {
			return nil, err
		}
	}
	for i := range w.Pages {
		wp := w.Pages[i]
		p := &Page{ID: wp.ID, Entity: wp.Entity, URL: wp.URL, Title: wp.Title, Links: wp.Links}
		for j := range wp.Paras {
			p.Paras = append(p.Paras, Paragraph{
				Text: wp.Paras[j].Text, Tokens: wp.Paras[j].Tokens, Aspect: wp.Paras[j].Aspect,
			})
		}
		if err := c.AddPage(p); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// WriteGob serializes the corpus in gob format (compact, for tool caching).
func (c *Corpus) WriteGob(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(c.toWire()); err != nil {
		return fmt.Errorf("corpus: gob encode: %w", err)
	}
	return nil
}

// ReadGob deserializes a corpus written by WriteGob.
func ReadGob(r io.Reader) (*Corpus, error) {
	var w wireCorpus
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("corpus: gob decode: %w", err)
	}
	return fromWire(w)
}

// WriteJSON serializes the corpus as indented JSON (for inspection).
func (c *Corpus) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c.toWire()); err != nil {
		return fmt.Errorf("corpus: json encode: %w", err)
	}
	return nil
}

// ReadJSON deserializes a corpus written by WriteJSON.
func ReadJSON(r io.Reader) (*Corpus, error) {
	var w wireCorpus
	if err := json.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("corpus: json decode: %w", err)
	}
	return fromWire(w)
}
