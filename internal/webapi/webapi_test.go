package webapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"l2q/internal/classify"
	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/search"
	"l2q/internal/synth"
	"l2q/internal/types"
)

// fixture bundles a small corpus, its engine, an httptest server and a
// dialed client.
type fixture struct {
	g      *synth.Generated
	engine *search.Engine
	srv    *httptest.Server
	client *Client
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	engine := search.NewEngine(search.BuildIndex(g.Corpus.Pages))
	srv := httptest.NewServer(NewServer(g.Corpus, engine).Handler())
	t.Cleanup(srv.Close)
	client, err := Dial(srv.URL, g.Tokenizer)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{g: g, engine: engine, srv: srv, client: client}
}

func TestStatsEndpoint(t *testing.T) {
	f := newFixture(t)
	st := f.client.Stats()
	if st.NumPages != f.g.Corpus.NumPages() || st.NumEntities != f.g.Corpus.NumEntities() {
		t.Errorf("stats %+v do not match corpus", st)
	}
	if st.Mu != f.engine.Mu() || st.TopK != f.engine.TopK() {
		t.Errorf("stats %+v do not match engine (mu=%v topK=%d)", st, f.engine.Mu(), f.engine.TopK())
	}
}

func TestSearchEndpointMatchesEngine(t *testing.T) {
	f := newFixture(t)
	e := f.g.Corpus.Entities[0]
	seed := e.SeedTokens()
	query := []string{"research"}

	local := f.engine.SearchWithSeed(seed, query)
	remote := f.client.SearchWithSeed(seed, query)
	if len(local) != len(remote) {
		t.Fatalf("local %d hits, remote %d", len(local), len(remote))
	}
	for i := range local {
		if local[i].Page.ID != remote[i].Page.ID {
			t.Errorf("rank %d: local page %d, remote %d", i, local[i].Page.ID, remote[i].Page.ID)
		}
		if d := local[i].Score - remote[i].Score; d > 1e-12 || d < -1e-12 {
			t.Errorf("rank %d: score drift %v", i, d)
		}
	}
}

func TestRemotePageFidelity(t *testing.T) {
	f := newFixture(t)
	orig := f.g.Corpus.Pages[3]
	got, err := f.client.Page(orig.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != orig.ID || got.Entity != orig.Entity || got.Title != orig.Title {
		t.Fatalf("page identity: %d/%d/%q", got.ID, got.Entity, got.Title)
	}
	if len(got.Paras) != len(orig.Paras) {
		t.Fatalf("paragraphs %d, want %d", len(got.Paras), len(orig.Paras))
	}
	for i := range orig.Paras {
		if got.Paras[i].Aspect != orig.Paras[i].Aspect {
			t.Errorf("para %d aspect %q, want %q", i, got.Paras[i].Aspect, orig.Paras[i].Aspect)
		}
		if !reflect.DeepEqual(got.Paras[i].Tokens, orig.Paras[i].Tokens) {
			t.Errorf("para %d tokens differ", i)
		}
	}
}

func TestClientQueryLikelihoodParity(t *testing.T) {
	f := newFixture(t)
	queries := [][]string{{"research"}, {"research", "award"}, {"zzz-unseen-token"}}
	for _, pi := range []int{0, 7, 42} {
		orig := f.g.Corpus.Pages[pi]
		remote, err := f.client.Page(orig.ID)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			want := f.engine.QueryLikelihood(orig, q)
			got := f.client.QueryLikelihood(remote, q)
			if d := want - got; d > 1e-12 || d < -1e-12 {
				t.Errorf("page %d query %v: local %v, remote %v", pi, q, want, got)
			}
		}
	}
}

func TestClientPageCacheAndRequestCount(t *testing.T) {
	f := newFixture(t)
	id := f.g.Corpus.Pages[0].ID
	if _, err := f.client.Page(id); err != nil {
		t.Fatal(err)
	}
	before := f.client.Requests()
	for i := 0; i < 5; i++ {
		if _, err := f.client.Page(id); err != nil {
			t.Fatal(err)
		}
	}
	if after := f.client.Requests(); after != before {
		t.Errorf("cached fetches issued %d extra requests", after-before)
	}
}

// TestRemoteSessionParity is the headline test: a full domain-aware,
// context-aware harvesting session over the HTTP boundary selects exactly
// the same queries and gathers exactly the same pages as the in-process
// engine.
func TestRemoteSessionParity(t *testing.T) {
	f := newFixture(t)
	g := f.g
	rec := types.Chain{g.KB, types.NewRegexRecognizer()}
	aspect := synth.AspResearch
	y := func(p *corpus.Page) bool { return classify.GroundTruth(p, aspect) }

	cfg := core.DefaultConfig()
	cfg.Tokenizer = g.Tokenizer
	var domain []corpus.EntityID
	for i := 0; i < g.Corpus.NumEntities()/2; i++ {
		domain = append(domain, g.Corpus.Entities[i].ID)
	}
	dm, err := core.LearnDomain(cfg, aspect, g.Corpus, domain, y, rec)
	if err != nil {
		t.Fatal(err)
	}
	target := g.Corpus.Entities[g.Corpus.NumEntities()-1]

	run := func(engine core.Retriever) ([]core.Query, []corpus.PageID) {
		sess := core.NewSession(cfg, engine, target, aspect, y, dm, rec, 42)
		fired := sess.Run(core.NewL2QBAL(), 3)
		var ids []corpus.PageID
		for _, p := range sess.Pages() {
			ids = append(ids, p.ID)
		}
		return fired, ids
	}

	localQ, localP := run(f.engine)
	remoteQ, remoteP := run(f.client)
	if !reflect.DeepEqual(localQ, remoteQ) {
		t.Errorf("fired queries differ:\n local %v\nremote %v", localQ, remoteQ)
	}
	if !reflect.DeepEqual(localP, remoteP) {
		t.Errorf("gathered pages differ:\n local %v\nremote %v", localP, remoteP)
	}
	if len(localQ) == 0 || len(localP) == 0 {
		t.Fatal("session gathered nothing")
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	f := newFixture(t)
	cases := []struct {
		path string
		want int
	}{
		{"/api/search", http.StatusBadRequest},
		{"/api/search?q=x&k=-1", http.StatusBadRequest},
		{"/api/search?q=x&k=zzz", http.StatusBadRequest},
		{"/api/collfreq", http.StatusBadRequest},
		{"/page/notanumber.html", http.StatusBadRequest},
		{"/page/999999.html", http.StatusNotFound},
		{"/nosuchroute", http.StatusNotFound},
		{"/healthz", http.StatusOK},
	}
	for _, tc := range cases {
		resp, err := http.Get(f.srv.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

func TestSearchKParameter(t *testing.T) {
	f := newFixture(t)
	resp, err := http.Get(f.srv.URL + "/api/search?q=research&k=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Hits) > 2 {
		t.Errorf("k=2 returned %d hits", len(sr.Hits))
	}
}

func TestEntitiesEndpoint(t *testing.T) {
	f := newFixture(t)
	ents, err := f.client.Entities(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != f.g.Corpus.NumEntities() {
		t.Fatalf("%d entities, want %d", len(ents), f.g.Corpus.NumEntities())
	}
	if ents[0].SeedQuery == "" {
		t.Error("entity missing seed query")
	}
}

func TestStartShutdown(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainCars))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(g.Corpus, search.NewEngine(search.BuildIndex(g.Corpus.Pages)))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Error("server still answering after shutdown")
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", nil); err == nil {
		t.Error("dial to closed port succeeded")
	}
	// A server that answers nonsense.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, `{"topK":0}`)
	}))
	defer bad.Close()
	if _, err := Dial(bad.URL, nil); err == nil {
		t.Error("dial accepted implausible stats")
	}
}
