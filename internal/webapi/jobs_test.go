package webapi

import (
	"context"
	"errors"
	"net/http"
	"reflect"
	"testing"
	"time"

	"l2q/internal/core"
	"l2q/internal/corpus"
)

// jobTargets picks the last n entities of the fixture corpus.
func jobTargets(f *harvestFixture, n int) []corpus.EntityID {
	ents := f.g.Corpus.Entities
	out := make([]corpus.EntityID, 0, n)
	for _, e := range ents[len(ents)-n:] {
		out = append(out, e.ID)
	}
	return out
}

// localReference harvests one entity in-process with the server's seeding
// convention.
func (f *harvestFixture) localReference(id corpus.EntityID, nQueries int) ([]core.Query, []corpus.PageID) {
	e := f.g.Corpus.Entity(id)
	sess := core.NewSession(f.cfg, f.engine, e, f.aspect, f.y, f.dm, f.rec, uint64(id)+1)
	fired := sess.Run(core.NewL2QBAL(), nQueries)
	var pages []corpus.PageID
	for _, p := range sess.Pages() {
		pages = append(pages, p.ID)
	}
	return fired, pages
}

// TestJobsLifecycle: POST a job, stream its events to completion, verify
// parity with the in-process reference, and watch the status endpoint
// reach "done".
func TestJobsLifecycle(t *testing.T) {
	f := newHarvestFixture(t)
	targets := jobTargets(f, 3)
	const nQueries = 2

	id, err := f.client.SubmitJob(context.Background(), HarvestRequest{
		Entities: targets,
		Aspect:   string(f.aspect),
		NQueries: nQueries,
	})
	if err != nil {
		t.Fatal(err)
	}

	finished := make(map[corpus.EntityID]HarvestEvent)
	var done *HarvestEvent
	progress := 0
	err = f.client.StreamJob(context.Background(), id, func(ev HarvestEvent) error {
		switch ev.Type {
		case "progress":
			progress++
		case "entity":
			finished[ev.Entity] = ev
		case "error":
			t.Errorf("unexpected error event %+v", ev)
		case "done":
			ev := ev
			done = &ev
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if done == nil || done.Entities != len(targets) || done.Failed != 0 {
		t.Fatalf("done summary %+v", done)
	}
	if progress != len(targets)*nQueries {
		t.Errorf("%d progress events, want %d", progress, len(targets)*nQueries)
	}
	for _, tid := range targets {
		wantFired, wantPages := f.localReference(tid, nQueries)
		got, ok := finished[tid]
		if !ok {
			t.Fatalf("entity %d: no completion event", tid)
		}
		gotFired := make([]core.Query, len(got.Fired))
		for i, q := range got.Fired {
			gotFired[i] = core.Query(q)
		}
		if !reflect.DeepEqual(gotFired, wantFired) {
			t.Errorf("entity %d fired %v, want %v", tid, gotFired, wantFired)
		}
		if !reflect.DeepEqual(got.Pages, wantPages) {
			t.Errorf("entity %d pages differ", tid)
		}
	}

	st, err := f.client.JobStatus(context.Background(), id, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone || st.Finished != len(targets) || st.Failed != 0 {
		t.Errorf("status %+v, want done/%d/0", st, len(targets))
	}
	if len(st.Checkpoints) != len(targets) {
		t.Errorf("%d checkpoints, want %d", len(st.Checkpoints), len(targets))
	}
	for _, cp := range st.Checkpoints {
		if len(cp.Fired) != nQueries || !cp.Booted {
			t.Errorf("checkpoint %+v not final", cp)
		}
	}

	// A second stream replays the full event log identically.
	replayed := 0
	if err := f.client.StreamJob(context.Background(), id, func(HarvestEvent) error {
		replayed++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if replayed != st.Events {
		t.Errorf("replay saw %d events, status reports %d", replayed, st.Events)
	}

	// DELETE on a finished job forgets it.
	if err := f.client.CancelJob(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	if _, err := f.client.JobStatus(context.Background(), id, false); err == nil {
		t.Error("deleted job still answers status")
	}
}

// TestJobsCancelResume is the acceptance flow: a job killed mid-harvest
// is resumed from its checkpoints and finishes with the same fired-query
// sequences as an uninterrupted run.
func TestJobsCancelResume(t *testing.T) {
	f := newHarvestFixture(t)
	targets := jobTargets(f, 4)
	// A budget large enough that the job cannot complete inside the
	// cancellation window on any machine — incremental candidate pools
	// and session graphs made small harvests finish in single-digit
	// milliseconds, which used to let the job reach Done before the
	// DELETE landed (turning the cancel into a forget and the status
	// poll into a 404).
	const nQueries = 24

	// Uninterrupted references.
	wantFired := make(map[corpus.EntityID][]core.Query)
	for _, id := range targets {
		fired, _ := f.localReference(id, nQueries)
		wantFired[id] = fired
	}

	id, err := f.client.SubmitJob(context.Background(), HarvestRequest{
		Entities: targets,
		Aspect:   string(f.aspect),
		NQueries: nQueries,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let some queries land, then cancel.
	deadline := time.Now().Add(10 * time.Second)
	var st JobStatus
	for {
		if st, err = f.client.JobStatus(context.Background(), id, false); err != nil {
			t.Fatal(err)
		}
		if st.Events >= 3 || st.State == JobDone || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State != JobDone {
		// DELETE on a finished job forgets the record instead of
		// canceling; only cancel a job that is still running. The check
		// itself races the job (it can finish between the poll and the
		// DELETE), so a post-cancel 404 below is handled as
		// done-before-cancel, not failed.
		if err := f.client.CancelJob(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the final state.
	for {
		if st, err = f.client.JobStatus(context.Background(), id, true); err != nil {
			var te *TransportError
			if errors.As(err, &te) && te.Status == http.StatusNotFound {
				// The job completed in the poll→DELETE window, so the
				// DELETE forgot the record. No checkpoints survive;
				// resume degenerates to a from-scratch run, which the
				// parity assertion below still covers.
				st = JobStatus{State: JobDone}
				break
			}
			t.Fatal(err)
		}
		if st.State == JobCanceled || st.State == JobDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State == JobDone {
		t.Log("job finished before cancellation; resume degenerates to a replay")
	}

	// Resume from the recorded checkpoints; entities without one restart
	// from scratch.
	prior := make(map[corpus.EntityID][]core.Query)
	for _, cp := range st.Checkpoints {
		prior[cp.Entity] = cp.Fired
	}
	id2, err := f.client.SubmitJob(context.Background(), HarvestRequest{
		Entities: targets,
		Aspect:   string(f.aspect),
		NQueries: nQueries,
		Resume:   st.Checkpoints,
	})
	if err != nil {
		t.Fatal(err)
	}
	finished := make(map[corpus.EntityID]HarvestEvent)
	if err := f.client.StreamJob(context.Background(), id2, func(ev HarvestEvent) error {
		if ev.Type == "entity" {
			finished[ev.Entity] = ev
		}
		if ev.Type == "error" {
			t.Errorf("resume error event: %+v", ev)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	for _, tid := range targets {
		got := append([]core.Query(nil), prior[tid]...)
		for _, q := range finished[tid].Fired {
			got = append(got, core.Query(q))
		}
		if !reflect.DeepEqual(got, wantFired[tid]) {
			t.Errorf("entity %d: canceled+resumed fired %v, uninterrupted %v", tid, got, wantFired[tid])
		}
	}
}

// TestJobsAdaptiveBudget: a pooled adaptive budget is respected end to
// end through the wire format.
func TestJobsAdaptiveBudget(t *testing.T) {
	f := newHarvestFixture(t)
	targets := jobTargets(f, 3)
	const nQueries = 3
	budget := nQueries * len(targets)

	id, err := f.client.SubmitJob(context.Background(), HarvestRequest{
		Entities: targets,
		Aspect:   string(f.aspect),
		NQueries: nQueries,
		Budget:   &BudgetSpec{Mode: "adaptive", Patience: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	if err := f.client.StreamJob(context.Background(), id, func(ev HarvestEvent) error {
		if ev.Type == "entity" {
			total += len(ev.Fired)
		}
		if ev.Type == "error" {
			t.Errorf("error event: %+v", ev)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if total > budget {
		t.Errorf("adaptive job fired %d queries on a budget of %d", total, budget)
	}
	if total == 0 {
		t.Error("adaptive job fired nothing")
	}
}

// TestJobsValidation: request rejections and unknown-ID handling.
func TestJobsValidation(t *testing.T) {
	f := newHarvestFixture(t)

	if _, err := f.client.SubmitJob(context.Background(), HarvestRequest{Aspect: string(f.aspect)}); err == nil {
		t.Error("empty entity list accepted")
	}
	_, err := f.client.SubmitJob(context.Background(), HarvestRequest{
		Entities: jobTargets(f, 1), Aspect: string(f.aspect), NQueries: 1,
		Budget: &BudgetSpec{Mode: "yolo"},
	})
	var te *TransportError
	if !errors.As(err, &te) || te.Status != http.StatusBadRequest {
		t.Errorf("bad budget mode: %v, want 400", err)
	}
	_, err = f.client.SubmitJob(context.Background(), HarvestRequest{
		Entities: jobTargets(f, 1), Aspect: string(f.aspect), NQueries: 1,
		Resume: []core.Checkpoint{{Entity: 0, Aspect: "WRONG"}},
	})
	if !errors.As(err, &te) || te.Status != http.StatusBadRequest {
		t.Errorf("wrong-aspect resume: %v, want 400", err)
	}

	if _, err := f.client.JobStatus(context.Background(), "nope", false); err == nil {
		t.Error("unknown job id answered status")
	}
	if err := f.client.CancelJob(context.Background(), "nope"); err == nil {
		t.Error("unknown job id accepted cancel")
	}
}

// TestMetricsEndpoint: the server-side counters mirror activity.
func TestMetricsEndpoint(t *testing.T) {
	f := newHarvestFixture(t)

	m, err := f.client.ServerMetrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 {
		t.Error("requests counter stuck at zero (Dial already issued requests)")
	}
	if m.Scheduler != nil {
		t.Error("scheduler stats present before any harvest")
	}

	// One sync harvest spins up the shared scheduler.
	targets := jobTargets(f, 2)
	if err := f.client.HarvestBatch(context.Background(), HarvestRequest{
		Entities: targets, Aspect: string(f.aspect), NQueries: 1,
	}, nil); err != nil {
		t.Fatal(err)
	}
	m, err = f.client.ServerMetrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Scheduler == nil {
		t.Fatal("scheduler stats absent after a harvest")
	}
	if m.Scheduler.FinishedJobs != int64(len(targets)) {
		t.Errorf("FinishedJobs = %d, want %d", m.Scheduler.FinishedJobs, len(targets))
	}
	if m.Scheduler.FiredQueries != int64(len(targets)) {
		t.Errorf("FiredQueries = %d, want %d", m.Scheduler.FiredQueries, len(targets))
	}

	// An async job shows up in the jobs map.
	id, err := f.client.SubmitJob(context.Background(), HarvestRequest{
		Entities: targets, Aspect: string(f.aspect), NQueries: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.client.StreamJob(context.Background(), id, nil); err != nil {
		t.Fatal(err)
	}
	m, err = f.client.ServerMetrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs[JobDone] != 1 {
		t.Errorf("jobs map %v, want one done job", m.Jobs)
	}
}
