package webapi

import (
	"bytes"
	"context"
	"reflect"
	"sync/atomic"
	"testing"

	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/store"
)

// TestHarvestWarmBoot is the acceptance flow for persisted domain models:
// a backend preloaded from a domain artifact serves its first harvest
// without invoking the domain learner at all, and fires exactly the
// queries of a backend that learned the model lazily from scratch.
func TestHarvestWarmBoot(t *testing.T) {
	f := newHarvestFixture(t)
	n := f.g.Corpus.NumEntities()
	targets := []corpus.EntityID{
		f.g.Corpus.Entities[n-2].ID,
		f.g.Corpus.Entities[n-1].ID,
	}
	const nQueries = 3

	harvest := func(f *harvestFixture) map[corpus.EntityID][]string {
		t.Helper()
		fired := make(map[corpus.EntityID][]string)
		err := f.client.HarvestBatch(context.Background(), HarvestRequest{
			Entities: targets,
			Aspect:   string(f.aspect),
			NQueries: nQueries,
		}, func(ev HarvestEvent) error {
			if ev.Type == "error" {
				t.Errorf("error event: %+v", ev)
			}
			if ev.Type == "entity" {
				fired[ev.Entity] = ev.Fired
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return fired
	}

	// Cold reference: the fixture's backend learns lazily.
	want := harvest(f)

	// Persist the learned model through the real codec and boot a second
	// backend warm from it, with a learner that counts invocations.
	var buf bytes.Buffer
	art := &store.DomainArtifact{
		CorpusDomain: f.g.Corpus.Domain,
		NumEntities:  f.g.Corpus.NumEntities(),
		NumPages:     f.g.Corpus.NumPages(),
		Models:       []*core.DomainModel{f.dm},
	}
	if err := store.SaveDomains(&buf, art); err != nil {
		t.Fatal(err)
	}
	loaded, err := store.LoadDomains(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	var learns atomic.Int64
	warm := newHarvestFixture(t)
	warm.server.Harvest.DomainModel = func(corpus.Aspect) (*core.DomainModel, error) {
		learns.Add(1)
		return warm.dm, nil
	}
	warm.server.Harvest.Preload(loaded.ModelMap())

	got := harvest(warm)
	if learns.Load() != 0 {
		t.Fatalf("warm-booted backend invoked the domain learner %d times", learns.Load())
	}
	if len(got) != len(targets) {
		t.Fatalf("warm harvest finished %d of %d entities", len(got), len(targets))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("warm-booted selections diverge:\n got %v\nwant %v", got, want)
	}
}
