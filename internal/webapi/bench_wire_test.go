package webapi

import (
	"net/http/httptest"
	"testing"

	"l2q/internal/classify"
	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/search"
	"l2q/internal/synth"
	"l2q/internal/types"
)

// BenchmarkRemoteHarvestWire compares a full remote harvesting session —
// dial, search, collfreq probes, page downloads — over the JSON surface
// vs the negotiated binary wire, through a bandwidth-modeled link (the
// paper's per-page transfer cost; loopback is otherwise free and would
// hide the bytes the wire codec saves). A fresh client is dialed every
// iteration so the page cache cannot absorb the transfers.
//
// The acceptance bar for the wire protocol is ≥2x session throughput for
// binary+gzip over JSON at this link speed; CI records both codecs (plus
// the delivered byte counts) in BENCH_wire.json.
func BenchmarkRemoteHarvestWire(b *testing.B) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		b.Fatal(err)
	}
	engine := search.NewEngine(search.BuildIndex(g.Corpus.Pages))
	rec := types.Chain{g.KB, types.NewRegexRecognizer()}
	aspect := synth.AspResearch
	y := func(p *corpus.Page) bool { return classify.GroundTruth(p, aspect) }
	cfg := core.DefaultConfig()
	cfg.Tokenizer = g.Tokenizer
	var domain []corpus.EntityID
	for i := 0; i < g.Corpus.NumEntities()/2; i++ {
		domain = append(domain, g.Corpus.Entities[i].ID)
	}
	dm, err := core.LearnDomain(cfg, aspect, g.Corpus, domain, y, rec)
	if err != nil {
		b.Fatal(err)
	}
	target := g.Corpus.Entities[g.Corpus.NumEntities()-1]

	// 32 KiB/s: slow enough that transfer dominates handler CPU, the
	// regime the binary wire is designed for.
	const linkBytesPerSec = 32 << 10

	for _, bc := range []struct {
		name  string
		codec Codec
	}{
		{"json", CodecJSON},
		{"binary", CodecAuto},
	} {
		b.Run(bc.name, func(b *testing.B) {
			srvObj := NewServer(g.Corpus, engine)
			// The synthetic corpus's pages are small; compress every frame
			// rather than only those past the default 1 KiB threshold.
			srvObj.CompressMin = 1
			inj := &FaultInjector{Bandwidth: linkBytesPerSec, Next: srvObj.Handler()}
			srv := httptest.NewServer(inj)
			defer srv.Close()

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := DialOpts(srv.URL, g.Tokenizer, ClientOptions{Codec: bc.codec})
				if err != nil {
					b.Fatal(err)
				}
				if bc.codec == CodecAuto && !c.WireNegotiated() {
					b.Fatal("wire not negotiated")
				}
				sess := core.NewSession(cfg, c, target, aspect, y, dm, rec, 42)
				if fired := sess.Run(core.NewL2QBAL(), 3); len(fired) == 0 {
					b.Fatal("session fired no queries")
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(inj.BytesOut())/float64(b.N), "linkbytes/op")
		})
	}
}
