package webapi

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"l2q/internal/search"
	"l2q/internal/synth"
	"l2q/internal/textproc"
)

var errNoHits = errors.New("seed search returned no hits")

// throttleDataPaths interposes a bandwidth-modeled link in front of the
// data-plane endpoints only: searches and page downloads pay for their
// bytes, while the control plane (dial, stat exchange, entity listing) is
// free — each benchmark iteration re-dials, and charging the one-time
// registration traffic would drown the steady-state signal the benchmark
// is after.
func throttleDataPaths(inj *FaultInjector, next http.Handler) http.Handler {
	inj.Next = next
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p := r.URL.Path
		if strings.HasPrefix(p, "/page/") || p == "/api/v1/search" || p == "/api/v1/cluster/search" {
			inj.ServeHTTP(w, r)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// BenchmarkScatterGather measures distributed retrieval throughput: a
// batch of seeded searches (search + download of every ranked hit)
// against a single node vs a 3-node scatter-gather cluster, where every
// node sits behind its own bandwidth-modeled uplink. SharedLink makes
// each uplink a genuinely serial resource — concurrent transfers queue
// instead of each enjoying the full bandwidth — so the single node's
// prefetch parallelism buys nothing, while the cluster's N nodes are N
// independent links. That is the regime the coordinator is for: the
// paper's per-page transfer cost is the bottleneck, and doc-partitioning
// spreads it.
//
// The acceptance bar is ≥2x batch throughput at 3 nodes vs 1 on this
// link; CI records both arms (ns/op and qps) in BENCH_scatter.json.
func BenchmarkScatterGather(b *testing.B) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		b.Fatal(err)
	}
	n := g.Corpus.NumEntities()
	seeds := make([][]textproc.Token, 16)
	for i := range seeds {
		seeds[i] = g.Corpus.Entities[n-1-i].SeedTokens()
	}

	// 64 KiB/s per uplink: slow enough that transfer time dominates
	// handler CPU (the same regime as BenchmarkRemoteHarvestWire).
	const linkBytesPerSec = 64 << 10

	// The batch is concurrent — throughput under simultaneous callers is
	// what a frontend asks of the retrieval tier, and it is what the
	// cluster's independent uplinks buy: the single node's link serializes
	// the batch no matter how many workers the client runs.
	runBatch := func(b *testing.B, ret interface {
		SearchWithSeedErr(ctx context.Context, seed, query []textproc.Token) ([]search.Result, error)
	}) {
		errs := make(chan error, len(seeds))
		for _, seed := range seeds {
			go func(seed []textproc.Token) {
				res, err := ret.SearchWithSeedErr(context.Background(), seed, nil)
				if err == nil && len(res) == 0 {
					err = errNoHits
				}
				errs <- err
			}(seed)
		}
		for range seeds {
			if err := <-errs; err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("nodes=1", func(b *testing.B) {
		engine := search.NewEngine(search.BuildIndex(g.Corpus.Pages))
		inj := &FaultInjector{Bandwidth: linkBytesPerSec, SharedLink: true}
		srv := httptest.NewServer(throttleDataPaths(inj, NewServer(g.Corpus, engine).Handler()))
		defer srv.Close()

		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh client per iteration so the page cache cannot absorb
			// the transfers (the bench_wire idiom).
			c, err := Dial(srv.URL, g.Tokenizer)
			if err != nil {
				b.Fatal(err)
			}
			runBatch(b, c)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N*len(seeds))/b.Elapsed().Seconds(), "qps")
	})

	b.Run("nodes=3", func(b *testing.B) {
		urls := startClusterNodes(b, g, 3, 2, func(i int, h http.Handler) http.Handler {
			return throttleDataPaths(&FaultInjector{Bandwidth: linkBytesPerSec, SharedLink: true}, h)
		})

		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			co, err := DialCoordinator(context.Background(), CoordinatorConfig{
				Nodes:    urls,
				Replicas: 2,
			}, g.Tokenizer)
			if err != nil {
				b.Fatal(err)
			}
			runBatch(b, co)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N*len(seeds))/b.Elapsed().Seconds(), "qps")
	})
}
