package webapi

// The asynchronous jobs API. POST /api/harvest holds its HTTP connection
// open for the whole batch — fine on a LAN, wrong for a long-running
// harvest whose submitter wants to disconnect, poll, resume elsewhere, or
// survive its own restart. The jobs API decouples submission from
// consumption:
//
//	POST   /api/jobs          → {"id": "..."} (request body = HarvestRequest)
//	GET    /api/jobs/{id}     → JobStatus (add ?checkpoints=1 for resume state)
//	GET    /api/jobs/{id}?stream=1 → NDJSON replay-then-follow of all events
//	DELETE /api/jobs/{id}     → cancel a running job / forget a finished one
//
// Jobs run on the server's shared scheduler under the server's lifecycle
// (not the submitting request's): the POST returns immediately, events
// accumulate in a per-job log that any number of readers can stream from
// the beginning, and the latest per-entity checkpoints are kept so a
// canceled (or crashed-client) harvest can be resumed by re-submitting
// with HarvestRequest.Resume.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"slices"
	"sync"

	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/pipeline"
)

// Job states reported by JobStatus.State.
const (
	JobQueued   = "queued"
	JobRunning  = "running"
	JobDone     = "done"
	JobCanceled = "canceled"
)

// JobStatus is the GET /api/jobs/{id} payload.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Entities is the number requested; Finished and Failed count
	// per-entity outcomes so far.
	Entities int `json:"entities"`
	Finished int `json:"finished"`
	Failed   int `json:"failed"`
	// Events is the event-log length (the ?stream=1 replay size).
	Events int `json:"events"`
	// Checkpoints (with ?checkpoints=1) is the latest durable state per
	// entity — the Resume payload for a follow-up submission.
	Checkpoints []core.Checkpoint `json:"checkpoints,omitempty"`
}

// serverJob is one async job's record: an append-only event log with a
// broadcast channel for followers, per-entity checkpoints, and outcome
// counters.
type serverJob struct {
	id     string
	seq    int // registry eviction order (submission sequence)
	cancel context.CancelFunc

	mu       sync.Mutex
	changed  chan struct{}
	events   []HarvestEvent
	state    string
	entities int
	finished int
	failed   int
	cps      map[corpus.EntityID]core.Checkpoint
}

func newServerJob(id string, seq, entities int, cancel context.CancelFunc) *serverJob {
	return &serverJob{
		id:       id,
		seq:      seq,
		cancel:   cancel,
		changed:  make(chan struct{}),
		state:    JobQueued,
		entities: entities,
		cps:      make(map[corpus.EntityID]core.Checkpoint),
	}
}

// signalLocked wakes every waiter (stream followers, state pollers).
func (j *serverJob) signalLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

func (j *serverJob) setState(state string) {
	j.mu.Lock()
	j.state = state
	j.signalLocked()
	j.mu.Unlock()
}

func (j *serverJob) stateName() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// emit appends one event to the log, folding per-entity outcomes into the
// counters.
func (j *serverJob) emit(ev HarvestEvent) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	switch ev.Type {
	case "entity":
		j.finished++
	case "error":
		j.failed++
	}
	j.signalLocked()
	j.mu.Unlock()
}

// checkpoint records the latest durable state for one entity.
func (j *serverJob) checkpoint(cp core.Checkpoint) {
	j.mu.Lock()
	j.cps[cp.Entity] = cp
	j.mu.Unlock()
}

func (j *serverJob) finalState() bool {
	return j.state == JobDone || j.state == JobCanceled
}

func (j *serverJob) status(withCps bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:       j.id,
		State:    j.state,
		Entities: j.entities,
		Finished: j.finished,
		Failed:   j.failed,
		Events:   len(j.events),
	}
	if withCps {
		ids := make([]corpus.EntityID, 0, len(j.cps))
		for id := range j.cps {
			ids = append(ids, id)
		}
		// Deterministic order: ascending entity ID.
		slices.Sort(ids)
		for _, id := range ids {
			st.Checkpoints = append(st.Checkpoints, j.cps[id])
		}
	}
	return st
}

// waitEvents returns the events from index `from` on, blocking until new
// ones arrive, the job reaches a final state, or ctx is done. final
// reports whether no further events will ever arrive past the returned
// slice.
func (j *serverJob) waitEvents(ctx context.Context, from int) (evs []HarvestEvent, final bool, err error) {
	for {
		j.mu.Lock()
		if from < len(j.events) {
			evs = append(evs, j.events[from:]...)
			final = j.finalState()
			j.mu.Unlock()
			return evs, final, nil
		}
		if j.finalState() {
			j.mu.Unlock()
			return nil, true, nil
		}
		ch := j.changed
		j.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	hb := s.Harvest
	if hb == nil {
		writeError(w, http.StatusNotImplemented, "harvesting not enabled on this server")
		return
	}
	var req HarvestRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	p, perr := hb.plan(req)
	if perr != nil {
		writeError(w, perr.status, perr.msg)
		return
	}

	// The job belongs to the server lifecycle, not the submitting
	// request: the POST returns as soon as the job is registered.
	jctx, cancel := context.WithCancel(s.ctx)
	s.jobsMu.Lock()
	s.jobsSeq++
	id := fmt.Sprintf("j%d", s.jobsSeq)
	j := newServerJob(id, s.jobsSeq, len(req.Entities), cancel)
	if s.jobs == nil {
		s.jobs = make(map[string]*serverJob)
	}
	s.jobs[id] = j
	s.evictFinishedLocked()
	s.jobsMu.Unlock()
	// Resume checkpoints count as known state from the start, so a
	// status poll sees the full picture before the first ingest.
	for _, cp := range p.resume {
		j.checkpoint(cp)
	}

	go s.runJob(jctx, j, req, p)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(map[string]string{"id": id, "state": j.stateName()})
}

// runJob executes one async job on the shared scheduler, feeding the
// job's event log.
func (s *Server) runJob(ctx context.Context, j *serverJob, req HarvestRequest, p *harvestPlan) {
	defer j.cancel()
	j.setState(JobRunning)
	jobs, jobEntities, _ := s.Harvest.buildJobs(s, req, p, j.emit)

	results := s.submitHarvest(ctx, jobs, pipeline.BatchOptions{
		Budget: p.budget,
		Checkpoint: func(job int, cp core.Checkpoint) {
			j.checkpoint(cp)
		},
	})

	canceled := false
	for i, res := range results {
		e := jobEntities[i]
		if res.Err != nil {
			if ctx.Err() != nil {
				canceled = true
			}
			j.emit(HarvestEvent{Type: "error", Entity: e.ID, Error: res.Err.Error()})
			continue
		}
		fired := make([]string, len(res.Fired))
		for k, q := range res.Fired {
			fired[k] = string(q)
		}
		var pages []corpus.PageID
		for _, pg := range res.Job.Session.Pages() {
			pages = append(pages, pg.ID)
		}
		j.emit(HarvestEvent{Type: "entity", Entity: e.ID, Fired: fired, Pages: pages})
	}
	st := j.status(false)
	j.emit(HarvestEvent{Type: "done", Entities: st.Entities, Failed: st.Failed})
	if canceled {
		j.setState(JobCanceled)
	} else {
		j.setState(JobDone)
	}
}

// maxRetainedJobs bounds the registry: beyond it, the oldest FINISHED
// jobs (and their event logs/checkpoints) are evicted at submit time.
// Running jobs are never evicted, so the registry can exceed the cap only
// by the number of concurrently running jobs. Without the bound, a
// long-lived server leaks one event log per job forever — clients rarely
// DELETE what they are done with.
const maxRetainedJobs = 256

// evictFinishedLocked drops the oldest finished jobs past the retention
// cap. Caller holds jobsMu.
func (s *Server) evictFinishedLocked() {
	for len(s.jobs) > maxRetainedJobs {
		var victim *serverJob
		for _, j := range s.jobs {
			j.mu.Lock()
			final := j.finalState()
			j.mu.Unlock()
			if final && (victim == nil || j.seq < victim.seq) {
				victim = j
			}
		}
		if victim == nil {
			return // everything over the cap is still running
		}
		delete(s.jobs, victim.id)
	}
}

func (s *Server) lookupJob(id string) *serverJob {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if r.URL.Query().Get("stream") == "" {
		writeJSON(w, j.status(r.URL.Query().Get("checkpoints") != ""))
		return
	}

	// Replay-then-follow event stream (negotiated codec: wire frames or
	// NDJSON): everything logged so far, then live events until the job
	// reaches a final state. The stream also ends when the server shuts
	// down (the job itself is aborted by the same signal, so followers
	// see its final events first).
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.ctx, cancel)
	defer stop()

	// A failed write cancels ctx, which ends the follow loop at the next
	// waitEvents — the reader is gone.
	emit := s.eventEmitter(w, r, cancel)
	from := 0
	for {
		evs, final, err := j.waitEvents(ctx, from)
		if err != nil {
			return // reader is gone or server is draining
		}
		for _, ev := range evs {
			emit(ev)
		}
		from += len(evs)
		if final {
			return
		}
	}
}

func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.lookupJob(id)
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if j.stateName() == JobQueued || j.stateName() == JobRunning {
		// Cancel; the record stays until a second DELETE so the caller
		// can read the final state and checkpoints to resume from.
		j.cancel()
		writeJSON(w, map[string]string{"id": id, "state": "canceling"})
		return
	}
	s.jobsMu.Lock()
	delete(s.jobs, id)
	s.jobsMu.Unlock()
	writeJSON(w, map[string]string{"id": id, "state": "deleted"})
}

// SubmitJob submits an asynchronous server-side harvest and returns its
// job ID. Unlike HarvestBatch, the call returns as soon as the server
// accepts the job; progress is consumed via JobStatus/StreamJob.
func (c *Client) SubmitJob(ctx context.Context, req HarvestRequest) (string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", fmt.Errorf("webapi: jobs: encode request: %w", err)
	}
	path := c.api("/jobs")
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return "", fmt.Errorf("webapi: jobs: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	c.met.requests.Add(1)
	resp, err := c.http.Do(hreq)
	if err != nil {
		c.met.errors.Add(1)
		return "", &TransportError{Op: "jobs", Path: path, Attempts: 1, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		se := readError(resp)
		c.met.errors.Add(1)
		return "", &TransportError{Op: "jobs", Path: path, Attempts: 1, Status: resp.StatusCode,
			Code: se.code, Err: se}
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&out); err != nil || out.ID == "" {
		c.met.errors.Add(1)
		return "", &TransportError{Op: "jobs", Path: path, Attempts: 1,
			Err: fmt.Errorf("malformed job response: %v", err)}
	}
	return out.ID, nil
}

// JobStatus fetches a job's status; withCheckpoints includes the latest
// per-entity checkpoints (the Resume payload).
func (c *Client) JobStatus(ctx context.Context, id string, withCheckpoints bool) (JobStatus, error) {
	path := c.api("/jobs/" + id)
	if withCheckpoints {
		path += "?checkpoints=1"
	}
	var st JobStatus
	if err := c.getJSON(ctx, "jobstatus", path, &st); err != nil {
		return st, err
	}
	return st, nil
}

// StreamJob follows a job's event stream from the beginning (wire frames
// or NDJSON, whichever the server negotiates), delivering every event to
// onEvent in order until the job finishes, the stream fails, or onEvent
// returns an error.
func (c *Client) StreamJob(ctx context.Context, id string, onEvent func(HarvestEvent) error) error {
	path := c.api("/jobs/" + id + "?stream=1")
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return fmt.Errorf("webapi: jobs: %w", err)
	}
	if c.wantWire() {
		hreq.Header.Set("Accept", wireContentType)
	}
	c.met.requests.Add(1)
	// Transport-less client: the per-request timeout would sever the
	// follow stream mid-job (same as HarvestBatch).
	resp, err := (&http.Client{}).Do(hreq)
	if err != nil {
		c.met.errors.Add(1)
		return &TransportError{Op: "jobstream", Path: path, Attempts: 1, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		se := readError(resp)
		c.met.errors.Add(1)
		return &TransportError{Op: "jobstream", Path: path, Attempts: 1, Status: resp.StatusCode,
			Code: se.code, Err: se}
	}
	return c.consumeEventStream(resp, "jobstream", path, onEvent)
}

// CancelJob cancels a running job (DELETE /api/v1/jobs/{id}); calling it
// on a finished job deletes the record instead.
func (c *Client) CancelJob(ctx context.Context, id string) error {
	path := c.api("/jobs/" + id)
	hreq, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+path, nil)
	if err != nil {
		return fmt.Errorf("webapi: jobs: %w", err)
	}
	c.met.requests.Add(1)
	resp, err := c.http.Do(hreq)
	if err != nil {
		c.met.errors.Add(1)
		return &TransportError{Op: "jobcancel", Path: path, Attempts: 1, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		se := readError(resp)
		c.met.errors.Add(1)
		return &TransportError{Op: "jobcancel", Path: path, Attempts: 1, Status: resp.StatusCode,
			Code: se.code, Err: se}
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	return nil
}

// Metrics fetches the server-side counters (GET /api/v1/metrics).
func (c *Client) ServerMetrics(ctx context.Context) (ServerMetrics, error) {
	var m ServerMetrics
	if err := c.getJSON(ctx, "metrics", c.api("/metrics"), &m); err != nil {
		return m, err
	}
	return m, nil
}
