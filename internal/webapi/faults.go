package webapi

import (
	"context"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// FaultInjector wraps an http.Handler with configurable transport faults —
// the test double for everything the real Web does to a harvester: 500s,
// latency, and connections that die mid-transfer. Mount it in front of a
// Server's Handler (e.g. via httptest.NewServer) and point a Client at it;
// the differential fault-tolerance tests hold a harvest through the
// injector to byte-identical results with the in-process run.
//
// Faults are drawn per request from a seeded RNG, so a fixture is
// reproducible for a fixed request sequence. FaultInjector is safe for
// concurrent use.
type FaultInjector struct {
	// Next is the wrapped handler.
	Next http.Handler
	// ErrorRate is the probability of answering 500 instead of serving.
	ErrorRate float64
	// TruncateRate is the probability of serving a response that dies
	// mid-body: the injector declares the full Content-Length but writes
	// only half, so the connection is severed and the client's body read
	// fails with an unexpected EOF — the classic truncated transfer.
	TruncateRate float64
	// Seed makes the fault sequence reproducible (0 seeds from 1).
	Seed uint64
	// Bandwidth models a constrained transfer link in bytes per second:
	// each response write sleeps in proportion to the bytes delivered
	// before delivering them (0 = unlimited). Loopback transfers are
	// effectively free, so without this the paper's per-page transfer
	// cost — the term the wire protocol's compression attacks — would be
	// invisible to benchmarks.
	Bandwidth int64
	// SharedLink upgrades the bandwidth model from per-response to a
	// single shared uplink: concurrent responses reserve consecutive
	// slots on one link timeline instead of each enjoying the full
	// Bandwidth. This is the model for cluster benchmarks, where the
	// point of N nodes is N independent links — per-response throttling
	// would hand a single node the same free parallelism.
	SharedLink bool

	// latency is the per-request added delay in nanoseconds (atomic so
	// tests can dial it up after a fault-free warmup).
	latency atomic.Int64

	passed    atomic.Int64
	injected5 atomic.Int64
	truncated atomic.Int64
	bytesOut  atomic.Int64
	// linkFree is the SharedLink timeline: the UnixNano instant the
	// modeled uplink next falls idle.
	linkFree atomic.Int64

	mu  sync.Mutex
	rng *rand.Rand
}

// SetLatency sets the added per-request delay (also applied to faulted
// responses). Safe to change while serving.
func (f *FaultInjector) SetLatency(d time.Duration) { f.latency.Store(int64(d)) }

// Counts reports how many requests passed through untouched and how many
// were answered with an injected 500 or a truncated body.
func (f *FaultInjector) Counts() (passed, errors, truncated int64) {
	return f.passed.Load(), f.injected5.Load(), f.truncated.Load()
}

// BytesOut reports the total response-body bytes delivered through the
// modeled link. Only counted when Bandwidth > 0 (the throttling wrapper
// is what meters the writes).
func (f *FaultInjector) BytesOut() int64 { return f.bytesOut.Load() }

// roll draws one uniform variate from the seeded stream.
func (f *FaultInjector) roll() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rng == nil {
		seed := f.Seed
		if seed == 0 {
			seed = 1
		}
		f.rng = rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	}
	return f.rng.Float64()
}

func (f *FaultInjector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d := time.Duration(f.latency.Load()); d > 0 {
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-r.Context().Done():
			t.Stop()
			return
		}
	}
	if f.Bandwidth > 0 {
		tw := &throttledWriter{ResponseWriter: w, bytesPerSec: f.Bandwidth, ctx: r.Context(), meter: &f.bytesOut}
		if f.SharedLink {
			tw.linkFree = &f.linkFree
		}
		w = tw
	}
	p := f.roll()
	switch {
	case p < f.ErrorRate:
		f.injected5.Add(1)
		//l2qvet:ignore errenvelope the injector deliberately emits a NON-envelope failure: clients must survive hostile bodies
		http.Error(w, "injected fault", http.StatusInternalServerError)
	case p < f.ErrorRate+f.TruncateRate:
		f.truncated.Add(1)
		f.truncate(w, r)
	default:
		f.passed.Add(1)
		f.Next.ServeHTTP(w, r)
	}
}

// truncate serves the real response but cuts the body in half under a
// full-length Content-Length declaration, which makes net/http close the
// connection without finishing the response — the client sees a read
// error, not a short-but-valid body.
func (f *FaultInjector) truncate(w http.ResponseWriter, r *http.Request) {
	rec := &captureWriter{header: make(http.Header)}
	f.Next.ServeHTTP(rec, r)
	for k, vs := range rec.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	body := rec.body
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	status := rec.status
	if status == 0 {
		status = http.StatusOK
	}
	w.WriteHeader(status)
	w.Write(body[:len(body)/2])
	// Returning with len(body)/2 < Content-Length written forces net/http
	// to sever the connection: the truncation is a wire fault, invisible
	// to naive clients until the read fails.
}

// throttledWriter charges each response write against the modeled link
// speed: the transfer time of the bytes is slept before they are
// delivered, so response size becomes response time — exactly the
// trade the binary wire's compression is meant to win.
type throttledWriter struct {
	http.ResponseWriter
	bytesPerSec int64
	ctx         context.Context
	meter       *atomic.Int64
	// linkFree, when non-nil, points at the injector's shared uplink
	// timeline (see FaultInjector.SharedLink); nil keeps the original
	// per-response model.
	linkFree *atomic.Int64
}

func (t *throttledWriter) Write(p []byte) (int, error) {
	t.meter.Add(int64(len(p)))
	d := time.Duration(float64(len(p)) / float64(t.bytesPerSec) * float64(time.Second))
	if d > 0 && t.linkFree != nil {
		// Reserve this transfer's slot on the shared link: it starts when
		// the link frees (or now, if idle) and holds the link for d.
		now := time.Now().UnixNano()
		for {
			free := t.linkFree.Load()
			start := max(free, now)
			if t.linkFree.CompareAndSwap(free, start+int64(d)) {
				d = time.Duration(start + int64(d) - now)
				break
			}
		}
	}
	if d > 0 {
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-t.ctx.Done():
			timer.Stop()
			return 0, t.ctx.Err()
		}
	}
	return t.ResponseWriter.Write(p)
}

// Unwrap lets http.NewResponseController reach the underlying writer
// (write deadlines on the wrapped response).
func (t *throttledWriter) Unwrap() http.ResponseWriter { return t.ResponseWriter }

// captureWriter buffers a handler's response for the truncating replay.
type captureWriter struct {
	header http.Header
	status int
	body   []byte
}

func (c *captureWriter) Header() http.Header { return c.header }

func (c *captureWriter) WriteHeader(status int) {
	if c.status == 0 {
		c.status = status
	}
}

func (c *captureWriter) Write(p []byte) (int, error) {
	c.body = append(c.body, p...)
	return len(p), nil
}
