package webapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"l2q/internal/corpus"
	"l2q/internal/html"
	"l2q/internal/search"
	"l2q/internal/textproc"
)

// Client is a remote search engine: it implements core.Retriever (and the
// error-aware core.ContextRetriever) against a webapi.Server, so a
// harvesting session runs unchanged across a real HTTP boundary. Result
// pages are downloaded as HTML, segmented with internal/html, re-tokenized,
// and cached; Dirichlet scoring is reproduced locally from /api/stats plus
// batched /api/collfreq lookups, bit-for-bit equal to the server engine's
// scores.
//
// The transport is resilient by default: every API call is an idempotent
// GET against an immutable corpus, so the client retries transient faults
// (connection errors, timeouts, truncated bodies, 5xx) with exponential
// backoff and jitter (RetryPolicy), downloads a query's result pages
// concurrently with singleflight dedup, and accounts every request, retry
// and terminal failure in ClientMetrics. Faults that survive the retry
// budget surface as *TransportError — never as a silently shortened result
// list, which would corrupt the session's R_E(Φ) bookkeeping without a
// trace.
//
// Client is safe for concurrent use.
type Client struct {
	base            string
	http            *http.Client
	tok             *textproc.Tokenizer
	stats           Stats
	retry           RetryPolicy
	prefetchWorkers int

	mu        sync.RWMutex
	pageCache map[corpus.PageID]*corpus.Page
	cfCache   map[string]int

	flight flightGroup
	met    metrics
}

// ClientOptions tunes a client's transport. The zero value picks the
// defaults documented on each field.
type ClientOptions struct {
	// Retry is the per-request retry policy (zero value: 4 attempts,
	// 50 ms base backoff, 2 s cap).
	Retry RetryPolicy
	// PrefetchWorkers bounds the concurrent page downloads for one
	// query's hit list (default 8; 1 fetches serially).
	PrefetchWorkers int
	// Timeout is the per-request HTTP timeout (default 30 s). Contexts
	// passed to the *Ctx/*Err methods cancel earlier.
	Timeout time.Duration
}

// maxResponseBytes caps any single response body read (pages and JSON).
const maxResponseBytes = 32 << 20

// Dial connects to a server with default transport options, fetching its
// collection statistics once. The tokenizer must match the one that
// produced the corpus (the server serves raw HTML; tokenization is the
// client's job, as on the real Web).
func Dial(base string, tok *textproc.Tokenizer) (*Client, error) {
	return DialOpts(base, tok, ClientOptions{})
}

// DialOpts is Dial with explicit transport options.
func DialOpts(base string, tok *textproc.Tokenizer, opts ClientOptions) (*Client, error) {
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	if opts.PrefetchWorkers <= 0 {
		opts.PrefetchWorkers = 8
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	c := &Client{
		base:            strings.TrimRight(base, "/"),
		http:            &http.Client{Timeout: opts.Timeout},
		tok:             tok,
		retry:           opts.Retry.withDefaults(),
		prefetchWorkers: opts.PrefetchWorkers,
		pageCache:       make(map[corpus.PageID]*corpus.Page),
		cfCache:         make(map[string]int),
	}
	if err := c.getJSON(context.Background(), "stats", "/api/stats", &c.stats); err != nil {
		return nil, fmt.Errorf("webapi: dial %s: %w", base, err)
	}
	if c.stats.TopK <= 0 || c.stats.Mu <= 0 {
		return nil, fmt.Errorf("webapi: dial %s: implausible stats %+v", base, c.stats)
	}
	return c, nil
}

// Stats returns the server's collection statistics.
func (c *Client) Stats() Stats { return c.stats }

// Requests returns the number of HTTP requests issued so far, retries
// included (the "cost" the paper motivates minimizing).
func (c *Client) Requests() int { return int(c.met.requests.Load()) }

// Metrics returns a snapshot of the client's request/retry/error counters.
func (c *Client) Metrics() ClientMetrics { return c.met.snapshot() }

// doRetry issues GET path until decode succeeds or the retry policy is
// exhausted, classifying failures with retryable. decode runs inside the
// loop so truncated or corrupted payloads (which read fine but do not
// parse) are retried like wire-level faults.
func (c *Client) doRetry(ctx context.Context, op, path string, decode func([]byte) error) error {
	if err := ctx.Err(); err != nil {
		// Already canceled: no attempt, no counters — this is the
		// caller's decision, not a transport failure.
		return &TransportError{Op: op, Path: path, Err: err}
	}
	var lastErr error
	attempts := 0
	for attempt := 1; attempt <= c.retry.MaxAttempts; attempt++ {
		attempts = attempt
		if attempt > 1 {
			c.met.retries.Add(1)
		}
		body, err := c.once(ctx, path)
		if err == nil {
			err = decode(body)
		}
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable(ctx, err) || attempt == c.retry.MaxAttempts {
			break
		}
		if err := c.retry.sleep(ctx, attempt); err != nil {
			lastErr = err
			break
		}
	}
	if ctx.Err() == nil {
		// Count terminal transport failures only; an operation cut short
		// by the caller's cancellation is not a fault of the wire.
		c.met.errors.Add(1)
	}
	status := 0
	var se *statusError
	if errors.As(lastErr, &se) {
		status = se.status
	}
	return &TransportError{Op: op, Path: path, Attempts: attempts, Status: status, Err: lastErr}
}

// once issues a single GET and reads the full body.
func (c *Client) once(ctx context.Context, path string) ([]byte, error) {
	c.met.requests.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Only a snippet of an error body is ever used; don't transfer a
		// misbehaving server's multi-megabyte 500 page to truncate it.
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, &statusError{status: resp.StatusCode, body: strings.TrimSpace(string(snippet))}
	}
	body, readErr := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if readErr != nil {
		return nil, readErr // truncated body: the server died mid-response
	}
	return body, nil
}

func (c *Client) getJSON(ctx context.Context, op, path string, out any) error {
	return c.doRetry(ctx, op, path, func(b []byte) error { return json.Unmarshal(b, out) })
}

// TopK implements core.Retriever.
func (c *Client) TopK() int { return c.stats.TopK }

// SearchWithSeed implements core.Retriever. It is the legacy errorless
// adapter over SearchWithSeedErr: a fault that survives the retry budget
// yields no results (an unproductive query) rather than a silently
// shortened hit list. Error-aware callers (core.Session.FetchQueryCtx, the
// pipeline fetch stage) use SearchWithSeedErr and see the typed failure.
func (c *Client) SearchWithSeed(seed, query []textproc.Token) []search.Result {
	res, err := c.SearchWithSeedErr(context.Background(), seed, query)
	if err != nil {
		return nil
	}
	return res
}

// SearchWithSeedErr implements core.ContextRetriever: remote search, then
// concurrent singleflight-deduped download of every ranked hit. Either the
// complete ranked result list is returned, or an error — never a partial
// list with failed downloads silently dropped.
func (c *Client) SearchWithSeedErr(ctx context.Context, seed, query []textproc.Token) ([]search.Result, error) {
	q := url.Values{}
	q.Set("seed", textproc.JoinQuery(seed))
	q.Set("q", textproc.JoinQuery(query))
	path := "/api/search?" + q.Encode()
	var resp SearchResponse
	if err := c.getJSON(ctx, "search", path, &resp); err != nil {
		return nil, err
	}
	pages, err := c.prefetch(ctx, resp.Hits)
	if err != nil {
		return nil, err
	}
	out := make([]search.Result, len(resp.Hits))
	for i, h := range resp.Hits {
		out[i] = search.Result{Page: pages[i], Score: h.Score}
	}
	return out, nil
}

// prefetch downloads the hit list's pages with bounded concurrency,
// preserving rank order. The first failure cancels the remaining fetches.
func (c *Client) prefetch(ctx context.Context, hits []SearchHit) ([]*corpus.Page, error) {
	pages := make([]*corpus.Page, len(hits))
	if len(hits) == 0 {
		return pages, nil
	}
	workers := c.prefetchWorkers
	if workers > len(hits) {
		workers = len(hits)
	}
	if workers <= 1 {
		for i, h := range hits {
			p, err := c.PageCtx(ctx, h.PageID)
			if err != nil {
				return nil, err
			}
			pages[i] = p
		}
		return pages, nil
	}
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if fctx.Err() != nil {
					continue // another fetch failed; drain without fetching
				}
				p, err := c.PageCtx(fctx, hits[i].PageID)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					cancel()
					continue
				}
				pages[i] = p
			}
		}()
	}
	for i := range hits {
		if fctx.Err() != nil {
			break // one failure fails the whole list; stop dispatching
		}
		work <- i
	}
	close(work)
	wg.Wait()
	if firstErr == nil {
		// The caller's own cancellation leaves skipped (nil) slots with
		// no recorded worker error; returning them as a success would
		// hand nil pages to the session. Surface the cancellation.
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return pages, nil
}

// Page downloads (or returns the cached) page with the given ID.
func (c *Client) Page(id corpus.PageID) (*corpus.Page, error) {
	return c.PageCtx(context.Background(), id)
}

// PageCtx is Page with cancellation. Concurrent fetches of the same page
// (many sessions prefetching overlapping hit lists) coalesce onto a single
// download: followers wait for the leader's result instead of re-paying
// the transfer. A follower whose own context is canceled while waiting
// returns its context error; a leader failure is shared with the waiters
// and the flight slot is released, so the next caller retries fresh.
//
// One failure is deliberately NOT shared: a leader that died of its own
// context's cancellation. The flight runs under the leader's context, so
// without this carve-out one query's mid-prefetch abort would poison
// every concurrent query waiting on a shared page with a spurious
// context.Canceled. A live-context waiter loops and fetches again
// (typically becoming the next leader). The signal is the leader's
// context state at completion — not the error's identity, which would
// also match a terminal failure built from per-request HTTP timeouts and
// make K waiters serially re-pay a dead server's full retry budget.
func (c *Client) PageCtx(ctx context.Context, id corpus.PageID) (*corpus.Page, error) {
	for {
		c.mu.RLock()
		p, ok := c.pageCache[id]
		c.mu.RUnlock()
		if ok {
			return p, nil
		}
		p, shared, leaderCanceled, err := c.flight.do(ctx, id, func() (*corpus.Page, error) {
			c.met.pageFetches.Add(1)
			pp, err := c.fetchPage(ctx, id)
			if err != nil {
				return nil, err
			}
			c.mu.Lock()
			c.pageCache[id] = pp
			c.mu.Unlock()
			return pp, nil
		})
		if shared {
			c.met.prefetchShared.Add(1)
			if err != nil && leaderCanceled && ctx.Err() == nil {
				continue // the LEADER was canceled, not us — retry fresh
			}
		}
		return p, err
	}
}

// fetchPage downloads and parses one page, retrying transport faults. A
// document whose l2q-page-id meta is missing or disagrees with the
// requested ID is rejected (and retried — the usual cause is a truncated
// transfer): accepting it would let distinct malformed pages alias page 0
// in the session's dedup set.
func (c *Client) fetchPage(ctx context.Context, id corpus.PageID) (*corpus.Page, error) {
	path := html.PageHref(id)
	var p *corpus.Page
	err := c.doRetry(ctx, "page", path, func(b []byte) error {
		parsed := html.ParsePage(string(b), -1, c.tok)
		if parsed.ID != id {
			return fmt.Errorf("document has l2q-page-id %d, want %d (missing or corrupted meta)", parsed.ID, id)
		}
		p = parsed
		return nil
	})
	if err != nil {
		return nil, err
	}
	p.URL = c.base + path
	return p, nil
}

// flightGroup is a minimal singleflight keyed by page ID: one in-flight
// download per page, concurrent requesters share the result.
type flightGroup struct {
	mu sync.Mutex
	m  map[corpus.PageID]*flightCall
}

type flightCall struct {
	done chan struct{}
	p    *corpus.Page
	err  error
	// canceled records whether the leader's OWN context was done when the
	// flight completed — the signal that lets a live-context waiter retry
	// instead of inheriting a cancellation that was never its own.
	canceled bool
}

// do runs fn once per concurrently-requested id; shared is true when this
// caller waited on another caller's flight instead of running fn, and
// leaderCanceled reports whether that flight's leader ended with its own
// context canceled.
func (g *flightGroup) do(ctx context.Context, id corpus.PageID, fn func() (*corpus.Page, error)) (p *corpus.Page, shared, leaderCanceled bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[corpus.PageID]*flightCall)
	}
	if call, ok := g.m[id]; ok {
		g.mu.Unlock()
		select {
		case <-call.done:
			return call.p, true, call.canceled, call.err
		case <-ctx.Done():
			return nil, true, false, ctx.Err()
		}
	}
	call := &flightCall{done: make(chan struct{})}
	g.m[id] = call
	g.mu.Unlock()
	call.p, call.err = fn()
	call.canceled = ctx.Err() != nil
	g.mu.Lock()
	delete(g.m, id)
	g.mu.Unlock()
	close(call.done)
	return call.p, false, false, call.err
}

// collProbs returns the server-identical smoothed collection probability of
// each token, fetching unknown collection frequencies in one batched call.
// A persistent transport failure degrades to zero-frequency smoothing (the
// engine's behavior for unseen terms) rather than failing the caller:
// QueryLikelihood has no error surface, and edge weights only modulate
// rankings. Because QueryLikelihood can run on the selection path (the
// WeightByLikelihood edge weighting) where no caller context exists, the
// whole retried lookup is bounded by one request timeout — a dead server
// costs at most that, not attempts × (timeout + backoff).
func (c *Client) collProbs(tokens []textproc.Token) []float64 {
	var missing []string
	c.mu.RLock()
	for _, t := range tokens {
		if _, ok := c.cfCache[t]; !ok {
			missing = append(missing, t)
		}
	}
	c.mu.RUnlock()
	if len(missing) > 0 {
		q := url.Values{}
		q.Set("tokens", strings.Join(missing, ","))
		var resp struct {
			Freqs map[string]int `json:"freqs"`
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.http.Timeout)
		err := c.getJSON(ctx, "collfreq", "/api/collfreq?"+q.Encode(), &resp)
		cancel()
		if err == nil {
			c.mu.Lock()
			for t, cf := range resp.Freqs {
				c.cfCache[t] = cf
			}
			c.mu.Unlock()
		}
	}
	out := make([]float64, len(tokens))
	c.mu.RLock()
	for i, t := range tokens {
		out[i] = search.CollectionProb(c.cfCache[t], c.stats.TotalTokens, c.stats.NumTerms)
	}
	c.mu.RUnlock()
	return out
}

// QueryLikelihood implements core.Retriever with the server's exact
// scoring model, computed locally over the downloaded page.
func (c *Client) QueryLikelihood(p *corpus.Page, query []textproc.Token) float64 {
	toks := p.Tokens()
	tf := make(map[textproc.Token]int, len(query))
	for _, t := range toks {
		tf[t]++
	}
	pcs := c.collProbs(query)
	s := 0.0
	for i, t := range query {
		s += search.DirichletTermScore(tf[t], len(toks), c.stats.Mu, pcs[i])
	}
	return s
}

// Entities lists the server's harvest targets.
func (c *Client) Entities() ([]EntityInfo, error) {
	var out []EntityInfo
	if err := c.getJSON(context.Background(), "entities", "/api/entities", &out); err != nil {
		return nil, err
	}
	return out, nil
}
