package webapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"l2q/internal/corpus"
	"l2q/internal/html"
	"l2q/internal/search"
	"l2q/internal/textproc"
)

// Client is a remote search engine: it implements core.Retriever against a
// webapi.Server, so a harvesting session runs unchanged across a real HTTP
// boundary. Result pages are downloaded as HTML, segmented with
// internal/html, re-tokenized, and cached; Dirichlet scoring is reproduced
// locally from /api/stats plus batched /api/collfreq lookups, bit-for-bit
// equal to the server engine's scores.
//
// Client is safe for concurrent use.
type Client struct {
	base  string
	http  *http.Client
	tok   *textproc.Tokenizer
	stats Stats

	mu        sync.RWMutex
	pageCache map[corpus.PageID]*corpus.Page
	cfCache   map[string]int

	reqMu    sync.Mutex
	requests int
}

// Dial connects to a server, fetching its collection statistics once. The
// tokenizer must match the one that produced the corpus (the server serves
// raw HTML; tokenization is the client's job, as on the real Web).
func Dial(base string, tok *textproc.Tokenizer) (*Client, error) {
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	c := &Client{
		base:      strings.TrimRight(base, "/"),
		http:      &http.Client{Timeout: 30 * time.Second},
		tok:       tok,
		pageCache: make(map[corpus.PageID]*corpus.Page),
		cfCache:   make(map[string]int),
	}
	if err := c.getJSON("/api/stats", &c.stats); err != nil {
		return nil, fmt.Errorf("webapi: dial %s: %w", base, err)
	}
	if c.stats.TopK <= 0 || c.stats.Mu <= 0 {
		return nil, fmt.Errorf("webapi: dial %s: implausible stats %+v", base, c.stats)
	}
	return c, nil
}

// Stats returns the server's collection statistics.
func (c *Client) Stats() Stats { return c.stats }

// Requests returns the number of HTTP requests issued so far (the "cost"
// the paper motivates minimizing).
func (c *Client) Requests() int {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	return c.requests
}

func (c *Client) countRequest() {
	c.reqMu.Lock()
	c.requests++
	c.reqMu.Unlock()
}

func (c *Client) getJSON(path string, out any) error {
	c.countRequest()
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// TopK implements core.Retriever.
func (c *Client) TopK() int { return c.stats.TopK }

// SearchWithSeed implements core.Retriever: remote search, then page
// download (cache-aware) for every hit.
func (c *Client) SearchWithSeed(seed, query []textproc.Token) []search.Result {
	q := url.Values{}
	q.Set("seed", textproc.JoinQuery(seed))
	q.Set("q", textproc.JoinQuery(query))
	var resp SearchResponse
	if err := c.getJSON("/api/search?"+q.Encode(), &resp); err != nil {
		// Retriever has no error channel (searches over a fixed corpus
		// cannot fail in-process); a broken transport yields no results,
		// which the session treats as an unproductive query.
		return nil
	}
	out := make([]search.Result, 0, len(resp.Hits))
	for _, h := range resp.Hits {
		p, err := c.Page(h.PageID)
		if err != nil {
			continue
		}
		out = append(out, search.Result{Page: p, Score: h.Score})
	}
	return out
}

// Page downloads (or returns the cached) page with the given ID.
func (c *Client) Page(id corpus.PageID) (*corpus.Page, error) {
	c.mu.RLock()
	p, ok := c.pageCache[id]
	c.mu.RUnlock()
	if ok {
		return p, nil
	}
	c.countRequest()
	resp, err := c.http.Get(c.base + html.PageHref(id))
	if err != nil {
		return nil, fmt.Errorf("webapi: fetch page %d: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("webapi: fetch page %d: %s", id, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 10<<20))
	if err != nil {
		return nil, fmt.Errorf("webapi: fetch page %d: %w", id, err)
	}
	p = html.ParsePage(string(body), -1, c.tok)
	p.URL = c.base + html.PageHref(id)
	c.mu.Lock()
	c.pageCache[id] = p
	c.mu.Unlock()
	return p, nil
}

// collProb returns the server-identical smoothed collection probability of
// a token, fetching unknown collection frequencies in one batched call.
func (c *Client) collProbs(tokens []textproc.Token) []float64 {
	var missing []string
	c.mu.RLock()
	for _, t := range tokens {
		if _, ok := c.cfCache[t]; !ok {
			missing = append(missing, t)
		}
	}
	c.mu.RUnlock()
	if len(missing) > 0 {
		q := url.Values{}
		q.Set("tokens", strings.Join(missing, ","))
		var resp struct {
			Freqs map[string]int `json:"freqs"`
		}
		if err := c.getJSON("/api/collfreq?"+q.Encode(), &resp); err == nil {
			c.mu.Lock()
			for t, cf := range resp.Freqs {
				c.cfCache[t] = cf
			}
			c.mu.Unlock()
		}
	}
	out := make([]float64, len(tokens))
	c.mu.RLock()
	for i, t := range tokens {
		out[i] = search.CollectionProb(c.cfCache[t], c.stats.TotalTokens, c.stats.NumTerms)
	}
	c.mu.RUnlock()
	return out
}

// QueryLikelihood implements core.Retriever with the server's exact
// scoring model, computed locally over the downloaded page.
func (c *Client) QueryLikelihood(p *corpus.Page, query []textproc.Token) float64 {
	toks := p.Tokens()
	tf := make(map[textproc.Token]int, len(query))
	for _, t := range toks {
		tf[t]++
	}
	pcs := c.collProbs(query)
	s := 0.0
	for i, t := range query {
		s += search.DirichletTermScore(tf[t], len(toks), c.stats.Mu, pcs[i])
	}
	return s
}

// Entities lists the server's harvest targets.
func (c *Client) Entities() ([]EntityInfo, error) {
	var out []EntityInfo
	if err := c.getJSON("/api/entities", &out); err != nil {
		return nil, err
	}
	return out, nil
}
