package webapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"l2q/internal/corpus"
	"l2q/internal/html"
	"l2q/internal/search"
	"l2q/internal/store"
	"l2q/internal/textproc"
)

// Client is a remote search engine: it implements core.Retriever (and the
// error-aware core.ContextRetriever) against a webapi.Server, so a
// harvesting session runs unchanged across a real HTTP boundary. Result
// pages are downloaded as HTML, segmented with internal/html, re-tokenized,
// and cached; Dirichlet scoring is reproduced locally from /api/stats plus
// batched /api/collfreq lookups, bit-for-bit equal to the server engine's
// scores.
//
// The transport is resilient by default: every API call is an idempotent
// GET against an immutable corpus, so the client retries transient faults
// (connection errors, timeouts, truncated bodies, 5xx) with exponential
// backoff and jitter (RetryPolicy), downloads a query's result pages
// concurrently with singleflight dedup, and accounts every request, retry
// and terminal failure in ClientMetrics. Faults that survive the retry
// budget surface as *TransportError — never as a silently shortened result
// list, which would corrupt the session's R_E(Φ) bookkeeping without a
// trace.
//
// Client is safe for concurrent use.
type Client struct {
	base            string
	http            *http.Client
	tok             *textproc.Tokenizer
	stats           Stats
	retry           RetryPolicy
	prefetchWorkers int
	codec           Codec
	// apiPrefix is "/api/v1" against a current server, "/api" after the
	// dial probe falls back to a pre-v1 server. Fixed at dial time.
	apiPrefix string
	// wire records whether the server answered the dial probe in the
	// binary codec — the negotiated truth, fixed at dial time.
	wire bool

	mu        sync.RWMutex
	pageCache map[corpus.PageID]*corpus.Page
	cfCache   map[string]int

	flight flightGroup
	met    metrics
}

// Codec is the client's wire-encoding preference, negotiated at dial.
type Codec int

const (
	// CodecAuto (the default) asks for the binary wire protocol and
	// accepts whatever the server speaks: binary frames from a current
	// server, JSON from an older one — the clean mixed-version posture.
	CodecAuto Codec = iota
	// CodecJSON never asks for binary; every payload travels as JSON
	// (the debug posture).
	CodecJSON
	// CodecBinary requires binary: Dial fails against a server that does
	// not speak the wire protocol instead of silently degrading.
	CodecBinary
)

func (c Codec) String() string {
	switch c {
	case CodecJSON:
		return "json"
	case CodecBinary:
		return "binary"
	default:
		return "auto"
	}
}

// ParseCodec maps a flag value ("auto", "json", "binary") to a Codec.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "auto":
		return CodecAuto, nil
	case "json":
		return CodecJSON, nil
	case "binary":
		return CodecBinary, nil
	}
	return CodecAuto, fmt.Errorf("webapi: unknown codec %q (want auto, json or binary)", s)
}

// ClientOptions is the one construction surface for Client transports.
// The zero value picks the defaults documented on each field; Dial and
// DialContext apply them via withDefaults.
type ClientOptions struct {
	// Retry is the per-request retry policy (zero value: 4 attempts,
	// 50 ms base backoff, 2 s cap).
	Retry RetryPolicy
	// PrefetchWorkers bounds the concurrent page downloads for one
	// query's hit list (default 8; 1 fetches serially).
	PrefetchWorkers int
	// Timeout is the per-request HTTP timeout (default 30 s). Contexts
	// passed to the *Ctx/*Err methods cancel earlier.
	Timeout time.Duration
	// Codec is the wire-encoding preference (default CodecAuto).
	Codec Codec
}

// withDefaults fills the zero fields with the documented defaults.
func (o ClientOptions) withDefaults() ClientOptions {
	if o.PrefetchWorkers <= 0 {
		o.PrefetchWorkers = 8
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	o.Retry = o.Retry.withDefaults()
	return o
}

// maxResponseBytes caps any single response body read (pages and JSON).
const maxResponseBytes = 32 << 20

// Dial connects to a server with default transport options, fetching its
// collection statistics once. The tokenizer must match the one that
// produced the corpus (the server serves raw HTML; tokenization is the
// client's job, as on the real Web).
func Dial(base string, tok *textproc.Tokenizer) (*Client, error) {
	//l2qvet:ignore ctxbg legacy ctx-less constructor kept for the public surface; ctx-aware callers use DialContext
	return DialContext(context.Background(), base, tok, ClientOptions{})
}

// DialOpts is Dial with explicit transport options.
func DialOpts(base string, tok *textproc.Tokenizer, opts ClientOptions) (*Client, error) {
	//l2qvet:ignore ctxbg legacy ctx-less constructor kept for the public surface; ctx-aware callers use DialContext
	return DialContext(context.Background(), base, tok, opts)
}

// DialContext is Dial with explicit options and a caller context
// bounding the dial probe (the stats fetch and codec negotiation).
func DialContext(ctx context.Context, base string, tok *textproc.Tokenizer, opts ClientOptions) (*Client, error) {
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	opts = opts.withDefaults()
	c := &Client{
		base:            strings.TrimRight(base, "/"),
		http:            &http.Client{Timeout: opts.Timeout},
		tok:             tok,
		retry:           opts.Retry,
		prefetchWorkers: opts.PrefetchWorkers,
		codec:           opts.Codec,
		apiPrefix:       "/api/v1",
		pageCache:       make(map[corpus.PageID]*corpus.Page),
		cfCache:         make(map[string]int),
	}
	// The dial probe doubles as codec negotiation: ask for binary (per
	// the codec preference) and record what came back. A pre-v1 server
	// has no /api/v1 at all — fall back to the legacy surface for every
	// subsequent call.
	err := c.fetchStats(ctx)
	if isStatus(err, http.StatusNotFound) {
		c.apiPrefix = "/api"
		err = c.fetchStats(ctx)
	}
	if err != nil {
		return nil, fmt.Errorf("webapi: dial %s: %w", base, err)
	}
	if c.stats.TopK <= 0 || c.stats.Mu <= 0 {
		return nil, fmt.Errorf("webapi: dial %s: implausible stats %+v", base, c.stats)
	}
	if c.codec == CodecBinary && !c.wire {
		return nil, fmt.Errorf("webapi: dial %s: server does not speak the binary wire protocol (CodecBinary requires it)", base)
	}
	return c, nil
}

// api builds a request path on the negotiated surface: /api/v1 against a
// current server, the legacy /api against a pre-v1 one.
func (c *Client) api(suffix string) string { return c.apiPrefix + suffix }

// wantWire reports whether requests should ask for the binary codec.
func (c *Client) wantWire() bool { return c.codec != CodecJSON }

// WireNegotiated reports whether the dial probe negotiated the binary
// wire protocol (false: every payload travels as JSON).
func (c *Client) WireNegotiated() bool { return c.wire }

// fetchStats performs the dial probe: fetch collection statistics in the
// negotiated codec and record whether the server answered in binary.
func (c *Client) fetchStats(ctx context.Context) error {
	return c.doRetry(ctx, "stats", c.api("/stats"), func(b []byte) error {
		if isWireFrame(b) {
			c.wire = true
			return decodeFramePayload(b, wireStats, func(d *store.Dec) { c.stats = decodeStatsWire(d) })
		}
		c.wire = false
		return json.Unmarshal(b, &c.stats)
	})
}

// isStatus reports whether err is a transport failure with the given
// terminal HTTP status.
func isStatus(err error, status int) bool {
	var te *TransportError
	return errors.As(err, &te) && te.Status == status
}

// Stats returns the server's collection statistics.
func (c *Client) Stats() Stats { return c.stats }

// Requests returns the number of HTTP requests issued so far, retries
// included (the "cost" the paper motivates minimizing).
func (c *Client) Requests() int { return int(c.met.requests.Load()) }

// Metrics returns a snapshot of the client's request/retry/error counters.
func (c *Client) Metrics() ClientMetrics { return c.met.snapshot() }

// doRetry issues GET path until decode succeeds or the retry policy is
// exhausted, classifying failures with retryable. decode runs inside the
// loop so truncated or corrupted payloads (which read fine but do not
// parse) are retried like wire-level faults.
func (c *Client) doRetry(ctx context.Context, op, path string, decode func([]byte) error) error {
	if err := ctx.Err(); err != nil {
		// Already canceled: no attempt, no counters — this is the
		// caller's decision, not a transport failure.
		return &TransportError{Op: op, Path: path, Err: err}
	}
	var lastErr error
	attempts := 0
	for attempt := 1; attempt <= c.retry.MaxAttempts; attempt++ {
		attempts = attempt
		if attempt > 1 {
			c.met.retries.Add(1)
		}
		body, err := c.once(ctx, path)
		if err == nil {
			err = decode(body)
		}
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable(ctx, err) || attempt == c.retry.MaxAttempts {
			break
		}
		if err := c.retry.sleep(ctx, attempt); err != nil {
			lastErr = err
			break
		}
	}
	if ctx.Err() == nil {
		// Count terminal transport failures only; an operation cut short
		// by the caller's cancellation is not a fault of the wire.
		c.met.errors.Add(1)
	}
	status := 0
	code := ""
	var se *statusError
	if errors.As(lastErr, &se) {
		status = se.status
		code = se.code
	}
	return &TransportError{Op: op, Path: path, Attempts: attempts, Status: status, Code: code, Err: lastErr}
}

// once issues a single GET (asking for the binary codec per the client's
// preference) and reads the full body.
func (c *Client) once(ctx context.Context, path string) ([]byte, error) {
	c.met.requests.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	if c.wantWire() {
		req.Header.Set("Accept", wireContentType)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readError(resp)
	}
	body, readErr := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if readErr != nil {
		return nil, readErr // truncated body: the server died mid-response
	}
	return body, nil
}

func (c *Client) getJSON(ctx context.Context, op, path string, out any) error {
	return c.doRetry(ctx, op, path, func(b []byte) error { return json.Unmarshal(b, out) })
}

// getNegotiated fetches path and decodes the response by sniffing its
// body: a wire frame (the magic bytes) decodes with fromWire, anything
// else with fromJSON. Sniffing — rather than trusting headers — is what
// makes mixed-version fallback automatic: a server (or intermediary)
// that ignored the Accept header is simply decoded as JSON, and a
// truncated frame fails its CRC/length checks inside the retry loop and
// is retried like any other wire fault.
func (c *Client) getNegotiated(ctx context.Context, op, path string, kind byte, fromWire func(*store.Dec), fromJSON func([]byte) error) error {
	return c.doRetry(ctx, op, path, func(b []byte) error {
		if isWireFrame(b) {
			return decodeFramePayload(b, kind, fromWire)
		}
		return fromJSON(b)
	})
}

// TopK implements core.Retriever.
func (c *Client) TopK() int { return c.stats.TopK }

// SearchWithSeed implements core.Retriever. It is the legacy errorless
// adapter over SearchWithSeedErr: a fault that survives the retry budget
// yields no results (an unproductive query) rather than a silently
// shortened hit list. Error-aware callers (core.Session.FetchQueryCtx, the
// pipeline fetch stage) use SearchWithSeedErr and see the typed failure.
func (c *Client) SearchWithSeed(seed, query []textproc.Token) []search.Result {
	//l2qvet:ignore ctxbg errorless core.Retriever adapter: the interface has no ctx; error-aware callers use SearchWithSeedErr
	res, err := c.SearchWithSeedErr(context.Background(), seed, query)
	if err != nil {
		return nil
	}
	return res
}

// tokenQuery encodes seed and query tokens in the token-exact wire form:
// each token is its own repeated parameter value under tokq=1, so phrase
// tokens ("data mining" is one vocabulary term) reach the server intact
// instead of being shattered by the legacy space-joined encoding — the
// server would score the fragments as out-of-vocabulary words and every
// Dirichlet score would drift from the in-process engine's. Extends vals
// in place when non-nil.
func tokenQuery(vals url.Values, seed, query []textproc.Token) url.Values {
	if vals == nil {
		vals = url.Values{}
	}
	vals.Set("tokq", "1")
	if len(seed) > 0 {
		vals["seed"] = seed
	}
	if len(query) > 0 {
		vals["q"] = query
	}
	return vals
}

// SearchWithSeedErr implements core.ContextRetriever: remote search, then
// concurrent singleflight-deduped download of every ranked hit. Either the
// complete ranked result list is returned, or an error — never a partial
// list with failed downloads silently dropped.
func (c *Client) SearchWithSeedErr(ctx context.Context, seed, query []textproc.Token) ([]search.Result, error) {
	path := c.api("/search?" + tokenQuery(nil, seed, query).Encode())
	var resp SearchResponse
	err := c.getNegotiated(ctx, "search", path, wireSearch,
		func(d *store.Dec) { resp = decodeSearchWire(d) },
		func(b []byte) error { resp = SearchResponse{}; return json.Unmarshal(b, &resp) })
	if err != nil {
		return nil, err
	}
	pages, err := c.prefetch(ctx, resp.Hits)
	if err != nil {
		return nil, err
	}
	out := make([]search.Result, len(resp.Hits))
	for i, h := range resp.Hits {
		out[i] = search.Result{Page: pages[i], Score: h.Score}
	}
	return out, nil
}

// prefetch downloads the hit list's pages with bounded concurrency,
// preserving rank order. The first failure cancels the remaining fetches.
func (c *Client) prefetch(ctx context.Context, hits []SearchHit) ([]*corpus.Page, error) {
	pages := make([]*corpus.Page, len(hits))
	if len(hits) == 0 {
		return pages, nil
	}
	workers := c.prefetchWorkers
	if workers > len(hits) {
		workers = len(hits)
	}
	if workers <= 1 {
		for i, h := range hits {
			p, err := c.PageCtx(ctx, h.PageID)
			if err != nil {
				return nil, err
			}
			pages[i] = p
		}
		return pages, nil
	}
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if fctx.Err() != nil {
					continue // another fetch failed; drain without fetching
				}
				p, err := c.PageCtx(fctx, hits[i].PageID)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					cancel()
					continue
				}
				pages[i] = p
			}
		}()
	}
	for i := range hits {
		if fctx.Err() != nil {
			break // one failure fails the whole list; stop dispatching
		}
		work <- i
	}
	close(work)
	wg.Wait()
	if firstErr == nil {
		// The caller's own cancellation leaves skipped (nil) slots with
		// no recorded worker error; returning them as a success would
		// hand nil pages to the session. Surface the cancellation.
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return pages, nil
}

// Page downloads (or returns the cached) page with the given ID.
func (c *Client) Page(id corpus.PageID) (*corpus.Page, error) {
	//l2qvet:ignore ctxbg legacy ctx-less form kept for the public surface; ctx-aware callers use PageCtx
	return c.PageCtx(context.Background(), id)
}

// PageCtx is Page with cancellation. Concurrent fetches of the same page
// (many sessions prefetching overlapping hit lists) coalesce onto a single
// download: followers wait for the leader's result instead of re-paying
// the transfer. A follower whose own context is canceled while waiting
// returns its context error; a leader failure is shared with the waiters
// and the flight slot is released, so the next caller retries fresh.
//
// One failure is deliberately NOT shared: a leader that died of its own
// context's cancellation. The flight runs under the leader's context, so
// without this carve-out one query's mid-prefetch abort would poison
// every concurrent query waiting on a shared page with a spurious
// context.Canceled. A live-context waiter loops and fetches again
// (typically becoming the next leader). The signal is the leader's
// context state at completion — not the error's identity, which would
// also match a terminal failure built from per-request HTTP timeouts and
// make K waiters serially re-pay a dead server's full retry budget.
func (c *Client) PageCtx(ctx context.Context, id corpus.PageID) (*corpus.Page, error) {
	for {
		c.mu.RLock()
		p, ok := c.pageCache[id]
		c.mu.RUnlock()
		if ok {
			return p, nil
		}
		p, shared, leaderCanceled, err := c.flight.do(ctx, id, func() (*corpus.Page, error) {
			c.met.pageFetches.Add(1)
			pp, err := c.fetchPage(ctx, id)
			if err != nil {
				return nil, err
			}
			c.mu.Lock()
			c.pageCache[id] = pp
			c.mu.Unlock()
			return pp, nil
		})
		if shared {
			c.met.prefetchShared.Add(1)
			if err != nil && leaderCanceled && ctx.Err() == nil {
				continue // the LEADER was canceled, not us — retry fresh
			}
		}
		return p, err
	}
}

// fetchPage downloads and parses one page, retrying transport faults. A
// document whose l2q-page-id meta is missing or disagrees with the
// requested ID is rejected (and retried — the usual cause is a truncated
// transfer): accepting it would let distinct malformed pages alias page 0
// in the session's dedup set.
func (c *Client) fetchPage(ctx context.Context, id corpus.PageID) (*corpus.Page, error) {
	path := html.PageHref(id)
	var p *corpus.Page
	err := c.doRetry(ctx, "page", path, func(b []byte) error {
		if isWireFrame(b) {
			// A page frame carries the identical HTML bytes the JSON
			// (debug) path serves raw, so the parse below is codec-
			// independent — the byte-level parity the wire is held to.
			payload, err := openFrame(b, wirePage)
			if err != nil {
				return err
			}
			b = payload
		}
		parsed := html.ParsePage(string(b), -1, c.tok)
		if parsed.ID != id {
			return fmt.Errorf("document has l2q-page-id %d, want %d (missing or corrupted meta)", parsed.ID, id)
		}
		p = parsed
		return nil
	})
	if err != nil {
		return nil, err
	}
	p.URL = c.base + path
	return p, nil
}

// flightGroup is a minimal singleflight keyed by page ID: one in-flight
// download per page, concurrent requesters share the result.
type flightGroup struct {
	mu sync.Mutex
	m  map[corpus.PageID]*flightCall
}

type flightCall struct {
	done chan struct{}
	p    *corpus.Page
	err  error
	// canceled records whether the leader's OWN context was done when the
	// flight completed — the signal that lets a live-context waiter retry
	// instead of inheriting a cancellation that was never its own.
	canceled bool
}

// do runs fn once per concurrently-requested id; shared is true when this
// caller waited on another caller's flight instead of running fn, and
// leaderCanceled reports whether that flight's leader ended with its own
// context canceled.
func (g *flightGroup) do(ctx context.Context, id corpus.PageID, fn func() (*corpus.Page, error)) (p *corpus.Page, shared, leaderCanceled bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[corpus.PageID]*flightCall)
	}
	if call, ok := g.m[id]; ok {
		g.mu.Unlock()
		select {
		case <-call.done:
			return call.p, true, call.canceled, call.err
		case <-ctx.Done():
			return nil, true, false, ctx.Err()
		}
	}
	call := &flightCall{done: make(chan struct{})}
	g.m[id] = call
	g.mu.Unlock()
	call.p, call.err = fn()
	call.canceled = ctx.Err() != nil
	g.mu.Lock()
	delete(g.m, id)
	g.mu.Unlock()
	close(call.done)
	return call.p, false, false, call.err
}

// collProbs returns the server-identical smoothed collection probability of
// each token, fetching unknown collection frequencies in one batched call.
// A persistent transport failure degrades to zero-frequency smoothing (the
// engine's behavior for unseen terms) rather than failing the caller:
// QueryLikelihood has no error surface, and edge weights only modulate
// rankings. Because QueryLikelihood can run on the selection path (the
// WeightByLikelihood edge weighting) where no caller context exists, the
// whole retried lookup is bounded by one request timeout — a dead server
// costs at most that, not attempts × (timeout + backoff).
func (c *Client) collProbs(tokens []textproc.Token) []float64 {
	var missing []string
	c.mu.RLock()
	for _, t := range tokens {
		if _, ok := c.cfCache[t]; !ok {
			missing = append(missing, t)
		}
	}
	c.mu.RUnlock()
	if len(missing) > 0 {
		q := url.Values{}
		q.Set("tokens", strings.Join(missing, ","))
		var freqs map[string]int
		//l2qvet:ignore ctxbg QueryLikelihood (errorless core.Retriever) can reach here from the selection path where no caller ctx exists; one request timeout bounds the lookup
		ctx, cancel := context.WithTimeout(context.Background(), c.http.Timeout)
		err := c.getNegotiated(ctx, "collfreq", c.api("/collfreq?"+q.Encode()), wireCollFreq,
			func(d *store.Dec) { freqs = decodeCollFreqWire(d) },
			func(b []byte) error {
				var resp struct {
					Freqs map[string]int `json:"freqs"`
				}
				if err := json.Unmarshal(b, &resp); err != nil {
					return err
				}
				freqs = resp.Freqs
				return nil
			})
		cancel()
		if err == nil {
			c.mu.Lock()
			for t, cf := range freqs {
				c.cfCache[t] = cf
			}
			c.mu.Unlock()
		}
	}
	out := make([]float64, len(tokens))
	c.mu.RLock()
	for i, t := range tokens {
		out[i] = search.CollectionProb(c.cfCache[t], c.stats.TotalTokens, c.stats.NumTerms)
	}
	c.mu.RUnlock()
	return out
}

// QueryLikelihood implements core.Retriever with the server's exact
// scoring model, computed locally over the downloaded page.
func (c *Client) QueryLikelihood(p *corpus.Page, query []textproc.Token) float64 {
	toks := p.Tokens()
	tf := make(map[textproc.Token]int, len(query))
	for _, t := range toks {
		tf[t]++
	}
	pcs := c.collProbs(query)
	s := 0.0
	for i, t := range query {
		s += search.DirichletTermScore(tf[t], len(toks), c.stats.Mu, pcs[i])
	}
	return s
}

// ClusterStats fetches a node's registration report: the collection
// statistics of its primary partition plus its view of the cluster
// geometry, which the coordinator cross-checks against its own.
func (c *Client) ClusterStats(ctx context.Context) (NodeStatsPayload, error) {
	var st NodeStatsPayload
	err := c.getNegotiated(ctx, "cluster-stats", c.api("/cluster/stats"), wireNodeStats,
		func(d *store.Dec) { st = decodeNodeStatsWire(d) },
		func(b []byte) error { st = NodeStatsPayload{}; return json.Unmarshal(b, &st) })
	return st, err
}

// PushClusterStats delivers the coordinator's aggregated global model to
// a node. The push is idempotent (re-applying the same model is a no-op),
// so transient faults retry like any GET.
func (c *Client) PushClusterStats(ctx context.Context, g GlobalStatsPayload) error {
	body, err := json.Marshal(g)
	if err != nil {
		return err
	}
	return c.postRetry(ctx, "cluster-stats-push", c.api("/cluster/stats"), body, func(b []byte) error {
		var resp struct {
			OK bool `json:"ok"`
		}
		if err := json.Unmarshal(b, &resp); err != nil {
			return err
		}
		if !resp.OK {
			return fmt.Errorf("node did not acknowledge stats push")
		}
		return nil
	})
}

// ClusterSearch runs a partition-local seeded search on a node — the
// coordinator's scatter target. Unlike SearchWithSeedErr it returns hit
// metadata only (no page downloads): the coordinator merges first and
// fetches only the global top-k.
func (c *Client) ClusterSearch(ctx context.Context, part int, seed, query []textproc.Token, k int) (SearchResponse, error) {
	q := tokenQuery(url.Values{"part": {strconv.Itoa(part)}}, seed, query)
	if k > 0 {
		q.Set("k", strconv.Itoa(k))
	}
	var resp SearchResponse
	err := c.getNegotiated(ctx, "cluster-search", c.api("/cluster/search?"+q.Encode()), wireSearch,
		func(d *store.Dec) { resp = decodeSearchWire(d) },
		func(b []byte) error { resp = SearchResponse{}; return json.Unmarshal(b, &resp) })
	return resp, err
}

// postRetry issues POST path with a JSON body until decode succeeds or
// the retry policy is exhausted. Only safe for idempotent operations —
// every caller must be able to tolerate a duplicate delivery, since a
// response lost on the wire retries a request the server already applied.
func (c *Client) postRetry(ctx context.Context, op, path string, body []byte, decode func([]byte) error) error {
	return c.postRetryCT(ctx, op, path, body, "application/json", false, decode)
}

// postRetryCT is postRetry with an explicit request content type and
// codec negotiation (Accept: wire) — the write-path twin of getNegotiated.
func (c *Client) postRetryCT(ctx context.Context, op, path string, body []byte, contentType string, acceptWire bool, decode func([]byte) error) error {
	if err := ctx.Err(); err != nil {
		return &TransportError{Op: op, Path: path, Err: err}
	}
	var lastErr error
	attempts := 0
	for attempt := 1; attempt <= c.retry.MaxAttempts; attempt++ {
		attempts = attempt
		if attempt > 1 {
			c.met.retries.Add(1)
		}
		b, err := c.postOnce(ctx, path, body, contentType, acceptWire)
		if err == nil {
			err = decode(b)
		}
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable(ctx, err) || attempt == c.retry.MaxAttempts {
			break
		}
		if err := c.retry.sleep(ctx, attempt); err != nil {
			lastErr = err
			break
		}
	}
	if ctx.Err() == nil {
		c.met.errors.Add(1)
	}
	status := 0
	code := ""
	var se *statusError
	if errors.As(lastErr, &se) {
		status = se.status
		code = se.code
	}
	return &TransportError{Op: op, Path: path, Attempts: attempts, Status: status, Code: code, Err: lastErr}
}

// postOnce issues a single POST (a fresh body reader per attempt —
// retries must never replay a half-consumed reader) and reads the full
// response. acceptWire asks the server to answer in the binary codec;
// the caller sniffs the response body for the frame magic.
func (c *Client) postOnce(ctx context.Context, path string, body []byte, contentType string, acceptWire bool) ([]byte, error) {
	c.met.requests.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	if acceptWire {
		req.Header.Set("Accept", wireContentType)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readError(resp)
	}
	b, readErr := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if readErr != nil {
		return nil, readErr
	}
	return b, nil
}

// Ingest posts a batch of pages to a live server's write path. Safe to
// retry: the server skips pages it already holds (reported back in
// Duplicates), so a duplicate delivery after a lost ack never
// double-counts collection statistics. The batch travels as one
// wireIngest frame when the dial probe negotiated the binary codec, as
// JSON otherwise; the ack is sniffed per the mixed-version rule.
func (c *Client) Ingest(ctx context.Context, req IngestRequest) (IngestResponse, error) {
	var body []byte
	contentType := "application/json"
	wire := c.wantWire() && c.wire
	if wire {
		body = marshalFrame(wireIngest, DefaultCompressMin, func(e *store.Enc) { encodeIngestWire(e, req) })
		contentType = wireContentType
	} else {
		var err error
		if body, err = json.Marshal(req); err != nil {
			return IngestResponse{}, err
		}
	}
	var out IngestResponse
	err := c.postRetryCT(ctx, "ingest", c.api("/ingest"), body, contentType, wire, func(b []byte) error {
		if isWireFrame(b) {
			return decodeFramePayload(b, wireIngest, func(d *store.Dec) { out = decodeIngestAckWire(d) })
		}
		out = IngestResponse{}
		return json.Unmarshal(b, &out)
	})
	return out, err
}

// Entities lists the server's harvest targets. The caller's context
// bounds the (retried) request.
func (c *Client) Entities(ctx context.Context) ([]EntityInfo, error) {
	var out []EntityInfo
	err := c.getNegotiated(ctx, "entities", c.api("/entities"), wireEntities,
		func(d *store.Dec) { out = decodeEntitiesWire(d) },
		func(b []byte) error { out = nil; return json.Unmarshal(b, &out) })
	if err != nil {
		return nil, err
	}
	return out, nil
}
