package webapi

// The live serving surface's parity and contract tests: a server grown
// through POST /api/v1/ingest must rank byte-identically to a frozen
// server rebuilt from the same pages — across segment boundaries, both
// codecs, and retried (duplicate) deliveries.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"l2q/internal/corpus"
	"l2q/internal/search"
	"l2q/internal/store"
	"l2q/internal/synth"
)

// liveFixture is a live server bootstrapped from a PREFIX of the
// synthetic corpus; the remainder is the ingest feed.
type liveFixture struct {
	g    *synth.Generated
	boot *corpus.Corpus
	live *search.LiveEngine
	srv  *httptest.Server
	rest []*corpus.Page // pages not yet ingested, in canonical order
}

func newLiveFixture(t *testing.T, bootFrac float64) *liveFixture {
	t.Helper()
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	all := g.Corpus.Pages
	n := int(float64(len(all)) * bootFrac)
	boot := corpus.New(g.Corpus.Domain)
	for _, p := range all[:n] {
		if boot.Entity(p.Entity) == nil {
			if err := boot.AddEntity(g.Corpus.Entity(p.Entity)); err != nil {
				t.Fatal(err)
			}
		}
		if err := boot.AddPage(p); err != nil {
			t.Fatal(err)
		}
	}
	// A small memtable forces several segment seals over the ingest feed,
	// so parity is checked across real segment boundaries.
	live := search.NewLiveEngine(boot.Pages, search.Options{}, search.LiveOptions{MemtableDocs: 16})
	srv := httptest.NewServer(NewLiveServer(boot, live, g.Tokenizer).Handler())
	t.Cleanup(srv.Close)
	return &liveFixture{g: g, boot: boot, live: live, srv: srv, rest: all[n:]}
}

// ingestPage converts a corpus page to its wire form. Only TEXT travels:
// the server re-tokenizes with the corpus tokenizer, which is exactly
// what the parity tests verify.
func ingestPage(g *synth.Generated, p *corpus.Page) IngestPage {
	e := g.Corpus.Entity(p.Entity)
	ip := IngestPage{
		ID:         p.ID,
		Entity:     p.Entity,
		EntityName: e.Name,
		SeedQuery:  e.SeedQuery,
		URL:        p.URL,
		Title:      p.Title,
		Links:      p.Links,
	}
	for i := range p.Paras {
		ip.Paras = append(ip.Paras, IngestParagraph{Text: p.Paras[i].Text, Aspect: string(p.Paras[i].Aspect)})
	}
	return ip
}

// TestIngestGrownMatchesRebuilt is the headline parity test through the
// HTTP boundary: grow a live server page by page over the API (in both
// codecs), then hold every entity's seeded search to the exact ranking
// of a frozen engine rebuilt from scratch over the full corpus.
func TestIngestGrownMatchesRebuilt(t *testing.T) {
	for _, codec := range []Codec{CodecJSON, CodecAuto} {
		t.Run(codecName(codec), func(t *testing.T) {
			f := newLiveFixture(t, 0.4)
			c, err := DialOpts(f.srv.URL, f.g.Tokenizer, ClientOptions{Codec: codec})
			if err != nil {
				t.Fatal(err)
			}
			if codec == CodecAuto && !c.WireNegotiated() {
				t.Fatal("dial probe did not negotiate the wire codec")
			}
			ctx := context.Background()
			// Uneven batch sizes so ingest batches straddle memtable seals.
			for i := 0; i < len(f.rest); {
				n := 7 + i%11
				if i+n > len(f.rest) {
					n = len(f.rest) - i
				}
				req := IngestRequest{}
				for _, p := range f.rest[i : i+n] {
					req.Pages = append(req.Pages, ingestPage(f.g, p))
				}
				resp, err := c.Ingest(ctx, req)
				if err != nil {
					t.Fatal(err)
				}
				if resp.Ingested != n || resp.Duplicates != 0 {
					t.Fatalf("batch at %d: ingested %d dup %d, want %d/0", i, resp.Ingested, resp.Duplicates, n)
				}
				i += n
			}
			f.live.Quiesce()

			frozen := search.NewEngine(search.BuildIndex(f.g.Corpus.Pages))
			if got, want := f.live.NumDocs(), frozen.Index().NumDocs(); got != want {
				t.Fatalf("live has %d docs, rebuild has %d", got, want)
			}
			for _, e := range f.g.Corpus.Entities {
				seed := e.SeedTokens()
				for _, q := range [][]string{{"research"}, {"research", "award"}, nil} {
					want := frozen.SearchWithSeed(seed, q)
					got, err := c.SearchWithSeedErr(ctx, seed, q)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("entity %d query %v: grown %d hits, rebuilt %d", e.ID, q, len(got), len(want))
					}
					for i := range want {
						if got[i].Page.ID != want[i].Page.ID {
							t.Fatalf("entity %d query %v rank %d: grown page %d, rebuilt %d",
								e.ID, q, i, got[i].Page.ID, want[i].Page.ID)
						}
						if d := got[i].Score - want[i].Score; d > 1e-12 || d < -1e-12 {
							t.Fatalf("entity %d query %v rank %d: score drift %v", e.ID, q, i, d)
						}
					}
				}
			}
		})
	}
}

// TestIngestDuplicateDelivery: re-delivering a batch (the client retry
// path after a lost ack) is acknowledged as duplicates and changes no
// collection statistic.
func TestIngestDuplicateDelivery(t *testing.T) {
	f := newLiveFixture(t, 0.5)
	c, err := DialOpts(f.srv.URL, f.g.Tokenizer, ClientOptions{Codec: CodecJSON})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := IngestRequest{}
	for _, p := range f.rest[:5] {
		req.Pages = append(req.Pages, ingestPage(f.g, p))
	}
	first, err := c.Ingest(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Ingested != 5 || first.Duplicates != 0 {
		t.Fatalf("first delivery: %+v", first)
	}
	again, err := c.Ingest(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if again.Ingested != 0 || again.Duplicates != 5 {
		t.Fatalf("duplicate delivery: %+v", again)
	}
	if again.NumDocs != first.NumDocs {
		t.Fatalf("duplicate delivery moved numDocs %d → %d", first.NumDocs, again.NumDocs)
	}
	// A mixed batch applies the new page and skips the rest.
	req.Pages = append(req.Pages, ingestPage(f.g, f.rest[5]))
	mixed, err := c.Ingest(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if mixed.Ingested != 1 || mixed.Duplicates != 5 {
		t.Fatalf("mixed delivery: %+v", mixed)
	}
}

// TestIngestRejectsBadBatches: contract errors reject the whole batch
// before any mutation, and a frozen server refuses the route outright.
func TestIngestRejectsBadBatches(t *testing.T) {
	f := newLiveFixture(t, 0.5)
	c, err := DialOpts(f.srv.URL, f.g.Tokenizer, ClientOptions{Codec: CodecJSON})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	docsBefore := f.live.NumDocs()

	bad := IngestRequest{Pages: []IngestPage{
		ingestPage(f.g, f.rest[0]),
		{ID: 999999, Entity: 999999, Paras: []IngestParagraph{{Text: "orphan text"}}},
	}}
	_, err = c.Ingest(ctx, bad)
	if !isStatus(err, http.StatusBadRequest) {
		t.Fatalf("unknown-entity batch: got %v, want 400", err)
	}
	if f.live.NumDocs() != docsBefore {
		t.Fatal("rejected batch mutated the engine")
	}

	if _, err := c.Ingest(ctx, IngestRequest{}); !isStatus(err, http.StatusBadRequest) {
		t.Fatalf("empty batch: got %v, want 400", err)
	}
	noParas := IngestRequest{Pages: []IngestPage{{ID: 999998, Entity: f.rest[0].Entity}}}
	if _, err := c.Ingest(ctx, noParas); !isStatus(err, http.StatusBadRequest) {
		t.Fatalf("empty page: got %v, want 400", err)
	}

	// The frozen fixture's server has no live engine: 501, non-retryable.
	frozen := newFixture(t)
	_, err = frozen.client.Ingest(ctx, IngestRequest{Pages: []IngestPage{ingestPage(f.g, f.rest[0])}})
	if !isStatus(err, http.StatusNotImplemented) {
		t.Fatalf("frozen server: got %v, want 501", err)
	}
}

// TestIngestRegistersEntities: pages of an unseen entity auto-register
// it, and it appears on /api/v1/entities with the supplied identity.
func TestIngestRegistersEntities(t *testing.T) {
	f := newLiveFixture(t, 0.3)
	c, err := DialOpts(f.srv.URL, f.g.Tokenizer, ClientOptions{Codec: CodecJSON})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := IngestRequest{}
	for _, p := range f.rest {
		req.Pages = append(req.Pages, ingestPage(f.g, p))
	}
	if _, err := c.Ingest(ctx, req); err != nil {
		t.Fatal(err)
	}
	ents, err := c.Entities(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != f.g.Corpus.NumEntities() {
		t.Fatalf("got %d entities, want %d", len(ents), f.g.Corpus.NumEntities())
	}
	for _, ei := range ents {
		e := f.g.Corpus.Entity(ei.ID)
		if e == nil || e.Name != ei.Name || e.SeedQuery != ei.SeedQuery {
			t.Fatalf("entity %d identity drifted: %+v", ei.ID, ei)
		}
	}
	// A new entity's registration info need only appear on ONE page of
	// the batch: later pages reference the ID bare (the natural client
	// shape — send the identity once, then just pages).
	once := IngestRequest{Pages: []IngestPage{
		{ID: 800001, Entity: 8001, EntityName: "Once Registered", SeedQuery: "once registered",
			Paras: []IngestParagraph{{Text: "first page registers"}}},
		{ID: 800002, Entity: 8001, Paras: []IngestParagraph{{Text: "second page references"}}},
		{ID: 800003, Entity: 8001, Paras: []IngestParagraph{{Text: "third page references"}}},
	}}
	or, err := c.Ingest(ctx, once)
	if err != nil {
		t.Fatalf("single-registration batch rejected: %v", err)
	}
	if or.Ingested != 3 {
		t.Fatalf("single-registration batch: %+v", or)
	}
	// But info arriving only AFTER the first bare reference stays a
	// whole-batch contract error.
	late := IngestRequest{Pages: []IngestPage{
		{ID: 800004, Entity: 8002, Paras: []IngestParagraph{{Text: "bare reference"}}},
		{ID: 800005, Entity: 8002, EntityName: "Too Late", Paras: []IngestParagraph{{Text: "info"}}},
	}}
	if _, err := c.Ingest(ctx, late); !isStatus(err, http.StatusBadRequest) {
		t.Fatalf("late-registration batch: got %v, want 400", err)
	}

	// Stats and metrics reflect the growth (corpus + the 3 extra pages).
	wantPages := f.g.Corpus.NumPages() + 3
	sresp, err := http.Get(f.srv.URL + "/api/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	err = json.NewDecoder(sresp.Body).Decode(&st)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.NumPages != wantPages {
		t.Fatalf("stats numPages %d, want %d", st.NumPages, wantPages)
	}
	resp, err := http.Get(f.srv.URL + "/api/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m ServerMetrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Live == nil || m.Live.NumDocs != wantPages || m.Live.Segments < 1 {
		t.Fatalf("live metrics missing or stale: %+v", m.Live)
	}
}

// codecName labels a subtest per negotiation mode.
func codecName(c Codec) string {
	switch c {
	case CodecJSON:
		return "json"
	case CodecBinary:
		return "binary"
	default:
		return "auto"
	}
}

// TestIngestWireRoundTrip holds the binary ingest codecs to decoded-value
// parity with the JSON structures, including the degenerate shapes the
// negotiation-matrix rule calls out (nil slices stay nil).
func TestIngestWireRoundTrip(t *testing.T) {
	req := IngestRequest{Pages: []IngestPage{
		{
			ID: 7, Entity: 3, EntityName: "Ada Lovelace", SeedQuery: "ada lovelace analytical",
			URL: "http://example.test/7", Title: "Notes",
			Paras: []IngestParagraph{{Text: "first program", Aspect: "RESEARCH"}, {Text: "filler"}},
			Links: []corpus.PageID{1, 9, 4},
		},
		{ID: 8, Entity: 3, Paras: []IngestParagraph{{Text: strings.Repeat("long text ", 400)}}},
	}}
	frame := marshalFrame(wireIngest, DefaultCompressMin, func(e *store.Enc) { encodeIngestWire(e, req) })
	var got IngestRequest
	if err := decodeFramePayload(frame, wireIngest, func(d *store.Dec) { got = decodeIngestWire(d) }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Errorf("ingest round trip: got %+v want %+v", got, req)
	}

	ack := IngestResponse{Ingested: 2, Duplicates: 1, NumDocs: 42, Epoch: 9, Segments: 3}
	aframe := marshalFrame(wireIngest, 0, func(e *store.Enc) { encodeIngestAckWire(e, ack) })
	var gotAck IngestResponse
	if err := decodeFramePayload(aframe, wireIngest, func(d *store.Dec) { gotAck = decodeIngestAckWire(d) }); err != nil {
		t.Fatal(err)
	}
	if gotAck != ack {
		t.Errorf("ack round trip: got %+v want %+v", gotAck, ack)
	}
}
