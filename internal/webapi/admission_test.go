package webapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"l2q/internal/search"
	"l2q/internal/synth"
)

func admissionFixture(t *testing.T, maxInFlight int) (*Server, *httptest.Server) {
	t.Helper()
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	server := NewServer(g.Corpus, search.NewEngine(search.BuildIndex(g.Corpus.Pages)))
	server.MaxInFlight = maxInFlight
	srv := httptest.NewServer(server.Handler())
	t.Cleanup(srv.Close)
	return server, srv
}

// TestMaxInFlightShedEnvelope pins the admission-control contract: a
// request arriving past the MaxInFlight bound is answered immediately
// with 429 and the retryable "throttled" error envelope, /healthz stays
// exempt, the Shed counter advances, and once the slot frees the same
// request succeeds. The slot is held directly (in-package) so the test
// is deterministic rather than a timing race.
func TestMaxInFlightShedEnvelope(t *testing.T) {
	server, srv := admissionFixture(t, 1)

	sem := server.inflightSem()
	if sem == nil || cap(sem) != 1 {
		t.Fatalf("inflight semaphore = %v, want capacity 1", sem)
	}
	sem <- struct{}{} // saturate: one request permanently in flight

	resp, err := http.Get(srv.URL + "/api/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d, want 429", resp.StatusCode)
	}
	var env struct {
		Error struct {
			Code      string `json:"code"`
			Message   string `json:"message"`
			Retryable bool   `json:"retryable"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("shed body is not the error envelope: %v", err)
	}
	if env.Error.Code != "throttled" || !env.Error.Retryable || env.Error.Message == "" {
		t.Fatalf("shed envelope = %+v, want retryable code throttled", env.Error)
	}
	if server.Shed() == 0 {
		t.Fatal("Shed counter did not advance")
	}

	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while saturated: status %d, want 200 (probes must see an overloaded server as alive)", hz.StatusCode)
	}

	<-sem // free the slot
	ok, err := http.Get(srv.URL + "/api/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("after drain: status %d, want 200", ok.StatusCode)
	}
}

// TestMaxInFlightOffByDefault: with MaxInFlight unset there is no
// admission semaphore and concurrent traffic is never shed.
func TestMaxInFlightOffByDefault(t *testing.T) {
	server, srv := admissionFixture(t, 0)
	if server.inflightSem() != nil {
		t.Fatal("inflight semaphore exists with MaxInFlight = 0")
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/api/v1/stats")
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	if server.Shed() != 0 {
		t.Fatalf("Shed = %d with admission control off", server.Shed())
	}
}

// TestMetricsRuntimeGauges verifies GET /api/v1/metrics reports live
// runtime health: non-zero heap and goroutine gauges, cumulative
// allocation counters that advance between scrapes, and the echoed
// MaxInFlight bound.
func TestMetricsRuntimeGauges(t *testing.T) {
	_, srv := admissionFixture(t, 7)
	scrape := func() ServerMetrics {
		t.Helper()
		resp, err := http.Get(srv.URL + "/api/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m ServerMetrics
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1 := scrape()
	if m1.MaxInFlight != 7 {
		t.Fatalf("MaxInFlight = %d, want 7", m1.MaxInFlight)
	}
	if m1.Runtime.HeapInuseBytes == 0 {
		t.Fatal("HeapInuseBytes = 0")
	}
	if m1.Runtime.Goroutines <= 0 {
		t.Fatalf("Goroutines = %d", m1.Runtime.Goroutines)
	}
	if m1.Runtime.AllocObjects == 0 || m1.Runtime.AllocBytes == 0 {
		t.Fatalf("cumulative allocation counters empty: %+v", m1.Runtime)
	}
	// Any request allocates something server-side; the deltas a load
	// driver computes must therefore be positive and monotone.
	for i := 0; i < 50; i++ {
		resp, err := http.Get(srv.URL + "/api/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	m2 := scrape()
	if m2.Runtime.AllocObjects <= m1.Runtime.AllocObjects {
		t.Fatalf("AllocObjects not monotone: %d then %d", m1.Runtime.AllocObjects, m2.Runtime.AllocObjects)
	}
	if m2.Requests <= m1.Requests {
		t.Fatalf("Requests not advancing: %d then %d", m1.Requests, m2.Requests)
	}
}
