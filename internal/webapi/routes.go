package webapi

// The versioned serving surface. Every route the server exposes is
// declared exactly once, in the registry below: method, canonical
// /api/v1 path, the pre-v1 alias kept for one release, the binary frame
// kind the route can negotiate, and whether the request is a long-lived
// event stream. Handler() mounts the registry; instrument() applies each
// route's declared behavior (write deadline, Vary header) so no handler
// or middleware has to pattern-match paths to know how to treat a
// request — the previous hand-rolled wiring spread across server.go,
// harvest.go and jobs.go.
//
// Codec negotiation is per request: a client that sends
// Accept: application/x-l2q-wire on a wire-capable route receives one
// L2QWIR1 frame (or a frame sequence, on streams); everyone else gets
// JSON, which stays the default and the debug path. Errors are ALWAYS
// the JSON envelope below, on every route and both codecs, so one error
// decoder serves the whole API.

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"l2q/internal/store"
)

// apiRoute is one row of the serving surface's route registry.
type apiRoute struct {
	method string
	// path is the canonical versioned pattern (/api/v1/...) or a bare
	// non-API path (/healthz, /page/{id}).
	path string
	// legacy is the pre-v1 alias, served identically for one release
	// ("" = the route was never under /api).
	legacy string
	// wire is the binary frame kind this route can negotiate
	// (0 = the route is JSON-only).
	wire byte
	// stream reports whether this request is a long-lived event stream,
	// exempt from the static write deadline (streams roll their own
	// deadline per event). nil = never streams.
	stream func(*http.Request) bool
	h      http.HandlerFunc
}

// routes is the one registry of the serving surface.
func (s *Server) routes() []apiRoute {
	always := func(*http.Request) bool { return true }
	streamParam := func(r *http.Request) bool { return r.URL.Query().Get("stream") != "" }
	return []apiRoute{
		{method: "GET", path: "/healthz", h: s.handleHealthz},
		{method: "GET", path: "/api/v1/stats", legacy: "/api/stats", wire: wireStats, h: s.handleStats},
		{method: "GET", path: "/api/v1/search", legacy: "/api/search", wire: wireSearch, h: s.handleSearch},
		{method: "GET", path: "/api/v1/collfreq", legacy: "/api/collfreq", wire: wireCollFreq, h: s.handleCollFreq},
		{method: "GET", path: "/api/v1/entities", legacy: "/api/entities", wire: wireEntities, h: s.handleEntities},
		{method: "GET", path: "/api/v1/metrics", legacy: "/api/metrics", h: s.handleMetrics},
		{method: "GET", path: "/api/v1/cluster/search", wire: wireSearch, h: s.handleClusterSearch},
		{method: "GET", path: "/api/v1/cluster/stats", wire: wireNodeStats, h: s.handleClusterStats},
		{method: "POST", path: "/api/v1/cluster/stats", h: s.handleClusterStats},
		{method: "POST", path: "/api/v1/ingest", wire: wireIngest, h: s.handleIngest},
		{method: "POST", path: "/api/v1/harvest", legacy: "/api/harvest", wire: wireEvent, stream: always, h: s.handleHarvest},
		{method: "POST", path: "/api/v1/jobs", legacy: "/api/jobs", h: s.handleJobSubmit},
		{method: "GET", path: "/api/v1/jobs/{id}", legacy: "/api/jobs/{id}", wire: wireEvent, stream: streamParam, h: s.handleJobGet},
		{method: "DELETE", path: "/api/v1/jobs/{id}", legacy: "/api/jobs/{id}", h: s.handleJobDelete},
		{method: "GET", path: "/page/{id}", wire: wirePage, h: s.handlePage},
	}
}

// Handler returns the routed http.Handler (useful for httptest or custom
// servers). Safe to call from concurrent goroutines.
func (s *Server) Handler() http.Handler {
	s.semaphore()
	mux := http.NewServeMux()
	for _, rt := range s.routes() {
		h := s.instrument(rt)
		mux.Handle(rt.method+" "+rt.path, h)
		if rt.legacy != "" {
			mux.Handle(rt.method+" "+rt.legacy, h)
		}
	}
	return s.limit(mux)
}

// instrument wraps one route's handler with its registry-declared
// behavior: the static write deadline on non-streaming requests (a
// slow-reading client must not pin a handler and its semaphore slot
// forever; streams roll their own deadline per event) and a Vary header
// on codec-negotiated routes (two representations of one resource —
// caches must key on the negotiation header). Deadline errors are
// best-effort: not every ResponseWriter supports them (httptest
// recorders).
func (s *Server) instrument(rt apiRoute) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if rt.wire != 0 {
			w.Header().Add("Vary", "Accept")
		}
		if rt.stream == nil || !rt.stream(r) {
			_ = http.NewResponseController(w).SetWriteDeadline(time.Now().Add(writeTimeout))
		}
		rt.h(w, r)
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

// wantsWire reports whether the request negotiated the binary codec.
func (s *Server) wantsWire(r *http.Request) bool {
	if s.WireDisabled {
		return false
	}
	return strings.Contains(r.Header.Get("Accept"), wireContentType)
}

// compressMin resolves the server's gzip threshold: CompressMin bytes,
// DefaultCompressMin when unset, never when negative.
func (s *Server) compressMin() int {
	switch {
	case s.CompressMin < 0:
		return 0
	case s.CompressMin == 0:
		return DefaultCompressMin
	default:
		return s.CompressMin
	}
}

// respond writes one payload in the negotiated codec: a single wire
// frame of the given kind, or jsonV as JSON (the default).
func (s *Server) respond(w http.ResponseWriter, r *http.Request, kind byte, encode func(*store.Enc), jsonV any) {
	if !s.wantsWire(r) {
		writeJSON(w, jsonV)
		return
	}
	frame := marshalFrame(kind, s.compressMin(), encode)
	w.Header().Set("Content-Type", wireContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
	_, _ = w.Write(frame)
}

// apiError is the error payload inside the envelope.
type apiError struct {
	// Code is a stable machine-readable discriminator.
	Code string `json:"code"`
	// Message is the human-readable failure description.
	Message string `json:"message"`
	// Retryable is the server's hint: true when re-issuing the identical
	// request may succeed (overload, transient internal failure).
	Retryable bool `json:"retryable"`
}

// errorEnvelope is the ONE error shape every handler emits:
// {"error":{"code","message","retryable"}}. Clients decode it into
// *TransportError; the retryable hint feeds the client's retry loop.
type errorEnvelope struct {
	Error apiError `json:"error"`
}

// errorCode maps an HTTP status to its envelope code.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusNotImplemented:
		return "not_implemented"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusTooManyRequests:
		return "throttled"
	default:
		if status >= 500 {
			return "internal"
		}
		return "error"
	}
}

// statusRetryable is the server's retryability rule: overload and
// transient server-side failures are worth re-issuing; contract errors
// (4xx) and permanently absent capabilities (501) are not.
func statusRetryable(status int) bool {
	return status == http.StatusTooManyRequests ||
		(status >= 500 && status != http.StatusNotImplemented)
}

// writeError emits the API's unified JSON error envelope. Errors are
// never framed, even on wire-negotiated requests: a client must be able
// to decode a failure before (or without) speaking the binary codec.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorEnvelope{Error: apiError{
		Code:      errorCode(status),
		Message:   msg,
		Retryable: statusRetryable(status),
	}})
}
