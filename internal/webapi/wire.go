package webapi

// The binary wire protocol: a length-prefixed, CRC-framed encoding for
// the serving boundary's hot payloads — search hits, page bodies,
// collection-frequency batches, and harvest/job event streams. It extends
// the framed-CRC idiom of the durable store artifacts (L2QSTOR1,
// L2QCKPT1, L2QDOM1) to the live wire, reusing the store package's
// exported payload primitives (store.Enc/store.Dec).
//
// Frame layout (one frame per response; streams are frame sequences):
//
//	magic "L2QWIR1" (7 bytes)
//	kind  byte   — payload type (wireStats, wireSearch, ...)
//	flags byte   — bit 0: payload is gzip-compressed
//	payloadLen uvarint — length of the on-wire payload (post-compression)
//	crc32 (4B LE)      — IEEE CRC of the on-wire payload
//	payload
//
// The CRC covers the bytes as transferred, so integrity is verified
// before inflating. Negotiation is per request: a client that sends
// Accept: application/x-l2q-wire gets frames; everyone else gets the
// JSON (or raw-HTML, for pages) debug path, which stays the default.
// Because every frame self-identifies with the magic, a client can also
// sniff the response body: a server that ignored the Accept header (an
// older release, a plain proxy error) is detected and decoded as JSON —
// the clean mixed-version fallback.
//
// Encode buffers and gzip coders are pooled: a busy server frames every
// hot response without per-request allocations beyond the frame itself.

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"

	"l2q/internal/corpus"
	"l2q/internal/store"
)

// wireMagic identifies a wire frame and its major version.
const wireMagic = "L2QWIR1"

// wireContentType is the negotiated media type of framed responses.
const wireContentType = "application/x-l2q-wire"

// WireContentType is the media type a client sends in Accept (and a
// server answers in Content-Type) to negotiate the binary wire codec.
// Exported for flag help text and for non-Go clients of the API.
const WireContentType = wireContentType

// Frame payload kinds.
const (
	wireStats     byte = 1
	wireSearch    byte = 2
	wirePage      byte = 3
	wireCollFreq  byte = 4
	wireEntities  byte = 5
	wireEvent     byte = 6
	wireNodeStats byte = 7
	wireIngest    byte = 8
)

// Frame flags.
const wireFlagGzip byte = 1

// DefaultCompressMin is the default gzip threshold: page payloads at
// least this large are compressed inside their frame. Small payloads
// skip compression — the gzip header plus CPU costs more than it saves.
const DefaultCompressMin = 1 << 10

// encPool recycles payload encoders across requests.
var encPool = sync.Pool{New: func() any { return new(store.Enc) }}

// gzipWPool recycles gzip writers (Reset re-arms them).
var gzipWPool = sync.Pool{New: func() any { return gzip.NewWriter(io.Discard) }}

// gzipRPool recycles gzip readers.
var gzipRPool sync.Pool

// marshalFrame encodes one payload with encode and wraps it in a wire
// frame. compressMin > 0 gzips payloads at least that large (and keeps
// the compressed form only when it is actually smaller).
func marshalFrame(kind byte, compressMin int, encode func(*store.Enc)) []byte {
	e := encPool.Get().(*store.Enc)
	e.Reset()
	encode(e)
	payload := e.Data()
	flags := byte(0)
	var zbuf bytes.Buffer
	if compressMin > 0 && len(payload) >= compressMin {
		zw := gzipWPool.Get().(*gzip.Writer)
		zw.Reset(&zbuf)
		zw.Write(payload) //nolint:errcheck // bytes.Buffer cannot fail
		_ = zw.Close()
		gzipWPool.Put(zw)
		if zbuf.Len() < len(payload) {
			payload = zbuf.Bytes()
			flags |= wireFlagGzip
		}
	}
	out := make([]byte, 0, len(wireMagic)+2+binary.MaxVarintLen64+4+len(payload))
	out = append(out, wireMagic...)
	out = append(out, kind, flags)
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	out = append(out, payload...)
	encPool.Put(e)
	return out
}

// isWireFrame sniffs a response body for the frame magic — how a client
// that asked for binary discovers whether the server actually spoke it.
func isWireFrame(b []byte) bool {
	return len(b) >= len(wireMagic) && string(b[:len(wireMagic)]) == wireMagic
}

// openFrame verifies and unwraps a single-frame body: magic, kind, CRC,
// exact length (no trailing bytes), then inflation if flagged. The
// returned payload is safe to retain.
func openFrame(b []byte, wantKind byte) ([]byte, error) {
	if !isWireFrame(b) {
		return nil, fmt.Errorf("wire: missing frame magic")
	}
	rest := b[len(wireMagic):]
	if len(rest) < 2 {
		return nil, fmt.Errorf("wire: truncated frame header")
	}
	kind, flags := rest[0], rest[1]
	rest = rest[2:]
	size, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, fmt.Errorf("wire: bad payload length")
	}
	rest = rest[n:]
	if len(rest) < 4 {
		return nil, fmt.Errorf("wire: truncated frame crc")
	}
	wantCRC := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	if uint64(len(rest)) != size {
		return nil, fmt.Errorf("wire: frame declares %d payload bytes, has %d", size, len(rest))
	}
	if kind != wantKind {
		return nil, fmt.Errorf("wire: frame kind %d, want %d", kind, wantKind)
	}
	return checkAndInflate(rest, flags, wantCRC)
}

// checkAndInflate verifies the on-wire CRC and undoes compression.
func checkAndInflate(payload []byte, flags byte, wantCRC uint32) ([]byte, error) {
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("wire: frame checksum mismatch (got %08x, want %08x)", got, wantCRC)
	}
	if flags&wireFlagGzip == 0 {
		return payload, nil
	}
	var zr *gzip.Reader
	if v := gzipRPool.Get(); v != nil {
		zr = v.(*gzip.Reader)
		if err := zr.Reset(bytes.NewReader(payload)); err != nil {
			return nil, fmt.Errorf("wire: gzip: %w", err)
		}
	} else {
		var err error
		if zr, err = gzip.NewReader(bytes.NewReader(payload)); err != nil {
			return nil, fmt.Errorf("wire: gzip: %w", err)
		}
	}
	out, err := io.ReadAll(io.LimitReader(zr, maxResponseBytes))
	closeErr := zr.Close()
	gzipRPool.Put(zr)
	if err == nil {
		err = closeErr
	}
	if err != nil {
		return nil, fmt.Errorf("wire: gunzip: %w", err)
	}
	return out, nil
}

// frameReader consumes a stream of frames (the binary harvest/job event
// streams). Unlike NDJSON — where a severed connection just looks like
// the last line — a truncated frame is a detected error, not a silent
// early end of stream.
type frameReader struct {
	br *bufio.Reader
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{br: bufio.NewReaderSize(r, 64<<10)}
}

// next reads one frame of the given kind. A clean end of stream returns
// io.EOF; a stream severed mid-frame returns an unexpected-EOF error.
func (fr *frameReader) next(wantKind byte) ([]byte, error) {
	head := make([]byte, len(wireMagic)+2)
	if _, err := io.ReadFull(fr.br, head); err != nil {
		if err == io.EOF {
			return nil, io.EOF // clean boundary: no partial frame
		}
		return nil, fmt.Errorf("wire: stream truncated mid-header: %w", err)
	}
	if string(head[:len(wireMagic)]) != wireMagic {
		return nil, fmt.Errorf("wire: bad stream frame magic %q", head[:len(wireMagic)])
	}
	kind, flags := head[len(wireMagic)], head[len(wireMagic)+1]
	size, err := binary.ReadUvarint(fr.br)
	if err != nil {
		return nil, fmt.Errorf("wire: stream truncated reading length: %w", err)
	}
	if size > maxResponseBytes {
		return nil, fmt.Errorf("wire: implausible stream frame size %d", size)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(fr.br, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("wire: stream truncated reading crc: %w", err)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(fr.br, payload); err != nil {
		return nil, fmt.Errorf("wire: stream truncated mid-payload: %w", err)
	}
	if kind != wantKind {
		return nil, fmt.Errorf("wire: stream frame kind %d, want %d", kind, wantKind)
	}
	return checkAndInflate(payload, flags, binary.LittleEndian.Uint32(crcBuf[:]))
}

// ---- payload codecs ----
//
// Every hot payload has a binary encode/decode pair held to decoded-value
// parity with the JSON path by the negotiation-matrix and differential
// tests. Zero-length slices decode as nil, matching encoding/json's
// omitempty round-trip, so reflect.DeepEqual parity holds across codecs.

func encodeStatsWire(e *store.Enc, st Stats) {
	e.Str(st.Domain)
	e.Varint(int64(st.NumEntities))
	e.Varint(int64(st.NumPages))
	e.Varint(int64(st.NumTerms))
	e.Varint(int64(st.TotalTokens))
	e.F64(st.Mu)
	e.Varint(int64(st.TopK))
}

func decodeStatsWire(d *store.Dec) Stats {
	return Stats{
		Domain:      d.Str(),
		NumEntities: int(d.Varint()),
		NumPages:    int(d.Varint()),
		NumTerms:    int(d.Varint()),
		TotalTokens: int(d.Varint()),
		Mu:          d.F64(),
		TopK:        int(d.Varint()),
	}
}

func encodeSearchWire(e *store.Enc, resp SearchResponse) {
	e.Str(resp.Query)
	e.Str(resp.Seed)
	partial := byte(0)
	if resp.Partial {
		partial = 1
	}
	e.Byte(partial)
	e.Uvarint(uint64(len(resp.Hits)))
	for _, h := range resp.Hits {
		e.Varint(int64(h.PageID))
		e.Str(h.URL)
		e.Str(h.Title)
		e.F64(h.Score)
	}
}

func decodeSearchWire(d *store.Dec) SearchResponse {
	resp := SearchResponse{Query: d.Str(), Seed: d.Str(), Partial: d.Byte() != 0}
	n := d.Count("search hits")
	if n > 0 {
		resp.Hits = make([]SearchHit, 0, n)
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		resp.Hits = append(resp.Hits, SearchHit{
			PageID: corpus.PageID(d.Varint()),
			URL:    d.Str(),
			Title:  d.Str(),
			Score:  d.F64(),
		})
	}
	return resp
}

// encodeCollFreqWire writes the token→frequency batch with sorted keys,
// so identical batches produce identical bytes (the store codecs'
// determinism rule).
func encodeCollFreqWire(e *store.Enc, freqs map[string]int) {
	keys := make([]string, 0, len(freqs))
	for k := range freqs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.Str(k)
		e.Varint(int64(freqs[k]))
	}
}

func decodeCollFreqWire(d *store.Dec) map[string]int {
	n := d.Count("collfreq entries")
	out := make(map[string]int, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		k := d.Str()
		out[k] = int(d.Varint())
	}
	return out
}

// encodeNodeStatsWire frames a cluster node's primary-partition stat
// report. Both frequency maps ride as sorted (token, count) runs — the
// store codecs' determinism rule — by reusing the collfreq pair codec.
func encodeNodeStatsWire(e *store.Enc, st NodeStatsPayload) {
	e.Varint(int64(st.Node))
	e.Varint(int64(st.Nodes))
	e.Varint(int64(st.Replicas))
	e.Varint(int64(st.Partition))
	e.Varint(int64(st.NumDocs))
	e.Varint(int64(st.TotalTokens))
	e.Varint(int64(st.TopK))
	encodeCollFreqWire(e, st.CollFreq)
	encodeCollFreqWire(e, st.DocFreq)
}

func decodeNodeStatsWire(d *store.Dec) NodeStatsPayload {
	return NodeStatsPayload{
		Node:        int(d.Varint()),
		Nodes:       int(d.Varint()),
		Replicas:    int(d.Varint()),
		Partition:   int(d.Varint()),
		NumDocs:     int(d.Varint()),
		TotalTokens: int(d.Varint()),
		TopK:        int(d.Varint()),
		CollFreq:    decodeCollFreqWire(d),
		DocFreq:     decodeCollFreqWire(d),
	}
}

func encodeEntitiesWire(e *store.Enc, ents []EntityInfo) {
	e.Uvarint(uint64(len(ents)))
	for _, ent := range ents {
		e.Varint(int64(ent.ID))
		e.Str(ent.Name)
		e.Str(ent.SeedQuery)
	}
}

func decodeEntitiesWire(d *store.Dec) []EntityInfo {
	n := d.Count("entities")
	var out []EntityInfo
	if n > 0 {
		out = make([]EntityInfo, 0, n)
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, EntityInfo{
			ID:        corpus.EntityID(d.Varint()),
			Name:      d.Str(),
			SeedQuery: d.Str(),
		})
	}
	return out
}

func encodeEventWire(e *store.Enc, ev HarvestEvent) {
	e.Str(ev.Type)
	e.Varint(int64(ev.Entity))
	e.Varint(int64(ev.Iteration))
	e.Str(ev.Query)
	e.Varint(int64(ev.NewPages))
	e.Varint(int64(ev.TotalPages))
	e.Uvarint(uint64(len(ev.Fired)))
	for _, q := range ev.Fired {
		e.Str(q)
	}
	e.Uvarint(uint64(len(ev.Pages)))
	prev := int64(0)
	for _, id := range ev.Pages {
		e.Varint(int64(id) - prev)
		prev = int64(id)
	}
	e.Varint(int64(ev.Entities))
	e.Varint(int64(ev.Failed))
	e.Str(ev.Error)
}

func decodeEventWire(d *store.Dec) HarvestEvent {
	ev := HarvestEvent{
		Type:       d.Str(),
		Entity:     corpus.EntityID(d.Varint()),
		Iteration:  int(d.Varint()),
		Query:      d.Str(),
		NewPages:   int(d.Varint()),
		TotalPages: int(d.Varint()),
	}
	nFired := d.Count("fired queries")
	for i := 0; i < nFired && d.Err() == nil; i++ {
		ev.Fired = append(ev.Fired, d.Str())
	}
	nPages := d.Count("event pages")
	prev := int64(0)
	for i := 0; i < nPages && d.Err() == nil; i++ {
		prev += d.Varint()
		ev.Pages = append(ev.Pages, corpus.PageID(prev))
	}
	ev.Entities = int(d.Varint())
	ev.Failed = int(d.Varint())
	ev.Error = d.Str()
	return ev
}

// encodeIngestWire frames an ingest batch. Paragraph text rides as-is;
// tokenization is the SERVER's job (with the corpus tokenizer), which is
// what keeps grown rankings identical to a frozen rebuild — a client-side
// tokenizer could disagree on phrase boundaries.
func encodeIngestWire(e *store.Enc, req IngestRequest) {
	e.Uvarint(uint64(len(req.Pages)))
	for _, p := range req.Pages {
		e.Varint(int64(p.ID))
		e.Varint(int64(p.Entity))
		e.Str(p.EntityName)
		e.Str(p.SeedQuery)
		e.Str(p.URL)
		e.Str(p.Title)
		e.Uvarint(uint64(len(p.Paras)))
		for _, para := range p.Paras {
			e.Str(para.Text)
			e.Str(para.Aspect)
		}
		e.Uvarint(uint64(len(p.Links)))
		prev := int64(0)
		for _, id := range p.Links {
			e.Varint(int64(id) - prev)
			prev = int64(id)
		}
	}
}

func decodeIngestWire(d *store.Dec) IngestRequest {
	var req IngestRequest
	n := d.Count("ingest pages")
	if n > 0 {
		req.Pages = make([]IngestPage, 0, n)
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		p := IngestPage{
			ID:         corpus.PageID(d.Varint()),
			Entity:     corpus.EntityID(d.Varint()),
			EntityName: d.Str(),
			SeedQuery:  d.Str(),
			URL:        d.Str(),
			Title:      d.Str(),
		}
		nPara := d.Count("ingest paragraphs")
		for j := 0; j < nPara && d.Err() == nil; j++ {
			p.Paras = append(p.Paras, IngestParagraph{Text: d.Str(), Aspect: d.Str()})
		}
		nLinks := d.Count("ingest links")
		prev := int64(0)
		for j := 0; j < nLinks && d.Err() == nil; j++ {
			prev += d.Varint()
			p.Links = append(p.Links, corpus.PageID(prev))
		}
		req.Pages = append(req.Pages, p)
	}
	return req
}

// encodeIngestAckWire frames the ingest acknowledgement (same frame kind
// as the request: the route owns the kind, direction disambiguates).
func encodeIngestAckWire(e *store.Enc, resp IngestResponse) {
	e.Varint(int64(resp.Ingested))
	e.Varint(int64(resp.Duplicates))
	e.Varint(int64(resp.NumDocs))
	e.Uvarint(resp.Epoch)
	e.Varint(int64(resp.Segments))
}

func decodeIngestAckWire(d *store.Dec) IngestResponse {
	return IngestResponse{
		Ingested:   int(d.Varint()),
		Duplicates: int(d.Varint()),
		NumDocs:    int(d.Varint()),
		Epoch:      d.Uvarint(),
		Segments:   int(d.Varint()),
	}
}

// decodeFramePayload opens a single-frame body and runs decode over it,
// insisting — like the store loaders — that the payload reads clean and
// is fully consumed.
func decodeFramePayload(b []byte, kind byte, decode func(*store.Dec)) error {
	payload, err := openFrame(b, kind)
	if err != nil {
		return err
	}
	d := store.NewDec(payload)
	decode(d)
	if err := d.Err(); err != nil {
		return fmt.Errorf("wire: frame payload: %w", err)
	}
	if !d.Done() {
		return fmt.Errorf("wire: frame payload has %d trailing bytes", d.Remaining())
	}
	return nil
}
