package webapi

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"l2q/internal/search"
	"l2q/internal/synth"
)

// TestConcurrentClients hammers the server with parallel searches and page
// downloads from multiple clients; run under -race this validates the
// server's and client's shared state (caches, counters, fetch table).
func TestConcurrentClients(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainCars))
	if err != nil {
		t.Fatal(err)
	}
	engine := search.NewEngine(search.BuildIndex(g.Corpus.Pages))
	srv := httptest.NewServer(NewServer(g.Corpus, engine).Handler())
	defer srv.Close()

	const clients = 4
	const opsPerClient = 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client, err := Dial(srv.URL, g.Tokenizer)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < opsPerClient; i++ {
				e := g.Corpus.Entities[(c*opsPerClient+i)%g.Corpus.NumEntities()]
				res := client.SearchWithSeed(e.SeedTokens(), []string{"safety"})
				for _, r := range res {
					// QueryLikelihood exercises the collfreq cache.
					client.QueryLikelihood(r.Page, []string{"safety", "airbags"})
				}
			}
			errs <- nil
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestHandlerConcurrentInit builds handlers from many goroutines at once
// and serves through each: the semaphore used to be lazily initialized
// with a non-atomic nil check, so under -race this test fails against the
// old code (two Handler calls could each observe s.sem == nil and write
// it) and pins the once-guarded initialization.
func TestHandlerConcurrentInit(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainCars))
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(g.Corpus, search.NewEngine(search.BuildIndex(g.Corpus.Pages)))

	const goroutines = 8
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := s.Handler()
			req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Errorf("healthz = %d", rec.Code)
			}
		}()
	}
	wg.Wait()
}

// TestServerConcurrencyLimit verifies the in-flight request bound: with
// MaxConcurrent=1 and a held request slot, a second request still
// completes once the first finishes (the semaphore drains, no deadlock).
func TestServerConcurrencyLimit(t *testing.T) {
	g, err := synth.Generate(synth.TestConfig(synth.DomainCars))
	if err != nil {
		t.Fatal(err)
	}
	engine := search.NewEngine(search.BuildIndex(g.Corpus.Pages))
	s := NewServer(g.Corpus, engine)
	s.MaxConcurrent = 1
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("%s/healthz", srv.URL))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait() // must terminate: the semaphore serializes but never wedges
}
