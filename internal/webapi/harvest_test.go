package webapi

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"l2q/internal/classify"
	"l2q/internal/core"
	"l2q/internal/corpus"
	"l2q/internal/search"
	"l2q/internal/synth"
	"l2q/internal/types"
)

// harvestFixture is a fixture whose server has the batch-harvest backend
// enabled (ground-truth Y, lazily-learned cached domain model).
type harvestFixture struct {
	g      *synth.Generated
	engine *search.Engine
	server *Server
	srv    *httptest.Server
	client *Client
	cfg    core.Config
	y      func(*corpus.Page) bool
	dm     *core.DomainModel
	rec    types.Recognizer
	aspect corpus.Aspect
}

func newHarvestFixture(t *testing.T) *harvestFixture {
	t.Helper()
	g, err := synth.Generate(synth.TestConfig(synth.DomainResearchers))
	if err != nil {
		t.Fatal(err)
	}
	engine := search.NewEngine(search.BuildIndex(g.Corpus.Pages))
	aspect := synth.AspResearch
	rec := types.Chain{g.KB, types.NewRegexRecognizer()}
	y := func(p *corpus.Page) bool { return classify.GroundTruth(p, aspect) }
	cfg := core.DefaultConfig()
	cfg.Tokenizer = g.Tokenizer

	var domain []corpus.EntityID
	for i := 0; i < g.Corpus.NumEntities()/2; i++ {
		domain = append(domain, g.Corpus.Entities[i].ID)
	}
	dm, err := core.LearnDomain(cfg, aspect, g.Corpus, domain, y, rec)
	if err != nil {
		t.Fatal(err)
	}

	server := NewServer(g.Corpus, engine)
	server.Harvest = &HarvestBackend{
		Cfg:     cfg,
		Aspects: []corpus.Aspect{aspect},
		Y:       func(corpus.Aspect) func(*corpus.Page) bool { return y },
		Rec:     rec,
		DomainModel: func(corpus.Aspect) (*core.DomainModel, error) {
			return dm, nil
		},
	}
	srv := httptest.NewServer(server.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(func() {
		// Reap the shared scheduler's worker pools (httptest never calls
		// Server.Shutdown, which otherwise owns this).
		server.schedMu.Lock()
		sched := server.sched
		server.schedMu.Unlock()
		if sched != nil {
			sched.Close()
		}
	})
	client, err := Dial(srv.URL, g.Tokenizer)
	if err != nil {
		t.Fatal(err)
	}
	return &harvestFixture{g: g, engine: engine, server: server, srv: srv,
		client: client, cfg: cfg, y: y, dm: dm, rec: rec, aspect: aspect}
}

// TestHarvestEndpointParity: the server-side batch harvest produces, for
// every entity, exactly the fired queries and gathered pages of a local
// session with the same seed — and streams per-iteration progress events
// in order on the way.
func TestHarvestEndpointParity(t *testing.T) {
	f := newHarvestFixture(t)
	n := f.g.Corpus.NumEntities()
	targets := []corpus.EntityID{
		f.g.Corpus.Entities[n-3].ID,
		f.g.Corpus.Entities[n-2].ID,
		f.g.Corpus.Entities[n-1].ID,
	}
	const nQueries = 2

	var mu sync.Mutex
	progress := make(map[corpus.EntityID][]HarvestEvent)
	finished := make(map[corpus.EntityID]HarvestEvent)
	var done *HarvestEvent
	err := f.client.HarvestBatch(context.Background(), HarvestRequest{
		Entities: targets,
		Aspect:   string(f.aspect),
		Strategy: "L2QBAL",
		NQueries: nQueries,
	}, func(ev HarvestEvent) error {
		mu.Lock()
		defer mu.Unlock()
		switch ev.Type {
		case "progress":
			progress[ev.Entity] = append(progress[ev.Entity], ev)
		case "entity":
			finished[ev.Entity] = ev
		case "error":
			t.Errorf("unexpected error event: %+v", ev)
		case "done":
			done = &ev
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if done == nil || done.Entities != len(targets) || done.Failed != 0 {
		t.Fatalf("done summary %+v, want %d entities, 0 failed", done, len(targets))
	}

	for _, id := range targets {
		e := f.g.Corpus.Entity(id)
		// Local reference with the server's seeding convention.
		sess := core.NewSession(f.cfg, f.engine, e, f.aspect, f.y, f.dm, f.rec, uint64(id)+1)
		wantFired := sess.Run(core.NewL2QBAL(), nQueries)
		var wantPages []corpus.PageID
		for _, p := range sess.Pages() {
			wantPages = append(wantPages, p.ID)
		}

		got, ok := finished[id]
		if !ok {
			t.Fatalf("entity %d: no completion event", id)
		}
		gotFired := make([]core.Query, len(got.Fired))
		for i, q := range got.Fired {
			gotFired[i] = core.Query(q)
		}
		if !reflect.DeepEqual(gotFired, wantFired) {
			t.Errorf("entity %d fired %v, want %v", id, gotFired, wantFired)
		}
		if !reflect.DeepEqual(got.Pages, wantPages) {
			t.Errorf("entity %d pages %v, want %v", id, got.Pages, wantPages)
		}

		recs := progress[id]
		if len(recs) != len(wantFired) {
			t.Errorf("entity %d: %d progress events, want %d", id, len(recs), len(wantFired))
			continue
		}
		for i, ev := range recs {
			if ev.Iteration != i+1 {
				t.Errorf("entity %d progress %d: iteration %d", id, i, ev.Iteration)
			}
			if core.Query(ev.Query) != wantFired[i] {
				t.Errorf("entity %d progress %d: query %q, want %q", id, i, ev.Query, wantFired[i])
			}
		}
	}
}

// TestHarvestUnknownEntity: a bogus ID yields a per-entity error event;
// the rest of the batch completes.
func TestHarvestUnknownEntity(t *testing.T) {
	f := newHarvestFixture(t)
	n := f.g.Corpus.NumEntities()
	good := f.g.Corpus.Entities[n-1].ID
	const bogus = corpus.EntityID(99999)

	var errEvents, entityEvents int
	var done HarvestEvent
	err := f.client.HarvestBatch(context.Background(), HarvestRequest{
		Entities: []corpus.EntityID{bogus, good},
		Aspect:   string(f.aspect),
		NQueries: 1,
	}, func(ev HarvestEvent) error {
		switch ev.Type {
		case "error":
			errEvents++
			if ev.Entity != bogus {
				t.Errorf("error event for entity %d, want %d", ev.Entity, bogus)
			}
		case "entity":
			entityEvents++
			if ev.Entity != good {
				t.Errorf("entity event for %d, want %d", ev.Entity, good)
			}
		case "done":
			done = ev
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if errEvents != 1 || entityEvents != 1 {
		t.Errorf("%d error and %d entity events, want 1 and 1", errEvents, entityEvents)
	}
	if done.Failed != 1 || done.Entities != 2 {
		t.Errorf("done summary %+v, want 2 entities 1 failed", done)
	}
}

// TestHarvestValidation covers the request-level rejections.
func TestHarvestValidation(t *testing.T) {
	f := newHarvestFixture(t)
	cases := []struct {
		name string
		req  HarvestRequest
		want int
	}{
		{"no entities", HarvestRequest{Aspect: string(f.aspect)}, http.StatusBadRequest},
		{"unknown aspect", HarvestRequest{Entities: []corpus.EntityID{0}, Aspect: "NOPE"}, http.StatusBadRequest},
		{"unknown strategy", HarvestRequest{Entities: []corpus.EntityID{0}, Aspect: string(f.aspect), Strategy: "HODL"}, http.StatusBadRequest},
		{"negative budget", HarvestRequest{Entities: []corpus.EntityID{0}, Aspect: string(f.aspect), NQueries: -1}, http.StatusBadRequest},
		{"budget over cap", HarvestRequest{Entities: []corpus.EntityID{0}, Aspect: string(f.aspect), NQueries: 10000}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		err := f.client.HarvestBatch(context.Background(), tc.req, nil)
		var te *TransportError
		if !errors.As(err, &te) || te.Status != tc.want {
			t.Errorf("%s: error %v, want status %d", tc.name, err, tc.want)
		}
	}

	// A server without a backend answers 501.
	plain := httptest.NewServer(NewServer(f.g.Corpus, f.engine).Handler())
	defer plain.Close()
	bare, err := Dial(plain.URL, f.g.Tokenizer)
	if err != nil {
		t.Fatal(err)
	}
	err = bare.HarvestBatch(context.Background(), HarvestRequest{
		Entities: []corpus.EntityID{0}, Aspect: string(f.aspect), NQueries: 1}, nil)
	var te *TransportError
	if !errors.As(err, &te) || te.Status != http.StatusNotImplemented {
		t.Errorf("harvest against plain server: %v, want 501", err)
	}
}

// TestHarvestShutdownGraceful: Shutdown cancels an in-flight batch harvest
// (the stream terminates promptly) instead of deadlocking the drain behind
// an arbitrarily long run.
func TestHarvestShutdownGraceful(t *testing.T) {
	f := newHarvestFixture(t)
	// Serve over a real listener so Shutdown exercises the full path.
	addr, err := f.server.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(addr, f.g.Tokenizer)
	if err != nil {
		t.Fatal(err)
	}

	var targets []corpus.EntityID
	for _, e := range f.g.Corpus.Entities {
		targets = append(targets, e.ID)
	}
	if len(targets) > 8 {
		targets = targets[len(targets)-8:]
	}

	go func() {
		time.Sleep(100 * time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := f.server.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	start := time.Now()
	// A big budget: without cancellation this would run much longer than
	// the shutdown window.
	_ = client.HarvestBatch(context.Background(), HarvestRequest{
		Entities: targets,
		Aspect:   string(f.aspect),
		NQueries: 40,
	}, func(HarvestEvent) error { return nil })
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("harvest stream survived shutdown for %v", elapsed)
	}
}
